// Multilevel checkpointing with timeline analysis: run an application under
// the two-level (SCR/FTI-class) protocol with failures, then break down
// where every rank's time went and render a Gantt chart of the run.
package main

import (
	"fmt"
	"log"
	"os"

	"checkpointsim"
	"checkpointsim/internal/timeline"
)

func main() {
	col := timeline.NewCollector()
	res, err := checkpointsim.Run(checkpointsim.RunConfig{
		Workload:   "stencil2d",
		Ranks:      16,
		Iterations: 60,
		Compute:    checkpointsim.Millisecond,
		MsgBytes:   4096,
		Protocol: checkpointsim.ProtocolConfig{
			Kind: checkpointsim.ProtoTwoLevel,
			TwoLevel: checkpointsim.TwoLevelParams{
				LocalInterval:  3 * checkpointsim.Millisecond,
				LocalWrite:     100 * checkpointsim.Microsecond,
				GlobalInterval: 30 * checkpointsim.Millisecond,
				GlobalWrite:    2 * checkpointsim.Millisecond,
			},
		},
		Failures: &checkpointsim.FailureConfig{
			MTBF:          4 * checkpointsim.Second, // per node
			Restart:       2 * checkpointsim.Millisecond,
			LocalRestart:  200 * checkpointsim.Microsecond,
			LocalCoverage: 0.9,
			Kind:          checkpointsim.RecoverTwoLevel,
		},
		Trace:   col.Add,
		Seed:    16,
		MaxTime: checkpointsim.Time(60 * checkpointsim.Second),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("makespan: %v, failures: %d\n",
		checkpointsim.Duration(res.Makespan), len(res.FailureEvents))
	for _, ev := range res.FailureEvents {
		fmt.Printf("  t=%v rank=%d lost=%v recovery=%v\n",
			checkpointsim.Duration(ev.Time), ev.Rank, ev.LostWork, ev.Recovery)
	}
	st := res.Protocol.Stats()
	fmt.Printf("writes: %d total, %d global rounds\n\n", st.Writes, st.Rounds)

	col.PrintSummary(os.Stdout, res.Makespan)
	fmt.Println()
	col.Gantt(os.Stdout, 100, res.Makespan, 16)
}
