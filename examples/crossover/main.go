// Crossover exploration: sweep machine size and logging overhead to find
// where uncoordinated checkpointing overtakes coordinated checkpointing —
// in simulation at small scales, and with the analytic projection at the
// exascale sizes the paper extrapolates to.
package main

import (
	"fmt"
	"log"

	"checkpointsim"
	"checkpointsim/internal/model"
)

func main() {
	fmt.Println("simulated crossover (stencil2d, δ=2ms, θ=4s/node, seed-matched failures)")
	fmt.Printf("%6s  %10s  %14s  %14s  %s\n", "P", "β(ns/B)", "coordinated", "uncoordinated", "winner")

	for _, p := range []int{16, 64, 256} {
		for _, beta := range []float64{0, 0.5, 2.0} {
			sys := (4 * checkpointsim.Second).Seconds() / float64(p)
			tau := checkpointsim.Duration(model.DalyInterval(0.002, sys) * 1e9)

			mk := func(kind checkpointsim.ProtoKind, rkind checkpointsim.RecoveryKind, b float64) checkpointsim.Duration {
				cfg := checkpointsim.RunConfig{
					Workload:   "stencil2d",
					Ranks:      p,
					Iterations: 60,
					Compute:    checkpointsim.Millisecond,
					MsgBytes:   4096,
					Protocol: checkpointsim.ProtocolConfig{
						Kind:     kind,
						Interval: tau,
						Write:    2 * checkpointsim.Millisecond,
						Offset:   "staggered",
						Logging:  checkpointsim.LogParams{BetaNsPerByte: b},
					},
					Failures: &checkpointsim.FailureConfig{
						MTBF:          4 * checkpointsim.Second,
						Restart:       2 * checkpointsim.Millisecond,
						ReplaySpeedup: 2,
						Kind:          rkind,
					},
					Seed:    9,
					MaxTime: checkpointsim.Time(120 * checkpointsim.Second),
				}
				r, err := checkpointsim.Run(cfg)
				if err != nil {
					log.Fatal(err)
				}
				return checkpointsim.Duration(r.Makespan)
			}

			coord := mk(checkpointsim.ProtoCoordinated, checkpointsim.RecoverGlobal, 0)
			unc := mk(checkpointsim.ProtoUncoordinated, checkpointsim.RecoverLocal, beta)
			winner := "coordinated"
			if unc < coord {
				winner = "uncoordinated"
			}
			fmt.Printf("%6d  %10.1f  %14v  %14v  %s\n", p, beta, coord, unc, winner)
		}
	}

	fmt.Println()
	fmt.Println("analytic projection to extreme scale (δ=60s, R=120s, θ=5y/node)")
	fmt.Printf("%8s  %12s  %12s  %12s  %s\n", "P", "log-ovh", "eff-coord", "eff-uncoord", "winner")
	net := checkpointsim.DefaultNetwork()
	for _, p := range []int{4096, 65536, 1048576} {
		for _, lo := range []float64{0.02, 0.10, 0.30} {
			pr := model.ProtocolProjection{
				Nodes:       p,
				NodeMTBF:    5 * 365.25 * 86400,
				Write:       60,
				Restart:     120,
				CoordDelay:  model.CoordinationDelay(p, net, 64),
				LogOverhead: lo,
			}
			ce, ue := model.CoordinatedEfficiency(pr), model.UncoordinatedEfficiency(pr)
			winner := "coordinated"
			if ue > ce {
				winner = "uncoordinated"
			}
			fmt.Printf("%8d  %12.2f  %12.4f  %12.4f  %s\n", p, lo, ce, ue, winner)
		}
	}
}
