// Quickstart: simulate a 64-rank halo-exchange application with coordinated
// checkpointing and print what the checkpoints cost.
package main

import (
	"fmt"
	"log"

	"checkpointsim"
)

func main() {
	// Baseline: the same application without checkpointing.
	base, err := checkpointsim.Run(checkpointsim.RunConfig{
		Workload:   "stencil2d",
		Ranks:      64,
		Iterations: 100,
		Compute:    checkpointsim.Millisecond,
		MsgBytes:   4096,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same run, checkpointing every 10ms with a 1ms write.
	ckpt, err := checkpointsim.Run(checkpointsim.RunConfig{
		Workload:   "stencil2d",
		Ranks:      64,
		Iterations: 100,
		Compute:    checkpointsim.Millisecond,
		MsgBytes:   4096,
		Protocol: checkpointsim.ProtocolConfig{
			Kind:     checkpointsim.ProtoCoordinated,
			Interval: 10 * checkpointsim.Millisecond,
			Write:    checkpointsim.Millisecond,
		},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline makespan:     %v\n", checkpointsim.Duration(base.Makespan))
	fmt.Printf("checkpointed makespan: %v\n", checkpointsim.Duration(ckpt.Makespan))
	fmt.Printf("overhead:              %.2f%%\n", ckpt.OverheadPercent(base.Result))

	st := ckpt.Protocol.Stats()
	fmt.Printf("rounds: %d, writes: %d\n", st.Rounds, st.Writes)
	if st.Rounds > 0 {
		fmt.Printf("mean quiesce latency: %v\n", st.CoordDelay/checkpointsim.Duration(st.Rounds))
		fmt.Printf("mean round span:      %v\n", st.RoundSpan/checkpointsim.Duration(st.Rounds))
	}
	fmt.Printf("coordination control messages: %d\n", ckpt.Metrics.CtlMessages)
}
