// Failure injection: run the same application under the same failure clock
// with the two recovery disciplines — coordinated checkpointing with global
// rollback versus uncoordinated checkpointing with single-rank log replay —
// and compare what each failure costs the machine.
package main

import (
	"fmt"
	"log"

	"checkpointsim"
)

func main() {
	base := checkpointsim.RunConfig{
		Workload:   "stencil2d",
		Ranks:      64,
		Iterations: 200,
		Compute:    checkpointsim.Millisecond,
		MsgBytes:   4096,
		Seed:       16,
		MaxTime:    checkpointsim.Time(60 * checkpointsim.Second),
	}

	// Failure-free reference.
	ref, err := checkpointsim.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free makespan: %v\n\n", checkpointsim.Duration(ref.Makespan))

	const (
		interval = 10 * checkpointsim.Millisecond
		write    = checkpointsim.Millisecond
		mtbf     = 4 * checkpointsim.Second // per node → system MTBF 62.5ms
		restart  = 2 * checkpointsim.Millisecond
	)

	// Coordinated + global rollback.
	coord := base
	coord.Protocol = checkpointsim.ProtocolConfig{
		Kind: checkpointsim.ProtoCoordinated, Interval: interval, Write: write,
	}
	coord.Failures = &checkpointsim.FailureConfig{
		MTBF: mtbf, Restart: restart, Kind: checkpointsim.RecoverGlobal,
	}
	rc, err := checkpointsim.Run(coord)
	if err != nil {
		log.Fatal(err)
	}

	// Uncoordinated + local replay (with a logging tax).
	unc := base
	unc.Protocol = checkpointsim.ProtocolConfig{
		Kind: checkpointsim.ProtoUncoordinated, Interval: interval, Write: write,
		Offset:  "staggered",
		Logging: checkpointsim.LogParams{Alpha: 500 * checkpointsim.Nanosecond, BetaNsPerByte: 0.1},
	}
	unc.Failures = &checkpointsim.FailureConfig{
		MTBF: mtbf, Restart: restart, ReplaySpeedup: 2, Kind: checkpointsim.RecoverLocal,
	}
	ru, err := checkpointsim.Run(unc)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, r *checkpointsim.RunResult) {
		fmt.Printf("%s\n", name)
		fmt.Printf("  makespan:  %v (+%.1f%% over failure-free)\n",
			checkpointsim.Duration(r.Makespan), r.OverheadPercent(ref.Result))
		fmt.Printf("  failures:  %d\n", len(r.FailureEvents))
		var lost, rec checkpointsim.Duration
		for _, ev := range r.FailureEvents {
			lost += ev.LostWork
			rec += ev.Recovery
		}
		fmt.Printf("  work lost: %v, recovery charged: %v\n", lost, rec)
		fmt.Printf("  checkpoint writes: %d\n\n", r.Protocol.Stats().Writes)
	}
	show("coordinated + global rollback", rc)
	show("uncoordinated + local replay", ru)

	if ru.Makespan < rc.Makespan {
		fmt.Println("verdict: at this scale and failure rate, local replay wins —")
		fmt.Println("a failure idles one rank, not 64, and partners only stall when")
		fmt.Println("they actually need a message from the recovering rank.")
	} else {
		fmt.Println("verdict: global rollback wins here — the logging tax outweighs")
		fmt.Println("the recovery savings at this failure rate.")
	}
}
