// Custom program construction: build a bespoke iteration structure with the
// Builder API — a 1D ring halo exchange whose every tenth iteration ends in
// an allreduce — and measure how a checkpointing protocol interacts with it.
//
// This is the path for users whose application does not match a built-in
// workload: the same graphs the named generators produce can be assembled
// by hand, operation by operation.
package main

import (
	"fmt"
	"log"

	"checkpointsim"
)

func buildRingApp(ranks, iters int, compute checkpointsim.Duration, halo int64) (*checkpointsim.Program, error) {
	b := checkpointsim.NewBuilder(ranks)
	seqs := make([]*checkpointsim.Sequencer, ranks)
	for i := range seqs {
		seqs[i] = b.Seq(i)
	}
	for it := 0; it < iters; it++ {
		for i, s := range seqs {
			s.Calc(compute)
			right := (i + 1) % ranks
			left := (i - 1 + ranks) % ranks
			// Non-blocking exchange with both neighbors, then wait for all.
			sends := s.Fork(checkpointsim.KindSend, int32(right), 0, halo)
			sendsL := s.Fork(checkpointsim.KindSend, int32(left), 0, halo)
			recvR := s.Fork(checkpointsim.KindRecv, int32(right), 0, halo)
			recvL := s.Fork(checkpointsim.KindRecv, int32(left), 0, halo)
			s.Join(sends, sendsL, recvR, recvL)
		}
		if (it+1)%10 == 0 {
			// Convergence check: an 8-byte allreduce.
			entries := make([]checkpointsim.OpID, ranks)
			for i, s := range seqs {
				entries[i] = s.Last()
			}
			exits := checkpointsim.Allreduce(b, entries, 1, 8)
			for i := range seqs {
				seqs[i] = b.SeqAfter(i, exits[i])
			}
		}
	}
	return b.Build()
}

func main() {
	const ranks = 32
	prog, err := buildRingApp(ranks, 60, checkpointsim.Millisecond, 8192)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %d ranks, %d ops\n", prog.NumRanks, len(prog.Ops))

	// Run it bare, then under each protocol family.
	run := func(agents ...checkpointsim.Agent) *checkpointsim.Result {
		eng, err := checkpointsim.NewEngine(checkpointsim.SimConfig{
			Net:     checkpointsim.DefaultNetwork(),
			Program: prog,
			Agents:  agents,
			Seed:    7,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run()
	fmt.Printf("%-24s %12v\n", "baseline", checkpointsim.Duration(base.Makespan))

	params := checkpointsim.CheckpointParams{
		Interval: 10 * checkpointsim.Millisecond,
		Write:    checkpointsim.Millisecond,
	}
	for _, mk := range []func() (checkpointsim.Protocol, error){
		func() (checkpointsim.Protocol, error) { return checkpointsim.NewCoordinated(params) },
		func() (checkpointsim.Protocol, error) {
			return checkpointsim.NewUncoordinated(params, "staggered",
				checkpointsim.LogParams{Alpha: checkpointsim.Microsecond, BetaNsPerByte: 0.1})
		},
		func() (checkpointsim.Protocol, error) {
			return checkpointsim.NewHierarchical(params, 8,
				checkpointsim.LogParams{Alpha: checkpointsim.Microsecond, BetaNsPerByte: 0.1})
		},
	} {
		proto, err := mk()
		if err != nil {
			log.Fatal(err)
		}
		res := run(proto)
		fmt.Printf("%-24s %12v  (+%.2f%%)\n", proto.Name(),
			checkpointsim.Duration(res.Makespan), res.OverheadPercent(base))
	}
}
