package checkpointsim

import (
	"checkpointsim/internal/collective"
	"checkpointsim/internal/goal"
)

// Graph-construction aliases for users who build custom programs instead of
// using the named workloads.
type (
	// OpID identifies an operation within a Program.
	OpID = goal.OpID
	// Sequencer chains operations on one rank in program order.
	Sequencer = goal.Sequencer
	// Kind identifies an operation type (calc, send, recv).
	Kind = goal.Kind
)

// Operation kinds for Sequencer.Fork and program inspection.
const (
	KindCalc = goal.KindCalc
	KindSend = goal.KindSend
	KindRecv = goal.KindRecv
)

// Matching wildcards and sentinels.
const (
	// NoOp is the invalid OpID (also: "no dependency").
	NoOp = goal.NoOp
	// AnySource matches a message from any sender in a Recv.
	AnySource = goal.AnySource
	// AnyTag matches any tag in a Recv.
	AnyTag = goal.AnyTag
)

// ParseProgram reads a program in the textual GOAL dialect.
func ParseProgram(text string) (*Program, error) { return goal.ParseString(text) }

// FormatProgram serializes a program in the textual GOAL dialect.
func FormatProgram(p *Program) string { return goal.WriteString(p) }

// Collective generators: each compiles an MPI-style collective into the
// builder's graph. entry supplies each rank's dependency (nil for none);
// the returned slice holds each rank's local-completion op, chainable into
// the next phase.

// Bcast adds a binomial-tree broadcast from root.
func Bcast(b *Builder, root int, entry []OpID, tag int, bytes int64) []OpID {
	return collective.Bcast(b, root, entry, tag, bytes)
}

// Reduce adds a binomial-tree reduction to root.
func Reduce(b *Builder, root int, entry []OpID, tag int, bytes int64) []OpID {
	return collective.Reduce(b, root, entry, tag, bytes)
}

// Allreduce adds a recursive-doubling allreduce.
func Allreduce(b *Builder, entry []OpID, tag int, bytes int64) []OpID {
	return collective.Allreduce(b, entry, tag, bytes)
}

// Barrier adds a dissemination barrier.
func Barrier(b *Builder, entry []OpID, tag int) []OpID {
	return collective.Barrier(b, entry, tag)
}

// Allgather adds a ring allgather of blockBytes per rank.
func Allgather(b *Builder, entry []OpID, tag int, blockBytes int64) []OpID {
	return collective.Allgather(b, entry, tag, blockBytes)
}

// Alltoall adds a shifted pairwise full exchange.
func Alltoall(b *Builder, entry []OpID, tag int, bytes int64) []OpID {
	return collective.Alltoall(b, entry, tag, bytes)
}

// Gather adds a binomial-tree gather to root.
func Gather(b *Builder, root int, entry []OpID, tag int, blockBytes int64) []OpID {
	return collective.Gather(b, root, entry, tag, blockBytes)
}

// Scatter adds a binomial-tree scatter from root.
func Scatter(b *Builder, root int, entry []OpID, tag int, blockBytes int64) []OpID {
	return collective.Scatter(b, root, entry, tag, blockBytes)
}
