// Command sweep regenerates the reproduction experiments (E1–E17, see
// DESIGN.md §4) and prints their tables.
//
// Usage:
//
//	sweep -exp all            # every experiment, full scale
//	sweep -exp E4 -quick      # one experiment, reduced sweep
//	sweep -exp E2,E9 -csv dir # also write CSV files into dir
//	sweep -exp all -j 4       # cap the worker pool at 4 cores
//
// Each experiment fans its sweep points across -j workers (default: all
// cores). Tables are bit-for-bit identical for every -j value, -j 1
// included: every point derives its RNG stream from the sweep seed and its
// own index, never from scheduling. Pass -timings=false to suppress the
// wall-clock lines when diffing runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"checkpointsim/internal/exp"
	"checkpointsim/internal/network"
	"checkpointsim/internal/storage"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		which    = fs.String("exp", "all", `experiment ids, comma separated, or "all"`)
		quick    = fs.Bool("quick", false, "reduced sweeps (bench/CI scale)")
		seed     = fs.Uint64("seed", 42, "random seed")
		jobs     = fs.Int("j", runtime.NumCPU(), "worker pool size per experiment (1 = serial)")
		csvDir   = fs.String("csv", "", "also write each table as CSV into this directory")
		netPre   = fs.String("net", "default", "network preset: default|capability|ethernet")
		timings  = fs.Bool("timings", true, "print per-experiment wall-clock lines")
		validate = fs.Bool("validate", false, "run every simulation under the trace-conformance checker (internal/validate); any invariant violation aborts the sweep")
		list     = fs.Bool("list", false, "list experiments (id, title, bench, description) and exit")

		storeAgg     = fs.Float64("store-agg", 0, "aggregate PFS bandwidth in GB/s (0 = unconstrained)")
		storeWriter  = fs.Float64("store-writer", 0, "per-writer PFS bandwidth cap in GB/s (0 = uncapped)")
		storeNode    = fs.Float64("store-node", 0, "node-local burst-buffer bandwidth in GB/s (0 = unconstrained)")
		ranksPerNode = fs.Int("ranks-per-node", 0, "ranks per node for the node storage tier (0 = 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(out, "%-4s %-28s %-26s %s\n", e.ID, e.Title, e.Bench, e.Desc)
		}
		return nil
	}
	if *jobs < 1 {
		return fmt.Errorf("-j must be >= 1, have %d", *jobs)
	}

	o := exp.DefaultOptions()
	o.Quick = *quick
	o.Seed = *seed
	o.Jobs = *jobs
	o.Validate = *validate
	if *storeAgg < 0 || *storeWriter < 0 || *storeNode < 0 {
		return fmt.Errorf("negative storage bandwidth")
	}
	o.Storage = storage.Params{
		AggregateBytesPerSec: *storeAgg * 1e9,
		PerWriterBytesPerSec: *storeWriter * 1e9,
		NodeBytesPerSec:      *storeNode * 1e9,
		RanksPerNode:         *ranksPerNode,
	}
	switch *netPre {
	case "default":
		o.Net = network.DefaultParams()
	case "capability":
		o.Net = network.CapabilityClassParams()
	case "ethernet":
		o.Net = network.EthernetClassParams()
	default:
		return fmt.Errorf("unknown network preset %q", *netPre)
	}

	var selected []exp.Experiment
	if *which == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*which, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "network: %s\n", o.Net)
	if o.Storage != (storage.Params{}) {
		fmt.Fprintf(out, "storage: %s\n", o.Storage)
	}
	mode := "full"
	if o.Quick {
		mode = "quick"
	}
	if o.Validate {
		mode += ", validated"
	}
	fmt.Fprintf(out, "mode: %s, seed: %d\n\n", mode, o.Seed)

	for _, e := range selected {
		start := time.Now()
		fmt.Fprintf(out, "### %s — %s\n", e.ID, e.Title)
		tables, err := e.Run(o)
		if err != nil {
			return err
		}
		for ti, t := range tables {
			t.Fprint(out)
			fmt.Fprintln(out)
			if *csvDir != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), ti)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					return err
				}
				if err := t.WriteCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
		if *timings {
			fmt.Fprintf(out, "(%s took %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		} else {
			fmt.Fprintln(out)
		}
	}
	return nil
}
