package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"E1", "E8", "E15"} {
		if !strings.Contains(out, id+" ") {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestQuickSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E1", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mode: quick", "E1a", "E1b", "took"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-exp", "E1", "-quick", "-csv", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"e1_0.csv", "e1_1.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", name)
		}
	}
}

func TestNetPresets(t *testing.T) {
	for _, preset := range []string{"capability", "ethernet"} {
		var sb strings.Builder
		if err := run([]string{"-exp", "E1", "-quick", "-net", preset}, &sb); err != nil {
			t.Errorf("preset %s: %v", preset, err)
		}
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E99"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-net", "bogus"}, &sb); err == nil {
		t.Error("bogus preset accepted")
	}
}
