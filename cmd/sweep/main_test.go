package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"checkpointsim/internal/exp"
)

func TestListExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"E1", "E8", "E15", "E17"} {
		if !strings.Contains(out, id+" ") {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
	// Every row carries the experiment's bench target and description.
	for _, e := range exp.All() {
		if !strings.Contains(out, e.Bench) {
			t.Errorf("list missing bench name %s:\n%s", e.Bench, out)
		}
		if !strings.Contains(out, e.Desc) {
			t.Errorf("list missing description for %s:\n%s", e.ID, out)
		}
	}
}

// The storage flags feed Options.Storage: E17 run with an explicit writer
// cap must still work, and invalid bandwidths must be rejected.
func TestStorageFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E1", "-quick", "-store-agg", "8",
		"-store-writer", "1", "-timings=false"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "storage: ") {
		t.Errorf("storage line not printed:\n%s", sb.String())
	}
	for _, c := range [][]string{
		{"-exp", "E1", "-quick", "-store-agg", "-1"},
		{"-exp", "E1", "-quick", "-store-writer", "-2"},
		{"-exp", "E1", "-quick", "-store-node", "-3"},
	} {
		if err := run(c, &sb); err == nil {
			t.Errorf("args %v accepted", c)
		}
	}
}

func TestQuickSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E1", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mode: quick", "E1a", "E1b", "took"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-exp", "E1", "-quick", "-csv", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"e1_0.csv", "e1_1.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", name)
		}
	}
}

func TestNetPresets(t *testing.T) {
	for _, preset := range []string{"capability", "ethernet"} {
		var sb strings.Builder
		if err := run([]string{"-exp", "E1", "-quick", "-net", preset}, &sb); err != nil {
			t.Errorf("preset %s: %v", preset, err)
		}
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E99"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-net", "bogus"}, &sb); err == nil {
		t.Error("bogus preset accepted")
	}
	if err := run([]string{"-exp", "E1", "-quick", "-j", "0"}, &sb); err == nil {
		t.Error("-j 0 accepted")
	}
}

// The full CLI path must emit byte-identical output at any -j, and across
// repeated parallel runs: the acceptance bar for the parallel runner.
// Timing lines are wall-clock and are suppressed via -timings=false; every
// other byte, headers and CSV included, must match.
func TestJobsDeterminismEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick experiments")
	}
	runWith := func(jobs string, csvDir string) string {
		args := []string{"-exp", "E2,E4,E8", "-quick", "-seed", "42",
			"-timings=false", "-j", jobs}
		if csvDir != "" {
			args = append(args, "-csv", csvDir)
		}
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Fatalf("-j %s: %v", jobs, err)
		}
		return sb.String()
	}
	dir1, dir8 := t.TempDir(), t.TempDir()
	serial := runWith("1", dir1)
	parallel := runWith("8", dir8)
	if serial != parallel {
		t.Fatalf("-j 1 and -j 8 outputs differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, parallel)
	}
	if again := runWith("8", ""); again != parallel {
		t.Fatal("two -j 8 runs differ: scheduling leaked into results")
	}
	// CSV side channel must be deterministic too.
	for _, name := range []string{"e2_0.csv", "e4_0.csv", "e8_0.csv", "e8_1.csv"} {
		a, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		b, err := os.ReadFile(filepath.Join(dir8, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between -j 1 and -j 8", name)
		}
	}
}

// The -csv directory is created before any experiment runs, so an
// unwritable path fails fast instead of after the first table's sweep.
func TestCSVDirCreatedUpFront(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "deep")
	var sb strings.Builder
	if err := run([]string{"-exp", "E1", "-quick", "-csv", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("csv dir not created: %v", err)
	}
}
