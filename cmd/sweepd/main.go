// Command sweepd serves the reproduction experiments (E1–E17) as a
// long-running HTTP service: sweep jobs over a bounded queue and worker
// pool, fronted by a content-addressed result cache so identical requests
// — the dominant pattern in parameter-sweep studies — simulate once and
// hit forever after. See README.md "Running as a service" for the
// endpoint reference and DESIGN.md §22 for the cache and backpressure
// model.
//
// Usage:
//
//	sweepd -addr :8080                     # serve with defaults
//	sweepd -workers 4 -queue 128           # more concurrency, deeper queue
//	sweepd -cache-mb 512 -timeout 5m       # bigger cache, shorter job leash
//
//	curl -s localhost:8080/api/v1/run -d '{"exp":"E1","quick":true}'
//	curl -s localhost:8080/api/v1/jobs -d '{"exp":"E8"}'    # async
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: submissions get 503, queued jobs are
// rejected, running jobs finish (up to -drain-grace), then the listener
// shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"checkpointsim/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until a shutdown signal. ready, when
// non-nil, receives the bound address once the listener is up (tests use
// it to avoid port races).
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 2, "concurrent jobs (each fans its sweep across -jobs cores)")
		jobsPerRun = fs.Int("jobs", 0, "sweep worker pool per job (0 = all cores)")
		queue      = fs.Int("queue", 64, "job queue capacity; a full queue answers 429 + Retry-After")
		cacheMB    = fs.Int64("cache-mb", 256, "result cache budget in MiB (0 disables caching)")
		timeout    = fs.Duration("timeout", 10*time.Minute, "default and maximum per-job runtime")
		drainGrace = fs.Duration("drain-grace", 30*time.Second, "how long a shutdown signal waits for running jobs")
		version    = fs.String("version", "", "cache-key code version tag (default: VCS revision from build info, else \"dev\")")
		snapDir    = fs.String("snapshot-dir", "", "persist mid-run snapshots of scenario jobs here; a restarted server resumes resubmitted jobs from the last boundary (empty = off)")
		snapEvery  = fs.Int64("snapshot-every", 0, "event cadence for scenario-job snapshots (0 = default 100000; needs -snapshot-dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cacheBytes := *cacheMB << 20
	if *cacheMB == 0 {
		cacheBytes = -1 // Config treats 0 as "default"; negative disables
	}
	if *snapEvery > 0 && *snapDir == "" {
		return fmt.Errorf("-snapshot-every requires -snapshot-dir")
	}
	srv := service.New(service.Config{
		Queue:         *queue,
		Workers:       *workers,
		JobsPerRun:    *jobsPerRun,
		CacheBytes:    cacheBytes,
		Timeout:       *timeout,
		Version:       resolveVersion(*version),
		SnapshotDir:   *snapDir,
		SnapshotEvery: *snapEvery,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger := log.New(out, "sweepd: ", log.LstdFlags)
	logger.Printf("serving on %s (workers=%d queue=%d cache=%dMiB timeout=%s)",
		ln.Addr(), *workers, *queue, *cacheMB, *timeout)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		return err
	case got := <-sig:
		logger.Printf("received %s, draining (grace %s)", got, *drainGrace)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain incomplete: %v (running jobs cancelled)", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	cs := srv.CacheStats()
	logger.Printf("drained: cache %d entries / %d bytes, %d hits / %d misses / %d shared",
		cs.Entries, cs.Bytes, cs.Hits, cs.Misses, cs.Shared)
	return nil
}

// resolveVersion picks the cache-key code-version tag: an explicit flag
// wins; otherwise the VCS revision baked into the build (so a rebuild from
// different sources invalidates cached results); "dev" as a last resort.
func resolveVersion(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				return kv.Value
			}
		}
	}
	return "dev"
}
