// Command sweepd serves the reproduction experiments (E1–E17) as a
// long-running HTTP service: sweep jobs over a bounded queue and worker
// pool, fronted by a content-addressed result cache so identical requests
// — the dominant pattern in parameter-sweep studies — simulate once and
// hit forever after. See README.md "Running as a service" for the
// endpoint reference, DESIGN.md §22 for the cache and backpressure model,
// and DESIGN.md §27 for the cluster topology.
//
// Usage:
//
//	sweepd -addr :8080                     # serve with defaults
//	sweepd -workers 4 -queue 128           # more concurrency, deeper queue
//	sweepd -cache-mb 512 -timeout 5m       # bigger cache, shorter job leash
//	sweepd -cache-dir /var/lib/sweepd      # cache survives restarts
//
//	curl -s localhost:8080/api/v1/run -d '{"exp":"E1","quick":true}'
//	curl -s localhost:8080/api/v1/jobs -d '{"exp":"E8"}'    # async
//	curl -s localhost:8080/metrics
//
// Cluster roles (README.md "Running a cluster"): N ordinary sweepd
// processes become shard workers, and one more process runs with
// -coordinator to front them — same API, requests rendezvous-hashed by
// cache key across live workers, failed points dead-lettered and retried:
//
//	sweepd -addr :8081 -cache-dir /data/w0 -coordinator-url http://localhost:8080 &
//	sweepd -addr :8082 -cache-dir /data/w1 -coordinator-url http://localhost:8080 &
//	sweepd -addr :8080 -coordinator -worker-urls http://localhost:8081,http://localhost:8082
//
// SIGINT/SIGTERM drain gracefully: submissions get 503, queued jobs are
// rejected, running jobs finish (up to -drain-grace), then the listener
// shuts down (and a -cache-dir log is synced closed).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"checkpointsim/internal/cache"
	"checkpointsim/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until a shutdown signal. ready, when
// non-nil, receives the bound address once the listener is up (tests use
// it to avoid port races).
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 2, "concurrent jobs (each fans its sweep across -jobs cores)")
		jobsPerRun = fs.Int("jobs", 0, "sweep worker pool per job (0 = all cores)")
		queue      = fs.Int("queue", 64, "job queue capacity; a full queue answers 429 + Retry-After")
		cacheMB    = fs.Int64("cache-mb", 256, "result cache budget in MiB (0 disables caching)")
		cacheDir   = fs.String("cache-dir", "", "persist the result cache as an append-only sealed log in this directory; warm results survive restarts (replaces the in-memory store; -cache-mb becomes the log budget)")
		timeout    = fs.Duration("timeout", 10*time.Minute, "default and maximum per-job runtime")
		drainGrace = fs.Duration("drain-grace", 30*time.Second, "how long a shutdown signal waits for running jobs")
		version    = fs.String("version", "", "cache-key code version tag (default: VCS revision from build info, else \"dev\")")
		snapDir    = fs.String("snapshot-dir", "", "persist mid-run snapshots of scenario jobs here; a restarted server resumes resubmitted jobs from the last boundary (empty = off)")
		snapEvery  = fs.Int64("snapshot-every", 0, "event cadence for scenario-job snapshots (0 = default 100000; needs -snapshot-dir or -coordinator-url)")

		// Cluster roles.
		coordinator = fs.Bool("coordinator", false, "serve as the cluster coordinator (requires -worker-urls; job flags above do not apply)")
		workerURLs  = fs.String("worker-urls", "", "comma-separated worker base URLs the coordinator shards across (order fixes shard names w0..wN)")
		coordURL    = fs.String("coordinator-url", "", "worker role: publish mid-run scenario snapshots to this coordinator, so a killed worker's job resumes on a peer from its last boundary")
		dlqAttempts = fs.Int("dlq-attempts", 5, "coordinator: dead-letter retries before a failed point parks for manual requeue")
		retryBase   = fs.Duration("retry-base", 250*time.Millisecond, "coordinator: first dead-letter backoff, doubling per attempt")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *coordinator {
		if *coordURL != "" {
			return fmt.Errorf("-coordinator and -coordinator-url are different roles; pick one")
		}
		return runCoordinator(*addr, *workerURLs, resolveVersion(*version), *dlqAttempts, *retryBase, out, ready)
	}
	if *workerURLs != "" {
		return fmt.Errorf("-worker-urls only applies with -coordinator")
	}

	cacheBytes := *cacheMB << 20
	if *cacheMB == 0 {
		cacheBytes = -1 // Config treats 0 as "default"; negative disables
	}
	if *snapEvery > 0 && *snapDir == "" && *coordURL == "" {
		return fmt.Errorf("-snapshot-every requires -snapshot-dir or -coordinator-url")
	}
	cfg := service.Config{
		Queue:         *queue,
		Workers:       *workers,
		JobsPerRun:    *jobsPerRun,
		CacheBytes:    cacheBytes,
		Timeout:       *timeout,
		Version:       resolveVersion(*version),
		SnapshotDir:   *snapDir,
		SnapshotEvery: *snapEvery,
	}
	if *cacheDir != "" {
		st, err := cache.NewDiskStore(*cacheDir, cacheBytes)
		if err != nil {
			return fmt.Errorf("opening -cache-dir: %w", err)
		}
		cfg.CacheStore = st
	}
	var pub *snapshotPublisher
	if *coordURL != "" {
		pub = newSnapshotPublisher(strings.TrimRight(*coordURL, "/"))
		cfg.PublishSnapshot = pub.publish
	}
	srv := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger := log.New(out, "sweepd: ", log.LstdFlags)
	logger.Printf("serving on %s (workers=%d queue=%d cache=%dMiB timeout=%s)",
		ln.Addr(), *workers, *queue, *cacheMB, *timeout)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		srv.Close()
		return err
	case got := <-sig:
		logger.Printf("received %s, draining (grace %s)", got, *drainGrace)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain incomplete: %v (running jobs cancelled)", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if pub != nil {
		pub.close()
	}
	cs := srv.CacheStats()
	// Close after the drain so a disk-backed store syncs its log: what was
	// cached this run is warm on the next start.
	srv.Close()
	logger.Printf("drained: cache %d entries / %d bytes, %d hits / %d misses / %d shared",
		cs.Entries, cs.Bytes, cs.Hits, cs.Misses, cs.Shared)
	return nil
}

// runCoordinator serves the coordinator role: no local simulation, just
// sharded proxying, the dead-letter queue, and snapshot blob shipping.
func runCoordinator(addr, workerURLs, version string, dlqAttempts int, retryBase time.Duration, out io.Writer, ready chan<- string) error {
	var urls []string
	for _, u := range strings.Split(workerURLs, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-coordinator requires -worker-urls")
	}
	coord, err := service.NewCoordinator(service.CoordinatorConfig{
		Workers:     urls,
		Version:     version,
		MaxAttempts: dlqAttempts,
		RetryBase:   retryBase,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		coord.Close()
		return err
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	logger := log.New(out, "sweepd: ", log.LstdFlags)
	logger.Printf("coordinating %d workers on %s (dlq-attempts=%d retry-base=%s)",
		len(urls), ln.Addr(), dlqAttempts, retryBase)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		coord.Close()
		return err
	case got := <-sig:
		logger.Printf("received %s, shutting down", got)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		coord.Close()
		return err
	}
	coord.Close()
	return nil
}

// snapshotPublisher ships scenario snapshots to the coordinator off the
// job goroutine: the OnSnapshot hook must not stall the simulation on a
// slow network, so blobs go through a small buffer and are dropped when
// it backs up — a snapshot is a recovery hint, and a fresher one is
// always coming.
type snapshotPublisher struct {
	url    string
	client *http.Client
	ch     chan publishedBlob
	done   chan struct{}
}

type publishedBlob struct {
	key  string
	blob []byte
}

func newSnapshotPublisher(url string) *snapshotPublisher {
	p := &snapshotPublisher{
		url:    url,
		client: &http.Client{Timeout: 10 * time.Second},
		ch:     make(chan publishedBlob, 8),
		done:   make(chan struct{}),
	}
	go p.loop()
	return p
}

func (p *snapshotPublisher) publish(key string, blob []byte) {
	// The engine reuses its snapshot buffer; copy before leaving the hook.
	sb := publishedBlob{key: key, blob: append([]byte(nil), blob...)}
	select {
	case p.ch <- sb:
	default: // backed up: drop this one, the next boundary replaces it
	}
}

func (p *snapshotPublisher) loop() {
	defer close(p.done)
	for sb := range p.ch {
		resp, err := p.client.Post(p.url+"/api/v1/snapshots/"+sb.key,
			"application/octet-stream", bytes.NewReader(sb.blob))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

func (p *snapshotPublisher) close() {
	close(p.ch)
	<-p.done
}

// resolveVersion picks the cache-key code-version tag: an explicit flag
// wins; otherwise the VCS revision baked into the build (so a rebuild from
// different sources invalidates cached results); "dev" as a last resort.
func resolveVersion(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				return kv.Value
			}
		}
	}
	return "dev"
}
