package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end through main's run(): bind an ephemeral port, serve a sweep
// twice (second must be a cache hit with identical bytes), scrape
// /metrics, then SIGTERM and expect a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a server and runs a quick experiment")
	}
	ready := make(chan string, 1)
	var out bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-version", "test"}, &out, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	post := func() (string, []byte) {
		resp, err := http.Post(base+"/api/v1/run", "application/json",
			strings.NewReader(`{"exp":"E1","quick":true}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run status %d: %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Sweepd-Source"), body
	}
	src1, body1 := post()
	src2, body2 := post()
	if src1 != "computed" || src2 != "hit" {
		t.Errorf("sources = %q, %q; want computed then hit", src1, src2)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached response bytes differ from fresh run")
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"sweepd_cache_hits_total 1", "sweepd_cache_misses_total 1", "sweepd_up 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("drain summary missing from log:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-addr"}, io.Discard, nil); err == nil {
		t.Error("dangling -addr accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, io.Discard, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
}

func TestResolveVersion(t *testing.T) {
	if got := resolveVersion("pinned"); got != "pinned" {
		t.Errorf("explicit version ignored: %q", got)
	}
	if got := resolveVersion(""); got == "" {
		t.Error("empty resolved version")
	}
}
