package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end through main's run(): bind an ephemeral port, serve a sweep
// twice (second must be a cache hit with identical bytes), scrape
// /metrics, then SIGTERM and expect a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a server and runs a quick experiment")
	}
	ready := make(chan string, 1)
	var out bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-version", "test"}, &out, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	post := func() (string, []byte) {
		resp, err := http.Post(base+"/api/v1/run", "application/json",
			strings.NewReader(`{"exp":"E1","quick":true}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run status %d: %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Sweepd-Source"), body
	}
	src1, body1 := post()
	src2, body2 := post()
	if src1 != "computed" || src2 != "hit" {
		t.Errorf("sources = %q, %q; want computed then hit", src1, src2)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached response bytes differ from fresh run")
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"sweepd_cache_hits_total 1", "sweepd_cache_misses_total 1", "sweepd_up 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("drain summary missing from log:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-addr"}, io.Discard, nil); err == nil {
		t.Error("dangling -addr accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, io.Discard, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
}

func TestResolveVersion(t *testing.T) {
	if got := resolveVersion("pinned"); got != "pinned" {
		t.Errorf("explicit version ignored: %q", got)
	}
	if got := resolveVersion(""); got == "" {
		t.Error("empty resolved version")
	}
}

// startRun launches run() with the given args and returns its base URL
// and error channel. Every server started this way shares the process's
// signal handler, so one SIGTERM at the end of a test drains them all.
func startRun(t *testing.T, args ...string) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(args, io.Discard, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, errc
	case err := <-errc:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	return "", nil
}

// drainAll SIGTERMs the process and waits for every run() to exit clean.
func drainAll(t *testing.T, errcs ...chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i, errc := range errcs {
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("server %d returned %v after SIGTERM", i, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("server %d did not drain after SIGTERM", i)
		}
	}
}

// TestRunDiskCacheSurvivesRestart drives the -cache-dir flag end to end:
// a result computed before SIGTERM is served byte-identical as a disk
// hit by a freshly started process on the same directory.
func TestRunDiskCacheSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("starts servers and runs a quick experiment")
	}
	dir := t.TempDir()
	const reqBody = `{"exp":"E1","quick":true}`
	post := func(base string) (string, []byte) {
		resp, err := http.Post(base+"/api/v1/run", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run status %d: %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Sweepd-Source"), body
	}

	base, errc := startRun(t, "-addr", "127.0.0.1:0", "-workers", "1",
		"-version", "test", "-cache-dir", dir)
	src1, body1 := post(base)
	if src1 != "computed" {
		t.Errorf("first run source = %q, want computed", src1)
	}
	drainAll(t, errc)

	base, errc = startRun(t, "-addr", "127.0.0.1:0", "-workers", "1",
		"-version", "test", "-cache-dir", dir)
	src2, body2 := post(base)
	if src2 != "hit" {
		t.Errorf("post-restart source = %q, want hit", src2)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("restart broke byte identity")
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "sweepd_cache_disk_hits_total 1") {
		t.Error("metrics missing sweepd_cache_disk_hits_total 1")
	}
	drainAll(t, errc)
}

// TestRunCluster stands up two workers and a coordinator through main's
// run() — the exact flag wiring the CI cluster-smoke job uses — and
// checks routed runs, sticky cache hits, and the cluster endpoints.
func TestRunCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("starts three servers and runs a quick experiment")
	}
	w0, errc0 := startRun(t, "-addr", "127.0.0.1:0", "-workers", "1", "-version", "test")
	w1, errc1 := startRun(t, "-addr", "127.0.0.1:0", "-workers", "1", "-version", "test")
	coord, errcC := startRun(t, "-addr", "127.0.0.1:0", "-coordinator",
		"-worker-urls", w0+","+w1, "-version", "test")

	post := func() (*http.Response, []byte) {
		resp, err := http.Post(coord+"/api/v1/run", "application/json",
			strings.NewReader(`{"exp":"E1","quick":true}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}
	resp, body1 := post()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run via coordinator: status %d: %s", resp.StatusCode, body1)
	}
	shard := resp.Header.Get("X-Sweepd-Worker")
	if shard != "w0" && shard != "w1" {
		t.Errorf("X-Sweepd-Worker = %q, want w0 or w1", shard)
	}
	resp, body2 := post()
	if src := resp.Header.Get("X-Sweepd-Source"); src != "hit" {
		t.Errorf("repeat source = %q, want hit (sticky shard routing)", src)
	}
	if got := resp.Header.Get("X-Sweepd-Worker"); got != shard {
		t.Errorf("repeat routed to %q, first run to %q", got, shard)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit bytes differ from fresh run")
	}

	resp, err := http.Get(coord + "/api/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	workers, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`"w0"`, `"w1"`, `"alive": true`} {
		if !strings.Contains(string(workers), want) {
			t.Errorf("/api/v1/workers missing %s:\n%s", want, workers)
		}
	}
	resp, err = http.Get(coord + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"sweepd_coord_up 1", "sweepd_coord_workers_alive 2", "sweepd_coord_dlq_entered_total 0"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}

	drainAll(t, errc0, errc1, errcC)
}

// TestRunRoleFlagValidation: contradictory or incomplete role flags fail
// fast instead of serving a half-configured cluster.
func TestRunRoleFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-coordinator"},                                           // no workers
		{"-coordinator", "-worker-urls", " , "},                    // empty list
		{"-coordinator", "-coordinator-url", "http://localhost:1"}, // both roles
		{"-worker-urls", "http://localhost:1"},                     // worker list without -coordinator
		{"-snapshot-every", "100"},                                 // cadence with nowhere to persist
	}
	for _, args := range cases {
		if err := run(args, io.Discard, nil); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// The snapshot publisher ships blobs to the coordinator off the job
// goroutine, copying the buffer before the engine reuses it.
func TestSnapshotPublisherShipsBlobs(t *testing.T) {
	type shipped struct {
		key  string
		body []byte
	}
	got := make(chan shipped, 8)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || !strings.HasPrefix(r.URL.Path, "/api/v1/snapshots/") {
			t.Errorf("unexpected publish request: %s %s", r.Method, r.URL.Path)
		}
		body, _ := io.ReadAll(r.Body)
		got <- shipped{key: strings.TrimPrefix(r.URL.Path, "/api/v1/snapshots/"), body: body}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	p := newSnapshotPublisher(ts.URL)
	blob := []byte("snapshot-bytes")
	p.publish("abc123", blob)
	blob[0] = 'X' // the engine reuses its buffer; the publisher must have copied
	p.close()     // waits for the loop to drain

	select {
	case s := <-got:
		if s.key != "abc123" {
			t.Errorf("published key = %q, want abc123", s.key)
		}
		if string(s.body) != "snapshot-bytes" {
			t.Errorf("published body = %q, want the pre-mutation copy", s.body)
		}
	default:
		t.Fatal("no blob arrived at the coordinator endpoint")
	}
}
