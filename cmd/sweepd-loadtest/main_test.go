package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"checkpointsim/internal/service"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

// startServer brings up a real sweepd service for the loadtest to hit.
func startServer(t *testing.T) string {
	t.Helper()
	s := service.New(service.Config{Version: "test", Timeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

// The happy path: a small schedule against a live sweepd verifies clean,
// reports throughput and percentiles, and writes the JSON summary.
func TestLoadtestVerifiesAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	url := startServer(t)
	path := filepath.Join(t.TempDir(), "load.json")
	out, err := runCmd(t, "-url", url, "-points", "2", "-seed", "7", "-c", "2",
		"-workloads", "sweep,cg", "-scales", "8", "-summary", path)
	if err != nil {
		t.Fatalf("loadtest: %v\n%s", err, out)
	}
	for _, want := range []string{
		"loadtest: 2 points (seed 7)",
		"4 requests in",
		"all 2 points verified byte-identical to local runs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, data)
	}
	if s.Points != 2 || s.Requests != 4 || s.Failures != 0 {
		t.Errorf("summary = %+v, want 2 points / 4 requests / 0 failures", s)
	}
	if !(s.ThroughputRPS > 0) || !(s.P50Ms > 0) {
		t.Errorf("summary missing rates: %+v", s)
	}
}

// A server that 200s with the wrong bytes must fail verification — the
// loadtest is a correctness harness first, a traffic generator second.
func TestLoadtestDetectsWrongBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Sweepd-Source", "hit")
		w.Write([]byte(`{"not":"a result"}`))
	}))
	defer ts.Close()
	out, err := runCmd(t, "-url", ts.URL, "-points", "1", "-seed", "7",
		"-workloads", "sweep", "-scales", "8")
	if err == nil {
		t.Fatalf("loadtest accepted wrong bytes:\n%s", out)
	}
	if !strings.Contains(out, "response differs from local run") {
		t.Errorf("no byte-mismatch FAIL line in:\n%s", out)
	}
	if !strings.Contains(err.Error(), "failed verification") {
		t.Errorf("error = %v, want verification failure", err)
	}
}

// 429 + integer Retry-After slows the loadtest down instead of failing
// it: the client sleeps the hint and resubmits to the same server.
func TestLoadtestHonorsRetryAfter(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	backend := startServer(t)
	var throttled bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !throttled {
			throttled = true
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		resp, err := http.Post(backend+r.URL.Path, r.Header.Get("Content-Type"), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for _, h := range []string{"Content-Type", "X-Sweepd-Source"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer proxy.Close()

	out, err := runCmd(t, "-url", proxy.URL, "-points", "1", "-seed", "7", "-c", "1",
		"-workloads", "sweep", "-scales", "8")
	if err != nil {
		t.Fatalf("loadtest under throttling: %v\n%s", err, out)
	}
	if !strings.Contains(out, "1 retried on 429") {
		t.Errorf("retry count not reported:\n%s", out)
	}
	if !strings.Contains(out, "all 1 points verified") {
		t.Errorf("throttled point did not verify:\n%s", out)
	}
}

// Flag validation fails fast, before any simulation work.
func TestLoadtestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing url", []string{"-points", "1"}, "-url is required"},
		{"bad points", []string{"-url", "http://x", "-points", "0"}, "-points must be"},
		{"bad concurrency", []string{"-url", "http://x", "-c", "0"}, "-c must be"},
		{"bad scales", []string{"-url", "http://x", "-scales", "eight"}, "bad -scales entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := runCmd(t, tc.args...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q\n%s", err, tc.want, out)
			}
		})
	}
}
