// Command sweepd-loadtest drives a sweepd cluster (or a single sweepd)
// with a seeded schedule of campaign scenario points and verifies every
// response against a local run — a load generator that doubles as an
// end-to-end correctness harness, following cmd/campaign's double-run
// pattern: each point is POSTed twice, the second response must be a
// cache hit, and both bodies must be byte-identical to the bytes a local
// Scenario.Run encodes. Throughput and latency percentiles come from the
// client's clock, so the tool reports what a campaign would actually
// experience through the coordinator, proxy hop included.
//
// Usage:
//
//	sweepd-loadtest -url http://localhost:8080                 # defaults: 16 points
//	sweepd-loadtest -url http://localhost:8080 -points 200 -c 8
//	sweepd-loadtest -url http://localhost:8080 -summary load.json
//
// The point schedule is a pure function of -seed, identical to the one
// cmd/campaign draws, so a loadtest and a campaign with the same seed
// sweep the same points — pre-seeding one warms the other. 429 responses
// are honored: the client sleeps the advertised integer Retry-After and
// retries, so a bounded queue slows the test instead of failing it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"checkpointsim/internal/exp"
	"checkpointsim/internal/runner"
	"checkpointsim/internal/service"
	"checkpointsim/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd-loadtest:", err)
		os.Exit(1)
	}
}

// maxRetries bounds how often one request re-submits after a 429 before
// the point counts as failed.
const maxRetries = 20

// summary is the machine-readable report -summary writes.
type summary struct {
	URL           string  `json:"url"`
	Seed          uint64  `json:"seed"`
	Points        int     `json:"points"`
	Requests      int     `json:"requests"`
	Failures      int     `json:"failures"`
	Retries429    int64   `json:"retries_429"`
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweepd-loadtest", flag.ContinueOnError)
	var (
		url         = fs.String("url", "", "base URL of the coordinator or sweepd to load (required)")
		points      = fs.Int("points", 16, "scenario points in the schedule (each is requested twice)")
		seed        = fs.Uint64("seed", 42, "schedule seed (same schedule as campaign -seed)")
		concurrency = fs.Int("c", 4, "concurrent in-flight requests")
		localJobs   = fs.Int("j", runtime.NumCPU(), "worker pool for the local reference runs")
		timeout     = fs.Duration("timeout", 5*time.Minute, "per-request client timeout")
		summaryPath = fs.String("summary", "", "write a JSON summary here (throughput, percentiles, failures)")
		workloads   = fs.String("workloads", "", "workload axis override, comma separated (as in campaign)")
		scales      = fs.String("scales", "", "scale (ranks) axis override, comma separated (as in campaign)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}
	if *points < 1 {
		return fmt.Errorf("-points must be at least 1")
	}
	if *concurrency < 1 {
		return fmt.Errorf("-c must be at least 1")
	}
	base := strings.TrimRight(*url, "/")

	space := exp.DefaultCampaignSpace()
	if *workloads != "" {
		space.Workloads = splitCSV(*workloads)
	}
	if *scales != "" {
		space.Scales = nil
		for _, p := range splitCSV(*scales) {
			n, err := strconv.Atoi(p)
			if err != nil {
				return fmt.Errorf("bad -scales entry %q: %v", p, err)
			}
			space.Scales = append(space.Scales, n)
		}
	}
	schedule, err := space.Schedule(*seed, *points)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loadtest: %d points (seed %d) × 2 requests against %s\n",
		len(schedule), *seed, base)

	// Local reference bytes first — the ground truth every response must
	// match. Computed across cores, off the measurement clock.
	refs, err := runner.Map(*localJobs, schedule, func(i int, sc exp.Scenario) ([]byte, error) {
		tables, err := sc.Run(exp.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("local run %s: %w", sc.ID(), err)
		}
		return service.EncodeScenarioResult(sc, tables)
	})
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: *timeout}
	lat := stats.NewLatencyHist(1e-6, 3600, 240)
	var retries429 stats.Counter

	type verdict struct{ fails []string }
	start := time.Now()
	results, err := runner.Map(*concurrency, schedule, func(i int, sc exp.Scenario) (verdict, error) {
		var v verdict
		body := fmt.Sprintf(`{"scenario":%s}`, scenarioJSON(sc))
		for pass, wantSrc := range []string{"", "hit"} {
			code, src, got, err := post(client, base+"/api/v1/run", body, &retries429, lat.Observe)
			switch {
			case err != nil:
				v.fails = append(v.fails, fmt.Sprintf("FAIL %s pass %d: %v", sc.ID(), pass+1, err))
			case code != http.StatusOK:
				v.fails = append(v.fails, fmt.Sprintf("FAIL %s pass %d: status %d: %s", sc.ID(), pass+1, code, strings.TrimSpace(string(got))))
			case !bytes.Equal(got, refs[i]):
				v.fails = append(v.fails, fmt.Sprintf("FAIL %s pass %d: response differs from local run", sc.ID(), pass+1))
			case wantSrc != "" && src != wantSrc:
				v.fails = append(v.fails, fmt.Sprintf("FAIL %s pass %d: source %q, want %q", sc.ID(), pass+1, src, wantSrc))
			}
		}
		return v, nil
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	failures := 0
	for _, v := range results {
		for _, line := range v.fails {
			failures++
			fmt.Fprintln(out, line)
		}
	}

	requests := 2 * len(schedule)
	rps := float64(requests) / wall.Seconds()
	p50, p90, p99 := lat.Quantile(0.5), lat.Quantile(0.9), lat.Quantile(0.99)
	fmt.Fprintf(out, "loadtest: %d requests in %.2fs (%.1f req/s), %d retried on 429\n",
		requests, wall.Seconds(), rps, retries429.Value())
	fmt.Fprintf(out, "latency: p50=%.1fms p90=%.1fms p99=%.1fms\n",
		p50*1e3, p90*1e3, p99*1e3)
	if *summaryPath != "" {
		s := summary{
			URL: base, Seed: *seed, Points: len(schedule), Requests: requests,
			Failures: failures, Retries429: retries429.Value(),
			WallSeconds: wall.Seconds(), ThroughputRPS: rps,
			P50Ms: p50 * 1e3, P90Ms: p90 * 1e3, P99Ms: p99 * 1e3,
		}
		data, jerr := json.MarshalIndent(s, "", "  ")
		if jerr != nil {
			return jerr
		}
		if werr := os.WriteFile(*summaryPath, append(data, '\n'), 0o644); werr != nil {
			return werr
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d requests failed verification", failures, requests)
	}
	fmt.Fprintf(out, "all %d points verified byte-identical to local runs\n", len(schedule))
	return nil
}

// post submits one run request, honoring integer-second Retry-After
// backpressure, and reports the final status, result source, and body.
// Only the accepted attempt's latency is observed — 429 turnarounds
// measure the queue's mood, not a result's cost.
func post(client *http.Client, url, body string, retries *stats.Counter, observe func(float64)) (code int, source string, respBody []byte, err error) {
	for attempt := 0; ; attempt++ {
		start := time.Now()
		resp, err := client.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, "", nil, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, "", nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < maxRetries {
			retries.Inc()
			secs, perr := strconv.Atoi(resp.Header.Get("Retry-After"))
			if perr != nil || secs < 1 {
				return 0, "", nil, fmt.Errorf("429 with unusable Retry-After %q", resp.Header.Get("Retry-After"))
			}
			if secs > 5 {
				secs = 5 // a load test shouldn't nap a full minute per hint
			}
			time.Sleep(time.Duration(secs) * time.Second)
			continue
		}
		observe(time.Since(start).Seconds())
		return resp.StatusCode, resp.Header.Get("X-Sweepd-Source"), b, nil
	}
}

// scenarioJSON renders the scenario request fragment (the wire form of
// exp.Scenario, matching its JSON tags).
func scenarioJSON(sc exp.Scenario) string {
	b, _ := json.Marshal(sc)
	return string(b)
}

func splitCSV(v string) []string {
	parts := strings.Split(v, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
