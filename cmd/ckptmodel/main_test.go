package main

import (
	"strings"
	"testing"
)

func TestSinglePoint(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-write", "60s", "-mtbf", "5y", "-nodes", "1024"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"τ_Young", "τ_Daly", "efficiency:", "model winner:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSweep(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sweep-nodes", "1024:8192"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"1024", "2048", "4096", "8192", "efficiency vs P", "coordinated"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-write", "bogus"},
		{"-restart", "bogus"},
		{"-mtbf", "bogus"},
		{"-sweep-nodes", "not-a-range"},
		{"-sweep-nodes", "100:10"},
		{"-sweep-nodes", "0:10"},
	}
	for _, c := range cases {
		if err := run(c, &sb); err == nil {
			t.Errorf("args %v accepted", c)
		}
	}
}
