// Command ckptmodel explores the analytic checkpointing models without
// running any simulation: optimal intervals (Young/Daly), expected runtime
// and efficiency at scale, and the coordinated-vs-uncoordinated crossover
// frontier.
//
// Usage:
//
//	ckptmodel -write 60s -mtbf 5y -nodes 1024          # one design point
//	ckptmodel -sweep-nodes 64:1048576 -log-overhead 0.1 # efficiency curve
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"checkpointsim/internal/model"
	"checkpointsim/internal/network"
	"checkpointsim/internal/report"
	"checkpointsim/internal/simtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ckptmodel:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ckptmodel", flag.ContinueOnError)
	var (
		write      = fs.String("write", "60s", "checkpoint write cost δ")
		restart    = fs.String("restart", "120s", "restart cost R")
		mtbf       = fs.String("mtbf", "5y", "per-node MTBF θ")
		nodes      = fs.Int("nodes", 1024, "node count P")
		sweepNodes = fs.String("sweep-nodes", "", `sweep "lo:hi" doubling P instead of a single point`)
		logOv      = fs.Float64("log-overhead", 0.10, "uncoordinated logging slowdown fraction")
		replay     = fs.Float64("replay", 2, "log-replay speedup")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	delta, err := simtime.ParseDuration(*write)
	if err != nil {
		return err
	}
	r, err := simtime.ParseDuration(*restart)
	if err != nil {
		return err
	}
	theta, err := simtime.ParseDuration(*mtbf)
	if err != nil {
		return err
	}
	net := network.DefaultParams()

	point := func(p int) (tauD, tauY, effC, effU float64) {
		m := model.SystemMTBF(theta.Seconds(), p)
		tauD = model.DalyInterval(delta.Seconds(), m)
		tauY = model.YoungInterval(delta.Seconds(), m)
		pr := model.ProtocolProjection{
			Nodes:         p,
			NodeMTBF:      theta.Seconds(),
			Write:         delta.Seconds(),
			Restart:       r.Seconds(),
			CoordDelay:    model.CoordinationDelay(p, net, 64),
			LogOverhead:   *logOv,
			ReplaySpeedup: *replay,
		}
		return tauD, tauY, model.CoordinatedEfficiency(pr), model.UncoordinatedEfficiency(pr)
	}

	if *sweepNodes == "" {
		tauD, tauY, effC, effU := point(*nodes)
		m := model.SystemMTBF(theta.Seconds(), *nodes)
		fmt.Fprintf(out, "P = %d nodes, θ = %v/node → system MTBF %s\n",
			*nodes, theta, simtime.FromSeconds(m))
		fmt.Fprintf(out, "δ = %v, R = %v\n", delta, r)
		fmt.Fprintf(out, "τ_Young = %s, τ_Daly = %s\n",
			simtime.FromSeconds(tauY), simtime.FromSeconds(tauD))
		fmt.Fprintf(out, "efficiency: coordinated %.4f, uncoordinated %.4f (log overhead %.0f%%, replay %.1fx)\n",
			effC, effU, *logOv*100, *replay)
		winner := "coordinated"
		if effU > effC {
			winner = "uncoordinated"
		}
		fmt.Fprintf(out, "model winner: %s\n", winner)
		return nil
	}

	parts := strings.Split(*sweepNodes, ":")
	if len(parts) != 2 {
		return fmt.Errorf(`-sweep-nodes wants "lo:hi"`)
	}
	lo, err1 := strconv.Atoi(parts[0])
	hi, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || lo <= 0 || hi < lo {
		return fmt.Errorf("bad sweep range %q", *sweepNodes)
	}
	t := report.NewTable(
		fmt.Sprintf("efficiency at scale (δ=%v, R=%v, θ=%v, log=%.0f%%)", delta, r, theta, *logOv*100),
		"P", "sys-MTBF", "τ_Daly", "eff-coordinated", "eff-uncoordinated", "winner")
	series := map[string][]report.Point{}
	for p := lo; p <= hi; p *= 2 {
		tauD, _, effC, effU := point(p)
		m := model.SystemMTBF(theta.Seconds(), p)
		winner := "coordinated"
		if effU > effC {
			winner = "uncoordinated"
		}
		t.AddRow(p, simtime.FromSeconds(m).String(), simtime.FromSeconds(tauD).String(),
			effC, effU, winner)
		series["coordinated"] = append(series["coordinated"], report.Point{X: float64(p), Y: effC})
		series["uncoordinated"] = append(series["uncoordinated"], report.Point{X: float64(p), Y: effU})
	}
	t.Fprint(out)
	fmt.Fprintln(out)
	report.Plot(out, "efficiency vs P", 72, 16, series)
	return nil
}
