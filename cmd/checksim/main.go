// Command checksim runs a single checkpointing simulation and prints its
// results.
//
// Usage:
//
//	checksim -workload stencil2d -ranks 64 -iters 100 -compute 1ms \
//	         -bytes 4096 -protocol coordinated -interval 10ms -write 1ms
//
// Failure injection:
//
//	checksim -workload cg -ranks 64 -protocol uncoordinated -offset staggered \
//	         -interval 10ms -write 1ms -log-alpha 1us -log-beta 0.2 \
//	         -mtbf 4s -restart 2ms -recovery local
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"checkpointsim"
	"checkpointsim/internal/exp"
	"checkpointsim/internal/failure"
	"checkpointsim/internal/network"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/timeline"
	"checkpointsim/internal/validate"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "checksim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("checksim", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "stencil2d", "workload name (-list to enumerate)")
		traceFile    = fs.String("trace", "", "run this GOAL trace file instead of a generated workload (see cmd/tracegen)")
		list         = fs.Bool("list", false, "list workloads and exit")
		ranks        = fs.Int("ranks", 64, "number of ranks")
		iters        = fs.Int("iters", 50, "iterations")
		compute      = fs.String("compute", "1ms", "mean per-iteration compute")
		jitter       = fs.Float64("jitter", 0, "relative compute jitter (stddev fraction)")
		bytes        = fs.Int64("bytes", 4096, "dominant message size")
		protocol     = fs.String("protocol", "none", "none|coordinated|uncoordinated|hierarchical|nonblocking|partner|twolevel|replication|cic")
		interval     = fs.String("interval", "10ms", "checkpoint interval")
		write        = fs.String("write", "1ms", "checkpoint write time")
		offset       = fs.String("offset", "staggered", "uncoordinated offsets: aligned|staggered|random")
		cluster      = fs.Int("cluster", 8, "hierarchical cluster size")
		window       = fs.String("window", "4ms", "nonblocking: background write window")
		slowdown     = fs.Float64("slowdown", 1.25, "nonblocking: interference factor during the window")
		ckptBytes    = fs.Int64("ckpt-bytes", 1<<20, "partner: checkpoint image size")
		localIv      = fs.String("local-interval", "2ms", "twolevel: local checkpoint interval")
		localWr      = fs.String("local-write", "100us", "twolevel: local write time")
		degree       = fs.Int("replica-degree", 1, "replication: replicas per application rank (machine grows to ranks*(degree+1))")
		hbPeriod     = fs.String("hb-period", "1ms", "replication: heartbeat period (bounds failure-detection latency)")
		takeover     = fs.String("takeover", "500us", "replication: replica promotion cost after detection")
		cicLag       = fs.Int("cic-lag", 1, "cic: index-lag threshold forcing a checkpoint (1 = Z-path-free)")
		incrEvery    = fs.Int("incr-every", 0, "uncoordinated: every k-th write is full, others incremental (0 = off)")
		incrFrac     = fs.Float64("incr-fraction", 0.25, "uncoordinated: incremental write fraction of full")
		logAlpha     = fs.String("log-alpha", "0", "per-message logging CPU cost")
		logBeta      = fs.Float64("log-beta", 0, "per-byte logging cost (ns/B)")
		noisePeriod  = fs.String("noise-period", "", "noise period (empty = no noise)")
		noiseDur     = fs.String("noise-duration", "25us", "noise event duration")
		mtbf         = fs.String("mtbf", "", "per-node MTBF (empty = no failures)")
		restart      = fs.String("restart", "1ms", "failure restart cost")
		recovery     = fs.String("recovery", "global", "failure recovery: global|local|takeover")
		seed         = fs.Uint64("seed", 42, "random seed")
		maxTime      = fs.String("max-time", "0", "abort after this much virtual time (0 = unlimited)")
		netPreset    = fs.String("net", "default", "network preset: default|capability|ethernet")
		bisection    = fs.Float64("bisection", 0, "bisection bandwidth in GB/s (0 = unconstrained)")
		storeAgg     = fs.Float64("store-agg", 0, "aggregate PFS bandwidth in GB/s (0 = unconstrained)")
		storeWriter  = fs.Float64("store-writer", 0, "per-writer PFS bandwidth cap in GB/s (0 = uncapped)")
		storeNode    = fs.Float64("store-node", 0, "node-local burst-buffer bandwidth in GB/s (0 = unconstrained)")
		ranksPerNode = fs.Int("ranks-per-node", 0, "ranks per node for the node storage tier (0 = 1)")
		imageBytes   = fs.Int64("image-bytes", 0, "checkpoint image size drained through the store (0 = derive from -write)")
		validateRun  = fs.Bool("validate", false, "run the simulation under the trace-conformance checker (internal/validate); invariant violations are fatal")
		snapEvery    = fs.Int64("snapshot-every", 0, "snapshot the complete simulator state every N events at a safe boundary (0 = off; requires -snapshot-dir)")
		snapDir      = fs.String("snapshot-dir", "", "directory receiving snapshot blobs (snap-<events>.ckpt, written atomically)")
		resumeFile   = fs.String("resume", "", "resume from this snapshot blob instead of starting from t=0 (config must match the snapshotting run)")
		timelineCSV  = fs.String("timeline", "", "write a per-job CPU timeline CSV to this file")
		gantt        = fs.Bool("gantt", false, "print an ASCII Gantt chart and utilization summary")
		ganttWidth   = fs.Int("gantt-width", 100, "Gantt chart width in columns")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, w := range checkpointsim.Workloads() {
			fmt.Fprintf(out, "%-12s %s\n", w, checkpointsim.DescribeWorkload(w))
		}
		return nil
	}

	parse := func(s string) (simtime.Duration, error) { return simtime.ParseDuration(s) }
	comp, err := parse(*compute)
	if err != nil {
		return err
	}
	iv, err := parse(*interval)
	if err != nil {
		return err
	}
	wr, err := parse(*write)
	if err != nil {
		return err
	}
	la, err := parse(*logAlpha)
	if err != nil {
		return err
	}
	mt, err := parse(*maxTime)
	if err != nil {
		return err
	}
	win, err := parse(*window)
	if err != nil {
		return err
	}
	liv, err := parse(*localIv)
	if err != nil {
		return err
	}
	lwr, err := parse(*localWr)
	if err != nil {
		return err
	}
	hb, err := parse(*hbPeriod)
	if err != nil {
		return err
	}
	tk, err := parse(*takeover)
	if err != nil {
		return err
	}

	var netParams checkpointsim.NetworkParams
	switch *netPreset {
	case "default":
		netParams = network.DefaultParams()
	case "capability":
		netParams = network.CapabilityClassParams()
	case "ethernet":
		netParams = network.EthernetClassParams()
	default:
		return fmt.Errorf("unknown network preset %q", *netPreset)
	}
	if *bisection < 0 {
		return fmt.Errorf("negative bisection bandwidth")
	}
	netParams.BisectionBytesPerSec = *bisection * 1e9
	if *storeAgg < 0 || *storeWriter < 0 || *storeNode < 0 {
		return fmt.Errorf("negative storage bandwidth")
	}

	cfg := checkpointsim.RunConfig{
		Workload: *workloadName,
		Net:      netParams,
		Storage: checkpointsim.StorageParams{
			AggregateBytesPerSec: *storeAgg * 1e9,
			PerWriterBytesPerSec: *storeWriter * 1e9,
			NodeBytesPerSec:      *storeNode * 1e9,
			RanksPerNode:         *ranksPerNode,
		},
		Ranks:      *ranks,
		Iterations: *iters,
		Compute:    comp,
		Jitter:     *jitter,
		MsgBytes:   *bytes,
		Protocol: checkpointsim.ProtocolConfig{
			Kind:        checkpointsim.ProtoKind(*protocol),
			Interval:    iv,
			Write:       wr,
			Offset:      *offset,
			Logging:     checkpointsim.LogParams{Alpha: la, BetaNsPerByte: *logBeta},
			ClusterSize: *cluster,
			Window:      win,
			Slowdown:    *slowdown,
			CkptBytes:   *ckptBytes,
			Bytes:       *imageBytes,
			TwoLevel: checkpointsim.TwoLevelParams{
				LocalInterval:  liv,
				LocalWrite:     lwr,
				GlobalInterval: iv,
				GlobalWrite:    wr,
			},
			Incremental: checkpointsim.IncrementalParams{
				FullEvery: *incrEvery,
				Fraction:  *incrFrac,
			},
			ReplicaDegree:   *degree,
			HeartbeatPeriod: hb,
			TakeoverCost:    tk,
			CICLag:          *cicLag,
		},
		Seed:    *seed,
		MaxTime: simtime.Time(mt),
	}
	var traceName, traceDigest string
	if *traceFile != "" {
		prog, name, digest, err := exp.LoadTraceFile(*traceFile)
		if err != nil {
			return err
		}
		cfg.Program = prog
		traceName, traceDigest = name, digest
	}
	var timelineRows [][]string
	col := timeline.NewCollector()
	if *timelineCSV != "" || *gantt {
		cfg.Trace = func(ev checkpointsim.TraceEvent) {
			col.Add(ev)
			if *timelineCSV != "" && ev.Type == checkpointsim.TraceCPU {
				timelineRows = append(timelineRows, []string{
					strconv.Itoa(ev.Rank), ev.Kind,
					strconv.FormatInt(int64(ev.Start), 10),
					strconv.FormatInt(int64(ev.End), 10),
				})
			}
		}
	}
	var chk *validate.Checker
	if *validateRun {
		if *resumeFile != "" {
			return fmt.Errorf("-resume cannot be combined with -validate: the conformance checker needs the trace from t=0, which a resumed run does not replay")
		}
		chk = validate.New(netParams)
		cfg.Trace = chk.Hook(cfg.Trace)
	}
	var snapped int
	var snapErr error
	if *snapEvery > 0 {
		if *snapDir == "" {
			return fmt.Errorf("-snapshot-every requires -snapshot-dir")
		}
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			return err
		}
		cfg.SnapshotEvery = *snapEvery
		cfg.OnSnapshot = func(s checkpointsim.Snapshot) {
			name := filepath.Join(*snapDir, fmt.Sprintf("snap-%012d.ckpt", s.Events))
			if werr := writeFileAtomic(name, s.Blob); werr != nil && snapErr == nil {
				snapErr = fmt.Errorf("writing snapshot %s: %w", name, werr)
			}
			snapped++
		}
	}
	if *resumeFile != "" {
		blob, rerr := os.ReadFile(*resumeFile)
		if rerr != nil {
			return rerr
		}
		cfg.ResumeFrom = blob
	}
	if *noisePeriod != "" {
		np, err := parse(*noisePeriod)
		if err != nil {
			return err
		}
		nd, err := parse(*noiseDur)
		if err != nil {
			return err
		}
		cfg.Noise = &checkpointsim.NoiseConfig{Period: np, Duration: nd}
	}
	if *mtbf != "" {
		m, err := parse(*mtbf)
		if err != nil {
			return err
		}
		rs, err := parse(*restart)
		if err != nil {
			return err
		}
		kind := failure.RollbackGlobal
		switch *recovery {
		case "global":
		case "local":
			kind = failure.ReplayLocal
		case "takeover":
			kind = failure.TakeoverReplica
		default:
			return fmt.Errorf("unknown recovery %q", *recovery)
		}
		cfg.Failures = &checkpointsim.FailureConfig{MTBF: m, Restart: rs, Kind: kind}
	}

	res, err := checkpointsim.Run(cfg)
	if err != nil {
		return err
	}
	if snapErr != nil {
		return snapErr
	}
	if chk != nil {
		if verr := chk.Finish(res.Result); verr != nil {
			return verr
		}
		if s := res.Store; s != nil {
			if verr := chk.CheckStorage(s.Stats()); verr != nil {
				return verr
			}
		}
		if tl, ok := res.Protocol.(validate.TaxedLogger); ok {
			if verr := chk.CheckLogging(tl); verr != nil {
				return verr
			}
		}
		if rm, ok := res.Protocol.(validate.ReplicaMirror); ok {
			if verr := chk.CheckReplication(rm); verr != nil {
				return verr
			}
		}
		if ci, ok := res.Protocol.(validate.CICIntrospect); ok {
			if verr := chk.CheckCIC(ci); verr != nil {
				return verr
			}
		}
	}
	if cfg.Program != nil {
		fmt.Fprintf(out, "workload:  trace %s@%s on %d ranks, %d ops\n",
			traceName, traceDigest, cfg.Program.NumRanks, len(cfg.Program.Ops))
	} else {
		fmt.Fprintf(out, "workload:  %s on %d ranks, %d iterations\n", *workloadName, *ranks, *iters)
	}
	fmt.Fprintf(out, "protocol:  %s\n", res.Protocol.Name())
	fmt.Fprint(out, res.Result)
	if chk != nil {
		fmt.Fprintln(out, "validate:  ok — trace conformance verified")
	}
	st := res.Protocol.Stats()
	if st.Writes > 0 {
		fmt.Fprintf(out, "checkpoints: %d writes", st.Writes)
		if st.Forced > 0 {
			fmt.Fprintf(out, " (%d forced)", st.Forced)
		}
		if st.Rounds > 0 {
			fmt.Fprintf(out, ", %d rounds (quiesce %v/round, span %v/round)",
				st.Rounds,
				st.CoordDelay/simtime.Duration(st.Rounds),
				st.RoundSpan/simtime.Duration(st.Rounds))
		}
		fmt.Fprintln(out)
	}
	if st.MirroredMessages > 0 || st.Heartbeats > 0 {
		fmt.Fprintf(out, "replication: %d mirrored messages (%.1f MiB), %d heartbeats, %d takeovers\n",
			st.MirroredMessages, float64(st.MirroredBytes)/(1<<20), st.Heartbeats, st.Takeovers)
	}
	if s := res.Store; s != nil {
		ss := s.Stats()
		fmt.Fprintf(out, "storage:   %s — %d writes, %.1f MiB drained, peak %d writers, wait %v\n",
			s.Params(), ss.Writes, float64(ss.Bytes)/(1<<20), ss.PeakWriters, ss.WaitTime)
	}
	if st.LoggedMessages > 0 {
		fmt.Fprintf(out, "logging:   %d messages, %.1f MiB, %v CPU\n",
			st.LoggedMessages, float64(st.LoggedBytes)/(1<<20), st.LogPenalty)
	}
	if n := len(res.FailureEvents); n > 0 {
		fmt.Fprintf(out, "failures:  %d\n", n)
		for i, ev := range res.FailureEvents {
			if i >= 10 {
				fmt.Fprintf(out, "  ... %d more\n", n-10)
				break
			}
			fmt.Fprintf(out, "  t=%v rank=%d lost=%v recovery=%v\n",
				simtime.Duration(ev.Time), ev.Rank, ev.LostWork, ev.Recovery)
		}
	}
	// Per-rank spread of finish times (synchronization skew).
	fins := append([]simtime.Time(nil), res.RankFinish...)
	sort.Slice(fins, func(i, j int) bool { return fins[i] < fins[j] })
	if len(fins) > 1 {
		fmt.Fprintf(out, "finish skew: first %v, last %v (spread %v)\n",
			simtime.Duration(fins[0]), simtime.Duration(fins[len(fins)-1]),
			fins[len(fins)-1].Sub(fins[0]))
	}
	if snapped > 0 {
		fmt.Fprintf(out, "snapshots: %d written to %s\n", snapped, *snapDir)
	}
	if *resumeFile != "" {
		fmt.Fprintf(out, "resumed:   from %s\n", *resumeFile)
	}
	if *gantt {
		col.PrintSummary(out, res.Makespan)
		col.Gantt(out, *ganttWidth, res.Makespan, 32)
	}
	if *timelineCSV != "" {
		f, err := os.Create(*timelineCSV)
		if err != nil {
			return err
		}
		cw := csv.NewWriter(f)
		if err := cw.Write([]string{"rank", "kind", "start_ns", "end_ns"}); err != nil {
			f.Close()
			return err
		}
		if err := cw.WriteAll(timelineRows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "timeline:  %d records -> %s\n", len(timelineRows), *timelineCSV)
	}
	return nil
}

// writeFileAtomic writes data to name via a temp file and rename, so a
// crash mid-write never leaves a truncated snapshot where a resumable one
// is expected.
func writeFileAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(name), filepath.Base(name)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), name); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
