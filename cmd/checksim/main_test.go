package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestList(t *testing.T) {
	out := capture(t, "-list")
	for _, w := range []string{"stencil2d", "cg", "transpose", "ep", "straggler"} {
		if !strings.Contains(out, w) {
			t.Errorf("list missing %s:\n%s", w, out)
		}
	}
}

func TestBasicRun(t *testing.T) {
	out := capture(t, "-workload", "cg", "-ranks", "8", "-iters", "5",
		"-protocol", "coordinated", "-interval", "5ms", "-write", "500us")
	for _, want := range []string{"protocol:  coordinated", "makespan", "checkpoints:", "finish skew"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithFailuresAndNoise(t *testing.T) {
	out := capture(t, "-workload", "stencil2d", "-ranks", "16", "-iters", "30",
		"-protocol", "uncoordinated", "-offset", "staggered",
		"-interval", "5ms", "-write", "200us", "-log-alpha", "1us",
		"-mtbf", "640ms", "-recovery", "local",
		"-noise-period", "5ms", "-noise-duration", "50us",
		"-seed", "16", "-max-time", "30s")
	if !strings.Contains(out, "failures:") {
		t.Errorf("no failures reported:\n%s", out)
	}
	if !strings.Contains(out, "logging:") {
		t.Errorf("no logging reported:\n%s", out)
	}
}

func TestTimelineOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "timeline.csv")
	capture(t, "-workload", "ep", "-ranks", "4", "-iters", "3", "-timeline", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "rank,kind,start_ns,end_ns\n") {
		t.Errorf("timeline header wrong: %q", s[:50])
	}
	if !strings.Contains(s, "calc") {
		t.Error("timeline has no calc records")
	}
}

func TestNetPresetAndBisection(t *testing.T) {
	capture(t, "-workload", "transpose", "-ranks", "8", "-iters", "3",
		"-net", "ethernet", "-bisection", "10")
	var sb strings.Builder
	if err := run([]string{"-net", "bogus"}, &sb); err == nil {
		t.Error("bogus net preset accepted")
	}
	if err := run([]string{"-bisection", "-1"}, &sb); err == nil {
		t.Error("negative bisection accepted")
	}
}

func TestBadFlagValues(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-compute", "xx"},
		{"-interval", "yy"},
		{"-write", "zz"},
		{"-log-alpha", "qq"},
		{"-max-time", "ww"},
		{"-mtbf", "bogus"},
		{"-mtbf", "1s", "-restart", "bogus"},
		{"-mtbf", "1s", "-recovery", "bogus"},
		{"-noise-period", "bogus"},
		{"-workload", "nonexistent"},
	}
	for _, c := range cases {
		if err := run(c, &sb); err == nil {
			t.Errorf("args %v accepted", c)
		}
	}
}

// The storage flags route the protocol's writes through the shared store:
// aligned uncoordinated writers through a tight pipe must report storage
// stats with contention (wait time), and bad bandwidths must be rejected.
func TestStorageFlags(t *testing.T) {
	out := capture(t, "-workload", "ep", "-ranks", "8", "-iters", "40",
		"-protocol", "uncoordinated", "-offset", "aligned",
		"-interval", "5ms", "-write", "1ms",
		"-store-agg", "1", "-image-bytes", "1000000")
	if !strings.Contains(out, "storage:") {
		t.Errorf("no storage stats line:\n%s", out)
	}
	if !strings.Contains(out, "peak") {
		t.Errorf("storage line missing peak writers:\n%s", out)
	}
	// Unconstrained run: no storage flags -> no storage line.
	out = capture(t, "-workload", "ep", "-ranks", "4", "-iters", "5",
		"-protocol", "coordinated", "-interval", "5ms", "-write", "500us")
	if strings.Contains(out, "storage:") {
		t.Errorf("storage line printed without storage flags:\n%s", out)
	}
	var sb strings.Builder
	for _, c := range [][]string{
		{"-store-agg", "-1"},
		{"-store-writer", "-1"},
		{"-store-node", "-1"},
	} {
		if err := run(c, &sb); err == nil {
			t.Errorf("args %v accepted", c)
		}
	}
}

func TestGanttOutput(t *testing.T) {
	out := capture(t, "-workload", "stencil2d", "-ranks", "4", "-iters", "10",
		"-protocol", "coordinated", "-interval", "5ms", "-write", "1ms",
		"-gantt", "-gantt-width", "50")
	for _, want := range []string{"utilization:", "gantt:", "r0 ", "X"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt output missing %q:\n%s", want, out)
		}
	}
}

func TestExtendedProtocolFlags(t *testing.T) {
	out := capture(t, "-workload", "stencil2d", "-ranks", "8", "-iters", "15",
		"-protocol", "twolevel", "-interval", "20ms", "-write", "2ms",
		"-local-interval", "3ms", "-local-write", "100us")
	if !strings.Contains(out, "protocol:  twolevel") {
		t.Errorf("twolevel not selected:\n%s", out)
	}
	out = capture(t, "-workload", "cg", "-ranks", "8", "-iters", "10",
		"-protocol", "nonblocking", "-window", "4ms", "-slowdown", "1.25")
	if !strings.Contains(out, "nonblocking-coordinated") {
		t.Errorf("nonblocking not selected:\n%s", out)
	}
	out = capture(t, "-workload", "ep", "-ranks", "8", "-iters", "10",
		"-protocol", "partner", "-ckpt-bytes", "65536")
	if !strings.Contains(out, "protocol:  partner") {
		t.Errorf("partner not selected:\n%s", out)
	}
	out = capture(t, "-workload", "ep", "-ranks", "4", "-iters", "20",
		"-protocol", "uncoordinated", "-interval", "3ms", "-write", "500us",
		"-incr-every", "4", "-incr-fraction", "0.25")
	if !strings.Contains(out, "incremental") {
		t.Errorf("incremental not selected:\n%s", out)
	}
	var sb strings.Builder
	for _, c := range [][]string{
		{"-protocol", "nonblocking", "-window", "bogus"},
		{"-protocol", "twolevel", "-local-interval", "bogus"},
		{"-protocol", "twolevel", "-local-write", "bogus"},
	} {
		if err := run(c, &sb); err == nil {
			t.Errorf("args %v accepted", c)
		}
	}
}
