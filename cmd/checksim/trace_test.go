package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite trace golden files")

// Each committed corpus trace runs through checksim with a fixed
// coordinated protocol and the validator on, and its full output is pinned
// to a golden next to the trace. Together with internal/exp's protocol-suite
// goldens this pins the trace path end-to-end: parser, simulator, protocol,
// validator, and the CLI rendering.
func TestTraceGoldens(t *testing.T) {
	traces, err := filepath.Glob(filepath.Join("..", "..", "internal", "exp", "testdata", "traces", "*.goal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("no committed traces (regenerate with `go run ./cmd/tracegen -corpus internal/exp/testdata/traces`)")
	}
	for _, trace := range traces {
		trace := trace
		name := strings.TrimSuffix(filepath.Base(trace), ".goal")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var out bytes.Buffer
			err := run([]string{"-trace", trace, "-protocol", "coordinated",
				"-interval", "1ms", "-write", "100us", "-validate"}, &out)
			if err != nil {
				t.Fatal(err)
			}
			golden := strings.TrimSuffix(trace, ".goal") + "_checksim.golden"
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("%s checksim output drifted from golden\n--- got ---\n%s--- want ---\n%s",
					name, out.String(), want)
			}
		})
	}
}

func TestTraceErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-trace", "does-not-exist.goal"}, &out); err == nil {
		t.Error("missing trace file ran without error")
	}
	bad := filepath.Join(t.TempDir(), "bad.goal")
	if err := os.WriteFile(bad, []byte("num_ranks 2\nrank 0 {\n a: send 8b to 1 tag 0\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", bad}, &out); err == nil {
		t.Error("unbalanced trace ran without error")
	}
}
