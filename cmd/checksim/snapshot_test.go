package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// stripLines drops output lines with any of the given prefixes, so runs
// that only differ in snapshot/resume bookkeeping compare equal.
func stripLines(out string, prefixes ...string) string {
	var keep []string
	for _, ln := range strings.Split(out, "\n") {
		drop := false
		for _, p := range prefixes {
			if strings.HasPrefix(ln, p) {
				drop = true
				break
			}
		}
		if !drop {
			keep = append(keep, ln)
		}
	}
	return strings.Join(keep, "\n")
}

// TestSnapshotResumeCLI drives the full user-facing loop: run once plain,
// run once snapshotting to disk, then resume from every snapshot taken —
// each resumed run must print the identical report.
func TestSnapshotResumeCLI(t *testing.T) {
	args := []string{"-workload", "cg", "-ranks", "8", "-iters", "10",
		"-protocol", "uncoordinated", "-offset", "staggered",
		"-interval", "3ms", "-write", "300us", "-log-alpha", "1us",
		"-noise-period", "5ms", "-noise-duration", "50us", "-seed", "9"}
	plain := capture(t, args...)

	dir := t.TempDir()
	snapped := capture(t, append(args, "-snapshot-every", "2000", "-snapshot-dir", dir)...)
	if got := stripLines(snapped, "snapshots:"); got != plain {
		t.Fatalf("snapshotting changed the report:\nsnapshotting:\n%s\nplain:\n%s", snapped, plain)
	}
	blobs, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) == 0 {
		t.Fatal("no snapshot blobs written")
	}
	sort.Strings(blobs)
	for _, b := range blobs {
		resumed := capture(t, append(args, "-resume", b)...)
		if got := stripLines(resumed, "resumed:"); got != plain {
			t.Errorf("resume from %s diverged:\nresumed:\n%s\nplain:\n%s",
				filepath.Base(b), resumed, plain)
		}
	}
	if leftover, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(leftover) != 0 {
		t.Errorf("atomic writes left temp files behind: %v", leftover)
	}
}

// TestSnapshotFlagValidation covers the flag interactions that must be
// rejected up front.
func TestSnapshotFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-snapshot-every", "100"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "-snapshot-dir") {
		t.Errorf("-snapshot-every without -snapshot-dir: got err %v", err)
	}
	sb.Reset()
	if err := run([]string{"-resume", "nope.ckpt", "-validate"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "-validate") {
		t.Errorf("-resume with -validate: got err %v", err)
	}
	sb.Reset()
	if err := run([]string{"-resume", filepath.Join(t.TempDir(), "missing.ckpt")}, &sb); err == nil {
		t.Error("-resume with a missing file succeeded")
	}
}

// TestResumeRejectsCorruptBlob resumes from a truncated blob and expects a
// clean error, not a crash or a silently wrong run.
func TestResumeRejectsCorruptBlob(t *testing.T) {
	args := []string{"-workload", "ep", "-ranks", "4", "-iters", "20", "-seed", "3"}
	dir := t.TempDir()
	capture(t, append(args, "-snapshot-every", "50", "-snapshot-dir", dir)...)
	blobs, _ := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if len(blobs) == 0 {
		t.Fatal("no snapshot blobs written")
	}
	data, err := os.ReadFile(blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(append(args, "-resume", bad), &sb); err == nil {
		t.Fatal("resume from truncated blob succeeded")
	}
}
