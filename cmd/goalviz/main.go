// Command goalviz inspects GOAL programs: statistics, critical-path
// analysis under a network model, Graphviz export, and the textual GOAL
// form — for any built-in workload or a .goal file.
//
// Usage:
//
//	goalviz -workload stencil2d -ranks 16 -iters 2            # stats + critical path
//	goalviz -workload cg -ranks 8 -iters 1 -dot out.dot       # Graphviz
//	goalviz -in program.goal -text                            # parse + canonicalize
//	goalviz -workload sweep -ranks 9 -iters 1 -simulate       # compare CP vs makespan
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "goalviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("goalviz", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "", "built-in workload to inspect")
		in           = fs.String("in", "", "read a textual GOAL program instead")
		ranks        = fs.Int("ranks", 16, "ranks (for -workload)")
		iters        = fs.Int("iters", 2, "iterations (for -workload)")
		compute      = fs.String("compute", "1ms", "per-iteration compute (for -workload)")
		bytes        = fs.Int64("bytes", 4096, "message size (for -workload)")
		seed         = fs.Uint64("seed", 42, "workload seed")
		dotPath      = fs.String("dot", "", "write Graphviz to this file")
		text         = fs.Bool("text", false, "print the canonical GOAL text")
		simulate     = fs.Bool("simulate", false, "also simulate and compare against the critical path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var prog *goal.Program
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		prog, err = goal.Parse(f)
		if err != nil {
			return err
		}
	case *workloadName != "":
		comp, err := simtime.ParseDuration(*compute)
		if err != nil {
			return err
		}
		prog, err = workload.FromName(*workloadName, workload.CommonConfig{
			Base: workload.Base{Ranks: *ranks, Iterations: *iters,
				Compute: comp, Seed: *seed},
			Bytes: *bytes,
		})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -workload or -in (workloads: %v)", workload.Names())
	}

	net := network.DefaultParams()
	st := prog.Stats()
	fmt.Fprintln(out, st)
	if err := prog.CheckBalanced(); err != nil {
		fmt.Fprintln(out, "balance:", err)
	} else {
		fmt.Fprintln(out, "balance: ok (every send has a receive)")
	}

	cp, path := goal.CriticalPath(prog, net)
	fmt.Fprintf(out, "critical path: %v over %d ops\n", cp, len(path))
	if len(path) > 0 && len(path) <= 40 {
		for _, id := range path {
			op := prog.Op(id)
			switch op.Kind {
			case goal.KindCalc:
				fmt.Fprintf(out, "  rank %d: calc %v\n", op.Rank, op.Work)
			case goal.KindSend:
				fmt.Fprintf(out, "  rank %d: send %dB to %d\n", op.Rank, op.Bytes, op.Peer)
			case goal.KindRecv:
				fmt.Fprintf(out, "  rank %d: recv %dB from %d\n", op.Rank, op.Bytes, op.Peer)
			}
		}
	}

	if *simulate {
		eng, err := sim.New(sim.Config{Net: net, Program: prog, Seed: *seed})
		if err != nil {
			return err
		}
		res, err := eng.Run()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "simulated makespan: %v (%.2fx the critical-path bound)\n",
			simtime.Duration(res.Makespan), float64(res.Makespan)/float64(cp))
	}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		if err := goal.WriteDOT(f, prog); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(out, "wrote", *dotPath)
	}
	if *text {
		fmt.Fprint(out, goal.WriteString(prog))
	}
	return nil
}
