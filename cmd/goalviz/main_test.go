package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWorkloadInspection(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-workload", "sweep", "-ranks", "9", "-iters", "1", "-simulate"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ranks=9", "balance: ok", "critical path:", "simulated makespan:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDOTAndTextOutput(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "g.dot")
	var sb strings.Builder
	err := run([]string{"-workload", "cg", "-ranks", "4", "-iters", "1",
		"-dot", dot, "-text"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph program") {
		t.Error("DOT output malformed")
	}
	if !strings.Contains(sb.String(), "num_ranks 4") {
		t.Error("GOAL text missing")
	}
}

func TestGoalFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.goal")
	text := `num_ranks 2
rank 0 {
  a: calc 1ms
  b: send 64b to 1 tag 0
  b requires a
}
rank 1 {
  c: recv 64b from 0 tag 0
}
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-in", path, "-simulate"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ops=3") {
		t.Errorf("parsed program wrong:\n%s", sb.String())
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no input accepted")
	}
	if err := run([]string{"-in", "/nonexistent.goal"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-workload", "bogus"}, &sb); err == nil {
		t.Error("bogus workload accepted")
	}
	if err := run([]string{"-workload", "ep", "-compute", "xx"}, &sb); err == nil {
		t.Error("bad compute accepted")
	}
}
