package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"checkpointsim/internal/goal"
)

func TestGenerateParsesBack(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", "sweep", "-ranks", "9", "-iters", "3",
		"-compute", "100us", "-bytes", "512"}, &out); err != nil {
		t.Fatal(err)
	}
	p, err := goal.ParseString(out.String())
	if err != nil {
		t.Fatalf("emitted trace does not parse: %v", err)
	}
	if p.NumRanks != 9 {
		t.Errorf("got %d ranks, want 9", p.NumRanks)
	}
	if err := p.CheckBalanced(); err != nil {
		t.Errorf("emitted trace unbalanced: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	args := []string{"-workload", "stencil2d", "-ranks", "16", "-iters", "4",
		"-jitter", "0.2", "-seed", "7"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("equal flags emitted different traces")
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.goal")
	var out bytes.Buffer
	if err := run([]string{"-workload", "cg", "-ranks", "4", "-iters", "2", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := goal.ParseString(string(data)); err != nil {
		t.Fatalf("file trace does not parse: %v", err)
	}
}

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"stencil2d", "sweep", "cg", "transpose"} {
		if !strings.Contains(out.String(), w) {
			t.Errorf("-list missing %s", w)
		}
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "nope"},
		{"-compute", "abc"},
		{"-ranks", "0"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// The committed corpus under internal/exp/testdata/traces must be exactly
// what `tracegen -corpus` emits today: the corpus is regenerable, and any
// drift between the generators and the committed traces (whose simulation
// results are pinned by goldens) is caught here rather than silently
// shipping stale traces.
func TestCorpusMatchesCommitted(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-corpus", dir}, &out); err != nil {
		t.Fatal(err)
	}
	committed := filepath.Join("..", "..", "internal", "exp", "testdata", "traces")
	for _, s := range corpusSpecs {
		fresh, err := os.ReadFile(filepath.Join(dir, s.name+".goal"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(committed, s.name+".goal"))
		if err != nil {
			t.Fatalf("committed corpus missing (regenerate with `go run ./cmd/tracegen -corpus internal/exp/testdata/traces`): %v", err)
		}
		if !bytes.Equal(fresh, want) {
			t.Errorf("%s.goal drifted from the committed corpus; regenerate it", s.name)
		}
	}
}
