// Command tracegen emits GOAL programs (the textual dialect of
// internal/goal, LogGOPSim-compatible) for the communication skeletons of
// the production applications the source study replayed: halo-exchange
// stencils, wavefront sweeps, allreduce-dominated solvers, transposes, and
// the rest of the internal/workload suite, at parameterized scales.
//
// The emitted traces feed the trace-ingest path: cmd/checksim -trace runs
// one through a chosen protocol stack, exp.TraceExperiment sweeps the
// protocol suite over it, and cmd/campaign's corpus goldens pin its
// results. Equal flags always emit byte-identical traces (workload
// generators are seeded), so traces are safe to regenerate instead of
// archive.
//
// Usage:
//
//	tracegen -workload sweep -ranks 64 -iters 20 -compute 1ms -bytes 4096 -o trace.goal
//	tracegen -corpus internal/exp/testdata/traces   # regenerate the committed corpus
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/workload"
)

// corpusSpecs is the committed trace corpus under
// internal/exp/testdata/traces: one small instance of each of the paper's
// four skeleton families (halo exchange, wavefront sweep,
// allreduce-dominated, transpose), sized so a validated simulation finishes
// in milliseconds. The golden tests pin the results of exactly these files;
// `tracegen -corpus` must regenerate them byte-for-byte.
var corpusSpecs = []struct {
	name     string
	workload string
	ranks    int
	iters    int
	compute  simtime.Duration
	jitter   float64
	bytes    int64
	seed     uint64
}{
	{"stencil2d_p16", "stencil2d", 16, 6, 500 * simtime.Microsecond, 0.1, 4096, 42},
	{"sweep_p16", "sweep", 16, 4, 300 * simtime.Microsecond, 0, 2048, 42},
	{"cg_p16", "cg", 16, 6, 400 * simtime.Microsecond, 0, 1024, 42},
	{"transpose_p8", "transpose", 8, 5, 500 * simtime.Microsecond, 0.05, 8192, 42},
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		name    = fs.String("workload", "stencil2d", "workload skeleton (-list to enumerate)")
		list    = fs.Bool("list", false, "list workloads and exit")
		ranks   = fs.Int("ranks", 16, "number of ranks")
		iters   = fs.Int("iters", 10, "iterations")
		compute = fs.String("compute", "500us", "mean per-iteration compute")
		jitter  = fs.Float64("jitter", 0, "relative compute jitter (stddev fraction)")
		bytes   = fs.Int64("bytes", 4096, "dominant message size")
		seed    = fs.Uint64("seed", 42, "seed for jittered/randomized skeletons")
		output  = fs.String("o", "", "output file (default stdout)")
		corpus  = fs.String("corpus", "", "write the standard trace corpus into this directory and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, w := range workload.Names() {
			fmt.Fprintf(out, "%-12s %s\n", w, workload.Describe(w))
		}
		return nil
	}
	if *corpus != "" {
		return writeCorpus(*corpus, out)
	}
	comp, err := simtime.ParseDuration(*compute)
	if err != nil {
		return err
	}
	text, err := generate(*name, *ranks, *iters, comp, *jitter, *bytes, *seed)
	if err != nil {
		return err
	}
	if *output == "" {
		_, err := io.WriteString(out, text)
		return err
	}
	return os.WriteFile(*output, []byte(text), 0o644)
}

// generate builds the named workload and serializes it with a provenance
// header. The header records the exact regeneration command so a committed
// trace is never a mystery artifact.
func generate(name string, ranks, iters int, compute simtime.Duration, jitter float64, bytes int64, seed uint64) (string, error) {
	prog, err := workload.FromName(name, workload.CommonConfig{
		Base: workload.Base{
			Ranks:      ranks,
			Iterations: iters,
			Compute:    compute,
			Jitter:     jitter,
			Seed:       seed,
		},
		Bytes: bytes,
	})
	if err != nil {
		return "", err
	}
	st := prog.Stats()
	header := fmt.Sprintf(
		"# tracegen -workload %s -ranks %d -iters %d -compute %v -jitter %g -bytes %d -seed %d\n# %v\n",
		name, ranks, iters, compute, jitter, bytes, seed, st)
	return header + goal.WriteString(prog), nil
}

// writeCorpus regenerates the committed trace corpus into dir.
func writeCorpus(dir string, out io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range corpusSpecs {
		text, err := generate(s.workload, s.ranks, s.iters, s.compute, s.jitter, s.bytes, s.seed)
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		path := filepath.Join(dir, s.name+".goal")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d bytes)\n", path, len(text))
	}
	return nil
}
