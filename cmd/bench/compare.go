package main

import (
	"fmt"
	"strconv"
	"strings"
)

// Schema identifies the BENCH.json format; bump on incompatible change.
const Schema = "checkpointsim-bench/v1"

// Entry is one experiment's measurement. EventsPerSec is zero for entries
// recorded before the events counter existed (or when nothing simulated).
type Entry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// File is the BENCH.json document.
type File struct {
	Schema  string  `json:"schema"`
	Go      string  `json:"go"`
	Mode    string  `json:"mode"`
	Entries []Entry `json:"entries"`
}

// find returns the entry named name, if present.
func (f File) find(name string) (Entry, bool) {
	for _, e := range f.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Regression is one metric of one experiment that slowed beyond tolerance.
type Regression struct {
	Name   string
	Metric string // "ns/op" or "allocs/op"
	Old    float64
	New    float64
}

// Ratio is the slowdown factor (>1 means the new run is worse).
func (r Regression) Ratio() float64 {
	if r.Old == 0 {
		return 0
	}
	return r.New / r.Old
}

// Compare diffs cur against old and returns every metric that regressed
// beyond tol (a fraction: 0.10 allows a 10% slowdown). Wall time,
// allocation count, and event throughput all gate — an alloc regression is
// a real hot-path change even when the machine is fast enough to hide it,
// and events/sec catches an engine that got slower per event while the
// experiment got cheaper overall. The events/sec ratio is skipped when
// either side recorded zero: entries written before the events counter
// existed (or runs that simulated nothing) are documented to carry zero,
// and a zero baseline must read as "no data", not as an infinite-ratio
// verdict. Entries present in only one file are skipped: a new experiment
// has no baseline, and a retired one has nothing to protect. Modes must
// match; comparing a quick run against a full baseline would flag
// nonsense.
func Compare(old, cur File, tol float64) []Regression {
	var regs []Regression
	for _, n := range cur.Entries {
		o, ok := old.find(n.Name)
		if !ok {
			continue
		}
		if exceeded(o.NsPerOp, n.NsPerOp, tol) {
			regs = append(regs, Regression{n.Name, "ns/op", o.NsPerOp, n.NsPerOp})
		}
		if exceeded(float64(o.AllocsPerOp), float64(n.AllocsPerOp), tol) {
			regs = append(regs, Regression{n.Name, "allocs/op",
				float64(o.AllocsPerOp), float64(n.AllocsPerOp)})
		}
		// Throughput regresses downward, so the check inverts: cur below
		// old's tolerance band fails.
		if o.EventsPerSec > 0 && n.EventsPerSec > 0 &&
			n.EventsPerSec < o.EventsPerSec*(1-tol) {
			regs = append(regs, Regression{n.Name, "events/sec",
				o.EventsPerSec, n.EventsPerSec})
		}
	}
	return regs
}

// exceeded reports whether cur regressed past old by more than tol.
func exceeded(old, cur, tol float64) bool {
	return old > 0 && cur > old*(1+tol)
}

// ParseTolerance accepts "10%", "0.1", or "0.1%"-style strings and returns
// the fractional tolerance.
func ParseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad tolerance %q (want e.g. 10%% or 0.1)", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}

// FormatComparison renders the old-vs-new table plus a verdict line. The
// speedup column reads >1 for improvements so before/after snapshots
// double as a progress report.
func FormatComparison(old, cur File, regs []Regression, tol float64) string {
	var sb strings.Builder
	if old.Mode != cur.Mode {
		fmt.Fprintf(&sb, "warning: comparing %s run against %s baseline\n", cur.Mode, old.Mode)
	}
	fmt.Fprintf(&sb, "%-5s %12s %12s %8s %14s %14s\n",
		"exp", "old ms/op", "new ms/op", "speedup", "old allocs/op", "new allocs/op")
	for _, n := range cur.Entries {
		o, ok := old.find(n.Name)
		if !ok {
			fmt.Fprintf(&sb, "%-5s %12s %12.2f %8s %14s %14d  (no baseline)\n",
				n.Name, "-", n.NsPerOp/1e6, "-", "-", n.AllocsPerOp)
			continue
		}
		speedup := 0.0
		if n.NsPerOp > 0 {
			speedup = o.NsPerOp / n.NsPerOp
		}
		fmt.Fprintf(&sb, "%-5s %12.2f %12.2f %7.2fx %14d %14d\n",
			n.Name, o.NsPerOp/1e6, n.NsPerOp/1e6, speedup, o.AllocsPerOp, n.AllocsPerOp)
	}
	if len(regs) == 0 {
		fmt.Fprintf(&sb, "PASS: no regression beyond %.0f%%\n", tol*100)
		return sb.String()
	}
	for _, r := range regs {
		fmt.Fprintf(&sb, "FAIL: %s %s regressed %.2fx (%.4g -> %.4g, tolerance %.0f%%)\n",
			r.Name, r.Metric, r.Ratio(), r.Old, r.New, tol*100)
	}
	return sb.String()
}
