// Command bench is the benchmark-regression harness: it runs the
// experiment suite (E1–E17) under testing.Benchmark, emits a BENCH.json
// snapshot (ns/op, allocs/op, bytes/op, events/sec per experiment), and —
// given a previous snapshot via -compare — fails when any experiment
// regressed beyond the tolerance. CI runs a quick subset on every push and
// gates on the committed baseline; see README.md for the schema.
//
// Usage:
//
//	go run ./cmd/bench                          # all experiments, quick mode
//	go run ./cmd/bench -exp E8,E17 -o new.json  # subset, custom output
//	go run ./cmd/bench -compare BENCH.json -tolerance 25%
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"checkpointsim/internal/exp"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs (e.g. E8,E17) or 'all'")
		quick     = flag.Bool("quick", true, "quick mode (reduced sweeps; matches the golden tests)")
		jobs      = flag.Int("jobs", 0, "sweep worker count per experiment (0 = all cores)")
		out       = flag.String("o", "BENCH.json", "output file ('-' = stdout only)")
		compare   = flag.String("compare", "", "previous BENCH.json to diff against; regressions fail the run")
		tolerance = flag.String("tolerance", "10%", "allowed slowdown before -compare fails (e.g. 10% or 0.1)")
		reps      = flag.Int("reps", 3, "benchmark repetitions per experiment; the fastest is kept")
		history   = flag.String("history", "", "also write the snapshot to this path (e.g. results/BENCH_pr9.json)")
	)
	flag.Parse()

	tol, err := ParseTolerance(*tolerance)
	if err != nil {
		fatal(err)
	}

	ids, err := resolveIDs(*expFlag)
	if err != nil {
		fatal(err)
	}

	cur := File{Schema: Schema, Go: runtime.Version(), Mode: modeName(*quick)}
	for _, id := range ids {
		e, _ := exp.ByID(id)
		fmt.Fprintf(os.Stderr, "bench %-4s %s ... ", id, e.Title)
		entry := runBench(e, *quick, *jobs, *reps)
		fmt.Fprintf(os.Stderr, "%.1fms/op  %d allocs/op  %.2gM events/s\n",
			entry.NsPerOp/1e6, entry.AllocsPerOp, entry.EventsPerSec/1e6)
		cur.Entries = append(cur.Entries, entry)
	}

	if err := writeFile(*out, cur); err != nil {
		fatal(err)
	}
	if *history != "" {
		if err := writeFile(*history, cur); err != nil {
			fatal(err)
		}
	}

	if *compare != "" {
		old, err := readFile(*compare)
		if err != nil {
			fatal(err)
		}
		regs := Compare(old, cur, tol)
		report := FormatComparison(old, cur, regs, tol)
		fmt.Print(report)
		if len(regs) > 0 {
			os.Exit(1)
		}
	}
}

// resolveIDs expands the -exp flag into validated experiment IDs.
func resolveIDs(spec string) ([]string, error) {
	if spec == "all" {
		var ids []string
		for _, e := range exp.All() {
			ids = append(ids, e.ID)
		}
		return ids, nil
	}
	var ids []string
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if _, ok := exp.ByID(id); !ok {
			return nil, fmt.Errorf("unknown experiment %q (try -exp all)", id)
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	return ids, nil
}

// runBench measures one experiment with the standard benchmark machinery:
// testing.Benchmark picks the iteration count, and the events counter wired
// through exp.Options turns the wall-clock into a throughput figure. The
// measurement repeats reps times and the fastest round wins: the workload
// is deterministic, so run-to-run spread is scheduler and cache noise, and
// the minimum is the best estimate of the code's actual cost — exactly what
// a regression gate should compare.
func runBench(e exp.Experiment, quick bool, jobs, reps int) Entry {
	var events int64
	o := exp.DefaultOptions()
	o.Quick = quick
	o.Jobs = jobs
	o.Events = &events
	if reps < 1 {
		reps = 1
	}
	var best Entry
	for rep := 0; rep < reps; rep++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			// testing.Benchmark calls the closure repeatedly with growing b.N;
			// only the last call is the timed round, so restart the counter each
			// time and the final value covers exactly the measured iterations.
			atomic.StoreInt64(&events, 0)
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(o); err != nil {
					b.Fatal(err)
				}
			}
		})
		entry := Entry{
			Name:        e.ID,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if secs := r.T.Seconds(); secs > 0 {
			entry.EventsPerSec = float64(atomic.LoadInt64(&events)) / secs
		}
		if rep == 0 || entry.NsPerOp < best.NsPerOp {
			best = entry
		}
	}
	return best
}

func modeName(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}

func writeFile(path string, f File) error {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

func readFile(path string) (File, error) {
	var f File
	buf, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(buf, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != Schema {
		return f, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, Schema)
	}
	return f, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(2)
}
