package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func baseline() File {
	return File{Schema: Schema, Go: "go1.22", Mode: "quick", Entries: []Entry{
		{Name: "E8", NsPerOp: 50e6, AllocsPerOp: 90000, BytesPerOp: 15e6, EventsPerSec: 2e6},
		{Name: "E17", NsPerOp: 38e6, AllocsPerOp: 78000, BytesPerOp: 17e6, EventsPerSec: 3e6},
	}}
}

func TestCompareIdenticalPasses(t *testing.T) {
	f := baseline()
	if regs := Compare(f, f, 0.10); len(regs) != 0 {
		t.Fatalf("identical files produced regressions: %+v", regs)
	}
	out := FormatComparison(f, f, nil, 0.10)
	if !strings.Contains(out, "PASS") {
		t.Fatalf("comparison report missing PASS:\n%s", out)
	}
}

func TestCompareFlagsSyntheticRegression(t *testing.T) {
	old := baseline()
	cur := baseline()
	cur.Entries[0].NsPerOp *= 2 // E8 wall time doubles
	regs := Compare(old, cur, 0.10)
	if len(regs) != 1 {
		t.Fatalf("want exactly the E8 ns/op regression, got %+v", regs)
	}
	r := regs[0]
	if r.Name != "E8" || r.Metric != "ns/op" {
		t.Fatalf("wrong regression identified: %+v", r)
	}
	if got := r.Ratio(); got < 1.99 || got > 2.01 {
		t.Fatalf("ratio = %v, want ~2", got)
	}
	out := FormatComparison(old, cur, regs, 0.10)
	if !strings.Contains(out, "FAIL: E8 ns/op") {
		t.Fatalf("report missing failure line:\n%s", out)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	old := baseline()
	cur := baseline()
	cur.Entries[1].AllocsPerOp = old.Entries[1].AllocsPerOp * 3
	regs := Compare(old, cur, 0.25)
	if len(regs) != 1 || regs[0].Name != "E17" || regs[0].Metric != "allocs/op" {
		t.Fatalf("want the E17 allocs/op regression, got %+v", regs)
	}
}

func TestCompareFlagsThroughputRegression(t *testing.T) {
	old := baseline()
	cur := baseline()
	cur.Entries[0].EventsPerSec = old.Entries[0].EventsPerSec * 0.5
	regs := Compare(old, cur, 0.25)
	if len(regs) != 1 || regs[0].Name != "E8" || regs[0].Metric != "events/sec" {
		t.Fatalf("want the E8 events/sec regression, got %+v", regs)
	}
	// A drop inside the band passes.
	cur.Entries[0].EventsPerSec = old.Entries[0].EventsPerSec * 0.8
	if regs := Compare(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("in-band throughput drop flagged: %+v", regs)
	}
}

func TestCompareSkipsZeroEventsPerSec(t *testing.T) {
	// Entries recorded before the events counter existed carry zero — the
	// gate must skip the throughput ratio for them, in either direction,
	// rather than produce a divide-by-zero or infinite-ratio verdict.
	old := baseline()
	old.Entries[0].EventsPerSec = 0 // zero baseline, measured current
	cur := baseline()
	if regs := Compare(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("zero-baseline entry flagged: %+v", regs)
	}
	old = baseline()
	cur.Entries[0].EventsPerSec = 0 // measured baseline, zero current
	if regs := Compare(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("zero-current entry flagged: %+v", regs)
	}
	old.Entries[0].EventsPerSec = 0 // zero on both sides
	if regs := Compare(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("zero-both entry flagged: %+v", regs)
	}
	for _, r := range Compare(old, cur, 0.10) {
		if r.Ratio() != r.Ratio() { // NaN check
			t.Fatalf("NaN ratio from zero entry: %+v", r)
		}
	}
}

func TestCompareWithinToleranceAndNewEntries(t *testing.T) {
	old := baseline()
	cur := baseline()
	cur.Entries[0].NsPerOp *= 1.08 // inside a 10% band
	cur.Entries = append(cur.Entries, Entry{Name: "E99", NsPerOp: 1e6})
	if regs := Compare(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("tolerated drift or baseline-less entry flagged: %+v", regs)
	}
}

func TestParseTolerance(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"10%", 0.10},
		{"25%", 0.25},
		{"0.1", 0.10},
		{" 0.5% ", 0.005},
		{"0", 0},
	} {
		got, err := ParseTolerance(tc.in)
		if err != nil {
			t.Fatalf("ParseTolerance(%q): %v", tc.in, err)
		}
		if diff := got - tc.want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("ParseTolerance(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "-5%"} {
		if _, err := ParseTolerance(bad); err == nil {
			t.Fatalf("ParseTolerance(%q) accepted", bad)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	want := baseline()
	if err := writeFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(want.Entries) || got.Schema != Schema ||
		got.Entries[0] != want.Entries[0] || got.Entries[1] != want.Entries[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// A foreign schema must be rejected, not silently compared.
	bad := want
	bad.Schema = "other/v9"
	if err := writeFile(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := readFile(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

func TestResolveIDs(t *testing.T) {
	ids, err := resolveIDs("all")
	if err != nil || len(ids) != 19 {
		t.Fatalf("all -> %d ids, err %v", len(ids), err)
	}
	ids, err = resolveIDs("E8, E17")
	if err != nil || len(ids) != 2 || ids[0] != "E8" || ids[1] != "E17" {
		t.Fatalf("subset -> %v, err %v", ids, err)
	}
	if _, err := resolveIDs("E99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := resolveIDs(""); err == nil {
		t.Fatal("empty selection accepted")
	}
}
