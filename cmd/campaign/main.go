// Command campaign runs a seeded randomized scenario campaign: a schedule
// of points drawn from the cross product workload × scale × protocol ×
// failure law × storage tier × noise (internal/exp CampaignSpace), every
// point executed through the full simulator stack under the
// trace-conformance validator and checked for byte-identical reruns.
//
// Usage:
//
//	campaign -seed 42 -points 50            # fixed point budget
//	campaign -duration 5m -j 8              # soak until the clock runs out
//	campaign -server http://localhost:8080  # also verify against live sweepd
//	campaign -repro 'campaign:cg/p16/partner/exp/burst/none@123456'
//
// Determinism contract: for a fixed -seed and -points budget, stdout is
// byte-for-byte identical across runs and across every -j value — the
// schedule is a pure function of the seed, each point derives its RNG
// stream from its own spec, and no wall-clock value is ever printed to
// stdout (wall clock appears only in the -summary file). -duration mode
// trades that away by design: it runs as many points as fit, so only the
// per-point lines, not their count, are reproducible.
//
// Every point is its own verification harness. The point runs twice
// locally and the encoded results must match byte-for-byte; with -server,
// the scenario is also POSTed to a live sweepd twice, the second response
// must be a cache hit, and both response bodies must equal the local
// bytes. A point that fails prints a FAIL line carrying its spec and
// cache key — paste the spec into -repro to rerun exactly that point.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"checkpointsim/internal/exp"
	"checkpointsim/internal/network"
	"checkpointsim/internal/report"
	"checkpointsim/internal/runner"
	"checkpointsim/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

// chunkSize is how many points are scheduled and fanned out at a time.
// -duration mode checks the clock between chunks, so a chunk bounds how
// far a soak overshoots its budget; chunking never changes output because
// results are printed in schedule order either way.
const chunkSize = 32

// config is the parsed flag set for one campaign invocation.
type config struct {
	space    exp.CampaignSpace
	seed     uint64
	points   int
	duration time.Duration
	jobs     int
	net      network.Params
	netName  string
	version  string
	server   string
	summary  string
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 42, "campaign seed: determines the whole schedule")
		points   = fs.Int("points", 0, "point budget (with -duration: a cap)")
		duration = fs.Duration("duration", 0, "wall-clock budget; stops between chunks once exceeded")
		jobs     = fs.Int("j", runtime.NumCPU(), "worker pool size (1 = serial); output is identical for every value")
		netPre   = fs.String("net", "default", "network preset: default|capability|ethernet")
		version  = fs.String("version", "dev", "cache-key code version tag; match the sweepd -version for keys to agree")
		server   = fs.String("server", "", "base URL of a live sweepd; every point is verified against its cache")
		repro    = fs.String("repro", "", "run one scenario spec (as printed in a campaign line) instead of a schedule")
		summary  = fs.String("summary", "", "write a run summary (config, per-point lines, wall clock) to this file")

		workloads = fs.String("workloads", "", "workload axis override, comma separated")
		scales    = fs.String("scales", "", "scale (ranks) axis override, comma separated")
		protocols = fs.String("protocols", "", "protocol axis override, comma separated")
		laws      = fs.String("failure-laws", "", "failure-law axis override, comma separated")
		tiers     = fs.String("storage-tiers", "", "storage-tier axis override, comma separated")
		noises    = fs.String("noise", "", "noise axis override, comma separated")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 1 {
		return fmt.Errorf("-j must be >= 1, have %d", *jobs)
	}
	cfg := config{
		seed: *seed, points: *points, duration: *duration, jobs: *jobs,
		netName: *netPre, version: *version, server: strings.TrimSuffix(*server, "/"),
		summary: *summary,
	}
	switch *netPre {
	case "default":
		cfg.net = network.DefaultParams()
	case "capability":
		cfg.net = network.CapabilityClassParams()
	case "ethernet":
		cfg.net = network.EthernetClassParams()
	default:
		return fmt.Errorf("unknown network preset %q", *netPre)
	}
	cfg.space = exp.DefaultCampaignSpace()
	if err := overrideSpace(&cfg.space, *workloads, *scales, *protocols, *laws, *tiers, *noises); err != nil {
		return err
	}
	if err := cfg.space.Validate(); err != nil {
		return err
	}

	if *repro != "" {
		sc, err := exp.ParseScenario(*repro)
		if err != nil {
			return err
		}
		return runRepro(cfg, sc, out)
	}
	if cfg.points <= 0 && cfg.duration <= 0 {
		return fmt.Errorf("need a budget: -points N and/or -duration D")
	}
	return runCampaign(cfg, out)
}

// overrideSpace applies non-empty CSV axis overrides to the default space.
func overrideSpace(s *exp.CampaignSpace, workloads, scales, protocols, laws, tiers, noises string) error {
	csv := func(v string) []string {
		if v == "" {
			return nil
		}
		parts := strings.Split(v, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}
	if v := csv(workloads); v != nil {
		s.Workloads = v
	}
	if v := csv(scales); v != nil {
		s.Scales = nil
		for _, p := range v {
			n, err := strconv.Atoi(p)
			if err != nil {
				return fmt.Errorf("bad -scales entry %q: %v", p, err)
			}
			s.Scales = append(s.Scales, n)
		}
	}
	if v := csv(protocols); v != nil {
		s.Protocols = v
	}
	if v := csv(laws); v != nil {
		s.FailureLaws = v
	}
	if v := csv(tiers); v != nil {
		s.StorageTiers = v
	}
	if v := csv(noises); v != nil {
		s.NoiseLevels = v
	}
	return nil
}

// pointResult is one executed point: its stdout line, the rendered tables
// (repro mode prints them), and whether it failed. Failures are data, not
// errors — the campaign runs every point and reports at the end, and a
// deterministic failure prints the same line every run.
type pointResult struct {
	line   string
	tables []*report.Table
	failed bool
}

// runPoint executes one scenario with full verification: run twice
// locally, byte-compare the encoded results, and (with -server) twice
// against the live sweepd, asserting the second response is a cache hit
// and both bodies match the local bytes.
func runPoint(cfg config, client *http.Client, sc exp.Scenario) pointResult {
	key := service.ScenarioCacheKey(cfg.version, sc, cfg.net)
	fail := func(err error) pointResult {
		return pointResult{line: fmt.Sprintf("FAIL %s key=%s: %v", sc.ID(), key, err), failed: true}
	}
	o := exp.DefaultOptions()
	o.Net = cfg.net
	tables, err := sc.Run(o)
	if err != nil {
		return fail(err)
	}
	local, err := service.EncodeScenarioResult(sc, tables)
	if err != nil {
		return fail(err)
	}
	again, err := sc.Run(o)
	if err != nil {
		return fail(fmt.Errorf("rerun: %w", err))
	}
	encAgain, err := service.EncodeScenarioResult(sc, again)
	if err != nil {
		return fail(err)
	}
	if !bytes.Equal(local, encAgain) {
		return fail(fmt.Errorf("rerun produced different bytes"))
	}
	if cfg.server != "" {
		if err := verifyServer(cfg, client, sc, local); err != nil {
			return fail(err)
		}
	}
	makespan := "?"
	if rows := tables[0].Rows(); len(rows) > 0 && len(rows[0]) == 2 && rows[0][0] == "makespan_ns" {
		makespan = rows[0][1]
	}
	return pointResult{
		line:   fmt.Sprintf("ok   %s key=%s makespan_ns=%s", sc.ID(), key, makespan),
		tables: tables,
	}
}

// verifyServer POSTs the scenario to the live sweepd twice. The second
// response must come from the cache, and both bodies must byte-match the
// locally computed result — the campaign's end-to-end consistency check.
// The first response may be computed or already cached (a warm server or a
// schedule that repeats a scenario both produce legitimate first-hits).
func verifyServer(cfg config, client *http.Client, sc exp.Scenario, local []byte) error {
	first, _, err := postScenario(client, cfg.server, cfg.netName, sc)
	if err != nil {
		return fmt.Errorf("server run: %w", err)
	}
	second, source, err := postScenario(client, cfg.server, cfg.netName, sc)
	if err != nil {
		return fmt.Errorf("server rerun: %w", err)
	}
	if source != "hit" {
		return fmt.Errorf("second server run came from %q, want cache hit", source)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("server cache hit differs from fresh server run")
	}
	if !bytes.Equal(local, first) {
		return fmt.Errorf("local result differs from server result (version or build skew? local key version %q)", cfg.version)
	}
	return nil
}

// postScenario runs one scenario synchronously on the sweepd at base and
// returns the response body and its X-Sweepd-Source ("computed"/"hit").
func postScenario(client *http.Client, base, netName string, sc exp.Scenario) ([]byte, string, error) {
	body := fmt.Sprintf(`{"scenario":{"workload":%q,"ranks":%d,"protocol":%q,"failure_law":%q,"storage":%q,"noise":%q,"seed":%d},"net":%q}`,
		sc.Workload, sc.Ranks, sc.Protocol, sc.FailureLaw, sc.Storage, sc.Noise, sc.Seed, netName)
	resp, err := client.Post(base+"/api/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return data, resp.Header.Get("X-Sweepd-Source"), nil
}

// runRepro runs a single scenario spec with the same verification as a
// campaign point and prints its full tables.
func runRepro(cfg config, sc exp.Scenario, out io.Writer) error {
	res := runPoint(cfg, httpClient(), sc)
	fmt.Fprintln(out, res.line)
	for _, t := range res.tables {
		t.Fprint(out)
		fmt.Fprintln(out)
	}
	if res.failed {
		return fmt.Errorf("point failed")
	}
	return nil
}

// runCampaign schedules and executes points chunk by chunk until the
// point or wall-clock budget is spent, printing one line per point in
// schedule order.
func runCampaign(cfg config, out io.Writer) error {
	start := time.Now()
	client := httpClient()
	// -j is deliberately absent from the header: stdout must be identical
	// at every worker count, so scheduling knobs never appear in it.
	header := func(w io.Writer) {
		fmt.Fprintf(w, "campaign: seed=%d points=%d duration=%v net=%s version=%s server=%s\n",
			cfg.seed, cfg.points, cfg.duration, cfg.netName, cfg.version, orNone(cfg.server))
		s := cfg.space
		fmt.Fprintf(w, "space: workloads=%s scales=%s protocols=%s failure-laws=%s storage-tiers=%s noise=%s\n",
			strings.Join(s.Workloads, ","), joinInts(s.Scales), strings.Join(s.Protocols, ","),
			strings.Join(s.FailureLaws, ","), strings.Join(s.StorageTiers, ","), strings.Join(s.NoiseLevels, ","))
	}
	header(out)

	var lines []string
	done, failed := 0, 0
	for {
		n := chunkSize
		if cfg.points > 0 && cfg.points-done < n {
			n = cfg.points - done
		}
		if n <= 0 {
			break
		}
		// Schedule prefixes agree for a fixed seed, so re-deriving the
		// whole prefix each chunk yields exactly the points [done, done+n).
		sched, err := cfg.space.Schedule(cfg.seed, done+n)
		if err != nil {
			return err
		}
		chunk := sched[done:]
		results, err := runner.Map(cfg.jobs, chunk, func(i int, sc exp.Scenario) (pointResult, error) {
			return runPoint(cfg, client, sc), nil
		})
		if err != nil {
			return err
		}
		for i, r := range results {
			fmt.Fprintf(out, "%4d %s\n", done+i, r.line)
			lines = append(lines, fmt.Sprintf("%4d %s", done+i, r.line))
			if r.failed {
				failed++
			}
		}
		done += len(results)
		if cfg.duration > 0 && time.Since(start) >= cfg.duration {
			break
		}
	}
	fmt.Fprintf(out, "campaign: %d points, %d ok, %d failed\n", done, done-failed, failed)

	if cfg.summary != "" {
		var sb strings.Builder
		header(&sb)
		for _, l := range lines {
			sb.WriteString(l)
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "campaign: %d points, %d ok, %d failed\n", done, done-failed, failed)
		fmt.Fprintf(&sb, "jobs: %d\nwall-clock: %v\n", cfg.jobs, time.Since(start).Round(time.Millisecond))
		if err := os.WriteFile(cfg.summary, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d points failed (rerun one with -repro '<spec>')", failed, done)
	}
	return nil
}

func httpClient() *http.Client { return &http.Client{Timeout: 2 * time.Minute} }

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func joinInts(v []int) string {
	parts := make([]string, len(v))
	for i, n := range v {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}
