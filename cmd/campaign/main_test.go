package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"checkpointsim/internal/service"
)

// runCmd invokes the CLI entry point and returns its stdout.
func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

// The campaign's core CLI contract: for a fixed seed and point budget,
// stdout is byte-identical at every -j value.
func TestCampaignDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	args := []string{"-seed", "5", "-points", "6"}
	serial, err := runCmd(t, append(args, "-j", "1")...)
	if err != nil {
		t.Fatalf("-j 1: %v\n%s", err, serial)
	}
	parallel, err := runCmd(t, append(args, "-j", "8")...)
	if err != nil {
		t.Fatalf("-j 8: %v\n%s", err, parallel)
	}
	if serial != parallel {
		t.Fatalf("-j 1 and -j 8 output differ:\n--- j1 ---\n%s--- j8 ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "campaign: 6 points, 6 ok, 0 failed") {
		t.Errorf("missing clean tail line:\n%s", serial)
	}
}

// A spec printed in a campaign line reproduces the same point: same cache
// key, same makespan.
func TestReproMatchesCampaignPoint(t *testing.T) {
	out, err := runCmd(t, "-seed", "9", "-points", "1")
	if err != nil {
		t.Fatalf("campaign: %v\n%s", err, out)
	}
	var pointLine string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "ok   campaign:") {
			pointLine = strings.TrimSpace(l)
			break
		}
	}
	if pointLine == "" {
		t.Fatalf("no ok point line in:\n%s", out)
	}
	fields := strings.Fields(pointLine) // idx ok spec key=... makespan_ns=...
	spec := fields[2]
	reproOut, err := runCmd(t, "-repro", spec)
	if err != nil {
		t.Fatalf("repro %q: %v\n%s", spec, err, reproOut)
	}
	// The repro's first line is the campaign line without the index column.
	wantLine := strings.Join(fields[1:], " ")
	gotLine := strings.Join(strings.Fields(strings.SplitN(reproOut, "\n", 2)[0]), " ")
	if gotLine != wantLine {
		t.Errorf("repro line %q != campaign line %q", gotLine, wantLine)
	}
	if !strings.Contains(reproOut, "Campaign "+spec) {
		t.Errorf("repro output missing the point's table:\n%s", reproOut)
	}
}

// With -server, every point round-trips through a live sweepd: fresh run,
// cache hit, and local bytes must all agree. The service version must
// match -version for the printed keys to be the server's keys.
func TestCampaignAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	s := service.New(service.Config{Version: "dev", Timeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	out, err := runCmd(t, "-seed", "3", "-points", "3", "-server", ts.URL,
		"-workloads", "sweep,cg", "-scales", "8")
	if err != nil {
		t.Fatalf("campaign vs server: %v\n%s", err, out)
	}
	if !strings.Contains(out, "campaign: 3 points, 3 ok, 0 failed") {
		t.Errorf("server-verified campaign not clean:\n%s", out)
	}
}

// -duration mode runs whole chunks until the clock is spent and still
// reports a clean tail.
func TestDurationMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	out, err := runCmd(t, "-seed", "2", "-duration", "1ms",
		"-workloads", "sweep", "-scales", "8",
		"-protocols", "none,coordinated", "-failure-laws", "none",
		"-storage-tiers", "none", "-noise", "none")
	if err != nil {
		t.Fatalf("duration campaign: %v\n%s", err, out)
	}
	if n := strings.Count(out, "ok   campaign:"); n < chunkSize {
		t.Errorf("duration mode ran %d points, want at least one chunk (%d)", n, chunkSize)
	}
	if !strings.Contains(out, " 0 failed") {
		t.Errorf("duration campaign not clean:\n%s", out)
	}
}

func TestSummaryFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "summary.txt")
	out, err := runCmd(t, "-seed", "9", "-points", "1", "-summary", path)
	if err != nil {
		t.Fatalf("campaign: %v\n%s", err, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := string(data)
	for _, want := range []string{"campaign: seed=9", "ok   campaign:", "wall-clock:"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

// Malformed invocations fail up front with messages naming the problem.
func TestBadConfig(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		errHas string
	}{
		{"no budget", []string{}, "need a budget"},
		{"bad jobs", []string{"-points", "1", "-j", "0"}, "-j must be"},
		{"bad net", []string{"-points", "1", "-net", "token-ring"}, "unknown network preset"},
		{"unknown workload", []string{"-points", "1", "-workloads", "quicksort"}, "unknown workload"},
		{"bad scale entry", []string{"-points", "1", "-scales", "eight"}, "bad -scales entry"},
		{"oversized scale", []string{"-points", "1", "-scales", "4096"}, "bad scale"},
		{"contradictory axes", []string{"-points", "1", "-protocols", "none", "-failure-laws", "exp"},
			"need a checkpoint protocol"},
		{"bad repro spec", []string{"-repro", "campaign:sweep/p8"}, "no @seed suffix"},
		{"repro unknown protocol", []string{"-repro", "campaign:sweep/p8/raft/none/none/none@1"},
			"unknown protocol"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := runCmd(t, tc.args...)
			if err == nil {
				t.Fatalf("accepted %v:\n%s", tc.args, out)
			}
			if !strings.Contains(err.Error(), tc.errHas) {
				t.Errorf("error %q does not mention %q", err, tc.errHas)
			}
		})
	}
}
