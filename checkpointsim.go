// Package checkpointsim is a simulation framework for studying the effects
// of communication and coordination on checkpointing at scale.
//
// It reproduces the system behind Ferreira, Widener, Levy, Arnold and
// Hoefler's SC 2014 study: a LogGOPS discrete-event simulator that executes
// message-passing applications expressed as GOAL dependency graphs, with
// checkpointing protocols (coordinated, uncoordinated with message logging,
// and hierarchical), OS-noise injection, node-failure injection with two
// recovery disciplines, and the Young/Daly analytic models as baselines.
//
// # Quick start
//
//	res, err := checkpointsim.Run(checkpointsim.RunConfig{
//	    Workload:   "stencil2d",
//	    Ranks:      64,
//	    Iterations: 100,
//	    Compute:    checkpointsim.Millisecond,
//	    MsgBytes:   4096,
//	    Protocol: checkpointsim.ProtocolConfig{
//	        Kind:     checkpointsim.ProtoCoordinated,
//	        Interval: 10 * checkpointsim.Millisecond,
//	        Write:    checkpointsim.Millisecond,
//	    },
//	})
//
// The lower-level pieces — goal.Builder graphs, collective generators, the
// sim engine, protocol agents — are exposed through type aliases below for
// users who need full control; see the examples/ directory.
package checkpointsim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"checkpointsim/internal/cache"
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/failure"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/noise"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/storage"
	"checkpointsim/internal/workload"
)

// Re-exported time types and units.
type (
	// Time is an absolute simulated time in integer nanoseconds.
	Time = simtime.Time
	// Duration is a simulated time span in integer nanoseconds.
	Duration = simtime.Duration
)

// Common durations.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Minute      = simtime.Minute
	Hour        = simtime.Hour
	Day         = simtime.Day
	Year        = simtime.Year
)

// Core building blocks, aliased from their implementation packages.
type (
	// NetworkParams is the LogGOPS parameter set (L, o, g, G, O, S).
	NetworkParams = network.Params
	// Program is an immutable GOAL dependency graph.
	Program = goal.Program
	// Builder constructs Programs operation by operation.
	Builder = goal.Builder
	// Engine executes one simulation.
	Engine = sim.Engine
	// SimConfig configures an Engine.
	SimConfig = sim.Config
	// Result summarizes a completed simulation.
	Result = sim.Result
	// Agent is a protocol component attached to a simulation.
	Agent = sim.Agent
	// Protocol is a checkpointing strategy.
	Protocol = checkpoint.Protocol
	// CheckpointParams are the protocol knobs (interval, write cost).
	CheckpointParams = checkpoint.Params
	// LogParams configure sender-based message logging.
	LogParams = checkpoint.LogParams
	// NoiseConfig configures OS-noise injection.
	NoiseConfig = noise.Config
	// FailureConfig configures failure injection and recovery.
	FailureConfig = failure.Config
	// NonBlockingParams extend CheckpointParams for asynchronous writes.
	NonBlockingParams = checkpoint.NonBlockingParams
	// PartnerParams configure diskless buddy checkpointing.
	PartnerParams = checkpoint.PartnerParams
	// IncrementalParams configure incremental writes.
	IncrementalParams = checkpoint.IncrementalParams
	// TwoLevelParams configure multilevel (SCR/FTI-class) checkpointing.
	TwoLevelParams = checkpoint.TwoLevelParams
	// ReplicationParams configure replication-based resilience.
	ReplicationParams = checkpoint.ReplicationParams
	// StorageParams configure the shared-storage model: aggregate parallel
	// filesystem bandwidth, a per-writer cap, and per-node burst-buffer
	// bandwidth. The zero value means no storage modelling (legacy
	// fixed-duration writes).
	StorageParams = storage.Params
	// Store arbitrates concurrent checkpoint writers with fair-share
	// semantics; protocols reference one through CheckpointParams.Store.
	Store = storage.Store
	// StorageTier selects which tier of a Store a write drains through.
	StorageTier = storage.Tier
	// TraceEvent is one record on the engine's trace channel (CPU
	// occupancies plus grant/message/phase events; see sim.TraceEvent).
	TraceEvent = sim.TraceEvent
	// Snapshot is one captured simulator state: a versioned, digest-tagged
	// blob restorable into a fresh Engine (see sim.Snapshot and
	// Engine.Restore for the determinism contract).
	Snapshot = sim.Snapshot
	// TraceType discriminates trace records; consumers that only want CPU
	// occupancies filter on TraceCPU.
	TraceType = sim.TraceType
	// RecoveryKind selects the failure-recovery discipline.
	RecoveryKind = failure.RecoveryKind
	// FailureEvent records one injected failure.
	FailureEvent = failure.Event
)

// TraceCPU is the trace-record type for completed CPU occupancies — the
// only type the timeline/Gantt consumers use (see sim.TraceType for the
// full set).
const TraceCPU = sim.TraceCPU

// Recovery disciplines for FailureConfig.Kind.
const (
	// RecoverGlobal rolls the whole machine back to the last global line.
	RecoverGlobal = failure.RollbackGlobal
	// RecoverLocal replays only the failed rank from message logs.
	RecoverLocal = failure.ReplayLocal
	// RecoverCluster rolls back the failed rank's cluster (hierarchical).
	RecoverCluster = failure.RollbackCluster
	// RecoverTwoLevel dispatches on failure severity between the local and
	// global levels of a two-level protocol.
	RecoverTwoLevel = failure.RecoverTwoLevel
	// RecoverTakeover absorbs failures by replica takeover (replication
	// protocol): detection plus promotion, never lost work.
	RecoverTakeover = failure.TakeoverReplica
)

// Storage tiers for StorageTier fields.
const (
	// TierGlobal is the shared parallel filesystem (the default tier).
	TierGlobal = storage.TierGlobal
	// TierNode is the node-local burst buffer, shared by co-located ranks.
	TierNode = storage.TierNode
)

// DefaultNetwork returns the InfiniBand-class LogGOPS parameters used
// throughout the experiments.
func DefaultNetwork() NetworkParams { return network.DefaultParams() }

// NewStore builds a shared-storage arbiter from the given parameters. A
// store serves exactly one simulation: build a fresh one per Engine.
func NewStore(p StorageParams) (*Store, error) { return storage.New(p) }

// UnlimitedStore returns a store with no bandwidth constraints — writes
// through it are byte-identical to the legacy fixed-duration path.
func UnlimitedStore() *Store { return storage.Unlimited() }

// NewCoordinated builds the globally coordinated protocol.
func NewCoordinated(p CheckpointParams) (Protocol, error) {
	return checkpoint.NewCoordinated(p)
}

// NewUncoordinated builds the uncoordinated protocol with the named offset
// policy ("aligned", "staggered", or "random") and logging tax.
func NewUncoordinated(p CheckpointParams, offset string, log LogParams) (Protocol, error) {
	pol, err := checkpoint.ParseOffsetPolicy(offset)
	if err != nil {
		return nil, err
	}
	return checkpoint.NewUncoordinated(p, pol, log)
}

// NewHierarchical builds the hybrid protocol with the given cluster size.
func NewHierarchical(p CheckpointParams, clusterSize int, log LogParams) (Protocol, error) {
	return checkpoint.NewHierarchical(p, clusterSize, log)
}

// NewNonBlockingCoordinated builds the asynchronous (copy-on-write)
// coordinated protocol.
func NewNonBlockingCoordinated(p NonBlockingParams) (Protocol, error) {
	return checkpoint.NewNonBlockingCoordinated(p)
}

// NewPartnerProtocol builds diskless partner (buddy) checkpointing.
func NewPartnerProtocol(p PartnerParams) (Protocol, error) {
	return checkpoint.NewPartner(p)
}

// NewTwoLevelProtocol builds multilevel (SCR/FTI-class) checkpointing.
func NewTwoLevelProtocol(p TwoLevelParams) (Protocol, error) {
	return checkpoint.NewTwoLevel(p)
}

// NewReplicationProtocol builds replication-based resilience. The program
// must span (degree+1)× the application's ranks (see goal.Widen); Run does
// this automatically for ProtoReplication.
func NewReplicationProtocol(p ReplicationParams) (Protocol, error) {
	return checkpoint.NewReplication(p)
}

// NewCICProtocol builds index-based communication-induced checkpointing
// with the given index-lag threshold and offset policy ("aligned",
// "staggered", or "random").
func NewCICProtocol(p CheckpointParams, lag int, offset string) (Protocol, error) {
	pol, err := checkpoint.ParseOffsetPolicy(offset)
	if err != nil {
		return nil, err
	}
	return checkpoint.NewCIC(p, lag, pol)
}

// NewUncoordinatedIncremental builds the uncoordinated protocol with
// incremental writes.
func NewUncoordinatedIncremental(p CheckpointParams, offset string, log LogParams,
	inc IncrementalParams) (Protocol, error) {
	pol, err := checkpoint.ParseOffsetPolicy(offset)
	if err != nil {
		return nil, err
	}
	return checkpoint.NewUncoordinatedIncremental(p, pol, log, inc)
}

// CriticalPath computes the contention-free longest path through a program
// under the given network parameters — a lower bound on any simulated
// makespan, with the binding dependency chain.
func CriticalPath(p *Program, net NetworkParams) (Duration, []OpID) {
	return goal.CriticalPath(p, net)
}

// NewBuilder starts a program graph over the given number of ranks.
func NewBuilder(numRanks int) *Builder { return goal.NewBuilder(numRanks) }

// NewEngine validates a configuration and builds a simulation engine.
func NewEngine(cfg SimConfig) (*Engine, error) { return sim.New(cfg) }

// ProtoKind selects a checkpointing protocol in RunConfig.
type ProtoKind string

// Protocol kinds.
const (
	ProtoNone          ProtoKind = "none"
	ProtoCoordinated   ProtoKind = "coordinated"
	ProtoUncoordinated ProtoKind = "uncoordinated"
	ProtoHierarchical  ProtoKind = "hierarchical"
	ProtoNonBlocking   ProtoKind = "nonblocking"
	ProtoPartner       ProtoKind = "partner"
	ProtoTwoLevel      ProtoKind = "twolevel"
	// ProtoReplication runs replication-based resilience: the Ranks
	// application ranks are embedded in a machine of
	// Ranks·(ReplicaDegree+1) simulated nodes whose extra ranks mirror the
	// primaries (Run widens the program automatically). Pair with
	// RecoverTakeover failures.
	ProtoReplication ProtoKind = "replication"
	// ProtoCIC runs index-based communication-induced checkpointing.
	ProtoCIC ProtoKind = "cic"
)

// ProtocolConfig describes the checkpointing strategy of a Run.
type ProtocolConfig struct {
	// Kind selects the protocol (default ProtoNone).
	Kind ProtoKind
	// Interval is the checkpoint interval τ.
	Interval Duration
	// Write is the per-rank checkpoint write time δ.
	Write Duration
	// Offset selects the uncoordinated timer policy: "aligned",
	// "staggered" (default), or "random".
	Offset string
	// Logging is the sender-based message-logging tax (uncoordinated and
	// hierarchical protocols).
	Logging LogParams
	// ClusterSize is the hierarchical protocol's cluster size.
	ClusterSize int
	// Incremental, when FullEvery > 1, switches the uncoordinated protocol
	// to incremental writes.
	Incremental IncrementalParams
	// Window and Slowdown configure the non-blocking protocol's background
	// write (ProtoNonBlocking).
	Window   Duration
	Slowdown float64
	// CkptBytes is the image size shipped by the partner protocol
	// (ProtoPartner); Write is reused as its serialize time.
	CkptBytes int64
	// Bytes is the checkpoint image size drained through the shared store
	// (RunConfig.Storage); zero derives it from Write at the store's
	// lone-writer rate, so uncontended writes keep the legacy duration.
	Bytes int64
	// TwoLevel configures ProtoTwoLevel (Interval/Write above are ignored
	// for that kind).
	TwoLevel TwoLevelParams
	// ReplicaDegree is the replication protocol's replicas per application
	// rank (ProtoReplication; default 1).
	ReplicaDegree int
	// HeartbeatPeriod and HeartbeatBytes configure replication failure
	// detection (ProtoReplication; defaults 1ms / 64 B).
	HeartbeatPeriod Duration
	HeartbeatBytes  int64
	// TakeoverCost is the replica-promotion cost after detection
	// (ProtoReplication; default 500µs).
	TakeoverCost Duration
	// CICLag is the CIC index-lag threshold that forces a checkpoint
	// (ProtoCIC; default 1 = the Z-path-free rule).
	CICLag int
}

// build constructs the configured protocol, routing writes through st when
// one is configured. Globally-writing protocols drain the global tier; the
// partner serialize step and the two-level local level use the node tier.
func (pc ProtocolConfig) build(st *storage.Store) (checkpoint.Protocol, error) {
	params := checkpoint.Params{Interval: pc.Interval, Write: pc.Write,
		Bytes: pc.Bytes, Store: st}
	switch pc.Kind {
	case "", ProtoNone:
		return checkpoint.None{}, nil
	case ProtoCoordinated:
		return checkpoint.NewCoordinated(params)
	case ProtoUncoordinated:
		off := checkpoint.Staggered
		if pc.Offset != "" {
			var err error
			off, err = checkpoint.ParseOffsetPolicy(pc.Offset)
			if err != nil {
				return nil, err
			}
		}
		if pc.Incremental.FullEvery > 1 {
			return checkpoint.NewUncoordinatedIncremental(params, off, pc.Logging, pc.Incremental)
		}
		return checkpoint.NewUncoordinated(params, off, pc.Logging)
	case ProtoHierarchical:
		return checkpoint.NewHierarchical(params, pc.ClusterSize, pc.Logging)
	case ProtoNonBlocking:
		return checkpoint.NewNonBlockingCoordinated(checkpoint.NonBlockingParams{
			Params: params, Window: pc.Window, Slowdown: pc.Slowdown})
	case ProtoTwoLevel:
		tl := pc.TwoLevel
		if tl.Store == nil {
			tl.Store = st
		}
		return checkpoint.NewTwoLevel(tl)
	case ProtoPartner:
		off := checkpoint.Staggered
		if pc.Offset != "" {
			var err error
			off, err = checkpoint.ParseOffsetPolicy(pc.Offset)
			if err != nil {
				return nil, err
			}
		}
		return checkpoint.NewPartner(checkpoint.PartnerParams{
			Interval:      pc.Interval,
			SerializeTime: pc.Write,
			CkptBytes:     pc.CkptBytes,
			Offsets:       off,
			Store:         st,
		})
	case ProtoReplication:
		return checkpoint.NewReplication(checkpoint.ReplicationParams{
			Degree:          pc.ReplicaDegree,
			HeartbeatPeriod: pc.HeartbeatPeriod,
			HeartbeatBytes:  pc.HeartbeatBytes,
			TakeoverCost:    pc.TakeoverCost,
		})
	case ProtoCIC:
		off := checkpoint.Staggered
		if pc.Offset != "" {
			var err error
			off, err = checkpoint.ParseOffsetPolicy(pc.Offset)
			if err != nil {
				return nil, err
			}
		}
		return checkpoint.NewCIC(params, pc.CICLag, off)
	}
	return nil, fmt.Errorf("checkpointsim: unknown protocol kind %q", pc.Kind)
}

// RunConfig is the one-call configuration for a complete study point.
type RunConfig struct {
	// Workload names a built-in generator: one of Workloads().
	Workload string
	// Program, when non-nil, is the application to execute directly — an
	// ingested GOAL trace rather than a generated workload. The workload
	// shape fields (Workload, Ranks, Iterations, Compute, Jitter, MsgBytes)
	// are ignored; everything else (protocol, storage, noise, failures,
	// seed) applies unchanged.
	Program *Program
	// Ranks is the number of MPI ranks.
	Ranks int
	// Iterations is the number of outer timesteps.
	Iterations int
	// Compute is the mean per-rank computation per iteration.
	Compute Duration
	// Jitter is the relative stddev of per-iteration compute (0 = none).
	Jitter float64
	// MsgBytes is the dominant message size of the workload.
	MsgBytes int64
	// Net is the LogGOPS parameter set (zero value = DefaultNetwork()).
	Net NetworkParams
	// Storage, when non-zero, models the checkpoint storage system: the
	// protocol's writes drain through a fair-share store built from these
	// parameters instead of taking fixed durations. An unconstrained
	// parameter set reproduces the legacy results byte-identically.
	Storage StorageParams
	// Protocol selects and configures checkpointing.
	Protocol ProtocolConfig
	// Noise, if non-nil, injects OS noise.
	Noise *NoiseConfig
	// Failures, if non-nil, injects failures with the configured recovery.
	Failures *FailureConfig
	// Trace, when non-nil, receives one record per completed CPU job (see
	// SimConfig.Trace).
	Trace func(TraceEvent)
	// Seed makes the run reproducible; equal configs and seeds give
	// bit-identical results.
	Seed uint64
	// MaxTime aborts runs whose virtual time exceeds this (0 = unlimited);
	// useful with failure rates the machine cannot outrun.
	MaxTime Time
	// SnapshotEvery, when > 0, captures a snapshot of the complete
	// simulator state roughly every that many events, at the next safe
	// boundary, and delivers each to OnSnapshot. Snapshotting is a pure
	// observer: results are byte-identical with or without it.
	SnapshotEvery int64
	// OnSnapshot receives each captured snapshot, synchronously on the
	// simulation loop. Required when SnapshotEvery > 0.
	OnSnapshot func(Snapshot)
	// ResumeFrom, when non-nil, restores the engine from a snapshot blob
	// before running. The run executes only the remainder after the
	// snapshot's boundary, and its result is byte-identical to the
	// uninterrupted run's — provided the rest of this config matches the
	// run that took the snapshot (enforced via a config digest embedded in
	// the blob).
	ResumeFrom []byte
}

// RunResult bundles the simulation result with the protocol and injector
// state of a Run.
type RunResult struct {
	*Result
	// Protocol is the protocol instance, exposing Stats and recovery lines.
	Protocol Protocol
	// Store is the shared-storage arbiter of the run (nil unless
	// RunConfig.Storage was set), exposing drain statistics.
	Store *Store
	// FailureEvents holds the injected failures (nil without Failures).
	FailureEvents []failure.Event
}

// CacheFields renders the result-determining configuration of this study
// point as a flat field set for content addressing (cache.Key with a code
// version tag): equal field sets guarantee bit-identical Run results. It
// covers the declarative configuration — workload shape, resolved network
// parameters, storage model, protocol knobs including nested
// logging/incremental/two-level parameters, noise, failures, seed, and the
// time cap. Several members are deliberately outside the address space:
// Trace, SnapshotEvery and OnSnapshot (pure observers that cannot change
// results), ResumeFrom (mechanism — a resumed run reproduces the full
// run's result by construction), and a live *Store injected directly into
// Protocol.TwoLevel.Store (runtime state, not configuration — stores built
// from RunConfig.Storage are covered via the storage fields). Callers
// caching by these fields must configure storage declaratively.
func (cfg RunConfig) CacheFields() []cache.Field {
	net := cfg.Net
	if (net == NetworkParams{}) {
		net = DefaultNetwork()
	}
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	dur := func(d Duration) string { return strconv.FormatInt(int64(d), 10) }
	i64 := func(v int64) string { return strconv.FormatInt(v, 10) }
	fields := []cache.Field{
		cache.F("workload", cfg.Workload),
		cache.F("ranks", strconv.Itoa(cfg.Ranks)),
		cache.F("iterations", strconv.Itoa(cfg.Iterations)),
		cache.F("compute", dur(cfg.Compute)),
		cache.F("jitter", f64(cfg.Jitter)),
		cache.F("msg_bytes", i64(cfg.MsgBytes)),
		cache.F("seed", strconv.FormatUint(cfg.Seed, 10)),
		cache.F("max_time", i64(int64(cfg.MaxTime))),
		cache.F("net.latency", dur(net.Latency)),
		cache.F("net.overhead", dur(net.Overhead)),
		cache.F("net.gap", dur(net.Gap)),
		cache.F("net.gap_per_byte", f64(net.GapPerByte)),
		cache.F("net.overhead_per_byte", f64(net.OverheadPerByte)),
		cache.F("net.rendezvous", i64(net.RendezvousThreshold)),
		cache.F("net.bisection_bps", f64(net.BisectionBytesPerSec)),
		cache.F("storage.aggregate_bps", f64(cfg.Storage.AggregateBytesPerSec)),
		cache.F("storage.per_writer_bps", f64(cfg.Storage.PerWriterBytesPerSec)),
		cache.F("storage.node_bps", f64(cfg.Storage.NodeBytesPerSec)),
		cache.F("storage.ranks_per_node", strconv.Itoa(cfg.Storage.RanksPerNode)),
		cache.F("proto.kind", string(cfg.Protocol.Kind)),
		cache.F("proto.interval", dur(cfg.Protocol.Interval)),
		cache.F("proto.write", dur(cfg.Protocol.Write)),
		cache.F("proto.offset", cfg.Protocol.Offset),
		cache.F("proto.log.alpha", dur(cfg.Protocol.Logging.Alpha)),
		cache.F("proto.log.beta", f64(cfg.Protocol.Logging.BetaNsPerByte)),
		cache.F("proto.cluster", strconv.Itoa(cfg.Protocol.ClusterSize)),
		cache.F("proto.incr.full_every", strconv.Itoa(cfg.Protocol.Incremental.FullEvery)),
		cache.F("proto.incr.fraction", f64(cfg.Protocol.Incremental.Fraction)),
		cache.F("proto.window", dur(cfg.Protocol.Window)),
		cache.F("proto.slowdown", f64(cfg.Protocol.Slowdown)),
		cache.F("proto.ckpt_bytes", i64(cfg.Protocol.CkptBytes)),
		cache.F("proto.bytes", i64(cfg.Protocol.Bytes)),
		cache.F("proto.2l.local_interval", dur(cfg.Protocol.TwoLevel.LocalInterval)),
		cache.F("proto.2l.local_write", dur(cfg.Protocol.TwoLevel.LocalWrite)),
		cache.F("proto.2l.global_interval", dur(cfg.Protocol.TwoLevel.GlobalInterval)),
		cache.F("proto.2l.global_write", dur(cfg.Protocol.TwoLevel.GlobalWrite)),
		cache.F("proto.2l.ctl_bytes", i64(cfg.Protocol.TwoLevel.CtlBytes)),
		cache.F("proto.2l.local_bytes", i64(cfg.Protocol.TwoLevel.LocalBytes)),
		cache.F("proto.2l.global_bytes", i64(cfg.Protocol.TwoLevel.GlobalBytes)),
		cache.F("proto.rep.degree", strconv.Itoa(cfg.Protocol.ReplicaDegree)),
		cache.F("proto.rep.hb_period", dur(cfg.Protocol.HeartbeatPeriod)),
		cache.F("proto.rep.hb_bytes", i64(cfg.Protocol.HeartbeatBytes)),
		cache.F("proto.rep.takeover", dur(cfg.Protocol.TakeoverCost)),
		cache.F("proto.cic.lag", strconv.Itoa(cfg.Protocol.CICLag)),
	}
	if cfg.Program != nil {
		// An ingested trace replaces the workload shape in the address: the
		// digest of the canonical serialization identifies the program, so
		// two byte-different files that parse identically still share a key.
		sum := sha256.Sum256([]byte(goal.WriteString(cfg.Program)))
		fields = append(fields, cache.F("program.digest", hex.EncodeToString(sum[:])))
	}
	if cfg.Noise != nil {
		fields = append(fields,
			cache.F("noise.period", dur(cfg.Noise.Period)),
			cache.F("noise.duration", dur(cfg.Noise.Duration)),
			cache.F("noise.poisson", strconv.FormatBool(cfg.Noise.Poisson)),
		)
	}
	if cfg.Failures != nil {
		fields = append(fields,
			cache.F("fail.mtbf", dur(cfg.Failures.MTBF)),
			cache.F("fail.shape", f64(cfg.Failures.Shape)),
			cache.F("fail.restart", dur(cfg.Failures.Restart)),
			cache.F("fail.replay_speedup", f64(cfg.Failures.ReplaySpeedup)),
			cache.F("fail.kind", strconv.Itoa(int(cfg.Failures.Kind))),
			cache.F("fail.local_coverage", f64(cfg.Failures.LocalCoverage)),
			cache.F("fail.local_restart", dur(cfg.Failures.LocalRestart)),
		)
	}
	return fields
}

// Workloads returns the names accepted by RunConfig.Workload.
func Workloads() []string { return workload.Names() }

// DescribeWorkload returns a one-line description of a workload name.
func DescribeWorkload(name string) string { return workload.Describe(name) }

// Run executes one study point end to end: build the workload, attach the
// protocol and injectors, simulate, and return the results.
func Run(cfg RunConfig) (*RunResult, error) {
	net := cfg.Net
	if (net == NetworkParams{}) {
		net = DefaultNetwork()
	}
	prog := cfg.Program
	if prog == nil {
		var err error
		prog, err = workload.FromName(cfg.Workload, workload.CommonConfig{
			Base: workload.Base{
				Ranks:      cfg.Ranks,
				Iterations: cfg.Iterations,
				Compute:    cfg.Compute,
				Jitter:     cfg.Jitter,
				Seed:       cfg.Seed,
			},
			Bytes: cfg.MsgBytes,
		})
		if err != nil {
			return nil, err
		}
	}
	if cfg.Protocol.Kind == ProtoReplication {
		// The configured ranks are the application; widen the machine so
		// each primary's replicas are real simulated nodes.
		d := cfg.Protocol.ReplicaDegree
		if d <= 0 {
			d = 1
		}
		var err error
		prog, err = goal.Widen(prog, prog.NumRanks*(d+1))
		if err != nil {
			return nil, err
		}
	}
	var err error
	var st *storage.Store
	if (cfg.Storage != StorageParams{}) {
		st, err = storage.New(cfg.Storage)
		if err != nil {
			return nil, err
		}
	}
	proto, err := cfg.Protocol.build(st)
	if err != nil {
		return nil, err
	}
	agents := []sim.Agent{proto}
	if cfg.Noise != nil {
		inj, err := noise.NewInjector(*cfg.Noise)
		if err != nil {
			return nil, err
		}
		agents = append(agents, inj)
	}
	var finj *failure.Injector
	if cfg.Failures != nil {
		finj, err = failure.NewInjector(*cfg.Failures, proto)
		if err != nil {
			return nil, err
		}
		agents = append(agents, finj)
	}
	eng, err := sim.New(sim.Config{
		Net:           net,
		Program:       prog,
		Agents:        agents,
		Seed:          cfg.Seed,
		MaxTime:       cfg.MaxTime,
		Trace:         cfg.Trace,
		SnapshotEvery: cfg.SnapshotEvery,
		OnSnapshot:    cfg.OnSnapshot,
	})
	if err != nil {
		return nil, err
	}
	if cfg.ResumeFrom != nil {
		if err := eng.Restore(cfg.ResumeFrom); err != nil {
			return nil, err
		}
	}
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &RunResult{Result: res, Protocol: proto, Store: st}
	if finj != nil {
		out.FailureEvents = finj.Events()
	}
	return out, nil
}
