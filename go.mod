module checkpointsim

go 1.22
