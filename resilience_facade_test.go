package checkpointsim

import "testing"

// Run widens the machine for ProtoReplication: the configured ranks are
// the application, and each primary gets a live replica node. Takeover
// recovery then absorbs failures without losing work.
func TestRunReplicationFacade(t *testing.T) {
	res, err := Run(RunConfig{
		Workload:   "stencil2d",
		Ranks:      8,
		Iterations: 40,
		Compute:    Millisecond,
		MsgBytes:   2048,
		Seed:       16,
		Protocol:   ProtocolConfig{Kind: ProtoReplication},
		Failures:   &FailureConfig{MTBF: 40 * Millisecond, Restart: 100 * Microsecond, Kind: RecoverTakeover},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.RankFinish); got != 16 {
		t.Fatalf("machine spans %d ranks, want 16 (8 primaries + 8 replicas)", got)
	}
	st := res.Protocol.Stats()
	if st.MirroredMessages == 0 || st.Heartbeats == 0 {
		t.Errorf("replication idle: mirrored=%d heartbeats=%d", st.MirroredMessages, st.Heartbeats)
	}
	if len(res.FailureEvents) == 0 {
		t.Fatal("no failures injected — takeover untested")
	}
	for _, ev := range res.FailureEvents {
		if ev.LostWork != 0 {
			t.Errorf("rank %d lost %v of work under replica takeover", ev.Rank, ev.LostWork)
		}
	}
	if st.Takeovers == 0 {
		t.Error("failures occurred but no replica took over")
	}
}

// ProtoCIC through the facade: the basic timer writes and lagged indices
// force additional checkpoints.
func TestRunCICFacade(t *testing.T) {
	res, err := Run(RunConfig{
		Workload:   "stencil2d",
		Ranks:      16,
		Iterations: 60,
		Compute:    Millisecond,
		MsgBytes:   2048,
		Seed:       3,
		Protocol: ProtocolConfig{Kind: ProtoCIC,
			Interval: 2 * Millisecond, Write: 100 * Microsecond, CICLag: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Protocol.Stats()
	if st.Writes == 0 {
		t.Fatal("CIC wrote no checkpoints")
	}
	if st.Forced == 0 {
		t.Error("no forced checkpoints — communication induced nothing")
	}
	if st.Forced > st.Writes {
		t.Errorf("forced %d exceeds total writes %d", st.Forced, st.Writes)
	}
}

// The explicit constructors validate their inputs like the kind switch.
func TestResilienceProtocolConstructors(t *testing.T) {
	rp, err := NewReplicationProtocol(ReplicationParams{})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "replication" {
		t.Errorf("name = %q", rp.Name())
	}
	if _, err := NewReplicationProtocol(ReplicationParams{Degree: -1}); err == nil {
		t.Error("negative degree accepted")
	}
	p := CheckpointParams{Interval: 2 * Millisecond, Write: 100 * Microsecond}
	cic, err := NewCICProtocol(p, 1, "staggered")
	if err != nil {
		t.Fatal(err)
	}
	if cic.Name() != "cic" {
		t.Errorf("name = %q", cic.Name())
	}
	if _, err := NewCICProtocol(p, 1, "sideways"); err == nil {
		t.Error("bad offset policy accepted")
	}
	if _, err := NewCICProtocol(CheckpointParams{}, 1, "staggered"); err == nil {
		t.Error("zero interval accepted")
	}
}
