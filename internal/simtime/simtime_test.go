package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnitsAreConsistent(t *testing.T) {
	if Microsecond != 1000*Nanosecond {
		t.Errorf("Microsecond = %d", Microsecond)
	}
	if Millisecond != 1000*Microsecond {
		t.Errorf("Millisecond = %d", Millisecond)
	}
	if Second != 1e9 {
		t.Errorf("Second = %d, want 1e9", Second)
	}
	if Minute != 60*Second || Hour != 60*Minute || Day != 24*Hour {
		t.Error("minute/hour/day inconsistent")
	}
	if Year != 8766*Hour {
		t.Errorf("Year = %d, want Julian year", Year)
	}
}

func TestAddSub(t *testing.T) {
	var tm Time = 100
	if got := tm.Add(50); got != 150 {
		t.Errorf("Add = %d", got)
	}
	if got := tm.Add(-200); got != -100 {
		t.Errorf("Add negative = %d", got)
	}
	if got := Time(500).Sub(200); got != 300 {
		t.Errorf("Sub = %d", got)
	}
}

func TestAddSaturatesAtInfinity(t *testing.T) {
	tm := Infinity - 10
	if got := tm.Add(100); got != Infinity {
		t.Errorf("Add overflow = %d, want Infinity", got)
	}
	if got := Infinity.Add(1); got != Infinity {
		t.Errorf("Infinity.Add = %d", got)
	}
	tm = Time(math.MinInt64 + 5)
	if got := tm.Add(-100); got != Time(math.MinInt64) {
		t.Errorf("Add underflow = %d", got)
	}
}

func TestBeforeAfter(t *testing.T) {
	if !Time(1).Before(2) || Time(2).Before(1) || Time(1).Before(1) {
		t.Error("Before wrong")
	}
	if !Time(2).After(1) || Time(1).After(2) || Time(1).After(1) {
		t.Error("After wrong")
	}
}

func TestSeconds(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds = %v", got)
	}
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Errorf("Seconds = %v", got)
	}
	if got := (3 * Microsecond).Microseconds(); got != 3.0 {
		t.Errorf("Microseconds = %v", got)
	}
	if got := Time(Second).Seconds(); got != 1.0 {
		t.Errorf("Time.Seconds = %v", got)
	}
}

func TestScale(t *testing.T) {
	if got := Second.Scale(0.5); got != 500*Millisecond {
		t.Errorf("Scale = %v", got)
	}
	if got := Duration(3).Scale(1.0 / 3.0); got != 1 {
		t.Errorf("Scale rounding = %v", got)
	}
	if got := Forever.Scale(2); got != Forever {
		t.Errorf("Scale overflow = %v", got)
	}
	if got := Second.Scale(-1); got != -Second {
		t.Errorf("Scale negative = %v", got)
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds = %v", got)
	}
	if got := FromSeconds(1e300); got != Forever {
		t.Errorf("FromSeconds overflow = %v", got)
	}
	if got := FromSeconds(0); got != 0 {
		t.Errorf("FromSeconds zero = %v", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{250, "250ns"},
		{1500, "1.5us"},
		{2 * Millisecond, "2ms"},
		{1500 * Millisecond, "1.5s"},
		{90 * Second, "1.5m"},
		{36 * Hour, "1.5d"},
		{Forever, "inf"},
		{-250, "-250ns"},
		{-1500 * Millisecond, "-1.5s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
	}{
		{"100ns", 100},
		{"100", 100},
		{"2.5us", 2500},
		{"2.5µs", 2500},
		{"3ms", 3 * Millisecond},
		{"1.5s", 1500 * Millisecond},
		{"2m", 2 * Minute},
		{"2min", 2 * Minute},
		{"4h", 4 * Hour},
		{"7d", 7 * Day},
		{"5y", 5 * Year},
		{"-3ms", -3 * Millisecond},
		{"+3ms", 3 * Millisecond},
		{" 10us ", 10 * Microsecond},
		{"inf", Forever},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseDurationErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "10xx", "ms", "1.2.3s", "--5s"} {
		if _, err := ParseDuration(in); err == nil {
			t.Errorf("ParseDuration(%q) succeeded, want error", in)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	// String output must parse back to the same value for round values.
	for _, d := range []Duration{0, 1, 999, Microsecond, 42 * Millisecond,
		3 * Second, 90 * Second, 2 * Hour, Day, Year} {
		got, err := ParseDuration(d.String())
		if err != nil {
			t.Fatalf("ParseDuration(%q): %v", d.String(), err)
		}
		if got != d {
			t.Errorf("round trip %v: got %d want %d", d.String(), got, d)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Error("Max wrong")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Error("Min wrong")
	}
	if MaxDuration(3, 4) != 4 || MinDuration(3, 4) != 3 {
		t.Error("Duration min/max wrong")
	}
}

// Property: Add is the inverse of Sub for in-range values.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a int32, b int32) bool {
		tm := Time(a)
		d := Duration(b)
		return tm.Add(d).Sub(tm) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String never returns empty and parses back within rounding for
// positive durations below a year.
func TestQuickStringParse(t *testing.T) {
	f := func(v uint32) bool {
		d := Duration(v)
		s := d.String()
		if s == "" {
			return false
		}
		p, err := ParseDuration(s)
		if err != nil {
			return false
		}
		// Three decimals of the display unit bound the round-trip error.
		diff := p - d
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) <= 0.001*float64(d)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
