// Package simtime provides the integer-nanosecond time base used throughout
// the simulator.
//
// All simulated clocks are 64-bit signed nanosecond counts. Using integers
// (rather than float64 seconds) keeps event ordering exact and makes every
// simulation bit-for-bit reproducible across platforms; at nanosecond
// resolution the representable range (~292 years) comfortably covers any
// checkpointing study.
package simtime

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Time is an absolute simulated time, in nanoseconds since the start of the
// simulation. The zero value is the simulation epoch.
type Time int64

// Duration is a span of simulated time in nanoseconds. Negative durations
// are representable but rejected by most consumers.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
	Day                  = 24 * Hour
	Year                 = 8766 * Hour // Julian year: 365.25 days
)

// Infinity is a sentinel Time later than any reachable simulation time.
const Infinity Time = math.MaxInt64

// Forever is a sentinel Duration longer than any reachable simulation span.
const Forever Duration = math.MaxInt64

// Add returns t shifted forward by d. It saturates at Infinity instead of
// wrapping on overflow, so code that advances toward a sentinel deadline
// stays monotonic.
func (t Time) Add(d Duration) Time {
	s := Time(int64(t) + int64(d))
	if d > 0 && s < t { // overflow
		return Infinity
	}
	if d < 0 && s > t { // underflow
		return Time(math.MinInt64)
	}
	return s
}

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(int64(t) - int64(u)) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "1.234ms".
func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a float64 microsecond count.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Scale returns d multiplied by the dimensionless factor f, rounding to the
// nearest nanosecond and saturating at Forever.
func (d Duration) Scale(f float64) Duration {
	v := float64(d) * f
	if v >= float64(math.MaxInt64) {
		return Forever
	}
	if v <= float64(math.MinInt64) {
		return Duration(math.MinInt64)
	}
	return Duration(math.Round(v))
}

// FromSeconds converts a float64 second count into a Duration, saturating at
// Forever.
func FromSeconds(s float64) Duration {
	v := s * float64(Second)
	if v >= float64(math.MaxInt64) {
		return Forever
	}
	if v <= float64(math.MinInt64) {
		return Duration(math.MinInt64)
	}
	return Duration(math.Round(v))
}

// unitTable is ordered largest to smallest for formatting.
var unitTable = []struct {
	name string
	d    Duration
}{
	{"y", Year},
	{"d", Day},
	{"h", Hour},
	{"m", Minute},
	{"s", Second},
	{"ms", Millisecond},
	{"us", Microsecond},
	{"ns", Nanosecond},
}

// String formats the duration with an adaptive unit: the largest unit whose
// magnitude is at least 1, printed with three significant decimals, e.g.
// "250ns", "1.5us", "2.34h". Forever prints as "inf".
func (d Duration) String() string {
	if d == Forever {
		return "inf"
	}
	if d == 0 {
		return "0s"
	}
	neg := d < 0
	a := d
	if neg {
		a = -a
	}
	for _, u := range unitTable {
		if a >= u.d {
			v := float64(a) / float64(u.d)
			s := strconv.FormatFloat(v, 'f', 3, 64)
			s = strings.TrimRight(s, "0")
			s = strings.TrimRight(s, ".")
			if neg {
				return "-" + s + u.name
			}
			return s + u.name
		}
	}
	return fmt.Sprintf("%dns", int64(d))
}

// ParseDuration parses strings like "100ns", "2.5us", "3ms", "1.5s", "2m",
// "4h", "7d", "5y". A bare number is interpreted as nanoseconds. Unit names
// accept "us" or "µs" for microseconds.
func ParseDuration(s string) (Duration, error) {
	orig := s
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("simtime: empty duration")
	}
	if s == "inf" {
		return Forever, nil
	}
	neg := false
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		s = s[1:]
	}
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		i--
	}
	num, unit := s[:i], strings.TrimSpace(s[i:])
	if num == "" {
		return 0, fmt.Errorf("simtime: missing number in %q", orig)
	}
	for _, c := range num {
		if (c < '0' || c > '9') && c != '.' {
			return 0, fmt.Errorf("simtime: bad number in %q", orig)
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("simtime: bad number in %q: %v", orig, err)
	}
	var base Duration
	switch unit {
	case "", "ns":
		base = Nanosecond
	case "us", "µs", "μs":
		base = Microsecond
	case "ms":
		base = Millisecond
	case "s":
		base = Second
	case "m", "min":
		base = Minute
	case "h":
		base = Hour
	case "d":
		base = Day
	case "y":
		base = Year
	default:
		return 0, fmt.Errorf("simtime: unknown unit %q in %q", unit, orig)
	}
	d := base.Scale(v)
	if neg {
		d = -d
	}
	return d, nil
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxDuration returns the larger of a and b.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinDuration returns the smaller of a and b.
func MinDuration(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}
