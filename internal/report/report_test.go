package report

import (
	"math"
	"strings"
	"testing"
)

func TestCell(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{3.14159265, "3.142"},
		{float32(2.5), "2.5"},
		{math.NaN(), "-"},
		{42, "42"},
		{"abc", "abc"},
	}
	for _, c := range cases {
		if got := Cell(c.in); got != c.want {
			t.Errorf("Cell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("betabetabeta", 2)
	tb.AddNote("a caption")
	s := tb.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "betabetabeta", "note: a caption"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	// Columns align: each row has the same rune count up to trailing cell.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", s)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on arity mismatch")
		}
	}()
	NewTable("t", "a", "b").AddRow(1)
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("t", "x", "y")
	tb.AddRow(1, 2.5)
	tb.AddRow("a,b", "line")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "x,y\n") {
		t.Errorf("missing header: %q", got)
	}
	if !strings.Contains(got, `"a,b"`) {
		t.Errorf("comma cell not quoted: %q", got)
	}
}

func TestPlot(t *testing.T) {
	var sb strings.Builder
	Plot(&sb, "shape", 40, 8, map[string][]Point{
		"lin": {{0, 0}, {1, 1}, {2, 2}},
		"sq":  {{0, 0}, {1, 1}, {2, 4}},
	})
	s := sb.String()
	if !strings.Contains(s, "shape") || !strings.Contains(s, "*=lin") || !strings.Contains(s, "o=sq") {
		t.Errorf("plot output wrong:\n%s", s)
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Errorf("marks missing:\n%s", s)
	}
}

func TestPlotEmpty(t *testing.T) {
	var sb strings.Builder
	Plot(&sb, "none", 40, 8, map[string][]Point{"e": nil})
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty plot output: %q", sb.String())
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	var sb strings.Builder
	Plot(&sb, "flat", 2, 2, map[string][]Point{
		"p": {{1, 5}, {1, 5}},
	})
	if sb.Len() == 0 {
		t.Error("no output for degenerate plot")
	}
}
