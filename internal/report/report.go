// Package report renders experiment results as aligned text tables, CSV,
// and quick ASCII plots — the output layer of the benchmark harness.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is an ordered collection of rows under named columns.
type Table struct {
	Title string
	Cols  []string
	Notes []string
	rows  [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddNote attaches a caption line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddRow appends a row; cells are formatted with Cell. It panics if the
// arity does not match the header.
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.Cols) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns",
			len(cells), len(t.Cols)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted cells of every data row, in order. The outer
// slice is fresh, the inner slices are the table's own (callers must not
// mutate them). cmd/sweepd uses this to serialize tables into its result
// cache; re-adding the returned strings through AddRow reproduces the
// table byte-for-byte, because Cell is the identity on strings.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	copy(out, t.rows)
	return out
}

// Cell formats one value: floats get four significant digits, NaN prints
// as "-", everything else uses %v.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) {
			return "-"
		}
		return fmt.Sprintf("%.4g", x)
	case float32:
		return Cell(float64(x))
	default:
		return fmt.Sprint(v)
	}
}

// Fprint writes the aligned table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	sep := make([]string, len(t.Cols))
	hdr := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		hdr[i] = pad(c, widths[i])
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, strings.Join(hdr, "  "))
	fmt.Fprintln(w, strings.Join(sep, "  "))
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(cells, "  "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// WriteCSV writes the table as CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Point is one (x, y) sample of a plotted series.
type Point struct{ X, Y float64 }

// Plot renders a quick ASCII scatter of one or more series, each drawn
// with its own rune. Intended for eyeballing shapes in a terminal, not for
// publication.
func Plot(w io.Writer, title string, width, height int, series map[string][]Point) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, pts := range series {
		for _, p := range pts {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			if first {
				xmin, xmax, ymin, ymax = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
		}
	}
	if first {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	marks := []rune("*o+x#@%&")
	names := sortedKeys(series)
	for si, name := range names {
		mark := marks[si%len(marks)]
		for _, p := range series[name] {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			x := int((p.X - xmin) / (xmax - xmin) * float64(width-1))
			y := int((p.Y - ymin) / (ymax - ymin) * float64(height-1))
			grid[height-1-y][x] = mark
		}
	}
	fmt.Fprintf(w, "%s  [y: %.4g..%.4g, x: %.4g..%.4g]\n", title, ymin, ymax, xmin, xmax)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", string(row))
	}
	legend := make([]string, 0, len(names))
	for si, name := range names {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], name))
	}
	fmt.Fprintln(w, strings.Join(legend, "  "))
}

func sortedKeys(m map[string][]Point) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
