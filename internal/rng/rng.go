// Package rng provides a small, fast, deterministic random number generator
// and the distributions the simulator needs (uniform, exponential, Weibull,
// normal, Poisson).
//
// The simulator must be bit-for-bit reproducible from a seed, independent of
// Go version, so we implement xoshiro256** seeded via splitmix64 rather than
// depending on math/rand's unspecified stream. Streams can be split so that
// independent subsystems (failure injection, checkpoint offsets, workload
// jitter) draw from decorrelated generators.
package rng

import (
	"errors"
	"math"
)

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is the
// recommended seeder for xoshiro.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a nonzero state; splitmix64 of any seed produces one
	// with overwhelming probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split returns a new Source whose stream is decorrelated from r but fully
// determined by r's current state and the label. Use distinct labels for
// distinct subsystems.
func (r *Source) Split(label uint64) *Source {
	return New(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// Derive returns a seed for an independent stream keyed by root and the
// label path, equivalent to chaining New(root).Split(l0).Split(l1)... and
// drawing one value. Sweep harnesses use it to give each point of a
// parallel sweep its own decorrelated stream that depends only on the
// point's identity — never on which worker ran it or in what order — so
// results are bit-for-bit reproducible at any parallelism.
func Derive(root uint64, labels ...uint64) uint64 {
	s := New(root)
	for _, l := range labels {
		s = s.Split(l)
	}
	return s.Uint64()
}

// State returns the generator's current internal state, for serialization.
// FromState(r.State()) continues the stream exactly where r left off.
func (r *Source) State() [4]uint64 { return r.s }

// FromState reconstructs a Source from a state captured with State. The
// all-zero state is invalid for xoshiro (the stream would be constant zero)
// and can only arise from corrupted input, so it is rejected.
func FromState(s [4]uint64) (*Source, error) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return nil, errors.New("rng: all-zero state")
	}
	return &Source{s: s}, nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	un := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul128(x, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + t>>32 + (t&mask32+a0*b1)>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly zero.
// Useful as input to inverse-CDF transforms involving log.
func (r *Source) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given mean
// (mean = 1/rate). It panics if mean <= 0.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	return -mean * math.Log(r.Float64Open())
}

// Weibull returns a Weibull-distributed value with the given scale (lambda)
// and shape (k). shape < 1 models infant mortality (decreasing hazard),
// shape = 1 reduces to the exponential, shape > 1 models wear-out.
func (r *Source) Weibull(scale, shape float64) float64 {
	if scale <= 0 || shape <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	return scale * math.Pow(-math.Log(r.Float64Open()), 1/shape)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform (polar discarded branch
// omitted deliberately: one trig call keeps the consumption of the stream
// fixed at two draws per call, which simplifies reproducibility reasoning).
func (r *Source) Normal(mean, stddev float64) float64 {
	u1 := r.Float64Open()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// TruncNormal returns a normal draw truncated to be >= lo by resampling.
func (r *Source) TruncNormal(mean, stddev, lo float64) float64 {
	for i := 0; i < 1000; i++ {
		v := r.Normal(mean, stddev)
		if v >= lo {
			return v
		}
	}
	return lo
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and normal approximation above 500 (where
// Knuth's product underflows and the approximation error is negligible).
func (r *Source) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean > 500 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function (Fisher-Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
