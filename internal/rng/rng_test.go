package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from different seeds", same)
	}
}

func TestKnownStream(t *testing.T) {
	// Pin the exact stream so any accidental algorithm change is caught.
	r := New(0)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := New(0)
	for i, w := range got {
		if g := r2.Uint64(); g != w {
			t.Fatalf("draw %d: %d != %d", i, g, w)
		}
	}
	// Zero seed must still produce a usable, non-degenerate stream.
	if got[0] == 0 && got[1] == 0 && got[2] == 0 {
		t.Error("degenerate zero stream")
	}
}

func TestDerive(t *testing.T) {
	// Derive is pure: same root and labels, same seed.
	if Derive(42, 3, 7) != Derive(42, 3, 7) {
		t.Error("Derive not deterministic")
	}
	// It matches the explicit Split chain it documents.
	want := New(42).Split(3).Split(7).Uint64()
	if got := Derive(42, 3, 7); got != want {
		t.Errorf("Derive(42,3,7) = %d, want split-chain %d", got, want)
	}
	// Distinct labels (and label order) give distinct seeds.
	seen := map[uint64][2]uint64{}
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 32; b++ {
			s := Derive(9, a, b)
			if prev, dup := seen[s]; dup {
				t.Fatalf("collision: labels %v and [%d %d] both give %d", prev, a, b, s)
			}
			seen[s] = [2]uint64{a, b}
		}
	}
	if Derive(1, 2, 3) == Derive(1, 3, 2) {
		t.Error("label order ignored")
	}
}

func TestSplitDecorrelates(t *testing.T) {
	r := New(7)
	a := r.Split(1)
	r2 := New(7)
	b := r2.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams overlap: %d/100", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split(3)
	b := New(9).Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("split not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(10) value %d count %d far from uniform", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnOne(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Intn(1) != 0 {
			t.Fatal("Intn(1) != 0")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUniform(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(6)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		v := r.Exp(3.0)
		if v < 0 {
			t.Fatalf("Exp negative: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-3.0) > 0.05 {
		t.Errorf("Exp mean = %v, want ~3", mean)
	}
}

func TestWeibullShapeOneIsExp(t *testing.T) {
	// Weibull(scale, 1) has mean = scale.
	r := New(7)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Weibull(2.0, 1.0)
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.0) > 0.05 {
		t.Errorf("Weibull(2,1) mean = %v, want ~2", mean)
	}
}

func TestWeibullMeanShape(t *testing.T) {
	// Weibull(scale=1, shape=2) mean = Gamma(1.5) = sqrt(pi)/2 ~ 0.8862.
	r := New(8)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Weibull(1.0, 2.0)
	}
	mean := sum / float64(n)
	want := math.Sqrt(math.Pi) / 2
	if math.Abs(mean-want) > 0.01 {
		t.Errorf("Weibull(1,2) mean = %v, want ~%v", mean, want)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(9)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-5) > 0.03 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.03 {
		t.Errorf("Normal stddev = %v", math.Sqrt(variance))
	}
}

func TestTruncNormal(t *testing.T) {
	r := New(10)
	for i := 0; i < 10000; i++ {
		if v := r.TruncNormal(0, 1, 0); v < 0 {
			t.Fatalf("TruncNormal below bound: %v", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 50, 1000} {
		r := New(11)
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	r := New(12)
	if r.Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Poisson(-1) did not panic")
		}
	}()
	r.Poisson(-1)
}

func TestPerm(t *testing.T) {
	r := New(13)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("bad permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	r := New(14)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 45 {
		t.Errorf("shuffle lost elements: sum=%d", sum)
	}
}

func TestMul128(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// Property: Intn(n) is always in range for arbitrary positive n.
func TestQuickIntnInRange(t *testing.T) {
	r := New(99)
	f := func(n uint16) bool {
		m := int(n)%1000 + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Exp and Weibull draws are always non-negative.
func TestQuickPositiveDraws(t *testing.T) {
	r := New(100)
	f := func(m uint8) bool {
		mean := float64(m)/16 + 0.1
		return r.Exp(mean) >= 0 && r.Weibull(mean, 0.7) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exp(1)
	}
	_ = sink
}

// TestStateRoundTrip: a Source rebuilt from a mid-stream State must
// continue the stream exactly — the serialization contract snapshots
// depend on.
func TestStateRoundTrip(t *testing.T) {
	f := func(seed uint64, skip uint8) bool {
		r := New(seed)
		for i := 0; i < int(skip); i++ {
			r.Uint64()
		}
		clone, err := FromState(r.State())
		if err != nil {
			t.Fatalf("FromState(State()): %v", err)
		}
		for i := 0; i < 100; i++ {
			// Mix raw draws with the derived distributions: both must
			// advance the two streams in lockstep.
			if r.Uint64() != clone.Uint64() || r.Exp(2.5) != clone.Exp(2.5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFromStateRejectsZero: the all-zero state would generate constant
// zeros forever; it can only come from corrupted input.
func TestFromStateRejectsZero(t *testing.T) {
	if _, err := FromState([4]uint64{}); err == nil {
		t.Error("FromState accepted the all-zero state")
	}
	if _, err := FromState([4]uint64{0, 1, 0, 0}); err != nil {
		t.Errorf("FromState rejected a valid state: %v", err)
	}
}
