package validate_test

import (
	"strings"
	"sync"
	"testing"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/failure"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/storage"
	"checkpointsim/internal/validate"
)

// ringProgram builds a P-rank ring: every iteration each rank computes,
// then exchanges one message with each neighbor via non-blocking
// send/recv pairs. Message sizes alternate between small (eager) and big
// (rendezvous) so both wire protocols appear in the trace.
func ringProgram(ranks, iters int, small, big int64, compute simtime.Duration) *goal.Program {
	b := goal.NewBuilder(ranks)
	seqs := make([]*goal.Sequencer, ranks)
	for i := range seqs {
		seqs[i] = b.Seq(i)
	}
	for it := 0; it < iters; it++ {
		bytes := small
		if it%2 == 1 {
			bytes = big
		}
		for r := 0; r < ranks; r++ {
			s := seqs[r]
			s.Calc(compute)
			next := int32((r + 1) % ranks)
			prev := int32((r - 1 + ranks) % ranks)
			s.Join(
				s.Fork(goal.KindSend, next, 7, bytes),
				s.Fork(goal.KindRecv, prev, 7, bytes),
			)
		}
	}
	return b.MustBuild()
}

// runTraced executes one simulation recording the full event stream.
func runTraced(t testing.TB, net network.Params, prog *goal.Program, agents ...sim.Agent) ([]sim.TraceEvent, *sim.Result) {
	t.Helper()
	var events []sim.TraceEvent
	e, err := sim.New(sim.Config{
		Net: net, Program: prog, Agents: agents, Seed: 1,
		Trace: func(ev sim.TraceEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return events, res
}

// replay feeds a recorded (possibly mutated) stream through a fresh
// checker and returns the end-of-run verdict.
func replay(net network.Params, events []sim.TraceEvent, res *sim.Result) error {
	c := validate.New(net)
	for _, ev := range events {
		c.Add(ev)
	}
	return c.Finish(res)
}

const (
	smallMsg = 4 * 1024
	bigMsg   = 256 * 1024 // past DefaultParams' 64 KiB rendezvous threshold
)

func coordinatedScenario(t testing.TB) ([]sim.TraceEvent, *sim.Result) {
	t.Helper()
	cp, err := checkpoint.NewCoordinated(checkpoint.Params{
		Interval: 500 * simtime.Microsecond,
		Write:    100 * simtime.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := ringProgram(4, 20, smallMsg, bigMsg, 50*simtime.Microsecond)
	events, res := runTraced(t, network.DefaultParams(), prog, cp)
	return events, res
}

// An unmutated trace from a real coordinated run must pass every check.
func TestValidCoordinatedTracePasses(t *testing.T) {
	events, res := coordinatedScenario(t)
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	if err := replay(network.DefaultParams(), events, res); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

// An uncoordinated run with message logging must pass both the stream
// checks and the logging reconciliation.
func TestValidUncoordinatedLoggingPasses(t *testing.T) {
	cp, err := checkpoint.NewUncoordinated(checkpoint.Params{
		Interval: 700 * simtime.Microsecond,
		Write:    100 * simtime.Microsecond,
	}, checkpoint.Staggered, checkpoint.LogParams{
		Alpha: 500 * simtime.Nanosecond, BetaNsPerByte: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := network.DefaultParams()
	prog := ringProgram(4, 20, smallMsg, bigMsg, 50*simtime.Microsecond)
	events, res := runTraced(t, net, prog, cp)

	c := validate.New(net)
	for _, ev := range events {
		c.Add(ev)
	}
	if err := c.Finish(res); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if err := c.CheckLogging(cp); err != nil {
		t.Fatalf("consistent logging rejected: %v", err)
	}
	if got := cp.Stats().LoggedMessages; got == 0 {
		t.Fatal("scenario logged no messages — logging check was vacuous")
	}
}

// Each targeted corruption of a valid trace must be rejected, and the
// violation text must name the right invariant family.
func TestCorruptedTraceRejected(t *testing.T) {
	base, res := coordinatedScenario(t)
	find := func(pred func(sim.TraceEvent) bool) int {
		for i, ev := range base {
			if pred(ev) {
				return i
			}
		}
		t.Fatal("scenario lacks an event the mutation needs")
		return -1
	}

	cases := []struct {
		name string
		want string // substring of the violation message
		mut  func(events []sim.TraceEvent) []sim.TraceEvent
	}{
		{"stretch-cpu-occupancy", "RankBusy", func(evs []sim.TraceEvent) []sim.TraceEvent {
			i := find(func(ev sim.TraceEvent) bool { return ev.Type == sim.TraceCPU && ev.Kind == "calc" })
			evs[i].End += 1000
			return evs
		}},
		{"drop-grant", "grant", func(evs []sim.TraceEvent) []sim.TraceEvent {
			i := find(func(ev sim.TraceEvent) bool { return ev.Type == sim.TraceGrant && ev.Kind == "calc" })
			return append(evs[:i], evs[i+1:]...)
		}},
		{"drop-match", "matches", func(evs []sim.TraceEvent) []sim.TraceEvent {
			i := find(func(ev sim.TraceEvent) bool { return ev.Type == sim.TraceMatch })
			return append(evs[:i], evs[i+1:]...)
		}},
		{"drop-arrival", "arriv", func(evs []sim.TraceEvent) []sim.TraceEvent {
			i := find(func(ev sim.TraceEvent) bool { return ev.Type == sim.TraceArrive && ev.Kind == "eager" })
			return append(evs[:i], evs[i+1:]...)
		}},
		{"duplicate-match", "twice", func(evs []sim.TraceEvent) []sim.TraceEvent {
			i := find(func(ev sim.TraceEvent) bool { return ev.Type == sim.TraceMatch })
			dup := evs[i]
			evs = append(evs, sim.TraceEvent{})
			copy(evs[i+1:], evs[i:])
			evs[i+1] = dup
			return evs
		}},
		{"beat-wire-bound", "lower bound", func(evs []sim.TraceEvent) []sim.TraceEvent {
			i := find(func(ev sim.TraceEvent) bool { return ev.Type == sim.TraceInject })
			evs[i].End = evs[i].Start
			return evs
		}},
		{"nic-window-width", "NIC window", func(evs []sim.TraceEvent) []sim.TraceEvent {
			i := find(func(ev sim.TraceEvent) bool { return ev.Type == sim.TraceNIC })
			evs[i].End++
			return evs
		}},
		{"inflate-message-bytes", "app msgs", func(evs []sim.TraceEvent) []sim.TraceEvent {
			i := find(func(ev sim.TraceEvent) bool { return ev.Type == sim.TraceInject && ev.Kind == "eager" })
			evs[i].Bytes += 64
			return evs
		}},
		{"hold-depth-mismatch", "depth", func(evs []sim.TraceEvent) []sim.TraceEvent {
			i := find(func(ev sim.TraceEvent) bool { return ev.Type == sim.TracePhase && ev.Kind == "hold" })
			evs[i].Detail++
			return evs
		}},
		{"round-commit-out-of-order", "out of order", func(evs []sim.TraceEvent) []sim.TraceEvent {
			i := find(func(ev sim.TraceEvent) bool { return ev.Type == sim.TracePhase && ev.Kind == "round-start" })
			evs[i].Kind = "round-commit"
			return evs
		}},
		{"negative-rank", "negative rank", func(evs []sim.TraceEvent) []sim.TraceEvent {
			evs[0].Rank = -1
			return evs
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			events := append([]sim.TraceEvent(nil), base...)
			events = tc.mut(events)
			err := replay(network.DefaultParams(), events, res)
			if err == nil {
				t.Fatal("corrupted trace accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("violation %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Hook must tee events to the wrapped consumer, and the violation list
// must cap (keeping a count of the overflow) instead of growing without
// bound on a badly broken stream.
func TestHookTeeAndViolationCap(t *testing.T) {
	c := validate.New(network.DefaultParams())
	var forwarded int
	hook := c.Hook(func(sim.TraceEvent) { forwarded++ })
	const n = 35
	for i := 0; i < n; i++ {
		hook(sim.TraceEvent{Type: sim.TraceCPU, Rank: -1, Kind: "calc"})
	}
	if forwarded != n {
		t.Errorf("forwarded %d of %d events to the wrapped consumer", forwarded, n)
	}
	if got := len(c.Violations()); got >= n {
		t.Errorf("violation list not capped: %d entries", got)
	}
	err := c.Err()
	if err == nil {
		t.Fatal("broken stream produced no error")
	}
	if !strings.Contains(err.Error(), "more") {
		t.Errorf("error does not count overflowed violations: %v", err)
	}

	if err := validate.New(network.DefaultParams()).Err(); err != nil {
		t.Errorf("fresh checker reports error: %v", err)
	}
	var nilTee *validate.Checker = validate.New(network.DefaultParams())
	nilTee.Hook(nil)(sim.TraceEvent{Type: sim.TraceCPU, Rank: 0, Kind: "calc"})
	if err := nilTee.Finish(nil); err == nil {
		t.Error("Finish(nil) accepted")
	}
}

// phaseAt builds a synthetic storage phase marker.
func phaseAt(rank int, name string, detail int64, at simtime.Time) sim.TraceEvent {
	return sim.TraceEvent{Type: sim.TracePhase, Rank: rank, Kind: name,
		Start: at, End: at, Op: goal.NoOp, Detail: detail}
}

// CheckStorage reconciles the store's counters against traced
// begin/end pairs: consistent counters pass, every drift is flagged.
func TestCheckStorage(t *testing.T) {
	net := network.DefaultParams()
	feed := func() *validate.Checker {
		c := validate.New(net)
		c.Add(phaseAt(0, "store-begin", 100, 10))
		c.Add(phaseAt(1, "store-begin", 200, 10))
		c.Add(phaseAt(0, "store-end", 100, 50))
		c.Add(phaseAt(1, "store-end", 200, 60))
		c.Add(phaseAt(0, "store-begin", 300, 70)) // still in flight: fine
		return c
	}
	if err := feed().CheckStorage(storage.Stats{Writes: 2, Bytes: 300}); err != nil {
		t.Fatalf("consistent storage rejected: %v", err)
	}
	if err := feed().CheckStorage(storage.Stats{Writes: 3, Bytes: 300}); err == nil {
		t.Fatal("write-count drift accepted")
	}
	if err := feed().CheckStorage(storage.Stats{Writes: 2, Bytes: 299}); err == nil {
		t.Fatal("byte drift accepted")
	}

	c := validate.New(net)
	c.Add(phaseAt(0, "store-begin", 100, 10))
	c.Add(phaseAt(0, "store-end", 80, 50)) // FIFO pairing broken
	if err := c.Err(); err == nil {
		t.Fatal("mismatched drain size accepted")
	}

	c = validate.New(net)
	c.Add(phaseAt(0, "store-end", 80, 50))
	if err := c.Err(); err == nil {
		t.Fatal("store-end with no write in flight accepted")
	}
}

// fakeLogger wraps a real protocol's policy but reports doctored stats.
type fakeLogger struct {
	validate.TaxedLogger
	stats checkpoint.Stats
}

func (f fakeLogger) Stats() checkpoint.Stats { return f.stats }

// A protocol whose accumulated logging counters drift from the traced
// send set must be rejected.
func TestCheckLoggingDetectsDrift(t *testing.T) {
	cp, err := checkpoint.NewUncoordinated(checkpoint.Params{
		Interval: 700 * simtime.Microsecond,
		Write:    100 * simtime.Microsecond,
	}, checkpoint.Aligned, checkpoint.LogParams{Alpha: 500 * simtime.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	net := network.DefaultParams()
	prog := ringProgram(4, 10, smallMsg, bigMsg, 50*simtime.Microsecond)
	events, res := runTraced(t, net, prog, cp)

	for name, doctor := range map[string]func(*checkpoint.Stats){
		"messages": func(s *checkpoint.Stats) { s.LoggedMessages++ },
		"bytes":    func(s *checkpoint.Stats) { s.LoggedBytes += 64 },
		"penalty":  func(s *checkpoint.Stats) { s.LogPenalty += 1000 },
	} {
		doctor := doctor
		t.Run(name, func(t *testing.T) {
			c := validate.New(net)
			for _, ev := range events {
				c.Add(ev)
			}
			if err := c.Finish(res); err != nil {
				t.Fatalf("valid trace rejected: %v", err)
			}
			st := cp.Stats()
			doctor(&st)
			if err := c.CheckLogging(fakeLogger{TaxedLogger: cp, stats: st}); err == nil {
				t.Fatal("doctored logging stats accepted")
			}
		})
	}
}

// fuzzBase caches one recorded run for the fuzz target.
var fuzzBase struct {
	once   sync.Once
	events []sim.TraceEvent
	res    *sim.Result
}

// FuzzValidateTrace perturbs a valid trace with mutations that each break
// an invariant by construction, and asserts the checker rejects every one.
// The mutation classes map to the violation families: conservation
// (stretched occupancies, inflated payloads, dropped grants/matches),
// causality (early arrivals, dropped arrivals).
func FuzzValidateTrace(f *testing.F) {
	net := network.DefaultParams()
	base := func(t *testing.T) ([]sim.TraceEvent, *sim.Result) {
		fuzzBase.once.Do(func() {
			fuzzBase.events, fuzzBase.res = coordinatedScenario(t)
		})
		if fuzzBase.res == nil {
			t.Skip("base scenario failed to build")
		}
		return fuzzBase.events, fuzzBase.res
	}
	for mode := uint8(0); mode < 6; mode++ {
		f.Add(mode, uint16(0), int64(1))
		f.Add(mode, uint16(37), int64(999))
	}
	f.Fuzz(func(t *testing.T, mode uint8, idx uint16, delta int64) {
		events0, res := base(t)
		d := delta % 1_000_000
		if d <= 0 {
			d = 1 - d
		}
		events := append([]sim.TraceEvent(nil), events0...)

		// Candidate events for the chosen mutation. Each class is restricted
		// to events where the corruption is guaranteed detectable (e.g.
		// dropped control-message arrivals are legal truncation at exit, so
		// arrival drops only target application-class kinds).
		mode %= 6
		var cands []int
		for i, ev := range events {
			ok := false
			switch mode {
			case 0: // stretch a CPU occupancy: breaks busy-time conservation
				ok = ev.Type == sim.TraceCPU
			case 1: // drop an app grant: completion has no matching grant
				ok = ev.Type == sim.TraceGrant &&
					(ev.Kind == "calc" || ev.Kind == "send" || ev.Kind == "recv")
			case 2: // drop a match: match counter diverges from Metrics
				ok = ev.Type == sim.TraceMatch
			case 3: // drop a non-ctl arrival: message never arrives / matched unarrived
				ok = ev.Type == sim.TraceArrive && ev.Kind != "ctl"
			case 4: // inflate an app payload: byte conservation breaks
				ok = ev.Type == sim.TraceInject && (ev.Kind == "eager" || ev.Kind == "data")
			case 5: // shift an arrival off its scheduled time: causality breaks
				ok = ev.Type == sim.TraceArrive
			}
			if ok {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			t.Skip("no candidate event for this mutation")
		}
		i := cands[int(idx)%len(cands)]
		switch mode {
		case 0:
			events[i].End += simtime.Time(d)
		case 1, 2, 3:
			events = append(events[:i], events[i+1:]...)
		case 4:
			events[i].Bytes += d
		case 5:
			events[i].Start += simtime.Time(d)
		}
		if err := replay(net, events, res); err == nil {
			t.Fatalf("corrupted trace accepted (mode %d, event %d, delta %d)", mode, i, d)
		}
	})
}

// replicationScenario records a replication run with injected failures:
// a 2-rank ring application embedded in a 4-rank machine (the upper two
// ranks are replicas), failing often enough that takeovers occur.
func replicationScenario(t testing.TB) (*checkpoint.Replication, []sim.TraceEvent, *sim.Result) {
	t.Helper()
	rp, err := checkpoint.NewReplication(checkpoint.ReplicationParams{
		HeartbeatPeriod: 200 * simtime.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := failure.NewInjector(failure.Config{
		MTBF: 2 * simtime.Millisecond, Restart: 50 * simtime.Microsecond,
		Kind: failure.TakeoverReplica,
	}, rp)
	if err != nil {
		t.Fatal(err)
	}
	prog := ringProgram(2, 20, smallMsg, bigMsg, 50*simtime.Microsecond)
	wide, err := goal.Widen(prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	events, res := runTraced(t, network.DefaultParams(), wide, rp, inj)
	return rp, events, res
}

// cicScenario records a CIC run on a ring busy enough that the lag-1 rule
// forces checkpoints.
func cicScenario(t testing.TB) (*checkpoint.CIC, []sim.TraceEvent, *sim.Result) {
	t.Helper()
	// The 1ms interval spreads the staggered offsets wide enough that rank
	// indices diverge while messages are in flight — the lag-1 rule forces.
	cic, err := checkpoint.NewCIC(checkpoint.Params{
		Interval: simtime.Millisecond,
		Write:    100 * simtime.Microsecond,
	}, 1, checkpoint.Staggered)
	if err != nil {
		t.Fatal(err)
	}
	prog := ringProgram(4, 20, smallMsg, bigMsg, 50*simtime.Microsecond)
	events, res := runTraced(t, network.DefaultParams(), prog, cic)
	return cic, events, res
}

// A real replication run must pass the stream checks and the mirror/takeover
// reconciliation, and the scenario must actually exercise both.
func TestValidReplicationTracePasses(t *testing.T) {
	rp, events, res := replicationScenario(t)
	net := network.DefaultParams()
	c := validate.New(net)
	for _, ev := range events {
		c.Add(ev)
	}
	if err := c.Finish(res); err != nil {
		t.Fatalf("valid replication trace rejected: %v", err)
	}
	if err := c.CheckReplication(rp); err != nil {
		t.Fatalf("consistent replication rejected: %v", err)
	}
	st := rp.Stats()
	if st.MirroredMessages == 0 {
		t.Fatal("scenario mirrored no messages — mirror check was vacuous")
	}
	if st.Takeovers == 0 {
		t.Fatal("scenario absorbed no takeovers — takeover check was vacuous")
	}
}

// A real CIC run must pass the stream checks and the counter
// reconciliation, and the scenario must actually force checkpoints.
func TestValidCICTracePasses(t *testing.T) {
	cic, events, res := cicScenario(t)
	net := network.DefaultParams()
	c := validate.New(net)
	for _, ev := range events {
		c.Add(ev)
	}
	if err := c.Finish(res); err != nil {
		t.Fatalf("valid CIC trace rejected: %v", err)
	}
	if err := c.CheckCIC(cic); err != nil {
		t.Fatalf("consistent CIC rejected: %v", err)
	}
	if cic.Stats().Forced == 0 {
		t.Fatal("scenario forced no checkpoints — Z-cycle check was vacuous")
	}
}

// fakeReplica doctors a real replication protocol's stats.
type fakeReplica struct {
	validate.ReplicaMirror
	stats checkpoint.Stats
}

func (f fakeReplica) Stats() checkpoint.Stats { return f.stats }

// fakeCIC doctors a real CIC protocol's stats.
type fakeCIC struct {
	validate.CICIntrospect
	stats checkpoint.Stats
}

func (f fakeCIC) Stats() checkpoint.Stats { return f.stats }

// Each targeted corruption of the replication-family invariants must be
// rejected with a violation naming the right family.
func TestCorruptedReplicationRejected(t *testing.T) {
	rp, base, res := replicationScenario(t)
	net := network.DefaultParams()
	feed := func(events []sim.TraceEvent) *validate.Checker {
		c := validate.New(net)
		for _, ev := range events {
			c.Add(ev)
		}
		return c
	}

	t.Run("dropped-mirror", func(t *testing.T) {
		// The protocol claims one fewer mirrored message than the traced
		// primary→primary sends require.
		c := feed(base)
		if err := c.Finish(res); err != nil {
			t.Fatalf("valid trace rejected: %v", err)
		}
		st := rp.Stats()
		st.MirroredMessages--
		st.MirroredBytes -= smallMsg
		err := c.CheckReplication(fakeReplica{ReplicaMirror: rp, stats: st})
		if err == nil {
			t.Fatal("dropped replica mirror accepted")
		}
		if !strings.Contains(err.Error(), "mirrored") {
			t.Errorf("violation %q does not mention mirroring", err)
		}
	})

	t.Run("double-takeover", func(t *testing.T) {
		// Duplicate a rep-takeover marker: two takeovers absorb one failure.
		events := append([]sim.TraceEvent(nil), base...)
		i := -1
		for j, ev := range events {
			if ev.Type == sim.TracePhase && ev.Kind == "rep-takeover" {
				i = j
				break
			}
		}
		if i < 0 {
			t.Fatal("scenario has no takeover to duplicate")
		}
		events = append(events, sim.TraceEvent{})
		copy(events[i+1:], events[i:])
		events[i+1] = events[i]
		err := feed(events).Err()
		if err == nil {
			t.Fatal("double takeover accepted")
		}
		if !strings.Contains(err.Error(), "double takeover") {
			t.Errorf("violation %q does not mention double takeover", err)
		}
	})

	t.Run("takeover-drift", func(t *testing.T) {
		// The protocol claims more absorbed takeovers than the trace shows.
		c := feed(base)
		if err := c.Finish(res); err != nil {
			t.Fatalf("valid trace rejected: %v", err)
		}
		st := rp.Stats()
		st.Takeovers++
		if err := c.CheckReplication(fakeReplica{ReplicaMirror: rp, stats: st}); err == nil {
			t.Fatal("takeover-count drift accepted")
		}
	})
}

// Each targeted corruption of the CIC-family invariants must be rejected
// with a violation naming the right family.
func TestCorruptedCICRejected(t *testing.T) {
	cic, base, res := cicScenario(t)
	net := network.DefaultParams()
	feed := func(events []sim.TraceEvent) *validate.Checker {
		c := validate.New(net)
		for _, ev := range events {
			c.Add(ev)
		}
		return c
	}
	find := func(events []sim.TraceEvent, kind string) int {
		for i, ev := range events {
			if ev.Type == sim.TracePhase && ev.Kind == kind {
				return i
			}
		}
		t.Fatalf("scenario lacks a %q marker", kind)
		return -1
	}

	t.Run("non-monotone-index", func(t *testing.T) {
		// Replay a checkpoint index the rank has already completed.
		events := append([]sim.TraceEvent(nil), base...)
		i := find(events, "cic-basic")
		dup := events[i]
		events = append(events, sim.TraceEvent{})
		copy(events[i+1:], events[i:])
		events[i+1] = dup
		err := feed(events).Err()
		if err == nil {
			t.Fatal("non-monotone checkpoint index accepted")
		}
		if !strings.Contains(err.Error(), "monotone") {
			t.Errorf("violation %q does not mention monotonicity", err)
		}
	})

	t.Run("unforced-z-cycle", func(t *testing.T) {
		// Delete a forced-checkpoint completion: the announced induction is
		// never honored, so the rank's next application grant closes a
		// Z-cycle.
		events := append([]sim.TraceEvent(nil), base...)
		i := find(events, "cic-forced")
		events = append(events[:i], events[i+1:]...)
		err := feed(events).Err()
		if err == nil {
			t.Fatal("unforced Z-cycle accepted")
		}
		if !strings.Contains(err.Error(), "Z-cycle") {
			t.Errorf("violation %q does not mention the Z-cycle", err)
		}
	})

	t.Run("unjustified-forced", func(t *testing.T) {
		// A forced checkpoint with no pending induction.
		events := append([]sim.TraceEvent(nil), base...)
		i := find(events, "cic-force-due")
		events[i].Kind = "cic-basic" // the announcement disappears
		err := feed(events).Err()
		if err == nil {
			t.Fatal("unjustified forced checkpoint accepted")
		}
	})

	t.Run("write-count-drift", func(t *testing.T) {
		// The protocol claims more forced writes than the marker stream.
		c := feed(base)
		if err := c.Finish(res); err != nil {
			t.Fatalf("valid trace rejected: %v", err)
		}
		st := cic.Stats()
		st.Forced++
		err := c.CheckCIC(fakeCIC{CICIntrospect: cic, stats: st})
		if err == nil {
			t.Fatal("forced-count drift accepted")
		}
		if !strings.Contains(err.Error(), "forced") {
			t.Errorf("violation %q does not mention forced writes", err)
		}
	})
}
