// Package validate implements a trace-conformance checker for the
// simulator: it consumes the widened sim.Config.Trace event stream and
// verifies, after (or during) every run, that the engine respected the
// invariants the study's conclusions rest on.
//
// The checks fall into four families:
//
//   - Causality. A message never arrives before its injection plus the
//     LogGOPS wire lower bound L + (s-1)·G; a receive never completes
//     before its matching message is available plus the receiver overhead
//     o + (s-1)·O; per-(src,dst) channels are non-overtaking; the event
//     stream never travels backwards in time.
//
//   - Resource exclusivity. Each rank's CPU runs one job at a time: every
//     grant is followed by completion segments that start exactly at the
//     grant and chain end-to-start, and a new grant never begins before
//     the previous occupancy ended. NIC injection windows on a rank are
//     serialized and exactly g + (s-1)·G wide.
//
//   - Conservation. Per-rank application, control, and seized CPU time
//     recomputed from the trace equal the engine's Result accounting
//     exactly; all occupancies lie inside [0, makespan] and the makespan
//     is attained; every injected message arrives (in-flight control
//     messages at exit excepted); every application message is matched to
//     exactly one receive, and no receive matches twice; message counters
//     (app/ctl/rendezvous/matches) recomputed from the stream equal
//     Result.Metrics; storage bytes drained equal bytes begun (per-rank
//     FIFO pairing, in-flight writes at exit excepted).
//
//   - Protocol invariants. Coordinated rounds fully quiesce: between a
//     "hold" marker and its "hold-release" no application-class job is
//     granted on that rank, at a "round-commit" every member's gate is
//     closed and no application job is mid-flight (groups of ≥ 2 ranks),
//     and round markers follow the start → commit → end state machine.
//     Uncoordinated/hierarchical logging charges α + round(β·bytes) on
//     exactly the senders the policy taxes (CheckLogging). CIC checkpoint
//     indices are strictly monotone per rank, every announced forced
//     checkpoint ("cic-force-due") completes before the rank's next
//     application-class grant (no unforced Z-cycle), and forced writes are
//     justified by a pending induction; protocol counters reconcile against
//     the marker stream (CheckCIC). Replication mirrors every
//     primary-to-primary application send to exactly degree replicas and
//     absorbs each injected failure by at most one takeover
//     ("rep-failure"/"rep-takeover" pairing; CheckReplication).
//
// A Checker is single-run state: build one per simulation with New, feed
// it every trace event (Hook adapts it to sim.Config.Trace), then call
// Finish with the run's Result. Violations accumulate (capped) and are
// reported together by Err.
package validate

import (
	"fmt"
	"math"
	"strings"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/storage"
)

// maxViolations caps the violations retained; further ones only count.
const maxViolations = 20

type chanKey struct{ src, dst int }

// ready is a receive whose message is available for final processing.
type ready struct {
	at    simtime.Time
	bytes int64
}

// msgState tracks one wire traversal from injection to match.
type msgState struct {
	kind        string
	src, dst    int
	bytes, wire int64
	arriveAt    simtime.Time // scheduled arrival (TraceInject.End)
	arrived     bool
	matched     bool
}

// appSend is one application send op (for logging reconciliation).
type appSend struct {
	src, dst int
	bytes    int64
}

// rankState is the per-rank streaming state.
type rankState struct {
	grantOpen bool // a grant has been seen (job granted at least once)
	running   bool // granted with no completion segment yet
	grantKind string
	grantTime simtime.Time
	segEnd    simtime.Time // end of the last completion segment
	cpuEnd    simtime.Time // end of the last completed CPU occupancy
	nicEnd    simtime.Time // end of the last NIC injection window

	holdDepth int64

	// CIC streaming state: the rank's highest completed checkpoint index
	// and the highest forced-checkpoint index announced but not yet
	// completed (0 = none pending).
	cicIdx     int64
	cicPending int64

	app, ctl, seized simtime.Duration
	maxAppEnd        simtime.Time
	sawApp           bool

	// Coordinated-round state machine, keyed by root rank.
	roundPhase int // 0 idle, 1 started, 2 committed
	roundSize  int64

	// FIFO of in-flight shared-storage writes (bytes), begin-to-end.
	storeQ []int64
}

// Checker verifies trace conformance for one simulation run.
type Checker struct {
	net network.Params

	ranks     []rankState
	msgs      map[int64]*msgState
	chanLast  map[chanKey]simtime.Time
	recvReady map[goal.OpID]ready
	recvSeen  map[goal.OpID]bool
	appSends  []appSend
	clock     simtime.Time

	// Stream-derived counters, reconciled against Result.Metrics.
	nMatches, nApp, nCtl, nRndzv int64
	appBytes, ctlBytes           int64

	// Storage conservation counters.
	storeBegunBytes, storeEndedBytes int64
	storeBegun, storeEnded           int64

	// Replication/CIC reconciliation counters.
	takeoverPending        map[int]int // victim rank → unabsorbed failures
	nTakeovers             int64
	nCICWrites, nCICForced int64

	violations []string
	dropped    int64
}

// New builds a checker for one run under the given network parameters.
func New(net network.Params) *Checker {
	return &Checker{
		net:       net,
		msgs:      make(map[int64]*msgState),
		chanLast:  make(map[chanKey]simtime.Time),
		recvReady: make(map[goal.OpID]ready),
		recvSeen:  make(map[goal.OpID]bool),
	}
}

// Hook returns a sim.Config.Trace callback feeding the checker and then
// forwarding to next (which may be nil) — so validation can tee with an
// existing trace consumer such as the timeline collector.
func (c *Checker) Hook(next func(sim.TraceEvent)) func(sim.TraceEvent) {
	return func(ev sim.TraceEvent) {
		c.Add(ev)
		if next != nil {
			next(ev)
		}
	}
}

func (c *Checker) fail(format string, args ...any) {
	if len(c.violations) >= maxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

// Violations returns the retained violation messages.
func (c *Checker) Violations() []string { return c.violations }

// Err returns nil when no violation was recorded, or one error
// summarizing all of them.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	n := int64(len(c.violations)) + c.dropped
	var sb strings.Builder
	fmt.Fprintf(&sb, "validate: %d violation(s):", n)
	for _, v := range c.violations {
		sb.WriteString("\n  - ")
		sb.WriteString(v)
	}
	if c.dropped > 0 {
		fmt.Fprintf(&sb, "\n  ... %d more", c.dropped)
	}
	return fmt.Errorf("%s", sb.String())
}

// rank returns the state for a rank index, growing storage on demand.
func (c *Checker) rank(i int) *rankState {
	for len(c.ranks) <= i {
		c.ranks = append(c.ranks, rankState{})
	}
	return &c.ranks[i]
}

// class buckets a CPU-event kind.
func class(kind string) string {
	switch {
	case kind == "calc" || kind == "send" || kind == "recv":
		return "app"
	case kind == "ctl":
		return "ctl"
	case strings.HasPrefix(kind, "seize:"):
		return "seized"
	}
	return "other"
}

// Add consumes one trace event (in emission order — pass events in the
// exact sequence the engine produced them).
func (c *Checker) Add(ev sim.TraceEvent) {
	if ev.Rank < 0 {
		c.fail("event with negative rank %d", ev.Rank)
		return
	}
	// No time travel: instantaneous records (grants, arrivals, matches,
	// phase markers) are emitted at the engine's current time and must be
	// non-decreasing along the stream. NIC and injection windows may
	// legitimately start in the engine's future (busy NIC), but never in
	// its past. CPU occupancies are ordered by the per-rank grant-chaining
	// checks instead: a completed occupancy can end before the stream
	// clock (the lone-writer segment of a split open-ended seizure is
	// emitted at release time but ends at its nominal split).
	switch ev.Type {
	case sim.TraceGrant, sim.TraceArrive, sim.TraceMatch, sim.TracePhase:
		if ev.Start < c.clock {
			c.fail("time travel: event type %d on rank %d at %v after stream reached %v",
				ev.Type, ev.Rank, ev.Start, c.clock)
		} else {
			c.clock = ev.Start
		}
	case sim.TraceNIC, sim.TraceInject:
		if ev.Start < c.clock {
			c.fail("time travel: msg %d window starts %v before stream reached %v",
				ev.MsgID, ev.Start, c.clock)
		}
	case sim.TraceCPU:
		if ev.End > c.clock {
			c.clock = ev.End
		}
	}

	switch ev.Type {
	case sim.TraceCPU:
		c.addCPU(ev)
	case sim.TraceGrant:
		c.addGrant(ev)
	case sim.TraceNIC:
		c.addNIC(ev)
	case sim.TraceInject:
		c.addInject(ev)
	case sim.TraceArrive:
		c.addArrive(ev)
	case sim.TraceMatch:
		c.addMatch(ev)
	case sim.TracePhase:
		c.addPhase(ev)
	default:
		c.fail("unknown trace event type %d", ev.Type)
	}
}

func (c *Checker) addGrant(ev sim.TraceEvent) {
	st := c.rank(ev.Rank)
	if st.running {
		c.fail("rank %d: grant of %q at %v while %q granted at %v has not completed",
			ev.Rank, ev.Kind, ev.Start, st.grantKind, st.grantTime)
	}
	if ev.Start < st.cpuEnd {
		c.fail("rank %d: grant of %q at %v overlaps occupancy ending %v",
			ev.Rank, ev.Kind, ev.Start, st.cpuEnd)
	}
	if class(ev.Kind) == "app" && st.holdDepth > 0 {
		c.fail("rank %d: quiesce violation: app job %q granted at %v with %d hold gate(s) closed",
			ev.Rank, ev.Kind, ev.Start, st.holdDepth)
	}
	if class(ev.Kind) == "app" && st.cicPending > 0 {
		c.fail("rank %d: unforced Z-cycle: app job %q granted at %v with forced checkpoint (index %d) still due",
			ev.Rank, ev.Kind, ev.Start, st.cicPending)
	}
	if ev.Detail != st.holdDepth {
		c.fail("rank %d: grant at %v reports hold depth %d, stream says %d",
			ev.Rank, ev.Start, ev.Detail, st.holdDepth)
	}
	st.grantOpen = true
	st.running = true
	st.grantKind = ev.Kind
	st.grantTime = ev.Start
}

func (c *Checker) addCPU(ev sim.TraceEvent) {
	st := c.rank(ev.Rank)
	if ev.End < ev.Start {
		c.fail("rank %d: CPU event %q with End %v < Start %v", ev.Rank, ev.Kind, ev.End, ev.Start)
		return
	}
	if !st.grantOpen {
		c.fail("rank %d: CPU completion %q at %v without a grant", ev.Rank, ev.Kind, ev.End)
	} else if st.running {
		// First completion segment of the granted job.
		if ev.Start != st.grantTime {
			c.fail("rank %d: occupancy %q starts at %v, grant was at %v",
				ev.Rank, ev.Kind, ev.Start, st.grantTime)
		}
		if ev.Kind != st.grantKind {
			c.fail("rank %d: occupancy %q completes a grant for %q", ev.Rank, ev.Kind, st.grantKind)
		}
		st.running = false
	} else {
		// Continuation segment (open-ended seizures split their occupancy
		// at the nominal boundary): must chain exactly.
		if ev.Start != st.segEnd {
			c.fail("rank %d: occupancy segment %q starts at %v, previous segment ended %v",
				ev.Rank, ev.Kind, ev.Start, st.segEnd)
		}
		if !strings.HasPrefix(ev.Kind, "seize:") || !strings.HasPrefix(st.grantKind, "seize:") {
			c.fail("rank %d: unexpected continuation segment %q after grant %q",
				ev.Rank, ev.Kind, st.grantKind)
		}
	}
	st.segEnd = ev.End
	st.cpuEnd = ev.End
	d := ev.End.Sub(ev.Start)
	switch class(ev.Kind) {
	case "app":
		st.app += d
		st.sawApp = true
		if ev.End > st.maxAppEnd {
			st.maxAppEnd = ev.End
		}
		if ev.Kind == "recv" && ev.Op != goal.NoOp {
			c.checkRecvDone(ev)
		}
	case "ctl":
		st.ctl += d
	case "seized":
		st.seized += d
	default:
		c.fail("rank %d: CPU event with unknown kind %q", ev.Rank, ev.Kind)
	}
}

// checkRecvDone verifies the receive-completion lower bound: the final
// processing starts no earlier than the message became available and lasts
// at least o + (s-1)·O.
func (c *Checker) checkRecvDone(ev sim.TraceEvent) {
	r, ok := c.recvReady[ev.Op]
	if !ok {
		c.fail("rank %d: recv op %d completed at %v with no matched message",
			ev.Rank, ev.Op, ev.End)
		return
	}
	delete(c.recvReady, ev.Op)
	if ev.Start < r.at {
		c.fail("rank %d: recv op %d processing starts %v before its message was available at %v",
			ev.Rank, ev.Op, ev.Start, r.at)
	}
	if min := c.net.RecvCPU(r.bytes); ev.End.Sub(ev.Start) < min {
		c.fail("rank %d: recv op %d occupancy %v < RecvCPU(%d B) = %v",
			ev.Rank, ev.Op, ev.End.Sub(ev.Start), r.bytes, min)
	}
}

func (c *Checker) addNIC(ev sim.TraceEvent) {
	st := c.rank(ev.Rank)
	if ev.Start < st.nicEnd {
		c.fail("rank %d: NIC window [%v,%v] overlaps previous window ending %v",
			ev.Rank, ev.Start, ev.End, st.nicEnd)
	}
	if want := ev.Start.Add(c.net.NIC(ev.Wire)); ev.End != want {
		c.fail("rank %d: NIC window for msg %d is [%v,%v], want width g+(s-1)G = %v",
			ev.Rank, ev.MsgID, ev.Start, ev.End, c.net.NIC(ev.Wire))
	}
	st.nicEnd = ev.End
}

func (c *Checker) addInject(ev sim.TraceEvent) {
	if _, dup := c.msgs[ev.MsgID]; dup {
		c.fail("msg %d injected twice", ev.MsgID)
		return
	}
	if floor := ev.Start.Add(c.net.Wire(ev.Wire)); ev.End < floor {
		c.fail("msg %d (%s %d->%d): arrival %v beats wire lower bound %v (depart %v + L+(s-1)G)",
			ev.MsgID, ev.Kind, ev.Src, ev.Dst, ev.End, floor, ev.Start)
	}
	c.msgs[ev.MsgID] = &msgState{
		kind: ev.Kind, src: ev.Src, dst: ev.Dst,
		bytes: ev.Bytes, wire: ev.Wire, arriveAt: ev.End,
	}
	switch ev.Kind {
	case "eager":
		c.nApp++
		c.appBytes += ev.Bytes
		c.appSends = append(c.appSends, appSend{src: ev.Src, dst: ev.Dst, bytes: ev.Bytes})
	case "data":
		c.nApp++
		c.appBytes += ev.Bytes
	case "rts":
		c.nRndzv++
		c.appSends = append(c.appSends, appSend{src: ev.Src, dst: ev.Dst, bytes: ev.Bytes})
	case "ctl", "cts":
		c.nCtl++
		c.ctlBytes += ev.Wire
	default:
		c.fail("msg %d injected with unknown kind %q", ev.MsgID, ev.Kind)
	}
}

func (c *Checker) addArrive(ev sim.TraceEvent) {
	m, ok := c.msgs[ev.MsgID]
	if !ok {
		c.fail("msg %d arrived at %v without an injection record", ev.MsgID, ev.Start)
		return
	}
	if m.arrived {
		c.fail("msg %d arrived twice", ev.MsgID)
		return
	}
	m.arrived = true
	if ev.Start != m.arriveAt {
		c.fail("msg %d (%s %d->%d): arrived at %v, injection scheduled %v",
			ev.MsgID, m.kind, m.src, m.dst, ev.Start, m.arriveAt)
	}
	if ev.Rank != m.dst {
		c.fail("msg %d (%s %d->%d): arrived on rank %d", ev.MsgID, m.kind, m.src, m.dst, ev.Rank)
	}
	key := chanKey{m.src, m.dst}
	if last, ok := c.chanLast[key]; ok && ev.Start < last {
		c.fail("channel %d->%d: overtaking: msg %d arrives %v after a %v arrival",
			m.src, m.dst, ev.MsgID, ev.Start, last)
	}
	c.chanLast[key] = ev.Start
	if m.kind == "data" {
		// Rendezvous payload: the receive can complete once the data is in.
		if _, dup := c.recvReady[ev.RecvOp]; dup {
			c.fail("recv op %d readied twice (data msg %d)", ev.RecvOp, ev.MsgID)
		}
		c.recvReady[ev.RecvOp] = ready{at: ev.Start, bytes: m.bytes}
	}
}

func (c *Checker) addMatch(ev sim.TraceEvent) {
	c.nMatches++
	m, ok := c.msgs[ev.MsgID]
	if !ok {
		c.fail("match of unknown msg %d at %v", ev.MsgID, ev.Start)
		return
	}
	if !m.arrived {
		c.fail("msg %d matched at %v before arriving", ev.MsgID, ev.Start)
	}
	if m.matched {
		c.fail("msg %d matched twice", ev.MsgID)
		return
	}
	m.matched = true
	if m.kind != "eager" && m.kind != "rts" {
		c.fail("msg %d: match of non-matchable kind %q", ev.MsgID, m.kind)
		return
	}
	if ev.Start < m.arriveAt {
		c.fail("msg %d matched at %v before its arrival %v", ev.MsgID, ev.Start, m.arriveAt)
	}
	if c.recvSeen[ev.RecvOp] {
		c.fail("recv op %d matched a second message (msg %d)", ev.RecvOp, ev.MsgID)
	}
	c.recvSeen[ev.RecvOp] = true
	if m.kind == "eager" {
		if _, dup := c.recvReady[ev.RecvOp]; dup {
			c.fail("recv op %d readied twice (eager msg %d)", ev.RecvOp, ev.MsgID)
		}
		c.recvReady[ev.RecvOp] = ready{at: ev.Start, bytes: m.bytes}
	}
}

func (c *Checker) addPhase(ev sim.TraceEvent) {
	st := c.rank(ev.Rank)
	switch ev.Kind {
	case "hold":
		st.holdDepth++
		if ev.Detail != st.holdDepth {
			c.fail("rank %d: hold at %v reports depth %d, stream says %d",
				ev.Rank, ev.Start, ev.Detail, st.holdDepth)
		}
	case "hold-release":
		st.holdDepth--
		if st.holdDepth < 0 {
			c.fail("rank %d: hold-release at %v without a matching hold", ev.Rank, ev.Start)
			st.holdDepth = 0
		} else if ev.Detail != st.holdDepth {
			c.fail("rank %d: hold-release at %v reports depth %d, stream says %d",
				ev.Rank, ev.Start, ev.Detail, st.holdDepth)
		}
	case "round-start":
		if st.roundPhase != 0 {
			c.fail("root %d: round-start at %v inside an unfinished round (phase %d)",
				ev.Rank, ev.Start, st.roundPhase)
		}
		st.roundPhase = 1
		st.roundSize = ev.Detail
	case "round-commit":
		if st.roundPhase != 1 {
			c.fail("root %d: round-commit at %v out of order (phase %d)",
				ev.Rank, ev.Start, st.roundPhase)
		}
		st.roundPhase = 2
		c.checkCommitBarrier(ev.Rank, st.roundSize, ev.Start)
	case "round-end":
		if st.roundPhase != 2 {
			c.fail("root %d: round-end at %v out of order (phase %d)",
				ev.Rank, ev.Start, st.roundPhase)
		}
		st.roundPhase = 0
	case "cic-basic", "cic-forced":
		if ev.Detail <= st.cicIdx {
			c.fail("rank %d: checkpoint index not monotone: %s index %d at %v after index %d",
				ev.Rank, ev.Kind, ev.Detail, ev.Start, st.cicIdx)
		}
		st.cicIdx = ev.Detail
		c.nCICWrites++
		if ev.Kind == "cic-forced" {
			c.nCICForced++
			if st.cicPending == 0 {
				c.fail("rank %d: forced checkpoint (index %d) at %v without a pending induction",
					ev.Rank, ev.Detail, ev.Start)
			} else if ev.Detail >= st.cicPending {
				st.cicPending = 0
			}
		}
	case "cic-force-due":
		if ev.Detail <= st.cicIdx {
			c.fail("rank %d: forced checkpoint due for index %d at %v, but the rank's index is already %d",
				ev.Rank, ev.Detail, ev.Start, st.cicIdx)
		}
		if ev.Detail > st.cicPending {
			st.cicPending = ev.Detail
		}
	case "rep-failure":
		if c.takeoverPending == nil {
			c.takeoverPending = make(map[int]int)
		}
		c.takeoverPending[int(ev.Detail)]++
	case "rep-takeover":
		c.nTakeovers++
		v := int(ev.Detail)
		if c.takeoverPending[v] == 0 {
			c.fail("rank %d: takeover of rank %d at %v without a pending failure (double takeover)",
				ev.Rank, v, ev.Start)
		} else {
			c.takeoverPending[v]--
		}
	case "store-begin":
		st.storeQ = append(st.storeQ, ev.Detail)
		c.storeBegun++
		c.storeBegunBytes += ev.Detail
	case "store-end":
		c.storeEnded++
		c.storeEndedBytes += ev.Detail
		if len(st.storeQ) == 0 {
			c.fail("rank %d: store-end of %d B at %v with no write in flight",
				ev.Rank, ev.Detail, ev.Start)
			return
		}
		if st.storeQ[0] != ev.Detail {
			c.fail("rank %d: store-end drained %d B, oldest in-flight write wrote %d B",
				ev.Rank, ev.Detail, st.storeQ[0])
		}
		st.storeQ = st.storeQ[1:]
	}
}

// checkCommitBarrier verifies the quiesce state at a coordinated round's
// commit: the round's members are the size contiguous ranks starting at
// the root (how both Coordinated and Hierarchical lay out their groups).
// Every member's gate must be closed, and — for groups of at least two
// ranks, where the commit necessarily postdates every member's ACK — no
// application job may be mid-flight on any member's CPU, so no
// application message can cross the barrier. (A single-rank group commits
// at its own tick, possibly mid-job; there is no barrier to cross.)
func (c *Checker) checkCommitBarrier(root int, size int64, at simtime.Time) {
	if size < 2 {
		return
	}
	for m := root; m < root+int(size); m++ {
		st := c.rank(m)
		if st.holdDepth <= 0 {
			c.fail("round(root %d): member %d gate open at commit (%v)", root, m, at)
		}
		if st.running && class(st.grantKind) == "app" {
			c.fail("round(root %d): member %d has app job %q (granted %v) in flight at commit (%v)",
				root, m, st.grantKind, st.grantTime, at)
		}
	}
}

// Finish runs the end-of-run checks against the engine's Result and
// returns Err(). In-flight work the engine legitimately truncates when the
// last application op completes — a running control job, unreleased hold
// gates, an undrained storage write, an undelivered control message — is
// not flagged.
func (c *Checker) Finish(res *sim.Result) error {
	if res == nil {
		c.fail("Finish called with nil result")
		return c.Err()
	}
	n := len(res.RankBusy)
	if len(c.ranks) > n {
		c.fail("trace names rank %d, result has %d ranks", len(c.ranks)-1, n)
	}
	var maxApp simtime.Time
	sawApp := false
	for i := 0; i < n && i < len(c.ranks); i++ {
		st := &c.ranks[i]
		if st.app != res.RankBusy[i] {
			c.fail("rank %d: traced app time %v != RankBusy %v", i, st.app, res.RankBusy[i])
		}
		if st.ctl != res.RankCtlBusy[i] {
			c.fail("rank %d: traced ctl time %v != RankCtlBusy %v", i, st.ctl, res.RankCtlBusy[i])
		}
		if st.seized != res.RankSeized[i] {
			c.fail("rank %d: traced seized time %v != RankSeized %v", i, st.seized, res.RankSeized[i])
		}
		if st.cpuEnd > res.Makespan {
			c.fail("rank %d: occupancy ends %v after makespan %v", i, st.cpuEnd, res.Makespan)
		}
		if st.sawApp {
			sawApp = true
			if st.maxAppEnd != res.RankFinish[i] {
				c.fail("rank %d: last app occupancy ends %v, RankFinish is %v",
					i, st.maxAppEnd, res.RankFinish[i])
			}
			if st.maxAppEnd > maxApp {
				maxApp = st.maxAppEnd
			}
		}
	}
	if sawApp && maxApp != res.Makespan {
		c.fail("last app occupancy ends %v, makespan is %v", maxApp, res.Makespan)
	}
	for id, m := range c.msgs {
		if !m.arrived {
			if m.kind != "ctl" {
				c.fail("msg %d (%s %d->%d) never arrived", id, m.kind, m.src, m.dst)
			}
			continue
		}
		if (m.kind == "eager" || m.kind == "rts") && !m.matched {
			c.fail("orphan: msg %d (%s %d->%d) arrived but never matched", id, m.kind, m.src, m.dst)
		}
	}
	for op := range c.recvReady {
		c.fail("recv op %d matched a message but never completed", op)
	}
	mt := res.Metrics
	if c.nApp != mt.AppMessages || c.appBytes != mt.AppBytes {
		c.fail("traced %d app msgs (%d B), metrics say %d (%d B)",
			c.nApp, c.appBytes, mt.AppMessages, mt.AppBytes)
	}
	if c.nCtl != mt.CtlMessages || c.ctlBytes != mt.CtlBytes {
		c.fail("traced %d ctl msgs (%d B), metrics say %d (%d B)",
			c.nCtl, c.ctlBytes, mt.CtlMessages, mt.CtlBytes)
	}
	if c.nRndzv != mt.Rendezvous {
		c.fail("traced %d rendezvous, metrics say %d", c.nRndzv, mt.Rendezvous)
	}
	if c.nMatches != mt.Matches {
		c.fail("traced %d matches, metrics say %d", c.nMatches, mt.Matches)
	}
	return c.Err()
}

// CheckStorage reconciles the store's counters against the trace: every
// byte the store reports drained must correspond to a traced
// store-begin/store-end pair (writes still in flight at exit excepted).
func (c *Checker) CheckStorage(ss storage.Stats) error {
	if ss.Writes != c.storeEnded {
		c.fail("store reports %d completed writes, trace saw %d", ss.Writes, c.storeEnded)
	}
	if ss.Bytes != c.storeEndedBytes {
		c.fail("store reports %d B drained, trace saw %d B", ss.Bytes, c.storeEndedBytes)
	}
	inFlight := c.storeBegun - c.storeEnded
	if inFlight < 0 {
		c.fail("more store-end (%d) than store-begin (%d) markers", c.storeEnded, c.storeBegun)
	}
	return c.Err()
}

// TaxedLogger is the introspection surface of a logging protocol
// (Uncoordinated, Hierarchical): its accumulated stats, its logging
// parameters, and its taxing policy.
type TaxedLogger interface {
	Stats() checkpoint.Stats
	LogConfig() checkpoint.LogParams
	Taxed(src, dst int) bool
}

// CheckLogging recomputes the sender-based logging charge from the traced
// application sends — α + round(β·bytes) on exactly the sends the policy
// taxes — and requires the protocol's accumulated counters to match
// exactly. Call after the run (the send set is complete at Finish time).
func (c *Checker) CheckLogging(p TaxedLogger) error {
	lp := p.LogConfig()
	var nMsgs, nBytes int64
	var penalty simtime.Duration
	for _, s := range c.appSends {
		if !p.Taxed(s.src, s.dst) {
			continue
		}
		nMsgs++
		nBytes += s.bytes
		penalty += lp.Alpha + simtime.Duration(math.Round(lp.BetaNsPerByte*float64(s.bytes)))
	}
	st := p.Stats()
	if st.LoggedMessages != nMsgs {
		c.fail("logging: protocol charged %d messages, trace says %d taxed sends",
			st.LoggedMessages, nMsgs)
	}
	if st.LoggedBytes != nBytes {
		c.fail("logging: protocol logged %d B, trace says %d B", st.LoggedBytes, nBytes)
	}
	if st.LogPenalty != penalty {
		c.fail("logging: protocol charged %v CPU, α+β·bytes over taxed sends is %v",
			st.LogPenalty, penalty)
	}
	return c.Err()
}

// ReplicaMirror is the introspection surface of a replication protocol: its
// accumulated stats, replica degree, and primary/replica split.
type ReplicaMirror interface {
	Stats() checkpoint.Stats
	Degree() int
	AppRanks() int
}

// CheckReplication recomputes replica-pair mirroring from the traced
// application sends — every primary→primary send must be duplicated to
// exactly Degree replicas — and requires the protocol's counters to match,
// along with takeover exclusivity: the protocol's absorbed-takeover count
// must equal the traced "rep-takeover" markers (each of which the streaming
// check already paired against a distinct "rep-failure"). Call after the
// run.
func (c *Checker) CheckReplication(p ReplicaMirror) error {
	d := int64(p.Degree())
	app := p.AppRanks()
	var nMsgs, nBytes int64
	for _, s := range c.appSends {
		if s.src >= app || s.dst >= app {
			continue
		}
		nMsgs += d
		nBytes += d * s.bytes
	}
	st := p.Stats()
	if st.MirroredMessages != nMsgs {
		c.fail("replication: protocol mirrored %d messages, trace requires %d (degree %d over primary sends)",
			st.MirroredMessages, nMsgs, d)
	}
	if st.MirroredBytes != nBytes {
		c.fail("replication: protocol mirrored %d B, trace requires %d B", st.MirroredBytes, nBytes)
	}
	if st.Takeovers != c.nTakeovers {
		c.fail("replication: protocol absorbed %d takeovers, trace shows %d", st.Takeovers, c.nTakeovers)
	}
	return c.Err()
}

// CICIntrospect is the introspection surface of a communication-induced
// checkpointing protocol.
type CICIntrospect interface {
	Stats() checkpoint.Stats
	LagThreshold() int
}

// CheckCIC reconciles the protocol's checkpoint counters against the
// marker stream: completed writes against "cic-basic"/"cic-forced" markers
// and forced writes against "cic-forced" alone (both are emitted at write
// completion, so in-flight writes at exit cancel exactly). The streaming
// checks already enforced index monotonicity and forced-checkpoint
// justification per rank. Call after the run.
func (c *Checker) CheckCIC(p CICIntrospect) error {
	st := p.Stats()
	if st.Writes != c.nCICWrites {
		c.fail("cic: protocol wrote %d checkpoints, trace shows %d markers", st.Writes, c.nCICWrites)
	}
	if st.Forced != c.nCICForced {
		c.fail("cic: protocol forced %d checkpoints, trace shows %d markers", st.Forced, c.nCICForced)
	}
	return c.Err()
}
