package timeline

import (
	"strings"
	"testing"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/storage"
	"checkpointsim/internal/workload"
)

// traceRun simulates a small checkpointed stencil through a collector.
func traceRun(t *testing.T) (*Collector, *sim.Result) {
	t.Helper()
	prog, err := workload.Stencil2D(workload.Stencil2DConfig{
		Base:      workload.Base{Ranks: 4, Iterations: 10, Compute: simtime.Millisecond, Seed: 1},
		HaloBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := checkpoint.NewCoordinated(checkpoint.Params{
		Interval: 3 * simtime.Millisecond, Write: 500 * simtime.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	e, err := sim.New(sim.Config{
		Net: network.DefaultParams(), Program: prog,
		Agents: []sim.Agent{cp}, Seed: 1, Trace: col.Add,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return col, r
}

func TestCollectorGathersEverything(t *testing.T) {
	col, r := traceRun(t)
	if col.Ranks() != 4 {
		t.Errorf("ranks = %d", col.Ranks())
	}
	if len(col.Events()) == 0 {
		t.Fatal("no events")
	}
	// Aggregate app time must match the engine's own accounting.
	us := col.Utilization(r.Makespan)
	var app, seized simtime.Duration
	for _, u := range us {
		app += u.App
		seized += u.Seized
	}
	var engineApp simtime.Duration
	for _, b := range r.RankBusy {
		engineApp += b
	}
	if app != engineApp {
		t.Errorf("timeline app %v != engine busy %v", app, engineApp)
	}
	if seized != r.TotalSeized() {
		t.Errorf("timeline seized %v != engine %v", seized, r.TotalSeized())
	}
	for _, u := range us {
		total := u.App + u.Ctl + u.Seized + u.Idle
		if total > simtime.Duration(r.Makespan) {
			t.Errorf("rank %d accounted %v > makespan %v", u.Rank, total, r.Makespan)
		}
		if f := u.AppFraction(r.Makespan); f <= 0 || f > 1 {
			t.Errorf("rank %d app fraction %v", u.Rank, f)
		}
	}
}

func TestSeizedByReason(t *testing.T) {
	col, r := traceRun(t)
	by := col.SeizedByReason()
	if by[checkpoint.ReasonWrite] != r.SeizedTime[checkpoint.ReasonWrite] {
		t.Errorf("seized-by-reason %v != engine %v",
			by[checkpoint.ReasonWrite], r.SeizedTime[checkpoint.ReasonWrite])
	}
}

func TestPrintSummary(t *testing.T) {
	col, r := traceRun(t)
	var sb strings.Builder
	col.PrintSummary(&sb, r.Makespan)
	out := sb.String()
	for _, want := range []string{"utilization:", "app", "seized[checkpoint]", "per-rank app fraction"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestPrintSummaryEmpty(t *testing.T) {
	var sb strings.Builder
	NewCollector().PrintSummary(&sb, 0)
	if !strings.Contains(sb.String(), "no events") {
		t.Error("empty summary wrong")
	}
}

func TestGantt(t *testing.T) {
	col, r := traceRun(t)
	var sb strings.Builder
	col.Gantt(&sb, 60, r.Makespan, 0)
	out := sb.String()
	if !strings.Contains(out, "r0 ") && !strings.Contains(out, "r0  ") {
		t.Errorf("gantt missing rank rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("gantt has no app time")
	}
	if !strings.Contains(out, "X") {
		t.Error("gantt has no seized time despite checkpointing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 ranks
		t.Errorf("gantt has %d lines", len(lines))
	}
}

func TestGanttRankCap(t *testing.T) {
	col, r := traceRun(t)
	var sb strings.Builder
	col.Gantt(&sb, 40, r.Makespan, 2)
	out := sb.String()
	if !strings.Contains(out, "2 more ranks not shown") {
		t.Errorf("cap note missing:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	var sb strings.Builder
	NewCollector().Gantt(&sb, 40, 0, 0)
	if !strings.Contains(sb.String(), "no events") {
		t.Error("empty gantt wrong")
	}
}

// ioWaitRun drives coordinated (near-simultaneous) checkpoint writes
// through a tight shared store, so the contention excess surfaces as
// seize:io-wait trace events.
func ioWaitRun(t *testing.T) (*Collector, *sim.Result) {
	t.Helper()
	prog, err := workload.Stencil2D(workload.Stencil2DConfig{
		Base:      workload.Base{Ranks: 4, Iterations: 10, Compute: simtime.Millisecond, Seed: 1},
		HaloBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.New(storage.Params{AggregateBytesPerSec: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := checkpoint.NewCoordinated(checkpoint.Params{
		Interval: 3 * simtime.Millisecond, Write: 500 * simtime.Microsecond,
		Bytes: 500_000, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	e, err := sim.New(sim.Config{
		Net: network.DefaultParams(), Program: prog,
		Agents: []sim.Agent{cp}, Seed: 1, Trace: col.Add,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return col, r
}

func TestIOWaitAccounting(t *testing.T) {
	col, r := ioWaitRun(t)
	us := col.Utilization(r.Makespan)
	var iowait, seized simtime.Duration
	for _, u := range us {
		iowait += u.IOWait
		seized += u.Seized
	}
	if iowait == 0 {
		t.Fatal("no io-wait despite 4 simultaneous writers on a shared 1 GB/s store")
	}
	if iowait != r.SeizedTime[checkpoint.ReasonIOWait] {
		t.Errorf("timeline io-wait %v != engine %v",
			iowait, r.SeizedTime[checkpoint.ReasonIOWait])
	}
	// io-wait is kept apart from productive seizure time, and both together
	// must match the engine's total seized accounting.
	if seized+iowait != r.TotalSeized() {
		t.Errorf("seized %v + io-wait %v != engine total %v",
			seized, iowait, r.TotalSeized())
	}
}

// The fixed-duration path must not report io-wait: the summary keeps its
// legacy four-column form and the utilization stays all-zero in IOWait.
func TestNoIOWaitWithoutStore(t *testing.T) {
	col, r := traceRun(t)
	for _, u := range col.Utilization(r.Makespan) {
		if u.IOWait != 0 {
			t.Fatalf("rank %d io-wait %v without a store", u.Rank, u.IOWait)
		}
	}
	var sb strings.Builder
	col.PrintSummary(&sb, r.Makespan)
	if strings.Contains(sb.String(), "io-wait") {
		t.Errorf("summary shows io-wait without a store:\n%s", sb.String())
	}
}

func TestClassBuckets(t *testing.T) {
	cases := map[string]string{
		"calc": "app", "send": "app", "recv": "app",
		"ctl": "ctl", "seize:checkpoint": "seized", "seize:noise": "seized",
		"seize:io-wait": "iowait",
		"weird":         "other",
	}
	for kind, want := range cases {
		if got := class(kind); got != want {
			t.Errorf("class(%q) = %q, want %q", kind, got, want)
		}
	}
}

func TestSmallGoalProgramTimeline(t *testing.T) {
	b := goal.NewBuilder(2)
	s0 := b.Seq(0)
	s0.Calc(simtime.Millisecond)
	s0.Send(1, 0, 64)
	b.Seq(1).Recv(0, 0, 64)
	prog := b.MustBuild()
	col := NewCollector()
	e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog,
		Trace: col.Add})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Events()) != 3 { // calc, send, recv
		t.Errorf("events = %d", len(col.Events()))
	}
	us := col.Utilization(r.Makespan)
	if us[0].App <= us[1].App {
		t.Error("rank 0 should have more app time (it computes)")
	}
}
