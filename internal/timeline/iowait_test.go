package timeline

import (
	"strings"
	"testing"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/storage"
	"checkpointsim/internal/workload"
)

// contendedRun simulates aligned uncoordinated checkpointing through a
// bandwidth-limited store: all ranks write at once, so every write splits
// into its nominal (checkpoint) part and a contention (io-wait) part.
func contendedRun(t *testing.T) (*Collector, *sim.Result) {
	t.Helper()
	prog, err := workload.EP(workload.EPConfig{
		Base: workload.Base{Ranks: 4, Iterations: 20, Compute: simtime.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.New(storage.Params{AggregateBytesPerSec: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := checkpoint.NewUncoordinated(checkpoint.Params{
		Interval: 5 * simtime.Millisecond, Write: simtime.Millisecond,
		Store: st}, checkpoint.Aligned, checkpoint.LogParams{})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	e, err := sim.New(sim.Config{
		Net: network.DefaultParams(), Program: prog,
		Agents: []sim.Agent{cp}, Seed: 1, Trace: col.Add,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return col, r
}

func TestUtilizationSplitsIOWait(t *testing.T) {
	col, r := contendedRun(t)
	us := col.Utilization(r.Makespan)
	var seized, iowait simtime.Duration
	for _, u := range us {
		seized += u.Seized
		iowait += u.IOWait
		if u.IOWait == 0 {
			t.Errorf("rank %d: aligned contended writes show no io-wait", u.Rank)
		}
	}
	// The collector's split must agree with the engine's accounting.
	if seized != r.SeizedTime[checkpoint.ReasonWrite] {
		t.Errorf("seized = %v, engine says %v", seized, r.SeizedTime[checkpoint.ReasonWrite])
	}
	if iowait != r.SeizedTime[checkpoint.ReasonIOWait] {
		t.Errorf("io-wait = %v, engine says %v", iowait, r.SeizedTime[checkpoint.ReasonIOWait])
	}
	// 4 aligned writers through a shared pipe: each write stalls ~3x its
	// nominal time, so io-wait must clearly dominate the nominal part.
	if iowait < 2*seized {
		t.Errorf("io-wait %v not clearly above nominal %v under 4-way contention",
			iowait, seized)
	}
}

func TestPrintSummaryShowsIOWait(t *testing.T) {
	col, r := contendedRun(t)
	var b strings.Builder
	col.PrintSummary(&b, r.Makespan)
	out := b.String()
	if !strings.Contains(out, "io-wait") {
		t.Errorf("summary omits io-wait:\n%s", out)
	}
	if !strings.Contains(out, "seized[io-wait]") {
		t.Errorf("summary omits seized[io-wait] line:\n%s", out)
	}
}

func TestGanttShowsIOWait(t *testing.T) {
	col, r := contendedRun(t)
	var b strings.Builder
	col.Gantt(&b, 120, r.Makespan, 0)
	out := b.String()
	if !strings.Contains(out, "w=io-wait") {
		t.Errorf("gantt legend omits io-wait:\n%s", out)
	}
	if !strings.Contains(out, "w") || !strings.ContainsRune(strings.SplitN(out, "\n", 2)[1], 'w') {
		t.Errorf("gantt rows show no io-wait cells:\n%s", out)
	}
}

func TestClassIOWait(t *testing.T) {
	if class("seize:io-wait") != "iowait" {
		t.Error("seize:io-wait not classed as iowait")
	}
	if class("seize:checkpoint") != "seized" {
		t.Error("seize:checkpoint not classed as seized")
	}
}
