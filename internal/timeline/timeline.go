// Package timeline collects the simulator's per-job trace events and turns
// them into utilization breakdowns and ASCII Gantt charts — the per-rank
// view of where time went: application work, protocol control traffic,
// checkpoint/recovery seizures, and idling.
package timeline

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// Collector accumulates trace events; pass Add as sim.Config.Trace.
type Collector struct {
	events []sim.TraceEvent
	ranks  int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add records one event (the sim.Config.Trace callback). Non-CPU records
// on the widened trace channel (grants, message events, phase markers) are
// ignored: the timeline view is built from CPU occupancies only.
func (c *Collector) Add(ev sim.TraceEvent) {
	if ev.Type != sim.TraceCPU {
		return
	}
	c.events = append(c.events, ev)
	if ev.Rank+1 > c.ranks {
		c.ranks = ev.Rank + 1
	}
}

// Events returns the recorded events in completion order.
func (c *Collector) Events() []sim.TraceEvent { return c.events }

// Ranks returns the number of ranks observed.
func (c *Collector) Ranks() int { return c.ranks }

// class buckets an event kind for reporting.
func class(kind string) string {
	switch {
	case kind == "calc" || kind == "send" || kind == "recv":
		return "app"
	case kind == "ctl":
		return "ctl"
	case kind == "seize:io-wait":
		// The contention-induced excess of a shared-storage write
		// (checkpoint.ReasonIOWait) — kept apart from productive seizure
		// time so storage pressure is visible per rank.
		return "iowait"
	case strings.HasPrefix(kind, "seize:"):
		return "seized"
	}
	return "other"
}

// Utilization is one rank's time breakdown over [0, makespan].
type Utilization struct {
	Rank   int
	App    simtime.Duration
	Ctl    simtime.Duration
	Seized simtime.Duration
	// IOWait is the rank's time stalled on contended shared storage (the
	// "seize:io-wait" component of checkpoint writes).
	IOWait simtime.Duration
	Idle   simtime.Duration
}

// AppFraction returns the useful-work fraction of the rank's time.
func (u Utilization) AppFraction(makespan simtime.Time) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(u.App) / float64(makespan)
}

// Utilization computes per-rank breakdowns against the given makespan.
func (c *Collector) Utilization(makespan simtime.Time) []Utilization {
	out := make([]Utilization, c.ranks)
	for i := range out {
		out[i].Rank = i
	}
	for _, ev := range c.events {
		d := ev.End.Sub(ev.Start)
		u := &out[ev.Rank]
		switch class(ev.Kind) {
		case "app":
			u.App += d
		case "ctl":
			u.Ctl += d
		case "seized":
			u.Seized += d
		case "iowait":
			u.IOWait += d
		}
	}
	for i := range out {
		occupied := out[i].App + out[i].Ctl + out[i].Seized + out[i].IOWait
		idle := simtime.Duration(makespan) - occupied
		if idle < 0 {
			idle = 0
		}
		out[i].Idle = idle
	}
	return out
}

// SeizedByReason aggregates seized time per reason across all ranks.
func (c *Collector) SeizedByReason() map[string]simtime.Duration {
	out := make(map[string]simtime.Duration)
	for _, ev := range c.events {
		if strings.HasPrefix(ev.Kind, "seize:") {
			out[strings.TrimPrefix(ev.Kind, "seize:")] += ev.End.Sub(ev.Start)
		}
	}
	return out
}

// PrintSummary writes the machine-level utilization table.
func (c *Collector) PrintSummary(w io.Writer, makespan simtime.Time) {
	us := c.Utilization(makespan)
	var app, ctl, seized, iowait, idle simtime.Duration
	worst, best := 1.0, 0.0
	for _, u := range us {
		app += u.App
		ctl += u.Ctl
		seized += u.Seized
		iowait += u.IOWait
		idle += u.Idle
		f := u.AppFraction(makespan)
		if f < worst {
			worst = f
		}
		if f > best {
			best = f
		}
	}
	total := float64(app + ctl + seized + iowait + idle)
	if total == 0 {
		fmt.Fprintln(w, "timeline: no events")
		return
	}
	pct := func(d simtime.Duration) float64 { return 100 * float64(d) / total }
	if iowait > 0 {
		fmt.Fprintf(w, "utilization: app %.1f%%, control %.1f%%, seized %.1f%%, io-wait %.1f%%, idle %.1f%%\n",
			pct(app), pct(ctl), pct(seized), pct(iowait), pct(idle))
	} else {
		fmt.Fprintf(w, "utilization: app %.1f%%, control %.1f%%, seized %.1f%%, idle %.1f%%\n",
			pct(app), pct(ctl), pct(seized), pct(idle))
	}
	if len(us) > 1 {
		fmt.Fprintf(w, "per-rank app fraction: min %.1f%%, max %.1f%%\n", worst*100, best*100)
	}
	reasons := c.SeizedByReason()
	keys := make([]string, 0, len(reasons))
	for k := range reasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "seized[%s]: %v total\n", k, reasons[k])
	}
}

// Gantt renders an ASCII chart: one row per rank, time left to right.
// Symbols: '#' application, 'c' control, 'X' seized, '.' idle. Events are
// painted in completion order; within one rank they never overlap. Rows are
// capped at maxRanks (0 = all).
func (c *Collector) Gantt(w io.Writer, width int, makespan simtime.Time, maxRanks int) {
	if width < 10 {
		width = 10
	}
	rows := c.ranks
	if maxRanks > 0 && rows > maxRanks {
		rows = maxRanks
	}
	if rows == 0 || makespan <= 0 {
		fmt.Fprintln(w, "gantt: no events")
		return
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	for _, ev := range c.events {
		if ev.Rank >= rows {
			continue
		}
		var sym byte
		switch class(ev.Kind) {
		case "app":
			sym = '#'
		case "ctl":
			sym = 'c'
		case "seized":
			sym = 'X'
		case "iowait":
			sym = 'w'
		default:
			sym = '?'
		}
		lo := int(int64(ev.Start) * int64(width) / int64(makespan))
		hi := int(int64(ev.End) * int64(width) / int64(makespan))
		if hi >= width {
			hi = width - 1
		}
		for x := lo; x <= hi; x++ {
			grid[ev.Rank][x] = sym
		}
	}
	fmt.Fprintf(w, "gantt: 0 .. %v  (#=app c=ctl X=seized w=io-wait .=idle)\n", simtime.Duration(makespan))
	for i, row := range grid {
		fmt.Fprintf(w, "r%-3d |%s|\n", i, row)
	}
	if rows < c.ranks {
		fmt.Fprintf(w, "(%d more ranks not shown)\n", c.ranks-rows)
	}
}
