package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E12Partner compares where checkpoints are committed: a local/parallel-
// filesystem write (modeled as an exclusive CPU seizure whose duration is
// image-size divided by the filesystem bandwidth share) against diskless
// partner checkpointing, where the image travels over the interconnect to a
// buddy node and contends with application traffic. The sweep varies the
// checkpoint image size. One sweep point = one workload across all sizes.
func E12Partner(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	iters := pick(o, 60, 25)
	const interval = 10 * simtime.Millisecond
	// Per-rank filesystem bandwidth share for the local-write model: a
	// 1 GB/s burst-buffer-class share of the PFS.
	const fsBytesPerSec = 1 << 30
	sizes := pick(o,
		[]int64{256 * 1024, 1 << 20, 4 << 20},
		[]int64{256 * 1024, 1 << 20})
	workloads := pick(o, []string{"stencil2d", "transpose"}, []string{"stencil2d"})

	t := report.NewTable("E12: local-write vs partner (diskless) checkpointing, τ=10ms",
		"workload", "image", "protocol", "overhead%", "writes", "net-MB-shipped")
	err := sweep(t, o, "E12", workloads, func(i int, w string) (rows, error) {
		sd := pointSeed(o, "E12", i)
		base, err := buildProg(w, ranks, iters, ms(1), 4096, sd)
		if err != nil {
			return nil, err
		}
		rBase, err := simulate(o, net, base, sd, 0)
		if err != nil {
			return nil, err
		}
		var rs rows
		for _, size := range sizes {
			writeDur := simtime.FromSeconds(float64(size) / fsBytesPerSec)

			// Local write: exclusive seizure sized by PFS bandwidth.
			up, err := checkpoint.NewUncoordinated(
				checkpoint.Params{Interval: interval, Write: writeDur},
				checkpoint.Staggered, checkpoint.LogParams{})
			if err != nil {
				return nil, err
			}
			// Same spec and seed as base: reuse the immutable program.
			r, err := simulate(o, net, base, sd, 0, sim.Agent(up))
			if err != nil {
				return nil, err
			}
			rs.add(w, size, "local-write", overheadPct(r, rBase), up.Stats().Writes, 0.0)

			// Partner: short serialize seizure + real network transfer.
			pt, err := checkpoint.NewPartner(checkpoint.PartnerParams{
				Interval:      interval,
				SerializeTime: writeDur / 10, // memcpy is ~10x the PFS rate
				CkptBytes:     size,
				Offsets:       checkpoint.Staggered,
			})
			if err != nil {
				return nil, err
			}
			r2, err := simulate(o, net, base, sd, 0, sim.Agent(pt))
			if err != nil {
				return nil, err
			}
			shipped, _ := pt.Shipped()
			rs.add(w, size, "partner", overheadPct(r2, rBase), pt.Stats().Writes,
				float64(shipped)/(1<<20))
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("local write = image/1GBps exclusive seizure; partner = image/10 serialize + interconnect transfer")
	return []*report.Table{t}, nil
}
