package exp

import (
	"testing"

	"checkpointsim/internal/simtime"
)

// TestE17ContentionCrossover pins the shape the contention map exists to
// show: with unlimited storage the coordinated and staggered-uncoordinated
// protocols differ only by the (small) intrinsic coordination cost, while at
// finite aggregate bandwidth the coordinated protocol's simultaneous writes
// split the pipe P ways and its overhead pulls far above the staggered
// schedule at the largest scale.
func TestE17ContentionCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick E17 grid")
	}
	o := DefaultOptions()
	o.Quick = true
	groups, err := e17Grid(o)
	if err != nil {
		t.Fatal(err)
	}

	cells := make(map[[2]interface{}]map[string]e17Cell)
	maxP, minAgg := 0, 0.0
	for _, g := range groups {
		for _, c := range g {
			key := [2]interface{}{c.P, c.Agg}
			if cells[key] == nil {
				cells[key] = make(map[string]e17Cell)
			}
			cells[key][c.Protocol] = c
			if c.P > maxP {
				maxP = c.P
			}
			if c.Agg > 0 && (minAgg == 0 || c.Agg < minAgg) {
				minAgg = c.Agg
			}
		}
	}
	if maxP == 0 || minAgg == 0 {
		t.Fatalf("grid missing scales or finite bandwidths: %v", cells)
	}
	unlimited := cells[[2]interface{}{maxP, 0.0}]
	finite := cells[[2]interface{}{maxP, minAgg}]
	if unlimited == nil || finite == nil {
		t.Fatalf("grid missing the largest-P cells (P=%d)", maxP)
	}

	coordU, stagU := unlimited["coordinated"], unlimited["uncoord-staggered"]
	coordF, stagF := finite["coordinated"], finite["uncoord-staggered"]

	// The crossover proper: staggered strictly below coordinated at the
	// largest P once aggregate bandwidth is finite.
	if stagF.Overhead >= coordF.Overhead {
		t.Errorf("P=%d agg=%.0g: staggered overhead %.2f%% not strictly below coordinated %.2f%%",
			maxP, minAgg, stagF.Overhead, coordF.Overhead)
	}

	// Under the Unlimited store the gap is the intrinsic coordination cost
	// only — small in absolute terms and small next to the contention-driven
	// gap at finite bandwidth.
	gapU := coordU.Overhead - stagU.Overhead
	if gapU < 0 {
		gapU = -gapU
	}
	gapF := coordF.Overhead - stagF.Overhead
	if gapU > 10 {
		t.Errorf("unlimited-store gap %.2f points at P=%d — protocols not within noise", gapU, maxP)
	}
	if gapF < 3*gapU {
		t.Errorf("finite-bandwidth gap %.2f points not clearly above the unlimited gap %.2f — contention does not dominate",
			gapF, gapU)
	}

	// The attribution must be visible in the io-wait accounting: coordinated
	// writers stall hard under contention, staggered writers barely at all.
	if coordF.IOWait < 10*simtime.Millisecond {
		t.Errorf("coordinated io-wait %v at P=%d agg=%.0g — no contention signal", coordF.IOWait, maxP, minAgg)
	}
	if stagF.IOWait >= coordF.IOWait/10 {
		t.Errorf("staggered io-wait %v not well below coordinated %v", stagF.IOWait, coordF.IOWait)
	}
	if coordU.IOWait > simtime.Microsecond {
		t.Errorf("unlimited store accumulated io-wait %v on the coordinated run", coordU.IOWait)
	}
}
