package exp

import (
	"testing"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// rotatedRing builds a symmetric P-rank ring under the rank relabeling
// σ(l) = (l+shift) mod P: logical rank l runs on physical rank σ(l) and
// talks to σ(l±1). Every relabeling describes the same computation, so
// observables must not depend on which physical rank hosts which role.
func rotatedRing(t *testing.T, ranks, iters, shift int, bytes int64, compute simtime.Duration) *goal.Program {
	t.Helper()
	b := goal.NewBuilder(ranks)
	seqs := make([]*goal.Sequencer, ranks)
	for i := range seqs {
		seqs[i] = b.Seq(i)
	}
	sigma := func(l int) int { return (l + shift) % ranks }
	for it := 0; it < iters; it++ {
		for l := 0; l < ranks; l++ {
			s := seqs[sigma(l)]
			s.Calc(compute)
			s.Join(
				s.Fork(goal.KindSend, int32(sigma((l+1)%ranks)), 7, bytes),
				s.Fork(goal.KindRecv, int32(sigma((l-1+ranks)%ranks)), 7, bytes),
			)
		}
	}
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// Relabeling the ranks of a symmetric workload must not move the
// makespan: scheduling, matching, and protocol timers may only depend on
// the communication structure, never on rank identity. Checked for the
// bare application and under an aligned uncoordinated protocol (whose
// per-rank timers are relabeling-symmetric), for both wire protocols.
func TestMakespanRankRelabelInvariance(t *testing.T) {
	o := DefaultOptions()
	o.Validate = true
	const ranks, iters = 6, 12
	for _, tc := range []struct {
		name  string
		bytes int64
	}{
		{"eager", 4 * 1024},
		{"rendezvous", 128 * 1024},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(shift int, withProto bool) simtime.Time {
				prog := rotatedRing(t, ranks, iters, shift, tc.bytes, 50*simtime.Microsecond)
				var agents []sim.Agent
				if withProto {
					cp, err := checkpoint.NewUncoordinated(checkpoint.Params{
						Interval: 300 * simtime.Microsecond,
						Write:    100 * simtime.Microsecond,
					}, checkpoint.Aligned, checkpoint.LogParams{Alpha: 500, BetaNsPerByte: 0.01})
					if err != nil {
						t.Fatal(err)
					}
					agents = append(agents, cp)
				}
				r, err := simulate(o, o.net(), prog, 1, 0, agents...)
				if err != nil {
					t.Fatal(err)
				}
				return r.Makespan
			}
			for _, withProto := range []bool{false, true} {
				base := run(0, withProto)
				if base == 0 {
					t.Fatal("degenerate scenario: zero makespan")
				}
				for _, shift := range []int{1, 4} {
					if got := run(shift, withProto); got != base {
						t.Errorf("protocol=%v shift=%d: makespan %v != unshifted %v",
							withProto, shift, got, base)
					}
				}
			}
		})
	}
}

// Lengthening the checkpoint write can only delay work: with everything
// else fixed, the makespan under a coordinated protocol must be
// non-decreasing in the write duration δ, and strictly larger than the
// protocol-free baseline once δ > 0.
func TestOverheadMonotonicInWriteDuration(t *testing.T) {
	o := DefaultOptions()
	o.Validate = true
	prog, err := buildProg("stencil2d", 8, 30, ms(1), 4096, o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	base, err := simulate(o, o.net(), prog, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	writes := []simtime.Duration{
		100 * simtime.Microsecond,
		500 * simtime.Microsecond,
		1 * simtime.Millisecond,
		2 * simtime.Millisecond,
		4 * simtime.Millisecond,
	}
	prev := base.Makespan
	for _, w := range writes {
		cp, err := checkpoint.NewCoordinated(checkpoint.Params{
			Interval: 5 * simtime.Millisecond, Write: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := buildProg("stencil2d", 8, 30, ms(1), 4096, o.Seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := simulate(o, o.net(), prog, 1, 0, cp)
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan < prev {
			t.Errorf("write=%v: makespan %v below previous point %v — overhead not monotone",
				w, r.Makespan, prev)
		}
		if r.Makespan <= base.Makespan {
			t.Errorf("write=%v: makespan %v not above protocol-free baseline %v",
				w, r.Makespan, base.Makespan)
		}
		prev = r.Makespan
	}
}
