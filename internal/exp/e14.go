package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E14Fabric measures how a finite bisection bandwidth changes the
// checkpointing picture: partner checkpointing ships images through the
// same fabric the application uses, so its advantage over local writes
// (E12) erodes as the fabric tightens — and the application itself slows
// even without checkpointing. One sweep point = one bisection bandwidth.
func E14Fabric(o Options) ([]*report.Table, error) {
	ranks := pick(o, 64, 16)
	iters := pick(o, 40, 15)
	const (
		interval = 10 * simtime.Millisecond
		image    = int64(1 << 20)
	)
	// Per-rank 1 GB/s filesystem share for the local-write comparator.
	writeDur := simtime.FromSeconds(float64(image) / (1 << 30))
	bisections := pick(o,
		[]float64{0, 400e9, 100e9, 25e9},
		[]float64{0, 100e9})

	t := report.NewTable("E14: partner checkpointing under fabric contention (transpose, 1MiB images)",
		"bisection-GB/s", "baseline-makespan", "protocol", "overhead%", "fabric-busy")
	err := sweep(t, o, "E14", bisections, func(i int, bis float64) (rows, error) {
		sd := pointSeed(o, "E14", i)
		net := o.net()
		net.BisectionBytesPerSec = bis
		label := "inf"
		if bis > 0 {
			label = report.Cell(bis / 1e9)
		}

		base, err := buildProg("transpose", ranks, iters, ms(1), 32*1024, sd)
		if err != nil {
			return nil, err
		}
		rBase, err := simulate(o, net, base, sd, 0)
		if err != nil {
			return nil, err
		}
		var rs rows

		// Local writes: no extra fabric traffic.
		up, err := checkpoint.NewUncoordinated(
			checkpoint.Params{Interval: interval, Write: writeDur},
			checkpoint.Staggered, checkpoint.LogParams{})
		if err != nil {
			return nil, err
		}
		// Same spec and seed as base: reuse the immutable program.
		r, err := simulate(o, net, base, sd, 0, sim.Agent(up))
		if err != nil {
			return nil, err
		}
		rs.add(label, simtime.Duration(rBase.Makespan).String(), "local-write",
			overheadPct(r, rBase), r.Metrics.FabricBusy.String())

		// Partner: images compete for the bisection.
		pt, err := checkpoint.NewPartner(checkpoint.PartnerParams{
			Interval:      interval,
			SerializeTime: writeDur / 10,
			CkptBytes:     image,
			Offsets:       checkpoint.Staggered,
		})
		if err != nil {
			return nil, err
		}
		r2, err := simulate(o, net, base, sd, 0, sim.Agent(pt))
		if err != nil {
			return nil, err
		}
		rs.add(label, simtime.Duration(rBase.Makespan).String(), "partner",
			overheadPct(r2, rBase), r2.Metrics.FabricBusy.String())
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("overheads are relative to the baseline at the same bisection; the baseline column shows the app slowing by itself")
	return []*report.Table{t}, nil
}
