package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E14Fabric measures how a finite bisection bandwidth changes the
// checkpointing picture: partner checkpointing ships images through the
// same fabric the application uses, so its advantage over local writes
// (E12) erodes as the fabric tightens — and the application itself slows
// even without checkpointing.
func E14Fabric(o Options) ([]*report.Table, error) {
	ranks := pick(o, 64, 16)
	iters := pick(o, 40, 15)
	const (
		interval = 10 * simtime.Millisecond
		image    = int64(1 << 20)
	)
	// Per-rank 1 GB/s filesystem share for the local-write comparator.
	writeDur := simtime.FromSeconds(float64(image) / (1 << 30))
	bisections := pick(o,
		[]float64{0, 400e9, 100e9, 25e9},
		[]float64{0, 100e9})

	t := report.NewTable("E14: partner checkpointing under fabric contention (transpose, 1MiB images)",
		"bisection-GB/s", "baseline-makespan", "protocol", "overhead%", "fabric-busy")
	for _, bis := range bisections {
		net := o.net()
		net.BisectionBytesPerSec = bis
		label := "inf"
		if bis > 0 {
			label = report.Cell(bis / 1e9)
		}

		base, err := buildProg("transpose", ranks, iters, ms(1), 32*1024, o.Seed)
		if err != nil {
			return nil, errf("E14", err)
		}
		rBase, err := simulate(net, base, o.Seed, 0)
		if err != nil {
			return nil, errf("E14", err)
		}

		// Local writes: no extra fabric traffic.
		up, err := checkpoint.NewUncoordinated(
			checkpoint.Params{Interval: interval, Write: writeDur},
			checkpoint.Staggered, checkpoint.LogParams{})
		if err != nil {
			return nil, errf("E14", err)
		}
		prog, err := buildProg("transpose", ranks, iters, ms(1), 32*1024, o.Seed)
		if err != nil {
			return nil, errf("E14", err)
		}
		r, err := simulate(net, prog, o.Seed, 0, sim.Agent(up))
		if err != nil {
			return nil, errf("E14", err)
		}
		t.AddRow(label, simtime.Duration(rBase.Makespan).String(), "local-write",
			overheadPct(r, rBase), r.Metrics.FabricBusy.String())

		// Partner: images compete for the bisection.
		pt, err := checkpoint.NewPartner(checkpoint.PartnerParams{
			Interval:      interval,
			SerializeTime: writeDur / 10,
			CkptBytes:     image,
			Offsets:       checkpoint.Staggered,
		})
		if err != nil {
			return nil, errf("E14", err)
		}
		prog2, err := buildProg("transpose", ranks, iters, ms(1), 32*1024, o.Seed)
		if err != nil {
			return nil, errf("E14", err)
		}
		r2, err := simulate(net, prog2, o.Seed, 0, sim.Agent(pt))
		if err != nil {
			return nil, errf("E14", err)
		}
		t.AddRow(label, simtime.Duration(rBase.Makespan).String(), "partner",
			overheadPct(r2, rBase), r2.Metrics.FabricBusy.String())
	}
	t.AddNote("overheads are relative to the baseline at the same bisection; the baseline column shows the app slowing by itself")
	return []*report.Table{t}, nil
}
