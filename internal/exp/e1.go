package exp

import (
	"checkpointsim/internal/collective"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/model"
	"checkpointsim/internal/report"
	"checkpointsim/internal/simtime"
)

// E1Validation compares simulated communication times against LogGOPS
// closed forms. Point-to-point costs must match exactly (the simulator
// implements the model); collectives are compared against the tree-depth
// lower bound, where the ratio exposes endpoint serialization (a root
// pushing log P messages through one NIC).
func E1Validation(o Options) ([]*report.Table, error) {
	net := o.net()

	// --- point-to-point: one-way message time across sizes ---
	pt := report.NewTable("E1a: point-to-point one-way time, simulated vs model",
		"bytes", "protocol", "sim", "model", "err%")
	sizes := pick(o, []int64{8, 512, 4096, 32 * 1024, 256 * 1024, 1 << 20},
		[]int64{8, 4096, 256 * 1024})
	err := sweep(pt, o, "E1a", sizes, func(i int, s int64) (rows, error) {
		b := goal.NewBuilder(2)
		b.Send(0, 1, 0, s)
		b.Recv(1, 0, 0, s)
		prog, err := b.Build()
		if err != nil {
			return nil, err
		}
		r, err := simulate(o, net, prog, pointSeed(o, "E1a", i), 0)
		if err != nil {
			return nil, err
		}
		var want simtime.Duration
		proto := "eager"
		if net.Eager(s) {
			want = net.SendCPU(s) + net.Wire(s) + net.RecvCPU(s)
		} else {
			proto = "rndzv"
			want = net.Overhead + net.Wire(0) + // RTS
				net.Overhead + net.Wire(0) + // CTS
				net.SendCPU(s) + net.Wire(s) + net.RecvCPU(s)
		}
		sim := simtime.Duration(r.Makespan)
		errPct := 100 * (float64(sim) - float64(want)) / float64(want)
		var rs rows
		rs.add(s, proto, sim.String(), want.String(), errPct)
		return rs, nil
	})
	if err != nil {
		return nil, err
	}

	// --- collectives vs tree-depth lower bound ---
	ct := report.NewTable("E1b: collective completion time vs depth lower bound",
		"collective", "P", "sim", "depth-LB", "ratio")
	scales := pick(o, []int{4, 16, 64, 256, 1024}, []int{4, 16, 64})
	const cb = 8
	hop := net.SendCPU(cb) + net.Wire(cb) + net.RecvCPU(cb)
	err = sweep(ct, o, "E1b", scales, func(i, p int) (rows, error) {
		type mk struct {
			name  string
			build func(b *goal.Builder)
			// lower-bound hops for completion at all ranks
			hops func(p int) int
		}
		makers := []mk{
			{"bcast", func(b *goal.Builder) { collective.Bcast(b, 0, nil, 0, cb) },
				func(p int) int { return model.TreeDepth(p) }},
			{"barrier", func(b *goal.Builder) { collective.Barrier(b, nil, 0) },
				func(p int) int { return model.TreeDepth(p) }},
			{"allreduce", func(b *goal.Builder) { collective.Allreduce(b, nil, 0, cb) },
				func(p int) int { return model.TreeDepth(p) }},
		}
		var rs rows
		for _, m := range makers {
			b := goal.NewBuilder(p)
			m.build(b)
			if p == 1 {
				continue
			}
			prog, err := b.Build()
			if err != nil {
				return nil, err
			}
			r, err := simulate(o, net, prog, pointSeed(o, "E1b", i), 0)
			if err != nil {
				return nil, err
			}
			lb := simtime.Duration(m.hops(p)) * hop
			ratio := float64(r.Makespan) / float64(lb)
			rs.add(m.name, p, simtime.Duration(r.Makespan).String(), lb.String(), ratio)
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	ct.AddNote("ratio > 1 reflects endpoint serialization (o, g) the depth bound ignores")
	return []*report.Table{pt, ct}, nil
}
