package exp

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"checkpointsim/internal/cache"
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/failure"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/noise"
	"checkpointsim/internal/report"
	"checkpointsim/internal/rng"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/storage"
	"checkpointsim/internal/validate"
	"checkpointsim/internal/workload"
)

// The campaign turns the fixed experiment set into an unbounded scenario
// space: a seeded schedule draws points from the cross product
// workload × scale × protocol × failure law × storage tier × noise, and
// every point runs through the full protocol/storage/validator stack.
// cmd/campaign drives schedules for soak testing; internal/service answers
// single scenarios so campaign results can be checked byte-for-byte
// against sweepd's cache.

// Campaign axis values. Every name is stable — it appears in cache keys.
var (
	// CampaignProtocols are the accepted protocol axis values.
	CampaignProtocols = []string{"none", "coordinated", "uncoord-aligned",
		"uncoord-staggered", "uncoord-random", "hierarchical", "nonblocking",
		"partner", "twolevel", "replication", "cic"}
	// CampaignFailureLaws are the accepted failure-law axis values.
	CampaignFailureLaws = []string{"none", "exp", "weibull"}
	// CampaignStorageTiers are the accepted storage-tier axis values.
	CampaignStorageTiers = []string{"none", "pfs", "burst"}
	// CampaignNoiseLevels are the accepted noise axis values.
	CampaignNoiseLevels = []string{"none", "periodic", "poisson"}
)

// CampaignSpace is the scenario space a campaign samples: one value per
// axis is drawn for each point. The zero value is invalid; start from
// DefaultCampaignSpace.
type CampaignSpace struct {
	// Workloads are generator names (workload.Names()).
	Workloads []string
	// Scales are rank counts.
	Scales []int
	// Protocols, FailureLaws, StorageTiers, NoiseLevels draw from the
	// Campaign* axis lists above.
	Protocols    []string
	FailureLaws  []string
	StorageTiers []string
	NoiseLevels  []string
}

// DefaultCampaignSpace covers every axis value at small scales: the full
// protocol suite, both failure laws, both storage tiers, and both noise
// shapes over six workload skeletons.
func DefaultCampaignSpace() CampaignSpace {
	return CampaignSpace{
		Workloads:    []string{"stencil2d", "stencil3d", "sweep", "cg", "transpose", "farm"},
		Scales:       []int{8, 16, 32},
		Protocols:    CampaignProtocols,
		FailureLaws:  CampaignFailureLaws,
		StorageTiers: CampaignStorageTiers,
		NoiseLevels:  CampaignNoiseLevels,
	}
}

// contains reports whether list has v.
func contains(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

// Validate rejects empty and contradictory axes. A space where every
// point would be discarded (failures with no protocol to recover through)
// is a configuration error, not an empty schedule.
func (s CampaignSpace) Validate() error {
	if len(s.Workloads) == 0 {
		return fmt.Errorf("campaign: empty workload axis")
	}
	for _, w := range s.Workloads {
		if workload.Describe(w) == "" {
			return fmt.Errorf("campaign: unknown workload %q (want one of %s)",
				w, strings.Join(workload.Names(), ", "))
		}
	}
	if len(s.Scales) == 0 {
		return fmt.Errorf("campaign: empty scale axis")
	}
	for _, p := range s.Scales {
		if p < 2 || p > scenarioMaxScale {
			return fmt.Errorf("campaign: bad scale %d (want 2..%d; larger machines would let aligned checkpoint writes outrun the fixed τ=%v)",
				p, scenarioMaxScale, scenarioTau)
		}
	}
	axes := []struct {
		name   string
		have   []string
		accept []string
	}{
		{"protocol", s.Protocols, CampaignProtocols},
		{"failure law", s.FailureLaws, CampaignFailureLaws},
		{"storage tier", s.StorageTiers, CampaignStorageTiers},
		{"noise", s.NoiseLevels, CampaignNoiseLevels},
	}
	for _, ax := range axes {
		if len(ax.have) == 0 {
			return fmt.Errorf("campaign: empty %s axis", ax.name)
		}
		for _, v := range ax.have {
			if !contains(ax.accept, v) {
				return fmt.Errorf("campaign: unknown %s %q (want one of %s)",
					ax.name, v, strings.Join(ax.accept, ", "))
			}
		}
	}
	failing := false
	for _, law := range s.FailureLaws {
		if law != "none" {
			failing = true
		}
	}
	protocols := false
	for _, p := range s.Protocols {
		if p != "none" {
			protocols = true
		}
	}
	if failing && !protocols {
		return fmt.Errorf("campaign: failure laws %v need a checkpoint protocol to recover through, but the protocol axis is only \"none\"", s.FailureLaws)
	}
	if contains(s.Protocols, "replication") {
		even := false
		for _, p := range s.Scales {
			if p%2 == 0 {
				even = true
			}
		}
		if !even {
			return fmt.Errorf("campaign: replication pairs each application rank with a replica and needs an even scale, but scales %v are all odd", s.Scales)
		}
	}
	return nil
}

// Scenario is one campaign point: an assignment of every axis plus the
// point's derived RNG seed. All simulation parameters (intervals, failure
// rates, noise shape) are pure functions of these fields, so a scenario
// fully determines its result.
type Scenario struct {
	Workload   string `json:"workload"`
	Ranks      int    `json:"ranks"`
	Protocol   string `json:"protocol"`
	FailureLaw string `json:"failure_law"`
	Storage    string `json:"storage"`
	Noise      string `json:"noise"`
	Seed       uint64 `json:"seed"`
}

// ID renders the scenario as a compact, stable spec string — what campaign
// logs print and what a user pastes back to reproduce one point.
func (sc Scenario) ID() string {
	return fmt.Sprintf("campaign:%s/p%d/%s/%s/%s/%s@%d", sc.Workload, sc.Ranks,
		sc.Protocol, sc.FailureLaw, sc.Storage, sc.Noise, sc.Seed)
}

// ParseScenario parses a spec string as printed by Scenario.ID, with or
// without the "campaign:" prefix:
//
//	workload/pN/protocol/failure-law/storage/noise@seed
//
// The parsed scenario is validated, so a spec that parses is runnable.
func ParseScenario(spec string) (Scenario, error) {
	body, seedStr, ok := strings.Cut(strings.TrimPrefix(strings.TrimSpace(spec), "campaign:"), "@")
	if !ok {
		return Scenario{}, fmt.Errorf("campaign: spec %q has no @seed suffix", spec)
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return Scenario{}, fmt.Errorf("campaign: bad seed in spec %q: %v", spec, err)
	}
	parts := strings.Split(body, "/")
	if len(parts) != 6 {
		return Scenario{}, fmt.Errorf("campaign: spec %q wants workload/pN/protocol/failure-law/storage/noise@seed", spec)
	}
	ranksStr, ok := strings.CutPrefix(parts[1], "p")
	if !ok {
		return Scenario{}, fmt.Errorf("campaign: spec %q: scale %q wants a p prefix (p16)", spec, parts[1])
	}
	ranks, err := strconv.Atoi(ranksStr)
	if err != nil {
		return Scenario{}, fmt.Errorf("campaign: bad scale in spec %q: %v", spec, err)
	}
	sc := Scenario{Workload: parts[0], Ranks: ranks, Protocol: parts[2],
		FailureLaw: parts[3], Storage: parts[4], Noise: parts[5], Seed: seed}
	return sc, sc.Validate()
}

// Validate checks a single scenario the way CampaignSpace.Validate checks
// axes — a scenario arriving over the service API is untrusted input.
func (sc Scenario) Validate() error {
	s := CampaignSpace{
		Workloads:    []string{sc.Workload},
		Scales:       []int{sc.Ranks},
		Protocols:    []string{sc.Protocol},
		FailureLaws:  []string{sc.FailureLaw},
		StorageTiers: []string{sc.Storage},
		NoiseLevels:  []string{sc.Noise},
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if sc.FailureLaw != "none" && sc.Protocol == "none" {
		return fmt.Errorf("campaign: scenario injects %s failures with no checkpoint protocol", sc.FailureLaw)
	}
	return nil
}

// campaignLabel namespaces campaign scheduling in the global seed-derivation
// tree ("camp" as ASCII bytes).
const campaignLabel uint64 = 0x63616d70

// Schedule derives the first n scenarios of the campaign keyed by seed.
// The schedule is a pure function of (space, seed, n): point i draws each
// axis from its own derived stream, so prefixes agree — Schedule(seed, 10)
// is the first ten points of Schedule(seed, 1000) — and any point can be
// re-derived in isolation from (seed, i). Combinations that inject
// failures with no protocol to recover through are rejection-resampled
// from the same stream.
func (s CampaignSpace) Schedule(seed uint64, n int) ([]Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("campaign: negative point count %d", n)
	}
	out := make([]Scenario, n)
	for i := range out {
		out[i] = s.point(seed, i)
	}
	return out, nil
}

// point derives scenario i of the schedule keyed by seed.
func (s CampaignSpace) point(seed uint64, i int) Scenario {
	r := rng.New(rng.Derive(seed, campaignLabel, uint64(i)))
	for {
		sc := Scenario{
			Workload:   s.Workloads[r.Intn(len(s.Workloads))],
			Ranks:      s.Scales[r.Intn(len(s.Scales))],
			Protocol:   s.Protocols[r.Intn(len(s.Protocols))],
			FailureLaw: s.FailureLaws[r.Intn(len(s.FailureLaws))],
			Storage:    s.StorageTiers[r.Intn(len(s.StorageTiers))],
			Noise:      s.NoiseLevels[r.Intn(len(s.NoiseLevels))],
		}
		if sc.FailureLaw != "none" && sc.Protocol == "none" {
			continue // Validate guarantees a recoverable combination exists
		}
		if sc.Protocol == "replication" && sc.Ranks%2 != 0 {
			continue // Validate guarantees an even scale exists
		}
		sc.Seed = r.Uint64()
		return sc
	}
}

// Fixed scenario simulation parameters. Scenarios vary along the sampled
// axes only; everything else is pinned so results stay comparable across a
// campaign and cheap enough for soak loops. Derived values (failure rates,
// storage bandwidths) are spelled out in scenarioConfig.
const (
	scenarioIters   = 30
	scenarioCompute = 200 * simtime.Microsecond
	scenarioJitter  = 0.1
	scenarioBytes   = int64(4096)
	// τ and δ are sized so checkpointing always outruns its own storage
	// contention: under fair-share arbitration, P simultaneous writers
	// (aligned uncoordinated at the largest scale) occupy P·δ of wall
	// clock per interval, so max(Scales)·δ must stay well below τ or
	// writes pile up without bound and the point can never finish.
	scenarioTau   = 2 * simtime.Millisecond
	scenarioDelta = 40 * simtime.Microsecond
	// scenarioMaxScale bounds the scale axis at τ/δ with margin for
	// restarts and noise (Validate enforces it).
	scenarioMaxScale = 40
	// scenarioMaxTime caps runaway points (failure-rich scenarios that
	// cannot outrun their failure rate); a capped run fails the point.
	scenarioMaxTime = simtime.Time(5 * simtime.Second)
)

// scenarioConfig materializes the scenario's protocol, storage, noise, and
// failure configuration. st is the run's store (nil for tier "none").
type scenarioConfig struct {
	store *storage.Store
	proto checkpoint.Protocol
	inj   *failure.Injector
	noise *noise.Injector
}

// build constructs the agents for one run of the scenario. Agents are
// single-simulation, so every run needs a fresh build.
func (sc Scenario) build() (*scenarioConfig, error) {
	var cfg scenarioConfig
	switch sc.Storage {
	case "none":
	case "pfs":
		// A deliberately tight parallel filesystem: the whole machine
		// shares 2 GB/s, so coordinated rounds contend hard.
		st, err := storage.New(storage.Params{AggregateBytesPerSec: 2e9})
		if err != nil {
			return nil, err
		}
		cfg.store = st
	case "burst":
		// Node-local burst buffers, four ranks per node, plus the same
		// shared PFS behind them for the global tier.
		st, err := storage.New(storage.Params{
			AggregateBytesPerSec: 2e9, NodeBytesPerSec: 4e9, RanksPerNode: 4})
		if err != nil {
			return nil, err
		}
		cfg.store = st
	default:
		return nil, fmt.Errorf("campaign: unknown storage tier %q", sc.Storage)
	}

	logp := checkpoint.LogParams{Alpha: 500 * simtime.Nanosecond, BetaNsPerByte: 0.05}
	params := checkpoint.Params{Interval: scenarioTau, Write: scenarioDelta, Store: cfg.store}
	var err error
	switch sc.Protocol {
	case "none":
		cfg.proto = checkpoint.None{}
	case "coordinated":
		cfg.proto, err = checkpoint.NewCoordinated(params)
	case "uncoord-aligned":
		cfg.proto, err = checkpoint.NewUncoordinated(params, checkpoint.Aligned, logp)
	case "uncoord-staggered":
		cfg.proto, err = checkpoint.NewUncoordinated(params, checkpoint.Staggered, logp)
	case "uncoord-random":
		cfg.proto, err = checkpoint.NewUncoordinated(params, checkpoint.Random, logp)
	case "hierarchical":
		cfg.proto, err = checkpoint.NewHierarchical(params, 4, logp)
	case "nonblocking":
		cfg.proto, err = checkpoint.NewNonBlockingCoordinated(checkpoint.NonBlockingParams{
			Params: params, Window: 4 * scenarioDelta, Slowdown: 1.05})
	case "partner":
		cfg.proto, err = checkpoint.NewPartner(checkpoint.PartnerParams{
			Interval: scenarioTau, SerializeTime: scenarioDelta,
			CkptBytes: 256 * 1024, Offsets: checkpoint.Staggered, Store: cfg.store})
	case "twolevel":
		cfg.proto, err = checkpoint.NewTwoLevel(checkpoint.TwoLevelParams{
			LocalInterval: scenarioTau / 3, LocalWrite: scenarioDelta / 10,
			GlobalInterval: scenarioTau, GlobalWrite: scenarioDelta,
			Store: cfg.store})
	case "replication":
		// Degree 1, heartbeats at τ/2 so detection latency stays well under
		// the failure interarrival time at every campaign scale.
		cfg.proto, err = checkpoint.NewReplication(checkpoint.ReplicationParams{
			HeartbeatPeriod: scenarioTau / 2})
	case "cic":
		cfg.proto, err = checkpoint.NewCIC(params, 1, checkpoint.Staggered)
	default:
		return nil, fmt.Errorf("campaign: unknown protocol %q", sc.Protocol)
	}
	if err != nil {
		return nil, err
	}

	if sc.FailureLaw != "none" {
		// Per-node MTBF scales with ranks so the system failure rate is
		// scale-invariant: θ_sys = 10ms against τ = 2ms keeps Young's
		// overhead moderate — failure-rich but always able to outrun.
		fcfg := failure.Config{
			MTBF:    simtime.Duration(sc.Ranks) * 10 * simtime.Millisecond,
			Restart: simtime.Millisecond,
			Kind:    scenarioRecovery(sc.Protocol),
		}
		if sc.FailureLaw == "weibull" {
			fcfg.Shape = 0.7 // infant mortality, as the study's failure logs show
		}
		if fcfg.Kind == failure.RecoverTwoLevel {
			fcfg.LocalCoverage = 0.8
			fcfg.LocalRestart = fcfg.Restart / 10
		}
		cfg.inj, err = failure.NewInjector(fcfg, cfg.proto)
		if err != nil {
			return nil, err
		}
	}

	switch sc.Noise {
	case "none":
	case "periodic":
		cfg.noise, err = noise.NewInjector(noise.Config{
			Period: simtime.Millisecond, Duration: 25 * simtime.Microsecond})
	case "poisson":
		cfg.noise, err = noise.NewInjector(noise.Config{
			Period: simtime.Millisecond, Duration: 25 * simtime.Microsecond, Poisson: true})
	default:
		return nil, fmt.Errorf("campaign: unknown noise level %q", sc.Noise)
	}
	if err != nil {
		return nil, err
	}
	return &cfg, nil
}

// scenarioRecovery maps a protocol to the recovery discipline its failures
// use: replay from logs where logging exists, cluster rollback for the
// hierarchical protocol, two-level dispatch for the two-level one, global
// rollback otherwise.
func scenarioRecovery(protocol string) failure.RecoveryKind {
	switch protocol {
	case "uncoord-aligned", "uncoord-staggered", "uncoord-random":
		return failure.ReplayLocal
	case "hierarchical":
		return failure.RollbackCluster
	case "twolevel":
		return failure.RecoverTwoLevel
	case "replication":
		return failure.TakeoverReplica
	}
	return failure.RollbackGlobal
}

// Run executes the scenario through the full stack — workload, protocol,
// storage, noise, failures — under the trace-conformance checker,
// unconditionally: campaign points are correctness probes, so unlike
// Options.Validate this is not optional. The returned table is one
// metric/value row set, deterministic for equal (scenario, options).
func (sc Scenario) Run(o Options) ([]*report.Table, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	net := o.net()
	// Replication dedicates half the machine to replicas: the application
	// runs on Ranks/2 ranks for twice the iterations (equal total work),
	// embedded in the full Ranks-wide machine.
	appRanks, appIters := sc.Ranks, scenarioIters
	if sc.Protocol == "replication" {
		appRanks, appIters = sc.Ranks/2, 2*scenarioIters
	}
	prog, err := workload.FromName(sc.Workload, workload.CommonConfig{
		Base: workload.Base{
			Ranks:      appRanks,
			Iterations: appIters,
			Compute:    scenarioCompute,
			Jitter:     scenarioJitter,
			Seed:       sc.Seed,
		},
		Bytes: scenarioBytes,
	})
	if err != nil {
		return nil, err
	}
	if appRanks != sc.Ranks {
		prog, err = goal.Widen(prog, sc.Ranks)
		if err != nil {
			return nil, err
		}
	}
	cfg, err := sc.build()
	if err != nil {
		return nil, err
	}
	agents := []sim.Agent{cfg.proto}
	if cfg.noise != nil {
		agents = append(agents, cfg.noise)
	}
	if cfg.inj != nil {
		agents = append(agents, cfg.inj)
	}
	scfg := sim.Config{
		Net: net, Program: prog, Agents: agents,
		Seed: sc.Seed, MaxTime: scenarioMaxTime,
	}
	var res *sim.Result
	switch {
	case o.ResumeFrom != nil:
		// Resume mode: restore the blob and execute only the remainder.
		// The conformance checker needs the trace from t=0, so the suffix
		// is not re-validated; determinism (proven by the crash–resume
		// harness in CI) transfers the uninterrupted run's verdict. The run
		// keeps snapshotting when configured, so a second interruption
		// resumes from even later.
		if o.SnapshotEvery > 0 && o.OnSnapshot != nil {
			scfg.SnapshotEvery, scfg.OnSnapshot = o.SnapshotEvery, o.OnSnapshot
			if o.Snapshots != nil {
				inner := scfg.OnSnapshot
				n := o.Snapshots
				scfg.OnSnapshot = func(s sim.Snapshot) { atomic.AddInt64(n, 1); inner(s) }
			}
		}
		eng, nerr := sim.New(scfg)
		if nerr != nil {
			return nil, fmt.Errorf("%s: %w", sc.ID(), nerr)
		}
		if rerr := eng.Restore(o.ResumeFrom); rerr != nil {
			return nil, fmt.Errorf("%s: resume: %w", sc.ID(), rerr)
		}
		res, err = eng.Run()
		if res != nil && o.Events != nil {
			atomic.AddInt64(o.Events, res.Events)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.ID(), err)
		}
	case o.SnapshotEvery > 0 && o.OnSnapshot != nil:
		// Streaming mode: persist snapshots, validate as usual, no replay.
		chk := validate.New(net)
		scfg.Trace = chk.Hook(nil)
		scfg.SnapshotEvery = o.SnapshotEvery
		n := o.Snapshots
		scfg.OnSnapshot = func(s sim.Snapshot) {
			if n != nil {
				atomic.AddInt64(n, 1)
			}
			o.OnSnapshot(s)
		}
		eng, nerr := sim.New(scfg)
		if nerr != nil {
			return nil, fmt.Errorf("%s: %w", sc.ID(), nerr)
		}
		res, err = eng.Run()
		if res != nil && o.Events != nil {
			atomic.AddInt64(o.Events, res.Events)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.ID(), err)
		}
		if verr := sc.check(chk, res, cfg); verr != nil {
			return nil, verr
		}
	case o.SnapshotEvery > 0:
		// Self-verifying mode: snapshot, validate, then replay the
		// remainder from every snapshot and require byte-identity.
		chk := validate.New(net)
		var full []sim.TraceEvent
		var snaps []sim.Snapshot
		inner := chk.Hook(nil)
		scfg.Trace = func(ev sim.TraceEvent) { full = append(full, ev); inner(ev) }
		scfg.SnapshotEvery = o.SnapshotEvery
		scfg.OnSnapshot = func(s sim.Snapshot) { snaps = append(snaps, s) }
		eng, nerr := sim.New(scfg)
		if nerr != nil {
			return nil, fmt.Errorf("%s: %w", sc.ID(), nerr)
		}
		res, err = eng.Run()
		if res != nil && o.Events != nil {
			atomic.AddInt64(o.Events, res.Events)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.ID(), err)
		}
		if verr := sc.check(chk, res, cfg); verr != nil {
			return nil, verr
		}
		if verr := verifyResume(scfg, snaps, full, res, nil, o.Snapshots); verr != nil {
			return nil, fmt.Errorf("%s: %w", sc.ID(), verr)
		}
	default:
		chk := validate.New(net)
		scfg.Trace = chk.Hook(nil)
		eng, nerr := sim.New(scfg)
		if nerr != nil {
			return nil, fmt.Errorf("%s: %w", sc.ID(), nerr)
		}
		res, err = eng.Run()
		if res != nil && o.Events != nil {
			atomic.AddInt64(o.Events, res.Events)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.ID(), err)
		}
		if verr := sc.check(chk, res, cfg); verr != nil {
			return nil, verr
		}
	}

	st := cfg.proto.Stats()
	t := report.NewTable("Campaign "+sc.ID(), "metric", "value")
	t.AddRow("makespan_ns", strconv.FormatInt(int64(res.Makespan), 10))
	t.AddRow("events", strconv.FormatInt(res.Events, 10))
	t.AddRow("app_messages", strconv.FormatInt(res.Metrics.AppMessages, 10))
	t.AddRow("ctl_messages", strconv.FormatInt(res.Metrics.CtlMessages, 10))
	t.AddRow("ckpt_writes", strconv.FormatInt(st.Writes, 10))
	t.AddRow("ckpt_rounds", strconv.FormatInt(st.Rounds, 10))
	t.AddRow("ckpt_forced", strconv.FormatInt(st.Forced, 10))
	t.AddRow("logged_messages", strconv.FormatInt(st.LoggedMessages, 10))
	t.AddRow("mirrored_messages", strconv.FormatInt(st.MirroredMessages, 10))
	t.AddRow("heartbeats", strconv.FormatInt(st.Heartbeats, 10))
	t.AddRow("takeovers", strconv.FormatInt(st.Takeovers, 10))
	if cfg.store != nil {
		ss := cfg.store.Stats()
		t.AddRow("storage_writes", strconv.FormatInt(ss.Writes, 10))
		t.AddRow("storage_bytes", strconv.FormatInt(ss.Bytes, 10))
	}
	failures := 0
	if cfg.inj != nil {
		failures = len(cfg.inj.Events())
	}
	t.AddRow("failures", strconv.Itoa(failures))
	t.AddRow("validate", "ok")
	return []*report.Table{t}, nil
}

// check runs the full post-run conformance sweep for one completed
// scenario simulation.
func (sc Scenario) check(chk *validate.Checker, res *sim.Result, cfg *scenarioConfig) error {
	if verr := chk.Finish(res); verr != nil {
		return fmt.Errorf("%s: %w", sc.ID(), verr)
	}
	if cfg.store != nil {
		if verr := chk.CheckStorage(cfg.store.Stats()); verr != nil {
			return fmt.Errorf("%s: %w", sc.ID(), verr)
		}
	}
	if tl, ok := cfg.proto.(validate.TaxedLogger); ok {
		if verr := chk.CheckLogging(tl); verr != nil {
			return fmt.Errorf("%s: %w", sc.ID(), verr)
		}
	}
	if rm, ok := cfg.proto.(validate.ReplicaMirror); ok {
		if verr := chk.CheckReplication(rm); verr != nil {
			return fmt.Errorf("%s: %w", sc.ID(), verr)
		}
	}
	if ci, ok := cfg.proto.(validate.CICIntrospect); ok {
		if verr := chk.CheckCIC(ci); verr != nil {
			return fmt.Errorf("%s: %w", sc.ID(), verr)
		}
	}
	return nil
}

// CacheFields renders everything that determines the scenario's tables —
// the axis assignment, the seed, and the resolved network parameters —
// for content addressing, with the same exactness contract as
// Options.CacheFields. Validation is always on for scenarios, and Jobs/
// Events/Ctx never change completed results, so none of them appear.
func (sc Scenario) CacheFields(net network.Params) []cache.Field {
	if (net == network.Params{}) {
		net = network.DefaultParams()
	}
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return []cache.Field{
		cache.F("scenario.workload", sc.Workload),
		cache.F("scenario.ranks", strconv.Itoa(sc.Ranks)),
		cache.F("scenario.protocol", sc.Protocol),
		cache.F("scenario.failure_law", sc.FailureLaw),
		cache.F("scenario.storage", sc.Storage),
		cache.F("scenario.noise", sc.Noise),
		cache.F("scenario.seed", strconv.FormatUint(sc.Seed, 10)),
		cache.F("net.latency", strconv.FormatInt(int64(net.Latency), 10)),
		cache.F("net.overhead", strconv.FormatInt(int64(net.Overhead), 10)),
		cache.F("net.gap", strconv.FormatInt(int64(net.Gap), 10)),
		cache.F("net.gap_per_byte", f64(net.GapPerByte)),
		cache.F("net.overhead_per_byte", f64(net.OverheadPerByte)),
		cache.F("net.rendezvous", strconv.FormatInt(net.RendezvousThreshold, 10)),
		cache.F("net.bisection_bps", f64(net.BisectionBytesPerSec)),
	}
}
