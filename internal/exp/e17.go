package exp

import (
	"strconv"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/runner"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/storage"
)

// e17Cell is one measured grid cell of the contention map; e17Grid returns
// these structured (rather than only rendered rows) so the acceptance test
// can assert the crossover shape directly.
type e17Cell struct {
	P        int
	Agg      float64 // aggregate PFS bandwidth (bytes/s); <=0 = unlimited
	Protocol string
	Overhead float64
	IOWait   simtime.Duration
	Writes   int64
}

// e17Label renders an aggregate bandwidth for the table.
func e17Label(agg float64) string {
	if agg <= 0 {
		return "inf"
	}
	return strconv.FormatFloat(agg/1e9, 'g', -1, 64)
}

// e17Grid sweeps the (P × aggregate-bandwidth) grid. Every cell runs the
// coordinated protocol and the staggered/random uncoordinated variants
// through a fresh shared store (stores arbitrate within one engine, so each
// simulation gets its own). The workload is EP: with no communication
// coupling, the only thing separating the protocols is how their write
// schedules collide inside the storage system.
func e17Grid(o Options) ([][]e17Cell, error) {
	if err := o.Storage.Validate(); err != nil {
		return nil, errf("E17", err)
	}
	net := o.net()
	scales := pick(o, []int{16, 64, 256}, []int{16, 64})
	aggs := pick(o, []float64{0, 8e9, 2e9}, []float64{0, 2e9})
	// The interval dwarfs both the write and the coordinated round span at
	// unlimited bandwidth, so the protocols sit within noise of each other
	// until finite bandwidth starts stretching simultaneous writers. Fine
	// compute grains matter for the same reason: control sweeps relay behind
	// the non-preemptive running op at every tree level, so a coarse grain
	// would bury the storage signal under coordination latency.
	iters := pick(o, 400, 200)
	grain := 200 * simtime.Microsecond

	// Per-writer cap: a lone writer streams its 2e5-byte image in exactly
	// the legacy δ=200µs, so the unlimited column reproduces fixed-duration
	// behavior and every slowdown at finite bandwidth is pure contention.
	writerCap := o.Storage.PerWriterBytesPerSec
	if writerCap <= 0 {
		writerCap = 1e9
	}
	const image = int64(2e5)
	params := checkpoint.Params{Interval: 20 * simtime.Millisecond,
		Write: 200 * simtime.Microsecond, Bytes: image, Tier: storage.TierGlobal}

	type point struct {
		p   int
		agg float64
	}
	var points []point
	for _, p := range scales {
		for _, agg := range aggs {
			points = append(points, point{p, agg})
		}
	}

	return runner.MapCtx(o.ctx(), o.Jobs, points, func(i int, pt point) ([]e17Cell, error) {
		sd := pointSeed(o, "E17", i)
		mkStore := func() (*storage.Store, error) {
			sp := o.Storage
			sp.AggregateBytesPerSec = pt.agg
			sp.PerWriterBytesPerSec = writerCap
			return storage.New(sp)
		}
		base, err := buildProg("ep", pt.p, iters, grain, 4096, sd)
		if err != nil {
			return nil, err
		}
		rBase, err := simulate(o, net, base, sd, 0)
		if err != nil {
			return nil, err
		}

		builds := []struct {
			name  string
			build func(p checkpoint.Params) (checkpoint.Protocol, error)
		}{
			{"coordinated", func(p checkpoint.Params) (checkpoint.Protocol, error) {
				return checkpoint.NewCoordinated(p)
			}},
			{"uncoord-staggered", func(p checkpoint.Params) (checkpoint.Protocol, error) {
				return checkpoint.NewUncoordinated(p, checkpoint.Staggered, checkpoint.LogParams{})
			}},
			{"uncoord-random", func(p checkpoint.Params) (checkpoint.Protocol, error) {
				return checkpoint.NewUncoordinated(p, checkpoint.Random, checkpoint.LogParams{})
			}},
		}
		cells := make([]e17Cell, 0, len(builds))
		for _, b := range builds {
			st, err := mkStore()
			if err != nil {
				return nil, err
			}
			p := params
			p.Store = st
			proto, err := b.build(p)
			if err != nil {
				return nil, err
			}
			// Identical spec and seed — the base program serves every
			// protocol variant of this cell.
			r, err := simulate(o, net, base, sd, 0, sim.Agent(proto))
			if err != nil {
				return nil, err
			}
			cells = append(cells, e17Cell{
				P:        pt.p,
				Agg:      pt.agg,
				Protocol: b.name,
				Overhead: overheadPct(r, rBase),
				IOWait:   r.SeizedTime[checkpoint.ReasonIOWait],
				Writes:   proto.Stats().Writes,
			})
		}
		return cells, nil
	})
}

// E17Contention maps checkpoint overhead over the (P × aggregate parallel
// filesystem bandwidth) grid for coordinated vs uncoordinated write
// schedules. With unlimited bandwidth the protocols are within noise of each
// other on an uncoupled workload; at finite aggregate bandwidth the
// coordinated protocol's simultaneous writes split the pipe P ways while
// staggered writers mostly stream at the per-writer cap — the
// contention-driven crossover the shared-storage model exists to show.
func E17Contention(o Options) ([]*report.Table, error) {
	groups, err := e17Grid(o)
	if err != nil {
		return nil, errf("E17", err)
	}
	t := report.NewTable("E17: shared-storage contention map (ep, δ=200µs ↔ 2e5 B @ 1 GB/s cap, τ=20ms)",
		"P", "agg GB/s", "protocol", "overhead%", "io-wait", "writes")
	for _, cells := range groups {
		for _, c := range cells {
			t.AddRow(c.P, e17Label(c.Agg), c.Protocol, c.Overhead,
				c.IOWait.String(), c.Writes)
		}
	}
	t.AddNote("io-wait = total contention-induced stall beyond the nominal write time, summed over ranks")
	t.AddNote("coordinated rounds write all P images at once: k concurrent writers each drain at min(cap, agg/k)")
	return []*report.Table{t}, nil
}
