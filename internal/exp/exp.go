// Package exp defines the reproduction experiments E1–E17: one function
// per table/figure of the study, each returning report tables that
// cmd/sweep prints and bench_test.go exercises. DESIGN.md carries the
// experiment index; EXPERIMENTS.md records measured outputs.
//
// Every experiment enumerates its sweep as a slice of independent points
// fanned across Options.Jobs workers by internal/runner. A point derives
// its RNG stream from the sweep seed, the experiment ID, and its own index
// (pointSeed), and rows merge in submission order, so rendered tables are
// bit-for-bit identical at any worker count — enforced by
// determinism_test.go against committed golden files.
package exp

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"

	"checkpointsim/internal/cache"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/report"
	"checkpointsim/internal/rng"
	"checkpointsim/internal/runner"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/storage"
	"checkpointsim/internal/validate"
	"checkpointsim/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Net is the LogGOPS parameter set (defaults to network.DefaultParams).
	Net network.Params
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks sweeps (scales, iterations, replications) to keep
	// benches and CI runs short; full runs reproduce the study scales.
	Quick bool
	// Jobs caps the worker pool an experiment fans its sweep points
	// across; 0 (the default) uses runtime.GOMAXPROCS. Results are
	// bit-for-bit identical for every value: each point derives its RNG
	// stream from the sweep seed and its own index, never from worker
	// identity or completion order.
	Jobs int
	// Storage configures the shared-storage model the checkpoint protocols
	// write through. The zero value keeps the legacy fixed-duration write
	// path (no store); any non-zero parameter set routes protocol writes
	// through a store built per simulation. An unconstrained parameter set
	// (all bandwidths zero) is byte-identical to the legacy path. E17 sweeps
	// AggregateBytesPerSec itself and treats this field as the template for
	// the remaining knobs.
	Storage storage.Params
	// Validate attaches a trace-conformance checker (internal/validate) to
	// every simulation the experiments run: causality, resource
	// exclusivity, conservation, and protocol invariants are verified
	// against the full event stream, and any violation fails the
	// experiment. Runs aborted by an event/time cap carry no result and
	// are not validated (E8 treats capped cells as data). Costs extra per
	// run; meant for CI and debugging, not timing studies.
	Validate bool
	// Events, when non-nil, accumulates the simulation events processed by
	// every run the experiment performs (atomically — sweep points run on
	// parallel workers). cmd/bench uses it to report events/sec.
	Events *int64
	// Ctx, when non-nil, cancels the experiment cooperatively: once it is
	// done, the sweep worker pool stops dequeuing points and the experiment
	// returns Ctx.Err(). Points already in flight run to completion, so
	// cancellation never yields a half-executed point — it yields no result
	// at all. cmd/sweepd threads per-request timeouts and client
	// disconnects through here. Like Jobs and Events, Ctx can never change
	// the rows of a completed run, only whether the run completes.
	Ctx context.Context
	// SnapshotEvery, when > 0, snapshots the complete state of every
	// simulation at the first safe event boundary after every SnapshotEvery
	// events. For experiment sweeps (and for scenarios without OnSnapshot)
	// this turns every run into its own crash–resume differential harness:
	// each snapshot is restored into a fresh engine, the remainder of the
	// run re-executes from the blob, and its result and trace suffix must be
	// byte-identical to the uninterrupted run's — any divergence or decode
	// failure fails the run. Verification multiplies work by roughly the
	// snapshot count; meant for CI and debugging, not timing studies.
	SnapshotEvery int64
	// Snapshots, when non-nil, accumulates the snapshots taken (atomically —
	// sweep points run on parallel workers).
	Snapshots *int64
	// OnSnapshot, with SnapshotEvery > 0, switches single-simulation runs
	// (Scenario.Run) from self-verification to streaming: each snapshot blob
	// is handed to the callback for persistence, and the run is not
	// re-executed. cmd/sweepd uses this to checkpoint long scenario jobs so
	// a killed worker resumes instead of recomputing. Experiment sweeps
	// ignore it and always self-verify.
	OnSnapshot func(sim.Snapshot)
	// ResumeFrom, when non-nil, starts a Scenario.Run from a snapshot blob
	// instead of from scratch: the engine restores the blob and executes
	// only the remainder. Determinism makes the completed result
	// byte-identical to a never-interrupted run's (CI proves this over all
	// experiments and campaign scenarios), so the resumed run inherits the
	// full run's trace-conformance verdict; the suffix alone cannot be
	// re-validated, since the checker needs the stream from t=0.
	// Experiment sweeps (many simulations per run) reject it.
	ResumeFrom []byte
}

// ctx returns the run's context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// DefaultOptions returns the options the full reproduction uses.
func DefaultOptions() Options {
	return Options{Net: network.DefaultParams(), Seed: 42}
}

func (o Options) net() network.Params {
	if (o.Net == network.Params{}) {
		return network.DefaultParams()
	}
	return o.Net
}

// Experiment couples an experiment ID to its runner. Bench names the
// bench_test.go benchmark that exercises the experiment (cmd/sweep -list
// prints it so `go test -bench` targets are discoverable from the CLI).
type Experiment struct {
	ID    string
	Title string
	Desc  string
	Bench string
	Run   func(Options) ([]*report.Table, error)
}

// All returns the experiments in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Simulator validation", "simulated vs closed-form LogGOPS costs for point-to-point and collectives", "BenchmarkE1Validation", E1Validation},
		{"E2", "Checkpoint-as-noise propagation", "slowdown vs duty cycle of local interruptions across communication patterns", "BenchmarkE2Propagation", E2Propagation},
		{"E3", "Coordination cost", "per-round coordination latency vs scale, against the tree closed form", "BenchmarkE3Coordination", E3Coordination},
		{"E4", "Weak-scaling overhead", "checkpointing overhead vs node count for coordinated and uncoordinated protocols", "BenchmarkE4WeakScaling", E4WeakScaling},
		{"E5", "Logging sensitivity", "slowdown vs per-message logging cost across workload classes", "BenchmarkE5Logging", E5Logging},
		{"E6", "Interval optimization", "simulated runtime across checkpoint intervals vs the Young/Daly optimum", "BenchmarkE6Interval", E6Interval},
		{"E7", "Failures and recovery", "expected runtime vs per-node MTBF: global rollback vs local replay", "BenchmarkE7Recovery", E7Recovery},
		{"E8", "Protocol crossover", "who wins on the (scale x logging overhead) grid, simulation and model", "BenchmarkE8Crossover", E8Crossover},
		{"E9", "Stagger ablation", "aligned vs staggered vs random uncoordinated checkpoint offsets", "BenchmarkE9Stagger", E9Stagger},
		{"E10", "Hierarchical protocol", "cluster-size sweep for coordinate-inside/log-across checkpointing", "BenchmarkE10Hierarchical", E10Hierarchical},
		{"E11", "Non-blocking checkpointing", "blocking vs asynchronous copy-on-write coordinated checkpointing", "BenchmarkE11NonBlocking", E11NonBlocking},
		{"E12", "Partner checkpointing", "local filesystem writes vs diskless buddy transfers over the interconnect", "BenchmarkE12Partner", E12Partner},
		{"E13", "Straggler interaction", "protocol cost under static load imbalance (one slow rank)", "BenchmarkE13Straggler", E13Straggler},
		{"E14", "Fabric contention", "partner checkpointing vs local writes under finite bisection bandwidth", "BenchmarkE14Fabric", E14Fabric},
		{"E15", "Noise-shape resonance", "fixed duty cycle, swept interruption granularity (why checkpoints are the worst noise)", "BenchmarkE15Resonance", E15Resonance},
		{"E16", "Two-level checkpointing", "single-level vs multilevel (SCR/FTI-class) under failures, swept local coverage", "BenchmarkE16TwoLevel", E16TwoLevel},
		{"E17", "Storage contention map", "overhead vs (scale x aggregate PFS bandwidth): coordinated vs staggered writes through a shared store", "BenchmarkE17Contention", E17Contention},
		{"E18", "Replication crossover", "three-way coordinated vs uncoordinated vs replication over (scale x MTBF): 2x resources but no rollback", "BenchmarkE18Replication", E18Replication},
		{"E19", "CIC forced-checkpoint amplification", "index-based communication-induced checkpointing: forced writes vs communication intensity and lag threshold", "BenchmarkE19CIC", E19CIC},
	}
}

// storeFor builds one simulation's store from the run's storage parameters,
// or nil for the zero value (the legacy fixed-duration path). Stores
// arbitrate within a single engine, so every simulate call needs a fresh
// one; sweep points running on parallel workers must never share a store.
// Callers validate o.Storage up front (an invalid set maps to nil here).
func storeFor(o Options) *storage.Store {
	if o.Storage == (storage.Params{}) {
		return nil
	}
	st, err := storage.New(o.Storage)
	if err != nil {
		return nil
	}
	return st
}

// ByID finds an experiment by its ID (e.g. "E4").
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// buildProg constructs a named workload.
func buildProg(name string, ranks, iters int, compute simtime.Duration, bytes int64, seed uint64) (*goal.Program, error) {
	return workload.FromName(name, workload.CommonConfig{
		Base: workload.Base{
			Ranks:      ranks,
			Iterations: iters,
			Compute:    compute,
			Seed:       seed,
		},
		Bytes: bytes,
	})
}

// simulate runs one configuration to completion. With o.Validate set, the
// run streams through a trace-conformance checker and any invariant
// violation is returned as an error; capped runs (ErrCapExceeded) are
// passed through unvalidated — there is no result to reconcile.
func simulate(o Options, net network.Params, prog *goal.Program, seed uint64, maxTime simtime.Time, agents ...sim.Agent) (*sim.Result, error) {
	if o.ResumeFrom != nil {
		return nil, fmt.Errorf("exp: ResumeFrom applies to single-simulation scenario runs, not experiment sweeps")
	}
	cfg := sim.Config{Net: net, Program: prog, Agents: agents,
		Seed: seed, MaxTime: maxTime}
	var chk *validate.Checker
	if o.Validate {
		chk = validate.New(net)
		cfg.Trace = chk.Hook(nil)
	}
	if o.SnapshotEvery > 0 {
		return simulateVerified(o, cfg, chk)
	}
	e, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := e.Run()
	if res != nil && o.Events != nil {
		atomic.AddInt64(o.Events, res.Events)
	}
	if err != nil || chk == nil {
		return res, err
	}
	if verr := chk.Finish(res); verr != nil {
		return nil, verr
	}
	for _, a := range agents {
		if tl, ok := a.(validate.TaxedLogger); ok {
			if verr := chk.CheckLogging(tl); verr != nil {
				return nil, verr
			}
		}
		if rm, ok := a.(validate.ReplicaMirror); ok {
			if verr := chk.CheckReplication(rm); verr != nil {
				return nil, verr
			}
		}
		if ci, ok := a.(validate.CICIntrospect); ok {
			if verr := chk.CheckCIC(ci); verr != nil {
				return nil, verr
			}
		}
	}
	return res, nil
}

// overheadPct computes the relative makespan increase in percent.
func overheadPct(r, base *sim.Result) float64 {
	return r.OverheadPercent(base)
}

// pick returns quick when o.Quick, else full.
func pick[T any](o Options, full, quick T) T {
	if o.Quick {
		return quick
	}
	return full
}

// row is one table row produced by a sweep point; cells feed Table.AddRow.
type row []any

// rows collects a point's output in the order it should appear.
type rows []row

// add appends a row built from cells.
func (rs *rows) add(cells ...any) { *rs = append(*rs, row(cells)) }

// sweep fans the points of one experiment across o.Jobs workers and merges
// each point's rows into t in submission order, so the rendered table is
// identical at any parallelism. fn must be self-contained: anything random
// it does should key off pointSeed(o, id, i).
func sweep[P any](t *report.Table, o Options, id string, points []P, fn func(i int, p P) (rows, error)) error {
	out, err := runner.MapCtx(o.ctx(), o.Jobs, points, fn)
	if err != nil {
		return errf(id, err)
	}
	for _, rs := range out {
		for _, r := range rs {
			t.AddRow(r...)
		}
	}
	return nil
}

// pointSeed derives the RNG seed for sweep point i of experiment id. Keying
// by experiment and index decorrelates every point from its siblings and
// from other experiments while keeping the whole sweep a pure function of
// Options.Seed.
func pointSeed(o Options, id string, i int) uint64 {
	var h uint64 = 14695981039346656037 // FNV-1a 64-bit
	for _, c := range []byte(id) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return rng.Derive(o.Seed, h, uint64(i))
}

// CacheFields renders the result-determining configuration of experiment
// id under these options as a flat field set for content addressing
// (cache.Key). The contract is exactness in both directions:
//
//   - Every knob that can change a completed run's tables is included,
//     with Net resolved through the same default the run itself uses — two
//     option values that produce different rows must produce different
//     fields.
//   - Nothing else is: Jobs (determinism guarantee: tables are
//     bit-identical at any worker count), Events (telemetry), and Ctx
//     (cancellation) are deliberately absent, so a re-request at different
//     parallelism or timeout still hits.
//
// Validate is included even though it adds no rows: a validated run can
// fail where an unvalidated one succeeds, and a cache must not launder a
// result across that distinction. SnapshotEvery is included for the same
// reason — a self-verifying run fails on any resume divergence — while
// Snapshots, OnSnapshot, and ResumeFrom are mechanism, not configuration,
// and stay out.
func (o Options) CacheFields(id string) []cache.Field {
	net := o.net()
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return []cache.Field{
		cache.F("exp", id),
		cache.F("seed", strconv.FormatUint(o.Seed, 10)),
		cache.F("quick", strconv.FormatBool(o.Quick)),
		cache.F("validate", strconv.FormatBool(o.Validate)),
		cache.F("snapshot_every", strconv.FormatInt(o.SnapshotEvery, 10)),
		cache.F("net.latency", strconv.FormatInt(int64(net.Latency), 10)),
		cache.F("net.overhead", strconv.FormatInt(int64(net.Overhead), 10)),
		cache.F("net.gap", strconv.FormatInt(int64(net.Gap), 10)),
		cache.F("net.gap_per_byte", f64(net.GapPerByte)),
		cache.F("net.overhead_per_byte", f64(net.OverheadPerByte)),
		cache.F("net.rendezvous", strconv.FormatInt(net.RendezvousThreshold, 10)),
		cache.F("net.bisection_bps", f64(net.BisectionBytesPerSec)),
		cache.F("storage.aggregate_bps", f64(o.Storage.AggregateBytesPerSec)),
		cache.F("storage.per_writer_bps", f64(o.Storage.PerWriterBytesPerSec)),
		cache.F("storage.node_bps", f64(o.Storage.NodeBytesPerSec)),
		cache.F("storage.ranks_per_node", strconv.Itoa(o.Storage.RanksPerNode)),
	}
}

// ms is a shorthand constructor.
func ms(n int) simtime.Duration { return simtime.Duration(n) * simtime.Millisecond }

// errf wraps an error with experiment context.
func errf(id string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s: %w", id, err)
}
