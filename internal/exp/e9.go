package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E9Stagger ablates the uncoordinated offset policy: with a substantial
// write duty cycle (δ/τ = 20%), aligned offsets behave like coordination-
// free gang checkpointing, while staggering trades that for a rolling
// pattern whose delays communication-heavy workloads must absorb every
// interval. One sweep point = one workload with all three policies.
func E9Stagger(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	iters := pick(o, 60, 20)
	workloads := pick(o, []string{"ep", "stencil2d", "stencil3d", "cg"},
		[]string{"ep", "stencil2d"})
	params := checkpoint.Params{Interval: 10 * simtime.Millisecond, Write: 2 * simtime.Millisecond}

	t := report.NewTable("E9: uncoordinated offset policy ablation (δ/τ = 20%, no logging)",
		"workload", "policy", "overhead%", "writes")
	err := sweep(t, o, "E9", workloads, func(i int, w string) (rows, error) {
		sd := pointSeed(o, "E9", i)
		base, err := buildProg(w, ranks, iters, ms(1), 4096, sd)
		if err != nil {
			return nil, err
		}
		rBase, err := simulate(o, net, base, sd, 0)
		if err != nil {
			return nil, err
		}
		var rs rows
		for _, pol := range []checkpoint.OffsetPolicy{checkpoint.Aligned, checkpoint.Staggered, checkpoint.Random} {
			up, err := checkpoint.NewUncoordinated(params, pol, checkpoint.LogParams{})
			if err != nil {
				return nil, err
			}
			// Same spec and seed as base: reuse the immutable program.
			r, err := simulate(o, net, base, sd, 0, sim.Agent(up))
			if err != nil {
				return nil, err
			}
			rs.add(w, pol.String(), overheadPct(r, rBase), up.Stats().Writes)
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("logging disabled to isolate the offset effect")
	return []*report.Table{t}, nil
}
