package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E9Stagger ablates the uncoordinated offset policy: with a substantial
// write duty cycle (δ/τ = 20%), aligned offsets behave like coordination-
// free gang checkpointing, while staggering trades that for a rolling
// pattern whose delays communication-heavy workloads must absorb every
// interval.
func E9Stagger(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	iters := pick(o, 60, 20)
	workloads := pick(o, []string{"ep", "stencil2d", "stencil3d", "cg"},
		[]string{"ep", "stencil2d"})
	params := checkpoint.Params{Interval: 10 * simtime.Millisecond, Write: 2 * simtime.Millisecond}

	t := report.NewTable("E9: uncoordinated offset policy ablation (δ/τ = 20%, no logging)",
		"workload", "policy", "overhead%", "writes")
	for _, w := range workloads {
		base, err := buildProg(w, ranks, iters, ms(1), 4096, o.Seed)
		if err != nil {
			return nil, errf("E9", err)
		}
		rBase, err := simulate(net, base, o.Seed, 0)
		if err != nil {
			return nil, errf("E9", err)
		}
		for _, pol := range []checkpoint.OffsetPolicy{checkpoint.Aligned, checkpoint.Staggered, checkpoint.Random} {
			up, err := checkpoint.NewUncoordinated(params, pol, checkpoint.LogParams{})
			if err != nil {
				return nil, errf("E9", err)
			}
			prog, err := buildProg(w, ranks, iters, ms(1), 4096, o.Seed)
			if err != nil {
				return nil, errf("E9", err)
			}
			r, err := simulate(net, prog, o.Seed, 0, sim.Agent(up))
			if err != nil {
				return nil, errf("E9", err)
			}
			t.AddRow(w, pol.String(), overheadPct(r, rBase), up.Stats().Writes)
		}
	}
	t.AddNote("logging disabled to isolate the offset effect")
	return []*report.Table{t}, nil
}
