package exp

import (
	"math"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/failure"
	"checkpointsim/internal/model"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/stats"
)

// E6Interval sweeps the checkpoint interval around the Young/Daly optimum
// under injected failures with global rollback and compares simulated
// makespans to the analytic expected-runtime model. The simulated optimum
// landing near τ_Daly validates both the model and the simulator's failure
// accounting.
//
// One sweep point = one τ/τ_Daly factor. Unlike the other experiments the
// replication seeds are deliberately shared across points (common random
// numbers: every factor sees the same failure clocks), so the point index
// keys nothing here — determinism still holds because the seeds are fixed.
func E6Interval(o Options) ([]*report.Table, error) {
	net := o.net()
	const (
		ranks   = 16
		write   = 10 * simtime.Millisecond
		restart = 10 * simtime.Millisecond
	)
	nodeMTBF := 4 * simtime.Second // system MTBF 250ms
	iters := pick(o, 600, 150)
	seeds := pick(o, []uint64{1, 2, 3, 4, 5}, []uint64{1, 2})

	sysMTBF := float64(nodeMTBF) / float64(ranks) / 1e9
	tauDaly := model.DalyInterval(write.Seconds(), sysMTBF)
	tauYoung := model.YoungInterval(write.Seconds(), sysMTBF)

	factors := pick(o, []float64{0.3, 0.5, 0.75, 1.0, 1.5, 2.5}, []float64{0.5, 1.0, 2.0})

	t := report.NewTable("E6: interval sweep under failures (P=16, δ=10ms, R=10ms, θ_sys=250ms)",
		"τ/τ_Daly", "τ", "mean-makespan", "ci95", "model(δ)", "model(δ_eff)", "sim/model_eff")
	t.AddNote("τ_Daly = %.1fms, τ_Young = %.1fms", tauDaly*1000, tauYoung*1000)

	// Failure-free useful time for the model's Ts, shared by every point.
	base, err := buildProg("stencil2d", ranks, iters, ms(1), 4096, o.Seed)
	if err != nil {
		return nil, errf("E6", err)
	}
	rBase, err := simulate(o, net, base, o.Seed, 0)
	if err != nil {
		return nil, errf("E6", err)
	}
	ts := simtime.Duration(rBase.Makespan).Seconds()

	err = sweep(t, o, "E6", factors, func(_ int, f float64) (rows, error) {
		tau := simtime.FromSeconds(tauDaly * f)
		var spans []float64
		var roundSpanSum simtime.Duration
		var roundCount int64
		for _, seed := range seeds {
			cp, err := checkpoint.NewCoordinated(checkpoint.Params{Interval: tau, Write: write})
			if err != nil {
				return nil, err
			}
			inj, err := failure.NewInjector(failure.Config{
				MTBF: nodeMTBF, Restart: restart, Kind: failure.RollbackGlobal}, cp)
			if err != nil {
				return nil, err
			}
			// The program depends only on o.Seed, not the replication seed:
			// every replication of every factor reuses the base build.
			r, err := simulate(o, net, base, seed, simtime.Time(120*simtime.Second),
				sim.Agent(cp), sim.Agent(inj))
			if err != nil {
				return nil, err
			}
			spans = append(spans, simtime.Duration(r.Makespan).Seconds())
			roundSpanSum += cp.Stats().RoundSpan
			roundCount += cp.Stats().Rounds
		}
		mean := stats.Mean(spans)
		ci := stats.CI95(spans)
		mrt := model.ExpectedRuntime(ts, write.Seconds(), restart.Seconds(), sysMTBF, tau.Seconds())
		// The naive model uses δ = the raw write time; the simulator also
		// pays coordination latency and synchronization idling every round.
		// Feeding the *measured* round span back in as the effective δ shows
		// how much of the sim/model gap that explains.
		effDelta := write.Seconds()
		if roundCount > 0 {
			effDelta = (roundSpanSum / simtime.Duration(roundCount)).Seconds()
		}
		mrtEff := model.ExpectedRuntime(ts, effDelta, restart.Seconds(), sysMTBF, tau.Seconds())
		ratio := math.NaN()
		if mrtEff > 0 {
			ratio = mean / mrtEff
		}
		var rs rows
		rs.add(f, tau.String(),
			simtime.FromSeconds(mean).String(), simtime.FromSeconds(ci).String(),
			simtime.FromSeconds(mrt).String(),
			simtime.FromSeconds(mrtEff).String(), ratio)
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("model(δ_eff) replaces the write time with the measured round span (write + coordination + idle)")
	return []*report.Table{t}, nil
}
