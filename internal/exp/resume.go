package exp

// Crash–resume differential verification (Options.SnapshotEvery): every
// simulation proves its own snapshots. The monolithic run records its full
// trace and every snapshot taken at a safe boundary; then, for each
// snapshot, a fresh engine restores the blob and runs the remainder. The
// resumed run must reproduce the monolithic run byte-for-byte from the
// boundary on: identical Result.CanonicalBytes, an event-for-event
// identical trace suffix, and — when the monolithic run was aborted by an
// event/time cap — the identical error. Any divergence is a correctness
// bug in snapshot coverage (state not serialized, or serialized wrong) and
// fails the run.

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/validate"
)

// simulateVerified is simulate's SnapshotEvery > 0 path: run once
// monolithically (validating as configured), then re-run the remainder from
// every snapshot and compare.
func simulateVerified(o Options, cfg sim.Config, chk *validate.Checker) (*sim.Result, error) {
	var full []sim.TraceEvent
	var snaps []sim.Snapshot
	inner := cfg.Trace
	cfg.Trace = func(ev sim.TraceEvent) {
		full = append(full, ev)
		if inner != nil {
			inner(ev)
		}
	}
	cfg.SnapshotEvery = o.SnapshotEvery
	cfg.OnSnapshot = func(s sim.Snapshot) { snaps = append(snaps, s) }
	e, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, runErr := e.Run()
	if res != nil && o.Events != nil {
		atomic.AddInt64(o.Events, res.Events)
	}
	if runErr == nil && chk != nil {
		if verr := chk.Finish(res); verr != nil {
			return nil, verr
		}
		for _, a := range cfg.Agents {
			if tl, ok := a.(validate.TaxedLogger); ok {
				if verr := chk.CheckLogging(tl); verr != nil {
					return nil, verr
				}
			}
			if rm, ok := a.(validate.ReplicaMirror); ok {
				if verr := chk.CheckReplication(rm); verr != nil {
					return nil, verr
				}
			}
			if ci, ok := a.(validate.CICIntrospect); ok {
				if verr := chk.CheckCIC(ci); verr != nil {
					return nil, verr
				}
			}
		}
	}
	if verr := verifyResume(cfg, snaps, full, res, runErr, o.Snapshots); verr != nil {
		return nil, verr
	}
	return res, runErr
}

// verifyResume replays the run's remainder from each snapshot and compares
// it against the monolithic run. cfg must be the monolithic run's config
// (its Agents are reused: DecodeState fully reinitializes them). A capped
// monolithic run (runErr != nil, res == nil) is verified up to the cap: the
// resumed run must fail with the identical error after emitting the
// identical trace suffix.
func verifyResume(cfg sim.Config, snaps []sim.Snapshot, full []sim.TraceEvent,
	res *sim.Result, runErr error, counter *int64) error {
	if counter != nil && len(snaps) > 0 {
		atomic.AddInt64(counter, int64(len(snaps)))
	}
	var want []byte
	if res != nil {
		want = res.CanonicalBytes()
	}
	for i, s := range snaps {
		at := fmt.Sprintf("snapshot %d/%d (t=%v, %d events)", i+1, len(snaps), s.Time, s.Events)
		if s.TraceEvents > int64(len(full)) {
			return fmt.Errorf("resume: %s claims %d trace events, monolithic run emitted %d",
				at, s.TraceEvents, len(full))
		}
		rcfg := cfg
		rcfg.SnapshotEvery = 0
		rcfg.OnSnapshot = nil
		var suffix []sim.TraceEvent
		rcfg.Trace = func(ev sim.TraceEvent) { suffix = append(suffix, ev) }
		eng, err := sim.New(rcfg)
		if err != nil {
			return fmt.Errorf("resume: %s: rebuild: %w", at, err)
		}
		if err := eng.Restore(s.Blob); err != nil {
			return fmt.Errorf("resume: %s: restore: %w", at, err)
		}
		r2, err2 := eng.Run()
		if runErr != nil {
			if err2 == nil {
				return fmt.Errorf("resume: %s: monolithic run failed (%v) but resumed run completed", at, runErr)
			}
			if err2.Error() != runErr.Error() {
				return fmt.Errorf("resume: %s: error diverged: monolithic %q, resumed %q", at, runErr, err2)
			}
		} else {
			if err2 != nil {
				return fmt.Errorf("resume: %s: resumed run failed: %w", at, err2)
			}
			if !bytes.Equal(r2.CanonicalBytes(), want) {
				return fmt.Errorf("resume: %s: result diverged from monolithic run", at)
			}
		}
		wantSuffix := full[s.TraceEvents:]
		if len(suffix) != len(wantSuffix) {
			return fmt.Errorf("resume: %s: trace suffix has %d events, monolithic remainder has %d",
				at, len(suffix), len(wantSuffix))
		}
		for j := range suffix {
			if suffix[j] != wantSuffix[j] {
				return fmt.Errorf("resume: %s: trace diverged at suffix event %d: resumed %+v, monolithic %+v",
					at, j, suffix[j], wantSuffix[j])
			}
		}
	}
	return nil
}
