package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/failure"
	"checkpointsim/internal/model"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E16TwoLevel compares single-level coordinated checkpointing against the
// multilevel (SCR/FTI-class) protocol: frequent cheap local checkpoints
// backed by rare expensive global ones. The win depends on what fraction of
// failures the local level can serve — the sweep axis. The single-level
// reference is sweep point 0; each coverage level is its own point.
func E16TwoLevel(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	iters := pick(o, 120, 50)
	const (
		globalWrite = 4 * simtime.Millisecond
		localWrite  = 100 * simtime.Microsecond // 40x cheaper (node-local SSD)
		restart     = 4 * simtime.Millisecond
		mtbf        = 2 * simtime.Second // per node: failure-rich regime
	)
	coverages := pick(o, []float64{0.5, 0.8, 0.95}, []float64{0.8})

	sys := mtbf.Seconds() / float64(ranks)
	// Single-level interval: Daly for the full failure rate.
	tauG := simtime.FromSeconds(model.DalyInterval(globalWrite.Seconds(), sys))

	t := report.NewTable("E16: single-level vs two-level checkpointing under failures",
		"local-coverage", "protocol", "τ_L/τ_G", "failures", "makespan", "overhead%", "writes(L/G)")

	base, err := buildProg("stencil2d", ranks, iters, ms(1), 4096, o.Seed)
	if err != nil {
		return nil, errf("E16", err)
	}
	rBase, err := simulate(o, net, base, o.Seed, 0)
	if err != nil {
		return nil, errf("E16", err)
	}

	type pt struct {
		single bool
		cov    float64
	}
	points := []pt{{single: true}}
	for _, cov := range coverages {
		points = append(points, pt{cov: cov})
	}

	err = sweep(t, o, "E16", points, func(i int, p pt) (rows, error) {
		sd := pointSeed(o, "E16", i)
		var rs rows
		if p.single {
			// Single-level reference: coordinated at the Daly-optimal interval.
			cp, err := checkpoint.NewCoordinated(checkpoint.Params{Interval: tauG, Write: globalWrite})
			if err != nil {
				return nil, err
			}
			injG, err := failure.NewInjector(failure.Config{
				MTBF: mtbf, Restart: restart, Kind: failure.RollbackGlobal}, cp)
			if err != nil {
				return nil, err
			}
			prog, err := buildProg("stencil2d", ranks, iters, ms(1), 4096, sd)
			if err != nil {
				return nil, err
			}
			rG, err := simulate(o, net, prog, sd, simtime.Time(300*simtime.Second),
				sim.Agent(cp), sim.Agent(injG))
			if err != nil {
				return nil, err
			}
			rs.add("-", "single-level", "-/"+tauG.String(), len(injG.Events()),
				simtime.Duration(rG.Makespan).String(), overheadPct(rG, rBase),
				report.Cell(cp.Stats().Writes))
			return rs, nil
		}

		// Each level gets its own Daly interval for the failure share it
		// serves — the standard multilevel optimization.
		tl0, tg0 := model.TwoLevelIntervals(localWrite.Seconds(), globalWrite.Seconds(), sys, p.cov)
		tauL := simtime.FromSeconds(tl0)
		tauGL := simtime.FromSeconds(tg0)
		tl, err := checkpoint.NewTwoLevel(checkpoint.TwoLevelParams{
			LocalInterval: tauL, LocalWrite: localWrite,
			GlobalInterval: tauGL, GlobalWrite: globalWrite,
		})
		if err != nil {
			return nil, err
		}
		inj, err := failure.NewInjector(failure.Config{
			MTBF: mtbf, Restart: restart,
			LocalRestart: restart / 10, LocalCoverage: p.cov,
			Kind: failure.RecoverTwoLevel}, tl)
		if err != nil {
			return nil, err
		}
		prog, err := buildProg("stencil2d", ranks, iters, ms(1), 4096, sd)
		if err != nil {
			return nil, err
		}
		r, err := simulate(o, net, prog, sd, simtime.Time(300*simtime.Second),
			sim.Agent(tl), sim.Agent(inj))
		if err != nil {
			return nil, err
		}
		local, global := tl.LevelWrites()
		rs.add(p.cov, "two-level", tauL.String()+"/"+tauGL.String(), len(inj.Events()),
			simtime.Duration(r.Makespan).String(), overheadPct(r, rBase),
			report.Cell(local)+"/"+report.Cell(global))
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("per-level Daly intervals: τ_L = Daly(δ_L, θ_sys/cov), τ_G = Daly(δ_G, θ_sys/(1−cov)); local restart = R/10")
	return []*report.Table{t}, nil
}
