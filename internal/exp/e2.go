package exp

import (
	"checkpointsim/internal/noise"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E2Propagation measures how local, uncoordinated interruptions (noise with
// checkpoint-like amplitude) slow each communication pattern. The
// amplification column — overhead divided by duty cycle — is the headline:
// 1.0 means the pattern absorbs interruptions perfectly (EP); larger values
// mean the dependency structure propagates and compounds them.
//
// One sweep point = one workload: the baseline and every duty-cycle run
// share the point's RNG stream so the comparison stays paired.
func E2Propagation(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	// Runs must span many noise periods: for fixed-period noise the EP
	// amplification floor is ~1 + period/T, so T >= 100ms keeps it near 1.
	iters := pick(o, 160, 100)
	workloads := pick(o,
		[]string{"ep", "stencil2d", "stencil3d", "sweep", "cg", "transpose"},
		[]string{"ep", "stencil2d", "sweep"})
	duties := pick(o, []float64{0.025, 0.05, 0.10, 0.20}, []float64{0.05, 0.20})
	const period = 10 * simtime.Millisecond

	t := report.NewTable("E2: slowdown from local interruptions (noise period 10ms, random phase)",
		"workload", "duty%", "slowdown", "overhead%", "amplification")
	err := sweep(t, o, "E2", workloads, func(i int, w string) (rows, error) {
		sd := pointSeed(o, "E2", i)
		base, err := buildProg(w, ranks, iters, ms(1), 4096, sd)
		if err != nil {
			return nil, err
		}
		rBase, err := simulate(o, net, base, sd, 0)
		if err != nil {
			return nil, err
		}
		var rs rows
		for _, duty := range duties {
			// The program is a pure function of its spec and immutable once
			// built: reuse base instead of rebuilding it per duty cycle.
			inj, err := noise.NewInjector(noise.Config{
				Period:   period,
				Duration: period.Scale(duty),
			})
			if err != nil {
				return nil, err
			}
			r, err := simulate(o, net, base, sd, 0, sim.Agent(inj))
			if err != nil {
				return nil, err
			}
			ov := overheadPct(r, rBase)
			rs.add(w, duty*100, r.Slowdown(rBase), ov, ov/(duty*100))
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("amplification 1.0 = interruptions fully absorbed; >1 = propagated through messages")
	return []*report.Table{t}, nil
}
