package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/model"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E3Coordination measures the cost of one coordinated checkpoint round as
// the machine grows: the quiesce latency (round start to commit), the full
// round span, and the decomposition against the closed-form tree latency —
// the difference is synchronization idling, i.e. waiting for ranks to reach
// an operation boundary. One sweep point = one machine size.
func E3Coordination(o Options) ([]*report.Table, error) {
	net := o.net()
	scales := pick(o, []int{16, 64, 256, 1024}, []int{16, 64})
	params := checkpoint.Params{Interval: 5 * simtime.Millisecond, Write: 500 * simtime.Microsecond}

	t := report.NewTable("E3: coordinated round cost vs scale (stencil2d, 0.5ms ops)",
		"P", "rounds", "quiesce/round", "tree-model", "sync-idle", "span/round", "ctl-msgs")
	err := sweep(t, o, "E3", scales, func(i, p int) (rows, error) {
		sd := pointSeed(o, "E3", i)
		prog, err := buildProg("stencil2d", p, pick(o, 80, 30), 500*simtime.Microsecond, 4096, sd)
		if err != nil {
			return nil, err
		}
		cp, err := checkpoint.NewCoordinated(params)
		if err != nil {
			return nil, err
		}
		r, err := simulate(o, net, prog, sd, 0, sim.Agent(cp))
		if err != nil {
			return nil, err
		}
		var rs rows
		st := cp.Stats()
		if st.Rounds == 0 {
			rs.add(p, 0, "-", "-", "-", "-", r.Metrics.CtlMessages)
			return rs, nil
		}
		quiesce := st.CoordDelay / simtime.Duration(st.Rounds)
		span := st.RoundSpan / simtime.Duration(st.Rounds)
		// The REQ+ACK sweep covers 2·depth hops on an idle machine.
		treeModel := simtime.FromSeconds(model.CoordinationDelay(p, net, params.CtlBytes))
		if params.CtlBytes == 0 {
			treeModel = simtime.FromSeconds(model.CoordinationDelay(p, net, 64))
		}
		idle := quiesce - treeModel
		rs.add(p, st.Rounds, quiesce.String(), treeModel.String(), idle.String(),
			span.String(), r.Metrics.CtlMessages)
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("sync-idle = measured quiesce latency minus the pure network tree latency")
	return []*report.Table{t}, nil
}
