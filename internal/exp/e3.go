package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/model"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E3Coordination measures the cost of one coordinated checkpoint round as
// the machine grows: the quiesce latency (round start to commit), the full
// round span, and the decomposition against the closed-form tree latency —
// the difference is synchronization idling, i.e. waiting for ranks to reach
// an operation boundary.
func E3Coordination(o Options) ([]*report.Table, error) {
	net := o.net()
	scales := pick(o, []int{16, 64, 256, 1024}, []int{16, 64})
	params := checkpoint.Params{Interval: 5 * simtime.Millisecond, Write: 500 * simtime.Microsecond}

	t := report.NewTable("E3: coordinated round cost vs scale (stencil2d, 0.5ms ops)",
		"P", "rounds", "quiesce/round", "tree-model", "sync-idle", "span/round", "ctl-msgs")
	for _, p := range scales {
		prog, err := buildProg("stencil2d", p, pick(o, 80, 30), 500*simtime.Microsecond, 4096, o.Seed)
		if err != nil {
			return nil, errf("E3", err)
		}
		cp, err := checkpoint.NewCoordinated(params)
		if err != nil {
			return nil, errf("E3", err)
		}
		r, err := simulate(net, prog, o.Seed, 0, sim.Agent(cp))
		if err != nil {
			return nil, errf("E3", err)
		}
		st := cp.Stats()
		if st.Rounds == 0 {
			t.AddRow(p, 0, "-", "-", "-", "-", r.Metrics.CtlMessages)
			continue
		}
		quiesce := st.CoordDelay / simtime.Duration(st.Rounds)
		span := st.RoundSpan / simtime.Duration(st.Rounds)
		// The REQ+ACK sweep covers 2·depth hops on an idle machine.
		treeModel := simtime.FromSeconds(model.CoordinationDelay(p, net, params.CtlBytes))
		if params.CtlBytes == 0 {
			treeModel = simtime.FromSeconds(model.CoordinationDelay(p, net, 64))
		}
		idle := quiesce - treeModel
		t.AddRow(p, st.Rounds, quiesce.String(), treeModel.String(), idle.String(),
			span.String(), r.Metrics.CtlMessages)
	}
	t.AddNote("sync-idle = measured quiesce latency minus the pure network tree latency")
	return []*report.Table{t}, nil
}
