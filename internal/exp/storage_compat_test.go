package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"checkpointsim/internal/storage"
)

// Backward-compatibility property: running the goldened experiments with an
// explicitly built but unconstrained store — the Unlimited path, as opposed
// to the nil store the zero Options take — must reproduce the committed
// seed-42 quick tables byte-for-byte. This pins the whole store-routed write
// plumbing (Options.Storage → storeFor → Params.Store → storeWrite) to the
// legacy fixed-duration results whenever no tier is bandwidth-limited.
func TestUnlimitedStoreMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("runs quick experiments")
	}
	for _, id := range []string{"E2", "E4", "E8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			o := DefaultOptions()
			o.Quick = true
			o.Seed = 42
			// Non-zero parameters with every bandwidth unconstrained: the
			// experiments build a real store per simulation and the write
			// path must still be byte-identical to the legacy one.
			o.Storage = storage.Params{RanksPerNode: 1}
			got := renderOpts(t, id, o)
			path := filepath.Join("testdata", strings.ToLower(id)+"_quick_seed42.golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			if got != string(want) {
				t.Errorf("%s with the Unlimited store drifted from golden %s\n--- got ---\n%s--- want ---\n%s",
					id, path, got, want)
			}
		})
	}
}
