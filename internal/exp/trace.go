package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/storage"
)

// Trace ingest: the study drove its simulator with recorded application
// traces rather than synthetic kernels. TraceExperiment closes that gap —
// any external GOAL program (cmd/tracegen output, a LogGOPSim trace, a
// hand-written file) runs through the same protocol/storage/validator
// stack as E1–E17, and the experiment ID carries a content digest so the
// sweepd cache addresses the trace bytes, not just a filename.

// TraceDigestLen is the length of the hex digest embedded in a trace
// experiment's ID. 12 hex chars (48 bits) is plenty for a trace corpus and
// keeps IDs readable.
const TraceDigestLen = 12

// LoadTrace parses a GOAL program from r and returns it with the content
// digest of the raw bytes. The digest — not the parse — defines identity:
// two byte-different files that parse identically get different IDs, which
// over-segments the cache but never aliases it.
func LoadTrace(r io.Reader) (*goal.Program, string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, "", fmt.Errorf("trace: read: %w", err)
	}
	sum := sha256.Sum256(data)
	digest := hex.EncodeToString(sum[:])[:TraceDigestLen]
	prog, err := goal.ParseString(string(data))
	if err != nil {
		return nil, "", err
	}
	if err := prog.CheckBalanced(); err != nil {
		return nil, "", fmt.Errorf("trace: %w", err)
	}
	return prog, digest, nil
}

// LoadTraceFile loads a trace from a GOAL text file. The returned name is
// the file's base name without extension, ready for TraceExperiment.
func LoadTraceFile(path string) (*goal.Program, string, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", "", err
	}
	defer f.Close()
	prog, digest, err := LoadTrace(f)
	if err != nil {
		return nil, "", "", fmt.Errorf("%s: %w", path, err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return prog, name, digest, nil
}

// TraceExperiment wraps an ingested GOAL program as an Experiment that runs
// the checkpoint-protocol suite over it: an uninstrumented baseline, then
// coordinated, uncoordinated (aligned and staggered, with message logging),
// hierarchical, non-blocking, and partner checkpointing, all derived from
// the trace's own baseline makespan so the suite scales with the trace.
// The ID is "trace:<name>@<digest>", so Options.CacheFields stays exact:
// different trace bytes can never share a cache entry.
func TraceExperiment(name string, prog *goal.Program, digest string) Experiment {
	id := "trace:" + name + "@" + digest
	return Experiment{
		ID:    id,
		Title: "Trace ingest: " + name,
		Desc:  "protocol suite over an ingested GOAL trace (" + digest + ")",
		Run: func(o Options) ([]*report.Table, error) {
			return runTrace(o, id, name, prog)
		},
	}
}

// traceInterval derives the checkpoint interval from a baseline makespan:
// an eighth of the run, rounded to a microsecond, floored so degenerate
// (near-empty) traces still get a positive interval. The write cost is a
// tenth of that. Both are pure functions of the makespan, so equal traces
// always sweep equal protocol configurations.
func traceInterval(makespan simtime.Time) (tau, delta simtime.Duration) {
	tau = simtime.Duration(makespan) / 8
	tau = tau / simtime.Microsecond * simtime.Microsecond
	if tau < 10*simtime.Microsecond {
		tau = 10 * simtime.Microsecond
	}
	delta = tau / 10
	if delta < simtime.Microsecond {
		delta = simtime.Microsecond
	}
	return tau, delta
}

func runTrace(o Options, id, name string, prog *goal.Program) ([]*report.Table, error) {
	net := o.net()
	base, err := simulate(o, net, prog, o.Seed, 0)
	if err != nil {
		return nil, errf(id, err)
	}
	tau, delta := traceInterval(base.Makespan)
	logp := checkpoint.LogParams{Alpha: 500 * simtime.Nanosecond, BetaNsPerByte: 0.05}

	t := report.NewTable("Trace "+name+": protocol suite",
		"protocol", "makespan", "overhead%", "rounds", "writes", "logged")

	// Each point builds its protocol fresh (agents are single-simulation)
	// and its own store (stores arbitrate within one engine).
	type pt struct {
		name  string
		build func(st *storageStore) (checkpoint.Protocol, error)
	}
	points := []pt{
		{"baseline", nil},
		{"coordinated", func(st *storageStore) (checkpoint.Protocol, error) {
			return checkpoint.NewCoordinated(st.params(tau, delta))
		}},
		{"uncoord-aligned", func(st *storageStore) (checkpoint.Protocol, error) {
			return checkpoint.NewUncoordinated(st.params(tau, delta), checkpoint.Aligned, logp)
		}},
		{"uncoord-staggered", func(st *storageStore) (checkpoint.Protocol, error) {
			return checkpoint.NewUncoordinated(st.params(tau, delta), checkpoint.Staggered, logp)
		}},
		{"hierarchical-c4", func(st *storageStore) (checkpoint.Protocol, error) {
			return checkpoint.NewHierarchical(st.params(tau, delta), 4, logp)
		}},
		{"nonblocking", func(st *storageStore) (checkpoint.Protocol, error) {
			return checkpoint.NewNonBlockingCoordinated(checkpoint.NonBlockingParams{
				Params: st.params(tau, delta), Window: 4 * delta, Slowdown: 1.05})
		}},
		{"partner", func(st *storageStore) (checkpoint.Protocol, error) {
			return checkpoint.NewPartner(checkpoint.PartnerParams{
				Interval: tau, SerializeTime: delta, CkptBytes: 256 * 1024,
				Offsets: checkpoint.Staggered, Store: st.store()})
		}},
	}

	err = sweep(t, o, id, points, func(i int, p pt) (rows, error) {
		var rs rows
		if p.build == nil {
			rs.add("baseline", simtime.Duration(base.Makespan).String(), 0.0,
				int64(0), int64(0), int64(0))
			return rs, nil
		}
		st := &storageStore{o: o}
		proto, err := p.build(st)
		if err != nil {
			return nil, err
		}
		r, err := simulate(o, net, prog, pointSeed(o, id, i), 0, sim.Agent(proto))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.name, err)
		}
		s := proto.Stats()
		rs.add(p.name, simtime.Duration(r.Makespan).String(), overheadPct(r, base),
			s.Rounds, s.Writes, s.LoggedMessages)
		return rs, nil
	})
	if err != nil {
		return nil, errf(id, err)
	}
	t.AddNote(fmt.Sprintf("trace: %v", prog.Stats()))
	t.AddNote(fmt.Sprintf("τ = makespan/8 = %v, δ = τ/10 = %v; logging α=%v β=%gns/B",
		tau, delta, logp.Alpha, logp.BetaNsPerByte))
	return []*report.Table{t}, nil
}

// storageStore builds one simulation's store lazily from the run options,
// so a sweep point constructs at most one store (stores arbitrate within a
// single engine and must never be shared across points).
type storageStore struct {
	o     Options
	built bool
	st    *storage.Store
}

func (s *storageStore) store() *storage.Store {
	if !s.built {
		s.st = storeFor(s.o)
		s.built = true
	}
	return s.st
}

func (s *storageStore) params(tau, delta simtime.Duration) checkpoint.Params {
	return checkpoint.Params{Interval: tau, Write: delta, Store: s.store()}
}
