package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E11NonBlocking compares blocking and non-blocking (asynchronous,
// copy-on-write) coordinated checkpointing. The blocking protocol pays
// quiesce latency, gate time, and an exclusive write; the non-blocking
// variant spreads the same write volume over a window while the
// application runs slowed. The sweep varies the interference factor and
// window stretch to show where asynchrony stops paying. One sweep point =
// one workload: baseline, blocking reference, and every variant.
func E11NonBlocking(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	iters := pick(o, 60, 25)
	workloads := pick(o, []string{"stencil2d", "cg"}, []string{"stencil2d"})
	params := checkpoint.Params{Interval: 10 * simtime.Millisecond, Write: 2 * simtime.Millisecond}

	t := report.NewTable("E11: blocking vs non-blocking coordinated (τ=10ms, δ=2ms)",
		"workload", "protocol", "window", "slowdown", "overhead%", "rounds")
	err := sweep(t, o, "E11", workloads, func(i int, w string) (rows, error) {
		sd := pointSeed(o, "E11", i)
		base, err := buildProg(w, ranks, iters, ms(1), 4096, sd)
		if err != nil {
			return nil, err
		}
		rBase, err := simulate(o, net, base, sd, 0)
		if err != nil {
			return nil, err
		}

		// Blocking reference.
		cp, err := checkpoint.NewCoordinated(params)
		if err != nil {
			return nil, err
		}
		// Same spec and seed as base: reuse the immutable program.
		r, err := simulate(o, net, base, sd, 0, sim.Agent(cp))
		if err != nil {
			return nil, err
		}
		var rs rows
		rs.add(w, "blocking", "-", "-", overheadPct(r, rBase), cp.Stats().Rounds)

		type variant struct {
			window   simtime.Duration
			slowdown float64
		}
		variants := pick(o,
			[]variant{
				{2 * simtime.Millisecond, 1.0},  // instantaneous background, free
				{4 * simtime.Millisecond, 1.25}, // 2x stretch, 25% interference
				{8 * simtime.Millisecond, 1.25},
				{8 * simtime.Millisecond, 1.5},
			},
			[]variant{{4 * simtime.Millisecond, 1.25}})
		for _, v := range variants {
			nb, err := checkpoint.NewNonBlockingCoordinated(checkpoint.NonBlockingParams{
				Params: params, Window: v.window, Slowdown: v.slowdown})
			if err != nil {
				return nil, err
			}
			r, err := simulate(o, net, base, sd, 0, sim.Agent(nb))
			if err != nil {
				return nil, err
			}
			rs.add(w, "non-blocking", v.window.String(), v.slowdown,
				overheadPct(r, rBase), nb.Stats().Rounds)
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("non-blocking charges no quiesce or gate; interference = (slowdown-1) during window")
	return []*report.Table{t}, nil
}
