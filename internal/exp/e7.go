package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/failure"
	"checkpointsim/internal/model"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E7Recovery compares the protocols under injected failures across a
// per-node MTBF sweep: coordinated checkpointing with global rollback
// against uncoordinated (staggered, with logging) with single-rank log
// replay. Each uses its own Daly-optimal interval for the configuration.
//
// One sweep point = one MTBF; all three protocol runs in a point share the
// point's RNG stream, so they see identical failure clocks and differ only
// in victims and recovery costs. The failure-free baseline is agent-free
// and therefore seed-insensitive; it is computed once and shared.
func E7Recovery(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	iters := pick(o, 120, 50)
	const (
		write   = 2 * simtime.Millisecond
		restart = 2 * simtime.Millisecond
	)
	logp := checkpoint.LogParams{Alpha: 500 * simtime.Nanosecond, BetaNsPerByte: 0.1}
	mtbfs := pick(o,
		[]simtime.Duration{2 * simtime.Second, 4 * simtime.Second, 8 * simtime.Second, 16 * simtime.Second},
		[]simtime.Duration{2 * simtime.Second, 8 * simtime.Second})

	t := report.NewTable("E7: runtime under failures vs per-node MTBF (stencil2d)",
		"node-MTBF", "protocol", "τ", "failures", "makespan", "overhead%", "lost-work")

	base, err := buildProg("stencil2d", ranks, iters, ms(1), 4096, o.Seed)
	if err != nil {
		return nil, errf("E7", err)
	}
	rBase, err := simulate(o, net, base, o.Seed, 0)
	if err != nil {
		return nil, errf("E7", err)
	}

	err = sweep(t, o, "E7", mtbfs, func(i int, mtbf simtime.Duration) (rows, error) {
		sd := pointSeed(o, "E7", i)
		sys := float64(mtbf.Seconds()) / float64(ranks)
		tau := simtime.FromSeconds(model.DalyInterval(write.Seconds(), sys))
		if tau <= 0 {
			tau = write * 2
		}
		var rs rows

		// Coordinated + global rollback.
		cp, err := checkpoint.NewCoordinated(checkpoint.Params{Interval: tau, Write: write})
		if err != nil {
			return nil, err
		}
		injG, err := failure.NewInjector(failure.Config{
			MTBF: mtbf, Restart: restart, Kind: failure.RollbackGlobal}, cp)
		if err != nil {
			return nil, err
		}
		// One program serves all three protocol runs of this point: the spec
		// and seed are identical and engines never mutate a program.
		prog, err := buildProg("stencil2d", ranks, iters, ms(1), 4096, sd)
		if err != nil {
			return nil, err
		}
		rG, err := simulate(o, net, prog, sd, simtime.Time(300*simtime.Second),
			sim.Agent(cp), sim.Agent(injG))
		if err != nil {
			return nil, err
		}
		rs.add(mtbf.String(), "coordinated+rollback", tau.String(), len(injG.Events()),
			simtime.Duration(rG.Makespan).String(), overheadPct(rG, rBase),
			injG.TotalLost().String())

		// Uncoordinated + local replay.
		up, err := checkpoint.NewUncoordinated(checkpoint.Params{Interval: tau, Write: write},
			checkpoint.Staggered, logp)
		if err != nil {
			return nil, err
		}
		injL, err := failure.NewInjector(failure.Config{
			MTBF: mtbf, Restart: restart, ReplaySpeedup: 2, Kind: failure.ReplayLocal}, up)
		if err != nil {
			return nil, err
		}
		rL, err := simulate(o, net, prog, sd, simtime.Time(300*simtime.Second),
			sim.Agent(up), sim.Agent(injL))
		if err != nil {
			return nil, err
		}
		rs.add(mtbf.String(), "uncoordinated+replay", tau.String(), len(injL.Events()),
			simtime.Duration(rL.Makespan).String(), overheadPct(rL, rBase),
			injL.TotalLost().String())

		// Hierarchical + cluster rollback: the middle ground.
		hp, err := checkpoint.NewHierarchical(checkpoint.Params{Interval: tau, Write: write},
			ranks/8, logp)
		if err != nil {
			return nil, err
		}
		injC, err := failure.NewInjector(failure.Config{
			MTBF: mtbf, Restart: restart, ReplaySpeedup: 2, Kind: failure.RollbackCluster}, hp)
		if err != nil {
			return nil, err
		}
		rC, err := simulate(o, net, prog, sd, simtime.Time(300*simtime.Second),
			sim.Agent(hp), sim.Agent(injC))
		if err != nil {
			return nil, err
		}
		rs.add(mtbf.String(), "hierarchical+cluster", tau.String(), len(injC.Events()),
			simtime.Duration(rC.Makespan).String(), overheadPct(rC, rBase),
			injC.TotalLost().String())
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("same seed per row-pair: identical failure clocks, different victims/costs")
	return []*report.Table{t}, nil
}
