package exp

import (
	"testing"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/collective"
	"checkpointsim/internal/failure"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/model"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/stats"
)

// The simulator implements the LogGOPS model, so a lone one-way message
// must cost exactly the closed form: SendCPU + Wire + RecvCPU for eager
// transfers, plus an RTS/CTS exchange of zero-byte wires for rendezvous.
// This is E1a's comparison as a hard oracle (0% tolerance) rather than a
// reported column.
func TestPointToPointMatchesLogGOPS(t *testing.T) {
	o := DefaultOptions()
	o.Validate = true
	net := o.net()
	for _, s := range []int64{1, 8, 512, 4096, 32 * 1024, 64 * 1024, 64*1024 + 1, 256 * 1024, 1 << 20} {
		b := goal.NewBuilder(2)
		b.Send(0, 1, 0, s)
		b.Recv(1, 0, 0, s)
		prog, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		r, err := simulate(o, net, prog, 1, 0)
		if err != nil {
			t.Fatalf("%d bytes: %v", s, err)
		}
		var want simtime.Duration
		if net.Eager(s) {
			want = net.SendCPU(s) + net.Wire(s) + net.RecvCPU(s)
		} else {
			want = net.Overhead + net.Wire(0) + // RTS
				net.Overhead + net.Wire(0) + // CTS
				net.SendCPU(s) + net.Wire(s) + net.RecvCPU(s)
		}
		if got := simtime.Duration(r.Makespan); got != want {
			t.Errorf("%d bytes (eager=%v): simulated %v, LogGOPS closed form %v",
				s, net.Eager(s), got, want)
		}
	}
}

// Tree collectives must complete no faster than the depth lower bound
// (ratio ≥ 1 up to the barrier's zero-byte leaves) and within a small
// factor of it — the slack is endpoint serialization (o, g) the bound
// ignores. E1b reports the ratio; here it is asserted.
func TestCollectivesWithinDepthBound(t *testing.T) {
	o := DefaultOptions()
	o.Validate = true
	net := o.net()
	const cb = 8
	hop := net.SendCPU(cb) + net.Wire(cb) + net.RecvCPU(cb)
	makers := []struct {
		name  string
		build func(b *goal.Builder)
	}{
		{"bcast", func(b *goal.Builder) { collective.Bcast(b, 0, nil, 0, cb) }},
		{"barrier", func(b *goal.Builder) { collective.Barrier(b, nil, 0) }},
		{"allreduce", func(b *goal.Builder) { collective.Allreduce(b, nil, 0, cb) }},
	}
	for _, p := range []int{2, 4, 16, 64, 256} {
		for _, m := range makers {
			b := goal.NewBuilder(p)
			m.build(b)
			prog, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			r, err := simulate(o, net, prog, 1, 0)
			if err != nil {
				t.Fatalf("%s P=%d: %v", m.name, p, err)
			}
			lb := simtime.Duration(model.TreeDepth(p)) * hop
			ratio := float64(r.Makespan) / float64(lb)
			// The barrier's leaf messages carry zero payload while the bound
			// prices cb bytes per hop, hence the sliver below 1.
			if ratio < 0.99 || ratio > 1.6 {
				t.Errorf("%s P=%d: sim %v vs depth bound %v (ratio %.4f) outside [0.99, 1.6]",
					m.name, p, simtime.Duration(r.Makespan), lb, ratio)
			}
		}
	}
}

// Under failures with global rollback, the simulated optimum must sit
// within ±20% of Daly's τ_opt — computed, as EXPERIMENTS.md's E6 analysis
// establishes, from the *effective* per-checkpoint cost: the measured
// round span (write + coordination + quiesce idle), not the raw write
// time Daly is naively fed. The sweep mirrors E6 (P=16, δ=10ms, R=10ms,
// θ_sys=250ms) with common random numbers so every interval faces the
// same failure clocks.
//
// The runtime curve is shallow near its minimum, so the oracle is phrased
// over the near-optimal plateau (means within 5% of the best) rather than
// a bare argmin: the self-consistent effective-Daly interval must fall
// within ±20% of some plateau point, and its achieved runtime within 20%
// of the best. A third check pins the documented failure mode of the
// naive interval: checkpointing at half the raw τ_Daly must cost well
// over the optimum.
func TestSimulatedOptimumNearDaly(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps many replicated failure runs")
	}
	o := DefaultOptions()
	net := o.net()
	const (
		ranks   = 16
		write   = 10 * simtime.Millisecond
		restart = 10 * simtime.Millisecond
		iters   = 300
	)
	nodeMTBF := 4 * simtime.Second
	sysMTBF := float64(nodeMTBF) / float64(ranks) / 1e9
	tauDaly := model.DalyInterval(write.Seconds(), sysMTBF)
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	factors := []float64{0.5, 0.7, 1.0, 1.3, 1.6, 2.0, 2.5}

	type point struct {
		tau          simtime.Duration
		mean, tauEff float64 // seconds
	}
	points := make([]point, 0, len(factors))
	for _, f := range factors {
		tau := simtime.FromSeconds(tauDaly * f)
		var spans []float64
		var roundSpanSum simtime.Duration
		var roundCount int64
		for _, seed := range seeds {
			cp, err := checkpoint.NewCoordinated(checkpoint.Params{Interval: tau, Write: write})
			if err != nil {
				t.Fatal(err)
			}
			inj, err := failure.NewInjector(failure.Config{
				MTBF: nodeMTBF, Restart: restart, Kind: failure.RollbackGlobal}, cp)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := buildProg("stencil2d", ranks, iters, ms(1), 4096, o.Seed)
			if err != nil {
				t.Fatal(err)
			}
			r, err := simulate(o, net, prog, seed, simtime.Time(300*simtime.Second),
				sim.Agent(cp), sim.Agent(inj))
			if err != nil {
				t.Fatal(err)
			}
			spans = append(spans, simtime.Duration(r.Makespan).Seconds())
			roundSpanSum += cp.Stats().RoundSpan
			roundCount += cp.Stats().Rounds
		}
		if roundCount == 0 {
			t.Fatalf("factor %.2f: no completed rounds", f)
		}
		effDelta := (roundSpanSum / simtime.Duration(roundCount)).Seconds()
		points = append(points, point{
			tau:    tau,
			mean:   stats.Mean(spans),
			tauEff: model.DalyInterval(effDelta, sysMTBF),
		})
	}

	best := points[0].mean
	for _, p := range points[1:] {
		if p.mean < best {
			best = p.mean
		}
	}

	// Self-consistent effective optimum: the swept interval closest to the
	// Daly interval its own measured round span implies.
	target := points[0]
	for _, p := range points[1:] {
		if d := p.tau.Seconds() - p.tauEff; d*d < (target.tau.Seconds()-target.tauEff)*(target.tau.Seconds()-target.tauEff) {
			target = p
		}
	}

	inPlateau := false
	for _, p := range points {
		if p.mean > 1.05*best {
			continue
		}
		if r := p.tau.Seconds() / target.tauEff; r >= 0.8 && r <= 1.2 {
			inPlateau = true
		}
	}
	if !inPlateau {
		t.Errorf("no near-optimal interval within ±20%% of effective τ_Daly = %.1fms (raw τ_Daly = %.1fms)",
			target.tauEff*1000, tauDaly*1000)
	}
	if target.mean > 1.2*best {
		t.Errorf("runtime at effective τ_Daly is %.3fs, optimum is %.3fs — over 20%% apart",
			target.mean, best)
	}
	if points[0].mean < 1.5*best {
		t.Errorf("over-checkpointing at 0.5·τ_Daly costs %.3fs vs optimum %.3fs — expected a clear penalty",
			points[0].mean, best)
	}
}
