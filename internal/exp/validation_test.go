package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Every quick experiment must run clean under the trace-conformance
// checker (any invariant violation fails the run), and validation must be
// a pure observer: the rendered tables stay byte-identical to the
// unvalidated goldens.
func TestValidatedQuickSweepMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs quick experiments under validation")
	}
	for _, id := range allIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			o := DefaultOptions()
			o.Quick = true
			o.Validate = true
			got := renderOpts(t, id, o)
			path := filepath.Join("testdata", strings.ToLower(id)+"_quick_seed42.golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s validated output drifted from golden %s — validation perturbed results",
					id, path)
			}
		})
	}
}
