package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/workload"
)

// E13Straggler measures how checkpointing protocols interact with static
// load imbalance: one rank computes slower by a sweep of factors. On a
// coupled code the machine already runs at the straggler's pace, so the
// other ranks have idle slack every iteration — slack that an aligned
// uncoordinated write can hide inside, while a coordinated round's quiesce
// must wait for the straggler and a staggered write adds a second,
// out-of-phase stall.
func E13Straggler(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	iters := pick(o, 60, 25)
	factors := pick(o, []float64{1.0, 1.5, 2.0, 4.0}, []float64{1.0, 2.0})
	params := checkpoint.Params{Interval: 10 * simtime.Millisecond, Write: 2 * simtime.Millisecond}

	build := func(factor float64) (*sim.Result, error) {
		p, err := workload.Straggler(workload.StragglerConfig{
			Base: workload.Base{Ranks: ranks, Iterations: iters,
				Compute: simtime.Millisecond, Seed: o.Seed},
			HaloBytes: 4096,
			Factor:    factor,
			SlowRank:  ranks / 2,
		})
		if err != nil {
			return nil, err
		}
		return simulate(net, p, o.Seed, 0)
	}
	buildWith := func(factor float64, proto checkpoint.Protocol) (*sim.Result, error) {
		p, err := workload.Straggler(workload.StragglerConfig{
			Base: workload.Base{Ranks: ranks, Iterations: iters,
				Compute: simtime.Millisecond, Seed: o.Seed},
			HaloBytes: 4096,
			Factor:    factor,
			SlowRank:  ranks / 2,
		})
		if err != nil {
			return nil, err
		}
		return simulate(net, p, o.Seed, 0, sim.Agent(proto))
	}

	t := report.NewTable("E13: checkpointing under a straggler (τ=10ms, δ=2ms)",
		"straggler-x", "protocol", "makespan", "overhead-vs-own-baseline%")
	for _, f := range factors {
		rBase, err := build(f)
		if err != nil {
			return nil, errf("E13", err)
		}
		protos := func() []checkpoint.Protocol {
			cp, _ := checkpoint.NewCoordinated(params)
			ua, _ := checkpoint.NewUncoordinated(params, checkpoint.Aligned, checkpoint.LogParams{})
			us, _ := checkpoint.NewUncoordinated(params, checkpoint.Staggered, checkpoint.LogParams{})
			return []checkpoint.Protocol{cp, ua, us}
		}()
		for _, proto := range protos {
			r, err := buildWith(f, proto)
			if err != nil {
				return nil, errf("E13", err)
			}
			t.AddRow(f, proto.Name(), simtime.Duration(r.Makespan).String(),
				overheadPct(r, rBase))
		}
	}
	t.AddNote("baseline for each row is the straggler run without checkpointing: the column isolates protocol cost under imbalance")
	return []*report.Table{t}, nil
}
