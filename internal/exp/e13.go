package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/workload"
)

// E13Straggler measures how checkpointing protocols interact with static
// load imbalance: one rank computes slower by a sweep of factors. On a
// coupled code the machine already runs at the straggler's pace, so the
// other ranks have idle slack every iteration — slack that an aligned
// uncoordinated write can hide inside, while a coordinated round's quiesce
// must wait for the straggler and a staggered write adds a second,
// out-of-phase stall. One sweep point = one straggler factor.
func E13Straggler(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	iters := pick(o, 60, 25)
	factors := pick(o, []float64{1.0, 1.5, 2.0, 4.0}, []float64{1.0, 2.0})
	params := checkpoint.Params{Interval: 10 * simtime.Millisecond, Write: 2 * simtime.Millisecond}

	run := func(factor float64, seed uint64, agents ...sim.Agent) (*sim.Result, error) {
		p, err := workload.Straggler(workload.StragglerConfig{
			Base: workload.Base{Ranks: ranks, Iterations: iters,
				Compute: simtime.Millisecond, Seed: seed},
			HaloBytes: 4096,
			Factor:    factor,
			SlowRank:  ranks / 2,
		})
		if err != nil {
			return nil, err
		}
		return simulate(o, net, p, seed, 0, agents...)
	}

	t := report.NewTable("E13: checkpointing under a straggler (τ=10ms, δ=2ms)",
		"straggler-x", "protocol", "makespan", "overhead-vs-own-baseline%")
	err := sweep(t, o, "E13", factors, func(i int, f float64) (rows, error) {
		sd := pointSeed(o, "E13", i)
		rBase, err := run(f, sd)
		if err != nil {
			return nil, err
		}
		protos := func() []checkpoint.Protocol {
			cp, _ := checkpoint.NewCoordinated(params)
			ua, _ := checkpoint.NewUncoordinated(params, checkpoint.Aligned, checkpoint.LogParams{})
			us, _ := checkpoint.NewUncoordinated(params, checkpoint.Staggered, checkpoint.LogParams{})
			return []checkpoint.Protocol{cp, ua, us}
		}()
		var rs rows
		for _, proto := range protos {
			r, err := run(f, sd, sim.Agent(proto))
			if err != nil {
				return nil, err
			}
			rs.add(f, proto.Name(), simtime.Duration(r.Makespan).String(),
				overheadPct(r, rBase))
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("baseline for each row is the straggler run without checkpointing: the column isolates protocol cost under imbalance")
	return []*report.Table{t}, nil
}
