package exp

import (
	"strings"
	"testing"

	"regexp"
	"strconv"

	"checkpointsim/internal/cache"
	"checkpointsim/internal/report"
)

// render concatenates rendered tables, as cmd/sweep and the service do.
func render(tables []*report.Table) string {
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// Same seed, same schedule — and prefixes agree, so a campaign can extend
// its budget without rescheduling. Different seeds must diverge.
func TestScheduleDeterminism(t *testing.T) {
	s := DefaultCampaignSpace()
	a, err := s.Schedule(42, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Schedule(42, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across equal-seed schedules: %v vs %v", i, a[i], b[i])
		}
	}
	prefix, err := s.Schedule(42, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prefix {
		if prefix[i] != a[i] {
			t.Fatalf("Schedule(42,10)[%d] != Schedule(42,50)[%d]: prefixes must agree", i, i)
		}
	}
	c, err := s.Schedule(43, 50)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// The schedule never emits a contradictory point, and every point carries
// a valid axis assignment.
func TestScheduleValidPoints(t *testing.T) {
	sched, err := DefaultCampaignSpace().Schedule(7, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range sched {
		if err := sc.Validate(); err != nil {
			t.Errorf("point %d (%s): %v", i, sc.ID(), err)
		}
		if sc.FailureLaw != "none" && sc.Protocol == "none" {
			t.Errorf("point %d injects failures with no protocol", i)
		}
	}
}

func TestCampaignSpaceValidation(t *testing.T) {
	base := DefaultCampaignSpace()
	cases := []struct {
		name   string
		mut    func(*CampaignSpace)
		errHas string
	}{
		{"empty workloads", func(s *CampaignSpace) { s.Workloads = nil }, "empty workload axis"},
		{"unknown workload", func(s *CampaignSpace) { s.Workloads = []string{"quicksort"} }, "unknown workload"},
		{"empty scales", func(s *CampaignSpace) { s.Scales = nil }, "empty scale axis"},
		{"bad scale", func(s *CampaignSpace) { s.Scales = []int{1} }, "bad scale"},
		{"empty protocols", func(s *CampaignSpace) { s.Protocols = nil }, "empty protocol axis"},
		{"unknown protocol", func(s *CampaignSpace) { s.Protocols = []string{"paxos"} }, "unknown protocol"},
		{"empty laws", func(s *CampaignSpace) { s.FailureLaws = nil }, "empty failure law axis"},
		{"unknown law", func(s *CampaignSpace) { s.FailureLaws = []string{"uniform"} }, "unknown failure law"},
		{"empty tiers", func(s *CampaignSpace) { s.StorageTiers = nil }, "empty storage tier axis"},
		{"unknown tier", func(s *CampaignSpace) { s.StorageTiers = []string{"tape"} }, "unknown storage tier"},
		{"empty noise", func(s *CampaignSpace) { s.NoiseLevels = nil }, "empty noise axis"},
		{"unknown noise", func(s *CampaignSpace) { s.NoiseLevels = []string{"loud"} }, "unknown noise"},
		{"failures without protocols", func(s *CampaignSpace) {
			s.Protocols = []string{"none"}
			s.FailureLaws = []string{"exp"}
		}, "need a checkpoint protocol"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", s)
			}
			if !strings.Contains(err.Error(), tc.errHas) {
				t.Errorf("error %q does not mention %q", err, tc.errHas)
			}
			if _, err := s.Schedule(1, 1); err == nil {
				t.Error("Schedule accepted an invalid space")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default space invalid: %v", err)
	}
	if _, err := base.Schedule(1, -1); err == nil {
		t.Error("Schedule accepted a negative point count")
	}
}

// Every scenario in a sampled schedule runs clean through the full stack
// (validator on, storage checked) and reruns byte-identically.
func TestScenarioRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	sched, err := DefaultCampaignSpace().Schedule(42, 12)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	for i, sc := range sched {
		i, sc := i, sc
		t.Run(sc.ID(), func(t *testing.T) {
			t.Parallel()
			first, err := sc.Run(o)
			if err != nil {
				t.Fatalf("point %d: %v", i, err)
			}
			again, err := sc.Run(o)
			if err != nil {
				t.Fatalf("point %d rerun: %v", i, err)
			}
			if render(first) != render(again) {
				t.Fatalf("point %d reruns differ:\n--- first ---\n%s--- again ---\n%s",
					i, render(first), render(again))
			}
		})
	}
}

// Scenario cache keys separate every axis and collapse nothing: two
// scenarios differing in any field get different keys, and equal scenarios
// get equal keys.
func TestScenarioCacheFields(t *testing.T) {
	base := Scenario{Workload: "stencil2d", Ranks: 16, Protocol: "coordinated",
		FailureLaw: "none", Storage: "none", Noise: "none", Seed: 1}
	net := DefaultOptions().Net
	key := func(sc Scenario) string { return cache.Key("v", sc.CacheFields(net)) }
	if key(base) != key(base) {
		t.Fatal("equal scenarios produced different keys")
	}
	muts := []func(*Scenario){
		func(s *Scenario) { s.Workload = "cg" },
		func(s *Scenario) { s.Ranks = 32 },
		func(s *Scenario) { s.Protocol = "partner" },
		func(s *Scenario) { s.FailureLaw = "exp" },
		func(s *Scenario) { s.Storage = "pfs" },
		func(s *Scenario) { s.Noise = "poisson" },
		func(s *Scenario) { s.Seed = 2 },
	}
	seen := map[string]bool{key(base): true}
	for i, mut := range muts {
		sc := base
		mut(&sc)
		k := key(sc)
		if seen[k] {
			t.Errorf("mutation %d did not change the cache key", i)
		}
		seen[k] = true
	}
}

// ParseScenario inverts Scenario.ID exactly, with and without the
// "campaign:" prefix, and rejects malformed specs.
func TestParseScenario(t *testing.T) {
	sched, err := DefaultCampaignSpace().Schedule(11, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range sched {
		got, err := ParseScenario(sc.ID())
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", sc.ID(), err)
		}
		if got != sc {
			t.Fatalf("round trip %q: got %+v want %+v", sc.ID(), got, sc)
		}
	}
	if _, err := ParseScenario("sweep/p8/none/none/none/none@3"); err != nil {
		t.Errorf("bare spec without prefix rejected: %v", err)
	}
	bad := []string{
		"",
		"campaign:sweep/p8/none/none/none/none",  // no seed
		"campaign:sweep/8/none/none/none/none@1", // no p prefix
		"campaign:sweep/p8/none/none@1",          // too few parts
		"campaign:sweep/pten/none/none/none/none@1",
		"campaign:sweep/p8/none/none/none/none@notanumber",
		"campaign:sweep/p8/raft/none/none/none@1", // fails validation
	}
	for _, spec := range bad {
		if _, err := ParseScenario(spec); err == nil {
			t.Errorf("ParseScenario(%q) accepted", spec)
		}
	}
}

// Scenario.Validate rejects malformed single points (service-boundary
// input) with the same vocabulary as the space validation.
func TestScenarioValidate(t *testing.T) {
	good := Scenario{Workload: "sweep", Ranks: 8, Protocol: "none",
		FailureLaw: "none", Storage: "none", Noise: "none"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := good
	bad.FailureLaw = "exp"
	if err := bad.Validate(); err == nil {
		t.Error("failures-without-protocol scenario accepted")
	}
	bad = good
	bad.Protocol = "raft"
	if err := bad.Validate(); err == nil {
		t.Error("unknown protocol accepted")
	}
	bad = good
	bad.Ranks = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ranks accepted")
	}
}

// metricValue pulls one metric's value out of a rendered scenario table.
func metricValue(t *testing.T, rendered, metric string) int64 {
	t.Helper()
	m := regexp.MustCompile(metric + `\s+(-?\d+)`).FindStringSubmatch(rendered)
	if m == nil {
		t.Fatalf("metric %s missing from table:\n%s", metric, rendered)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// The resilience protocols ride the protocol axis: the space advertises
// them, replication refuses an all-odd scale axis, and scheduled
// replication points always land on even scales.
func TestCampaignResilienceAxis(t *testing.T) {
	for _, p := range []string{"replication", "cic"} {
		if !contains(CampaignProtocols, p) {
			t.Errorf("%s missing from the protocol axis", p)
		}
	}
	odd := DefaultCampaignSpace()
	odd.Scales = []int{9, 27}
	if err := odd.Validate(); err == nil || !strings.Contains(err.Error(), "even scale") {
		t.Errorf("all-odd scales with replication: err = %v", err)
	}
	if err := (Scenario{Workload: "sweep", Ranks: 9, Protocol: "replication",
		FailureLaw: "none", Storage: "none", Noise: "none"}).Validate(); err == nil {
		t.Error("odd-rank replication scenario accepted")
	}
	mixed := DefaultCampaignSpace()
	mixed.Scales = []int{8, 9, 16}
	sched, err := mixed.Schedule(5, 400)
	if err != nil {
		t.Fatal(err)
	}
	var repl, cic int
	for i, sc := range sched {
		switch sc.Protocol {
		case "replication":
			repl++
			if sc.Ranks%2 != 0 {
				t.Errorf("point %d: replication scheduled on odd scale %d", i, sc.Ranks)
			}
		case "cic":
			cic++
		}
	}
	if repl == 0 || cic == 0 {
		t.Errorf("400 points drew replication %d times and cic %d times — axis not sampled", repl, cic)
	}
}

// A replication scenario absorbs its failures by takeover and mirrors
// traffic; a CIC scenario forces checkpoints. Both pass the unconditional
// scenario validation inside Run.
func TestCampaignResilienceScenariosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	o := DefaultOptions()
	// Seed 1 draws failures that land on primary ranks, so takeover is
	// exercised non-vacuously (replica-rank failures need no takeover).
	replSc := Scenario{Workload: "stencil2d", Ranks: 16, Protocol: "replication",
		FailureLaw: "exp", Storage: "none", Noise: "none", Seed: 1}
	tables, err := replSc.Run(o)
	if err != nil {
		t.Fatalf("%s: %v", replSc.ID(), err)
	}
	out := render(tables)
	if metricValue(t, out, "mirrored_messages") == 0 {
		t.Error("replication scenario mirrored nothing")
	}
	if metricValue(t, out, "heartbeats") == 0 {
		t.Error("replication scenario sent no heartbeats")
	}
	if metricValue(t, out, "failures") == 0 {
		t.Error("no failures injected — takeover untested")
	}
	if metricValue(t, out, "takeovers") == 0 {
		t.Error("primary failures occurred but no replica took over")
	}

	cicSc := Scenario{Workload: "transpose", Ranks: 16, Protocol: "cic",
		FailureLaw: "none", Storage: "pfs", Noise: "none", Seed: 4}
	tables, err = cicSc.Run(o)
	if err != nil {
		t.Fatalf("%s: %v", cicSc.ID(), err)
	}
	out = render(tables)
	if metricValue(t, out, "ckpt_writes") == 0 {
		t.Error("CIC scenario wrote no checkpoints")
	}
	if metricValue(t, out, "ckpt_forced") == 0 {
		t.Error("CIC scenario forced no checkpoints on the all-to-all workload")
	}
}
