package exp

import (
	"testing"

	"checkpointsim/internal/simtime"
)

// E18 oracle bounds: a replication run with failures can never beat the
// failure-free replication layout (takeovers only stall), and the quick
// grid must show the crossover the study predicts — replication wins the
// failure-rich cells, checkpointing wins the failure-poor ones.
func TestE18OracleBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs quick experiments")
	}
	o := DefaultOptions()
	o.Quick = true
	cells, err := e18Grid(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("empty grid")
	}
	var replWins, ckptWins int
	for _, c := range cells {
		if !c.capR && c.repl < c.replBase {
			t.Errorf("P=%d θ=%v: replication with failures (%v) beat its failure-free floor (%v)",
				c.ranks, c.mtbf, simtime.Duration(c.repl), simtime.Duration(c.replBase))
		}
		if c.capR {
			t.Errorf("P=%d θ=%v: replication capped — takeover could not keep up", c.ranks, c.mtbf)
		}
		switch c.winner {
		case "replication":
			replWins++
		case "coordinated", "uncoordinated":
			ckptWins++
		}
		// The harshest cells: replication must win where coordinated
		// checkpointing has already diverged past the cap.
		if c.capC && c.winner != "replication" && !c.capR {
			t.Errorf("P=%d θ=%v: coordinated diverged but %s won", c.ranks, c.mtbf, c.winner)
		}
	}
	if replWins == 0 {
		t.Error("replication never won a cell — no crossover")
	}
	if ckptWins == 0 {
		t.Error("checkpointing never won a cell — no crossover")
	}
	// MTBF-normalized scale ordering: at the harshest MTBF replication wins,
	// at the mildest a checkpointing protocol does.
	for _, c := range cells {
		if c.mtbf == 100*simtime.Millisecond && c.winner != "replication" {
			t.Errorf("P=%d θ=100ms: want replication, got %s", c.ranks, c.winner)
		}
		if c.mtbf == simtime.Second && c.winner == "replication" {
			t.Errorf("P=%d θ=1s: replication should lose the failure-poor cell", c.ranks)
		}
	}
}

// E19 oracle bounds: the CIC schedule can only add checkpoints on top of
// the basic timer — total writes are bounded below by the basic-interval
// count of the protocol-free run — forcing is damped monotonically by the
// lag threshold, and forced load grows with communication intensity.
func TestE19OracleBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs quick experiments")
	}
	o := DefaultOptions()
	o.Quick = true
	cells, err := e19Grid(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("empty grid")
	}
	// Constants mirrored from e19Grid (quick mode).
	const (
		ranks = 16
		tau   = 2 * simtime.Millisecond
		write = 500 * simtime.Microsecond
	)
	forcedAtLag := map[string]map[int]int64{}
	for _, c := range cells {
		if c.makespan < c.base {
			t.Errorf("%s lag=%d: checkpointed run (%v) beat the protocol-free baseline (%v)",
				c.workload, c.lag, simtime.Duration(c.makespan), simtime.Duration(c.base))
		}
		// Each rank's basic timer fires at least once per (τ+δ) of the
		// baseline makespan; checkpointing only stretches the run further.
		minBasic := int64(ranks) * (int64(c.base) / int64(tau+write))
		if c.basic+c.forced < minBasic {
			t.Errorf("%s lag=%d: %d checkpoints, below the basic-interval floor %d",
				c.workload, c.lag, c.basic+c.forced, minBasic)
		}
		if c.forced < 0 || c.basic <= 0 {
			t.Errorf("%s lag=%d: degenerate counts basic=%d forced=%d", c.workload, c.lag, c.basic, c.forced)
		}
		if forcedAtLag[c.workload] == nil {
			forcedAtLag[c.workload] = map[int]int64{}
		}
		forcedAtLag[c.workload][c.lag] = c.forced
	}
	for wl, byLag := range forcedAtLag {
		if byLag[2] > byLag[1] || byLag[4] > byLag[2] {
			t.Errorf("%s: forcing not damped by lag: lag1=%d lag2=%d lag4=%d",
				wl, byLag[1], byLag[2], byLag[4])
		}
	}
	// Forced load grows with communication intensity at the Z-path-free
	// threshold: cells arrive workload-major ordered by construction, and
	// the workload list is ordered by msgs/rank/τ.
	var lastIntensity float64 = -1
	var lastForced int64 = -1
	for _, c := range cells {
		if c.lag != 1 {
			continue
		}
		if c.msgsPerTau < lastIntensity {
			t.Errorf("workload order not by intensity: %s at %.1f after %.1f",
				c.workload, c.msgsPerTau, lastIntensity)
		}
		if c.forced < lastForced {
			t.Errorf("%s: forced %d fell below the less-communicating predecessor's %d",
				c.workload, c.forced, lastForced)
		}
		lastIntensity, lastForced = c.msgsPerTau, c.forced
	}
	if lastForced == 0 {
		t.Error("no workload forced a checkpoint — amplification axis vacuous")
	}
}
