package exp

import (
	"errors"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/failure"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/model"
	"checkpointsim/internal/report"
	"checkpointsim/internal/runner"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// e18Point is one cell of the (scale × MTBF) grid.
type e18Point struct {
	ranks int
	mtbf  simtime.Duration
}

// e18Cell is the outcome of one grid cell, exposed for the oracle-bound
// acceptance tests.
type e18Cell struct {
	ranks                int
	mtbf                 simtime.Duration
	tau                  simtime.Duration
	failures             int
	coord, uncoord, repl simtime.Time
	capC, capU, capR     bool
	replBase             simtime.Time // failure-free replication layout
	winner               string
}

const e18Cap = simtime.Time(60 * simtime.Second)

// E18Replication maps the three-way protocol crossover on the
// (scale × per-node MTBF) grid: coordinated checkpointing with global
// rollback, uncoordinated (staggered, logged) with local replay, and
// replication. The replication run holds total resources and total work
// equal: the application runs on P/2 ranks for 2× the iterations, embedded
// in the same P-rank machine (goal.Widen), with the other half serving as
// replicas. Replication pays the halved machine and message duplication
// always; checkpointing pays rollback per failure — so checkpointing wins
// when failures are rare and replication wins once the MTBF-normalized
// scale P/θ makes rework dominate. Cells where a protocol never settles
// under the 60s time cap are reported as capped and lose to any settled
// run.
func E18Replication(o Options) ([]*report.Table, error) {
	cells, err := e18Grid(o)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E18: replication crossover grid (stencil2d, δ=2ms, equal work and resources)",
		"P", "node-MTBF", "τ", "failures", "coord-makespan", "uncoord-makespan", "repl-makespan", "winner")
	for _, c := range cells {
		t.AddRow(c.ranks, c.mtbf.String(), c.tau.String(), c.failures,
			e18CellStr(c.coord, c.capC), e18CellStr(c.uncoord, c.capU),
			e18CellStr(c.repl, c.capR), c.winner)
	}
	t.AddNote("replication: P/2 app ranks × 2× iterations widened to P (degree 1); no rollback, heartbeat detection + takeover per failure")
	t.AddNote("same seed per cell: all three protocols see identical failure clocks")
	return []*report.Table{t}, nil
}

// e18Grid runs the sweep and returns the cells in grid order
// (scale-major, MTBF-minor).
func e18Grid(o Options) ([]e18Cell, error) {
	net := o.net()
	scales := pick(o, []int{16, 32, 64}, []int{8, 16})
	mtbfs := pick(o,
		[]simtime.Duration{100 * simtime.Millisecond, 400 * simtime.Millisecond,
			1600 * simtime.Millisecond, 6400 * simtime.Millisecond},
		[]simtime.Duration{100 * simtime.Millisecond, simtime.Second})
	iters := pick(o, 60, 30)
	const (
		write   = 2 * simtime.Millisecond
		restart = 2 * simtime.Millisecond
	)
	logp := checkpoint.LogParams{Alpha: 500 * simtime.Nanosecond, BetaNsPerByte: 0.1}

	var points []e18Point
	for _, p := range scales {
		for _, m := range mtbfs {
			points = append(points, e18Point{ranks: p, mtbf: m})
		}
	}

	cells, err := runner.MapCtx(o.ctx(), o.Jobs, points, func(i int, pt e18Point) (e18Cell, error) {
		sd := pointSeed(o, "E18", i)
		p := pt.ranks
		sys := float64(pt.mtbf.Seconds()) / float64(p)
		tau := simtime.FromSeconds(model.DalyInterval(write.Seconds(), sys))
		if tau <= 0 {
			tau = write * 2
		}

		// The checkpointing protocols run the full-width application; the
		// replication run embeds a half-width application doing 2× the
		// iterations in the same machine. Programs are immutable and shared
		// across their runs.
		prog, err := buildProg("stencil2d", p, iters, ms(1), 4096, sd)
		if err != nil {
			return e18Cell{}, err
		}
		half, err := buildProg("stencil2d", p/2, 2*iters, ms(1), 4096, sd)
		if err != nil {
			return e18Cell{}, err
		}
		wide, err := goal.Widen(half, p)
		if err != nil {
			return e18Cell{}, err
		}

		cell := e18Cell{ranks: p, mtbf: pt.mtbf, tau: tau}
		run := func(pr *goal.Program, agents ...sim.Agent) (simtime.Time, bool, error) {
			r, err := simulate(o, net, pr, sd, e18Cap, agents...)
			if errors.Is(err, sim.ErrCapExceeded) {
				return e18Cap, true, nil
			}
			if err != nil {
				return 0, false, err
			}
			return r.Makespan, false, nil
		}

		// Failure-free replication layout: the duplication and heartbeat
		// overhead alone. Every replication run with failures must finish at
		// or above this floor (oracle bound for the tests).
		rpb, err := checkpoint.NewReplication(checkpoint.ReplicationParams{})
		if err != nil {
			return e18Cell{}, err
		}
		cell.replBase, _, err = run(wide, sim.Agent(rpb))
		if err != nil {
			return e18Cell{}, err
		}

		// Coordinated + global rollback.
		cp, err := checkpoint.NewCoordinated(checkpoint.Params{Interval: tau, Write: write})
		if err != nil {
			return e18Cell{}, err
		}
		injG, err := failure.NewInjector(failure.Config{
			MTBF: pt.mtbf, Restart: restart, Kind: failure.RollbackGlobal}, cp)
		if err != nil {
			return e18Cell{}, err
		}
		cell.coord, cell.capC, err = run(prog, sim.Agent(cp), sim.Agent(injG))
		if err != nil {
			return e18Cell{}, err
		}
		cell.failures = len(injG.Events())

		// Uncoordinated + local replay.
		up, err := checkpoint.NewUncoordinated(checkpoint.Params{Interval: tau, Write: write},
			checkpoint.Staggered, logp)
		if err != nil {
			return e18Cell{}, err
		}
		injL, err := failure.NewInjector(failure.Config{
			MTBF: pt.mtbf, Restart: restart, ReplaySpeedup: 2, Kind: failure.ReplayLocal}, up)
		if err != nil {
			return e18Cell{}, err
		}
		cell.uncoord, cell.capU, err = run(prog, sim.Agent(up), sim.Agent(injL))
		if err != nil {
			return e18Cell{}, err
		}

		// Replication: replica takeover instead of rollback.
		rp, err := checkpoint.NewReplication(checkpoint.ReplicationParams{})
		if err != nil {
			return e18Cell{}, err
		}
		injR, err := failure.NewInjector(failure.Config{
			MTBF: pt.mtbf, Restart: restart, Kind: failure.TakeoverReplica}, rp)
		if err != nil {
			return e18Cell{}, err
		}
		cell.repl, cell.capR, err = run(wide, sim.Agent(rp), sim.Agent(injR))
		if err != nil {
			return e18Cell{}, err
		}

		cell.winner = e18Winner(cell)
		return cell, nil
	})
	if err != nil {
		return nil, errf("E18", err)
	}
	return cells, nil
}

// e18Winner names the protocol with the smallest settled makespan; capped
// runs lose to any settled run.
func e18Winner(c e18Cell) string {
	type cand struct {
		name   string
		mk     simtime.Time
		capped bool
	}
	cands := []cand{
		{"coordinated", c.coord, c.capC},
		{"uncoordinated", c.uncoord, c.capU},
		{"replication", c.repl, c.capR},
	}
	best := -1
	for i, cd := range cands {
		if cd.capped {
			continue
		}
		if best < 0 || cd.mk < cands[best].mk {
			best = i
		}
	}
	if best < 0 {
		return "none (all capped)"
	}
	return cands[best].name
}

// e18CellStr renders one makespan cell, marking diverged runs.
func e18CellStr(mk simtime.Time, capped bool) string {
	if capped {
		return ">" + simtime.Duration(e18Cap).String() + " (capped)"
	}
	return simtime.Duration(mk).String()
}
