package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E5Logging isolates the sender-based message-logging tax: checkpoint
// writes are disabled (infinite interval is approximated with a huge one
// and zero write time) so the measured overhead is purely the per-send CPU
// penalty and its propagation. Latency-bound codes (cg, small messages)
// respond to α; bandwidth-bound codes (transpose, large blocks) respond to β.
// One sweep point = one workload, covering the full (α, β) grid.
func E5Logging(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	iters := pick(o, 30, 10)
	type wl struct {
		name  string
		bytes int64
	}
	wls := pick(o,
		[]wl{{"cg", 512}, {"stencil2d", 8192}, {"transpose", 32 * 1024}},
		[]wl{{"cg", 512}, {"stencil2d", 8192}})
	alphas := []simtime.Duration{0, simtime.Microsecond}
	betas := pick(o, []float64{0, 0.1, 0.3, 1.0}, []float64{0, 0.3})
	idle := checkpoint.Params{Interval: simtime.Hour, Write: 0}

	t := report.NewTable("E5: message-logging overhead (no checkpoint writes)",
		"workload", "msg-bytes", "alpha", "beta(ns/B)", "overhead%", "logged-msgs", "logged-MB")
	err := sweep(t, o, "E5", wls, func(i int, w wl) (rows, error) {
		sd := pointSeed(o, "E5", i)
		base, err := buildProg(w.name, ranks, iters, ms(1), w.bytes, sd)
		if err != nil {
			return nil, err
		}
		rBase, err := simulate(o, net, base, sd, 0)
		if err != nil {
			return nil, err
		}
		var rs rows
		for _, a := range alphas {
			for _, b := range betas {
				if a == 0 && b == 0 {
					continue
				}
				up, err := checkpoint.NewUncoordinated(idle, checkpoint.Staggered,
					checkpoint.LogParams{Alpha: a, BetaNsPerByte: b})
				if err != nil {
					return nil, err
				}
				// Same spec and seed as base: reuse the immutable program.
				r, err := simulate(o, net, base, sd, 0, sim.Agent(up))
				if err != nil {
					return nil, err
				}
				st := up.Stats()
				rs.add(w.name, w.bytes, a.String(), b, overheadPct(r, rBase),
					st.LoggedMessages, float64(st.LoggedBytes)/(1<<20))
			}
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	return []*report.Table{t}, nil
}
