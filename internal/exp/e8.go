package exp

import (
	"errors"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/failure"
	"checkpointsim/internal/model"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E8Crossover maps the (scale × logging overhead) grid and reports which
// protocol wins each cell: by simulation (with failures) at simulable
// scales, and by the first-order analytic projection both there and at the
// extreme scales the paper extrapolates to. The expected shape: coordinated
// wins at small P and expensive logging; uncoordinated wins as P grows.
//
// One sweep point = one scale P; every β row within a scale shares the
// point's RNG stream (common random numbers, as in E6). The coordinated run
// does not depend on β, so it is simulated once per scale and paired against
// each β's uncoordinated run under identical failure clocks — winner flips
// along the β axis then come from logging cost, never from seed luck. That
// pairing matters most at P=256, where the system MTBF (~16ms) puts the
// coordinated protocol in a heavy-tailed rollback regime: a run that fails
// to settle within the time cap is reported as a capped cell (the protocol
// diverged at that scale) rather than aborting the sweep. The analytic
// projection is closed-form and stays serial.
func E8Crossover(o Options) ([]*report.Table, error) {
	if err := o.Storage.Validate(); err != nil {
		return nil, errf("E8", err)
	}
	net := o.net()
	scales := pick(o, []int{16, 64, 256}, []int{16, 64})
	betas := pick(o, []float64{0, 0.2, 0.5, 1.0}, []float64{0, 0.5})
	iters := pick(o, 80, 30)
	const (
		write   = 2 * simtime.Millisecond
		restart = 2 * simtime.Millisecond
		mtbf    = 4 * simtime.Second // per node
		capT    = simtime.Time(300 * simtime.Second)
	)

	t := report.NewTable("E8a: simulated crossover grid (stencil2d, δ=2ms, θ=4s/node)",
		"P", "beta(ns/B)", "coord-makespan", "uncoord-makespan", "sim-winner")
	err := sweep(t, o, "E8", scales, func(i int, p int) (rows, error) {
		sd := pointSeed(o, "E8", i)
		sys := mtbf.Seconds() / float64(p)
		tau := simtime.FromSeconds(model.DalyInterval(write.Seconds(), sys))

		// One immutable program serves every protocol variant at this scale:
		// the coordinated run and each β's uncoordinated run share it.
		prog, err := buildProg("stencil2d", p, iters, ms(1), 4096, sd)
		if err != nil {
			return nil, err
		}

		// run simulates one protocol variant at this scale under the
		// point's seed, treating a cap abort as a diverged (capped) run.
		run := func(agents ...sim.Agent) (makespan simtime.Time, capped bool, err error) {
			r, err := simulate(o, net, prog, sd, capT, agents...)
			if errors.Is(err, sim.ErrCapExceeded) {
				return capT, true, nil
			}
			if err != nil {
				return 0, false, err
			}
			return r.Makespan, false, nil
		}
		cellStr := func(mk simtime.Time, capped bool) string {
			if capped {
				return ">" + simtime.Duration(capT).String() + " (capped)"
			}
			return simtime.Duration(mk).String()
		}

		cp, err := checkpoint.NewCoordinated(checkpoint.Params{Interval: tau, Write: write,
			Store: storeFor(o)})
		if err != nil {
			return nil, err
		}
		injG, err := failure.NewInjector(failure.Config{
			MTBF: mtbf, Restart: restart, Kind: failure.RollbackGlobal}, cp)
		if err != nil {
			return nil, err
		}
		mkC, capC, err := run(sim.Agent(cp), sim.Agent(injG))
		if err != nil {
			return nil, err
		}

		var rs rows
		for _, beta := range betas {
			up, err := checkpoint.NewUncoordinated(checkpoint.Params{Interval: tau, Write: write,
				Store: storeFor(o)}, checkpoint.Staggered, checkpoint.LogParams{BetaNsPerByte: beta})
			if err != nil {
				return nil, err
			}
			injL, err := failure.NewInjector(failure.Config{
				MTBF: mtbf, Restart: restart, ReplaySpeedup: 2, Kind: failure.ReplayLocal}, up)
			if err != nil {
				return nil, err
			}
			mkU, capU, err := run(sim.Agent(up), sim.Agent(injL))
			if err != nil {
				return nil, err
			}
			winner := "coordinated"
			switch {
			case capC && capU:
				winner = "neither (capped)"
			case capC:
				winner = "uncoordinated"
			case capU:
				// keep coordinated
			case mkU < mkC:
				winner = "uncoordinated"
			}
			rs.add(p, beta, cellStr(mkC, capC), cellStr(mkU, capU), winner)
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}

	// Analytic projection to extreme scale.
	mt := report.NewTable("E8b: analytic crossover projection (δ=60s, R=120s, θ=5y/node)",
		"P", "log-overhead", "eff-coordinated", "eff-uncoordinated", "model-winner")
	projScales := []int{1024, 16384, 131072, 1048576}
	for _, p := range projScales {
		for _, lo := range []float64{0.02, 0.10, 0.30} {
			pr := model.ProtocolProjection{
				Nodes:       p,
				NodeMTBF:    5 * 365.25 * 86400,
				Write:       60,
				Restart:     120,
				CoordDelay:  model.CoordinationDelay(p, net, 64),
				LogOverhead: lo,
			}
			ce, ue := model.CoordinatedEfficiency(pr), model.UncoordinatedEfficiency(pr)
			winner := "coordinated"
			if ue > ce {
				winner = "uncoordinated"
			}
			mt.AddRow(p, lo, ce, ue, winner)
		}
	}
	return []*report.Table{t, mt}, nil
}
