package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/failure"
	"checkpointsim/internal/model"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E8Crossover maps the (scale × logging overhead) grid and reports which
// protocol wins each cell: by simulation (with failures) at simulable
// scales, and by the first-order analytic projection both there and at the
// extreme scales the paper extrapolates to. The expected shape: coordinated
// wins at small P and expensive logging; uncoordinated wins as P grows.
func E8Crossover(o Options) ([]*report.Table, error) {
	net := o.net()
	scales := pick(o, []int{16, 64, 256}, []int{16, 64})
	betas := pick(o, []float64{0, 0.2, 0.5, 1.0}, []float64{0, 0.5})
	iters := pick(o, 80, 30)
	const (
		write   = 2 * simtime.Millisecond
		restart = 2 * simtime.Millisecond
		mtbf    = 4 * simtime.Second // per node
	)

	t := report.NewTable("E8a: simulated crossover grid (stencil2d, δ=2ms, θ=4s/node)",
		"P", "beta(ns/B)", "coord-makespan", "uncoord-makespan", "sim-winner")
	for _, p := range scales {
		sys := mtbf.Seconds() / float64(p)
		tau := simtime.FromSeconds(model.DalyInterval(write.Seconds(), sys))
		for _, beta := range betas {
			cp, err := checkpoint.NewCoordinated(checkpoint.Params{Interval: tau, Write: write})
			if err != nil {
				return nil, errf("E8", err)
			}
			injG, err := failure.NewInjector(failure.Config{
				MTBF: mtbf, Restart: restart, Kind: failure.RollbackGlobal}, cp)
			if err != nil {
				return nil, errf("E8", err)
			}
			prog, err := buildProg("stencil2d", p, iters, ms(1), 4096, o.Seed)
			if err != nil {
				return nil, errf("E8", err)
			}
			rC, err := simulate(net, prog, o.Seed, simtime.Time(300*simtime.Second),
				sim.Agent(cp), sim.Agent(injG))
			if err != nil {
				return nil, errf("E8", err)
			}

			up, err := checkpoint.NewUncoordinated(checkpoint.Params{Interval: tau, Write: write},
				checkpoint.Staggered, checkpoint.LogParams{BetaNsPerByte: beta})
			if err != nil {
				return nil, errf("E8", err)
			}
			injL, err := failure.NewInjector(failure.Config{
				MTBF: mtbf, Restart: restart, ReplaySpeedup: 2, Kind: failure.ReplayLocal}, up)
			if err != nil {
				return nil, errf("E8", err)
			}
			prog2, err := buildProg("stencil2d", p, iters, ms(1), 4096, o.Seed)
			if err != nil {
				return nil, errf("E8", err)
			}
			rU, err := simulate(net, prog2, o.Seed, simtime.Time(300*simtime.Second),
				sim.Agent(up), sim.Agent(injL))
			if err != nil {
				return nil, errf("E8", err)
			}
			winner := "coordinated"
			if rU.Makespan < rC.Makespan {
				winner = "uncoordinated"
			}
			t.AddRow(p, beta, simtime.Duration(rC.Makespan).String(),
				simtime.Duration(rU.Makespan).String(), winner)
		}
	}

	// Analytic projection to extreme scale.
	mt := report.NewTable("E8b: analytic crossover projection (δ=60s, R=120s, θ=5y/node)",
		"P", "log-overhead", "eff-coordinated", "eff-uncoordinated", "model-winner")
	projScales := []int{1024, 16384, 131072, 1048576}
	for _, p := range projScales {
		for _, lo := range []float64{0.02, 0.10, 0.30} {
			pr := model.ProtocolProjection{
				Nodes:       p,
				NodeMTBF:    5 * 365.25 * 86400,
				Write:       60,
				Restart:     120,
				CoordDelay:  model.CoordinationDelay(p, net, 64),
				LogOverhead: lo,
			}
			ce, ue := model.CoordinatedEfficiency(pr), model.UncoordinatedEfficiency(pr)
			winner := "coordinated"
			if ue > ce {
				winner = "uncoordinated"
			}
			mt.AddRow(p, lo, ce, ue, winner)
		}
	}
	return []*report.Table{t, mt}, nil
}
