package exp

import (
	"context"
	"errors"
	"testing"
	"time"

	"checkpointsim/internal/cache"
	"checkpointsim/internal/network"
	"checkpointsim/internal/storage"
)

func keyOf(id string, o Options) string { return cache.Key("test", o.CacheFields(id)) }

// Every knob that can change a completed run's rows must move the key.
func TestCacheFieldsCoverResultKnobs(t *testing.T) {
	base := DefaultOptions()
	mutations := map[string]func(*Options){
		"seed":              func(o *Options) { o.Seed = 43 },
		"quick":             func(o *Options) { o.Quick = true },
		"validate":          func(o *Options) { o.Validate = true },
		"net preset":        func(o *Options) { o.Net = network.EthernetClassParams() },
		"net latency":       func(o *Options) { o.Net = base.Net; o.Net.Latency++ },
		"net gap/byte":      func(o *Options) { o.Net = base.Net; o.Net.GapPerByte *= 2 },
		"net bisection":     func(o *Options) { o.Net = base.Net; o.Net.BisectionBytesPerSec = 1e9 },
		"storage aggregate": func(o *Options) { o.Storage.AggregateBytesPerSec = 1e9 },
		"storage writer":    func(o *Options) { o.Storage.PerWriterBytesPerSec = 1e9 },
		"storage node":      func(o *Options) { o.Storage.NodeBytesPerSec = 1e9 },
		"storage ranks":     func(o *Options) { o.Storage.RanksPerNode = 4 },
	}
	ref := keyOf("E1", base)
	for name, mutate := range mutations {
		o := base
		mutate(&o)
		if keyOf("E1", o) == ref {
			t.Errorf("mutating %s did not change the cache key", name)
		}
	}
	if keyOf("E2", base) == ref {
		t.Error("experiment id does not partition the key space")
	}
}

// Knobs that provably cannot change rows must not fragment the key space:
// worker count (determinism guarantee), telemetry, and cancellation.
func TestCacheFieldsIgnoreExecutionKnobs(t *testing.T) {
	base := DefaultOptions()
	ref := keyOf("E1", base)

	var events int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := base
	o.Jobs = 7
	o.Events = &events
	o.Ctx = ctx
	if keyOf("E1", o) != ref {
		t.Error("Jobs/Events/Ctx leaked into the cache key; identical configs at different parallelism would miss")
	}
}

// Net is addressed as resolved: the zero value and an explicit
// DefaultParams() run identically, so they must hit the same entry.
func TestCacheFieldsResolveNetDefault(t *testing.T) {
	zero := Options{Seed: 42}
	explicit := Options{Seed: 42, Net: network.DefaultParams()}
	if keyOf("E1", zero) != keyOf("E1", explicit) {
		t.Error("zero Net and DefaultParams() produce different keys for identical runs")
	}
}

// The storage zero value (legacy fixed-duration path) must key differently
// from any constrained store.
func TestCacheFieldsStorageZeroDistinct(t *testing.T) {
	base := DefaultOptions()
	constrained := base
	constrained.Storage = storage.Params{AggregateBytesPerSec: 64e9}
	if keyOf("E17", base) == keyOf("E17", constrained) {
		t.Error("constrained and unconstrained storage share a key")
	}
}

// A dead context aborts an experiment before any sweep point runs, and the
// error is the context's.
func TestExperimentContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := DefaultOptions()
	o.Quick = true
	o.Ctx = ctx
	var events int64
	o.Events = &events
	_, err := E1Validation(o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if events != 0 {
		t.Errorf("%d simulation events ran under a dead context", events)
	}
}

// A timeout that expires mid-sweep surfaces context.DeadlineExceeded: the
// worker pool stops dequeuing points rather than running the sweep out.
func TestExperimentContextTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick experiment")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	o := DefaultOptions()
	o.Quick = true
	o.Ctx = ctx
	if _, err := E8Crossover(o); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
