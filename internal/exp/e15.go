package exp

import (
	"checkpointsim/internal/noise"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E15Resonance sweeps the *granularity* of interruptions at a fixed duty
// cycle — the classic noise-resonance experiment of this research lineage.
// High-frequency, low-amplitude noise is absorbed by slack in the
// communication schedule; the same total CPU theft delivered as rare, long
// detours (which is exactly what checkpoint writes are) lands on the
// critical path and is amplified. Checkpointing is the worst-shaped noise.
// One sweep point = one workload across every noise period.
func E15Resonance(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	iters := pick(o, 160, 100)
	const duty = 0.025
	periods := pick(o,
		[]simtime.Duration{100 * simtime.Microsecond, simtime.Millisecond,
			10 * simtime.Millisecond, 50 * simtime.Millisecond},
		[]simtime.Duration{100 * simtime.Microsecond, 10 * simtime.Millisecond})
	workloads := pick(o, []string{"ep", "stencil2d", "cg"}, []string{"ep", "stencil2d"})

	t := report.NewTable("E15: noise-shape resonance at fixed 2.5% duty cycle",
		"workload", "period", "event-duration", "overhead%", "amplification")
	err := sweep(t, o, "E15", workloads, func(i int, w string) (rows, error) {
		sd := pointSeed(o, "E15", i)
		base, err := buildProg(w, ranks, iters, ms(1), 4096, sd)
		if err != nil {
			return nil, err
		}
		rBase, err := simulate(o, net, base, sd, 0)
		if err != nil {
			return nil, err
		}
		var rs rows
		for _, period := range periods {
			dur := period.Scale(duty)
			inj, err := noise.NewInjector(noise.Config{Period: period, Duration: dur})
			if err != nil {
				return nil, err
			}
			// Same spec and seed as base: reuse the immutable program.
			r, err := simulate(o, net, base, sd, 0, sim.Agent(inj))
			if err != nil {
				return nil, err
			}
			ov := overheadPct(r, rBase)
			rs.add(w, period.String(), dur.String(), ov, ov/(duty*100))
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("same CPU theft per rank in every row; only the event shape changes")
	return []*report.Table{t}, nil
}
