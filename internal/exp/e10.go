package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E10Hierarchical sweeps the hybrid protocol's cluster size between the
// uncoordinated (cluster = 1) and fully coordinated (cluster = P) extremes.
// The logged fraction falls as clusters grow while coordination cost rises;
// the sweet spot depends on how much of the workload's traffic stays inside
// a cluster. One sweep point = one workload across all cluster sizes.
func E10Hierarchical(o Options) ([]*report.Table, error) {
	net := o.net()
	ranks := pick(o, 64, 16)
	iters := pick(o, 60, 20)
	clusters := pick(o, []int{1, 4, 8, 16, 64}, []int{1, 4, 16})
	workloads := pick(o, []string{"stencil2d", "transpose"}, []string{"stencil2d"})
	params := checkpoint.Params{Interval: 10 * simtime.Millisecond, Write: simtime.Millisecond}
	logp := checkpoint.LogParams{Alpha: 500 * simtime.Nanosecond, BetaNsPerByte: 0.2}

	t := report.NewTable("E10: hierarchical cluster-size sweep (τ=10ms, δ=1ms, log β=0.2)",
		"workload", "cluster", "overhead%", "logged-frac", "rounds", "ctl-msgs")
	err := sweep(t, o, "E10", workloads, func(i int, w string) (rows, error) {
		sd := pointSeed(o, "E10", i)
		base, err := buildProg(w, ranks, iters, ms(1), 4096, sd)
		if err != nil {
			return nil, err
		}
		rBase, err := simulate(o, net, base, sd, 0)
		if err != nil {
			return nil, err
		}
		var rs rows
		for _, c := range clusters {
			if c > ranks {
				continue
			}
			hp, err := checkpoint.NewHierarchical(params, c, logp)
			if err != nil {
				return nil, err
			}
			// Same spec and seed as base: reuse the immutable program.
			r, err := simulate(o, net, base, sd, 0, sim.Agent(hp))
			if err != nil {
				return nil, err
			}
			st := hp.Stats()
			frac := 0.0
			if r.Metrics.AppMessages > 0 {
				frac = float64(st.LoggedMessages) / float64(r.Metrics.AppMessages)
			}
			rs.add(w, c, overheadPct(r, rBase), frac, st.Rounds, r.Metrics.CtlMessages)
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	return []*report.Table{t}, nil
}
