package exp

import (
	"strings"
	"testing"

	"checkpointsim/internal/report"
)

// renderTables flattens tables to one string for byte comparison.
func renderTables(ts []*report.Table) string {
	var sb strings.Builder
	for _, t := range ts {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// resumeCadence picks a SnapshotEvery from a probed total event count:
// coarse enough that replaying every snapshot's remainder stays a small
// multiple of the base cost, fine enough that the largest simulations take
// several snapshots each.
func resumeCadence(totalEvents int64) int64 {
	c := totalEvents / 40
	if c < 200 {
		c = 200
	}
	return c
}

// TestCrashResumeExperiments is the crash–resume differential harness over
// the full experiment set: every quick experiment runs with SnapshotEvery
// set, which makes each of its simulations snapshot at safe boundaries,
// replay the remainder from every snapshot in a fresh engine, and require
// the resumed result and trace suffix to be byte-identical to the
// uninterrupted run (see verifyResume). On top of that inline proof, the
// rendered tables must be byte-identical to a plain run's — so any state
// the snapshot misses that leaks into table-visible protocol stats fails
// here even if the Result and trace agree.
func TestCrashResumeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("crash–resume differential suite is not short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var events int64
			plain := DefaultOptions()
			plain.Quick = true
			plain.Validate = true
			plain.Events = &events
			want, err := e.Run(plain)
			if err != nil {
				t.Fatalf("%s plain run: %v", e.ID, err)
			}
			var snaps int64
			o := DefaultOptions()
			o.Quick = true
			o.Validate = true
			o.SnapshotEvery = resumeCadence(events)
			o.Snapshots = &snaps
			got, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s verified run (cadence %d): %v", e.ID, o.SnapshotEvery, err)
			}
			if snaps == 0 {
				t.Fatalf("%s: no snapshots taken at cadence %d over %d events — nothing was verified",
					e.ID, o.SnapshotEvery, events)
			}
			if g, w := renderTables(got), renderTables(want); g != w {
				t.Errorf("%s: tables diverged between snapshot-verified and plain runs\nverified:\n%s\nplain:\n%s", e.ID, g, w)
			}
			t.Logf("%s: %d snapshots verified (cadence %d over %d events)", e.ID, snaps, o.SnapshotEvery, events)
		})
	}
}

// TestCrashResumeCampaign runs the differential harness over a seeded
// campaign schedule: each scenario self-verifies every snapshot, and its
// rendered table — which, unlike experiment tables, embeds protocol and
// storage counters — must be byte-identical to the plain run's.
func TestCrashResumeCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("crash–resume differential suite is not short")
	}
	sched, err := DefaultCampaignSpace().Schedule(7, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range sched {
		i, sc := i, sc
		t.Run(sc.ID(), func(t *testing.T) {
			t.Parallel()
			var events int64
			plain := DefaultOptions()
			plain.Events = &events
			want, err := sc.Run(plain)
			if err != nil {
				t.Fatalf("point %d plain run: %v", i, err)
			}
			cadence := events / 5
			if cadence < 100 {
				cadence = 100
			}
			var snaps int64
			o := DefaultOptions()
			o.SnapshotEvery = cadence
			o.Snapshots = &snaps
			got, err := sc.Run(o)
			if err != nil {
				t.Fatalf("point %d verified run (cadence %d): %v", i, cadence, err)
			}
			if snaps == 0 {
				t.Fatalf("point %d (%s): no snapshots taken at cadence %d over %d events",
					i, sc.ID(), cadence, events)
			}
			if g, w := renderTables(got), renderTables(want); g != w {
				t.Errorf("point %d: tables diverged between snapshot-verified and plain runs\nverified:\n%s\nplain:\n%s", i, g, w)
			}
			t.Logf("point %d (%s): %d snapshots verified (cadence %d over %d events)",
				i, sc.ID(), snaps, cadence, events)
		})
	}
}
