package exp

import (
	"fmt"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/runner"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// e19Cell is one (workload, lag) outcome, exposed for the oracle-bound
// acceptance tests.
type e19Cell struct {
	workload      string
	lag           int
	msgsPerTau    float64 // app messages per rank per checkpoint interval
	basic, forced int64
	makespan      simtime.Time
	base          simtime.Time // agent-free baseline for the workload
}

// E19CIC measures forced-checkpoint amplification under index-based
// communication-induced checkpointing. Each rank checkpoints on an
// independent local timer (the basic schedule) and piggybacks its checkpoint
// index on every message; a receiver whose index lags a message's by the
// threshold takes a forced checkpoint before processing it. The forced load
// is pure communication structure: workloads are ordered by messages per
// rank per interval, and the amplification column (forced/basic) grows with
// that intensity and shrinks as the lag threshold relaxes the Z-path-free
// rule. Runs are failure-free — the experiment isolates the protocol's
// overhead, not its recovery.
func E19CIC(o Options) ([]*report.Table, error) {
	cells, err := e19Grid(o)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E19: CIC forced-checkpoint amplification (τ=2ms, δ=500µs, failure-free)",
		"workload", "lag", "msgs/rank/τ", "basic", "forced", "amplification", "makespan", "overhead%")
	for _, c := range cells {
		amp := "0.00"
		if c.basic > 0 {
			amp = fmt.Sprintf("%.2f", float64(c.forced)/float64(c.basic))
		}
		ovh := 100 * (float64(c.makespan)/float64(c.base) - 1)
		t.AddRow(c.workload, c.lag, fmt.Sprintf("%.1f", c.msgsPerTau),
			c.basic, c.forced, amp, simtime.Duration(c.makespan).String(),
			fmt.Sprintf("%.1f", ovh))
	}
	t.AddNote("lag = index-lag threshold; 1 is the classic Z-path-free rule, larger thresholds trade forced load for weaker guarantees")
	t.AddNote("indices ride in message headers: the only protocol cost is the forced writes themselves")
	return []*report.Table{t}, nil
}

// e19Grid runs the sweep and returns cells ordered workload-major,
// lag-minor. One sweep point = one workload; every lag row within it shares
// the point's seed and its agent-free baseline.
func e19Grid(o Options) ([]e19Cell, error) {
	net := o.net()
	ranks := pick(o, 32, 16)
	iters := pick(o, 60, 30)
	lags := []int{1, 2, 4}
	workloads := []string{"ep", "sweep", "stencil2d", "stencil3d", "transpose"}
	const (
		tau   = 2 * simtime.Millisecond
		write = 500 * simtime.Microsecond
		grain = 500 * simtime.Microsecond
	)

	out, err := runner.MapCtx(o.ctx(), o.Jobs, workloads, func(i int, wl string) ([]e19Cell, error) {
		sd := pointSeed(o, "E19", i)
		prog, err := buildProg(wl, ranks, iters, grain, 4096, sd)
		if err != nil {
			return nil, err
		}
		rBase, err := simulate(o, net, prog, sd, 0)
		if err != nil {
			return nil, err
		}
		// Communication intensity: application messages per rank per
		// checkpoint interval, measured on the protocol-free run.
		intervals := float64(rBase.Makespan) / float64(tau)
		msgsPerTau := 0.0
		if intervals > 0 {
			msgsPerTau = float64(rBase.Metrics.AppMessages) / float64(ranks) / intervals
		}

		var cells []e19Cell
		for _, lag := range lags {
			cic, err := checkpoint.NewCIC(checkpoint.Params{Interval: tau, Write: write,
				Store: storeFor(o)}, lag, checkpoint.Staggered)
			if err != nil {
				return nil, err
			}
			r, err := simulate(o, net, prog, sd, 0, sim.Agent(cic))
			if err != nil {
				return nil, err
			}
			st := cic.Stats()
			cells = append(cells, e19Cell{
				workload:   wl,
				lag:        lag,
				msgsPerTau: msgsPerTau,
				basic:      st.Writes - st.Forced,
				forced:     st.Forced,
				makespan:   r.Makespan,
				base:       rBase.Makespan,
			})
		}
		return cells, nil
	})
	if err != nil {
		return nil, errf("E19", err)
	}
	var cells []e19Cell
	for _, cs := range out {
		cells = append(cells, cs...)
	}
	return cells, nil
}
