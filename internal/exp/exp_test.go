package exp

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("expected 19 experiments, have %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if !strings.HasPrefix(e.Bench, "Benchmark"+e.ID) {
			t.Errorf("experiment %q bench name %q does not match its ID", e.ID, e.Bench)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		got, ok := ByID(e.ID)
		if !ok || got.Title != e.Title {
			t.Errorf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.net().Latency == 0 {
		t.Error("default net not set")
	}
	var zero Options
	if zero.net().Latency == 0 {
		t.Error("zero options should default the network")
	}
}

// Each experiment must run in Quick mode and produce non-empty tables.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take seconds each")
	}
	o := DefaultOptions()
	o.Quick = true
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.NumRows() == 0 {
					t.Errorf("%s table %q is empty", e.ID, tb.Title)
				}
				if tb.String() == "" {
					t.Errorf("%s table %q renders empty", e.ID, tb.Title)
				}
			}
		})
	}
}

func TestE1PointToPointExact(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	tables, err := E1Validation(o)
	if err != nil {
		t.Fatal(err)
	}
	// Every point-to-point row must show ~zero error: the simulator
	// implements the model it is being compared to.
	s := tables[0].String()
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "eager") || strings.Contains(line, "rndzv") {
			fields := strings.Fields(line)
			errPct := fields[len(fields)-1]
			if errPct != "0" && errPct != "-0" {
				t.Errorf("nonzero model error in row: %s", line)
			}
		}
	}
}

func TestE2EPAbsorbsNoise(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	tables, err := E2Propagation(o)
	if err != nil {
		t.Fatal(err)
	}
	// The EP rows must have amplification close to 1 (absorption), and at
	// least one communicating workload must exceed it.
	var epAmp, maxOther float64
	for _, line := range strings.Split(tables[0].String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 5 {
			continue
		}
		var amp float64
		if _, err := fmtSscan(fields[len(fields)-1], &amp); err != nil {
			continue
		}
		switch fields[0] {
		case "ep":
			if amp > epAmp {
				epAmp = amp
			}
		case "stencil2d", "sweep", "stencil3d", "cg", "transpose":
			if amp > maxOther {
				maxOther = amp
			}
		}
	}
	if epAmp == 0 || maxOther == 0 {
		t.Fatalf("could not parse amplifications:\n%s", tables[0])
	}
	if epAmp > 1.4 {
		t.Errorf("EP amplification %v, want ~1 (absorption)", epAmp)
	}
	if maxOther <= epAmp {
		t.Errorf("no communicating workload amplified noise: ep=%v max=%v", epAmp, maxOther)
	}
}

// fmtSscan wraps fmt.Sscan for the parse-or-skip idiom above.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// parseLastFloat extracts the float in the given column (from the right) of
// table rows whose first field matches.
func rowsOf(table string, first string) [][]string {
	var out [][]string
	for _, line := range strings.Split(table, "\n") {
		fields := strings.Fields(line)
		if len(fields) > 0 && fields[0] == first {
			out = append(out, fields)
		}
	}
	return out
}

func TestE9AlignedBeatsStaggeredOnCoupledCode(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	tables, err := E9Stagger(o)
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].String()
	var aligned, staggered float64
	for _, f := range rowsOf(s, "stencil2d") {
		var v float64
		if _, err := fmt.Sscan(f[2], &v); err != nil {
			continue
		}
		switch f[1] {
		case "aligned":
			aligned = v
		case "staggered":
			staggered = v
		}
	}
	if aligned == 0 || staggered == 0 {
		t.Fatalf("could not parse overheads:\n%s", s)
	}
	if aligned >= staggered {
		t.Errorf("aligned %.1f%% should beat staggered %.1f%% on stencil2d", aligned, staggered)
	}
}

func TestE11NonBlockingBeatsBlocking(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	tables, err := E11NonBlocking(o)
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].String()
	var blocking, nonblocking float64
	for _, f := range rowsOf(s, "stencil2d") {
		var v float64
		if _, err := fmt.Sscan(f[len(f)-2], &v); err != nil {
			continue
		}
		switch f[1] {
		case "blocking":
			blocking = v
		case "non-blocking":
			nonblocking = v
		}
	}
	if blocking == 0 {
		t.Fatalf("could not parse blocking row:\n%s", s)
	}
	if nonblocking >= blocking {
		t.Errorf("non-blocking %.1f%% should beat blocking %.1f%%", nonblocking, blocking)
	}
}

func TestE15ResonanceMonotoneForCoupledCode(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	tables, err := E15Resonance(o)
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].String()
	var amps []float64
	for _, f := range rowsOf(s, "stencil2d") {
		var v float64
		if _, err := fmt.Sscan(f[len(f)-1], &v); err != nil {
			continue
		}
		amps = append(amps, v)
	}
	if len(amps) < 2 {
		t.Fatalf("could not parse amplifications:\n%s", s)
	}
	// Coarser interruptions amplify at least as much as finer ones.
	if amps[len(amps)-1] <= amps[0] {
		t.Errorf("coarse amplification %v not above fine %v", amps[len(amps)-1], amps[0])
	}
}

func TestE3SyncIdleDominatesTreeLatency(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	tables, err := E3Coordination(o)
	if err != nil {
		t.Fatal(err)
	}
	s := tables[0].String()
	// For every scale row, quiesce > tree-model (columns 3 and 4).
	found := 0
	for _, line := range strings.Split(s, "\n") {
		f := strings.Fields(line)
		if len(f) < 7 || (f[0] != "16" && f[0] != "64") {
			continue
		}
		found++
		// Parse durations loosely: sync-idle (col 5) must not be negative,
		// i.e. must not start with "-" beyond the placeholder.
		if strings.HasPrefix(f[4], "-") && f[4] != "-" {
			t.Errorf("negative sync idle in row: %s", line)
		}
	}
	if found == 0 {
		t.Fatalf("no scale rows parsed:\n%s", s)
	}
}
