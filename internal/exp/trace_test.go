package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusTraces returns the committed trace corpus, keyed by base name.
func corpusTraces(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "traces", "*.goal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed traces under testdata/traces (regenerate with `go run ./cmd/tracegen -corpus internal/exp/testdata/traces`)")
	}
	return paths
}

// renderTrace runs the trace experiment for one corpus file with the
// validator on and returns the rendered tables.
func renderTrace(t *testing.T, path string, jobs int) string {
	t.Helper()
	prog, name, digest, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	e := TraceExperiment(name, prog, digest)
	o := DefaultOptions()
	o.Validate = true
	o.Jobs = jobs
	tables, err := e.Run(o)
	if err != nil {
		t.Fatalf("%s: %v", e.ID, err)
	}
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// Every corpus trace runs end-to-end through the protocol suite with the
// validator on, and its rendered output is pinned to a committed golden —
// the trace-path analogue of TestGoldenQuickSeed42.
func TestTraceCorpusGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol suites")
	}
	for _, path := range corpusTraces(t) {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".goal")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			got := renderTrace(t, path, 0)
			golden := filepath.Join("testdata", "traces", name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden %s\n--- got ---\n%s--- want ---\n%s",
					name, golden, got, want)
			}
		})
	}
}

// Trace runs are scheduling-blind like every other experiment: serial and
// -j 8 renders are byte-identical.
func TestTraceParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol suites")
	}
	path := filepath.Join("testdata", "traces", "sweep_p16.goal")
	serial := renderTrace(t, path, 1)
	parallel := renderTrace(t, path, 8)
	if serial != parallel {
		t.Fatalf("-j 1 and -j 8 trace tables differ:\n--- j1 ---\n%s--- j8 ---\n%s",
			serial, parallel)
	}
}

// The experiment ID is content-addressed: renaming a file changes the name
// half, editing a byte changes the digest half, and the validator rejects
// unbalanced traces at load time.
func TestLoadTrace(t *testing.T) {
	dir := t.TempDir()
	good := "num_ranks 2\nrank 0 {\n a: send 8b to 1 tag 0\n}\nrank 1 {\n b: recv 8b from 0 tag 0\n}\n"
	path := filepath.Join(dir, "tiny.goal")
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, name, digest, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "tiny" {
		t.Errorf("name = %q, want tiny", name)
	}
	if len(digest) != TraceDigestLen {
		t.Errorf("digest %q has length %d, want %d", digest, len(digest), TraceDigestLen)
	}
	if prog.NumRanks != 2 {
		t.Errorf("got %d ranks, want 2", prog.NumRanks)
	}
	e := TraceExperiment(name, prog, digest)
	if want := "trace:tiny@" + digest; e.ID != want {
		t.Errorf("ID = %q, want %q", e.ID, want)
	}

	// One changed byte must change the digest.
	if err := os.WriteFile(path, []byte(good+"# x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, digest2, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if digest2 == digest {
		t.Error("different bytes produced the same digest")
	}

	// Unbalanced traces (send with no matching recv) fail at load.
	bad := filepath.Join(dir, "bad.goal")
	if err := os.WriteFile(bad, []byte("num_ranks 2\nrank 0 {\n a: send 8b to 1 tag 0\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadTraceFile(bad); err == nil {
		t.Error("unbalanced trace loaded without error")
	}
	if _, _, _, err := LoadTraceFile(filepath.Join(dir, "missing.goal")); err == nil {
		t.Error("missing file loaded without error")
	}
}
