package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E4WeakScaling sweeps machine size and reports failure-free checkpointing
// overhead for the coordinated protocol and the three uncoordinated offset
// policies (with a modest logging tax), over a halo-exchange code and an
// allreduce-dominated code. One sweep point = one (workload, scale) cell:
// its baseline and the four protocol runs share the point's RNG stream.
func E4WeakScaling(o Options) ([]*report.Table, error) {
	if err := o.Storage.Validate(); err != nil {
		return nil, errf("E4", err)
	}
	net := o.net()
	scales := pick(o, []int{16, 64, 256, 1024}, []int{16, 64})
	workloads := pick(o, []string{"stencil2d", "cg"}, []string{"stencil2d"})
	params := checkpoint.Params{Interval: 10 * simtime.Millisecond, Write: simtime.Millisecond}
	logp := checkpoint.LogParams{Alpha: 500 * simtime.Nanosecond, BetaNsPerByte: 0.1}
	iters := pick(o, 40, 15)

	type cell struct {
		w string
		p int
	}
	var points []cell
	for _, w := range workloads {
		for _, p := range scales {
			points = append(points, cell{w, p})
		}
	}

	t := report.NewTable("E4: failure-free checkpoint overhead vs scale (τ=10ms, δ=1ms)",
		"workload", "P", "protocol", "makespan", "overhead%", "writes")
	err := sweep(t, o, "E4", points, func(i int, c cell) (rows, error) {
		sd := pointSeed(o, "E4", i)
		base, err := buildProg(c.w, c.p, iters, ms(1), 4096, sd)
		if err != nil {
			return nil, err
		}
		rBase, err := simulate(o, net, base, sd, 0)
		if err != nil {
			return nil, err
		}
		var rs rows
		rs.add(c.w, c.p, "none", simtime.Duration(rBase.Makespan).String(), 0.0, 0)

		// Each protocol simulates separately, so each gets its own store
		// (nil under the default zero storage parameters).
		withStore := func() checkpoint.Params {
			p := params
			p.Store = storeFor(o)
			return p
		}
		protos := func() []checkpoint.Protocol {
			cp, _ := checkpoint.NewCoordinated(withStore())
			ua, _ := checkpoint.NewUncoordinated(withStore(), checkpoint.Aligned, logp)
			us, _ := checkpoint.NewUncoordinated(withStore(), checkpoint.Staggered, logp)
			ur, _ := checkpoint.NewUncoordinated(withStore(), checkpoint.Random, logp)
			return []checkpoint.Protocol{cp, ua, us, ur}
		}()
		for _, proto := range protos {
			// Identical spec and seed — reuse the base program per protocol.
			r, err := simulate(o, net, base, sd, 0, sim.Agent(proto))
			if err != nil {
				return nil, err
			}
			rs.add(c.w, c.p, proto.Name(), simtime.Duration(r.Makespan).String(),
				overheadPct(r, rBase), proto.Stats().Writes)
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("uncoordinated protocols carry logging α=0.5µs, β=0.1ns/B; coordinated pays tree coordination")
	return []*report.Table{t}, nil
}
