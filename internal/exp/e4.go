package exp

import (
	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/report"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// E4WeakScaling sweeps machine size and reports failure-free checkpointing
// overhead for the coordinated protocol and the three uncoordinated offset
// policies (with a modest logging tax), over a halo-exchange code and an
// allreduce-dominated code.
func E4WeakScaling(o Options) ([]*report.Table, error) {
	net := o.net()
	scales := pick(o, []int{16, 64, 256, 1024}, []int{16, 64})
	workloads := pick(o, []string{"stencil2d", "cg"}, []string{"stencil2d"})
	params := checkpoint.Params{Interval: 10 * simtime.Millisecond, Write: simtime.Millisecond}
	logp := checkpoint.LogParams{Alpha: 500 * simtime.Nanosecond, BetaNsPerByte: 0.1}
	iters := pick(o, 40, 15)

	t := report.NewTable("E4: failure-free checkpoint overhead vs scale (τ=10ms, δ=1ms)",
		"workload", "P", "protocol", "makespan", "overhead%", "writes")
	for _, w := range workloads {
		for _, p := range scales {
			base, err := buildProg(w, p, iters, ms(1), 4096, o.Seed)
			if err != nil {
				return nil, errf("E4", err)
			}
			rBase, err := simulate(net, base, o.Seed, 0)
			if err != nil {
				return nil, errf("E4", err)
			}
			t.AddRow(w, p, "none", simtime.Duration(rBase.Makespan).String(), 0.0, 0)

			protos := func() []checkpoint.Protocol {
				cp, _ := checkpoint.NewCoordinated(params)
				ua, _ := checkpoint.NewUncoordinated(params, checkpoint.Aligned, logp)
				us, _ := checkpoint.NewUncoordinated(params, checkpoint.Staggered, logp)
				ur, _ := checkpoint.NewUncoordinated(params, checkpoint.Random, logp)
				return []checkpoint.Protocol{cp, ua, us, ur}
			}()
			for _, proto := range protos {
				prog, err := buildProg(w, p, iters, ms(1), 4096, o.Seed)
				if err != nil {
					return nil, errf("E4", err)
				}
				r, err := simulate(net, prog, o.Seed, 0, sim.Agent(proto))
				if err != nil {
					return nil, errf("E4", err)
				}
				t.AddRow(w, p, proto.Name(), simtime.Duration(r.Makespan).String(),
					overheadPct(r, rBase), proto.Stats().Writes)
			}
		}
	}
	t.AddNote("uncoordinated protocols carry logging α=0.5µs, β=0.1ns/B; coordinated pays tree coordination")
	return []*report.Table{t}, nil
}
