package exp

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden files: go test ./internal/exp -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// renderAll runs one experiment and concatenates its rendered tables —
// everything cmd/sweep prints for it except the wall-clock line.
func renderAll(t *testing.T, id string, jobs int) string {
	t.Helper()
	o := DefaultOptions()
	o.Quick = true
	o.Seed = 42
	o.Jobs = jobs
	return renderOpts(t, id, o)
}

// renderOpts is renderAll with the full option set exposed.
func renderOpts(t *testing.T, id string, o Options) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	tables, err := e.Run(o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// Worker count and scheduling must never leak into results: the rendered
// tables are byte-identical serially, at -j 8, and across repeated
// parallel runs. E2, E4, and E8 cover the three point shapes (per-workload
// baseline groups, (workload, scale) cells, and paired failure runs); E17
// adds the store-routed grid, whose fair-share arbitration must be equally
// scheduling-blind; E18 and E19 add the replication and CIC protocol
// families (capped cells, match-hook forcing).
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs quick experiments")
	}
	for _, id := range []string{"E2", "E4", "E8", "E17", "E18", "E19"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := renderAll(t, id, 1)
			parallel := renderAll(t, id, 8)
			if serial != parallel {
				t.Fatalf("%s: -j 1 and -j 8 tables differ:\n--- j1 ---\n%s--- j8 ---\n%s",
					id, serial, parallel)
			}
			if again := renderAll(t, id, 8); again != parallel {
				t.Fatalf("%s: two -j 8 runs differ — scheduling leaked into results", id)
			}
		})
	}
}

// allIDs lists every experiment ID, in order.
func allIDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// The quick-mode seed-42 output of every experiment is pinned to committed
// golden files: any change to the RNG keying, the simulator, or the table
// layout shows up as a reviewable diff instead of silently shifting
// results.
func TestGoldenQuickSeed42(t *testing.T) {
	if testing.Short() {
		t.Skip("runs quick experiments")
	}
	for _, id := range allIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			got := renderAll(t, id, 0) // default worker pool
			path := filepath.Join("testdata", strings.ToLower(id)+"_quick_seed42.golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden %s\n--- got ---\n%s--- want ---\n%s",
					id, path, got, want)
			}
		})
	}
}
