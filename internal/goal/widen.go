package goal

import "fmt"

// Widen returns a program with the same operations laid out on a larger
// machine: NumRanks is raised to numRanks and the extra ranks carry no
// application work. Resilience schemes that dedicate whole ranks to
// protocol duty — replica shadows mirroring a primary's state — use this to
// embed a P-rank application in a machine of P·(degree+1) simulated nodes,
// so the spare ranks' CPUs and NICs are real contended resources rather
// than bookkeeping. The returned program shares op storage with p (both are
// immutable); widening to the same size returns p itself.
func Widen(p *Program, numRanks int) (*Program, error) {
	if numRanks < p.NumRanks {
		return nil, fmt.Errorf("goal: cannot widen %d-rank program to %d ranks", p.NumRanks, numRanks)
	}
	if numRanks == p.NumRanks {
		return p, nil
	}
	w := &Program{NumRanks: numRanks, Ops: p.Ops}
	w.byRank = make([][]OpID, numRanks)
	copy(w.byRank, p.byRank)
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
