package goal

import (
	"fmt"

	"checkpointsim/internal/simtime"
)

// Builder constructs a Program incrementally. It is not safe for concurrent
// use. Build validates and freezes the graph.
type Builder struct {
	numRanks int
	ops      []Op
}

// NewBuilder returns a Builder for a program with the given number of ranks.
// It panics if numRanks is not positive.
func NewBuilder(numRanks int) *Builder {
	if numRanks <= 0 {
		panic(fmt.Sprintf("goal: NewBuilder(%d)", numRanks))
	}
	return &Builder{numRanks: numRanks}
}

// NumRanks returns the rank count the builder was created with.
func (b *Builder) NumRanks() int { return b.numRanks }

// NumOps returns the number of operations added so far.
func (b *Builder) NumOps() int { return len(b.ops) }

// Grow reserves capacity for at least n additional operations. Generators
// that can estimate their op count from the geometry call it once up front:
// growing a 100k-op program by doubling re-copies every Op (a wide struct
// with pointer fields) a dozen times, which shows up in trace-build time.
// An overestimate only wastes capacity until Build.
func (b *Builder) Grow(n int) {
	if n <= cap(b.ops)-len(b.ops) {
		return
	}
	ops := make([]Op, len(b.ops), len(b.ops)+n)
	copy(ops, b.ops)
	b.ops = ops
}

func (b *Builder) add(op Op) OpID {
	op.ID = OpID(len(b.ops))
	b.ops = append(b.ops, op)
	return op.ID
}

// Calc adds a computation of the given duration on rank.
func (b *Builder) Calc(rank int, work simtime.Duration) OpID {
	return b.add(Op{Kind: KindCalc, Rank: int32(rank), Work: work})
}

// Send adds a send of bytes from rank to peer with the given tag.
func (b *Builder) Send(rank, peer, tag int, bytes int64) OpID {
	return b.add(Op{Kind: KindSend, Rank: int32(rank), Peer: int32(peer),
		Tag: int32(tag), Bytes: bytes})
}

// Recv adds a receive on rank expecting bytes from peer (which may be
// AnySource) with the given tag (which may be AnyTag).
func (b *Builder) Recv(rank int, peer int32, tag int32, bytes int64) OpID {
	return b.add(Op{Kind: KindRecv, Rank: int32(rank), Peer: peer,
		Tag: tag, Bytes: bytes})
}

// Requires declares that op must not start before all of deps complete.
// Duplicate edges are tolerated and deduplicated at Build time.
func (b *Builder) Requires(op OpID, deps ...OpID) {
	if op < 0 || int(op) >= len(b.ops) {
		panic(fmt.Sprintf("goal: Requires on unknown op %d", op))
	}
	for _, d := range deps {
		if d < 0 || int(d) >= len(b.ops) {
			panic(fmt.Sprintf("goal: Requires dep %d unknown", d))
		}
		b.ops[op].Deps = append(b.ops[op].Deps, d)
	}
}

// SetLabel attaches a symbolic label to an op (used by the text format).
func (b *Builder) SetLabel(op OpID, label string) {
	b.ops[op].Label = label
}

// Build validates the graph and returns the immutable Program.
func (b *Builder) Build() (*Program, error) {
	p := &Program{NumRanks: b.numRanks, Ops: b.ops}
	b.ops = nil // the builder gives up ownership
	// Deduplicate dependency lists, keeping first occurrences in order.
	// Typical lists are a handful of entries (a join of a few forks), where
	// a quadratic scan beats allocating a set; genuinely wide joins (a farm
	// master collecting from every worker) fall back to one.
	for i := range p.Ops {
		op := &p.Ops[i]
		if len(op.Deps) <= 1 {
			continue
		}
		kept := op.Deps[:0]
		if len(op.Deps) <= 32 {
		scan:
			for _, d := range op.Deps {
				for _, k := range kept {
					if k == d {
						continue scan
					}
				}
				kept = append(kept, d)
			}
		} else {
			seen := make(map[OpID]struct{}, len(op.Deps))
			for _, d := range op.Deps {
				if _, dup := seen[d]; !dup {
					seen[d] = struct{}{}
					kept = append(kept, d)
				}
			}
		}
		op.Deps = kept
	}
	// Reverse edges and per-rank index, both carved from single counted
	// arenas: a per-op append-with-growth here costs more allocations than
	// the rest of Build combined.
	outCnt := make([]int32, len(p.Ops))
	total := 0
	for i := range p.Ops {
		for _, d := range p.Ops[i].Deps {
			outCnt[d]++
			total++
		}
	}
	outArena := make([]OpID, 0, total)
	for i := range p.Ops {
		n := len(outArena)
		outArena = outArena[:n+int(outCnt[i])]
		p.Ops[i].Outs = outArena[n:n:len(outArena)]
	}
	for i := range p.Ops {
		for _, d := range p.Ops[i].Deps {
			p.Ops[d].Outs = append(p.Ops[d].Outs, OpID(i))
		}
	}
	rankCnt := make([]int32, p.NumRanks)
	for i := range p.Ops {
		rankCnt[p.Ops[i].Rank]++
	}
	rankArena := make([]OpID, 0, len(p.Ops))
	p.byRank = make([][]OpID, p.NumRanks)
	for r := range p.byRank {
		n := len(rankArena)
		rankArena = rankArena[:n+int(rankCnt[r])]
		p.byRank[r] = rankArena[n:n:len(rankArena)]
	}
	for i := range p.Ops {
		r := p.Ops[i].Rank
		p.byRank[r] = append(p.byRank[r], OpID(i))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// construction is known-correct.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Sequencer chains operations on a single rank in program order: each
// operation added through it automatically depends on the previous one.
// This mirrors how an MPI process executes: a straight-line code path with
// blocking calls.
type Sequencer struct {
	b    *Builder
	rank int
	last OpID
}

// Seq returns a Sequencer for rank whose first operation has no
// dependencies.
func (b *Builder) Seq(rank int) *Sequencer {
	return &Sequencer{b: b, rank: rank, last: NoOp}
}

// SeqAfter returns a Sequencer for rank whose first operation depends on
// the given op (NoOp for none).
func (b *Builder) SeqAfter(rank int, after OpID) *Sequencer {
	return &Sequencer{b: b, rank: rank, last: after}
}

func (s *Sequencer) chain(id OpID) OpID {
	if s.last != NoOp {
		s.b.Requires(id, s.last)
	}
	s.last = id
	return id
}

// Calc appends a computation.
func (s *Sequencer) Calc(work simtime.Duration) OpID {
	return s.chain(s.b.Calc(s.rank, work))
}

// Send appends a blocking send.
func (s *Sequencer) Send(peer, tag int, bytes int64) OpID {
	return s.chain(s.b.Send(s.rank, peer, tag, bytes))
}

// Recv appends a blocking receive.
func (s *Sequencer) Recv(peer int32, tag int32, bytes int64) OpID {
	return s.chain(s.b.Recv(s.rank, peer, tag, bytes))
}

// Join makes the next operation additionally depend on the given ops —
// used to merge forked non-blocking work back into the sequence.
func (s *Sequencer) Join(ids ...OpID) {
	if len(ids) == 0 {
		return
	}
	// Insert a zero-length calc as a join node so the sequence has a single
	// chainable tail.
	join := s.b.Calc(s.rank, 0)
	s.b.Requires(join, ids...)
	if s.last != NoOp {
		s.b.Requires(join, s.last)
	}
	s.last = join
}

// Fork adds an operation that depends on the current tail but does not
// advance it — a non-blocking operation running concurrently with the
// sequence. Returns the forked op for a later Join.
func (s *Sequencer) Fork(kind Kind, peer int32, tag int32, bytes int64) OpID {
	var id OpID
	switch kind {
	case KindSend:
		id = s.b.Send(s.rank, int(peer), int(tag), bytes)
	case KindRecv:
		id = s.b.Recv(s.rank, peer, tag, bytes)
	default:
		panic("goal: Fork supports send and recv only")
	}
	if s.last != NoOp {
		s.b.Requires(id, s.last)
	}
	return id
}

// Last returns the current tail of the sequence (NoOp when empty).
func (s *Sequencer) Last() OpID { return s.last }

// Rank returns the rank this sequencer appends to.
func (s *Sequencer) Rank() int { return s.rank }
