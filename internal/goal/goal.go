// Package goal represents message-passing programs as dependency graphs of
// operations, in the style of LogGOPSim's GOAL (Group Operation Assembly
// Language).
//
// A program is a set of operations — send, recv, calc — each bound to a
// rank, connected by happens-before dependencies. The simulator executes any
// operation whose dependencies are satisfied, subject to CPU and NIC
// availability; nothing else constrains ordering. Collective algorithms and
// application workloads are compiled down to these three primitives, which
// is what lets checkpoint-induced delays propagate realistically: a rank
// that is late sending delays exactly the ranks whose recvs depend on that
// message, and no others.
//
// The package provides an in-memory Builder API, a Sequencer convenience for
// program-order chains, validation (rank bounds, acyclicity, send/recv
// balance), and a textual format with a parser and serializer (see
// text.go).
package goal

import (
	"fmt"
	"sync/atomic"

	"checkpointsim/internal/simtime"
)

// Kind identifies the operation type.
type Kind uint8

// Operation kinds.
const (
	// KindCalc models local computation for a fixed duration.
	KindCalc Kind = iota
	// KindSend transmits Bytes to rank Peer with tag Tag.
	KindSend
	// KindRecv blocks until a message from Peer (or AnySource) with Tag
	// (or AnyTag) arrives.
	KindRecv
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCalc:
		return "calc"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Wildcards for receive matching.
const (
	// AnySource matches a message from any sender.
	AnySource int32 = -1
	// AnyTag matches a message with any tag.
	AnyTag int32 = -1
)

// OpID indexes an operation within its Program.
type OpID int32

// NoOp is the invalid OpID.
const NoOp OpID = -1

// Op is a single operation in the dependency graph.
type Op struct {
	ID    OpID
	Kind  Kind
	Rank  int32
	Peer  int32            // send: destination; recv: source or AnySource
	Tag   int32            // send: tag; recv: tag or AnyTag
	Bytes int64            // message size for send/recv
	Work  simtime.Duration // computation time for calc
	Label string           // optional symbolic label (from the text format)

	// Deps lists operations that must complete before this one may start.
	Deps []OpID
	// Outs is the reverse adjacency: operations that depend on this one.
	Outs []OpID
}

// Program is an immutable operation graph over NumRanks ranks.
type Program struct {
	NumRanks int
	Ops      []Op

	byRank [][]OpID // ops of each rank, in creation order

	// validated memoizes a successful Validate. Programs are immutable once
	// built, and experiment sweeps run the same program through many engines
	// (one per replication, possibly on parallel workers), so the O(ops)
	// structural re-check is pure overhead after the first pass.
	validated atomic.Bool
}

// RankOps returns the IDs of all operations bound to the given rank, in
// creation order. The returned slice must not be modified.
func (p *Program) RankOps(rank int) []OpID { return p.byRank[rank] }

// Op returns the operation with the given ID.
func (p *Program) Op(id OpID) *Op { return &p.Ops[id] }

// Stats summarizes a program.
type Stats struct {
	NumRanks  int
	NumOps    int
	NumCalc   int
	NumSend   int
	NumRecv   int
	NumDeps   int
	TotalSent int64            // bytes across all sends
	TotalWork simtime.Duration // sum of calc durations across all ranks
	MaxWork   simtime.Duration // max per-rank sum of calc durations
}

// Stats computes summary statistics for the program.
func (p *Program) Stats() Stats {
	s := Stats{NumRanks: p.NumRanks, NumOps: len(p.Ops)}
	perRank := make([]simtime.Duration, p.NumRanks)
	for i := range p.Ops {
		op := &p.Ops[i]
		s.NumDeps += len(op.Deps)
		switch op.Kind {
		case KindCalc:
			s.NumCalc++
			s.TotalWork += op.Work
			perRank[op.Rank] += op.Work
		case KindSend:
			s.NumSend++
			s.TotalSent += op.Bytes
		case KindRecv:
			s.NumRecv++
		}
	}
	for _, w := range perRank {
		if w > s.MaxWork {
			s.MaxWork = w
		}
	}
	return s
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("ranks=%d ops=%d (calc=%d send=%d recv=%d) deps=%d bytes=%d work=%v",
		s.NumRanks, s.NumOps, s.NumCalc, s.NumSend, s.NumRecv, s.NumDeps,
		s.TotalSent, s.TotalWork)
}

// Validate checks structural invariants: rank and peer bounds, non-negative
// sizes and durations, dependency IDs in range, acyclicity. A successful
// check is memoized — repeat calls (one per simulation of a shared program)
// return immediately. Mutating a program after a successful Validate is not
// supported.
func (p *Program) Validate() error {
	if p.validated.Load() {
		return nil
	}
	if p.NumRanks <= 0 {
		return fmt.Errorf("goal: program has %d ranks", p.NumRanks)
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		if op.ID != OpID(i) {
			return fmt.Errorf("goal: op %d has ID %d", i, op.ID)
		}
		if op.Rank < 0 || int(op.Rank) >= p.NumRanks {
			return fmt.Errorf("goal: op %d rank %d out of range [0,%d)", i, op.Rank, p.NumRanks)
		}
		switch op.Kind {
		case KindSend:
			if op.Peer < 0 || int(op.Peer) >= p.NumRanks {
				return fmt.Errorf("goal: send op %d peer %d out of range", i, op.Peer)
			}
			if op.Peer == op.Rank {
				return fmt.Errorf("goal: send op %d is a self-send", i)
			}
			if op.Bytes < 0 {
				return fmt.Errorf("goal: send op %d negative size", i)
			}
			if op.Tag < 0 {
				return fmt.Errorf("goal: send op %d negative tag", i)
			}
		case KindRecv:
			if op.Peer != AnySource && (op.Peer < 0 || int(op.Peer) >= p.NumRanks) {
				return fmt.Errorf("goal: recv op %d peer %d out of range", i, op.Peer)
			}
			if op.Peer == op.Rank {
				return fmt.Errorf("goal: recv op %d is a self-recv", i)
			}
			if op.Bytes < 0 {
				return fmt.Errorf("goal: recv op %d negative size", i)
			}
			if op.Tag != AnyTag && op.Tag < 0 {
				return fmt.Errorf("goal: recv op %d negative tag", i)
			}
		case KindCalc:
			if op.Work < 0 {
				return fmt.Errorf("goal: calc op %d negative work", i)
			}
		default:
			return fmt.Errorf("goal: op %d has unknown kind %d", i, op.Kind)
		}
		for _, d := range op.Deps {
			if d < 0 || int(d) >= len(p.Ops) {
				return fmt.Errorf("goal: op %d dep %d out of range", i, d)
			}
			if d == op.ID {
				return fmt.Errorf("goal: op %d depends on itself", i)
			}
			if p.Ops[d].Rank != op.Rank {
				// Cross-rank ordering must be expressed with messages; a
				// bare dependency edge has no physical realization.
				return fmt.Errorf("goal: op %d (rank %d) depends on op %d (rank %d): cross-rank deps are not allowed",
					i, op.Rank, d, p.Ops[d].Rank)
			}
		}
	}
	if err := p.checkAcyclic(); err != nil {
		return err
	}
	p.validated.Store(true)
	return nil
}

// checkAcyclic runs Kahn's algorithm over the dependency edges.
func (p *Program) checkAcyclic() error {
	indeg := make([]int32, len(p.Ops))
	for i := range p.Ops {
		indeg[i] = int32(len(p.Ops[i].Deps))
	}
	queue := make([]OpID, 0, len(p.Ops))
	for i := range indeg {
		if indeg[i] == 0 {
			queue = append(queue, OpID(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, out := range p.Ops[id].Outs {
			indeg[out]--
			if indeg[out] == 0 {
				queue = append(queue, out)
			}
		}
	}
	if seen != len(p.Ops) {
		return fmt.Errorf("goal: dependency graph has a cycle (%d of %d ops reachable)",
			seen, len(p.Ops))
	}
	return nil
}

// CheckBalanced verifies that every (src, dst, tag) channel has equally many
// sends and non-wildcard recvs, and that wildcard recvs on each rank are
// covered by surplus sends. A balanced program is guaranteed to terminate
// under the simulator (no recv waits forever), provided it is acyclic.
func (p *Program) CheckBalanced() error {
	type channel struct {
		src, dst, tag int32
	}
	sends := make(map[channel]int)
	var wildcards int
	for i := range p.Ops {
		op := &p.Ops[i]
		switch op.Kind {
		case KindSend:
			sends[channel{op.Rank, op.Peer, op.Tag}]++
		case KindRecv:
			if op.Peer == AnySource || op.Tag == AnyTag {
				wildcards++
				continue
			}
			sends[channel{op.Peer, op.Rank, op.Tag}]--
		}
	}
	surplus := 0
	for ch, n := range sends {
		if n < 0 {
			return fmt.Errorf("goal: channel %d->%d tag %d has %d more recvs than sends",
				ch.src, ch.dst, ch.tag, -n)
		}
		surplus += n
	}
	if surplus < wildcards {
		return fmt.Errorf("goal: %d wildcard recvs but only %d unmatched sends",
			wildcards, surplus)
	}
	if surplus > wildcards {
		return fmt.Errorf("goal: %d sends have no matching recv", surplus-wildcards)
	}
	return nil
}
