package goal

import (
	"strings"
	"testing"
	"testing/quick"

	"checkpointsim/internal/rng"
	"checkpointsim/internal/simtime"
)

func TestKindString(t *testing.T) {
	if KindCalc.String() != "calc" || KindSend.String() != "send" || KindRecv.String() != "recv" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(2)
	c := b.Calc(0, 100)
	s := b.Send(0, 1, 7, 64)
	r := b.Recv(1, 0, 7, 64)
	b.Requires(s, c)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRanks != 2 || len(p.Ops) != 3 {
		t.Fatalf("program shape wrong: %+v", p)
	}
	if got := p.Op(c); got.Kind != KindCalc || got.Work != 100 {
		t.Errorf("calc op = %+v", got)
	}
	if got := p.Op(s); got.Kind != KindSend || got.Peer != 1 || got.Tag != 7 || got.Bytes != 64 {
		t.Errorf("send op = %+v", got)
	}
	if got := p.Op(r); got.Kind != KindRecv || got.Peer != 0 {
		t.Errorf("recv op = %+v", got)
	}
	if len(p.Op(s).Deps) != 1 || p.Op(s).Deps[0] != c {
		t.Error("dependency missing")
	}
	if len(p.Op(c).Outs) != 1 || p.Op(c).Outs[0] != s {
		t.Error("reverse edge missing")
	}
	if got := p.RankOps(0); len(got) != 2 {
		t.Errorf("RankOps(0) = %v", got)
	}
	if got := p.RankOps(1); len(got) != 1 || got[0] != r {
		t.Errorf("RankOps(1) = %v", got)
	}
}

func TestNewBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBuilder(0) did not panic")
		}
	}()
	NewBuilder(0)
}

func TestDuplicateDepsDeduplicated(t *testing.T) {
	b := NewBuilder(1)
	a := b.Calc(0, 1)
	c := b.Calc(0, 2)
	b.Requires(c, a)
	b.Requires(c, a)
	b.Requires(c, a)
	p := b.MustBuild()
	if len(p.Op(c).Deps) != 1 {
		t.Errorf("deps not deduplicated: %v", p.Op(c).Deps)
	}
	if len(p.Op(a).Outs) != 1 {
		t.Errorf("outs not deduplicated: %v", p.Op(a).Outs)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
	}{
		{"self-send", func() *Builder {
			b := NewBuilder(2)
			b.Send(0, 0, 0, 8)
			return b
		}},
		{"self-recv", func() *Builder {
			b := NewBuilder(2)
			b.Recv(1, 1, 0, 8)
			return b
		}},
		{"peer out of range", func() *Builder {
			b := NewBuilder(2)
			b.Send(0, 5, 0, 8)
			return b
		}},
		{"negative bytes", func() *Builder {
			b := NewBuilder(2)
			b.Send(0, 1, 0, -8)
			return b
		}},
		{"negative tag", func() *Builder {
			b := NewBuilder(2)
			b.Send(0, 1, -3, 8)
			return b
		}},
		{"negative work", func() *Builder {
			b := NewBuilder(1)
			b.Calc(0, -1)
			return b
		}},
		{"cycle", func() *Builder {
			b := NewBuilder(1)
			x := b.Calc(0, 1)
			y := b.Calc(0, 1)
			b.Requires(x, y)
			b.Requires(y, x)
			return b
		}},
		{"cross-rank dep", func() *Builder {
			b := NewBuilder(2)
			x := b.Calc(0, 1)
			y := b.Calc(1, 1)
			b.Requires(y, x)
			return b
		}},
	}
	for _, c := range cases {
		if _, err := c.build().Build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", c.name)
		}
	}
}

func TestRequiresPanicsOnUnknown(t *testing.T) {
	b := NewBuilder(1)
	id := b.Calc(0, 1)
	for _, f := range []func(){
		func() { b.Requires(99, id) },
		func() { b.Requires(id, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Requires with unknown op did not panic")
				}
			}()
			f()
		}()
	}
}

func TestStats(t *testing.T) {
	b := NewBuilder(2)
	b.Calc(0, 100)
	b.Calc(0, 200)
	b.Calc(1, 50)
	s := b.Send(0, 1, 0, 1000)
	r := b.Recv(1, 0, 0, 1000)
	b.Requires(s, OpID(0))
	_ = r
	p := b.MustBuild()
	st := p.Stats()
	if st.NumRanks != 2 || st.NumOps != 5 || st.NumCalc != 3 || st.NumSend != 1 || st.NumRecv != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalSent != 1000 || st.TotalWork != 350 || st.MaxWork != 300 || st.NumDeps != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}
}

func TestCheckBalanced(t *testing.T) {
	b := NewBuilder(2)
	b.Send(0, 1, 0, 8)
	b.Recv(1, 0, 0, 8)
	p := b.MustBuild()
	if err := p.CheckBalanced(); err != nil {
		t.Errorf("balanced program rejected: %v", err)
	}

	b = NewBuilder(2)
	b.Send(0, 1, 0, 8)
	p = b.MustBuild()
	if err := p.CheckBalanced(); err == nil {
		t.Error("unmatched send accepted")
	}

	b = NewBuilder(2)
	b.Recv(1, 0, 0, 8)
	p = b.MustBuild()
	if err := p.CheckBalanced(); err == nil {
		t.Error("unmatched recv accepted")
	}

	// Wildcard recv covered by a surplus send.
	b = NewBuilder(2)
	b.Send(0, 1, 5, 8)
	b.Recv(1, AnySource, AnyTag, 8)
	p = b.MustBuild()
	if err := p.CheckBalanced(); err != nil {
		t.Errorf("wildcard-balanced program rejected: %v", err)
	}

	// Wildcard recv with no send.
	b = NewBuilder(2)
	b.Recv(1, AnySource, AnyTag, 8)
	p = b.MustBuild()
	if err := p.CheckBalanced(); err == nil {
		t.Error("uncovered wildcard recv accepted")
	}
}

func TestSequencer(t *testing.T) {
	b := NewBuilder(2)
	s := b.Seq(0)
	if s.Last() != NoOp || s.Rank() != 0 {
		t.Error("fresh sequencer state wrong")
	}
	c1 := s.Calc(10)
	sd := s.Send(1, 0, 8)
	rv := s.Recv(1, 0, 8)
	b.Seq(1).Recv(0, 0, 8)
	b.Send(1, 0, 0, 8)
	p := b.MustBuild()
	if len(p.Op(c1).Deps) != 0 {
		t.Error("first op should have no deps")
	}
	if d := p.Op(sd).Deps; len(d) != 1 || d[0] != c1 {
		t.Errorf("send deps = %v", d)
	}
	if d := p.Op(rv).Deps; len(d) != 1 || d[0] != sd {
		t.Errorf("recv deps = %v", d)
	}
}

func TestSequencerForkJoin(t *testing.T) {
	b := NewBuilder(2)
	s := b.Seq(0)
	c := s.Calc(10)
	f1 := s.Fork(KindSend, 1, 0, 8)
	f2 := s.Fork(KindRecv, 1, 0, 8)
	s.Join(f1, f2)
	tail := s.Calc(5)
	b.Seq(1).Recv(0, 0, 8)
	b.Send(1, 0, 0, 8)
	p := b.MustBuild()
	// Forks depend on c but not on each other.
	if d := p.Op(f1).Deps; len(d) != 1 || d[0] != c {
		t.Errorf("fork1 deps = %v", d)
	}
	if d := p.Op(f2).Deps; len(d) != 1 || d[0] != c {
		t.Errorf("fork2 deps = %v", d)
	}
	// Tail transitively depends on both forks through the join node.
	join := p.Op(tail).Deps[0]
	jd := p.Op(join).Deps
	has := func(id OpID) bool {
		for _, d := range jd {
			if d == id {
				return true
			}
		}
		return false
	}
	if !has(f1) || !has(f2) {
		t.Errorf("join deps = %v, want both forks", jd)
	}
}

func TestSequencerJoinEmpty(t *testing.T) {
	b := NewBuilder(1)
	s := b.Seq(0)
	c := s.Calc(1)
	s.Join() // no-op
	if s.Last() != c {
		t.Error("empty Join changed tail")
	}
}

func TestSequencerForkPanicsOnCalc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fork(KindCalc) did not panic")
		}
	}()
	NewBuilder(1).Seq(0).Fork(KindCalc, 0, 0, 0)
}

func TestSeqAfter(t *testing.T) {
	b := NewBuilder(1)
	root := b.Calc(0, 1)
	s := b.SeqAfter(0, root)
	c := s.Calc(2)
	p := b.MustBuild()
	if d := p.Op(c).Deps; len(d) != 1 || d[0] != root {
		t.Errorf("SeqAfter deps = %v", d)
	}
}

// Property: any program built from random valid operations with random
// backward intra-rank dependencies validates and is acyclic.
func TestQuickRandomProgramsValidate(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := r.Intn(8) + 2
		b := NewBuilder(n)
		perRank := make([][]OpID, n)
		for i := 0; i < 50; i++ {
			rank := r.Intn(n)
			var id OpID
			switch r.Intn(3) {
			case 0:
				id = b.Calc(rank, simtime.Duration(r.Intn(1000)))
			case 1:
				peer := (rank + 1 + r.Intn(n-1)) % n
				id = b.Send(rank, peer, r.Intn(4), int64(r.Intn(4096)))
			default:
				peer := (rank + 1 + r.Intn(n-1)) % n
				id = b.Recv(rank, int32(peer), int32(r.Intn(4)), int64(r.Intn(4096)))
			}
			// Backward deps to same-rank ops only: guarantees acyclicity.
			if len(perRank[rank]) > 0 && r.Float64() < 0.5 {
				dep := perRank[rank][r.Intn(len(perRank[rank]))]
				b.Requires(id, dep)
			}
			perRank[rank] = append(perRank[rank], id)
		}
		p, err := b.Build()
		if err != nil {
			return false
		}
		return p.Stats().NumOps == 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	b := NewBuilder(3)
	s0 := b.Seq(0)
	s0.Calc(100 * simtime.Microsecond)
	s0.Send(1, 3, 4096)
	s0.Recv(2, 1, 64)
	s1 := b.Seq(1)
	s1.Recv(0, 3, 4096)
	s1.Send(2, 1, 64)
	s2 := b.Seq(2)
	s2.Recv(AnySource, AnyTag, 64)
	s2.Send(0, 1, 64)
	p := b.MustBuild()

	text := WriteString(p)
	q, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\ntext:\n%s", err, text)
	}
	if q.NumRanks != p.NumRanks || len(q.Ops) != len(p.Ops) {
		t.Fatalf("round trip changed shape: %d/%d ops", len(q.Ops), len(p.Ops))
	}
	sp, sq := p.Stats(), q.Stats()
	if sp != sq {
		t.Errorf("round trip changed stats:\n%v\n%v", sp, sq)
	}
	// Canonical serialization is a fixed point.
	if text2 := WriteString(q); text2 != text {
		t.Errorf("serialization not canonical:\n%s\nvs\n%s", text, text2)
	}
}

func TestParseBasics(t *testing.T) {
	p, err := ParseString(`
# a comment
num_ranks 2
rank 0 {
  a: calc 100us   // trailing comment
  b: send 8b to 1 tag 0
  b requires a
}
rank 1 {
  c: recv 8b from 0 tag 0
}
`)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.NumOps != 3 || st.NumCalc != 1 || st.NumSend != 1 || st.NumRecv != 1 {
		t.Errorf("stats = %+v", st)
	}
	if p.Op(1).Kind != KindSend || len(p.Op(1).Deps) != 1 {
		t.Errorf("dep not parsed: %+v", p.Op(1))
	}
	if p.Op(0).Work != 100*simtime.Microsecond {
		t.Errorf("calc work = %v", p.Op(0).Work)
	}
	if p.Op(0).Label != "a" {
		t.Errorf("label = %q", p.Op(0).Label)
	}
}

func TestParseSizes(t *testing.T) {
	p, err := ParseString(`num_ranks 2
rank 0 {
  a: send 4k to 1 tag 0
  b: send 2m to 1 tag 0
  c: send 1g to 1 tag 0
  d: send 17 to 1 tag 0
}
rank 1 {
  e: recv 4k from 0 tag 0
  f: recv 2m from 0 tag 0
  g: recv 1g from 0 tag 0
  h: recv 17b from 0 tag 0
}`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4096, 2 * 1024 * 1024, 1 << 30, 17}
	for i, w := range want {
		if got := p.Op(OpID(i)).Bytes; got != w {
			t.Errorf("op %d bytes = %d, want %d", i, got, w)
		}
	}
}

func TestParseWildcards(t *testing.T) {
	p, err := ParseString(`num_ranks 2
rank 0 {
  a: send 8 to 1 tag 3
}
rank 1 {
  b: recv 8 from any tag any
}`)
	if err != nil {
		t.Fatal(err)
	}
	op := p.Op(1)
	if op.Peer != AnySource || op.Tag != AnyTag {
		t.Errorf("wildcards not parsed: %+v", op)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                      // empty
		`rank 0 {`,                              // before num_ranks
		`num_ranks 0`,                           // bad count
		`num_ranks 2` + "\nnum_ranks 2",         // duplicate header
		"num_ranks 2\nrank 5 {\n}",              // rank out of range
		"num_ranks 2\nrank 0 {\nrank 1 {\n}\n}", // nested
		"num_ranks 2\n}",                        // unmatched close
		"num_ranks 2\nrank 0 {\n",               // unterminated
		"num_ranks 2\nrank 0 {\na: jump 4\n}",   // unknown op
		"num_ranks 2\nrank 0 {\ncalc 100\n}",    // missing label
		"num_ranks 2\nrank 0 {\na: calc 100\na: calc 100\n}",  // dup label
		"num_ranks 2\nrank 0 {\na: calc 100\nb requires a\n}", // unknown label
		"num_ranks 2\nrank 0 {\na: calc 100\na requires c\n}", // unknown dep
		"num_ranks 2\nrank 0 {\na: send 8 to 0 tag 0\n}",      // self send
		"num_ranks 2\nrank 0 {\na: send x to 1 tag 0\n}",      // bad size
		"num_ranks 2\nrank 0 {\na: send 8 to 1 tag -1\n}",     // bad tag
		"num_ranks 2\nrank 0 {\na: calc -5us\n}",              // negative calc
		"num_ranks 2\nx: calc 100",                            // op outside block
		"num_ranks 2\nrank 0 {\na: recv 8 from q tag 0\n}",    // bad peer
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("parse succeeded for %q", c)
		}
	}
}

func TestParseLineNumbersInErrors(t *testing.T) {
	_, err := ParseString("num_ranks 2\nrank 0 {\n  a: bogus 1\n}\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should name line 3: %v", err)
	}
}

// Property: Write/Parse round-trips preserve stats for random sequencer
// programs.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := r.Intn(4) + 2
		b := NewBuilder(n)
		// Build a ring of sends so programs are balanced.
		for rank := 0; rank < n; rank++ {
			s := b.Seq(rank)
			s.Calc(simtime.Duration(r.Intn(10000)))
			s.Send((rank+1)%n, 0, int64(r.Intn(8192)+1))
			s.Recv(int32((rank+n-1)%n), 0, 0)
			s.Calc(simtime.Duration(r.Intn(10000)))
		}
		p := b.MustBuild()
		q, err := ParseString(WriteString(p))
		if err != nil {
			return false
		}
		return p.Stats() == q.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
