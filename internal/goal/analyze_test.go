package goal

import (
	"strings"
	"testing"
	"testing/quick"

	"checkpointsim/internal/network"
	"checkpointsim/internal/rng"
	"checkpointsim/internal/simtime"
)

func cpNet() network.Params {
	return network.Params{Latency: 1000, Overhead: 100, Gap: 200, GapPerByte: 1}
}

func TestCriticalPathCalcChain(t *testing.T) {
	b := NewBuilder(1)
	s := b.Seq(0)
	s.Calc(100)
	s.Calc(200)
	s.Calc(300)
	p := b.MustBuild()
	d, path := CriticalPath(p, cpNet())
	if d != 600 {
		t.Errorf("critical path = %v, want 600", d)
	}
	if len(path) != 3 || path[0] != 0 || path[2] != 2 {
		t.Errorf("path = %v", path)
	}
}

func TestCriticalPathIgnoresParallelWork(t *testing.T) {
	b := NewBuilder(2)
	b.Calc(0, 1000)
	b.Calc(1, 50)
	p := b.MustBuild()
	d, path := CriticalPath(p, cpNet())
	if d != 1000 {
		t.Errorf("critical path = %v, want 1000", d)
	}
	if len(path) != 1 || p.Op(path[0]).Rank != 0 {
		t.Errorf("path = %v", path)
	}
}

func TestCriticalPathCrossesMessages(t *testing.T) {
	net := cpNet()
	b := NewBuilder(2)
	s0 := b.Seq(0)
	s0.Calc(5000)
	s0.Send(1, 0, 11)
	s1 := b.Seq(1)
	s1.Recv(0, 0, 11)
	s1.Calc(7000)
	p := b.MustBuild()
	d, path := CriticalPath(p, net)
	want := simtime.Duration(5000) + net.SendCPU(11) + net.Wire(11) + net.RecvCPU(11) + 7000
	if d != want {
		t.Errorf("critical path = %v, want %v", d, want)
	}
	if len(path) != 4 {
		t.Errorf("path = %v (want calc,send,recv,calc)", path)
	}
}

func TestCriticalPathEmptyProgram(t *testing.T) {
	b := NewBuilder(1)
	p := b.MustBuild()
	d, path := CriticalPath(p, cpNet())
	if d != 0 || path != nil {
		t.Errorf("empty program: %v %v", d, path)
	}
}

func TestCriticalPathWildcardsAreLowerBound(t *testing.T) {
	// Wildcard recvs get no message edge; the bound must still hold below
	// any simulated makespan (checked against the structural minimum).
	b := NewBuilder(2)
	s0 := b.Seq(0)
	s0.Calc(1000)
	s0.Send(1, 3, 8)
	s1 := b.Seq(1)
	s1.Recv(AnySource, AnyTag, 8)
	s1.Calc(2000)
	p := b.MustBuild()
	d, _ := CriticalPath(p, cpNet())
	// Without the message edge, rank 1's chain is recvCPU + 2000.
	if d < 2000 {
		t.Errorf("bound %v too small", d)
	}
}

// Property: critical path is a true lower bound on simulated makespan, and
// at least the max per-rank serial work.
func TestQuickCriticalPathLowerBound(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		nranks := r.Intn(5) + 2
		b := NewBuilder(nranks)
		seqs := make([]*Sequencer, nranks)
		for i := range seqs {
			seqs[i] = b.Seq(i)
		}
		iters := r.Intn(4) + 1
		for it := 0; it < iters; it++ {
			for i, s := range seqs {
				s.Calc(simtime.Duration(r.Intn(10000)))
				next := (i + 1) % nranks
				prev := (i - 1 + nranks) % nranks
				sd := s.Fork(KindSend, int32(next), int32(it), int64(r.Intn(2048)+1))
				rv := s.Fork(KindRecv, int32(prev), int32(it), 0)
				s.Join(sd, rv)
			}
		}
		p := b.MustBuild()
		net := network.DefaultParams()
		cp, path := CriticalPath(p, net)
		if len(path) == 0 {
			return false
		}
		// Path ops must be connected in order (each consecutive pair linked
		// by a dep or a message).
		st := p.Stats()
		return cp >= st.MaxWork
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWriteDOT(t *testing.T) {
	b := NewBuilder(2)
	s0 := b.Seq(0)
	s0.Calc(100)
	s0.Send(1, 0, 64)
	s1 := b.Seq(1)
	s1.Recv(0, 0, 64)
	p := b.MustBuild()
	var sb strings.Builder
	if err := WriteDOT(&sb, p); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph program",
		"cluster_0", "cluster_1",
		"calc 100ns", "send 64B to 1", "recv 64B from 0",
		"style=dashed", // the message edge
		"o0 -> o1",     // the dependency edge
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}
