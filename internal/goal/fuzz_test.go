package goal

import (
	"sort"
	"testing"
)

// samePrograms reports structural equality modulo op renumbering: equal rank
// counts, per-rank op sequences (kind, peer, tag, bytes, work), and equal
// dependency structure expressed in rank-local positions. Labels are ignored
// (Write regenerates them).
func samePrograms(p, q *Program) bool {
	if p.NumRanks != q.NumRanks || len(p.Ops) != len(q.Ops) {
		return false
	}
	localDeps := func(prog *Program, ids []OpID, op *Op) []int {
		local := make(map[OpID]int, len(ids))
		for k, id := range ids {
			local[id] = k
		}
		out := make([]int, 0, len(op.Deps))
		for _, d := range op.Deps {
			out = append(out, local[d])
		}
		sort.Ints(out)
		return out
	}
	for rank := 0; rank < p.NumRanks; rank++ {
		pids, qids := p.RankOps(rank), q.RankOps(rank)
		if len(pids) != len(qids) {
			return false
		}
		for k := range pids {
			po, qo := p.Op(pids[k]), q.Op(qids[k])
			if po.Kind != qo.Kind || po.Peer != qo.Peer || po.Tag != qo.Tag ||
				po.Bytes != qo.Bytes || po.Work != qo.Work {
				return false
			}
			pd, qd := localDeps(p, pids, po), localDeps(q, qids, qo)
			if len(pd) != len(qd) {
				return false
			}
			for i := range pd {
				if pd[i] != qd[i] {
					return false
				}
			}
		}
	}
	return true
}

// FuzzGOALText round-trips every parseable input: parse → serialize →
// parse must preserve structure, and the second serialization must equal
// the first byte-for-byte (Write is canonical). Inputs that fail to parse
// must fail with an error, never a panic or a runaway allocation.
func FuzzGOALText(f *testing.F) {
	seeds := []string{
		"num_ranks 1\n",
		"num_ranks 2\nrank 0 {\n a: calc 100us\n b: send 8b to 1 tag 3\n b requires a\n}\nrank 1 {\n c: recv 8b from 0 tag 3\n}\n",
		"num_ranks 3\nrank 2 {\n x: recv 64b from any tag any\n}\nrank 0 {\n y: send 64b to 2 tag 1\n}\n",
		"num_ranks 2\nrank 0 {\n a: calc 1ns\n}\nrank 0 {\n a: calc 2ns\n}\n",
		"num_ranks 2\nrank 0 {\n a: send 4k to 1 tag 0\n b: send 2m to 1 tag 1\n}\nrank 1 {\n a: recv 4k from 0 tag 0\n b: recv 2m from 0 tag 1\n b requires a\n}\n",
		"# comment\nnum_ranks 1\nrank 0 { // trailing\n a: calc 1ms\n}\n",
		"num_ranks 99999999999\n",
		"num_ranks 2\nrank 0 {\n a: send 8b to 4294967297 tag 0\n}\n",
		"num_ranks 2\nrank 0 {\n a: send 9223372036854775807k to 1 tag 0\n}\n",
		"num_ranks 2\nrank 0 {\n a: calc 99999999999999999999y\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParseString(input)
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		s1 := WriteString(p)
		q, err := ParseString(s1)
		if err != nil {
			t.Fatalf("serialized program does not reparse: %v\ninput:\n%s\nserialized:\n%s", err, input, s1)
		}
		if !samePrograms(p, q) {
			t.Fatalf("round trip changed structure\ninput:\n%s\nserialized:\n%s", input, s1)
		}
		if s2 := WriteString(q); s2 != s1 {
			t.Fatalf("serialization not byte-stable\nfirst:\n%s\nsecond:\n%s", s1, s2)
		}
	})
}
