package goal

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"checkpointsim/internal/simtime"
)

// MaxTextRanks caps the num_ranks header Parse accepts. Building a program
// allocates per-rank state, so an adversarial or corrupt header like
// "num_ranks 9999999999" must fail at parse time instead of attempting a
// multi-gigabyte allocation. A million ranks is an order of magnitude past
// every workload the simulator targets.
const MaxTextRanks = 1 << 20

// The textual GOAL dialect accepted and produced by this package:
//
//	# comment
//	num_ranks 4
//	rank 0 {
//	    l1: calc 100us
//	    l2: send 8b to 1 tag 3
//	    l3: recv 8b from 1 tag 3
//	    l4: recv 8b from any tag any
//	    l3 requires l2
//	    l4 requires l2 l3
//	}
//
// Labels are scoped to their rank block (dependencies are intra-rank, as in
// LogGOPSim's GOAL; cross-rank ordering arises from message matching). Sizes
// are integer bytes with an optional b/B suffix or KiB multipliers (k/m/g
// for KiB/MiB/GiB). Calc durations use simtime.ParseDuration syntax.

// Parse reads a program in the textual GOAL dialect.
func Parse(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		b         *Builder
		curRank   = -1
		labels    map[string]OpID // per rank block
		lineno    int
		sawHeader bool
	)
	fail := func(format string, args ...any) error {
		return fmt.Errorf("goal: line %d: %s", lineno, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexAny(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		toks := strings.Fields(line)
		switch {
		case toks[0] == "num_ranks":
			if sawHeader {
				return nil, fail("duplicate num_ranks")
			}
			if len(toks) != 2 {
				return nil, fail("num_ranks wants one argument")
			}
			n, err := strconv.Atoi(toks[1])
			if err != nil || n <= 0 || n > MaxTextRanks {
				return nil, fail("bad rank count %q (want 1..%d)", toks[1], MaxTextRanks)
			}
			b = NewBuilder(n)
			sawHeader = true

		case toks[0] == "rank":
			if !sawHeader {
				return nil, fail("rank block before num_ranks")
			}
			if curRank >= 0 {
				return nil, fail("nested rank block")
			}
			if len(toks) != 3 || toks[2] != "{" {
				return nil, fail(`rank block header must be "rank N {"`)
			}
			n, err := strconv.Atoi(toks[1])
			if err != nil || n < 0 || n >= b.NumRanks() {
				return nil, fail("bad rank %q", toks[1])
			}
			curRank = n
			labels = make(map[string]OpID)

		case toks[0] == "}":
			if curRank < 0 {
				return nil, fail("unmatched }")
			}
			curRank = -1
			labels = nil

		case len(toks) >= 3 && toks[1] == "requires":
			if curRank < 0 {
				return nil, fail("requires outside rank block")
			}
			id, ok := labels[toks[0]]
			if !ok {
				return nil, fail("unknown label %q", toks[0])
			}
			for _, dep := range toks[2:] {
				did, ok := labels[dep]
				if !ok {
					return nil, fail("unknown label %q", dep)
				}
				b.Requires(id, did)
			}

		default:
			if curRank < 0 {
				return nil, fail("operation outside rank block")
			}
			label, rest, found := strings.Cut(line, ":")
			if !found {
				return nil, fail("operation needs a label (got %q)", line)
			}
			label = strings.TrimSpace(label)
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, fail("bad label %q", label)
			}
			if _, dup := labels[label]; dup {
				return nil, fail("duplicate label %q", label)
			}
			id, err := parseOp(b, curRank, strings.Fields(rest))
			if err != nil {
				return nil, fail("%v", err)
			}
			b.SetLabel(id, label)
			labels[label] = id
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("goal: read: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("goal: missing num_ranks header")
	}
	if curRank >= 0 {
		return nil, fmt.Errorf("goal: unterminated rank block")
	}
	return b.Build()
}

// ParseString is Parse over a string.
func ParseString(s string) (*Program, error) {
	return Parse(strings.NewReader(s))
}

func parseOp(b *Builder, rank int, toks []string) (OpID, error) {
	if len(toks) == 0 {
		return NoOp, fmt.Errorf("empty operation")
	}
	switch toks[0] {
	case "calc":
		if len(toks) != 2 {
			return NoOp, fmt.Errorf("calc wants a duration")
		}
		d, err := simtime.ParseDuration(toks[1])
		if err != nil {
			return NoOp, err
		}
		if d < 0 {
			return NoOp, fmt.Errorf("negative calc duration")
		}
		return b.Calc(rank, d), nil

	case "send":
		// send SIZE to PEER tag TAG
		if len(toks) != 6 || toks[2] != "to" || toks[4] != "tag" {
			return NoOp, fmt.Errorf(`send syntax: "send SIZE to PEER tag TAG"`)
		}
		size, err := parseSize(toks[1])
		if err != nil {
			return NoOp, err
		}
		// Peers and tags are int32 in the op graph; bound them here so an
		// out-of-range literal fails loudly instead of wrapping into a
		// different (possibly valid) rank or tag.
		peer, err := strconv.Atoi(toks[3])
		if err != nil || peer < 0 || peer > math.MaxInt32 {
			return NoOp, fmt.Errorf("bad peer %q", toks[3])
		}
		tag, err := strconv.Atoi(toks[5])
		if err != nil || tag < 0 || tag > math.MaxInt32 {
			return NoOp, fmt.Errorf("bad tag %q", toks[5])
		}
		return b.Send(rank, peer, tag, size), nil

	case "recv":
		// recv SIZE from PEER|any tag TAG|any
		if len(toks) != 6 || toks[2] != "from" || toks[4] != "tag" {
			return NoOp, fmt.Errorf(`recv syntax: "recv SIZE from PEER tag TAG"`)
		}
		size, err := parseSize(toks[1])
		if err != nil {
			return NoOp, err
		}
		peer := AnySource
		if toks[3] != "any" {
			n, err := strconv.Atoi(toks[3])
			if err != nil || n < 0 || n > math.MaxInt32 {
				return NoOp, fmt.Errorf("bad peer %q", toks[3])
			}
			peer = int32(n)
		}
		tag := AnyTag
		if toks[5] != "any" {
			n, err := strconv.Atoi(toks[5])
			if err != nil || n < 0 || n > math.MaxInt32 {
				return NoOp, fmt.Errorf("bad tag %q", toks[5])
			}
			tag = int32(n)
		}
		return b.Recv(rank, peer, tag, size), nil
	}
	return NoOp, fmt.Errorf("unknown operation %q", toks[0])
}

// parseSize parses "8", "8b", "4k", "2m", "1g" (k/m/g are KiB/MiB/GiB).
func parseSize(s string) (int64, error) {
	orig := s
	s = strings.ToLower(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1024, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1024*1024, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1024*1024*1024, s[:len(s)-1]
	default:
		s = strings.TrimSuffix(s, "b")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q", orig)
	}
	if n > math.MaxInt64/mult {
		// A wrapped product could come out zero or positive-but-wrong; an
		// overflowing size is always a mistake, so reject it outright.
		return 0, fmt.Errorf("size %q overflows", orig)
	}
	return n * mult, nil
}

// Write serializes the program in the textual dialect. Labels are
// regenerated as "oK" where K is the operation's position within its rank
// (original labels are not preserved). Rank-local numbering — rather than
// global op IDs — is what makes the output canonical: parsing renumbers
// operations in the order rank blocks appear, so only a rank-relative
// naming survives parse → serialize unchanged. Dependencies are intra-rank
// (Program.Validate enforces it), so every dep has a local label. The
// output parses back to a structurally identical program, and serializing
// that program reproduces the output byte-for-byte.
func Write(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "num_ranks %d\n", p.NumRanks)
	for rank := 0; rank < p.NumRanks; rank++ {
		ids := p.RankOps(rank)
		if len(ids) == 0 {
			continue
		}
		local := make(map[OpID]int, len(ids))
		for k, id := range ids {
			local[id] = k
		}
		fmt.Fprintf(bw, "rank %d {\n", rank)
		for k, id := range ids {
			op := p.Op(id)
			switch op.Kind {
			case KindCalc:
				fmt.Fprintf(bw, "  o%d: calc %dns\n", k, int64(op.Work))
			case KindSend:
				fmt.Fprintf(bw, "  o%d: send %db to %d tag %d\n", k, op.Bytes, op.Peer, op.Tag)
			case KindRecv:
				peer, tag := "any", "any"
				if op.Peer != AnySource {
					peer = strconv.Itoa(int(op.Peer))
				}
				if op.Tag != AnyTag {
					tag = strconv.Itoa(int(op.Tag))
				}
				fmt.Fprintf(bw, "  o%d: recv %db from %s tag %s\n", k, op.Bytes, peer, tag)
			}
		}
		for k, id := range ids {
			op := p.Op(id)
			if len(op.Deps) == 0 {
				continue
			}
			deps := make([]int, 0, len(op.Deps))
			for _, d := range op.Deps {
				deps = append(deps, local[d])
			}
			sort.Ints(deps)
			fmt.Fprintf(bw, "  o%d requires", k)
			for _, d := range deps {
				fmt.Fprintf(bw, " o%d", d)
			}
			fmt.Fprintln(bw)
		}
		fmt.Fprintln(bw, "}")
	}
	return bw.Flush()
}

// WriteString serializes the program to a string.
func WriteString(p *Program) string {
	var sb strings.Builder
	if err := Write(&sb, p); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return sb.String()
}
