package goal

import (
	"bufio"
	"fmt"
	"io"

	"checkpointsim/internal/network"
	"checkpointsim/internal/simtime"
)

// CriticalPath computes the longest weighted path through the program under
// the given network parameters, ignoring all resource contention (CPU
// serialization, NIC gaps, matching queues). The result is therefore a
// lower bound on any simulated makespan, and the returned op chain is the
// structurally binding dependency chain — useful for explaining *why* a
// workload amplifies checkpoint delays (long chains = amplification).
//
// Costs: calc = Work; send = SendCPU; recv = RecvCPU; a matched
// send→recv pair adds a Wire(bytes) edge. Sends and receives are matched
// statically per (src, dst, tag) channel in FIFO order, mirroring the
// simulator's non-overtaking semantics; wildcard receives get no message
// edge (omitting edges keeps the bound valid).
func CriticalPath(p *Program, net network.Params) (simtime.Duration, []OpID) {
	n := len(p.Ops)
	if n == 0 {
		return 0, nil
	}
	// Static message matching: k-th send on a channel pairs with the k-th
	// non-wildcard recv on it.
	type channel struct{ src, dst, tag int32 }
	sends := make(map[channel][]OpID)
	recvs := make(map[channel][]OpID)
	for i := range p.Ops {
		op := &p.Ops[i]
		switch op.Kind {
		case KindSend:
			ch := channel{op.Rank, op.Peer, op.Tag}
			sends[ch] = append(sends[ch], op.ID)
		case KindRecv:
			if op.Peer == AnySource || op.Tag == AnyTag {
				continue
			}
			ch := channel{op.Peer, op.Rank, op.Tag}
			recvs[ch] = append(recvs[ch], op.ID)
		}
	}
	// msgEdge[recvOp] = matching send op (NoOp if none).
	msgEdge := make([]OpID, n)
	for i := range msgEdge {
		msgEdge[i] = NoOp
	}
	for ch, ss := range sends {
		rr := recvs[ch]
		for k := 0; k < len(ss) && k < len(rr); k++ {
			msgEdge[rr[k]] = ss[k]
		}
	}

	cost := func(op *Op) simtime.Duration {
		switch op.Kind {
		case KindCalc:
			return op.Work
		case KindSend:
			return net.SendCPU(op.Bytes)
		case KindRecv:
			return net.RecvCPU(op.Bytes)
		}
		return 0
	}

	// Longest-path DP over a topological order (deps + message edges).
	indeg := make([]int32, n)
	for i := range p.Ops {
		indeg[i] = int32(len(p.Ops[i].Deps))
		if msgEdge[i] != NoOp {
			indeg[i]++
		}
	}
	// Reverse message adjacency: send -> recvs it feeds.
	msgOuts := make(map[OpID][]OpID)
	for r, s := range msgEdge {
		if s != NoOp {
			msgOuts[s] = append(msgOuts[s], OpID(r))
		}
	}
	dist := make([]simtime.Duration, n)
	from := make([]OpID, n)
	for i := range dist {
		dist[i] = -1
		from[i] = NoOp
	}
	queue := make([]OpID, 0, n)
	for i := range indeg {
		if indeg[i] == 0 {
			queue = append(queue, OpID(i))
			dist[i] = cost(&p.Ops[i])
		}
	}
	relax := func(to OpID, via OpID, edge simtime.Duration) {
		cand := dist[via] + edge + cost(p.Op(to))
		if cand > dist[to] {
			dist[to] = cand
			from[to] = via
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, out := range p.Ops[id].Outs {
			relax(out, id, 0)
			indeg[out]--
			if indeg[out] == 0 {
				queue = append(queue, out)
			}
		}
		for _, r := range msgOuts[id] {
			relax(r, id, net.Wire(p.Op(r).Bytes))
			indeg[r]--
			if indeg[r] == 0 {
				queue = append(queue, r)
			}
		}
	}
	if seen != n {
		// A cycle through message edges (e.g. a send depending on its own
		// recv across ranks) — the simulator would deadlock too. Report the
		// best bound found.
		return maxDist(dist, from)
	}
	return maxDist(dist, from)
}

func maxDist(dist []simtime.Duration, from []OpID) (simtime.Duration, []OpID) {
	best := OpID(0)
	for i := range dist {
		if dist[i] > dist[best] {
			best = OpID(i)
		}
	}
	var path []OpID
	for id := best; id != NoOp; id = from[id] {
		path = append(path, id)
		if from[id] == id {
			break // defensive: should not happen
		}
	}
	// Reverse into source-to-sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return dist[best], path
}

// WriteDOT renders the program as a Graphviz digraph: one cluster per rank,
// solid edges for dependencies, dashed edges for statically matched
// messages. Intended for small programs (inspection and documentation);
// large graphs produce large files.
func WriteDOT(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph program {")
	fmt.Fprintln(bw, "  rankdir=TB; node [shape=box, fontsize=10];")
	for rank := 0; rank < p.NumRanks; rank++ {
		ids := p.RankOps(rank)
		if len(ids) == 0 {
			continue
		}
		fmt.Fprintf(bw, "  subgraph cluster_%d {\n    label=\"rank %d\";\n", rank, rank)
		for _, id := range ids {
			op := p.Op(id)
			var label string
			switch op.Kind {
			case KindCalc:
				label = fmt.Sprintf("calc %v", op.Work)
			case KindSend:
				label = fmt.Sprintf("send %dB to %d", op.Bytes, op.Peer)
			case KindRecv:
				label = fmt.Sprintf("recv %dB from %d", op.Bytes, op.Peer)
			}
			fmt.Fprintf(bw, "    o%d [label=\"%s\"];\n", id, label)
		}
		fmt.Fprintln(bw, "  }")
	}
	for i := range p.Ops {
		for _, d := range p.Ops[i].Deps {
			fmt.Fprintf(bw, "  o%d -> o%d;\n", d, i)
		}
	}
	// Message edges via the same static matching as CriticalPath.
	type channel struct{ src, dst, tag int32 }
	sends := make(map[channel][]OpID)
	for i := range p.Ops {
		op := &p.Ops[i]
		if op.Kind == KindSend {
			ch := channel{op.Rank, op.Peer, op.Tag}
			sends[ch] = append(sends[ch], op.ID)
		}
	}
	taken := make(map[channel]int)
	for i := range p.Ops {
		op := &p.Ops[i]
		if op.Kind != KindRecv || op.Peer == AnySource || op.Tag == AnyTag {
			continue
		}
		ch := channel{op.Peer, op.Rank, op.Tag}
		k := taken[ch]
		if k < len(sends[ch]) {
			fmt.Fprintf(bw, "  o%d -> o%d [style=dashed, color=blue];\n", sends[ch][k], op.ID)
			taken[ch] = k + 1
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
