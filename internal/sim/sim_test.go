package sim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/simtime"
)

// testNet returns a simple parameter set with easily checkable arithmetic
// and rendezvous disabled.
func testNet() network.Params {
	return network.Params{
		Latency:         1000,
		Overhead:        100,
		Gap:             200,
		GapPerByte:      1,
		OverheadPerByte: 0,
	}
}

func run(t *testing.T, net network.Params, p *goal.Program, agents ...Agent) *Result {
	t.Helper()
	e, err := New(Config{Net: net, Program: p, Agents: agents, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCalcChain(t *testing.T) {
	b := goal.NewBuilder(1)
	s := b.Seq(0)
	s.Calc(100)
	s.Calc(200)
	s.Calc(300)
	r := run(t, testNet(), b.MustBuild())
	if r.Makespan != 600 {
		t.Errorf("makespan = %v, want 600", r.Makespan)
	}
	if r.RankBusy[0] != 600 {
		t.Errorf("busy = %v", r.RankBusy[0])
	}
}

func TestIndependentCalcsSerialize(t *testing.T) {
	// Two independent calcs on one rank share the CPU.
	b := goal.NewBuilder(1)
	b.Calc(0, 100)
	b.Calc(0, 100)
	r := run(t, testNet(), b.MustBuild())
	if r.Makespan != 200 {
		t.Errorf("makespan = %v, want 200", r.Makespan)
	}
}

func TestParallelRanks(t *testing.T) {
	b := goal.NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.Calc(i, simtime.Duration(100*(i+1)))
	}
	r := run(t, testNet(), b.MustBuild())
	if r.Makespan != 400 {
		t.Errorf("makespan = %v, want 400", r.Makespan)
	}
	for i, f := range r.RankFinish {
		want := simtime.Time(100 * (i + 1))
		if f != want {
			t.Errorf("rank %d finish = %v, want %v", i, f, want)
		}
	}
}

func TestEagerMessageClosedForm(t *testing.T) {
	// r0 sends s bytes to r1. Makespan = SendCPU + Wire + RecvCPU.
	net := testNet()
	const bytes = 11
	b := goal.NewBuilder(2)
	b.Send(0, 1, 0, bytes)
	b.Recv(1, 0, 0, bytes)
	r := run(t, net, b.MustBuild())
	want := simtime.Time(0).
		Add(net.SendCPU(bytes)).
		Add(net.Wire(bytes)).
		Add(net.RecvCPU(bytes))
	if r.Makespan != want {
		t.Errorf("makespan = %v, want %v", r.Makespan, want)
	}
	if r.Metrics.AppMessages != 1 || r.Metrics.AppBytes != bytes {
		t.Errorf("metrics = %+v", r.Metrics)
	}
}

func TestPingPongClosedForm(t *testing.T) {
	net := testNet()
	const bytes = 8
	b := goal.NewBuilder(2)
	s0 := b.Seq(0)
	s0.Send(1, 0, bytes)
	s0.Recv(1, 0, bytes)
	s1 := b.Seq(1)
	s1.Recv(0, 0, bytes)
	s1.Send(0, 0, bytes)
	r := run(t, net, b.MustBuild())
	oneWay := net.SendCPU(bytes) + net.Wire(bytes) + net.RecvCPU(bytes)
	if r.Makespan != simtime.Time(2*oneWay) {
		t.Errorf("makespan = %v, want %v", r.Makespan, 2*oneWay)
	}
}

func TestUnexpectedMessageQueues(t *testing.T) {
	// Message arrives before recv is posted (recv delayed by calc).
	net := testNet()
	b := goal.NewBuilder(2)
	b.Send(0, 1, 0, 1)
	s1 := b.Seq(1)
	s1.Calc(100000)
	s1.Recv(0, 0, 1)
	r := run(t, net, b.MustBuild())
	// Recv completes RecvCPU after the calc (message waited in unexpected).
	want := simtime.Time(100000).Add(net.RecvCPU(1))
	if r.Makespan != want {
		t.Errorf("makespan = %v, want %v", r.Makespan, want)
	}
	if r.Metrics.UnexpectedMax != 1 {
		t.Errorf("UnexpectedMax = %d, want 1", r.Metrics.UnexpectedMax)
	}
}

func TestLateMessagePostedQueue(t *testing.T) {
	// Recv posted before message exists: sender delayed by calc.
	net := testNet()
	b := goal.NewBuilder(2)
	s0 := b.Seq(0)
	s0.Calc(50000)
	s0.Send(1, 0, 1)
	b.Recv(1, 0, 0, 1)
	r := run(t, net, b.MustBuild())
	want := simtime.Time(50000).Add(net.SendCPU(1)).Add(net.Wire(1)).Add(net.RecvCPU(1))
	if r.Makespan != want {
		t.Errorf("makespan = %v, want %v", r.Makespan, want)
	}
	if r.Metrics.PostedMax != 1 {
		t.Errorf("PostedMax = %d", r.Metrics.PostedMax)
	}
}

func TestNICSerializesBackToBackSends(t *testing.T) {
	// Two sends from r0: second injection waits for NIC gap.
	net := testNet()
	const bytes = 10
	b := goal.NewBuilder(2)
	s0 := b.Seq(0)
	s0.Send(1, 0, bytes)
	s0.Send(1, 1, bytes)
	s1 := b.Seq(1)
	s1.Recv(0, 0, bytes)
	s1.Recv(0, 1, bytes)
	r := run(t, net, b.MustBuild())
	// First: CPU [0, sc); inject at sc; NIC busy until sc+nic.
	// Second: CPU [sc, 2sc); inject at max(2sc, sc+nic).
	sc := net.SendCPU(bytes)
	nic := net.NIC(bytes)
	inj2 := simtime.Time(0).Add(sc).Add(nic)
	if simtime.Time(2*sc) > inj2 {
		inj2 = simtime.Time(2 * sc)
	}
	want := inj2.Add(net.Wire(bytes)).Add(net.RecvCPU(bytes))
	if r.Makespan != want {
		t.Errorf("makespan = %v, want %v", r.Makespan, want)
	}
}

func TestFIFOMatchingSameChannel(t *testing.T) {
	// Two same-tag messages must match posted recvs in order; sizes differ
	// so a mismatch would change the makespan.
	net := testNet()
	b := goal.NewBuilder(2)
	s0 := b.Seq(0)
	s0.Send(1, 0, 100)
	s0.Send(1, 0, 1)
	s1 := b.Seq(1)
	first := s1.Recv(0, 0, 100)
	s1.Recv(0, 0, 1)
	r := run(t, net, b.MustBuild())
	_ = first
	if r.Metrics.Matches != 2 {
		t.Errorf("matches = %d", r.Metrics.Matches)
	}
}

func TestWildcardMatching(t *testing.T) {
	net := testNet()
	b := goal.NewBuilder(3)
	b.Send(0, 2, 7, 8)
	b.Send(1, 2, 9, 8)
	s2 := b.Seq(2)
	s2.Recv(goal.AnySource, goal.AnyTag, 8)
	s2.Recv(goal.AnySource, goal.AnyTag, 8)
	r := run(t, net, b.MustBuild())
	if r.Metrics.Matches != 2 {
		t.Errorf("matches = %d", r.Metrics.Matches)
	}
}

func TestTagSelectiveMatching(t *testing.T) {
	// Recv for tag 1 posted first must NOT take the tag-0 message.
	net := testNet()
	b := goal.NewBuilder(2)
	s0 := b.Seq(0)
	s0.Send(1, 0, 10)
	s0.Send(1, 1, 20)
	s1 := b.Seq(1)
	s1.Recv(0, 1, 20) // waits for the second message
	s1.Recv(0, 0, 10)
	r := run(t, net, b.MustBuild())
	if r.Metrics.Matches != 2 {
		t.Errorf("matches = %d", r.Metrics.Matches)
	}
}

func TestRendezvousClosedForm(t *testing.T) {
	net := testNet()
	net.RendezvousThreshold = 64
	const bytes = 128
	b := goal.NewBuilder(2)
	b.Send(0, 1, 0, bytes)
	b.Recv(1, 0, 0, bytes)
	r := run(t, net, b.MustBuild())
	// RTS: o on sender, L on wire. Recv already posted: CTS costs o, L back.
	// Data: SendCPU(s) on sender, Wire(s), RecvCPU(s).
	want := simtime.Time(0).
		Add(net.Overhead).Add(net.Wire(0)).
		Add(net.Overhead).Add(net.Wire(0)).
		Add(net.SendCPU(bytes)).Add(net.Wire(bytes)).Add(net.RecvCPU(bytes))
	if r.Makespan != want {
		t.Errorf("makespan = %v, want %v", r.Makespan, want)
	}
	if r.Metrics.Rendezvous != 1 {
		t.Errorf("rendezvous = %d", r.Metrics.Rendezvous)
	}
}

func TestRendezvousWaitsForReceiver(t *testing.T) {
	// The receiver posts late; the sender's data transfer (and completion)
	// must wait — the coupling that propagates delay under rendezvous.
	net := testNet()
	net.RendezvousThreshold = 64
	const bytes = 128
	const recvDelay = 1000000
	b := goal.NewBuilder(2)
	s0 := b.Seq(0)
	s0.Send(1, 0, bytes)
	sendTail := s0.Calc(1) // depends on send completing
	_ = sendTail
	s1 := b.Seq(1)
	s1.Calc(recvDelay)
	s1.Recv(0, 0, bytes)
	r := run(t, net, b.MustBuild())
	// CTS cannot be sent before recvDelay.
	min := simtime.Time(recvDelay)
	if r.RankFinish[0] <= min {
		t.Errorf("rendezvous sender finished at %v, before receiver posted (%v)",
			r.RankFinish[0], min)
	}
}

func TestEagerDoesNotWaitForReceiver(t *testing.T) {
	net := testNet() // rendezvous disabled
	const bytes = 128
	b := goal.NewBuilder(2)
	s0 := b.Seq(0)
	s0.Send(1, 0, bytes)
	s0.Calc(1)
	s1 := b.Seq(1)
	s1.Calc(1000000)
	s1.Recv(0, 0, bytes)
	r := run(t, net, b.MustBuild())
	if r.RankFinish[0] >= 1000000 {
		t.Errorf("eager sender blocked on receiver: finish %v", r.RankFinish[0])
	}
}

func TestDeadlockDetected(t *testing.T) {
	b := goal.NewBuilder(2)
	b.Recv(1, 0, 0, 8) // no matching send
	e, err := New(Config{Net: testNet(), Program: b.MustBuild()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("want deadlock error, got %v", err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	b := goal.NewBuilder(1)
	b.Calc(0, 1)
	e, _ := New(Config{Net: testNet(), Program: b.MustBuild()})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Net: testNet()}); err == nil {
		t.Error("nil program accepted")
	}
	b := goal.NewBuilder(1)
	b.Calc(0, 1)
	p := b.MustBuild()
	if _, err := New(Config{Net: network.Params{Latency: -1}, Program: p}); err == nil {
		t.Error("bad net accepted")
	}
}

func TestEventCap(t *testing.T) {
	b := goal.NewBuilder(2)
	s0 := b.Seq(0)
	s1 := b.Seq(1)
	for i := 0; i < 100; i++ {
		s0.Send(1, 0, 8)
		s1.Recv(0, 0, 8)
	}
	e, _ := New(Config{Net: testNet(), Program: b.MustBuild(), MaxEvents: 10})
	_, err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "event cap") {
		t.Errorf("want event cap error, got %v", err)
	}
	if !errors.Is(err, ErrCapExceeded) {
		t.Errorf("event cap error should wrap ErrCapExceeded, got %v", err)
	}
}

func TestMaxTimeCap(t *testing.T) {
	b := goal.NewBuilder(1)
	s := b.Seq(0)
	s.Calc(1000)
	s.Calc(1000)
	e, _ := New(Config{Net: testNet(), Program: b.MustBuild(), MaxTime: 500})
	_, err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "time cap") {
		t.Errorf("want time cap error, got %v", err)
	}
	if !errors.Is(err, ErrCapExceeded) {
		t.Errorf("time cap error should wrap ErrCapExceeded, got %v", err)
	}
}

// --- agent machinery ---

type fnAgent struct {
	init func(ctx *Context)
}

func (a *fnAgent) Init(ctx *Context) { a.init(ctx) }

type penaltyAgent struct {
	per simtime.Duration
}

func (a *penaltyAgent) Init(*Context) {}
func (a *penaltyAgent) SendPenalty(src, dst int, bytes int64) simtime.Duration {
	return a.per
}

func TestSeizeCPUDelaysWork(t *testing.T) {
	b := goal.NewBuilder(1)
	b.Calc(0, 100)
	var end simtime.Time
	a := &fnAgent{init: func(ctx *Context) {
		ctx.SeizeCPU(0, 1000, "test", func(e simtime.Time) { end = e })
	}}
	r := run(t, testNet(), b.MustBuild(), a)
	if r.Makespan != 1100 {
		t.Errorf("makespan = %v, want 1100", r.Makespan)
	}
	if end != 1000 {
		t.Errorf("seize end = %v, want 1000", end)
	}
	if r.SeizedTime["test"] != 1000 || r.SeizedCount["test"] != 1 {
		t.Errorf("seize accounting = %v %v", r.SeizedTime, r.SeizedCount)
	}
	if r.TotalSeized() != 1000 {
		t.Errorf("TotalSeized = %v", r.TotalSeized())
	}
}

func TestSeizeIsNonPreemptiveButPriority(t *testing.T) {
	// A long calc is running; a seizure requested mid-run starts right after
	// it, ahead of the second queued calc.
	b := goal.NewBuilder(1)
	s := b.Seq(0)
	s.Calc(1000)
	s.Calc(1000)
	var end simtime.Time
	a := &fnAgent{init: func(ctx *Context) {
		ctx.After(500, func() {
			ctx.SeizeCPU(0, 300, "ck", func(e simtime.Time) { end = e })
		})
	}}
	r := run(t, testNet(), b.MustBuild(), a)
	if end != 1300 {
		t.Errorf("seizure ended at %v, want 1300 (after current op)", end)
	}
	if r.Makespan != 2300 {
		t.Errorf("makespan = %v, want 2300", r.Makespan)
	}
}

func TestSeizeWhileIdle(t *testing.T) {
	// Rank 1 idles waiting for a message; a seizure during the idle period
	// delays the recv processing only if still active when it arrives.
	net := testNet()
	b := goal.NewBuilder(2)
	s0 := b.Seq(0)
	s0.Calc(10000)
	s0.Send(1, 0, 1)
	b.Recv(1, 0, 0, 1)
	a := &fnAgent{init: func(ctx *Context) {
		ctx.At(0, func() { ctx.SeizeCPU(1, 50000, "ck", nil) })
	}}
	r := run(t, net, b.MustBuild(), a)
	// Message arrives ~ 10000+SendCPU+Wire < 50000; recv CPU must wait for
	// the seizure to finish.
	want := simtime.Time(50000).Add(net.RecvCPU(1))
	if r.Makespan != want {
		t.Errorf("makespan = %v, want %v", r.Makespan, want)
	}
}

func TestSendPenaltyHook(t *testing.T) {
	net := testNet()
	b := goal.NewBuilder(2)
	b.Send(0, 1, 0, 8)
	b.Recv(1, 0, 0, 8)
	base := run(t, net, b.MustBuild())

	b2 := goal.NewBuilder(2)
	b2.Send(0, 1, 0, 8)
	b2.Recv(1, 0, 0, 8)
	taxed := run(t, net, b2.MustBuild(), &penaltyAgent{per: 777})
	if got := taxed.Makespan.Sub(base.Makespan); got != 777 {
		t.Errorf("penalty delta = %v, want 777", got)
	}
}

func TestSendControlRoundTrip(t *testing.T) {
	net := testNet()
	b := goal.NewBuilder(2)
	b.Calc(0, 1000000) // keep the app alive until control delivery
	b.Calc(1, 1)
	var delivered simtime.Time
	a := &fnAgent{init: func(ctx *Context) {
		ctx.SendControl(0, 1, 4, func(at simtime.Time) { delivered = at })
	}}
	run(t, net, b.MustBuild(), a)
	// The receiver's 1ns calc finishes long before the control message
	// arrives, so the receive processing starts at arrival.
	want := simtime.Time(0).Add(net.SendCPU(4)).Add(net.Wire(4)).Add(net.RecvCPU(4))
	if delivered != want {
		t.Errorf("delivered at %v, want %v", delivered, want)
	}
}

func TestTimers(t *testing.T) {
	b := goal.NewBuilder(1)
	b.Calc(0, 10000)
	var fired []simtime.Time
	a := &fnAgent{init: func(ctx *Context) {
		ctx.At(500, func() { fired = append(fired, ctx.Now()) })
		ctx.After(200, func() { fired = append(fired, ctx.Now()) })
	}}
	run(t, testNet(), b.MustBuild(), a)
	if len(fired) != 2 || fired[0] != 200 || fired[1] != 500 {
		t.Errorf("timers fired at %v", fired)
	}
}

func TestContextPanics(t *testing.T) {
	b := goal.NewBuilder(2)
	b.Calc(0, 10)
	b.Calc(1, 10)
	cases := []func(ctx *Context){
		func(ctx *Context) { ctx.After(1, func() { ctx.At(0, nil) }) },
		func(ctx *Context) { ctx.After(-1, nil) },
		func(ctx *Context) { ctx.SeizeCPU(5, 1, "x", nil) },
		func(ctx *Context) { ctx.SeizeCPU(0, -1, "x", nil) },
		func(ctx *Context) { ctx.SendControl(0, 0, 1, nil) },
		func(ctx *Context) { ctx.SendControl(0, 9, 1, nil) },
		func(ctx *Context) { ctx.SendControl(0, 1, -1, nil) },
	}
	for i, f := range cases {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			a := &fnAgent{init: f}
			e, err := New(Config{Net: testNet(), Program: b.MustBuild(), Agents: []Agent{a}})
			if err != nil {
				t.Fatal(err)
			}
			_, err = e.Run()
			_ = err
		}()
	}
}

func TestContextIntrospection(t *testing.T) {
	b := goal.NewBuilder(3)
	b.Calc(0, 100)
	b.Calc(1, 200)
	b.Calc(2, 300)
	var ops int
	var nr int
	a := &fnAgent{init: func(ctx *Context) {
		nr = ctx.NumRanks()
		ctx.At(250, func() {
			ops = ctx.OpsRemaining()
			if ctx.RankProgress(0) != 100 {
				t.Errorf("RankProgress(0) = %v", ctx.RankProgress(0))
			}
			if ctx.Rand() == nil {
				t.Error("nil Rand")
			}
		})
	}}
	run(t, testNet(), b.MustBuild(), a)
	if nr != 3 {
		t.Errorf("NumRanks = %d", nr)
	}
	if ops != 1 {
		t.Errorf("OpsRemaining at t=250 = %d, want 1", ops)
	}
}

func TestResultString(t *testing.T) {
	b := goal.NewBuilder(2)
	b.Send(0, 1, 0, 8)
	b.Recv(1, 0, 0, 8)
	a := &fnAgent{init: func(ctx *Context) { ctx.SeizeCPU(0, 10, "ck", nil) }}
	r := run(t, testNet(), b.MustBuild(), a)
	s := r.String()
	for _, want := range []string{"makespan", "messages", "seized[ck]"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String missing %q:\n%s", want, s)
		}
	}
}

func TestSlowdownHelpers(t *testing.T) {
	base := &Result{Makespan: 1000}
	r := &Result{Makespan: 1100}
	if got := r.Slowdown(base); got != 1.1 {
		t.Errorf("Slowdown = %v", got)
	}
	if got := r.OverheadPercent(base); got < 9.99 || got > 10.01 {
		t.Errorf("OverheadPercent = %v", got)
	}
	if (&Result{Makespan: 5}).Slowdown(&Result{}) != 0 {
		t.Error("zero baseline should give 0")
	}
}

// ring builds a P-rank ring exchange program with niter iterations.
func ring(p, niter int, bytes int64, work simtime.Duration) *goal.Program {
	b := goal.NewBuilder(p)
	seqs := make([]*goal.Sequencer, p)
	for i := range seqs {
		seqs[i] = b.Seq(i)
	}
	for it := 0; it < niter; it++ {
		for i := 0; i < p; i++ {
			s := seqs[i]
			s.Calc(work)
			sd := s.Fork(goal.KindSend, int32((i+1)%p), int32(it), bytes)
			rv := s.Fork(goal.KindRecv, int32((i+p-1)%p), int32(it), bytes)
			s.Join(sd, rv)
		}
	}
	return b.MustBuild()
}

func TestDeterminism(t *testing.T) {
	p := ring(8, 5, 256, 10000)
	runOnce := func() *Result {
		e, err := New(Config{Net: network.DefaultParams(), Program: p, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := runOnce(), runOnce()
	if a.Makespan != b.Makespan || a.Events != b.Events || a.Metrics != b.Metrics {
		t.Errorf("runs differ: %v/%v events %d/%d", a.Makespan, b.Makespan, a.Events, b.Events)
	}
	for i := range a.RankFinish {
		if a.RankFinish[i] != b.RankFinish[i] {
			t.Fatalf("rank %d finish differs", i)
		}
	}
}

// Property: makespan of a ring is at least the per-rank serial work and all
// messages match exactly once.
func TestQuickRingInvariant(t *testing.T) {
	f := func(seed uint16) bool {
		p := int(seed)%6 + 2
		iters := int(seed)%4 + 1
		prog := ring(p, iters, 64, 1000)
		e, err := New(Config{Net: network.DefaultParams(), Program: prog, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		r, err := e.Run()
		if err != nil {
			return false
		}
		if r.Makespan < simtime.Time(1000*iters) {
			return false
		}
		return r.Metrics.Matches == int64(p*iters) &&
			r.Metrics.AppMessages == int64(p*iters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRing64(b *testing.B) {
	prog := ring(64, 10, 1024, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(Config{Net: network.DefaultParams(), Program: prog, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScaleCPUSlowsJobs(t *testing.T) {
	b := goal.NewBuilder(1)
	s := b.Seq(0)
	s.Calc(1000)
	s.Calc(1000)
	var restore func()
	a := &fnAgent{init: func(ctx *Context) {
		restore = ctx.ScaleCPU(0, 2.0)
		// Restore after the first op has been granted (at t=0) and before
		// the second is granted: the first costs 2000, the second 1000.
		ctx.At(2000, func() { restore() })
	}}
	r := run(t, testNet(), b.MustBuild(), a)
	if r.Makespan != 3000 {
		t.Errorf("makespan = %v, want 3000 (2000 scaled + 1000 nominal)", r.Makespan)
	}
	if r.RankScaledExtra[0] != 1000 {
		t.Errorf("scaled extra = %v, want 1000", r.RankScaledExtra[0])
	}
}

func TestScaleCPUNests(t *testing.T) {
	b := goal.NewBuilder(1)
	b.Calc(0, 1000)
	a := &fnAgent{init: func(ctx *Context) {
		ctx.ScaleCPU(0, 2.0)
		ctx.ScaleCPU(0, 1.5)
	}}
	r := run(t, testNet(), b.MustBuild(), a)
	if r.Makespan != 3000 {
		t.Errorf("makespan = %v, want 3000 (factor 3.0)", r.Makespan)
	}
}

func TestScaleCPUDoesNotAffectSeizures(t *testing.T) {
	b := goal.NewBuilder(1)
	b.Calc(0, 100)
	a := &fnAgent{init: func(ctx *Context) {
		ctx.ScaleCPU(0, 10)
		ctx.SeizeCPU(0, 500, "ck", nil)
	}}
	r := run(t, testNet(), b.MustBuild(), a)
	// Seizure runs first (priority): 500 absolute, then calc at 10x: 1000.
	if r.Makespan != 1500 {
		t.Errorf("makespan = %v, want 1500", r.Makespan)
	}
}

func TestScaleCPURestoreIdempotent(t *testing.T) {
	b := goal.NewBuilder(1)
	s := b.Seq(0)
	s.Calc(1000)
	a := &fnAgent{init: func(ctx *Context) {
		r1 := ctx.ScaleCPU(0, 2)
		r1()
		r1() // double restore must not underflow or panic
	}}
	r := run(t, testNet(), b.MustBuild(), a)
	if r.Makespan != 1000 {
		t.Errorf("makespan = %v, want 1000 (scale fully restored)", r.Makespan)
	}
}

func TestScaleCPUPanics(t *testing.T) {
	b := goal.NewBuilder(1)
	b.Calc(0, 10)
	for i, f := range []func(ctx *Context){
		func(ctx *Context) { ctx.ScaleCPU(5, 2) },
		func(ctx *Context) { ctx.ScaleCPU(0, 0.5) },
	} {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			a := &fnAgent{init: f}
			e, err := New(Config{Net: testNet(), Program: b.MustBuild(), Agents: []Agent{a}})
			if err != nil {
				t.Fatal(err)
			}
			_, _ = e.Run()
		}()
	}
}

func TestHoldAppGatesOnlyAppWork(t *testing.T) {
	// While held, a control message still processes; app calc waits.
	net := testNet()
	b := goal.NewBuilder(2)
	b.Calc(0, 1000)
	b.Calc(1, 1000000)
	var delivered simtime.Time
	a := &fnAgent{init: func(ctx *Context) {
		release := ctx.HoldApp(0, "gate")
		ctx.SendControl(1, 0, 4, func(at simtime.Time) { delivered = at })
		ctx.At(500000, release)
	}}
	r := run(t, net, b.MustBuild(), a)
	want := simtime.Time(0).Add(net.SendCPU(4)).Add(net.Wire(4)).Add(net.RecvCPU(4))
	if delivered != want {
		t.Errorf("control delivered at %v during hold, want %v", delivered, want)
	}
	// Rank 0's calc could only start at release.
	if r.RankFinish[0] != 501000 {
		t.Errorf("held calc finished at %v, want 501000", r.RankFinish[0])
	}
	if r.HeldTime["gate"] != 500000 {
		t.Errorf("held time = %v", r.HeldTime["gate"])
	}
	if r.HeldCount["gate"] != 1 {
		t.Errorf("held count = %v", r.HeldCount["gate"])
	}
}

func TestHoldAppNests(t *testing.T) {
	b := goal.NewBuilder(1)
	b.Calc(0, 100)
	a := &fnAgent{init: func(ctx *Context) {
		r1 := ctx.HoldApp(0, "a")
		r2 := ctx.HoldApp(0, "b")
		ctx.At(1000, r1)
		ctx.At(2000, r2)
	}}
	r := run(t, testNet(), b.MustBuild(), a)
	if r.Makespan != 2100 {
		t.Errorf("makespan = %v, want 2100 (released at the outermost)", r.Makespan)
	}
}

func TestFabricSerializesBigTransfers(t *testing.T) {
	// Two senders push 1MB each to distinct receivers. Unconstrained, they
	// proceed in parallel; with a finite bisection they serialize.
	build := func() *goal.Program {
		b := goal.NewBuilder(4)
		b.Send(0, 2, 0, 1<<20)
		b.Recv(2, 0, 0, 1<<20)
		b.Send(1, 3, 0, 1<<20)
		b.Recv(3, 1, 0, 1<<20)
		return b.MustBuild()
	}
	net := testNet()
	free := run(t, net, build())
	if free.Metrics.FabricBusy != 0 {
		t.Errorf("unconstrained run accumulated fabric busy %v", free.Metrics.FabricBusy)
	}

	net.BisectionBytesPerSec = 1 << 30 // ~1ms per 1MB message
	constrained := run(t, net, build())
	if constrained.Metrics.FabricBusy == 0 {
		t.Error("no fabric occupancy recorded")
	}
	if constrained.Makespan <= free.Makespan {
		t.Errorf("bisection constraint did not slow the run: %v vs %v",
			constrained.Makespan, free.Makespan)
	}
	// Serialization of 2x1MB through 1GB/s adds about one extra occupancy.
	occ := net.FabricOccupancy(1 << 20)
	if got := constrained.Makespan.Sub(free.Makespan); got < simtime.Duration(occ)/2 {
		t.Errorf("fabric delay %v suspiciously small (occupancy %v)", got, occ)
	}
}

func TestFabricUnconstrainedForSmallMessages(t *testing.T) {
	net := testNet()
	net.BisectionBytesPerSec = 1e12
	b := goal.NewBuilder(2)
	b.Send(0, 1, 0, 8)
	b.Recv(1, 0, 0, 8)
	r := run(t, net, b.MustBuild())
	// 8B through 1TB/s is sub-nanosecond: rounds to zero occupancy.
	if r.Metrics.FabricBusy != 0 {
		t.Errorf("tiny message accumulated fabric busy %v", r.Metrics.FabricBusy)
	}
}
