package sim

// Engine-level snapshot/restore tests: round-trip determinism on random
// programs, a corruption table proving hostile blobs error instead of
// panicking or resuming wrong, and a native fuzz target hammering the
// decoder validation paths. The exp layer re-proves byte-identity at the
// experiment level (internal/exp/resume_test.go); these tests pin the
// engine contract in isolation.

import (
	"errors"
	"testing"

	"checkpointsim/internal/network"
	"checkpointsim/internal/rng"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// snapTestAgent is the smallest useful Resumable agent: a periodic owned
// timer that seizes CPU on a rotating rank and draws from the engine RNG,
// so its state (the firing count) and its pending timer both matter to the
// remainder of the run.
type snapTestAgent struct {
	ctx    *Context
	period simtime.Duration
	fires  int64
}

func (a *snapTestAgent) Init(ctx *Context) {
	a.ctx = ctx
	ctx.AfterOwned(a.period, a, 0, 0)
}

func (a *snapTestAgent) OnTimer(kind uint8, arg int64) {
	a.fires++
	rank := int(a.fires) % a.ctx.NumRanks()
	a.ctx.SeizeCPU(rank, simtime.Duration(500+a.ctx.Rand().Intn(2000)), "snaptest", nil)
	if a.ctx.OpsRemaining() > 0 {
		a.ctx.AfterOwned(a.period, a, 0, 0)
	}
}

func (a *snapTestAgent) Quiesced() bool                    { return true }
func (a *snapTestAgent) EncodeState(enc *snapshot.Encoder) { enc.I64(a.fires) }
func (a *snapTestAgent) DecodeState(ctx *Context, dec *snapshot.Decoder) error {
	a.ctx = ctx
	a.fires = dec.I64()
	return dec.Err()
}

// snapConfig builds the canonical test configuration for seed: a random
// program (shared generator with fuzz_test.go) plus the periodic agent.
// Fresh agent objects each call — restore must fully overwrite them anyway,
// but the tests should not depend on that.
func snapConfig(seed uint64, collect func(Snapshot)) Config {
	net := network.DefaultParams()
	net.RendezvousThreshold = 64 * 1024
	prog := randomProgram(rng.New(seed))
	cfg := Config{Net: net, Program: prog,
		Agents: []Agent{&snapTestAgent{period: 40_000}},
		Seed:   seed, MaxEvents: 50_000_000}
	if collect != nil {
		cfg.SnapshotEvery = 1
		cfg.OnSnapshot = collect
	}
	return cfg
}

// monolithicRun executes the run uninterrupted, capturing a snapshot at
// every safe boundary (cadence 1) and the trace stream.
func monolithicRun(t *testing.T, seed uint64) ([]Snapshot, []TraceEvent, *Result) {
	t.Helper()
	var snaps []Snapshot
	var trace []TraceEvent
	cfg := snapConfig(seed, func(s Snapshot) { snaps = append(snaps, s) })
	cfg.Trace = func(ev TraceEvent) { trace = append(trace, ev) }
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatalf("seed %d: no safe boundary found in %d events", seed, res.Events)
	}
	return snaps, trace, res
}

// TestSnapshotRoundTrip: for several random programs, restoring any
// mid-run snapshot into a fresh engine reproduces the remainder of the run
// exactly — result, metrics, event count, and the trace suffix.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		snaps, trace, res := monolithicRun(t, seed)
		// First, middle, and last boundary.
		for _, i := range []int{0, len(snaps) / 2, len(snaps) - 1} {
			s := snaps[i]
			var suffix []TraceEvent
			cfg := snapConfig(seed, nil)
			cfg.Trace = func(ev TraceEvent) { suffix = append(suffix, ev) }
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Restore(s.Blob); err != nil {
				t.Fatalf("seed %d snapshot %d (t=%v): %v", seed, i, s.Time, err)
			}
			got, err := eng.Run()
			if err != nil {
				t.Fatalf("seed %d snapshot %d: resumed run: %v", seed, i, err)
			}
			if got.Makespan != res.Makespan || got.Events != res.Events || got.Metrics != res.Metrics {
				t.Errorf("seed %d snapshot %d (t=%v, %d events): resumed run diverged "+
					"(makespan %v vs %v, events %d vs %d)",
					seed, i, s.Time, s.Events, got.Makespan, res.Makespan, got.Events, res.Events)
				continue
			}
			want := trace[s.TraceEvents:]
			if len(suffix) != len(want) {
				t.Errorf("seed %d snapshot %d: trace suffix has %d records, want %d",
					seed, i, len(suffix), len(want))
				continue
			}
			for j := range want {
				if suffix[j] != want[j] {
					t.Errorf("seed %d snapshot %d: trace record %d diverged:\n got %+v\nwant %+v",
						seed, i, j, suffix[j], want[j])
					break
				}
			}
		}
	}
}

// restoreInto builds a fresh engine for seed and restores blob into it.
func restoreInto(t *testing.T, seed uint64, blob []byte) error {
	t.Helper()
	eng, err := New(snapConfig(seed, nil))
	if err != nil {
		t.Fatal(err)
	}
	return eng.Restore(blob)
}

// TestSnapshotCorruptionTable: every way a blob can be damaged yields an
// error — never a panic, never a silently wrong resume.
func TestSnapshotCorruptionTable(t *testing.T) {
	const seed = 42
	snaps, _, _ := monolithicRun(t, seed)
	blob := snaps[len(snaps)/2].Blob

	t.Run("truncation", func(t *testing.T) {
		// Every prefix of the sealed blob, and — to get past the digest
		// check into the field decoders — every 7th prefix of the payload
		// re-sealed with a valid digest.
		for n := 0; n < len(blob); n++ {
			if err := restoreInto(t, seed, blob[:n]); err == nil {
				t.Fatalf("restore accepted a %d-byte prefix of a %d-byte blob", n, len(blob))
			}
		}
		_, payload, err := snapshot.Open(blob)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(payload); n += 7 {
			resealed := snapshot.Seal(snapshot.FormatVersion, payload[:n])
			if err := restoreInto(t, seed, resealed); err == nil {
				t.Fatalf("restore accepted a re-sealed %d-byte payload prefix", n)
			}
		}
	})

	t.Run("bit-flips", func(t *testing.T) {
		// Single-bit flips in the sealed blob are all caught by the digest;
		// flips in the payload re-sealed with a fresh digest must be caught
		// by field validation. Sampled stride keeps this fast.
		for i := 0; i < len(blob); i += 11 {
			bad := append([]byte(nil), blob...)
			bad[i] ^= 1 << (i % 8)
			if err := restoreInto(t, seed, bad); err == nil {
				t.Fatalf("restore accepted blob with byte %d flipped", i)
			}
		}
		_, payload, err := snapshot.Open(blob)
		if err != nil {
			t.Fatal(err)
		}
		diverged := 0
		for i := 0; i < len(payload); i += 5 {
			mut := append([]byte(nil), payload...)
			mut[i] ^= 1 << (i % 8)
			resealed := snapshot.Seal(snapshot.FormatVersion, mut)
			// A payload flip may land in a value the decoder cannot
			// distinguish from legitimate state (a counter, a duration);
			// those restore fine and merely simulate a different world.
			// What must never happen is a panic — which the harness turns
			// into a test failure — so an error OR a clean restore both
			// pass. Count the rejections to prove validation actually runs.
			if err := restoreInto(t, seed, resealed); err != nil {
				diverged++
			}
		}
		if diverged == 0 {
			t.Error("no payload mutation was rejected; is field validation wired up?")
		}
	})

	t.Run("version-mismatch", func(t *testing.T) {
		_, payload, _ := snapshot.Open(blob)
		bad := snapshot.Seal(snapshot.FormatVersion+1, payload)
		if err := restoreInto(t, seed, bad); !errors.Is(err, snapshot.ErrVersion) {
			t.Errorf("future format version: %v, want ErrVersion", err)
		}
	})

	t.Run("digest-flip", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)-1] ^= 0x01
		if err := restoreInto(t, seed, bad); !errors.Is(err, snapshot.ErrDigest) {
			t.Errorf("flipped digest: %v, want ErrDigest", err)
		}
	})

	t.Run("config-mismatch", func(t *testing.T) {
		// Same program, different seed: the config digest embedded in the
		// blob must refuse the restore.
		cfg := snapConfig(seed, nil)
		cfg.Seed = seed + 1
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Restore(blob); !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("different seed: %v, want ErrConfigMismatch", err)
		}
	})

	t.Run("restore-after-run", func(t *testing.T) {
		eng, err := New(snapConfig(seed, nil))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Restore(blob); err == nil {
			t.Error("Restore accepted on an engine that already ran")
		}
	})

	t.Run("double-restore", func(t *testing.T) {
		eng, err := New(snapConfig(seed, nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Restore(blob); err != nil {
			t.Fatal(err)
		}
		if err := eng.Restore(blob); err == nil {
			t.Error("second Restore accepted")
		}
	})

	t.Run("poisoned-after-failure", func(t *testing.T) {
		eng, err := New(snapConfig(seed, nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Restore(blob[:len(blob)/2]); err == nil {
			t.Fatal("truncated restore accepted")
		}
		if _, err := eng.Run(); err == nil {
			t.Error("Run accepted on a poisoned (half-restored) engine")
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to Engine.Restore through three
// doors of increasing depth: the raw blob (exercises framing), the bytes
// re-sealed as a payload (exercises the config-digest gate), and the bytes
// re-sealed behind the engine's real config digest (exercises every field
// decoder and bounds check). The contract under fuzz: an error or a clean
// restore, never a panic. A clean restore must then run without panicking.
//
// Smoke-run beyond the seed corpus with:
//
//	go test -fuzz=FuzzSnapshotDecode -fuzztime=10s ./internal/sim
func FuzzSnapshotDecode(f *testing.F) {
	const seed = 42
	var snaps []Snapshot
	cfg := snapConfig(seed, func(s Snapshot) { snaps = append(snaps, s) })
	eng, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		f.Fatal(err)
	}
	_, realPayload, err := snapshot.Open(snaps[len(snaps)/2].Blob)
	if err != nil {
		f.Fatal(err)
	}
	digest := realPayload[:32]

	f.Add([]byte{})
	f.Add(snaps[0].Blob)
	f.Add(snaps[len(snaps)/2].Blob)
	f.Add(append([]byte(nil), realPayload...))
	f.Add(append([]byte(nil), realPayload[32:]...)) // digest-stripped payload
	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := func() *Engine {
			e, err := New(snapConfig(seed, nil))
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		tryRestore := func(blob []byte) {
			e := fresh()
			if err := e.Restore(blob); err != nil {
				return
			}
			if _, err := e.Run(); err != nil {
				// A valid snapshot may still describe a capped run; an
				// error is fine, a panic is not.
				return
			}
		}
		tryRestore(data)
		tryRestore(snapshot.Seal(snapshot.FormatVersion, data))
		tryRestore(snapshot.Seal(snapshot.FormatVersion, append(append([]byte(nil), digest...), data...)))
	})
}
