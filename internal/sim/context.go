package sim

import (
	"fmt"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/rng"
	"checkpointsim/internal/simtime"
)

// This file is the agent-facing API: everything a checkpointing protocol,
// noise generator, or failure injector may do to a running simulation.

// Now returns the current simulated time.
func (c *Context) Now() simtime.Time { return c.eng.now }

// NumRanks returns the number of ranks in the simulated application.
func (c *Context) NumRanks() int { return c.eng.prog.NumRanks }

// Rand returns the simulation's deterministic random source. Agents must
// draw from it only inside event callbacks (Init, timers, deliveries), where
// the total event order makes consumption deterministic.
func (c *Context) Rand() *rng.Source { return c.eng.rand }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (c *Context) At(t simtime.Time, fn func()) {
	if t < c.eng.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, c.eng.now))
	}
	c.eng.queue.Push(t, event{kind: evTimer, fn: fn})
}

// After schedules fn to run d from now. Negative d panics.
func (c *Context) After(d simtime.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: After(%v) negative", d))
	}
	c.At(c.eng.now.Add(d), fn)
}

// OwnTimers registers o as a timer owner under a stable string key, enabling
// AtOwned. Agents are registered automatically at New under "agent:<index>";
// subsystems that are not agents (the shared storage arbiter) register
// themselves when they bind to the simulation. Registration is idempotent
// for the same (key, owner) pair; reusing a key for a different owner
// panics — keys are the identity snapshots serialize.
func (c *Context) OwnTimers(key string, o TimerOwner) {
	c.eng.registerOwner(key, o)
}

// AtOwned schedules a defunctionalized timer: at absolute time t, o.OnTimer
// (kind, arg) runs. Unlike At, the pending timer is pure data — it
// serializes into snapshots and survives Restore with its exact queue
// position. o must have been registered via OwnTimers (agents are
// registered automatically). Scheduling in the past panics.
func (c *Context) AtOwned(t simtime.Time, o TimerOwner, kind uint8, arg int64) {
	if t < c.eng.now {
		panic(fmt.Sprintf("sim: AtOwned(%v) is in the past (now %v)", t, c.eng.now))
	}
	id, ok := c.eng.ownerIDs[o]
	if !ok {
		panic(fmt.Sprintf("sim: AtOwned on unregistered TimerOwner %T", o))
	}
	c.eng.queue.Push(t, event{kind: evTimer, owner: id, tkind: kind, targ: arg})
}

// AfterOwned schedules a defunctionalized timer d from now (see AtOwned).
func (c *Context) AfterOwned(d simtime.Duration, o TimerOwner, kind uint8, arg int64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: AfterOwned(%v) negative", d))
	}
	c.AtOwned(c.eng.now.Add(d), o, kind, arg)
}

// SeizeCPU requests exclusive use of rank's CPU for duration d, accounted
// under the given reason (e.g. "checkpoint", "recovery", "noise"). The
// seizure is non-preemptive: it begins once the currently running job (if
// any) completes, but takes precedence over all queued application work.
// done, if non-nil, is called with the completion time.
//
// This is the primitive behind checkpoint writes, recovery rework, and
// injected noise: the rank stops making application progress and the
// resulting delay reaches other ranks only through message dependencies.
func (c *Context) SeizeCPU(rank int, d simtime.Duration, reason string, done func(end simtime.Time)) {
	if rank < 0 || rank >= len(c.eng.ranks) {
		panic(fmt.Sprintf("sim: SeizeCPU rank %d out of range", rank))
	}
	if d < 0 {
		panic(fmt.Sprintf("sim: SeizeCPU negative duration %v", d))
	}
	st := &c.eng.ranks[rank]
	st.seizeQ.push(job{kind: jobSeize, cost: d, reason: c.eng.internReason(reason), fn: done})
	c.eng.dispatch(rank)
}

// SeizeCPUDynamic requests exclusive use of rank's CPU for an open-ended
// duration: the seizure queues and dispatches exactly like SeizeCPU, but
// instead of a fixed cost, granted runs when the CPU is acquired and
// receives a release function; the seizure ends when release is called
// (from inside a later event callback — release is idempotent). This is the
// primitive behind shared-storage checkpoint writes, whose duration depends
// on how many other ranks are writing concurrently (see internal/storage).
//
// Accounting splits the occupancy at the nominal boundary: the first
// nominal of the seizure — what a contention-free writer would pay — is
// charged under reason, any excess under waitReason (e.g. "io-wait"). Trace
// consumers see up to two events, one per component. done, if non-nil, runs
// with the completion time.
func (c *Context) SeizeCPUDynamic(rank int, nominal simtime.Duration, reason, waitReason string,
	granted func(start simtime.Time, release func()), done func(end simtime.Time)) {
	if rank < 0 || rank >= len(c.eng.ranks) {
		panic(fmt.Sprintf("sim: SeizeCPUDynamic rank %d out of range", rank))
	}
	if nominal < 0 {
		panic(fmt.Sprintf("sim: SeizeCPUDynamic negative nominal %v", nominal))
	}
	if granted == nil {
		panic("sim: SeizeCPUDynamic nil granted")
	}
	st := &c.eng.ranks[rank]
	st.seizeQ.push(job{kind: jobSeizeOpen, nominal: nominal,
		reason: c.eng.internReason(reason), waitReason: c.eng.internReason(waitReason),
		granted: granted, fn: done})
	c.eng.dispatch(rank)
}

// Mark emits a TracePhase record on the trace channel (a no-op when no
// trace is attached). Agents and subsystems use it to expose protocol
// phases — coordination round boundaries, checkpoint write windows,
// storage drains — to trace consumers such as the conformance validator.
// name identifies the phase; detail carries a phase-specific payload.
func (c *Context) Mark(rank int, name string, detail int64) {
	if c.eng.cfg.Trace == nil {
		return
	}
	c.eng.emitTrace(TraceEvent{Type: TracePhase, Rank: rank, Kind: name,
		Start: c.eng.now, End: c.eng.now, Op: goal.NoOp, Detail: detail})
}

// HoldApp closes a gate on rank's application progress: no new application
// job (compute, send, receive processing) is granted the CPU until the
// returned release function is called. Control traffic and seizures still
// flow — this models a checkpoint daemon quiescing the application while
// the MPI progress engine keeps servicing protocol messages. Holds nest;
// release is idempotent. Held time is accounted in Result.HeldTime under
// the given reason, measured from hold to release.
func (c *Context) HoldApp(rank int, reason string) (release func()) {
	if rank < 0 || rank >= len(c.eng.ranks) {
		panic(fmt.Sprintf("sim: HoldApp rank %d out of range", rank))
	}
	st := &c.eng.ranks[rank]
	id := c.eng.internReason(reason)
	st.held++
	c.Mark(rank, "hold", int64(st.held))
	start := c.eng.now
	released := false
	return func() {
		if released {
			return
		}
		released = true
		st.held--
		if st.held < 0 {
			panic("sim: HoldApp release underflow")
		}
		c.Mark(rank, "hold-release", int64(st.held))
		c.eng.heldTime[id] += c.eng.now.Sub(start)
		c.eng.heldCnt[id]++
		c.eng.dispatch(rank)
	}
}

// ScaleCPU slows rank's CPU by the given factor (> 1): every job granted
// while the scale is active costs factor× its nominal time, except service
// seizures (whose durations are absolute). This models background
// interference — copy-on-write faults and I/O from an asynchronous
// checkpoint write, a polluted cache, a co-scheduled daemon — as opposed to
// SeizeCPU's full interruptions. Scales nest multiplicatively; the returned
// restore function removes this contribution (idempotent). The extra time
// is accounted per rank in Result.RankScaledExtra.
func (c *Context) ScaleCPU(rank int, factor float64) (restore func()) {
	if rank < 0 || rank >= len(c.eng.ranks) {
		panic(fmt.Sprintf("sim: ScaleCPU rank %d out of range", rank))
	}
	if !(factor >= 1) { // also rejects NaN
		panic(fmt.Sprintf("sim: ScaleCPU factor %v < 1", factor))
	}
	st := &c.eng.ranks[rank]
	st.scales = append(st.scales, factor)
	idx := len(st.scales) - 1
	removed := false
	return func() {
		if removed {
			return
		}
		removed = true
		// Neutralize rather than delete: later restores hold later indices.
		st.scales[idx] = 1
		// Compact fully-neutral tails so long runs don't accumulate slots.
		for len(st.scales) > 0 && st.scales[len(st.scales)-1] == 1 {
			st.scales = st.scales[:len(st.scales)-1]
		}
	}
}

// SendControl sends a protocol control message of the given size from src
// to dst. The message costs SendCPU(bytes) on the sender, traverses the
// network under the same LogGOPS parameters as application traffic, and
// costs RecvCPU(bytes) on the receiver before deliver runs (with the
// delivery completion time). Control messages contend with application work
// for both CPUs and the sender NIC — coordination is never free.
func (c *Context) SendControl(src, dst int, bytes int64, deliver func(at simtime.Time)) {
	n := len(c.eng.ranks)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		panic(fmt.Sprintf("sim: SendControl %d->%d out of range", src, dst))
	}
	if src == dst {
		panic("sim: SendControl to self")
	}
	if bytes < 0 {
		panic("sim: SendControl negative size")
	}
	m := c.eng.newMsg()
	*m = message{kind: msgCtl, src: int32(src), dst: int32(dst), bytes: bytes,
		wire: bytes, deliver: deliver}
	st := &c.eng.ranks[src]
	st.ctlQ.push(job{kind: jobCtlSend, cost: c.eng.net.SendCPU(bytes), msg: m})
	c.eng.dispatch(src)
}

// OpsRemaining returns the number of application operations not yet
// completed. Agents may use it to stop periodic activity near the end.
func (c *Context) OpsRemaining() int { return c.eng.opsLeft }

// RankProgress returns the completion time of the most recently finished
// application op on rank (zero if none yet). Protocols use it to reason
// about how far a rank has progressed.
func (c *Context) RankProgress(rank int) simtime.Time {
	return c.eng.ranks[rank].finish
}

// RankBusy returns the cumulative application CPU time rank has executed so
// far — its useful progress. Recovery models use deltas of this (progress
// since the last recovery line) as the rework a rollback discards; wall
// time would overcount by including checkpoint writes, coordination, and
// prior recoveries, which are not re-executed.
func (c *Context) RankBusy(rank int) simtime.Duration {
	return c.eng.ranks[rank].busy
}
