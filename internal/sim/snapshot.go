package sim

// Snapshot/restore of complete mid-run engine state (DESIGN.md S25).
//
// The engine pauses only at *safe event boundaries*: instants between two
// events where no live state is a Go closure. Most of the simulator is
// already data (the queue, rank state, messages, interned accounting), but
// three kinds of closures can be pending: agent timers, control-message
// delivery callbacks, and seizure completion callbacks. Periodic agent
// timers are defunctionalized (TimerOwner) so they serialize in place with
// their exact ordering key; the rest are bounded — a write or coordination
// round in flight holds closures only until it completes — so the boundary
// scan simply declines to snapshot until the engine drains back to a
// closure-free instant, and retries after the next event.
//
// A snapshot is byte-exact: restoring it into a fresh engine built from an
// identical Config reproduces the remainder of the run bit-for-bit —
// results, traces, RNG draws, event order. A digest of the Config travels
// inside the blob so a snapshot cannot be resumed under a different
// configuration, and the blob itself is sealed with a SHA-256 trailer (see
// internal/snapshot).

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/rng"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// TimerOwner receives defunctionalized timer callbacks. A timer scheduled
// with Context.AtOwned fires as OnTimer(kind, arg) at exactly its scheduled
// time (so the owner reads the firing time from Context.Now); because the
// pending timer is plain data, it survives snapshot/restore in its exact
// queue position, unlike a closure scheduled with Context.At.
type TimerOwner interface {
	OnTimer(kind uint8, arg int64)
}

// Resumable is implemented by agents that participate in snapshot/restore.
// Config.SnapshotEvery requires every agent to implement it.
type Resumable interface {
	Agent
	// Quiesced reports whether the agent currently holds no
	// closure-bearing in-flight state (an active coordination round, a
	// pending window timer scheduled with Context.After). The engine only
	// snapshots when every agent is quiesced.
	Quiesced() bool
	// EncodeState serializes the agent's complete mutable state.
	EncodeState(enc *snapshot.Encoder)
	// DecodeState fully reinitializes the agent from a stream produced by
	// EncodeState: every mutable field is overwritten, none carried over,
	// so the same agent object can be restored into a different engine.
	// ctx is the restoring engine's context; the agent must stash it (and
	// re-register any non-agent timer owners it manages) exactly as Init
	// would, but must not schedule anything — pending timers live in the
	// restored event queue.
	DecodeState(ctx *Context, dec *snapshot.Decoder) error
}

// Snapshot is one captured engine state, ready to persist or resume.
type Snapshot struct {
	// Blob is the sealed, versioned, digest-tagged serialized state; feed
	// it to Engine.Restore on an engine built from an identical Config.
	Blob []byte
	// Time is the simulated time of the boundary.
	Time simtime.Time
	// Events is the number of events processed when the snapshot was taken.
	Events int64
	// TraceEvents counts trace records emitted before the boundary: a
	// resumed run emits exactly the monolithic trace stream's suffix
	// starting at this index.
	TraceEvents int64
}

// ErrConfigMismatch marks a restore attempted under a Config differing from
// the one the snapshot was taken under.
var ErrConfigMismatch = errors.New("sim: snapshot taken under a different configuration")

// emitTrace forwards a record to the trace consumer, counting it so
// snapshots know where the resume suffix begins. Callers check cfg.Trace
// for nil first (the hot path stays branch-and-call free when untraced).
func (e *Engine) emitTrace(ev TraceEvent) {
	e.traceCount++
	e.cfg.Trace(ev)
}

// registerOwner binds a TimerOwner to its stable string key. Idempotent for
// the same pair; a key collision or re-keying panics — the key is the
// identity snapshots serialize, so it must be unique and stable.
func (e *Engine) registerOwner(key string, o TimerOwner) {
	if id, ok := e.ownerIDs[o]; ok {
		if e.ownerKeys[id] != key {
			panic(fmt.Sprintf("sim: TimerOwner already registered as %q, re-registered as %q", e.ownerKeys[id], key))
		}
		return
	}
	for _, k := range e.ownerKeys {
		if k == key {
			panic(fmt.Sprintf("sim: timer-owner key %q already registered to a different owner", key))
		}
	}
	if e.ownerIDs == nil {
		e.ownerIDs = make(map[TimerOwner]int32)
	}
	e.ownerIDs[o] = int32(len(e.owners))
	e.owners = append(e.owners, o)
	e.ownerKeys = append(e.ownerKeys, key)
}

func (e *Engine) ownerByKey(key string) (int32, bool) {
	for id, k := range e.ownerKeys {
		if k == key {
			return int32(id), true
		}
	}
	return 0, false
}

// jobSerializable reports whether a job carries no closures: completion and
// grant callbacks empty, and any attached message free of a delivery
// closure. Seizures with done callbacks (checkpoint writes awaiting their
// re-arm) and open-ended storage seizures block the boundary; plain
// seizures (noise, recovery) and all application jobs pass.
func jobSerializable(j *job) bool {
	return j.fn == nil && j.granted == nil && (j.msg == nil || j.msg.deliver == nil)
}

func fifoSerializable(f *fifo[job]) bool {
	for i := f.head; i < len(f.items); i++ {
		if !jobSerializable(&f.items[i]) {
			return false
		}
	}
	return true
}

func eventSerializable(ev *event) bool {
	switch ev.kind {
	case evArrive:
		return ev.msg.deliver == nil
	case evTimer:
		return ev.fn == nil
	}
	return true
}

// safeBoundary reports whether the current instant is snapshot-safe: every
// agent quiesced, no hold gates or CPU scales active, and no closure live
// in any queued or running job, in-flight message, or pending timer.
// Checks run cheapest-first so the common "round in flight" case returns
// after the O(agents) scan.
func (e *Engine) safeBoundary() bool {
	for _, a := range e.cfg.Agents {
		if !a.(Resumable).Quiesced() {
			return false
		}
	}
	for i := range e.ranks {
		st := &e.ranks[i]
		if st.held != 0 || len(st.scales) != 0 {
			return false
		}
		if st.running && !jobSerializable(&st.runningJob) {
			return false
		}
		if !fifoSerializable(&st.seizeQ) || !fifoSerializable(&st.ctlQ) || !fifoSerializable(&st.appQ) {
			return false
		}
	}
	ok := true
	e.queue.Items(func(_ simtime.Time, _ int, _ uint64, ev event) bool {
		if !eventSerializable(&ev) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// maybeSnapshot captures a snapshot if the current instant is safe; if not,
// the caller retries after the next event (the cadence counter only resets
// on success, so a due snapshot is taken at the first safe boundary).
func (e *Engine) maybeSnapshot() {
	if !e.safeBoundary() {
		return
	}
	e.snapAt = e.events
	e.cfg.OnSnapshot(Snapshot{
		Blob:        e.encodeSnapshot(),
		Time:        e.now,
		Events:      e.events,
		TraceEvents: e.traceCount,
	})
}

// progDigests caches the per-program content digest: programs are immutable
// and shared across the many engines of a sweep (one per replication and
// per resume verification), so the O(ops) hash runs once per program.
var progDigests sync.Map // *goal.Program → [sha256.Size]byte

func programDigest(p *goal.Program) [sha256.Size]byte {
	if d, ok := progDigests.Load(p); ok {
		return d.([sha256.Size]byte)
	}
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	word := func(v int64) {
		h.Write(buf[:binary.PutVarint(buf[:], v)])
	}
	word(int64(p.NumRanks))
	word(int64(len(p.Ops)))
	for i := range p.Ops {
		op := &p.Ops[i]
		word(int64(op.Kind))
		word(int64(op.Rank))
		word(int64(op.Peer))
		word(int64(op.Tag))
		word(op.Bytes)
		word(int64(op.Work))
		word(int64(len(op.Deps)))
		for _, d := range op.Deps {
			word(int64(d))
		}
	}
	var d [sha256.Size]byte
	h.Sum(d[:0])
	progDigests.Store(p, d)
	return d
}

// configDigest fingerprints everything that determines the simulation's
// future evolution: seed, caps, network parameters, the program's content,
// and the agent stack (by type, positionally — agent parameters beyond the
// type are the caller's responsibility, which the exp/facade layers satisfy
// by keying snapshots with their full cache-field identity).
func (e *Engine) configDigest() [sha256.Size]byte {
	var enc snapshot.Encoder
	enc.Fix64(e.cfg.Seed)
	enc.I64(e.cfg.MaxEvents)
	enc.Time(e.cfg.MaxTime)
	enc.Dur(e.net.Latency)
	enc.Dur(e.net.Overhead)
	enc.Dur(e.net.Gap)
	enc.F64(e.net.GapPerByte)
	enc.F64(e.net.OverheadPerByte)
	enc.I64(e.net.RendezvousThreshold)
	enc.F64(e.net.BisectionBytesPerSec)
	pd := programDigest(e.prog)
	enc.Raw(pd[:])
	enc.Int(len(e.cfg.Agents))
	for _, a := range e.cfg.Agents {
		enc.Str(fmt.Sprintf("%T", a))
	}
	return sha256.Sum256(enc.Bytes())
}

func encodeMsg(enc *snapshot.Encoder, m *message) {
	if m.deliver != nil {
		panic("sim: encoding message with delivery closure")
	}
	enc.U8(uint8(m.kind))
	enc.I64(m.id)
	enc.I64(int64(m.src))
	enc.I64(int64(m.dst))
	enc.I64(int64(m.tag))
	enc.I64(m.bytes)
	enc.I64(m.wire)
	enc.I64(int64(m.op))
	enc.I64(int64(m.recvOp))
}

func (e *Engine) decodeMsg(dec *snapshot.Decoder) *message {
	m := &message{
		kind:   msgKind(dec.U8()),
		id:     dec.I64(),
		src:    int32(dec.I64()),
		dst:    int32(dec.I64()),
		tag:    int32(dec.I64()),
		bytes:  dec.I64(),
		wire:   dec.I64(),
		op:     goal.OpID(dec.I64()),
		recvOp: goal.OpID(dec.I64()),
	}
	if dec.Err() != nil {
		return nil
	}
	n := int32(len(e.ranks))
	nOps := goal.OpID(len(e.prog.Ops))
	if m.kind > msgCtl || m.src < 0 || m.src >= n || m.dst < 0 || m.dst >= n ||
		(m.op != goal.NoOp && (m.op < 0 || m.op >= nOps)) ||
		(m.recvOp != goal.NoOp && (m.recvOp < 0 || m.recvOp >= nOps)) {
		dec.Failf("message fields out of range")
		return nil
	}
	return m
}

func (e *Engine) encodeJob(enc *snapshot.Encoder, j *job) {
	if j.fn != nil || j.granted != nil {
		panic("sim: encoding job with closure")
	}
	enc.U8(uint8(j.kind))
	enc.Dur(j.cost)
	enc.I64(int64(j.op))
	enc.I64(int64(j.reason))
	enc.Dur(j.nominal)
	enc.I64(int64(j.waitReason))
	enc.Bool(j.msg != nil)
	if j.msg != nil {
		encodeMsg(enc, j.msg)
	}
}

func (e *Engine) decodeJob(dec *snapshot.Decoder) job {
	j := job{
		kind:       jobKind(dec.U8()),
		cost:       dec.Dur(),
		op:         goal.OpID(dec.I64()),
		reason:     reasonID(dec.I64()),
		nominal:    dec.Dur(),
		waitReason: reasonID(dec.I64()),
	}
	if dec.Bool() {
		j.msg = e.decodeMsg(dec)
	}
	if dec.Err() != nil {
		return j
	}
	nOps := goal.OpID(len(e.prog.Ops))
	nReasons := reasonID(len(e.reasons))
	switch {
	case j.kind > jobSeizeOpen,
		j.op != goal.NoOp && (j.op < 0 || j.op >= nOps),
		j.reason < 0 || j.reason >= nReasons && j.reason != 0,
		j.waitReason < 0 || j.waitReason >= nReasons && j.waitReason != 0,
		j.kind == jobSeizeOpen, // open seizures always carry a grant closure
		(j.kind == jobSendData || j.kind == jobCtlSend || j.kind == jobCtlRecv) && j.msg == nil:
		dec.Failf("job fields out of range")
	}
	return j
}

func (e *Engine) encodeFifo(enc *snapshot.Encoder, f *fifo[job]) {
	enc.Int(len(f.items) - f.head)
	for i := f.head; i < len(f.items); i++ {
		e.encodeJob(enc, &f.items[i])
	}
}

func (e *Engine) decodeFifo(dec *snapshot.Decoder) fifo[job] {
	n := dec.Int()
	if n < 0 || n > dec.Remaining() {
		dec.Failf("fifo length %d", n)
		return fifo[job]{}
	}
	var f fifo[job]
	for i := 0; i < n; i++ {
		f.push(e.decodeJob(dec))
	}
	return f
}

func (e *Engine) encodeRank(enc *snapshot.Encoder, st *rankState) {
	if st.held != 0 || len(st.scales) != 0 {
		panic("sim: encoding rank with live hold/scale state")
	}
	enc.Bool(st.running)
	if st.running {
		e.encodeJob(enc, &st.runningJob)
		enc.Time(st.jobStart)
	}
	e.encodeFifo(enc, &st.seizeQ)
	e.encodeFifo(enc, &st.ctlQ)
	e.encodeFifo(enc, &st.appQ)
	enc.Dur(st.scaledExtra)
	enc.Time(st.nicFreeAt)
	enc.Int(len(st.posted))
	for i := range st.posted {
		enc.I64(int64(st.posted[i].op))
	}
	enc.Int(len(st.unexpected))
	for _, m := range st.unexpected {
		encodeMsg(enc, m)
	}
	enc.Bool(st.lastArrival != nil)
	if st.lastArrival != nil {
		snapshot.EncodeI64Slice(enc, st.lastArrival)
	}
	enc.Time(st.finish)
	enc.Dur(st.busy)
	enc.Dur(st.ctlBusy)
	enc.Dur(st.seizedBusy)
}

func (e *Engine) decodeRank(dec *snapshot.Decoder, st *rankState) {
	*st = rankState{}
	st.running = dec.Bool()
	if st.running {
		st.runningJob = e.decodeJob(dec)
		st.jobStart = dec.Time()
	}
	st.seizeQ = e.decodeFifo(dec)
	st.ctlQ = e.decodeFifo(dec)
	st.appQ = e.decodeFifo(dec)
	st.scaledExtra = dec.Dur()
	st.nicFreeAt = dec.Time()
	nOps := goal.OpID(len(e.prog.Ops))
	np := dec.Int()
	if np < 0 || np > dec.Remaining() {
		dec.Failf("posted length %d", np)
		return
	}
	for i := 0; i < np; i++ {
		op := goal.OpID(dec.I64())
		if op < 0 || op >= nOps {
			dec.Failf("posted op out of range")
			return
		}
		st.posted = append(st.posted, postedRecv{op: op})
	}
	nu := dec.Int()
	if nu < 0 || nu > dec.Remaining() {
		dec.Failf("unexpected length %d", nu)
		return
	}
	for i := 0; i < nu; i++ {
		m := e.decodeMsg(dec)
		if m == nil {
			return
		}
		st.unexpected = append(st.unexpected, m)
	}
	if dec.Bool() {
		st.lastArrival = snapshot.DecodeI64Slice[simtime.Time](dec, len(e.ranks))
	}
	st.finish = dec.Time()
	st.busy = dec.Dur()
	st.ctlBusy = dec.Dur()
	st.seizedBusy = dec.Dur()
}

// encodeSnapshot serializes the complete engine state. Only call at a safe
// boundary (see safeBoundary); closure-bearing state panics.
//
// The msgFree recycling pool is deliberately not serialized: it holds only
// zeroed structs awaiting reuse, so a restored engine rebuilds it empty
// with no observable effect (allocation count differs, simulation does
// not). The exhaustive-field test in snapshot_fields_test.go documents
// this exclusion.
func (e *Engine) encodeSnapshot() []byte {
	var enc snapshot.Encoder
	digest := e.configDigest()
	enc.Raw(digest[:])
	// Engine scalars.
	enc.Time(e.now)
	enc.I64(e.events)
	enc.I64(e.nextMsgID)
	enc.Int(e.opsLeft)
	enc.Time(e.fabricFree)
	enc.I64(e.traceCount)
	for _, w := range e.rand.State() {
		enc.Fix64(w)
	}
	m := &e.metrics
	enc.I64(m.AppMessages)
	enc.I64(m.AppBytes)
	enc.I64(m.CtlMessages)
	enc.I64(m.CtlBytes)
	enc.I64(m.Rendezvous)
	enc.I64(m.Matches)
	enc.Int(m.UnexpectedMax)
	enc.Int(m.PostedMax)
	enc.Dur(m.FabricBusy)
	snapshot.EncodeI64Slice(&enc, e.depsLeft)
	// Interned reason table with its accumulated accounting, in ID order so
	// restored jobs' reasonIDs keep meaning.
	enc.Int(len(e.reasons))
	for id, reason := range e.reasons {
		enc.Str(reason)
		enc.Dur(e.seizeTime[id])
		enc.I64(e.seizeCnt[id])
		enc.Dur(e.heldTime[id])
		enc.I64(e.heldCnt[id])
	}
	// Per-rank state.
	for i := range e.ranks {
		e.encodeRank(&enc, &e.ranks[i])
	}
	// Agent state, one length-prefixed section per agent in stack order.
	enc.Int(len(e.cfg.Agents))
	for _, a := range e.cfg.Agents {
		enc.Section(a.(Resumable).EncodeState)
	}
	// Timer-owner key table (ID order), then the event queue with each
	// event's exact ordering key; owned timers reference owners by table
	// index so the restoring engine can rebind by key.
	enc.Int(len(e.ownerKeys))
	for _, k := range e.ownerKeys {
		enc.Str(k)
	}
	enc.U64(e.queue.Seq())
	enc.Int(e.queue.Len())
	e.queue.Items(func(t simtime.Time, prio int, seq uint64, ev event) bool {
		enc.Time(t)
		enc.Int(prio)
		enc.U64(seq)
		enc.U8(uint8(ev.kind))
		switch ev.kind {
		case evJobDone:
			enc.I64(int64(ev.rank))
		case evArrive:
			encodeMsg(&enc, ev.msg)
		case evTimer:
			if ev.fn != nil {
				panic("sim: encoding closure timer")
			}
			enc.Int(int(ev.owner))
			enc.U8(ev.tkind)
			enc.I64(ev.targ)
		}
		return true
	})
	return snapshot.Seal(snapshot.FormatVersion, enc.Bytes())
}

// Restore loads a snapshot into an engine that has not yet run. The engine
// must have been built by New from a Config identical to the snapshotting
// engine's (enforced via the embedded config digest); its agents must all
// be Resumable. After a successful Restore, Run continues the simulation
// and — by construction — produces the exact remainder of the original
// run: identical results, trace suffix, and event order.
//
// On error the engine is poisoned (Run refuses); build a fresh engine to
// retry or fall back to a cold start. The blob is fully digest-verified
// before any field is decoded, and every decoded field is bounds-checked,
// so corrupt input yields an error, never a panic or a silently wrong
// resume.
func (e *Engine) Restore(blob []byte) (err error) {
	if e.ran {
		return fmt.Errorf("sim: Restore on an engine that already ran")
	}
	if e.restored {
		return fmt.Errorf("sim: Restore called twice")
	}
	defer func() {
		if err != nil {
			e.ran = true // poison: half-restored state must never run
		}
	}()
	for i, a := range e.cfg.Agents {
		if _, ok := a.(Resumable); !ok {
			return fmt.Errorf("sim: Restore with non-Resumable agent %d (%T)", i, a)
		}
	}
	version, payload, err := snapshot.Open(blob)
	if err != nil {
		return err
	}
	if version != snapshot.FormatVersion {
		return fmt.Errorf("%w: blob has %d, engine speaks %d", snapshot.ErrVersion, version, snapshot.FormatVersion)
	}
	dec := snapshot.NewDecoder(payload)
	want := e.configDigest()
	if got := dec.Raw(sha256.Size); dec.Err() == nil && !bytes.Equal(got, want[:]) {
		return ErrConfigMismatch
	}
	// Engine scalars.
	e.now = dec.Time()
	e.events = dec.I64()
	e.nextMsgID = dec.I64()
	e.opsLeft = dec.Int()
	e.fabricFree = dec.Time()
	e.traceCount = dec.I64()
	var rs [4]uint64
	for i := range rs {
		rs[i] = dec.Fix64()
	}
	if dec.Err() == nil {
		r, rerr := rng.FromState(rs)
		if rerr != nil {
			dec.Failf("%v", rerr)
		} else {
			e.rand = r
		}
	}
	m := &e.metrics
	m.AppMessages = dec.I64()
	m.AppBytes = dec.I64()
	m.CtlMessages = dec.I64()
	m.CtlBytes = dec.I64()
	m.Rendezvous = dec.I64()
	m.Matches = dec.I64()
	m.UnexpectedMax = dec.Int()
	m.PostedMax = dec.Int()
	m.FabricBusy = dec.Dur()
	e.depsLeft = snapshot.DecodeI64Slice[int32](dec, len(e.prog.Ops))
	open := 0
	for _, d := range e.depsLeft {
		if d >= 0 {
			open++
		} else if d != -1 {
			dec.Failf("depsLeft out of range")
			break
		}
	}
	if dec.Err() == nil && (open != e.opsLeft || e.opsLeft == 0 || e.events < 0 || e.now < 0) {
		dec.Failf("inconsistent progress counters")
	}
	// Interned reason table.
	nr := dec.Int()
	if nr < 0 || nr > dec.Remaining() {
		dec.Failf("reason count %d", nr)
	}
	e.reasonIDs = make(map[string]reasonID, nr)
	e.reasons = e.reasons[:0]
	e.seizeLabels = e.seizeLabels[:0]
	e.seizeTime = e.seizeTime[:0]
	e.seizeCnt = e.seizeCnt[:0]
	e.heldTime = e.heldTime[:0]
	e.heldCnt = e.heldCnt[:0]
	for id := 0; id < nr && dec.Err() == nil; id++ {
		reason := dec.Str()
		if _, dup := e.reasonIDs[reason]; dup {
			dec.Failf("duplicate reason %q", reason)
			break
		}
		e.reasonIDs[reason] = reasonID(id)
		e.reasons = append(e.reasons, reason)
		e.seizeLabels = append(e.seizeLabels, "seize:"+reason)
		e.seizeTime = append(e.seizeTime, dec.Dur())
		e.seizeCnt = append(e.seizeCnt, dec.I64())
		e.heldTime = append(e.heldTime, dec.Dur())
		e.heldCnt = append(e.heldCnt, dec.I64())
	}
	// Per-rank state.
	for i := range e.ranks {
		if dec.Err() != nil {
			break
		}
		e.decodeRank(dec, &e.ranks[i])
	}
	// Agent state.
	ctx := &Context{eng: e}
	na := dec.Int()
	if dec.Err() == nil && na != len(e.cfg.Agents) {
		dec.Failf("agent count %d, engine has %d", na, len(e.cfg.Agents))
	}
	for i := 0; i < len(e.cfg.Agents) && dec.Err() == nil; i++ {
		sub := dec.Section()
		if dec.Err() != nil {
			break
		}
		if aerr := e.cfg.Agents[i].(Resumable).DecodeState(ctx, sub); aerr != nil {
			return fmt.Errorf("sim: agent %d (%T) restore: %w", i, e.cfg.Agents[i], aerr)
		}
		if aerr := sub.Finish(); aerr != nil {
			return fmt.Errorf("sim: agent %d (%T) restore: %w", i, e.cfg.Agents[i], aerr)
		}
	}
	// Timer-owner table: map the blob's owner IDs to this engine's by key.
	nk := dec.Int()
	if nk < 0 || nk > dec.Remaining() {
		dec.Failf("owner key count %d", nk)
	}
	ownerMap := make([]int32, 0, max(nk, 0))
	for i := 0; i < nk && dec.Err() == nil; i++ {
		key := dec.Str()
		id, ok := e.ownerByKey(key)
		if !ok {
			dec.Failf("timer owner %q not registered in restoring engine", key)
			break
		}
		ownerMap = append(ownerMap, id)
	}
	// Event queue.
	e.queue.Clear()
	qseq := dec.U64()
	qn := dec.Int()
	if qn < 0 || qn > dec.Remaining() {
		dec.Failf("queue length %d", qn)
	}
	for i := 0; i < qn && dec.Err() == nil; i++ {
		t := dec.Time()
		prio := dec.Int()
		seq := dec.U64()
		if t < e.now || seq >= qseq {
			dec.Failf("queue item key out of range")
			break
		}
		var ev event
		ev.kind = evKind(dec.U8())
		switch ev.kind {
		case evJobDone:
			r := dec.I64()
			if r < 0 || r >= int64(len(e.ranks)) {
				dec.Failf("jobDone rank out of range")
			}
			ev.rank = int32(r)
		case evArrive:
			ev.msg = e.decodeMsg(dec)
		case evTimer:
			o := dec.Int()
			if o < 0 || o >= len(ownerMap) {
				dec.Failf("timer owner index out of range")
				break
			}
			ev.owner = ownerMap[o]
			ev.tkind = dec.U8()
			ev.targ = dec.I64()
		default:
			dec.Failf("event kind out of range")
		}
		if dec.Err() == nil {
			e.queue.Load(t, prio, seq, ev)
		}
	}
	e.queue.SetSeq(qseq)
	if ferr := dec.Finish(); ferr != nil {
		return ferr
	}
	e.restored = true
	e.snapAt = e.events
	return nil
}
