// Package sim implements the discrete-event simulator that executes GOAL
// programs over the LogGOPS network model.
//
// # Execution model
//
// Each rank has one CPU and one NIC. Operations whose dependencies are
// satisfied compete for the CPU; the CPU runs one job at a time,
// non-preemptively. Jobs are granted FIFO in the order they became ready,
// except that service seizures (checkpoint writes, recovery — see SeizeCPU)
// take precedence over application work at the next grant. The NIC is
// modeled by per-rank injection serialization: consecutive messages from one
// rank are spaced by at least g + (s-1)·G.
//
//   - calc: occupies the CPU for the op's Work duration.
//   - send (eager, size < S): occupies the CPU for o + (s-1)·O, then injects;
//     the message arrives at the destination L + (s-1)·G after injection and
//     the op completes when the CPU part ends.
//   - send (rendezvous, size ≥ S): occupies the CPU for o and injects an RTS
//     envelope. When the receiver has both the RTS and a matching posted
//     receive, it spends o to return a CTS; on CTS arrival the sender spends
//     o + (s-1)·O to push the data and the send completes. The receive
//     completes after the data arrives and the receiver spends o + (s-1)·O.
//   - recv: posts for matching as soon as its dependencies are satisfied
//     (posting itself is free); when a matching message arrives, the
//     receiver's CPU spends o + (s-1)·O and the op completes.
//
// Matching follows MPI semantics: per-(source, destination) channels are
// non-overtaking, receives match in post order, unexpected messages queue in
// arrival order, and AnySource/AnyTag wildcards are honored.
//
// # Protocol agents
//
// Checkpointing protocols, noise generators, and failure injectors attach as
// Agents. Agents schedule timers, exchange control messages that traverse
// the same network (and contend for the same CPUs), seize rank CPUs to
// model checkpoint writes or recovery, and tax application sends (message
// logging) via the SendHook interface. Delay caused by any of these reaches
// other ranks only through message dependencies — this is the mechanism the
// whole study quantifies.
//
// # Determinism
//
// Simulated time is integer nanoseconds, the event queue breaks ties by
// insertion order, and all randomness flows from the seeded generator in
// package rng, so a given configuration always produces bit-identical
// results.
package sim

import (
	"errors"
	"fmt"

	"checkpointsim/internal/eventq"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/rng"
	"checkpointsim/internal/simtime"
)

// Agent is a protocol component attached to a simulation. Init is called
// once, before any event is processed; the agent keeps the Context to
// schedule timers, send control messages, and seize CPUs during the run.
type Agent interface {
	Init(ctx *Context)
}

// SendHook is implemented by agents that tax application sends (e.g.
// sender-based message logging). The returned duration is added to the
// sender's CPU cost for that message. Hooks must be pure functions of their
// arguments and agent state; they run at send-start time.
type SendHook interface {
	SendPenalty(src, dst int, bytes int64) simtime.Duration
}

// MatchHook is implemented by agents that observe application-message
// matches on the receiving rank — communication-induced checkpointing
// inspects piggybacked checkpoint indices this way. The hook runs at match
// time, before the receive-processing job is queued, so CPU seizures the
// agent schedules from it (a forced checkpoint) are granted ahead of the
// message's processing: the dispatcher prefers seized work over
// application jobs. For rendezvous transfers the hook fires at envelope
// match (piggybacked state rides in the header, not the payload).
type MatchHook interface {
	MessageMatched(src, dst int, bytes int64)
}

// Config describes one simulation.
type Config struct {
	// Net is the LogGOPS parameter set.
	Net network.Params
	// Program is the application to execute.
	Program *goal.Program
	// Agents are the protocol components (checkpointing, noise, failures).
	Agents []Agent
	// Seed feeds the simulation's random stream (timers with jitter,
	// failure draws). Runs with equal Config produce identical results.
	Seed uint64
	// MaxEvents aborts runaway simulations; 0 means 2^62.
	MaxEvents int64
	// MaxTime aborts simulations that pass this virtual time; 0 = no cap.
	MaxTime simtime.Time
	// SnapshotEvery, when > 0, asks the engine to capture a snapshot of its
	// complete state at the first safe event boundary after every
	// SnapshotEvery processed events (see Engine.Restore for the
	// determinism contract). Requires OnSnapshot and that every agent
	// implements Resumable.
	SnapshotEvery int64
	// OnSnapshot receives each captured snapshot, synchronously on the
	// simulation loop. Required when SnapshotEvery > 0.
	OnSnapshot func(Snapshot)
	// Trace, when non-nil, receives the engine's event stream: one
	// TraceCPU record per completed CPU job (the raw material for
	// timelines and Gantt-style visualizations) plus grant, NIC,
	// message-injection, arrival, match, and phase-marker records (the raw
	// material for trace-conformance validation — see internal/validate).
	// Consumers that only care about CPU occupancies filter on
	// TraceEvent.Type == TraceCPU. The callback runs synchronously on the
	// simulation's hot path; keep it cheap.
	Trace func(TraceEvent)
}

// TraceType distinguishes the records flowing through Config.Trace. The
// zero value is TraceCPU, so consumers written against the original
// CPU-occupancy-only trace (and tests constructing events by literal) keep
// working unchanged.
type TraceType uint8

const (
	// TraceCPU is one completed CPU occupancy on one rank — the original
	// trace record, and the only type timeline/Gantt consumers care about.
	TraceCPU TraceType = iota
	// TraceGrant marks the instant a job is granted the CPU (Start == End).
	// Kind and Op match the TraceCPU record(s) the job will emit when it
	// completes. Grants let a validator check quiesce invariants in exact
	// stream order: between a "hold" and its "hold-release" phase marker no
	// application-class grant may appear on that rank.
	TraceGrant
	// TraceNIC is one NIC occupancy on the sending rank: the injection
	// serialization window g + (s-1)·G for one message.
	TraceNIC
	// TraceInject records a message leaving the sender: Start is the wire
	// departure time (post NIC and fabric serialization), End the scheduled
	// arrival at Dst.
	TraceInject
	// TraceArrive marks a message reaching Dst (Start == End). It must
	// coincide with the End of the matching TraceInject.
	TraceArrive
	// TraceMatch links a matchable message (eager or RTS envelope) to the
	// posted receive it matched: MsgID ↔ RecvOp, emitted on the receiver.
	TraceMatch
	// TracePhase is an agent- or subsystem-emitted marker (Start == End):
	// hold gates, coordination round boundaries, checkpoint write and
	// storage drain begin/end. Kind names the phase, Detail carries a
	// phase-specific payload (bytes, round root, hold depth).
	TracePhase
)

// TraceEvent is one record on the trace channel. Which fields are
// meaningful depends on Type; TraceCPU events populate exactly the fields
// the original CPU-occupancy trace did.
type TraceEvent struct {
	Type       TraceType
	Rank       int
	Kind       string // CPU/grant: "calc", "send", "recv", "ctl", "seize:<reason>"; inject/arrive/match: message kind; phase: marker name
	Start, End simtime.Time
	Op         goal.OpID // NoOp for non-application jobs
	// Message-event fields (TraceNIC, TraceInject, TraceArrive, TraceMatch):
	MsgID    int64 // unique per wire traversal, assigned at injection
	Src, Dst int
	Tag      int32
	Bytes    int64     // payload bytes
	Wire     int64     // bytes occupying NIC and wire (0 for bare envelopes)
	RecvOp   goal.OpID // matched receive (TraceMatch, data injections)
	// Detail is the TracePhase payload.
	Detail int64
}

// msgKindName names a message kind for trace records.
func msgKindName(k msgKind) string {
	switch k {
	case msgEager:
		return "eager"
	case msgRTS:
		return "rts"
	case msgCTS:
		return "cts"
	case msgData:
		return "data"
	case msgCtl:
		return "ctl"
	}
	return "?"
}

// traceKind maps job kinds to trace labels. Seize labels come from the
// intern table, so emitting one performs no string concatenation.
func (e *Engine) traceKind(j *job) (string, goal.OpID) {
	switch j.kind {
	case jobCalc:
		return "calc", j.op
	case jobSendEager, jobSendRTS:
		return "send", j.op
	case jobSendData:
		return "send", j.msg.op
	case jobRecvDone:
		return "recv", j.op
	case jobCtlSend, jobCtlRecv:
		return "ctl", goal.NoOp
	case jobSeize, jobSeizeOpen:
		return e.seizeLabels[j.reason], goal.NoOp
	}
	return "?", goal.NoOp
}

type evKind uint8

const (
	evJobDone evKind = iota // rank's running CPU job completed
	evArrive                // message arrival at msg.dst
	evTimer                 // agent timer callback
)

type event struct {
	kind evKind
	// tkind/owner/targ carry a defunctionalized timer (see TimerOwner): the
	// event is data, not a closure, so it serializes into snapshots with its
	// exact (time, priority, sequence) ordering key. fn is the legacy
	// closure form; a timer uses exactly one of the two (fn == nil ⇒ owned).
	tkind uint8
	rank  int32
	owner int32
	targ  int64
	msg   *message
	fn    func()
}

type msgKind uint8

const (
	msgEager msgKind = iota
	msgRTS
	msgCTS
	msgData
	msgCtl
)

// message is anything traversing the network.
type message struct {
	kind     msgKind
	id       int64 // trace identity, assigned at injection
	src, dst int32
	tag      int32
	bytes    int64              // payload size (app size carried for RTS/CTS bookkeeping)
	wire     int64              // bytes that actually occupy NIC and wire
	op       goal.OpID          // originating send op (app messages)
	recvOp   goal.OpID          // matched recv op (CTS/data)
	deliver  func(simtime.Time) // control-message delivery callback
}

type jobKind uint8

const (
	jobCalc jobKind = iota
	jobSendEager
	jobSendRTS
	jobSendData // triggered by CTS
	jobRecvDone // receiver-side processing of a matched message
	jobCtlSend
	jobCtlRecv
	jobSeize
	jobSeizeOpen // open-ended seizure: completion driven by release, not cost
)

// reasonID is an interned seize/hold accounting reason. The engine maps
// each distinct reason string to a small integer once, at seize/hold request
// time, so the per-event accounting in jobDone is array indexing instead of
// string-keyed map updates; Result re-expands IDs to strings at the end.
type reasonID int32

// job is a unit of CPU occupancy on one rank.
type job struct {
	kind   jobKind
	cost   simtime.Duration
	op     goal.OpID
	msg    *message
	reason reasonID           // seizures: interned accounting key
	fn     func(simtime.Time) // seizures/control: completion callback
	// Open-ended seizures (jobSeizeOpen) only:
	nominal    simtime.Duration // portion accounted under reason; excess goes to waitReason
	waitReason reasonID
	granted    func(start simtime.Time, release func())
}

// postedRecv is a receive waiting for a matching message.
type postedRecv struct {
	op goal.OpID
}

type rankState struct {
	running    bool
	runningJob job
	jobStart   simtime.Time
	// Three CPU queues, granted in this order: service seizures (checkpoint
	// writes, recovery, noise), then control/progress traffic, then — only
	// when no hold gate is closed — application work.
	seizeQ fifo[job]
	ctlQ   fifo[job]
	appQ   fifo[job]
	// held counts open HoldApp gates; application jobs are not granted the
	// CPU while held > 0.
	held int
	// scales holds active ScaleCPU factors; their product multiplies the
	// cost of every non-seizure job at grant time.
	scales      []float64
	scaledExtra simtime.Duration
	nicFreeAt   simtime.Time
	posted      []postedRecv
	unexpected  []*message
	// lastArrival enforces non-overtaking per destination: a flat slice
	// indexed by dst rank, allocated lazily on this rank's first injection
	// (so idle ranks cost nothing). The zero value is safe: arrival times
	// are never negative, so an untouched slot never clamps.
	lastArrival []simtime.Time
	finish      simtime.Time
	busy        simtime.Duration // CPU time spent on application jobs
	ctlBusy     simtime.Duration // CPU time spent on control processing
	seizedBusy  simtime.Duration // CPU time spent seized
}

// fifo is a slice-backed queue with an advancing head.
type fifo[T any] struct {
	items []T
	head  int
}

func (f *fifo[T]) push(v T) { f.items = append(f.items, v) }
func (f *fifo[T]) empty() bool {
	return f.head >= len(f.items)
}
func (f *fifo[T]) pop() T {
	v := f.items[f.head]
	var zero T
	f.items[f.head] = zero
	f.head++
	if f.head == len(f.items) {
		f.items = f.items[:0]
		f.head = 0
	}
	return v
}

// Context is the API surface the engine exposes to agents. It is the engine
// itself; agents hold it for the duration of the run.
type Context struct {
	eng *Engine
}

// Engine executes one simulation. Create with New, run once with Run.
type Engine struct {
	cfg        Config
	prog       *goal.Program
	net        network.Params
	queue      eventq.Queue[event]
	now        simtime.Time
	ranks      []rankState
	depsLeft   []int32
	opsLeft    int
	hooks      []SendHook
	matchHooks []MatchHook
	rand       *rng.Source
	events     int64
	metrics    Metrics
	fabricFree simtime.Time
	nextMsgID  int64
	// Interned seize/hold reason accounting: reasonIDs maps a reason string
	// to its ID; the parallel slices below are indexed by that ID. The
	// string keys reappear only at the Result boundary.
	reasonIDs   map[string]reasonID
	reasons     []string // id → reason
	seizeLabels []string // id → "seize:" + reason, precomputed for traces
	seizeTime   []simtime.Duration
	seizeCnt    []int64
	heldTime    []simtime.Duration
	heldCnt     []int64
	// msgFree recycles message structs: every message has exactly one
	// release point (matched, data delivery, control delivery), so the
	// steady-state engine loop allocates none.
	msgFree []*message
	ran     bool
	// Snapshot/restore machinery (snapshot.go). owners maps dense timer-owner
	// IDs to their handlers; ownerKeys holds the stable string key per ID so
	// snapshots reference owners by name, not by registration order.
	owners     []TimerOwner
	ownerKeys  []string
	ownerIDs   map[TimerOwner]int32
	traceCount int64 // trace records emitted so far (resume suffix index)
	snapAt     int64 // event count at the last snapshot
	restored   bool  // Run must skip Init/activation: state came from Restore
}

// Metrics accumulates global counters during a run.
type Metrics struct {
	AppMessages   int64
	AppBytes      int64
	CtlMessages   int64
	CtlBytes      int64
	Rendezvous    int64
	Matches       int64
	UnexpectedMax int
	PostedMax     int
	// FabricBusy is the total shared-fabric occupancy (only accumulated
	// when a finite bisection bandwidth is configured).
	FabricBusy simtime.Duration
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("sim: nil program")
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Program.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 1 << 62
	}
	e := &Engine{
		cfg:       cfg,
		prog:      cfg.Program,
		net:       cfg.Net,
		ranks:     make([]rankState, cfg.Program.NumRanks),
		depsLeft:  make([]int32, len(cfg.Program.Ops)),
		opsLeft:   len(cfg.Program.Ops),
		rand:      rng.New(cfg.Seed),
		reasonIDs: make(map[string]reasonID),
	}
	if cfg.SnapshotEvery > 0 && cfg.OnSnapshot == nil {
		return nil, fmt.Errorf("sim: SnapshotEvery set without OnSnapshot")
	}
	for i, a := range cfg.Agents {
		if h, ok := a.(SendHook); ok {
			e.hooks = append(e.hooks, h)
		}
		if h, ok := a.(MatchHook); ok {
			e.matchHooks = append(e.matchHooks, h)
		}
		if cfg.SnapshotEvery > 0 {
			if _, ok := a.(Resumable); !ok {
				return nil, fmt.Errorf("sim: SnapshotEvery set but agent %d (%T) is not Resumable", i, a)
			}
		}
		// Agents own their timers under a stable positional key, so a
		// snapshot taken by one engine resolves in another built from the
		// same Config (agent order is part of the config digest).
		if o, ok := a.(TimerOwner); ok {
			e.registerOwner(fmt.Sprintf("agent:%d", i), o)
		}
	}
	return e, nil
}

// internReason maps a seize/hold reason string to its integer ID, creating
// the accounting slots and the precomputed "seize:<reason>" trace label on
// first use. Protocols use a handful of fixed reasons, so the table stays
// tiny and the map is touched once per seize/hold *request*, never per
// completion event.
func (e *Engine) internReason(reason string) reasonID {
	if id, ok := e.reasonIDs[reason]; ok {
		return id
	}
	id := reasonID(len(e.reasons))
	e.reasonIDs[reason] = id
	e.reasons = append(e.reasons, reason)
	e.seizeLabels = append(e.seizeLabels, "seize:"+reason)
	e.seizeTime = append(e.seizeTime, 0)
	e.seizeCnt = append(e.seizeCnt, 0)
	e.heldTime = append(e.heldTime, 0)
	e.heldCnt = append(e.heldCnt, 0)
	return id
}

// newMsg returns a zeroed message, reusing a recycled struct when one is
// available. Callers assign every field they need via a composite literal.
func (e *Engine) newMsg() *message {
	if n := len(e.msgFree); n > 0 {
		m := e.msgFree[n-1]
		e.msgFree = e.msgFree[:n-1]
		return m
	}
	return &message{}
}

// freeMsg recycles a message whose last reference is about to die. Each
// message is released at exactly one point in its lifecycle: an application
// message when it matches, a data message when its receive job is queued, a
// control message after its delivery callback runs.
func (e *Engine) freeMsg(m *message) {
	*m = message{}
	e.msgFree = append(e.msgFree, m)
}

// ErrCapExceeded marks a run aborted by Config.MaxEvents or Config.MaxTime.
// Callers that treat a capped run as data — a configuration that diverges
// under its failure regime — rather than as a setup mistake can detect it
// with errors.Is.
var ErrCapExceeded = errors.New("cap exceeded")

// Run executes the simulation to completion and returns its results. An
// engine runs once; calling Run again returns an error.
func (e *Engine) Run() (*Result, error) {
	if e.ran {
		return nil, fmt.Errorf("sim: engine already ran")
	}
	e.ran = true

	if !e.restored {
		ctx := &Context{eng: e}
		for _, a := range e.cfg.Agents {
			a.Init(ctx)
		}
		// Activate all initially-ready operations.
		for i := range e.prog.Ops {
			e.depsLeft[i] = int32(len(e.prog.Ops[i].Deps))
		}
		for i := range e.prog.Ops {
			if e.depsLeft[i] == 0 {
				e.activate(goal.OpID(i))
			}
		}
	}

	for e.opsLeft > 0 {
		if e.queue.Len() == 0 {
			return nil, e.deadlockError()
		}
		t, ev := e.queue.Pop()
		if t < e.now {
			panic("sim: time went backwards")
		}
		e.now = t
		e.events++
		if e.events > e.cfg.MaxEvents {
			return nil, fmt.Errorf("sim: event %w: %d at t=%v (%d ops left)",
				ErrCapExceeded, e.cfg.MaxEvents, e.now, e.opsLeft)
		}
		if e.cfg.MaxTime > 0 && e.now > e.cfg.MaxTime {
			return nil, fmt.Errorf("sim: time %w: %v passed (%d ops left)",
				ErrCapExceeded, e.cfg.MaxTime, e.opsLeft)
		}
		switch ev.kind {
		case evJobDone:
			e.jobDone(int(ev.rank))
		case evArrive:
			e.arrive(ev.msg)
		case evTimer:
			if ev.fn != nil {
				ev.fn()
			} else {
				e.owners[ev.owner].OnTimer(ev.tkind, ev.targ)
			}
		}
		if e.cfg.SnapshotEvery > 0 && e.events-e.snapAt >= e.cfg.SnapshotEvery && e.opsLeft > 0 {
			e.maybeSnapshot()
		}
	}
	return e.buildResult(), nil
}

func (e *Engine) deadlockError() error {
	for i := range e.prog.Ops {
		if e.depsLeft[i] >= 0 && !e.opDoneFlag(goal.OpID(i)) {
			op := e.prog.Op(goal.OpID(i))
			return fmt.Errorf("sim: deadlock at t=%v with %d ops left; first stuck op: rank %d %s peer=%d tag=%d",
				e.now, e.opsLeft, op.Rank, op.Kind, op.Peer, op.Tag)
		}
	}
	return fmt.Errorf("sim: deadlock at t=%v with %d ops left", e.now, e.opsLeft)
}

// opDoneFlag reports whether op has completed. depsLeft is set to -1 on
// completion so the deadlock report can identify stuck ops.
func (e *Engine) opDoneFlag(id goal.OpID) bool { return e.depsLeft[id] == -1 }

// activate runs when an op's dependencies are all satisfied.
func (e *Engine) activate(id goal.OpID) {
	op := e.prog.Op(id)
	st := &e.ranks[op.Rank]
	switch op.Kind {
	case goal.KindCalc:
		st.appQ.push(job{kind: jobCalc, cost: op.Work, op: id})
		e.dispatch(int(op.Rank))
	case goal.KindSend:
		cost := e.net.SendCPU(op.Bytes)
		if !e.net.Eager(op.Bytes) {
			cost = e.net.Overhead // RTS preparation only
		}
		for _, h := range e.hooks {
			cost += h.SendPenalty(int(op.Rank), int(op.Peer), op.Bytes)
		}
		kind := jobSendEager
		if !e.net.Eager(op.Bytes) {
			kind = jobSendRTS
		}
		st.appQ.push(job{kind: kind, cost: cost, op: id})
		e.dispatch(int(op.Rank))
	case goal.KindRecv:
		e.postRecv(id)
	}
}

// dispatch grants the CPU of rank to the next job if it is idle.
func (e *Engine) dispatch(rank int) {
	st := &e.ranks[rank]
	if st.running {
		return
	}
	var j job
	switch {
	case !st.seizeQ.empty():
		j = st.seizeQ.pop()
	case !st.ctlQ.empty():
		j = st.ctlQ.pop()
	case st.held == 0 && !st.appQ.empty():
		j = st.appQ.pop()
	default:
		return
	}
	st.running = true
	st.runningJob = j
	st.jobStart = e.now
	if e.cfg.Trace != nil {
		kind, op := e.traceKind(&j)
		e.emitTrace(TraceEvent{Type: TraceGrant, Rank: rank, Kind: kind,
			Start: e.now, End: e.now, Op: op, Detail: int64(st.held)})
	}
	if j.kind == jobSeizeOpen {
		// Open-ended seizure: the CPU is held until the agent calls release
		// (typically when a shared-storage drain completes); no completion
		// is scheduled up front. release is idempotent and must be invoked
		// from inside an event callback.
		released := false
		r32 := int32(rank)
		j.granted(e.now, func() {
			if released {
				return
			}
			released = true
			e.queue.Push(e.now, event{kind: evJobDone, rank: r32})
		})
		return
	}
	cost := j.cost
	if j.kind != jobSeize && len(st.scales) > 0 {
		f := 1.0
		for _, sc := range st.scales {
			f *= sc
		}
		if f != 1 {
			scaled := j.cost.Scale(f)
			st.scaledExtra += scaled - j.cost
			cost = scaled
		}
	}
	e.queue.Push(e.now.Add(cost), event{kind: evJobDone, rank: int32(rank)})
}

// jobDone handles the completion of rank's running CPU job.
func (e *Engine) jobDone(rank int) {
	st := &e.ranks[rank]
	j := st.runningJob
	st.running = false
	dur := e.now.Sub(st.jobStart)
	if e.cfg.Trace != nil {
		if j.kind == jobSeizeOpen {
			// Split the occupancy at the nominal boundary: the part any lone
			// writer would pay, then the contention-induced wait.
			split := st.jobStart.Add(simtime.MinDuration(j.nominal, dur))
			e.emitTrace(TraceEvent{Rank: rank, Kind: e.seizeLabels[j.reason],
				Start: st.jobStart, End: split, Op: goal.NoOp})
			if split < e.now {
				e.emitTrace(TraceEvent{Rank: rank, Kind: e.seizeLabels[j.waitReason],
					Start: split, End: e.now, Op: goal.NoOp})
			}
		} else {
			kind, op := e.traceKind(&j)
			e.emitTrace(TraceEvent{Rank: rank, Kind: kind, Start: st.jobStart,
				End: e.now, Op: op})
		}
	}
	switch j.kind {
	case jobCalc:
		st.busy += dur
		e.opDone(j.op)
	case jobSendEager:
		st.busy += dur
		op := e.prog.Op(j.op)
		m := e.newMsg()
		*m = message{kind: msgEager, src: op.Rank, dst: op.Peer,
			tag: op.Tag, bytes: op.Bytes, op: j.op}
		e.inject(rank, m, op.Bytes)
		e.metrics.AppMessages++
		e.metrics.AppBytes += op.Bytes
		e.opDone(j.op)
	case jobSendRTS:
		st.busy += dur
		op := e.prog.Op(j.op)
		m := e.newMsg()
		*m = message{kind: msgRTS, src: op.Rank, dst: op.Peer,
			tag: op.Tag, bytes: op.Bytes, op: j.op}
		e.inject(rank, m, 0)
		e.metrics.Rendezvous++
	case jobSendData:
		st.busy += dur
		// j.msg is the carrier built at CTS arrival; it already holds the
		// data message's routing and bookkeeping, so inject it directly.
		m := j.msg
		m.kind = msgData
		e.inject(rank, m, m.bytes)
		e.metrics.AppMessages++
		e.metrics.AppBytes += m.bytes
		e.opDone(m.op) // rendezvous send completes when data is pushed
	case jobRecvDone:
		st.busy += dur
		e.opDone(j.op)
	case jobCtlSend:
		st.ctlBusy += dur
		e.inject(rank, j.msg, j.msg.wire)
		e.metrics.CtlMessages++
		e.metrics.CtlBytes += j.msg.wire
	case jobCtlRecv:
		st.ctlBusy += dur
		if j.msg.deliver != nil {
			j.msg.deliver(e.now)
		}
		e.freeMsg(j.msg)
	case jobSeize:
		st.seizedBusy += dur
		e.seizeTime[j.reason] += dur
		e.seizeCnt[j.reason]++
		if j.fn != nil {
			j.fn(e.now)
		}
	case jobSeizeOpen:
		st.seizedBusy += dur
		nominal := simtime.MinDuration(j.nominal, dur)
		e.seizeTime[j.reason] += nominal
		e.seizeCnt[j.reason]++
		if wait := dur - nominal; wait > 0 {
			e.seizeTime[j.waitReason] += wait
			e.seizeCnt[j.waitReason]++
		}
		if j.fn != nil {
			j.fn(e.now)
		}
	}
	e.dispatch(rank)
}

// opDone marks an application operation complete and releases dependents.
func (e *Engine) opDone(id goal.OpID) {
	if e.depsLeft[id] == -1 {
		panic("sim: op completed twice")
	}
	e.depsLeft[id] = -1
	e.opsLeft--
	op := e.prog.Op(id)
	st := &e.ranks[op.Rank]
	if e.now > st.finish {
		st.finish = e.now
	}
	for _, out := range op.Outs {
		e.depsLeft[out]--
		if e.depsLeft[out] == 0 {
			e.activate(out)
		}
	}
}

// inject places a message on rank's NIC and schedules its arrival. wireBytes
// is the size used for wire and NIC occupancy (0 for bare envelopes).
func (e *Engine) inject(rank int, m *message, wireBytes int64) {
	st := &e.ranks[rank]
	m.wire = wireBytes
	e.nextMsgID++
	m.id = e.nextMsgID
	inj := simtime.Max(e.now, st.nicFreeAt)
	st.nicFreeAt = inj.Add(e.net.NIC(wireBytes))
	if e.cfg.Trace != nil {
		e.emitTrace(TraceEvent{Type: TraceNIC, Rank: rank, Kind: msgKindName(m.kind),
			Start: inj, End: st.nicFreeAt, MsgID: m.id,
			Src: int(m.src), Dst: int(m.dst), Wire: wireBytes})
	}
	// Optional shared-fabric constraint: the message also serializes
	// through the machine's bisection.
	if occ := e.net.FabricOccupancy(wireBytes); occ > 0 {
		start := simtime.Max(inj, e.fabricFree)
		e.fabricFree = start.Add(occ)
		e.metrics.FabricBusy += occ
		inj = start
	}
	arr := inj.Add(e.net.Wire(wireBytes))
	// Non-overtaking per (src, dst) channel.
	if st.lastArrival == nil {
		st.lastArrival = make([]simtime.Time, len(e.ranks))
	}
	if last := st.lastArrival[m.dst]; arr < last {
		arr = last
	}
	st.lastArrival[m.dst] = arr
	if e.cfg.Trace != nil {
		e.emitTrace(TraceEvent{Type: TraceInject, Rank: rank, Kind: msgKindName(m.kind),
			Start: inj, End: arr, MsgID: m.id, Src: int(m.src), Dst: int(m.dst),
			Tag: m.tag, Bytes: m.bytes, Wire: wireBytes, Op: m.op, RecvOp: m.recvOp})
	}
	e.queue.Push(arr, event{kind: evArrive, msg: m})
}

// arrive handles a message reaching its destination rank.
func (e *Engine) arrive(m *message) {
	st := &e.ranks[m.dst]
	if e.cfg.Trace != nil {
		e.emitTrace(TraceEvent{Type: TraceArrive, Rank: int(m.dst), Kind: msgKindName(m.kind),
			Start: e.now, End: e.now, MsgID: m.id, Src: int(m.src), Dst: int(m.dst),
			Tag: m.tag, Bytes: m.bytes, Wire: m.wire, Op: m.op, RecvOp: m.recvOp})
	}
	switch m.kind {
	case msgEager, msgRTS:
		if idx := e.matchPosted(st, m); idx >= 0 {
			recvOp := st.posted[idx].op
			st.posted = append(st.posted[:idx], st.posted[idx+1:]...)
			e.matched(m, recvOp)
		} else {
			st.unexpected = append(st.unexpected, m)
			if len(st.unexpected) > e.metrics.UnexpectedMax {
				e.metrics.UnexpectedMax = len(st.unexpected)
			}
		}
	case msgCTS:
		// Back at the sender: push the data. The CTS struct itself becomes
		// the data-message carrier — flip its direction in place; jobSendData
		// completes the rebrand to msgData at injection time.
		sender := int(m.dst)
		m.src, m.dst = m.dst, m.src
		e.ranks[sender].appQ.push(job{
			kind: jobSendData,
			cost: e.net.SendCPU(m.bytes), // o + (s-1)·O to push the payload
			msg:  m,
		})
		e.dispatch(sender)
	case msgData:
		recvRank := int(m.dst)
		st.appQ.push(job{kind: jobRecvDone, cost: e.net.RecvCPU(m.bytes), op: m.recvOp})
		e.freeMsg(m)
		e.dispatch(recvRank)
	case msgCtl:
		st.ctlQ.push(job{kind: jobCtlRecv, cost: e.net.RecvCPU(m.bytes), msg: m})
		e.dispatch(int(m.dst))
	}
}

// matched joins an application message with a posted receive.
func (e *Engine) matched(m *message, recvOp goal.OpID) {
	e.metrics.Matches++
	st := &e.ranks[m.dst]
	if e.cfg.Trace != nil {
		e.emitTrace(TraceEvent{Type: TraceMatch, Rank: int(m.dst), Kind: msgKindName(m.kind),
			Start: e.now, End: e.now, MsgID: m.id, Src: int(m.src), Dst: int(m.dst),
			Tag: m.tag, Bytes: m.bytes, Op: m.op, RecvOp: recvOp})
	}
	for _, h := range e.matchHooks {
		h.MessageMatched(int(m.src), int(m.dst), m.bytes)
	}
	switch m.kind {
	case msgEager:
		recvRank := int(m.dst)
		st.appQ.push(job{kind: jobRecvDone, cost: e.net.RecvCPU(m.bytes), op: recvOp})
		e.freeMsg(m)
		e.dispatch(recvRank)
	case msgRTS:
		// Send CTS back to the data source; costs o on the receiver.
		recvRank := int(m.dst)
		cts := e.newMsg()
		*cts = message{kind: msgCTS, src: m.dst, dst: m.src, tag: m.tag,
			bytes: m.bytes, wire: 0, op: m.op, recvOp: recvOp}
		e.freeMsg(m)
		st.ctlQ.push(job{kind: jobCtlSend, cost: e.net.Overhead, msg: cts})
		e.dispatch(recvRank)
	default:
		panic("sim: matched non-matchable message")
	}
}

// postRecv posts a receive and tries to match it against the unexpected
// queue in arrival order.
func (e *Engine) postRecv(id goal.OpID) {
	op := e.prog.Op(id)
	st := &e.ranks[op.Rank]
	for i, m := range st.unexpected {
		if recvMatches(op, m) {
			st.unexpected = append(st.unexpected[:i], st.unexpected[i+1:]...)
			e.matched(m, id)
			return
		}
	}
	st.posted = append(st.posted, postedRecv{op: id})
	if len(st.posted) > e.metrics.PostedMax {
		e.metrics.PostedMax = len(st.posted)
	}
}

// matchPosted finds the first posted receive matching m, in post order.
func (e *Engine) matchPosted(st *rankState, m *message) int {
	for i := range st.posted {
		if recvMatches(e.prog.Op(st.posted[i].op), m) {
			return i
		}
	}
	return -1
}

// recvMatches applies MPI matching rules.
func recvMatches(recv *goal.Op, m *message) bool {
	if recv.Peer != goal.AnySource && recv.Peer != m.src {
		return false
	}
	if recv.Tag != goal.AnyTag && recv.Tag != m.tag {
		return false
	}
	return true
}
