package sim

// Exhaustive-field audit of the snapshot format: every field of every
// struct that holds (or could hold) mid-run simulator state must have an
// explicit entry saying how snapshot/restore handles it. Adding a field to
// any of these structs fails this test until the entry — and, for mutable
// state, the encodeSnapshot/Restore handling — is added. This is the
// mechanism that keeps the serialization complete as the engine grows; the
// byte-identity suites prove the handled fields round-trip, this test
// proves no field goes unhandled.

import (
	"reflect"
	"testing"

	"checkpointsim/internal/network"
)

// requireFields fails for any struct field missing from handled (new state
// the snapshot doesn't know about) and any handled entry missing from the
// struct (stale documentation).
func requireFields(t *testing.T, typ reflect.Type, handled map[string]string) {
	t.Helper()
	inStruct := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		inStruct[name] = true
		if _, ok := handled[name]; !ok {
			t.Errorf("%s.%s has no snapshot-handling entry: wire it into "+
				"encodeSnapshot/Restore (or document the exclusion) and record it here", typ, name)
		}
	}
	for name := range handled {
		if !inStruct[name] {
			t.Errorf("%s.%s is in the handling table but not in the struct — drop the stale entry", typ, name)
		}
	}
}

func TestSnapshotCoversEngineFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(Engine{}), map[string]string{
		"cfg":         "immutable configuration; fingerprinted into the blob's config digest",
		"prog":        "immutable program; content-hashed into the config digest",
		"net":         "immutable parameters; hashed field-by-field into the config digest",
		"queue":       "serialized: seq counter plus every event with its exact (t,prio,seq) key",
		"now":         "serialized scalar",
		"ranks":       "serialized per rank (encodeRank/decodeRank)",
		"depsLeft":    "serialized; open-count cross-checked against opsLeft on restore",
		"opsLeft":     "serialized scalar",
		"hooks":       "rebuilt at New from the agent stack (agent types are digest-covered)",
		"matchHooks":  "rebuilt at New from the agent stack (agent types are digest-covered)",
		"rand":        "serialized: full 4-word xoshiro256** state",
		"events":      "serialized scalar (restored counters keep resumed totals identical)",
		"metrics":     "serialized field-by-field (see TestSnapshotCoversMetricsFields)",
		"fabricFree":  "serialized scalar",
		"nextMsgID":   "serialized scalar",
		"reasonIDs":   "rebuilt on restore from the interned reason table",
		"reasons":     "serialized in ID order so restored reasonIDs keep meaning",
		"seizeLabels": "rebuilt on restore (derived: \"seize:\" + reason)",
		"seizeTime":   "serialized with the reason table",
		"seizeCnt":    "serialized with the reason table",
		"heldTime":    "serialized with the reason table",
		"heldCnt":     "serialized with the reason table",
		"msgFree": "deliberately NOT serialized: the recycling pool holds only zeroed " +
			"structs awaiting reuse; a restored engine rebuilds it empty with no " +
			"observable effect on the simulation (see encodeSnapshot)",
		"ran":        "runtime guard, not simulation state; doubles as the restore-failure poison",
		"owners":     "rebuilt at New/registration; snapshots reference owners by key, not index",
		"ownerKeys":  "serialized as the owner key table; restore rebinds by key",
		"ownerIDs":   "rebuilt at New/registration",
		"traceCount": "serialized scalar (anchors the resume trace suffix)",
		"snapAt":     "reset to the restored event count (cadence restarts at the boundary)",
		"restored":   "runtime guard: tells Run to skip Init/activation",
	})
}

func TestSnapshotCoversRankStateFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(rankState{}), map[string]string{
		"running":     "serialized",
		"runningJob":  "serialized when running",
		"jobStart":    "serialized when running",
		"seizeQ":      "serialized job-by-job",
		"ctlQ":        "serialized job-by-job",
		"appQ":        "serialized job-by-job",
		"held":        "must be zero at a safe boundary (open holds carry closures); encodeRank panics otherwise",
		"scales":      "must be empty at a safe boundary (restores carry closures); encodeRank panics otherwise",
		"scaledExtra": "serialized",
		"nicFreeAt":   "serialized",
		"posted":      "serialized (op IDs)",
		"unexpected":  "serialized message-by-message",
		"lastArrival": "serialized (presence flag + flat slice)",
		"finish":      "serialized",
		"busy":        "serialized",
		"ctlBusy":     "serialized",
		"seizedBusy":  "serialized",
	})
}

func TestSnapshotCoversJobFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(job{}), map[string]string{
		"kind":       "serialized; jobSeizeOpen rejected on decode (always closure-bearing)",
		"cost":       "serialized",
		"op":         "serialized; bounds-checked on decode",
		"msg":        "serialized inline when present",
		"reason":     "serialized; bounds-checked against the restored reason table",
		"fn":         "closure: jobSerializable blocks the snapshot boundary while set",
		"nominal":    "serialized",
		"waitReason": "serialized; bounds-checked against the restored reason table",
		"granted":    "closure: jobSerializable blocks the snapshot boundary while set",
	})
}

func TestSnapshotCoversMessageFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(message{}), map[string]string{
		"kind":    "serialized; bounds-checked on decode",
		"id":      "serialized",
		"src":     "serialized; bounds-checked on decode",
		"dst":     "serialized; bounds-checked on decode",
		"tag":     "serialized",
		"bytes":   "serialized",
		"wire":    "serialized",
		"op":      "serialized; bounds-checked on decode",
		"recvOp":  "serialized; bounds-checked on decode",
		"deliver": "closure: eventSerializable/jobSerializable block the boundary while set",
	})
}

func TestSnapshotCoversEventFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(event{}), map[string]string{
		"kind":  "serialized; unknown kinds rejected on decode",
		"tkind": "serialized for owned timers",
		"rank":  "serialized for evJobDone; bounds-checked on decode",
		"owner": "serialized as an owner-table index; rebound by key on restore",
		"targ":  "serialized for owned timers",
		"msg":   "serialized for evArrive",
		"fn":    "legacy closure timer: eventSerializable blocks the boundary while set",
	})
}

func TestSnapshotCoversMetricsFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(Metrics{}), map[string]string{
		"AppMessages":   "serialized",
		"AppBytes":      "serialized",
		"CtlMessages":   "serialized",
		"CtlBytes":      "serialized",
		"Rendezvous":    "serialized",
		"Matches":       "serialized",
		"UnexpectedMax": "serialized",
		"PostedMax":     "serialized",
		"FabricBusy":    "serialized",
	})
}

func TestSnapshotCoversPostedRecvFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(postedRecv{}), map[string]string{
		"op": "serialized",
	})
}

// TestSnapshotCoversConfigFields pins the config-digest policy: every
// Config field either shapes the simulation's future evolution (and must be
// digest-covered so a snapshot refuses to resume under a different value)
// or is a pure observer (and must stay out, so observers can vary freely
// between the snapshotting and resuming process).
func TestSnapshotCoversConfigFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(Config{}), map[string]string{
		"Net":           "digest-covered (every parameter, see TestSnapshotCoversNetworkParams)",
		"Program":       "digest-covered via content hash",
		"Agents":        "digest-covered positionally by type; parameter identity is the caller's cache key",
		"Seed":          "digest-covered",
		"MaxEvents":     "digest-covered (caps change which runs error)",
		"MaxTime":       "digest-covered (caps change which runs error)",
		"SnapshotEvery": "pure observer, outside the digest: cadence never alters simulation state",
		"OnSnapshot":    "pure observer, outside the digest",
		"Trace":         "pure observer, outside the digest; traceCount keeps resume suffixes aligned",
	})
}

func TestSnapshotCoversNetworkParams(t *testing.T) {
	requireFields(t, reflect.TypeOf(network.Params{}), map[string]string{
		"Latency":              "digest-covered",
		"Overhead":             "digest-covered",
		"Gap":                  "digest-covered",
		"GapPerByte":           "digest-covered",
		"OverheadPerByte":      "digest-covered",
		"RendezvousThreshold":  "digest-covered",
		"BisectionBytesPerSec": "digest-covered",
	})
}
