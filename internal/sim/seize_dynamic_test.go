package sim

import (
	"testing"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/simtime"
)

func TestSeizeCPUDynamicBasic(t *testing.T) {
	// An open-ended seizure held for 1500ns with a 1000ns nominal: 1000
	// accounted under "write", 500 under "wait", makespan pushed by the full
	// 1500.
	b := goal.NewBuilder(1)
	b.Calc(0, 100)
	var end simtime.Time
	a := &fnAgent{init: func(ctx *Context) {
		ctx.SeizeCPUDynamic(0, 1000, "write", "wait",
			func(start simtime.Time, release func()) {
				if start != 0 {
					t.Errorf("granted at %v, want 0", start)
				}
				ctx.After(1500, func() { release() })
			},
			func(e simtime.Time) { end = e })
	}}
	r := run(t, testNet(), b.MustBuild(), a)
	if end != 1500 {
		t.Errorf("seizure ended at %v, want 1500", end)
	}
	if r.Makespan != 1600 {
		t.Errorf("makespan = %v, want 1600", r.Makespan)
	}
	if r.SeizedTime["write"] != 1000 || r.SeizedCount["write"] != 1 {
		t.Errorf("write accounting = %v %v", r.SeizedTime, r.SeizedCount)
	}
	if r.SeizedTime["wait"] != 500 || r.SeizedCount["wait"] != 1 {
		t.Errorf("wait accounting = %v %v", r.SeizedTime, r.SeizedCount)
	}
	if r.TotalSeized() != 1500 {
		t.Errorf("TotalSeized = %v", r.TotalSeized())
	}
}

func TestSeizeCPUDynamicNoWait(t *testing.T) {
	// Held exactly the nominal: no wait component appears at all.
	b := goal.NewBuilder(1)
	b.Calc(0, 100)
	a := &fnAgent{init: func(ctx *Context) {
		ctx.SeizeCPUDynamic(0, 1000, "write", "wait",
			func(start simtime.Time, release func()) {
				ctx.After(1000, func() { release() })
			}, nil)
	}}
	r := run(t, testNet(), b.MustBuild(), a)
	if r.SeizedTime["write"] != 1000 {
		t.Errorf("write accounting = %v", r.SeizedTime)
	}
	if _, ok := r.SeizedTime["wait"]; ok {
		t.Errorf("wait accounted with zero excess: %v", r.SeizedTime)
	}
}

func TestSeizeCPUDynamicReleaseIdempotent(t *testing.T) {
	b := goal.NewBuilder(1)
	b.Calc(0, 100)
	var ends int
	a := &fnAgent{init: func(ctx *Context) {
		ctx.SeizeCPUDynamic(0, 0, "write", "wait",
			func(start simtime.Time, release func()) {
				ctx.After(200, func() { release(); release() })
				ctx.After(700, release)
			},
			func(simtime.Time) { ends++ })
	}}
	r := run(t, testNet(), b.MustBuild(), a)
	if ends != 1 {
		t.Errorf("done ran %d times, want 1", ends)
	}
	if r.Makespan != 300 {
		t.Errorf("makespan = %v, want 300 (released at 200)", r.Makespan)
	}
}

func TestSeizeCPUDynamicQueuesBehindRunningJob(t *testing.T) {
	// Non-preemptive: requested mid-calc, granted when the calc ends, and the
	// second calc waits for the release.
	b := goal.NewBuilder(1)
	s := b.Seq(0)
	s.Calc(1000)
	s.Calc(1000)
	var grantedAt simtime.Time
	a := &fnAgent{init: func(ctx *Context) {
		ctx.After(500, func() {
			ctx.SeizeCPUDynamic(0, 100, "write", "wait",
				func(start simtime.Time, release func()) {
					grantedAt = start
					ctx.After(300, release)
				}, nil)
		})
	}}
	r := run(t, testNet(), b.MustBuild(), a)
	if grantedAt != 1000 {
		t.Errorf("granted at %v, want 1000", grantedAt)
	}
	if r.Makespan != 2300 {
		t.Errorf("makespan = %v, want 2300", r.Makespan)
	}
}

func TestSeizeCPUDynamicTraceSplit(t *testing.T) {
	// The trace stream shows two back-to-back events: nominal under the
	// seizure reason, excess under the wait reason.
	b := goal.NewBuilder(1)
	b.Calc(0, 100)
	var events []TraceEvent
	a := &fnAgent{init: func(ctx *Context) {
		ctx.SeizeCPUDynamic(0, 1000, "write", "wait",
			func(start simtime.Time, release func()) {
				ctx.After(1500, release)
			}, nil)
	}}
	e, err := New(Config{Net: testNet(), Program: b.MustBuild(),
		Agents: []Agent{a}, Seed: 1,
		Trace: func(ev TraceEvent) { events = append(events, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var seize []TraceEvent
	for _, ev := range events {
		if ev.Type == TraceCPU && (ev.Kind == "seize:write" || ev.Kind == "seize:wait") {
			seize = append(seize, ev)
		}
	}
	if len(seize) != 2 {
		t.Fatalf("seize trace events = %+v, want 2", seize)
	}
	if seize[0].Kind != "seize:write" || seize[0].Start != 0 || seize[0].End != 1000 {
		t.Errorf("nominal event = %+v", seize[0])
	}
	if seize[1].Kind != "seize:wait" || seize[1].Start != 1000 || seize[1].End != 1500 {
		t.Errorf("wait event = %+v", seize[1])
	}
}

func TestSeizeCPUDynamicValidation(t *testing.T) {
	b := goal.NewBuilder(1)
	b.Calc(0, 100)
	for name, call := range map[string]func(ctx *Context){
		"rank":    func(ctx *Context) { ctx.SeizeCPUDynamic(9, 0, "w", "x", func(simtime.Time, func()) {}, nil) },
		"nominal": func(ctx *Context) { ctx.SeizeCPUDynamic(0, -1, "w", "x", func(simtime.Time, func()) {}, nil) },
		"granted": func(ctx *Context) { ctx.SeizeCPUDynamic(0, 0, "w", "x", nil, nil) },
	} {
		call := call
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("bad call did not panic")
				}
			}()
			a := &fnAgent{init: func(ctx *Context) { call(ctx) }}
			run(t, testNet(), b.MustBuild(), a)
		})
	}
}
