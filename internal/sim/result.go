package sim

import (
	"fmt"
	"sort"
	"strings"

	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// Result summarizes a completed simulation.
type Result struct {
	// Makespan is the completion time of the last application operation.
	Makespan simtime.Time
	// RankFinish holds each rank's last-op completion time.
	RankFinish []simtime.Time
	// RankBusy holds per-rank CPU time spent on application jobs.
	RankBusy []simtime.Duration
	// RankCtlBusy holds per-rank CPU time spent processing control traffic.
	RankCtlBusy []simtime.Duration
	// RankSeized holds per-rank CPU time spent seized (checkpoints, noise,
	// recovery).
	RankSeized []simtime.Duration
	// RankScaledExtra holds per-rank extra CPU time caused by ScaleCPU
	// slowdowns (background-interference modeling).
	RankScaledExtra []simtime.Duration
	// SeizedTime aggregates seized CPU time across ranks by reason.
	SeizedTime map[string]simtime.Duration
	// SeizedCount counts seizures across ranks by reason.
	SeizedCount map[string]int64
	// HeldTime aggregates application-gate (HoldApp) time by reason.
	HeldTime map[string]simtime.Duration
	// HeldCount counts HoldApp gates by reason.
	HeldCount map[string]int64
	// Metrics holds global message counters.
	Metrics Metrics
	// Events is the number of simulation events processed.
	Events int64
}

func (e *Engine) buildResult() *Result {
	r := &Result{
		RankFinish:      make([]simtime.Time, len(e.ranks)),
		RankBusy:        make([]simtime.Duration, len(e.ranks)),
		RankCtlBusy:     make([]simtime.Duration, len(e.ranks)),
		RankSeized:      make([]simtime.Duration, len(e.ranks)),
		RankScaledExtra: make([]simtime.Duration, len(e.ranks)),
		SeizedTime:      make(map[string]simtime.Duration),
		SeizedCount:     make(map[string]int64),
		HeldTime:        make(map[string]simtime.Duration),
		HeldCount:       make(map[string]int64),
		Metrics:         e.metrics,
		Events:          e.events,
	}
	// Re-expand the interned accounting to the string-keyed maps the Result
	// API has always exposed. A reason appears only if it was actually
	// charged (a queued-but-never-completed seizure leaves no key), matching
	// the behavior of the old map-per-event accounting.
	for id, reason := range e.reasons {
		if e.seizeCnt[id] > 0 {
			r.SeizedTime[reason] = e.seizeTime[id]
			r.SeizedCount[reason] = e.seizeCnt[id]
		}
		if e.heldCnt[id] > 0 {
			r.HeldTime[reason] = e.heldTime[id]
			r.HeldCount[reason] = e.heldCnt[id]
		}
	}
	for i := range e.ranks {
		st := &e.ranks[i]
		r.RankFinish[i] = st.finish
		r.RankBusy[i] = st.busy
		r.RankCtlBusy[i] = st.ctlBusy
		r.RankSeized[i] = st.seizedBusy
		r.RankScaledExtra[i] = st.scaledExtra
		if st.finish > r.Makespan {
			r.Makespan = st.finish
		}
	}
	return r
}

// CanonicalBytes renders the result as a deterministic byte string: equal
// results produce equal bytes and any field difference changes them
// (map keys are emitted sorted). The crash–resume differential harness
// compares these to prove a resumed run's remainder is byte-identical to
// the monolithic run's.
func (r *Result) CanonicalBytes() []byte {
	var enc snapshot.Encoder
	enc.Time(r.Makespan)
	snapshot.EncodeI64Slice(&enc, r.RankFinish)
	snapshot.EncodeI64Slice(&enc, r.RankBusy)
	snapshot.EncodeI64Slice(&enc, r.RankCtlBusy)
	snapshot.EncodeI64Slice(&enc, r.RankSeized)
	snapshot.EncodeI64Slice(&enc, r.RankScaledExtra)
	durMap := func(m map[string]simtime.Duration) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		enc.Int(len(keys))
		for _, k := range keys {
			enc.Str(k)
			enc.Dur(m[k])
		}
	}
	cntMap := func(m map[string]int64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		enc.Int(len(keys))
		for _, k := range keys {
			enc.Str(k)
			enc.I64(m[k])
		}
	}
	durMap(r.SeizedTime)
	cntMap(r.SeizedCount)
	durMap(r.HeldTime)
	cntMap(r.HeldCount)
	enc.I64(r.Metrics.AppMessages)
	enc.I64(r.Metrics.AppBytes)
	enc.I64(r.Metrics.CtlMessages)
	enc.I64(r.Metrics.CtlBytes)
	enc.I64(r.Metrics.Rendezvous)
	enc.I64(r.Metrics.Matches)
	enc.Int(r.Metrics.UnexpectedMax)
	enc.Int(r.Metrics.PostedMax)
	enc.Dur(r.Metrics.FabricBusy)
	enc.I64(r.Events)
	return enc.Bytes()
}

// TotalSeized returns the CPU time seized across all ranks and reasons.
func (r *Result) TotalSeized() simtime.Duration {
	var t simtime.Duration
	for _, d := range r.SeizedTime {
		t += d
	}
	return t
}

// Slowdown returns the ratio of this result's makespan to a baseline
// makespan (1.0 = identical, 1.10 = 10% slower).
func (r *Result) Slowdown(baseline *Result) float64 {
	if baseline.Makespan == 0 {
		return 0
	}
	return float64(r.Makespan) / float64(baseline.Makespan)
}

// OverheadPercent returns the relative makespan increase over a baseline,
// in percent.
func (r *Result) OverheadPercent(baseline *Result) float64 {
	return (r.Slowdown(baseline) - 1) * 100
}

// String renders a multi-line human-readable summary.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan: %v\n", simtime.Duration(r.Makespan))
	fmt.Fprintf(&sb, "events:   %d\n", r.Events)
	fmt.Fprintf(&sb, "messages: %d app (%d B), %d ctl (%d B), %d rendezvous\n",
		r.Metrics.AppMessages, r.Metrics.AppBytes,
		r.Metrics.CtlMessages, r.Metrics.CtlBytes, r.Metrics.Rendezvous)
	if len(r.SeizedTime) > 0 {
		reasons := make([]string, 0, len(r.SeizedTime))
		for k := range r.SeizedTime {
			reasons = append(reasons, k)
		}
		sort.Strings(reasons)
		for _, k := range reasons {
			fmt.Fprintf(&sb, "seized[%s]: %v over %d seizures\n",
				k, r.SeizedTime[k], r.SeizedCount[k])
		}
	}
	return sb.String()
}
