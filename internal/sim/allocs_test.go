package sim

import (
	"testing"

	"checkpointsim/internal/network"
)

// With tracing off, the steady-state event loop must not allocate per
// event: messages come from the engine's free list, seize/held accounting
// indexes interned-reason arrays, and per-channel arrival tracking is a
// flat slice. Engine construction still allocates (queues, rank state),
// and the event heap pays a handful of capacity doublings, but none of
// that scales with iteration count — so the allocation difference between
// a short run and a 4x-longer run of the same ring bounds the per-message
// cost, and it must stay near zero. Before the pooling/interning pass this
// difference was several allocations per extra message.
func TestRunAllocsIndependentOfIterations(t *testing.T) {
	const (
		p     = 8
		short = 10
		long  = 40
	)
	measure := func(iters int) float64 {
		prog := ring(p, iters, 1024, 1000)
		return testing.AllocsPerRun(5, func() {
			e, err := New(Config{Net: network.DefaultParams(), Program: prog, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	extraMsgs := p * (long - short) // messages the longer run adds
	extra := measure(long) - measure(short)
	// Allow a few heap doublings and runtime noise, nothing per-message.
	if extra > 32 {
		t.Errorf("long run allocates %.0f more than short (for %d extra messages); "+
			"per-event path is allocating again", extra, extraMsgs)
	}
}

// Attaching no tracer must keep Run itself allocation-free apart from the
// final Result construction: the trace-off fast path must not build the
// "seize:<reason>" labels or per-event strings speculatively.
func TestResultOnlyAllocationsStayBounded(t *testing.T) {
	prog := ring(4, 5, 512, 1000)
	warm, err := New(Config{Net: network.DefaultParams(), Program: prog, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Run(); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(10, func() {
		e, err := New(Config{Net: network.DefaultParams(), Program: prog, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	// 4 ranks x 5 iterations = 20 messages; the whole run (engine build,
	// event loop, result) must cost far less than one alloc per message
	// would. The bound is loose against runtime drift but tight against
	// reintroducing per-event allocation.
	if got > 200 {
		t.Errorf("full run allocates %.0f times; expected bounded engine-construction cost", got)
	}
}
