package sim

// Randomized cross-validation: arbitrary programs with arbitrary agent
// perturbations must respect the engine's global invariants. These tests
// are the strongest correctness net in the repository — every subsystem
// (matching, rendezvous, NIC serialization, seizures, gates, scaling,
// control traffic) feeds into them.

import (
	"testing"
	"testing/quick"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/rng"
	"checkpointsim/internal/runner"
	"checkpointsim/internal/simtime"
)

// randomProgram builds a balanced program with random structure: per-rank
// compute chains, ring exchanges, random pairwise messages, and occasional
// rendezvous-sized payloads.
func randomProgram(r *rng.Source) *goal.Program {
	nranks := r.Intn(6) + 2
	b := goal.NewBuilder(nranks)
	seqs := make([]*goal.Sequencer, nranks)
	for i := range seqs {
		seqs[i] = b.Seq(i)
	}
	iters := r.Intn(5) + 1
	for it := 0; it < iters; it++ {
		for i, s := range seqs {
			s.Calc(simtime.Duration(r.Intn(200000)))
			size := int64(r.Intn(1024) + 1)
			if r.Float64() < 0.2 {
				size = int64(r.Intn(256*1024) + 64*1024) // rendezvous range
			}
			next := (i + 1) % nranks
			prev := (i - 1 + nranks) % nranks
			sd := s.Fork(goal.KindSend, int32(next), int32(it), size)
			rv := s.Fork(goal.KindRecv, int32(prev), int32(it), 0)
			s.Join(sd, rv)
		}
		// Occasional extra pairwise exchange with a random partner pattern.
		if r.Float64() < 0.5 && nranks >= 2 {
			a := r.Intn(nranks)
			c := (a + 1 + r.Intn(nranks-1)) % nranks
			sa, sc := seqs[a], seqs[c]
			tag := int32(100 + it)
			f1 := sa.Fork(goal.KindSend, int32(c), tag, 64)
			f2 := sa.Fork(goal.KindRecv, int32(c), tag, 64)
			sa.Join(f1, f2)
			g1 := sc.Fork(goal.KindSend, int32(a), tag, 64)
			g2 := sc.Fork(goal.KindRecv, int32(a), tag, 64)
			sc.Join(g1, g2)
		}
	}
	return b.MustBuild()
}

// chaosAgent applies random (but deterministic, seeded) perturbations:
// seizures, app gates, CPU scaling, and control chatter.
type chaosAgent struct {
	seed uint64
}

func (a *chaosAgent) Init(ctx *Context) {
	r := rng.New(a.seed)
	n := ctx.NumRanks()
	for i := 0; i < 10; i++ {
		rank := r.Intn(n)
		when := simtime.Time(r.Intn(1000000))
		switch r.Intn(4) {
		case 0:
			d := simtime.Duration(r.Intn(50000))
			ctx.At(when, func() { ctx.SeizeCPU(rank, d, "chaos", nil) })
		case 1:
			hold := simtime.Duration(r.Intn(50000) + 1)
			ctx.At(when, func() {
				release := ctx.HoldApp(rank, "chaos")
				ctx.After(hold, release)
			})
		case 2:
			f := 1 + r.Float64()
			span := simtime.Duration(r.Intn(50000) + 1)
			ctx.At(when, func() {
				restore := ctx.ScaleCPU(rank, f)
				ctx.After(span, restore)
			})
		case 3:
			if n < 2 {
				continue
			}
			dst := (rank + 1 + r.Intn(n-1)) % n
			ctx.At(when, func() { ctx.SendControl(rank, dst, 32, nil) })
		}
	}
}

func TestFuzzInvariants(t *testing.T) {
	net := network.DefaultParams()
	net.RendezvousThreshold = 64 * 1024
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		prog := randomProgram(r)
		cp, _ := goal.CriticalPath(prog, net)

		runOnce := func() *Result {
			eng, err := New(Config{Net: net, Program: prog,
				Agents: []Agent{&chaosAgent{seed: uint64(seed) + 1}},
				Seed:   uint64(seed), MaxEvents: 50_000_000})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res
		}
		a := runOnce()

		// Invariant 1: the contention-free critical path lower-bounds the
		// simulated makespan.
		if simtime.Duration(a.Makespan) < cp {
			t.Errorf("seed %d: makespan %v < critical path %v", seed, a.Makespan, cp)
			return false
		}
		// Invariant 2: per-rank conservation — a rank's accounted CPU
		// occupancy (app + control + seized, all non-overlapping intervals
		// completing before the simulation ends) cannot exceed the makespan.
		for i := range a.RankBusy {
			occupied := a.RankBusy[i] + a.RankCtlBusy[i] + a.RankSeized[i]
			if occupied > simtime.Duration(a.Makespan) {
				t.Errorf("seed %d: rank %d occupied %v > makespan %v",
					seed, i, occupied, a.Makespan)
				return false
			}
			if a.RankBusy[i] < 0 || a.RankCtlBusy[i] < 0 || a.RankSeized[i] < 0 {
				t.Errorf("seed %d: negative accounting on rank %d", seed, i)
				return false
			}
		}
		// Invariant 3: every message matched exactly once.
		st := prog.Stats()
		if a.Metrics.Matches != int64(st.NumSend) {
			t.Errorf("seed %d: %d matches for %d sends", seed, a.Metrics.Matches, st.NumSend)
			return false
		}
		// Invariant 4: bit-exact determinism.
		b := runOnce()
		if a.Makespan != b.Makespan || a.Events != b.Events || a.Metrics != b.Metrics {
			t.Errorf("seed %d: nondeterministic", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// FuzzParallelAgents is the native-fuzz arm of the determinism net: a
// random program with chaos agents attached is run once serially and then
// four more times concurrently under the parallel sweep runner. Every
// replica must be bit-for-bit identical to the serial run — any hidden
// shared state between engines (a package-level variable, an RNG touched
// across goroutines) shows up here as a divergence or a -race report.
//
// Smoke-run the generator beyond the seed corpus with:
//
//	go test -fuzz=FuzzParallelAgents -fuzztime=10s ./internal/sim
func FuzzParallelAgents(f *testing.F) {
	// Corpus: small/large seeds, the sweep default, and values whose
	// programs historically exercised rendezvous payloads and multi-agent
	// interleavings under the runner.
	for _, seed := range []uint64{0, 1, 7, 42, 1234, 99999, 1 << 32} {
		f.Add(seed)
	}
	net := network.DefaultParams()
	net.RendezvousThreshold = 64 * 1024
	f.Fuzz(func(t *testing.T, seed uint64) {
		r := rng.New(seed)
		prog := randomProgram(r)
		runOnce := func() (*Result, error) {
			eng, err := New(Config{Net: net, Program: prog,
				Agents: []Agent{&chaosAgent{seed: seed + 1}},
				Seed:   seed, MaxEvents: 50_000_000})
			if err != nil {
				return nil, err
			}
			return eng.Run()
		}
		serial, err := runOnce()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		replicas, err := runner.Map(4, make([]struct{}, 4),
			func(int, struct{}) (*Result, error) { return runOnce() })
		if err != nil {
			t.Fatalf("seed %d: parallel replicas: %v", seed, err)
		}
		for i, rep := range replicas {
			if rep.Makespan != serial.Makespan || rep.Events != serial.Events ||
				rep.Metrics != serial.Metrics {
				t.Errorf("seed %d: replica %d diverged from serial run "+
					"(makespan %v vs %v, events %d vs %d)",
					seed, i, rep.Makespan, serial.Makespan, rep.Events, serial.Events)
			}
		}
	})
}

func TestFuzzWithFabric(t *testing.T) {
	// Note this does NOT assert makespan monotonicity: delaying one
	// injection through the shared fabric can reorder non-preemptive CPU
	// grants downstream and *shorten* the schedule (a Graham scheduling
	// anomaly — seed 0xee69 finishes ~2% faster constrained), so "fabric
	// never helps" is not an invariant of the model. The sound properties
	// are determinism and fabric-occupancy accounting.
	net := network.DefaultParams()
	net.BisectionBytesPerSec = 10e9
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		prog := randomProgram(r)
		eng, err := New(Config{Net: net, Program: prog, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		res, err := eng.Run()
		if err != nil {
			return false
		}
		// The constrained run is deterministic: a rerun is bit-identical.
		eng2, _ := New(Config{Net: net, Program: prog, Seed: uint64(seed)})
		rep, err := eng2.Run()
		if err != nil || rep.Makespan != res.Makespan || rep.Events != res.Events ||
			rep.Metrics != res.Metrics {
			return false
		}
		// Fabric occupancy accumulates exactly when app bytes crossed the
		// wire, and never without the constraint configured.
		net2 := net
		net2.BisectionBytesPerSec = 0
		eng3, _ := New(Config{Net: net2, Program: prog, Seed: uint64(seed)})
		res2, err := eng3.Run()
		if err != nil {
			return false
		}
		if res2.Metrics.FabricBusy != 0 {
			return false
		}
		if res.Metrics.AppBytes > 0 && res.Metrics.FabricBusy <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
