package noise

import (
	"math"
	"testing"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Period: simtime.Millisecond, Duration: 25 * simtime.Microsecond}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	if got := good.DutyCycle(); math.Abs(got-0.025) > 1e-12 {
		t.Errorf("duty cycle = %v", got)
	}
	bad := []Config{
		{Period: 0, Duration: 1},
		{Period: -1, Duration: 1},
		{Period: 10, Duration: -1},
		{Period: 10, Duration: 10}, // duty cycle 1
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewInjector(bad[0]); err == nil {
		t.Error("NewInjector accepted bad config")
	}
}

func epProg(t *testing.T, ranks, iters int, compute simtime.Duration) *goal.Program {
	t.Helper()
	p, err := workload.EP(workload.EPConfig{
		Base: workload.Base{Ranks: ranks, Iterations: iters, Compute: compute, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNoiseSlowsEPByDutyCycle(t *testing.T) {
	// On an EP workload, slowdown ≈ 1/(1−duty) — noise cannot propagate.
	prog := epProg(t, 4, 100, simtime.Millisecond)
	base, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rBase, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{Period: simtime.Millisecond, Duration: 100 * simtime.Microsecond} // 10%
	inj, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog2 := epProg(t, 4, 100, simtime.Millisecond)
	e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog2,
		Agents: []sim.Agent{inj}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	slow := float64(r.Makespan) / float64(rBase.Makespan)
	// Expected ≈ 1.11 (10% duty); allow boundary effects.
	if slow < 1.05 || slow > 1.20 {
		t.Errorf("EP slowdown %v, want ~1.11", slow)
	}
	if inj.Events() == 0 || inj.Stolen() == 0 {
		t.Error("no noise recorded")
	}
	if r.SeizedTime[Reason] != inj.Stolen() {
		t.Errorf("engine seized %v, injector claims %v", r.SeizedTime[Reason], inj.Stolen())
	}
}

func TestPoissonNoiseRuns(t *testing.T) {
	cfg := Config{Period: simtime.Millisecond, Duration: 50 * simtime.Microsecond, Poisson: true}
	inj, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := epProg(t, 4, 50, simtime.Millisecond)
	e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog,
		Agents: []sim.Agent{inj}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if inj.Events() < 50 {
		t.Errorf("only %d Poisson events over ~50ms x 4 ranks at 1kHz", inj.Events())
	}
}

func TestNoiseDeterministic(t *testing.T) {
	run := func() simtime.Time {
		inj, _ := NewInjector(Config{Period: simtime.Millisecond, Duration: 30 * simtime.Microsecond, Poisson: true})
		prog := epProg(t, 4, 20, simtime.Millisecond)
		e, _ := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog,
			Agents: []sim.Agent{inj}, Seed: 99})
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Makespan
	}
	if run() != run() {
		t.Error("noise injection not deterministic")
	}
}
