// Package noise injects OS-noise-style CPU perturbations into a
// simulation: fixed-frequency or Poisson detours of a given duration, per
// rank, with randomized phases (the netgauge/psnap measurement style).
//
// Its role here is the checkpoint-as-noise ablation: local checkpoint
// writes are, mechanically, low-frequency high-amplitude noise. Running the
// same duty cycle through this injector and through a checkpoint protocol
// separates "cost of being interrupted" from protocol-specific effects
// (coordination traffic, logging, recovery lines).
package noise

import (
	"fmt"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// Reason is the accounting key noise seizures appear under.
const Reason = "noise"

// Config describes one noise source applied to every rank.
type Config struct {
	// Period is the interval between noise events on one rank (the
	// inverse of the noise frequency).
	Period simtime.Duration
	// Duration is the CPU time stolen per event.
	Duration simtime.Duration
	// Poisson draws exponentially distributed gaps with mean Period
	// instead of a fixed period.
	Poisson bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("noise: non-positive period %v", c.Period)
	}
	if c.Duration < 0 {
		return fmt.Errorf("noise: negative duration %v", c.Duration)
	}
	if c.Duration >= c.Period {
		return fmt.Errorf("noise: duration %v >= period %v (duty cycle >= 1)",
			c.Duration, c.Period)
	}
	return nil
}

// DutyCycle returns the fraction of CPU time the source steals.
func (c Config) DutyCycle() float64 {
	return float64(c.Duration) / float64(c.Period)
}

// Injector is the sim.Agent that injects the configured noise.
type Injector struct {
	cfg    Config
	ctx    *sim.Context
	events int64
	stolen simtime.Duration
}

// NewInjector builds a noise injector.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg}, nil
}

// Init implements sim.Agent: every rank gets an independent noise stream
// with a random initial phase.
func (n *Injector) Init(ctx *sim.Context) {
	n.ctx = ctx
	for r := 0; r < ctx.NumRanks(); r++ {
		phase := simtime.Duration(ctx.Rand().Intn(int(n.cfg.Period)))
		ctx.AtOwned(simtime.Time(0).Add(phase), n, 0, int64(r))
	}
}

// OnTimer implements sim.TimerOwner: arg is the rank whose stream fires.
func (n *Injector) OnTimer(_ uint8, arg int64) { n.fire(int(arg)) }

func (n *Injector) fire(rank int) {
	n.events++
	n.stolen += n.cfg.Duration
	n.ctx.SeizeCPU(rank, n.cfg.Duration, Reason, nil)
	var gap simtime.Duration
	if n.cfg.Poisson {
		gap = simtime.Duration(n.ctx.Rand().Exp(float64(n.cfg.Period)))
		if gap < 1 {
			gap = 1
		}
	} else {
		gap = n.cfg.Period
	}
	n.ctx.AfterOwned(gap, n, 0, int64(rank))
}

// Quiesced implements sim.Resumable: noise seizures carry no callbacks.
func (n *Injector) Quiesced() bool { return true }

// EncodeState implements sim.Resumable.
func (n *Injector) EncodeState(enc *snapshot.Encoder) {
	enc.I64(n.events)
	enc.Dur(n.stolen)
}

// DecodeState implements sim.Resumable.
func (n *Injector) DecodeState(ctx *sim.Context, dec *snapshot.Decoder) error {
	n.ctx = ctx
	n.events = dec.I64()
	n.stolen = dec.Dur()
	return dec.Err()
}

// Events returns the number of noise events injected.
func (n *Injector) Events() int64 { return n.events }

// Stolen returns the total CPU time injected across all ranks.
func (n *Injector) Stolen() simtime.Duration { return n.stolen }

var (
	_ sim.Agent     = (*Injector)(nil)
	_ sim.Resumable = (*Injector)(nil)
)
