package failure

import (
	"testing"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/workload"
)

func stencilProg(t *testing.T, ranks, iters int) *goal.Program {
	t.Helper()
	p, err := workload.Stencil2D(workload.Stencil2DConfig{
		Base:      workload.Base{Ranks: ranks, Iterations: iters, Compute: simtime.Millisecond, Seed: 1},
		HaloBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	good := Config{MTBF: simtime.Hour, Restart: simtime.Second}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{MTBF: 0},
		{MTBF: -1},
		{MTBF: 1, Shape: -1},
		{MTBF: 1, Restart: -1},
		{MTBF: 1, ReplaySpeedup: 0.5},
		{MTBF: 1, Kind: RecoveryKind(9)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewInjector(bad[0], checkpoint.None{}); err == nil {
		t.Error("NewInjector accepted bad config")
	}
	if _, err := NewInjector(good, nil); err == nil {
		t.Error("NewInjector accepted nil protocol")
	}
}

func TestRecoveryKindString(t *testing.T) {
	if RollbackGlobal.String() != "global-rollback" || ReplayLocal.String() != "local-replay" {
		t.Error("kind names wrong")
	}
	if RecoveryKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

// runFailure runs a stencil under the given protocol + failure config. The
// MaxTime cap guards against parameter regimes where recovery cannot keep
// up with the failure rate (a real phenomenon, but fatal to a test).
func runFailure(t *testing.T, cfg Config, proto checkpoint.Protocol, seed uint64) (*sim.Result, *Injector) {
	t.Helper()
	prog := stencilProg(t, 16, 40)
	inj, err := NewInjector(cfg, proto)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog,
		Agents: []sim.Agent{proto, inj}, Seed: seed, MaxTime: simtime.Time(5 * simtime.Second)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, inj
}

func TestGlobalRollbackHitsAllRanks(t *testing.T) {
	params := checkpoint.Params{Interval: 5 * simtime.Millisecond, Write: 100 * simtime.Microsecond}
	cp, _ := checkpoint.NewCoordinated(params)
	// MTBF chosen so failures land mid-run but recovery keeps up (~50ms app
	// on 16 ranks: system MTBF = 640ms/16 = 40ms); seed 16 yields several.
	cfg := Config{MTBF: 640 * simtime.Millisecond, Restart: simtime.Millisecond, Kind: RollbackGlobal}
	r, inj := runFailure(t, cfg, cp, 16)
	if len(inj.Events()) == 0 {
		t.Fatal("no failures injected")
	}
	ev := inj.Events()[0]
	// Every rank was seized for the recovery duration of each failure.
	if r.SeizedCount[Reason] != int64(len(inj.Events()))*16 {
		t.Errorf("recovery seizures = %d, want %d failures x 16 ranks",
			r.SeizedCount[Reason], len(inj.Events()))
	}
	if ev.Recovery != cfg.Restart+ev.LostWork {
		t.Errorf("recovery %v != restart %v + lost %v", ev.Recovery, cfg.Restart, ev.LostWork)
	}
	if inj.TotalLost() <= 0 || inj.TotalRecovery() <= 0 {
		t.Error("zero totals")
	}
}

func TestLocalReplayHitsOneRank(t *testing.T) {
	params := checkpoint.Params{Interval: 5 * simtime.Millisecond, Write: 100 * simtime.Microsecond}
	up, _ := checkpoint.NewUncoordinated(params, checkpoint.Staggered,
		checkpoint.LogParams{Alpha: simtime.Microsecond})
	cfg := Config{MTBF: 640 * simtime.Millisecond, Restart: simtime.Millisecond,
		ReplaySpeedup: 2, Kind: ReplayLocal}
	r, inj := runFailure(t, cfg, up, 16)
	if len(inj.Events()) == 0 {
		t.Fatal("no failures injected")
	}
	if r.SeizedCount[Reason] != int64(len(inj.Events())) {
		t.Errorf("recovery seizures = %d, want %d (one per failure)",
			r.SeizedCount[Reason], len(inj.Events()))
	}
	// Replay at 2x: recovery < restart + lost.
	for _, ev := range inj.Events() {
		if ev.Recovery >= cfg.Restart+ev.LostWork && ev.LostWork > 1 {
			t.Errorf("replay not sped up: recovery %v, lost %v", ev.Recovery, ev.LostWork)
		}
	}
}

func TestLocalReplayLosesLessWork(t *testing.T) {
	// With the same failure trace, local replay discards less work than
	// global rollback (per-rank line is at least as fresh as the global
	// one, and only one rank loses it).
	params := checkpoint.Params{Interval: 5 * simtime.Millisecond, Write: 100 * simtime.Microsecond}
	cp, _ := checkpoint.NewCoordinated(params)
	cfgG := Config{MTBF: 640 * simtime.Millisecond, Restart: simtime.Millisecond, Kind: RollbackGlobal}
	rG, injG := runFailure(t, cfgG, cp, 16)

	up, _ := checkpoint.NewUncoordinated(params, checkpoint.Staggered, checkpoint.LogParams{})
	cfgL := Config{MTBF: 640 * simtime.Millisecond, Restart: simtime.Millisecond, Kind: ReplayLocal}
	rL, injL := runFailure(t, cfgL, up, 16)

	if len(injG.Events()) == 0 || len(injL.Events()) == 0 {
		t.Skip("no failures with this seed")
	}
	// Total machine-seconds of recovery: global charges every rank.
	globalCost := simtime.Duration(16) * injG.TotalRecovery()
	localCost := injL.TotalRecovery()
	if localCost >= globalCost {
		t.Errorf("local replay machine cost %v >= global %v", localCost, globalCost)
	}
	if rG.Makespan <= rL.Makespan {
		// Not guaranteed for every seed (different traces), but with equal
		// seeds the failure times coincide and global must be slower.
		t.Errorf("global rollback makespan %v <= local replay %v", rG.Makespan, rL.Makespan)
	}
}

func TestWeibullShapeRuns(t *testing.T) {
	params := checkpoint.Params{Interval: 5 * simtime.Millisecond, Write: 100 * simtime.Microsecond}
	up, _ := checkpoint.NewUncoordinated(params, checkpoint.Random, checkpoint.LogParams{})
	cfg := Config{MTBF: 200 * simtime.Millisecond, Shape: 0.7,
		Restart: simtime.Millisecond, Kind: ReplayLocal}
	_, inj := runFailure(t, cfg, up, 3)
	_ = inj // Weibull arrivals may or may not fire in-window; completing is the test
}

func TestFailureDeterminism(t *testing.T) {
	run := func() (simtime.Time, int) {
		params := checkpoint.Params{Interval: 5 * simtime.Millisecond, Write: 100 * simtime.Microsecond}
		up, _ := checkpoint.NewUncoordinated(params, checkpoint.Random, checkpoint.LogParams{})
		cfg := Config{MTBF: 640 * simtime.Millisecond, Restart: simtime.Millisecond, Kind: ReplayLocal}
		r, inj := runFailure(t, cfg, up, 16)
		return r.Makespan, len(inj.Events())
	}
	m1, n1 := run()
	m2, n2 := run()
	if m1 != m2 || n1 != n2 {
		t.Errorf("failure runs differ: %v/%v, %d/%d", m1, m2, n1, n2)
	}
}

func TestFailureBeforeFirstCheckpointLosesEverything(t *testing.T) {
	// A failure before any checkpoint rolls back to t=0. Without any
	// checkpoints the run may never converge (which is exactly why one
	// checkpoints), so cap virtual time and inspect the injected events
	// regardless of whether the app completed.
	params := checkpoint.Params{Interval: simtime.Hour, Write: simtime.Millisecond}
	cp, _ := checkpoint.NewCoordinated(params)
	cfg := Config{MTBF: 160 * simtime.Millisecond, Restart: simtime.Millisecond, Kind: RollbackGlobal}
	prog := stencilProg(t, 16, 40)
	inj, err := NewInjector(cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog,
		Agents: []sim.Agent{cp, inj}, Seed: 5,
		MaxTime: simtime.Time(500 * simtime.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = e.Run() // may hit the time cap; the events are what we check
	if len(inj.Events()) == 0 {
		t.Fatal("no failures")
	}
	ev := inj.Events()[0]
	// All progress since t=0 is lost: positive, and bounded by wall time
	// (progress can never exceed elapsed time).
	if ev.LostWork <= 0 || ev.LostWork > simtime.Duration(ev.Time) {
		t.Errorf("lost %v, want in (0, %v]", ev.LostWork, ev.Time)
	}
}

func TestClusterRollbackHitsOneCluster(t *testing.T) {
	params := checkpoint.Params{Interval: 5 * simtime.Millisecond, Write: 100 * simtime.Microsecond}
	hp, err := checkpoint.NewHierarchical(params, 4, checkpoint.LogParams{Alpha: simtime.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MTBF: 640 * simtime.Millisecond, Restart: simtime.Millisecond,
		ReplaySpeedup: 2, Kind: RollbackCluster}
	r, inj := runFailure(t, cfg, hp, 16)
	if len(inj.Events()) == 0 {
		t.Fatal("no failures injected")
	}
	// Each failure seizes exactly the cluster (4 ranks on a 16-rank run).
	if r.SeizedCount[Reason] != int64(len(inj.Events()))*4 {
		t.Errorf("recovery seizures = %d, want %d failures x 4 members",
			r.SeizedCount[Reason], len(inj.Events()))
	}
}

func TestClusterMembersShape(t *testing.T) {
	params := checkpoint.Params{Interval: simtime.Millisecond, Write: 1}
	hp, _ := checkpoint.NewHierarchical(params, 4, checkpoint.LogParams{})
	// Run once so the protocol learns the rank count.
	prog := stencilProg(t, 10, 2)
	e, _ := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog,
		Agents: []sim.Agent{hp}, Seed: 1})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := hp.ClusterMembers(5)
	want := []int{4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members = %v, want %v", got, want)
		}
	}
	// Last, short cluster on 10 ranks with size 4: {8, 9}.
	tail := hp.ClusterMembers(9)
	if len(tail) != 2 || tail[0] != 8 || tail[1] != 9 {
		t.Errorf("tail cluster = %v", tail)
	}
}

func TestClusterRollbackRequiresClusterProtocol(t *testing.T) {
	params := checkpoint.Params{Interval: simtime.Millisecond, Write: 1}
	cp, _ := checkpoint.NewCoordinated(params)
	cfg := Config{MTBF: simtime.Second, Kind: RollbackCluster}
	if _, err := NewInjector(cfg, cp); err == nil {
		t.Error("cluster rollback accepted a protocol without clusters")
	}
}

func TestTwoLevelRecoveryDispatch(t *testing.T) {
	tp := checkpoint.TwoLevelParams{
		LocalInterval: 2 * simtime.Millisecond, LocalWrite: 100 * simtime.Microsecond,
		GlobalInterval: 10 * simtime.Millisecond, GlobalWrite: simtime.Millisecond,
	}
	tl, err := checkpoint.NewTwoLevel(tp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MTBF: 320 * simtime.Millisecond, Restart: 2 * simtime.Millisecond,
		LocalRestart: 200 * simtime.Microsecond, LocalCoverage: 0.7,
		Kind: RecoverTwoLevel}
	r, inj := runFailure(t, cfg, tl, 16)
	if len(inj.Events()) == 0 {
		t.Fatal("no failures injected")
	}
	// Every failure seizes all 16 ranks regardless of level.
	if r.SeizedCount[Reason] != int64(len(inj.Events()))*16 {
		t.Errorf("recovery seizures = %d for %d failures",
			r.SeizedCount[Reason], len(inj.Events()))
	}
}

func TestTwoLevelRecoveryRequiresTwoLevelProtocol(t *testing.T) {
	params := checkpoint.Params{Interval: simtime.Millisecond, Write: 1}
	cp, _ := checkpoint.NewCoordinated(params)
	cfg := Config{MTBF: simtime.Second, Kind: RecoverTwoLevel}
	if _, err := NewInjector(cfg, cp); err == nil {
		t.Error("two-level recovery accepted a single-level protocol")
	}
}

func TestTwoLevelConfigValidation(t *testing.T) {
	bad := []Config{
		{MTBF: 1, LocalCoverage: -0.1},
		{MTBF: 1, LocalCoverage: 1.5},
		{MTBF: 1, LocalRestart: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// replicationProg embeds an 8-rank stencil in a 16-rank machine so the
// upper half serves as replicas.
func replicationProg(t *testing.T) *goal.Program {
	t.Helper()
	p := stencilProg(t, 8, 40)
	w, err := goal.Widen(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runReplication(t *testing.T, cfg Config) (*sim.Result, *Injector, *checkpoint.Replication) {
	t.Helper()
	rp, err := checkpoint.NewReplication(checkpoint.ReplicationParams{
		HeartbeatPeriod: 500 * simtime.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var agents []sim.Agent
	var inj *Injector
	agents = append(agents, rp)
	if cfg != (Config{}) {
		inj, err = NewInjector(cfg, rp)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, inj)
	}
	e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: replicationProg(t),
		Agents: agents, Seed: 16, MaxTime: simtime.Time(5 * simtime.Second)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, inj, rp
}

// Replica takeover absorbs every failure without losing work: failures
// stall at most the victim's pair, and the run can only slow down relative
// to the failure-free replication layout.
func TestReplicaTakeoverLosesNoWork(t *testing.T) {
	rFree, _, _ := runReplication(t, Config{})
	cfg := Config{MTBF: 40 * simtime.Millisecond, Restart: 100 * simtime.Microsecond,
		Kind: TakeoverReplica}
	r, inj, rp := runReplication(t, cfg)
	if len(inj.Events()) == 0 {
		t.Fatal("no failures injected — takeover semantics untested")
	}
	if rp.Stats().Takeovers == 0 {
		t.Fatal("no primary takeovers occurred")
	}
	for _, ev := range inj.Events() {
		if ev.LostWork != 0 {
			t.Errorf("failure at %v on rank %d lost %v work; replication loses none",
				simtime.Duration(ev.Time), ev.Rank, ev.LostWork)
		}
	}
	if r.Makespan < rFree.Makespan {
		t.Errorf("failing run (%v) beat the failure-free run (%v)",
			simtime.Duration(r.Makespan), simtime.Duration(rFree.Makespan))
	}
	// Only primary failures stall a rank; the seizure count must equal the
	// protocol's takeover count, never the full failure count.
	if r.SeizedCount[Reason] != rp.Stats().Takeovers {
		t.Errorf("recovery seizures = %d, want one per takeover (%d)",
			r.SeizedCount[Reason], rp.Stats().Takeovers)
	}
}

// The takeover recovery kind demands a protocol that can absorb failures.
func TestTakeoverRequiresReplicaProtocol(t *testing.T) {
	cp, _ := checkpoint.NewCoordinated(checkpoint.Params{
		Interval: 5 * simtime.Millisecond, Write: 100 * simtime.Microsecond})
	cfg := Config{MTBF: 640 * simtime.Millisecond, Restart: simtime.Millisecond,
		Kind: TakeoverReplica}
	if _, err := NewInjector(cfg, cp); err == nil {
		t.Fatal("takeover recovery accepted a non-replica protocol")
	}
	if TakeoverReplica.String() != "replica-takeover" {
		t.Errorf("kind name %q", TakeoverReplica.String())
	}
}
