// Package failure injects node failures into a simulation and models the
// two recovery disciplines whose contrast drives the protocol comparison:
//
//   - RollbackGlobal (coordinated checkpointing): every rank rolls back to
//     the last global recovery line. All ranks pay the restart cost plus
//     re-execution of everything since the line started.
//
//   - ReplayLocal (uncoordinated/hierarchical with message logging): only
//     the failed rank rolls back, to its own most recent checkpoint, and
//     replays from its partners' message logs — faster than real time
//     because logged messages are already available. Every other rank keeps
//     computing until it actually needs a message from the recovering rank;
//     the simulator's dependency graph provides that stall propagation for
//     free, which is precisely the effect under study.
//
// Failures arrive as a Poisson (or Weibull-renewal) process over the whole
// machine with per-node MTBF θ (system rate P/θ); the victim is uniform.
package failure

import (
	"fmt"
	"math"

	"checkpointsim/internal/checkpoint"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// Reason is the accounting key recovery seizures appear under.
const Reason = "recovery"

// RecoveryKind selects the rollback discipline.
type RecoveryKind uint8

const (
	// RollbackGlobal rolls the whole machine back to the last global line.
	RollbackGlobal RecoveryKind = iota
	// ReplayLocal rolls back and replays only the failed rank.
	ReplayLocal
	// RollbackCluster rolls back the failed rank's cluster (hierarchical
	// protocols): cluster members re-execute together, replaying logged
	// inter-cluster messages at the replay speedup. Requires a protocol
	// implementing ClusterMembers.
	RollbackCluster
	// RecoverTwoLevel dispatches on failure severity: with probability
	// LocalCoverage the machine restarts from the fast local level
	// (LocalRestart + rework since the local line); otherwise it falls
	// through to the global line (Restart + rework since the global line).
	// Requires a checkpoint.TwoLevel-style protocol.
	RecoverTwoLevel
	// TakeoverReplica hands failures to a replication protocol: a failed
	// primary stalls only for heartbeat detection plus replica promotion —
	// no work is ever lost — and a failed spare replica costs nothing.
	// Requires a protocol implementing ReplicaProtocol.
	TakeoverReplica
)

// String names the recovery kind.
func (k RecoveryKind) String() string {
	switch k {
	case RollbackGlobal:
		return "global-rollback"
	case ReplayLocal:
		return "local-replay"
	case RollbackCluster:
		return "cluster-rollback"
	case RecoverTwoLevel:
		return "two-level"
	case TakeoverReplica:
		return "replica-takeover"
	}
	return fmt.Sprintf("recovery(%d)", uint8(k))
}

// Config describes the failure process and recovery costs.
type Config struct {
	// MTBF is the per-node mean time between failures.
	MTBF simtime.Duration
	// Shape is the Weibull shape of inter-failure gaps (1 = exponential,
	// <1 = infant mortality). Zero defaults to 1.
	Shape float64
	// Restart is the fixed cost of restarting and reading the checkpoint.
	Restart simtime.Duration
	// ReplaySpeedup is how much faster than real time a rank replays
	// logged execution (>= 1; typical values 1.5–3 in the literature).
	// Only used by ReplayLocal. Zero defaults to 2.
	ReplaySpeedup float64
	// Kind selects the recovery discipline.
	Kind RecoveryKind
	// LocalCoverage is the probability a failure is recoverable from the
	// fast local level (RecoverTwoLevel only). Zero defaults to 0.9.
	LocalCoverage float64
	// LocalRestart is the fast-level restart cost (RecoverTwoLevel only).
	// Zero defaults to Restart/10.
	LocalRestart simtime.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MTBF <= 0 {
		return fmt.Errorf("failure: non-positive MTBF %v", c.MTBF)
	}
	if c.Shape < 0 || math.IsNaN(c.Shape) {
		return fmt.Errorf("failure: bad shape %v", c.Shape)
	}
	if c.Restart < 0 {
		return fmt.Errorf("failure: negative restart cost")
	}
	if c.ReplaySpeedup < 0 || math.IsNaN(c.ReplaySpeedup) {
		return fmt.Errorf("failure: bad replay speedup %v", c.ReplaySpeedup)
	}
	if c.ReplaySpeedup != 0 && c.ReplaySpeedup < 1 {
		return fmt.Errorf("failure: replay speedup %v < 1", c.ReplaySpeedup)
	}
	if c.Kind > TakeoverReplica {
		return fmt.Errorf("failure: unknown recovery kind %d", c.Kind)
	}
	if c.LocalCoverage < 0 || c.LocalCoverage > 1 || math.IsNaN(c.LocalCoverage) {
		return fmt.Errorf("failure: local coverage %v outside [0,1]", c.LocalCoverage)
	}
	if c.LocalRestart < 0 {
		return fmt.Errorf("failure: negative local restart")
	}
	return nil
}

func (c Config) localCoverage() float64 {
	if c.LocalCoverage == 0 {
		return 0.9
	}
	return c.LocalCoverage
}

func (c Config) localRestart() simtime.Duration {
	if c.LocalRestart == 0 {
		return c.Restart / 10
	}
	return c.LocalRestart
}

func (c Config) shape() float64 {
	if c.Shape == 0 {
		return 1
	}
	return c.Shape
}

func (c Config) speedup() float64 {
	if c.ReplaySpeedup == 0 {
		return 2
	}
	return c.ReplaySpeedup
}

// Event records one injected failure.
type Event struct {
	Time     simtime.Time
	Rank     int
	LostWork simtime.Duration // work discarded by the rollback
	Recovery simtime.Duration // CPU seizure charged for recovery
}

// Injector is the sim.Agent that injects failures and applies recovery.
type Injector struct {
	cfg   Config
	proto checkpoint.Protocol
	ctx   *sim.Context
	evts  []Event
}

// ClusterProtocol is the extra capability RollbackCluster needs: protocols
// that can name a rank's rollback unit.
type ClusterProtocol interface {
	checkpoint.Protocol
	ClusterMembers(rank int) []int
}

// TwoLevelProtocol is the extra capability RecoverTwoLevel needs: a
// protocol exposing its global (severe-failure) recovery line alongside the
// default (local) one.
type TwoLevelProtocol interface {
	checkpoint.Protocol
	GlobalCheckpoint() simtime.Time
	GlobalProgressAt(rank int) simtime.Duration
}

// ReplicaProtocol is the extra capability TakeoverReplica needs: a protocol
// that absorbs a rank failure by replica takeover. Takeover returns the
// logical rank that stalls, the CPU seizure modeling detection plus
// promotion, and whether the failure stalls the application at all (a
// spare-replica loss does not).
type ReplicaProtocol interface {
	checkpoint.Protocol
	Takeover(victim int, now simtime.Time) (rank int, cost simtime.Duration, stalls bool)
}

// NewInjector builds a failure injector coupled to the protocol that
// defines the recovery lines.
func NewInjector(cfg Config, proto checkpoint.Protocol) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if proto == nil {
		return nil, fmt.Errorf("failure: nil protocol")
	}
	if cfg.Kind == RollbackCluster {
		if _, ok := proto.(ClusterProtocol); !ok {
			return nil, fmt.Errorf("failure: cluster rollback needs a protocol with ClusterMembers (have %s)",
				proto.Name())
		}
	}
	if cfg.Kind == RecoverTwoLevel {
		if _, ok := proto.(TwoLevelProtocol); !ok {
			return nil, fmt.Errorf("failure: two-level recovery needs a two-level protocol (have %s)",
				proto.Name())
		}
	}
	if cfg.Kind == TakeoverReplica {
		if _, ok := proto.(ReplicaProtocol); !ok {
			return nil, fmt.Errorf("failure: replica takeover needs a replication protocol (have %s)",
				proto.Name())
		}
	}
	return &Injector{cfg: cfg, proto: proto}, nil
}

// Init implements sim.Agent.
func (f *Injector) Init(ctx *sim.Context) {
	f.ctx = ctx
	f.scheduleNext()
}

// scheduleNext draws the next machine-level failure gap: per-node MTBF θ
// across P nodes gives a system MTBF of θ/P.
func (f *Injector) scheduleNext() {
	p := float64(f.ctx.NumRanks())
	systemMean := float64(f.cfg.MTBF) / p
	var gap float64
	if sh := f.cfg.shape(); sh == 1 {
		gap = f.ctx.Rand().Exp(systemMean)
	} else {
		// Weibull with the same mean: scale = mean / Γ(1 + 1/shape).
		scale := systemMean / math.Gamma(1+1/sh)
		gap = f.ctx.Rand().Weibull(scale, sh)
	}
	d := simtime.Duration(gap)
	if d < 1 {
		d = 1
	}
	f.ctx.AfterOwned(d, f, 0, 0)
}

// OnTimer implements sim.TimerOwner: the only timer is the next failure.
func (f *Injector) OnTimer(uint8, int64) { f.fail() }

// Quiesced implements sim.Resumable: recovery seizures carry no callbacks,
// so the injector never blocks a boundary.
func (f *Injector) Quiesced() bool { return true }

// EncodeState implements sim.Resumable.
func (f *Injector) EncodeState(enc *snapshot.Encoder) {
	enc.Int(len(f.evts))
	for _, e := range f.evts {
		enc.Time(e.Time)
		enc.Int(e.Rank)
		enc.Dur(e.LostWork)
		enc.Dur(e.Recovery)
	}
}

// DecodeState implements sim.Resumable. The pending failure timer is
// restored with the event queue.
func (f *Injector) DecodeState(ctx *sim.Context, dec *snapshot.Decoder) error {
	f.ctx = ctx
	n := dec.Int()
	if n < 0 || n > dec.Remaining() {
		dec.Failf("failure event count %d", n)
		return dec.Err()
	}
	f.evts = make([]Event, 0, n)
	for i := 0; i < n; i++ {
		f.evts = append(f.evts, Event{
			Time:     dec.Time(),
			Rank:     dec.Int(),
			LostWork: dec.Dur(),
			Recovery: dec.Dur(),
		})
	}
	return dec.Err()
}

// rework returns the application progress rank must re-execute after
// rolling back to its last covering checkpoint. Measuring progress
// (cumulative application CPU time) rather than wall time is essential:
// wall time would count checkpoint writes, coordination, and — fatally —
// earlier recoveries as "work to redo", which makes back-to-back failures
// compound into rework that grows without bound.
func (f *Injector) rework(rank int) simtime.Duration {
	return f.ctx.RankBusy(rank) - f.proto.ProgressAtCheckpoint(rank)
}

func (f *Injector) fail() {
	now := f.ctx.Now()
	victim := f.ctx.Rand().Intn(f.ctx.NumRanks())
	switch f.cfg.Kind {
	case RollbackGlobal:
		// Every rank rolls back to the last global line and re-executes its
		// own progress since then; the recorded event carries the critical
		// path (the maximum rework).
		var maxRework simtime.Duration
		for r := 0; r < f.ctx.NumRanks(); r++ {
			if w := f.rework(r); w > maxRework {
				maxRework = w
			}
		}
		for r := 0; r < f.ctx.NumRanks(); r++ {
			f.ctx.SeizeCPU(r, f.cfg.Restart+f.rework(r), Reason, nil)
		}
		f.evts = append(f.evts, Event{Time: now, Rank: victim,
			LostWork: maxRework, Recovery: f.cfg.Restart + maxRework})
	case ReplayLocal:
		// Only the victim rolls back, to its own last checkpoint, and
		// replays at a speedup because logged messages are ready.
		lost := f.rework(victim)
		rec := f.cfg.Restart + lost.Scale(1/f.cfg.speedup())
		f.evts = append(f.evts, Event{Time: now, Rank: victim, LostWork: lost, Recovery: rec})
		f.ctx.SeizeCPU(victim, rec, Reason, nil)
	case RollbackCluster:
		// The victim's whole cluster rolls back to its cluster line and
		// re-executes together, replaying inter-cluster messages from logs.
		members := f.proto.(ClusterProtocol).ClusterMembers(victim)
		var maxRework simtime.Duration
		for _, r := range members {
			if w := f.rework(r); w > maxRework {
				maxRework = w
			}
		}
		for _, r := range members {
			f.ctx.SeizeCPU(r, f.cfg.Restart+f.rework(r).Scale(1/f.cfg.speedup()), Reason, nil)
		}
		f.evts = append(f.evts, Event{Time: now, Rank: victim,
			LostWork: maxRework, Recovery: f.cfg.Restart + maxRework.Scale(1/f.cfg.speedup())})
	case RecoverTwoLevel:
		// Severity draw: local-level recovery covers most failures; the
		// rest fall through to the global line.
		tl := f.proto.(TwoLevelProtocol)
		n := f.ctx.NumRanks()
		if f.ctx.Rand().Float64() < f.cfg.localCoverage() {
			var maxRework simtime.Duration
			for r := 0; r < n; r++ {
				if w := f.rework(r); w > maxRework {
					maxRework = w
				}
			}
			for r := 0; r < n; r++ {
				f.ctx.SeizeCPU(r, f.cfg.localRestart()+f.rework(r), Reason, nil)
			}
			f.evts = append(f.evts, Event{Time: now, Rank: victim,
				LostWork: maxRework, Recovery: f.cfg.localRestart() + maxRework})
		} else {
			reworkG := func(r int) simtime.Duration {
				return f.ctx.RankBusy(r) - tl.GlobalProgressAt(r)
			}
			var maxRework simtime.Duration
			for r := 0; r < n; r++ {
				if w := reworkG(r); w > maxRework {
					maxRework = w
				}
			}
			for r := 0; r < n; r++ {
				f.ctx.SeizeCPU(r, f.cfg.Restart+reworkG(r), Reason, nil)
			}
			f.evts = append(f.evts, Event{Time: now, Rank: victim,
				LostWork: maxRework, Recovery: f.cfg.Restart + maxRework})
		}
	case TakeoverReplica:
		// No rollback ever: a failed primary stalls for detection plus
		// promotion while its replica takes over with all progress intact;
		// a failed spare replica is absorbed for free.
		f.ctx.Mark(victim, "rep-failure", int64(victim))
		rank, cost, stalls := f.proto.(ReplicaProtocol).Takeover(victim, now)
		if stalls {
			f.ctx.SeizeCPU(rank, cost, Reason, nil)
			f.evts = append(f.evts, Event{Time: now, Rank: victim, Recovery: cost})
		} else {
			f.evts = append(f.evts, Event{Time: now, Rank: victim})
		}
	}
	f.scheduleNext()
}

// Events returns the injected failures in order.
func (f *Injector) Events() []Event { return f.evts }

// TotalLost returns the total discarded work.
func (f *Injector) TotalLost() simtime.Duration {
	var t simtime.Duration
	for _, e := range f.evts {
		t += e.LostWork
	}
	return t
}

// TotalRecovery returns the total recovery seizure charged (per affected
// rank; a global rollback charges this to every rank).
func (f *Injector) TotalRecovery() simtime.Duration {
	var t simtime.Duration
	for _, e := range f.evts {
		t += e.Recovery
	}
	return t
}

var (
	_ sim.Agent     = (*Injector)(nil)
	_ sim.Resumable = (*Injector)(nil)
)
