// Package runner provides a deterministic worker-pool executor for
// embarrassingly parallel sweeps. Map fans a slice of independent points
// across a bounded set of goroutines and returns the results in submission
// order, so callers observe output that is bit-for-bit identical regardless
// of worker count or scheduling. Determinism is the caller's half of the
// contract: each point must be self-contained (derive its RNG stream from
// the point index, share no mutable state with its siblings).
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Map runs fn(i, points[i]) for every point on up to workers goroutines and
// returns the results indexed exactly like points. workers <= 0 selects
// runtime.GOMAXPROCS(0); a single worker reproduces strictly serial
// execution in index order.
//
// Error policy: the first error wins, where "first" means the lowest point
// index among failures — a deterministic choice even when several points
// fail on different workers. Once any point has failed, unstarted points
// are cancelled (workers stop draining the queue); points already in
// flight run to completion. A panic inside fn is recovered and surfaced as
// an error carrying the point index and stack, so one poisoned point
// cannot take down the whole sweep silently.
func Map[P, R any](workers int, points []P, fn func(i int, p P) (R, error)) ([]R, error) {
	return MapCtx(context.Background(), workers, points, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is done, workers
// stop dequeuing new points and MapCtx returns ctx.Err(). Points already in
// flight run to completion (fn is never interrupted mid-point), so a
// cancelled sweep leaves no half-executed point behind — it simply returns
// before covering every index. Cancellation takes precedence over point
// errors in the return value; either way the partial results are discarded.
func MapCtx[P, R any](ctx context.Context, workers int, points []P, fn func(i int, p P) (R, error)) ([]R, error) {
	n := len(points)
	if n == 0 {
		return nil, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]R, n)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := runPoint(i, points[i], fn, &results[i]); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runPoint executes one point, converting a panic into an error that names
// the point.
func runPoint[P, R any](i int, p P, fn func(int, P) (R, error), out *R) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: point %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	*out, err = fn(i, p)
	return err
}
