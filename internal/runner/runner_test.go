package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"checkpointsim/internal/rng"
)

func TestMapOrderAndValues(t *testing.T) {
	points := []int{10, 20, 30, 40, 50}
	for _, workers := range []int{1, 2, 8, 0, -3} {
		got, err := Map(workers, points, func(i, p int) (int, error) {
			return p + i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := []int{10, 21, 32, 43, 54}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, nil, func(i, p int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty points: got %v, %v", got, err)
	}
}

func TestMapMoreWorkersThanPoints(t *testing.T) {
	got, err := Map(64, []string{"a", "b"}, func(i int, p string) (string, error) {
		return p + p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "aa" || got[1] != "bb" {
		t.Errorf("got %v", got)
	}
}

// With a single worker, an error stops the sweep: later points never start.
func TestSerialCancellation(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	_, err := Map(1, make([]struct{}, 10), func(i int, _ struct{}) (int, error) {
		ran.Add(1)
		if i == 2 {
			return 0, fmt.Errorf("point %d: %w", i, boom)
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := ran.Load(); got != 3 {
		t.Errorf("ran %d points, want 3 (0, 1, and the failing 2)", got)
	}
}

// Even when several points fail on racing workers, the error reported is
// the one with the lowest point index — a deterministic choice. Point 0 is
// always executed (the first queue slot is handed out before any failure
// can have been recorded), so its error always wins here.
func TestFirstErrorWinsByIndex(t *testing.T) {
	const workers = 4
	_, err := Map(workers, make([]struct{}, 64), func(i int, _ struct{}) (int, error) {
		if i < workers {
			return 0, fmt.Errorf("boom %d", i)
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom 0") {
		t.Fatalf("err = %v, want the index-0 error", err)
	}
}

func TestPanicRecovery(t *testing.T) {
	_, err := Map(2, []int{0, 1, 2}, func(i, p int) (int, error) {
		if i == 1 {
			panic("kaboom")
		}
		return p, nil
	})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	for _, want := range []string{"point 1", "kaboom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// A context cancelled mid-sweep stops workers from dequeuing further
// points, returns ctx.Err(), and never interrupts a point in flight: the
// number of executed points lands strictly between the trigger and the full
// sweep.
func TestMapCtxCancellation(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	_, err := MapCtx(ctx, 4, make([]struct{}, n), func(i int, _ struct{}) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	got := ran.Load()
	if got < 10 || got >= n {
		t.Errorf("ran %d points, want >= 10 (trigger) and < %d (cancelled early)", got, n)
	}
}

// A context that is already done yields no work at all.
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	_, err := MapCtx(ctx, 4, make([]struct{}, 64), func(i int, _ struct{}) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Errorf("ran %d points on a dead context, want 0", got)
	}
}

// Cancellation wins over a point error: the caller asked to stop, and that
// intent — not whichever point happened to fail first — names the outcome.
func TestMapCtxCancellationBeatsPointError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, err := MapCtx(ctx, 2, make([]struct{}, 16), func(i int, _ struct{}) (int, error) {
		if i == 0 {
			cancel()
			return 0, errors.New("point error")
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// MapCtx on an empty slice still reports a dead context, so callers polling
// a cancelled sweep never mistake it for success.
func TestMapCtxEmptyDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MapCtx(ctx, 4, nil, func(i int, _ struct{}) (int, error) { return 0, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Results must be independent of worker count even when every point does
// real RNG work, as long as each point keys its stream off its index.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	const n = 40
	run := func(workers int) []uint64 {
		out, err := Map(workers, make([]struct{}, n), func(i int, _ struct{}) (uint64, error) {
			r := rng.New(rng.Derive(42, uint64(i)))
			var sum uint64
			for k := 0; k < 1000; k++ {
				sum += r.Uint64()
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 16} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: point %d diverged", workers, i)
			}
		}
	}
}
