package collective

import (
	"testing"
	"testing/quick"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// runProg executes a built program and returns the result.
func runProg(t *testing.T, p *goal.Program) *sim.Result {
	t.Helper()
	if err := p.CheckBalanced(); err != nil {
		t.Fatalf("unbalanced program: %v", err)
	}
	e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: p, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// staggered builds per-rank entry calcs with distinct durations and returns
// the entries plus the latest entry completion time.
func staggered(b *goal.Builder, unit simtime.Duration) ([]goal.OpID, simtime.Time) {
	p := b.NumRanks()
	entry := make([]goal.OpID, p)
	var latest simtime.Time
	for i := 0; i < p; i++ {
		d := unit * simtime.Duration(i+1)
		entry[i] = b.Calc(i, d)
		if simtime.Time(d) > latest {
			latest = simtime.Time(d)
		}
	}
	return entry, latest
}

func TestBcastMessageCount(t *testing.T) {
	for _, p := range []int{2, 3, 4, 7, 8, 16, 33} {
		b := goal.NewBuilder(p)
		Bcast(b, 0, nil, 0, 1024)
		prog := b.MustBuild()
		r := runProg(t, prog)
		if r.Metrics.AppMessages != int64(p-1) {
			t.Errorf("P=%d: bcast sent %d messages, want %d", p, r.Metrics.AppMessages, p-1)
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	for _, root := range []int{0, 1, 3, 6} {
		b := goal.NewBuilder(7)
		Bcast(b, root, nil, 0, 64)
		r := runProg(t, b.MustBuild())
		if r.Metrics.AppMessages != 6 {
			t.Errorf("root=%d: %d messages", root, r.Metrics.AppMessages)
		}
	}
}

func TestBcastDepthIsLogarithmic(t *testing.T) {
	mk := func(p int) simtime.Time {
		b := goal.NewBuilder(p)
		Bcast(b, 0, nil, 0, 8)
		return runProg(t, b.MustBuild()).Makespan
	}
	t8, t64 := mk(8), mk(64)
	// Depth doubles (3->6 rounds): makespan should roughly double, and must
	// certainly not grow 8x like a linear tree would.
	if ratio := float64(t64) / float64(t8); ratio > 4 {
		t.Errorf("bcast scaling ratio %v suggests non-logarithmic tree", ratio)
	}
}

func TestReduceMessageCount(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8, 17} {
		b := goal.NewBuilder(p)
		Reduce(b, 0, nil, 0, 512)
		r := runProg(t, b.MustBuild())
		if r.Metrics.AppMessages != int64(p-1) {
			t.Errorf("P=%d: reduce sent %d messages, want %d", p, r.Metrics.AppMessages, p-1)
		}
	}
}

func TestReduceRotatedRoot(t *testing.T) {
	b := goal.NewBuilder(6)
	Reduce(b, 4, nil, 0, 64)
	runProg(t, b.MustBuild()) // completes without deadlock
}

func TestBarrierSemantics(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 8, 13, 16} {
		b := goal.NewBuilder(p)
		entry, latest := staggered(b, simtime.Millisecond)
		Barrier(b, entry, 0)
		r := runProg(t, b.MustBuild())
		for i, f := range r.RankFinish {
			if f < latest {
				t.Errorf("P=%d: rank %d exited barrier at %v, before last entry %v",
					p, i, f, latest)
			}
		}
	}
}

func TestBarrierMessageCount(t *testing.T) {
	// Dissemination: P messages per round, ceil(log2 P) rounds.
	cases := map[int]int64{2: 2, 4: 8, 8: 24, 16: 64, 5: 15, 9: 36}
	for p, want := range cases {
		b := goal.NewBuilder(p)
		Barrier(b, nil, 0)
		r := runProg(t, b.MustBuild())
		if r.Metrics.AppMessages != want {
			t.Errorf("P=%d: barrier sent %d messages, want %d", p, r.Metrics.AppMessages, want)
		}
	}
}

func TestBarrierSingleRank(t *testing.T) {
	b := goal.NewBuilder(1)
	entry := []goal.OpID{b.Calc(0, 100)}
	ex := Barrier(b, entry, 0)
	if ex[0] != entry[0] {
		t.Error("single-rank barrier should pass entry through")
	}
	runProg(t, b.MustBuild())
}

func TestAllreduceSemantics(t *testing.T) {
	// Allreduce implies barrier semantics: every exit after every entry.
	for _, p := range []int{2, 3, 4, 6, 7, 8, 12, 16} {
		b := goal.NewBuilder(p)
		entry, latest := staggered(b, simtime.Millisecond)
		Allreduce(b, entry, 0, 2048)
		r := runProg(t, b.MustBuild())
		for i, f := range r.RankFinish {
			if f < latest {
				t.Errorf("P=%d: rank %d exited allreduce at %v before last entry %v",
					p, i, f, latest)
			}
		}
	}
}

func TestAllreduceMessageCount(t *testing.T) {
	// pof2·log2(pof2) + 2·rem.
	cases := map[int]int64{
		2:  2,
		4:  8,
		8:  24,
		16: 64,
		3:  2 + 2,  // pof2=2 (2 msgs), rem=1 (2 msgs)
		6:  8 + 4,  // pof2=4, rem=2
		7:  8 + 6,  // pof2=4, rem=3
		12: 24 + 8, // pof2=8, rem=4
	}
	for p, want := range cases {
		b := goal.NewBuilder(p)
		Allreduce(b, nil, 0, 64)
		r := runProg(t, b.MustBuild())
		if r.Metrics.AppMessages != want {
			t.Errorf("P=%d: allreduce sent %d messages, want %d", p, r.Metrics.AppMessages, want)
		}
	}
}

func TestAllreduceSingleRank(t *testing.T) {
	b := goal.NewBuilder(1)
	Allreduce(b, nil, 0, 64)
	b.Calc(0, 1) // ensure the program is non-empty
	runProg(t, b.MustBuild())
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		b := goal.NewBuilder(p)
		entry, latest := staggered(b, simtime.Millisecond)
		Allgather(b, entry, 0, 4096)
		r := runProg(t, b.MustBuild())
		if want := int64(p * (p - 1)); r.Metrics.AppMessages != want {
			t.Errorf("P=%d: allgather sent %d messages, want %d", p, r.Metrics.AppMessages, want)
		}
		for i, f := range r.RankFinish {
			if f < latest {
				t.Errorf("P=%d: rank %d exited allgather before last entry", p, i)
			}
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		b := goal.NewBuilder(p)
		Alltoall(b, nil, 0, 256)
		r := runProg(t, b.MustBuild())
		if want := int64(p * (p - 1)); r.Metrics.AppMessages != want {
			t.Errorf("P=%d: alltoall sent %d messages, want %d", p, r.Metrics.AppMessages, want)
		}
		if want := int64(p*(p-1)) * 256; r.Metrics.AppBytes != want {
			t.Errorf("P=%d: alltoall moved %d bytes, want %d", p, r.Metrics.AppBytes, want)
		}
	}
}

func TestGatherScatterSizes(t *testing.T) {
	for _, p := range []int{2, 3, 4, 7, 8, 11} {
		bg := goal.NewBuilder(p)
		Gather(bg, 0, nil, 0, 100)
		rg := runProg(t, bg.MustBuild())

		bs := goal.NewBuilder(p)
		Scatter(bs, 0, nil, 0, 100)
		rs := runProg(t, bs.MustBuild())

		if rg.Metrics.AppMessages != int64(p-1) || rs.Metrics.AppMessages != int64(p-1) {
			t.Errorf("P=%d: gather/scatter message counts %d/%d, want %d",
				p, rg.Metrics.AppMessages, rs.Metrics.AppMessages, p-1)
		}
		// Mirror images move the same total volume.
		if rg.Metrics.AppBytes != rs.Metrics.AppBytes {
			t.Errorf("P=%d: gather moved %d bytes, scatter %d",
				p, rg.Metrics.AppBytes, rs.Metrics.AppBytes)
		}
		// Every rank's block traverses at least one hop; volume is at least
		// (p-1) blocks and at most p·log2(p) blocks.
		min := int64((p - 1) * 100)
		if rg.Metrics.AppBytes < min {
			t.Errorf("P=%d: gather moved only %d bytes", p, rg.Metrics.AppBytes)
		}
	}
}

func TestChainedCollectives(t *testing.T) {
	// Reduce to root then bcast back — a manual allreduce — using exits as
	// entries. Must run deadlock-free with barrier-like semantics.
	p := 9
	b := goal.NewBuilder(p)
	entry, latest := staggered(b, simtime.Millisecond)
	mid := Reduce(b, 0, entry, 1, 1024)
	Bcast(b, 0, mid, 2, 1024)
	r := runProg(t, b.MustBuild())
	for i, f := range r.RankFinish {
		if f < latest {
			t.Errorf("rank %d finished reduce+bcast at %v before last entry %v", i, f, latest)
		}
	}
	if r.Metrics.AppMessages != int64(2*(p-1)) {
		t.Errorf("messages = %d, want %d", r.Metrics.AppMessages, 2*(p-1))
	}
}

func TestValidatePanics(t *testing.T) {
	b := goal.NewBuilder(4)
	cases := []func(){
		func() { Bcast(b, 9, nil, 0, 1) },
		func() { Reduce(b, -1, nil, 0, 1) },
		func() { Gather(b, 4, nil, 0, 1) },
		func() { Scatter(b, -2, nil, 0, 1) },
		func() { Bcast(b, 0, make([]goal.OpID, 3), 0, 1) },
		func() { Bcast(b, 0, nil, 0, -1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: for arbitrary P, every collective builds a balanced, runnable
// program whose every exit follows every entry (for the synchronizing ones).
func TestQuickCollectivesRun(t *testing.T) {
	f := func(seed uint8) bool {
		p := int(seed)%14 + 2
		b := goal.NewBuilder(p)
		entry, latest := staggered(b, simtime.Microsecond)
		ex := Allreduce(b, entry, 0, 128)
		ex = Barrier(b, ex, 1)
		Bcast(b, int(seed)%p, ex, 2, 64)
		prog, err := b.Build()
		if err != nil {
			return false
		}
		if err := prog.CheckBalanced(); err != nil {
			return false
		}
		e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		r, err := e.Run()
		if err != nil {
			return false
		}
		for _, f := range r.RankFinish {
			if f < latest {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRabenseifnerSemantics(t *testing.T) {
	for _, p := range []int{2, 3, 4, 6, 8, 12, 16} {
		b := goal.NewBuilder(p)
		entry, latest := staggered(b, simtime.Millisecond)
		AllreduceRabenseifner(b, entry, 0, 64*1024)
		r := runProg(t, b.MustBuild())
		for i, f := range r.RankFinish {
			if f < latest {
				t.Errorf("P=%d: rank %d exited at %v before last entry %v", p, i, f, latest)
			}
		}
	}
}

func TestRabenseifnerMessageCount(t *testing.T) {
	// 2·pof2·log2(pof2) + 2·rem.
	cases := map[int]int64{
		2:  4,
		4:  16,
		8:  48,
		16: 128,
		3:  4 + 2,  // pof2=2, rem=1
		6:  16 + 4, // pof2=4, rem=2
	}
	for p, want := range cases {
		b := goal.NewBuilder(p)
		AllreduceRabenseifner(b, nil, 0, 1<<20)
		r := runProg(t, b.MustBuild())
		if r.Metrics.AppMessages != want {
			t.Errorf("P=%d: %d messages, want %d", p, r.Metrics.AppMessages, want)
		}
	}
}

func TestRabenseifnerMovesLessDataThanDoubling(t *testing.T) {
	// For large payloads at P=16, Rabenseifner's volume per rank is
	// 2B(P-1)/P ≈ 1.9B vs recursive doubling's 4B.
	const bytes = 1 << 20
	b1 := goal.NewBuilder(16)
	Allreduce(b1, nil, 0, bytes)
	r1 := runProg(t, b1.MustBuild())

	b2 := goal.NewBuilder(16)
	AllreduceRabenseifner(b2, nil, 0, bytes)
	r2 := runProg(t, b2.MustBuild())

	if r2.Metrics.AppBytes >= r1.Metrics.AppBytes {
		t.Errorf("rabenseifner moved %d bytes, doubling %d", r2.Metrics.AppBytes, r1.Metrics.AppBytes)
	}
	// And it should be faster for large messages.
	if r2.Makespan >= r1.Makespan {
		t.Errorf("rabenseifner %v not faster than doubling %v for 1MiB", r2.Makespan, r1.Makespan)
	}
}

func TestRabenseifnerSingleRank(t *testing.T) {
	b := goal.NewBuilder(1)
	AllreduceRabenseifner(b, nil, 0, 64)
	b.Calc(0, 1)
	runProg(t, b.MustBuild())
}

func TestRabenseifnerTinyPayload(t *testing.T) {
	// Chunk sizes clamp to >= 1 byte; the graph must stay balanced.
	b := goal.NewBuilder(8)
	AllreduceRabenseifner(b, nil, 0, 1)
	runProg(t, b.MustBuild())
}
