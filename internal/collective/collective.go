// Package collective compiles MPI-style collective operations into GOAL
// dependency graphs.
//
// Each generator takes a builder, a per-rank entry dependency (the op each
// rank must complete before participating; goal.NoOp for none), a tag, and
// message sizes, and returns a per-rank exit op: the operation whose
// completion marks that rank's local completion of the collective, exactly
// like the return of a blocking MPI call. Workloads chain collectives by
// feeding exits back in as entries.
//
// The algorithms are the classic implementations the paper's era of MPI
// libraries used: binomial trees for broadcast/reduce/gather/scatter,
// recursive doubling (with the standard non-power-of-two fold) for
// allreduce, dissemination for barrier, ring for allgather, and a shifted
// exchange for alltoall. Their logarithmic depth is what makes coordination
// cost grow with scale — and what lets a single late rank delay every other
// rank in O(log P) hops.
package collective

import (
	"fmt"
	"math/bits"

	"checkpointsim/internal/goal"
)

// validate checks the common argument contract.
func validate(b *goal.Builder, entry []goal.OpID, bytes int64) {
	if entry != nil && len(entry) != b.NumRanks() {
		panic(fmt.Sprintf("collective: entry has %d ranks, builder has %d",
			len(entry), b.NumRanks()))
	}
	if bytes < 0 {
		panic("collective: negative message size")
	}
}

// entryOf returns the entry dependency for rank, tolerating a nil slice.
func entryOf(entry []goal.OpID, rank int) goal.OpID {
	if entry == nil {
		return goal.NoOp
	}
	return entry[rank]
}

// seqs builds one Sequencer per rank rooted at the entries.
func seqs(b *goal.Builder, entry []goal.OpID) []*goal.Sequencer {
	out := make([]*goal.Sequencer, b.NumRanks())
	for i := range out {
		out[i] = b.SeqAfter(i, entryOf(entry, i))
	}
	return out
}

// exits collects the per-rank tails.
func exits(ss []*goal.Sequencer) []goal.OpID {
	out := make([]goal.OpID, len(ss))
	for i, s := range ss {
		out[i] = s.Last()
	}
	return out
}

// log2ceil returns ceil(log2(p)) for p >= 1.
func log2ceil(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}

// Bcast builds a binomial-tree broadcast of bytes from root. Message count
// is P-1 and tree depth is ceil(log2 P).
func Bcast(b *goal.Builder, root int, entry []goal.OpID, tag int, bytes int64) []goal.OpID {
	validate(b, entry, bytes)
	p := b.NumRanks()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: bcast root %d out of range", root))
	}
	ss := seqs(b, entry)
	rounds := log2ceil(p)
	for v := 0; v < p; v++ {
		rank := (v + root) % p
		s := ss[rank]
		k := rounds // root "received" before round 0
		if v != 0 {
			lsb := v & -v
			k = bits.TrailingZeros(uint(v))
			parent := ((v - lsb) + root) % p
			s.Recv(int32(parent), int32(tag), bytes)
		}
		for j := k - 1; j >= 0; j-- {
			cv := v + 1<<j
			if cv < p {
				s.Send((cv+root)%p, tag, bytes)
			}
		}
	}
	return exits(ss)
}

// Reduce builds a binomial-tree reduction of bytes to root (the mirror of
// Bcast): each rank receives its children's contributions and forwards the
// combined value to its parent. Message count is P-1.
func Reduce(b *goal.Builder, root int, entry []goal.OpID, tag int, bytes int64) []goal.OpID {
	validate(b, entry, bytes)
	p := b.NumRanks()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: reduce root %d out of range", root))
	}
	ss := seqs(b, entry)
	rounds := log2ceil(p)
	for v := 0; v < p; v++ {
		rank := (v + root) % p
		s := ss[rank]
		k := rounds
		if v != 0 {
			k = bits.TrailingZeros(uint(v))
		}
		for j := 0; j < k; j++ {
			cv := v + 1<<j
			if cv < p {
				s.Recv(int32((cv+root)%p), int32(tag), bytes)
			}
		}
		if v != 0 {
			parent := ((v - (v & -v)) + root) % p
			s.Send(parent, tag, bytes)
		}
	}
	return exits(ss)
}

// Allreduce builds a recursive-doubling allreduce of bytes. For
// non-power-of-two P it applies the standard fold: the first 2·(P-pof2)
// ranks pair up, odd members hand their contribution to their even partner
// before the exchange and receive the result after it. Message count is
// pof2·log2(pof2) + 2·(P-pof2).
func Allreduce(b *goal.Builder, entry []goal.OpID, tag int, bytes int64) []goal.OpID {
	validate(b, entry, bytes)
	p := b.NumRanks()
	ss := seqs(b, entry)
	if p == 1 {
		return exits(ss)
	}
	pof2 := 1 << (bits.Len(uint(p)) - 1)
	if pof2 > p {
		pof2 >>= 1
	}
	rem := p - pof2

	// Fold phase: odd ranks among the first 2·rem send to their partner.
	for i := 0; i < 2*rem; i += 2 {
		ss[i+1].Send(i, tag, bytes)
		ss[i].Recv(int32(i+1), int32(tag), bytes)
	}
	// mapped id -> actual rank
	unmap := func(m int) int {
		if m < rem {
			return 2 * m
		}
		return m + rem
	}
	// Exchange phase among pof2 participants.
	for step := 1; step < pof2; step <<= 1 {
		for m := 0; m < pof2; m++ {
			rank := unmap(m)
			partner := unmap(m ^ step)
			s := ss[rank]
			sd := s.Fork(goal.KindSend, int32(partner), int32(tag), bytes)
			rv := s.Fork(goal.KindRecv, int32(partner), int32(tag), bytes)
			s.Join(sd, rv)
		}
	}
	// Unfold phase: even ranks return the result to their odd partner.
	for i := 0; i < 2*rem; i += 2 {
		ss[i].Send(i+1, tag, bytes)
		ss[i+1].Recv(int32(i), int32(tag), bytes)
	}
	return exits(ss)
}

// AllreduceRabenseifner builds Rabenseifner's allreduce: a recursive-halving
// reduce-scatter followed by a recursive-doubling allgather. Per-rank
// traffic is 2·bytes·(P−1)/P instead of recursive doubling's bytes·log2(P),
// which is why MPI libraries switch to it for large payloads. Non-power-of-
// two P uses the same fold as Allreduce. Message count is
// 2·pof2·log2(pof2) + 2·(P−pof2).
func AllreduceRabenseifner(b *goal.Builder, entry []goal.OpID, tag int, bytes int64) []goal.OpID {
	validate(b, entry, bytes)
	p := b.NumRanks()
	ss := seqs(b, entry)
	if p == 1 {
		return exits(ss)
	}
	pof2 := 1 << (bits.Len(uint(p)) - 1)
	if pof2 > p {
		pof2 >>= 1
	}
	rem := p - pof2
	for i := 0; i < 2*rem; i += 2 {
		ss[i+1].Send(i, tag, bytes)
		ss[i].Recv(int32(i+1), int32(tag), bytes)
	}
	unmap := func(m int) int {
		if m < rem {
			return 2 * m
		}
		return m + rem
	}
	// chunk returns the exchanged size at XOR distance d, at least 1 byte.
	chunk := func(d int) int64 {
		sz := bytes * int64(d) / int64(pof2)
		if sz < 1 {
			sz = 1
		}
		return sz
	}
	exchange := func(d int) {
		for m := 0; m < pof2; m++ {
			rank := unmap(m)
			partner := unmap(m ^ d)
			s := ss[rank]
			sd := s.Fork(goal.KindSend, int32(partner), int32(tag), chunk(d))
			rv := s.Fork(goal.KindRecv, int32(partner), int32(tag), chunk(d))
			s.Join(sd, rv)
		}
	}
	// Reduce-scatter: halving sizes, shrinking distances.
	for d := pof2 / 2; d >= 1; d >>= 1 {
		exchange(d)
	}
	// Allgather: doubling sizes, growing distances.
	for d := 1; d < pof2; d <<= 1 {
		exchange(d)
	}
	for i := 0; i < 2*rem; i += 2 {
		ss[i].Send(i+1, tag, bytes)
		ss[i+1].Recv(int32(i), int32(tag), bytes)
	}
	return exits(ss)
}

// Barrier builds a dissemination barrier: ceil(log2 P) rounds in which rank
// i signals (i + 2^k) mod P and waits for (i - 2^k) mod P. No rank's exit
// can precede any rank's entry — the property that makes it a barrier.
func Barrier(b *goal.Builder, entry []goal.OpID, tag int) []goal.OpID {
	validate(b, entry, 0)
	p := b.NumRanks()
	ss := seqs(b, entry)
	if p == 1 {
		return exits(ss)
	}
	const signalBytes = 1
	for step := 1; step < p; step <<= 1 {
		for i := 0; i < p; i++ {
			s := ss[i]
			to := (i + step) % p
			from := (i - step + p) % p
			sd := s.Fork(goal.KindSend, int32(to), int32(tag), signalBytes)
			rv := s.Fork(goal.KindRecv, int32(from), int32(tag), signalBytes)
			s.Join(sd, rv)
		}
	}
	return exits(ss)
}

// Allgather builds a ring allgather: P-1 steps in which each rank forwards
// the block it received in the previous step to its right neighbor.
// blockBytes is the per-rank contribution.
func Allgather(b *goal.Builder, entry []goal.OpID, tag int, blockBytes int64) []goal.OpID {
	validate(b, entry, blockBytes)
	p := b.NumRanks()
	ss := seqs(b, entry)
	for step := 0; step < p-1; step++ {
		for i := 0; i < p; i++ {
			s := ss[i]
			right := (i + 1) % p
			left := (i - 1 + p) % p
			sd := s.Fork(goal.KindSend, int32(right), int32(tag), blockBytes)
			rv := s.Fork(goal.KindRecv, int32(left), int32(tag), blockBytes)
			s.Join(sd, rv)
		}
	}
	return exits(ss)
}

// Alltoall builds a shifted pairwise exchange: in step k each rank sends
// bytes to (rank+k) mod P and receives from (rank-k) mod P. Message count
// is P·(P-1) — the quadratic pattern that makes transposes communication-
// bound at scale.
func Alltoall(b *goal.Builder, entry []goal.OpID, tag int, bytes int64) []goal.OpID {
	validate(b, entry, bytes)
	p := b.NumRanks()
	ss := seqs(b, entry)
	for step := 1; step < p; step++ {
		for i := 0; i < p; i++ {
			s := ss[i]
			to := (i + step) % p
			from := (i - step + p) % p
			sd := s.Fork(goal.KindSend, int32(to), int32(tag), bytes)
			rv := s.Fork(goal.KindRecv, int32(from), int32(tag), bytes)
			s.Join(sd, rv)
		}
	}
	return exits(ss)
}

// Gather builds a binomial-tree gather to root. Inner messages carry whole
// subtrees, so sizes grow toward the root: the child at offset 2^j sends
// min(2^j, remaining)·blockBytes.
func Gather(b *goal.Builder, root int, entry []goal.OpID, tag int, blockBytes int64) []goal.OpID {
	validate(b, entry, blockBytes)
	p := b.NumRanks()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: gather root %d out of range", root))
	}
	ss := seqs(b, entry)
	rounds := log2ceil(p)
	subtree := func(v int) int64 {
		// size of the binomial subtree rooted at virtual rank v
		lsb := v & -v
		if v == 0 {
			return int64(p)
		}
		n := lsb
		if v+n > p {
			n = p - v
		}
		return int64(n)
	}
	for v := 0; v < p; v++ {
		rank := (v + root) % p
		s := ss[rank]
		k := rounds
		if v != 0 {
			k = bits.TrailingZeros(uint(v))
		}
		for j := 0; j < k; j++ {
			cv := v + 1<<j
			if cv < p {
				s.Recv(int32((cv+root)%p), int32(tag), subtree(cv)*blockBytes)
			}
		}
		if v != 0 {
			parent := ((v - (v & -v)) + root) % p
			s.Send(parent, tag, subtree(v)*blockBytes)
		}
	}
	return exits(ss)
}

// Scatter builds a binomial-tree scatter from root (the mirror of Gather):
// parents forward whole-subtree blocks downward.
func Scatter(b *goal.Builder, root int, entry []goal.OpID, tag int, blockBytes int64) []goal.OpID {
	validate(b, entry, blockBytes)
	p := b.NumRanks()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: scatter root %d out of range", root))
	}
	ss := seqs(b, entry)
	rounds := log2ceil(p)
	subtree := func(v int) int64 {
		lsb := v & -v
		if v == 0 {
			return int64(p)
		}
		n := lsb
		if v+n > p {
			n = p - v
		}
		return int64(n)
	}
	for v := 0; v < p; v++ {
		rank := (v + root) % p
		s := ss[rank]
		k := rounds
		if v != 0 {
			lsb := v & -v
			k = bits.TrailingZeros(uint(v))
			parent := ((v - lsb) + root) % p
			s.Recv(int32(parent), int32(tag), subtree(v)*blockBytes)
		}
		for j := k - 1; j >= 0; j-- {
			cv := v + 1<<j
			if cv < p {
				s.Send((cv+root)%p, tag, subtree(cv)*blockBytes)
			}
		}
	}
	return exits(ss)
}
