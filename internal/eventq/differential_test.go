package eventq

import (
	"container/heap"
	"testing"
	"testing/quick"

	"checkpointsim/internal/rng"
	"checkpointsim/internal/simtime"
)

// refEvent / refHeap are a straightforward binary heap on the full
// (t, prio, seq) key — the data structure the calendar queue replaced. The
// differential tests below drive both implementations through identical
// operation sequences and demand identical results, so any divergence in
// the calendar queue's tiering (buckets, overflow, lane, rebuilds) from the
// documented total order shows up as a concrete counterexample.
type refEvent struct {
	t    simtime.Time
	prio int
	seq  uint64
	v    int
}

type refHeap struct {
	evs []refEvent
	seq uint64
}

func (h *refHeap) Len() int { return len(h.evs) }
func (h *refHeap) Less(i, j int) bool {
	a, b := h.evs[i], h.evs[j]
	if a.t != b.t {
		return a.t < b.t
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}
func (h *refHeap) Swap(i, j int)      { h.evs[i], h.evs[j] = h.evs[j], h.evs[i] }
func (h *refHeap) Push(x interface{}) { h.evs = append(h.evs, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := h.evs
	n := len(old)
	ev := old[n-1]
	h.evs = old[:n-1]
	return ev
}

func (h *refHeap) push(t simtime.Time, prio, v int) {
	heap.Push(h, refEvent{t: t, prio: prio, seq: h.seq, v: v})
	h.seq++
}

func (h *refHeap) pop() (simtime.Time, int) {
	ev := heap.Pop(h).(refEvent)
	return ev.t, ev.v
}

// schedule generators covering the regimes the calendar queue tiers events
// into: each returns the next (t, prio) to push given the current pop time.
var schedules = []struct {
	name string
	next func(r *rng.Source, now simtime.Time) (simtime.Time, int)
}{
	// Near-monotonic with small gaps: the common LogGOPS case, events land
	// at or just ahead of the cursor.
	{"near-monotonic", func(r *rng.Source, now simtime.Time) (simtime.Time, int) {
		return now + simtime.Time(r.Intn(1000)), r.Intn(3)
	}},
	// Same-timestamp clusters: exercises the lane and same-t tie ordering.
	{"same-time-clusters", func(r *rng.Source, now simtime.Time) (simtime.Time, int) {
		if r.Intn(4) > 0 {
			return now, r.Intn(3)
		}
		return now + simtime.Time(r.Intn(16)+1), r.Intn(3)
	}},
	// Bimodal near/far: failure-clock-style far-future pushes force events
	// through the overflow heap and its migrations.
	{"far-future-mix", func(r *rng.Source, now simtime.Time) (simtime.Time, int) {
		if r.Intn(8) == 0 {
			return now + simtime.Time(1+r.Intn(1<<40)), r.Intn(3)
		}
		return now + simtime.Time(r.Intn(200)), r.Intn(3)
	}},
	// Wide uniform spread: buckets fill out of order, forcing lazy sorts
	// and unsorted-fallback appends.
	{"uniform-wide", func(r *rng.Source, now simtime.Time) (simtime.Time, int) {
		return now + simtime.Time(r.Intn(1<<20)), r.Intn(5)
	}},
	// Extreme timestamps: vbClamp territory, including simtime.Infinity
	// sentinels collapsing into a single virtual bucket.
	{"extreme-times", func(r *rng.Source, now simtime.Time) (simtime.Time, int) {
		switch r.Intn(4) {
		case 0:
			return simtime.Infinity, r.Intn(3)
		case 1:
			return simtime.Infinity - simtime.Time(r.Intn(4)), r.Intn(3)
		default:
			return now + simtime.Time(r.Intn(100)), r.Intn(3)
		}
	}},
}

// TestDifferentialSchedules drives the calendar queue and the reference
// heap through identical interleaved push/pop sequences across every
// schedule shape and demands identical (time, value) pop streams — which
// pins the full (t, prio, seq) order, since values are unique.
func TestDifferentialSchedules(t *testing.T) {
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			for seed := uint64(0); seed < 8; seed++ {
				r := rng.New(seed*7919 + 17)
				var q Queue[int]
				var h refHeap
				now := simtime.Time(0)
				for i := 0; i < 4000; i++ {
					if q.Len() != h.Len() {
						t.Fatalf("seed %d step %d: Len %d vs %d", seed, i, q.Len(), h.Len())
					}
					// Bursts of pushes grow the population past rebuild
					// thresholds; drain phases shrink it back.
					if q.Len() == 0 || r.Intn(100) < 55 {
						tm, prio := sc.next(r, now)
						q.PushPrio(tm, prio, i)
						h.push(tm, prio, i)
					} else {
						t1, v1 := q.Pop()
						t2, v2 := h.pop()
						if t1 != t2 || v1 != v2 {
							t.Fatalf("seed %d step %d: pop (%d,%d) vs (%d,%d)",
								seed, i, t1, v1, t2, v2)
						}
						now = t1
					}
					if pt := q.PeekTime(); q.Len() > 0 && pt != h.evs[0].t {
						t.Fatalf("seed %d step %d: PeekTime %d vs %d", seed, i, pt, h.evs[0].t)
					}
				}
				for q.Len() > 0 {
					t1, v1 := q.Pop()
					t2, v2 := h.pop()
					if t1 != t2 || v1 != v2 {
						t.Fatalf("seed %d drain: pop (%d,%d) vs (%d,%d)", seed, t1, v1, t2, v2)
					}
				}
				if h.Len() != 0 {
					t.Fatalf("seed %d: reference has %d leftover events", seed, h.Len())
				}
			}
		})
	}
}

// TestDifferentialAdversarial hits the hand-picked worst cases for a
// calendar queue: strictly descending times (every push lands behind the
// cursor), sawtooth bursts (alternating growth and drain across rebuild
// thresholds), and a thin window with a dense far cluster (mass migration
// out of the overflow heap).
func TestDifferentialAdversarial(t *testing.T) {
	run := func(t *testing.T, ops func(push func(simtime.Time, int), pop func())) {
		var q Queue[int]
		var h refHeap
		n := 0
		push := func(tm simtime.Time, prio int) {
			q.PushPrio(tm, prio, n)
			h.push(tm, prio, n)
			n++
		}
		pop := func() {
			if q.Len() == 0 {
				return
			}
			t1, v1 := q.Pop()
			t2, v2 := h.pop()
			if t1 != t2 || v1 != v2 {
				t.Fatalf("pop (%d,%d) vs (%d,%d)", t1, v1, t2, v2)
			}
		}
		ops(push, pop)
		for q.Len() > 0 {
			pop()
		}
		if h.Len() != 0 {
			t.Fatalf("reference has %d leftover events", h.Len())
		}
	}

	t.Run("descending", func(t *testing.T) {
		run(t, func(push func(simtime.Time, int), pop func()) {
			for i := 0; i < 3000; i++ {
				push(simtime.Time(3000-i)*1000, i%3)
			}
		})
	})
	t.Run("descending-interleaved", func(t *testing.T) {
		// Pops anchor the cursor high, then later pushes land ever further
		// behind it — each triggers the pre-window rebuild path.
		run(t, func(push func(simtime.Time, int), pop func()) {
			push(1<<30, 0)
			pop()
			for i := 0; i < 500; i++ {
				base := simtime.Time(1<<30) + simtime.Time((500-i)*100000)
				push(base, 0)
				push(base+1, 1)
				if i%3 == 0 {
					pop()
				}
			}
		})
	})
	t.Run("sawtooth", func(t *testing.T) {
		run(t, func(push func(simtime.Time, int), pop func()) {
			tm := simtime.Time(0)
			for cycle := 0; cycle < 6; cycle++ {
				for i := 0; i < 400*(cycle+1); i++ {
					tm += simtime.Time(i % 7)
					push(tm, i%2)
				}
				for i := 0; i < 350*(cycle+1); i++ {
					pop()
				}
			}
		})
	})
	t.Run("thin-window-dense-cluster", func(t *testing.T) {
		run(t, func(push func(simtime.Time, int), pop func()) {
			// A sparse head spreads the window wide, then a dense far
			// cluster piles into overflow and migrates en masse.
			for i := 0; i < 64; i++ {
				push(simtime.Time(i)<<30, 0)
			}
			far := simtime.Time(1) << 50
			for i := 0; i < 2000; i++ {
				push(far+simtime.Time(i%17), i%3)
			}
			for i := 0; i < 64; i++ {
				pop()
			}
		})
	})
}

// TestDifferentialRestore round-trips the calendar queue through
// Items/Load/SetSeq at a random mid-run point and then continues the
// differential run on the restored copy: the restore path must reproduce
// the exact pop stream the reference heap produces, including ties decided
// by sequence numbers assigned after the restore.
func TestDifferentialRestore(t *testing.T) {
	f := func(seed uint16, scIdx uint8) bool {
		sc := schedules[int(scIdx)%len(schedules)]
		r := rng.New(uint64(seed) + 3)
		var q Queue[int]
		var h refHeap
		now := simtime.Time(0)
		n := 1500
		for i := 0; i < n; i++ {
			if q.Len() == 0 || r.Intn(100) < 60 {
				tm, prio := sc.next(r, now)
				q.PushPrio(tm, prio, i)
				h.push(tm, prio, i)
			} else {
				t1, _ := q.Pop()
				h.pop()
				now = t1
			}
		}

		// Snapshot and restore into a fresh queue mid-stream.
		var restored Queue[int]
		q.Items(func(tm simtime.Time, prio int, seq uint64, v int) bool {
			restored.Load(tm, prio, seq, v)
			return true
		})
		restored.SetSeq(q.Seq())

		// The restored queue continues against the reference.
		for i := 0; i < 800; i++ {
			if restored.Len() != h.Len() {
				t.Fatalf("seed %d: post-restore Len %d vs %d", seed, restored.Len(), h.Len())
			}
			if restored.Len() == 0 || r.Intn(100) < 40 {
				tm, prio := sc.next(r, now)
				restored.PushPrio(tm, prio, n+i)
				h.push(tm, prio, n+i)
			} else {
				t1, v1 := restored.Pop()
				t2, v2 := h.pop()
				if t1 != t2 || v1 != v2 {
					t.Fatalf("seed %d: post-restore pop (%d,%d) vs (%d,%d)", seed, t1, v1, t2, v2)
				}
				now = t1
			}
		}
		for restored.Len() > 0 {
			t1, v1 := restored.Pop()
			t2, v2 := h.pop()
			if t1 != t2 || v1 != v2 {
				t.Fatalf("seed %d: drain pop (%d,%d) vs (%d,%d)", seed, t1, v1, t2, v2)
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLoadAdvancesSeq is the regression test for the Load/SetSeq footgun:
// Load inserts with an explicit sequence, and a restore path that forgets
// the closing SetSeq must still never be handed a duplicate sequence
// number. Under the old behavior (Load leaving q.seq untouched) the first
// fresh push after a restore reused sequence 0 and popped before the
// restored event it tied with.
func TestLoadAdvancesSeq(t *testing.T) {
	var q Queue[string]
	q.Load(5, 0, 7, "restored")
	if got := q.Seq(); got != 8 {
		t.Fatalf("Seq after Load(seq=7) = %d, want 8", got)
	}
	q.Push(5, "fresh") // same (t, prio): order must fall to sequence
	if _, v := q.Pop(); v != "restored" {
		t.Fatalf("first pop = %q, want the restored event", v)
	}
	if _, v := q.Pop(); v != "fresh" {
		t.Fatal("fresh push lost")
	}

	// Loading an older sequence than the counter must not move it backward.
	// (The Push above consumed sequence 8, leaving the counter at 9.)
	q.Load(9, 0, 2, "old")
	if got := q.Seq(); got != 9 {
		t.Fatalf("Seq after Load(seq=2) = %d, want 9 (unchanged)", got)
	}
}

// TestCalendarSnapshotRoundTrip round-trips the queue via Items/Load/SetSeq
// from each internal state the calendar tiers can be in — mid-bucket
// consumption, populated overflow heap, active same-timestamp lane, and
// post-resize geometry — mirroring the heap-era round-trip test but aimed
// at the tier boundaries.
func TestCalendarSnapshotRoundTrip(t *testing.T) {
	roundTrip := func(t *testing.T, q *Queue[int]) {
		var want []struct {
			t simtime.Time
			v int
		}
		var restored Queue[int]
		count := 0
		q.Items(func(tm simtime.Time, prio int, seq uint64, v int) bool {
			restored.Load(tm, prio, seq, v)
			count++
			return true
		})
		if count != q.Len() {
			t.Fatalf("Items visited %d of %d events", count, q.Len())
		}
		restored.SetSeq(q.Seq())
		for q.Len() > 0 {
			tm, v := q.Pop()
			want = append(want, struct {
				t simtime.Time
				v int
			}{tm, v})
		}
		for i, w := range want {
			if restored.Len() == 0 {
				t.Fatalf("restored queue ran out at %d of %d", i, len(want))
			}
			tm, v := restored.Pop()
			if tm != w.t || v != w.v {
				t.Fatalf("pop %d: (%d,%d) vs original (%d,%d)", i, tm, v, w.t, w.v)
			}
		}
		if restored.Len() != 0 {
			t.Fatalf("restored queue has %d extra events", restored.Len())
		}
	}

	t.Run("mid-bucket", func(t *testing.T) {
		var q Queue[int]
		for i := 0; i < 40; i++ {
			q.PushPrio(simtime.Time(i/4), i%3, i)
		}
		for i := 0; i < 13; i++ { // leave a bucket partially consumed
			q.Pop()
		}
		roundTrip(t, &q)
	})
	t.Run("overflow-populated", func(t *testing.T) {
		var q Queue[int]
		q.Push(0, 0)
		for i := 1; i <= 50; i++ { // far beyond the initial window
			q.Push(simtime.Time(i)<<40, i)
		}
		roundTrip(t, &q)
	})
	t.Run("lane-active", func(t *testing.T) {
		var q Queue[int]
		q.Push(100, 0)
		q.Push(200, 1)
		now, _ := q.Pop()
		for i := 2; i < 20; i++ { // same-t pushes land in the lane
			q.PushPrio(now, 1, i)
		}
		roundTrip(t, &q)
	})
	t.Run("post-resize", func(t *testing.T) {
		var q Queue[int]
		for i := 0; i < 500; i++ { // population doubling forces rebuilds
			q.PushPrio(simtime.Time(i*37%1000), i%4, i)
		}
		for i := 0; i < 450; i++ { // quartering forces the shrink path
			q.Pop()
		}
		roundTrip(t, &q)
	})
}
