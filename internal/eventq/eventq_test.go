package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"checkpointsim/internal/rng"
	"checkpointsim/internal/simtime"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Error("new queue not empty")
	}
	if _, _, ok := q.Peek(); ok {
		t.Error("Peek on empty returned ok")
	}
	if q.PeekTime() != simtime.Infinity {
		t.Error("PeekTime on empty != Infinity")
	}
}

func TestPopPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty did not panic")
		}
	}()
	var q Queue[int]
	q.Pop()
}

func TestOrderingByTime(t *testing.T) {
	var q Queue[string]
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")
	for _, want := range []string{"a", "b", "c"} {
		if _, v := q.Pop(); v != want {
			t.Errorf("pop = %q, want %q", v, want)
		}
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(5, i)
	}
	for i := 0; i < 100; i++ {
		_, v := q.Pop()
		if v != i {
			t.Fatalf("same-time events out of insertion order: got %d want %d", v, i)
		}
	}
}

func TestPriorityBeforeSequence(t *testing.T) {
	var q Queue[string]
	q.PushPrio(5, 1, "low-prio-first-inserted")
	q.PushPrio(5, 0, "high-prio")
	if _, v := q.Pop(); v != "high-prio" {
		t.Errorf("priority not respected: got %q", v)
	}
	_, v := q.Pop()
	if v != "low-prio-first-inserted" {
		t.Errorf("second pop = %q", v)
	}
}

func TestPeek(t *testing.T) {
	var q Queue[int]
	q.Push(7, 42)
	tm, v, ok := q.Peek()
	if !ok || tm != 7 || v != 42 {
		t.Errorf("Peek = %v %v %v", tm, v, ok)
	}
	if q.Len() != 1 {
		t.Error("Peek removed the event")
	}
	if q.PeekTime() != 7 {
		t.Error("PeekTime wrong")
	}
}

func TestClear(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(simtime.Time(i), i)
	}
	q.Clear()
	if q.Len() != 0 {
		t.Error("Clear did not empty")
	}
	// Still usable and still ordered after Clear (sequence keeps rising).
	q.Push(2, 2)
	q.Push(1, 1)
	if _, v := q.Pop(); v != 1 {
		t.Error("queue broken after Clear")
	}
}

func TestHeapSortsRandomInput(t *testing.T) {
	r := rng.New(42)
	var q Queue[int]
	n := 5000
	times := make([]int64, n)
	for i := 0; i < n; i++ {
		tm := int64(r.Intn(1000))
		times[i] = tm
		q.Push(simtime.Time(tm), i)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	prev := simtime.Time(-1)
	for i := 0; i < n; i++ {
		tm, _ := q.Pop()
		if tm < prev {
			t.Fatalf("pop %d out of order: %d after %d", i, tm, prev)
		}
		if int64(tm) != times[i] {
			t.Fatalf("pop %d time %d, want %d", i, tm, times[i])
		}
		prev = tm
	}
}

func TestInterleavedPushPop(t *testing.T) {
	r := rng.New(7)
	var q Queue[int64]
	var popped []int64
	now := simtime.Time(0)
	for i := 0; i < 10000; i++ {
		if q.Len() == 0 || r.Float64() < 0.6 {
			// schedule in the future relative to last popped time
			q.Push(now+simtime.Time(r.Intn(100)), int64(i))
		} else {
			tm, _ := q.Pop()
			if tm < now {
				t.Fatalf("time went backwards: %d < %d", tm, now)
			}
			now = tm
			popped = append(popped, int64(tm))
		}
	}
	for i := 1; i < len(popped); i++ {
		if popped[i] < popped[i-1] {
			t.Fatal("popped sequence not monotone")
		}
	}
}

// Property: for any set of times, popping yields them in sorted order.
func TestQuickSortsAnything(t *testing.T) {
	f := func(ts []uint16) bool {
		var q Queue[int]
		for i, v := range ts {
			q.Push(simtime.Time(v), i)
		}
		want := append([]uint16(nil), ts...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			tm, _ := q.Pop()
			if tm != simtime.Time(want[i]) {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: determinism — identical operation sequences produce identical
// pop sequences.
func TestQuickDeterministic(t *testing.T) {
	f := func(seed uint32) bool {
		run := func() []int {
			r := rng.New(uint64(seed))
			var q Queue[int]
			var out []int
			for i := 0; i < 200; i++ {
				if q.Len() == 0 || r.Float64() < 0.5 {
					q.Push(simtime.Time(r.Intn(50)), i)
				} else {
					_, v := q.Pop()
					out = append(out, v)
				}
			}
			for q.Len() > 0 {
				_, v := q.Pop()
				out = append(out, v)
			}
			return out
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := rng.New(1)
	var q Queue[int]
	for i := 0; i < 1024; i++ {
		q.Push(simtime.Time(r.Intn(1<<20)), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm, v := q.Pop()
		q.Push(tm+simtime.Time(r.Intn(1024)), v)
	}
}

// TestItemsLoadRoundTrip drives the snapshot-support API: dumping a queue
// via Items and rebuilding it with Load/SetSeq into a fresh queue must
// reproduce the exact pop sequence — (time, priority, insertion order) all
// preserved — and leave the sequence counter positioned so future pushes
// sort after every restored event.
func TestItemsLoadRoundTrip(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		var q Queue[int]
		n := r.Intn(64) + 1
		for i := 0; i < n; i++ {
			// Tight time/prio ranges force plenty of ties, so the sequence
			// component actually decides order.
			q.PushPrio(simtime.Time(r.Intn(8)), r.Intn(3), i)
		}
		// Pop a few to move the heap away from pure insertion shape.
		for i := 0; i < n/3; i++ {
			q.Pop()
		}

		var restored Queue[int]
		restored.Push(999, -1) // pre-existing content must not survive Clear
		restored.Clear()
		if restored.Len() != 0 {
			t.Fatal("Clear left items behind")
		}
		count := 0
		q.Items(func(tm simtime.Time, prio int, seq uint64, v int) bool {
			restored.Load(tm, prio, seq, v)
			count++
			return true
		})
		if count != q.Len() {
			t.Fatalf("Items visited %d of %d items", count, q.Len())
		}
		restored.SetSeq(q.Seq())
		if restored.Seq() != q.Seq() {
			t.Fatalf("SetSeq(%d) reads back %d", q.Seq(), restored.Seq())
		}

		// Both queues now pop identically, including after interleaved
		// fresh pushes (which must order consistently after restored ties).
		for step := 0; q.Len() > 0 || restored.Len() > 0; step++ {
			if q.Len() != restored.Len() {
				t.Fatalf("length diverged: %d vs %d", q.Len(), restored.Len())
			}
			if step == 2 {
				q.PushPrio(0, 1, 777)
				restored.PushPrio(0, 1, 777)
			}
			t1, v1 := q.Pop()
			t2, v2 := restored.Pop()
			if t1 != t2 || v1 != v2 {
				t.Fatalf("pop %d diverged: (%v,%v) vs (%v,%v)", step, t1, v1, t2, v2)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestItemsEarlyStop: a visitor returning false stops the walk.
func TestItemsEarlyStop(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(simtime.Time(i), i)
	}
	visits := 0
	q.Items(func(simtime.Time, int, uint64, int) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Errorf("visited %d items after stopping at 3", visits)
	}
	if q.Len() != 10 {
		t.Errorf("Items disturbed the queue: %d items left", q.Len())
	}
}
