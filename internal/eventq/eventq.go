// Package eventq implements the priority queue at the heart of the
// discrete-event simulator.
//
// Events are ordered by (time, priority, sequence): earlier times first,
// then lower priority values, then insertion order. The sequence component
// makes the ordering total, which is what guarantees deterministic
// simulation — two events at the same instant always pop in the order they
// were scheduled, on every run and platform.
package eventq

import "checkpointsim/internal/simtime"

// Queue is a binary min-heap of events carrying payloads of type T.
// The zero value is an empty, usable queue.
type Queue[T any] struct {
	items []item[T]
	seq   uint64
}

type item[T any] struct {
	t    simtime.Time
	prio int
	seq  uint64
	v    T
}

// less orders by time, then priority, then insertion sequence.
func (q *Queue[T]) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.t != b.t {
		return a.t < b.t
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// Len returns the number of queued events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules v at time t with priority 0.
func (q *Queue[T]) Push(t simtime.Time, v T) { q.PushPrio(t, 0, v) }

// PushPrio schedules v at time t with an explicit priority. Among events at
// the same time, lower priorities pop first; ties break by insertion order.
func (q *Queue[T]) PushPrio(t simtime.Time, prio int, v T) {
	q.items = append(q.items, item[T]{t: t, prio: prio, seq: q.seq, v: v})
	q.seq++
	q.up(len(q.items) - 1)
}

// Pop removes and returns the earliest event. It panics on an empty queue;
// check Len first.
func (q *Queue[T]) Pop() (simtime.Time, T) {
	if len(q.items) == 0 {
		panic("eventq: Pop on empty queue")
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	var zero item[T]
	q.items[last] = zero // release payload for GC
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top.t, top.v
}

// Peek returns the earliest event without removing it. ok is false when the
// queue is empty.
func (q *Queue[T]) Peek() (t simtime.Time, v T, ok bool) {
	if len(q.items) == 0 {
		return 0, v, false
	}
	return q.items[0].t, q.items[0].v, true
}

// PeekTime returns the time of the earliest event, or simtime.Infinity when
// the queue is empty.
func (q *Queue[T]) PeekTime() simtime.Time {
	if len(q.items) == 0 {
		return simtime.Infinity
	}
	return q.items[0].t
}

// Items calls visit for every queued event with its full ordering key
// (time, priority, insertion sequence), in unspecified (heap) order, until
// visit returns false. Snapshot encoding uses it to serialize the queue
// without disturbing it; because the (t, prio, seq) triple totally orders
// events, re-Loading the visited items reproduces the exact pop sequence.
func (q *Queue[T]) Items(visit func(t simtime.Time, prio int, seq uint64, v T) bool) {
	for i := range q.items {
		it := &q.items[i]
		if !visit(it.t, it.prio, it.seq, it.v) {
			return
		}
	}
}

// Load inserts an event with an explicit insertion sequence, bypassing the
// queue's own counter. Restore paths use it to rebuild a serialized queue;
// pair it with SetSeq so future Pushes continue after the restored events.
func (q *Queue[T]) Load(t simtime.Time, prio int, seq uint64, v T) {
	q.items = append(q.items, item[T]{t: t, prio: prio, seq: seq, v: v})
	q.up(len(q.items) - 1)
}

// Seq returns the next insertion sequence number the queue would assign.
func (q *Queue[T]) Seq() uint64 { return q.seq }

// SetSeq sets the next insertion sequence number (snapshot restore).
func (q *Queue[T]) SetSeq(seq uint64) { q.seq = seq }

// Clear discards all queued events while keeping the allocated capacity.
func (q *Queue[T]) Clear() {
	var zero item[T]
	for i := range q.items {
		q.items[i] = zero
	}
	q.items = q.items[:0]
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
