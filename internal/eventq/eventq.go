// Package eventq implements the priority queue at the heart of the
// discrete-event simulator.
//
// Events are ordered by (time, priority, sequence): earlier times first,
// then lower priority values, then insertion order. The sequence component
// makes the ordering total, which is what guarantees deterministic
// simulation — two events at the same instant always pop in the order they
// were scheduled, on every run and platform.
//
// Internally the queue is a calendar (bucket) queue, not a binary heap: an
// event lands in the fixed-width time bucket covering its timestamp in O(1),
// buckets are kept sorted by cheap in-place insertion (falling back to a
// lazy sort on first pop when an insertion would shift too much), and
// far-future events (failure clocks, heartbeat timers) wait in an overflow
// tier outside the bucket window. LogGOPS simulations schedule
// near-monotonic timestamps, so pushes land at or just ahead of the cursor
// and both Push and Pop are O(1) amortized — against the O(log n) compare-
// and-swap churn a heap pays per operation. The bucket width and ring size
// re-derive from observed event density whenever the population doubles or
// quarters, so the structure tracks the workload without tuning.
//
// The tiers move only 32-byte pointer-free keys: payloads are parked once
// in a slot arena at push and read back exactly once at pop, so the
// insertion shifts, lazy sorts, and heap swaps never copy payload bytes and
// never trigger GC write barriers. None of this is visible in the API or
// the pop order: the (t, prio, seq) total order is identical to the heap's,
// byte for byte.
package eventq

import (
	"math/bits"

	"checkpointsim/internal/simtime"
)

const (
	// minBuckets is the ring-size floor and the initial ring size.
	minBuckets = 64
	// maxBuckets caps the ring so a rebuild never allocates absurdly.
	maxBuckets = 1 << 20
	// defaultShift is the bucket width before any density estimate exists:
	// 2^12 ns ≈ 4.1 µs, the right ballpark for LogGOPS message latencies.
	defaultShift = 12
	// maxShift caps the bucket width at 2^48 ns ≈ 3.3 days per bucket.
	maxShift = 48
	// vbClamp bounds virtual bucket indices so window arithmetic cannot
	// overflow: timestamps at or near simtime.Infinity collapse into one
	// far-future virtual bucket, where full-key sorting still orders them
	// exactly.
	vbClamp = int64(1) << 60
)

// ref is one queued event's full ordering key plus the index of its payload
// in the queue's slot arena. It is deliberately pointer-free: every tier
// shuffles refs, so insertion shifts and heap swaps are plain memmoves with
// no GC write barriers, and consumed slots need no zeroing.
type ref struct {
	t    simtime.Time
	prio int
	seq  uint64
	idx  int32
}

// less orders by time, then priority, then insertion sequence.
func less(a, b *ref) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// bucket is one calendar slot. items[pos:] are the live events. sorted
// means items[pos:] is in (t, prio, seq) order — cleared when an
// out-of-order append lands, re-established lazily by the first pop that
// reaches the bucket.
type bucket struct {
	items  []ref
	pos    int
	sorted bool
}

// live returns the number of unconsumed events in the bucket.
func (b *bucket) live() int { return len(b.items) - b.pos }

// Queue is a calendar queue of events carrying payloads of type T.
// The zero value is an empty, usable queue.
//
// Geometry: virtual bucket vb(t) = t >> shift (clamped to ±vbClamp). The
// ring buckets[] covers the window [limVB-N, limVB) of N consecutive
// virtual buckets, each mapping to slot vb&mask — distinct slots, because
// the window is exactly N long. Every live near-tier event has
// vb ∈ [curVB, limVB); events at vb ≥ limVB wait in overflow. The cursor
// curVB is the lowest virtual bucket that may hold a live event: pops drain
// the cursor bucket in sorted order, then advance; pushes behind the cursor
// (legal, if rare) just move it back.
type Queue[T any] struct {
	buckets []bucket
	mask    int64
	shift   uint
	curVB   int64 // pop cursor (virtual bucket index)
	limVB   int64 // window end: near tier holds vb ∈ [limVB-N, limVB)
	nNear   int   // live events in buckets
	n       int   // live events total (buckets + overflow)
	lastN   int   // population at the last geometry rebuild (hysteresis)

	// overflow holds far-future events (vb ≥ limVB) as a binary min-heap
	// on the full (t, prio, seq) key: O(log k) insert for the small
	// far-future population, and migrations drain it in sorted order, so a
	// thin window never forces a full re-sort.
	overflow []ref

	// scratch is the rebuild staging buffer, retained across rebuilds so a
	// steady-state queue does not allocate.
	scratch []ref

	// lane is the same-timestamp fast path: simulations push many events
	// at exactly the current simulation time (the timestamp of the last
	// pop, laneT), and those arrive in ascending (prio, seq) order. Such
	// pushes append here — no bucket routing, no binary search, no tail
	// shift — and pops two-way-merge the lane head against the calendar
	// tiers by full (t, prio, seq) key, so the pop order is exactly the
	// total order regardless of which tier holds an event. lane[lanePos:]
	// are the live entries, all at time laneT; laneOn is false until the
	// first pop anchors laneT.
	lane    []ref
	lanePos int
	laneT   simtime.Time
	laneOn  bool

	// vals is the payload slot arena refs point into; free lists the
	// reusable slots. Payloads are written once at push, read and zeroed
	// once at pop, and never move in between.
	vals []T
	free []int32

	seq uint64
}

// putVal parks a payload in the slot arena and returns its index.
func (q *Queue[T]) putVal(v T) int32 {
	if n := len(q.free); n > 0 {
		i := q.free[n-1]
		q.free = q.free[:n-1]
		q.vals[i] = v
		return i
	}
	q.vals = append(q.vals, v)
	return int32(len(q.vals) - 1)
}

// takeVal removes a payload from the slot arena and recycles its index.
// The slot is not zeroed: the LIFO freelist overwrites it on the next push,
// so a popped payload pins its referents only until then — bounded by the
// peak queue population, and far cheaper than clearing 64 bytes per pop.
func (q *Queue[T]) takeVal(i int32) T {
	q.free = append(q.free, i)
	return q.vals[i]
}

// Len returns the number of queued events.
func (q *Queue[T]) Len() int { return q.n + len(q.lane) - q.lanePos }

// Push schedules v at time t with priority 0.
func (q *Queue[T]) Push(t simtime.Time, v T) { q.PushPrio(t, 0, v) }

// PushPrio schedules v at time t with an explicit priority. Among events at
// the same time, lower priorities pop first; ties break by insertion order.
func (q *Queue[T]) PushPrio(t simtime.Time, prio int, v T) {
	if q.laneOn && t == q.laneT {
		if n := len(q.lane); n == q.lanePos {
			q.lane = q.lane[:0]
			q.lanePos = 0
			q.lane = append(q.lane, ref{t: t, prio: prio, seq: q.seq, idx: q.putVal(v)})
			q.seq++
			return
		} else if prio >= q.lane[n-1].prio { // same t; seq is always larger
			q.lane = append(q.lane, ref{t: t, prio: prio, seq: q.seq, idx: q.putVal(v)})
			q.seq++
			return
		}
	}
	q.pushItem(ref{t: t, prio: prio, seq: q.seq, idx: q.putVal(v)})
	q.seq++
}

// laneHead returns the earliest lane entry, or nil when the lane is empty.
func (q *Queue[T]) laneHead() *ref {
	if q.lanePos < len(q.lane) {
		return &q.lane[q.lanePos]
	}
	return nil
}

// Pop removes and returns the earliest event. It panics on an empty queue;
// check Len first.
func (q *Queue[T]) Pop() (simtime.Time, T) {
	b := q.front()
	lh := q.laneHead()
	if b == nil && lh == nil {
		panic("eventq: Pop on empty queue")
	}
	var it ref
	if b == nil || (lh != nil && less(lh, &b.items[b.pos])) {
		it = *lh
		q.lanePos++
		if q.lanePos == len(q.lane) {
			q.lane = q.lane[:0]
			q.lanePos = 0
		}
	} else {
		it = b.items[b.pos]
		b.pos++
		if b.pos == len(b.items) {
			b.items = b.items[:0]
			b.pos = 0
			b.sorted = true
		}
		q.nNear--
		q.n--
		// Shrink when the population quartered since the last rebuild: a
		// sparse ring makes cursor scans pay for buckets that no longer
		// exist.
		if len(q.buckets) > minBuckets && q.n*4 < q.lastN {
			q.rebuild(nil)
		}
	}
	// Anchor the same-timestamp lane at the new current time. The lane can
	// only be non-empty here when the popped time differs from laneT: a
	// push behind the cursor (handled by the rebuild path) made this pop
	// earlier than the lane's timestamp. Flush the lane into the calendar
	// tiers before moving the anchor, or later accepts would mix
	// timestamps into it and break the head-only merge.
	if it.t != q.laneT && q.lanePos < len(q.lane) {
		for i := q.lanePos; i < len(q.lane); i++ {
			q.pushItem(q.lane[i])
		}
		q.lane = q.lane[:0]
		q.lanePos = 0
	}
	q.laneT = it.t
	q.laneOn = true
	return it.t, q.takeVal(it.idx)
}

// Peek returns the earliest event without removing it. ok is false when the
// queue is empty.
func (q *Queue[T]) Peek() (t simtime.Time, v T, ok bool) {
	b := q.front()
	lh := q.laneHead()
	if b == nil && lh == nil {
		return 0, v, false
	}
	if b == nil || (lh != nil && less(lh, &b.items[b.pos])) {
		return lh.t, q.vals[lh.idx], true
	}
	it := &b.items[b.pos]
	return it.t, q.vals[it.idx], true
}

// PeekTime returns the time of the earliest event, or simtime.Infinity when
// the queue is empty.
func (q *Queue[T]) PeekTime() simtime.Time {
	b := q.front()
	lh := q.laneHead()
	if b == nil && lh == nil {
		return simtime.Infinity
	}
	if b == nil || (lh != nil && less(lh, &b.items[b.pos])) {
		return lh.t
	}
	return b.items[b.pos].t
}

// Items calls visit for every queued event with its full ordering key
// (time, priority, insertion sequence), in unspecified (internal bucket)
// order, until visit returns false. Snapshot encoding uses it to serialize
// the queue without disturbing it; because the (t, prio, seq) triple
// totally orders events, re-Loading the visited items reproduces the exact
// pop sequence.
func (q *Queue[T]) Items(visit func(t simtime.Time, prio int, seq uint64, v T) bool) {
	for i := range q.buckets {
		b := &q.buckets[i]
		for j := b.pos; j < len(b.items); j++ {
			it := &b.items[j]
			if !visit(it.t, it.prio, it.seq, q.vals[it.idx]) {
				return
			}
		}
	}
	for i := range q.overflow {
		it := &q.overflow[i]
		if !visit(it.t, it.prio, it.seq, q.vals[it.idx]) {
			return
		}
	}
	for i := q.lanePos; i < len(q.lane); i++ {
		it := &q.lane[i]
		if !visit(it.t, it.prio, it.seq, q.vals[it.idx]) {
			return
		}
	}
}

// Load inserts an event with an explicit insertion sequence, bypassing the
// queue's own counter. Restore paths use it to rebuild a serialized queue;
// pair it with SetSeq to position the counter exactly. Load itself advances
// the counter to max(current, seq+1), so a caller that forgets SetSeq can
// never be handed a duplicate sequence number — which would silently break
// deterministic tie-ordering.
func (q *Queue[T]) Load(t simtime.Time, prio int, seq uint64, v T) {
	q.pushItem(ref{t: t, prio: prio, seq: seq, idx: q.putVal(v)})
	if seq >= q.seq {
		q.seq = seq + 1
	}
}

// Seq returns the next insertion sequence number the queue would assign.
func (q *Queue[T]) Seq() uint64 { return q.seq }

// SetSeq sets the next insertion sequence number (snapshot restore).
func (q *Queue[T]) SetSeq(seq uint64) { q.seq = seq }

// Clear discards all queued events while keeping the allocated capacity.
func (q *Queue[T]) Clear() {
	for i := range q.buckets {
		b := &q.buckets[i]
		b.items = b.items[:0]
		b.pos = 0
		b.sorted = true
	}
	q.overflow = q.overflow[:0]
	q.lane = q.lane[:0]
	q.lanePos = 0
	q.laneOn = false
	q.nNear = 0
	q.n = 0
	var zero T
	for i := range q.vals {
		q.vals[i] = zero // release payloads for GC
	}
	q.vals = q.vals[:0]
	q.free = q.free[:0]
}

// --- internals ---

// vbOf maps a timestamp to its virtual bucket index.
func (q *Queue[T]) vbOf(t simtime.Time) int64 {
	vb := int64(t) >> q.shift
	if vb > vbClamp {
		return vbClamp
	}
	if vb < -vbClamp {
		return -vbClamp
	}
	return vb
}

// init sets up the initial geometry, anchored at the first event.
func (q *Queue[T]) init(t simtime.Time) {
	q.shift = defaultShift
	q.buckets = newRing(minBuckets)
	q.mask = minBuckets - 1
	q.lastN = minBuckets
	q.curVB = q.vbOf(t)
	q.limVB = q.curVB + minBuckets
}

// newRing builds a bucket ring with every slot pre-sized from one shared
// arena allocation: at target occupancy a bucket holds a handful of events,
// and carving the slots out of a single backing array means ring setup
// costs two allocations, not one per slot. A slot that outgrows its segment
// reallocates independently via append.
func newRing(size int) []bucket {
	const seg = 8
	ring := make([]bucket, size)
	arena := make([]ref, size*seg)
	for i := range ring {
		ring[i].items = arena[i*seg : i*seg : (i+1)*seg]
		ring[i].sorted = true
	}
	return ring
}

// pushItem routes one event into the near tier, the overflow tier, or — for
// an event before the current window — a geometry rebuild around it.
func (q *Queue[T]) pushItem(it ref) {
	if q.buckets == nil {
		q.init(it.t)
	} else if q.n == 0 {
		// Empty queue: re-anchor the (all-empty) window at the new event.
		q.curVB = q.vbOf(it.t)
		q.limVB = q.curVB + int64(len(q.buckets))
	}
	vb := q.vbOf(it.t)
	switch {
	case vb >= q.limVB:
		q.ovPush(it)
	case vb >= q.limVB-int64(len(q.buckets)):
		q.placeNear(vb, it)
		q.nNear++
		if vb < q.curVB {
			q.curVB = vb
		}
	default:
		// Before the window start: rebuild around the new minimum. Rare —
		// simulation time is near-monotonic — and O(n) when it happens.
		q.rebuild(&it)
		return
	}
	q.n++
	// Re-derive the geometry whenever the population doubles since the
	// last rebuild: the ring grows with the event count and the bucket
	// width re-derives from the current density, whichever tier the
	// pressure landed in. The doubling guard keeps rebuilds O(log n) over
	// any run, so their O(n log n) staging sort amortizes away.
	if q.n > 2*q.lastN {
		q.rebuild(nil)
	}
}

// maxInsertShift is the constant part of the bound on the memmove a sorted
// in-place insertion may pay (the bound scales with bucket occupancy, see
// placeNear). Inserts that would shift a longer tail instead append
// unsorted and let the next pop's lazy sort absorb them, so a bulk
// out-of-order load costs one O(k log k) sort rather than k O(k) shifts.
const maxInsertShift = 32

// placeNear places an event into its ring slot, keeping the slot sorted when
// it cheaply can: appends at the tail and before-head inserts (which reuse
// the consumed prefix slot) are O(1), a mid-bucket insert is a binary search
// plus a bounded shift of pointer-free refs, and anything worse falls back
// to an unsorted append for the lazy sort on first pop. Counters are the
// caller's job.
func (q *Queue[T]) placeNear(vb int64, it ref) {
	b := &q.buckets[vb&q.mask]
	if b.pos > 0 && len(b.items) == cap(b.items) {
		// Compact the consumed prefix instead of growing past it.
		k := copy(b.items, b.items[b.pos:])
		b.items = b.items[:k]
		b.pos = 0
	}
	n := len(b.items)
	if n-b.pos == 0 {
		b.items = b.items[:0]
		b.pos = 0
		b.sorted = true
		b.items = append(b.items, it)
		return
	}
	if !b.sorted || !less(&it, &b.items[n-1]) {
		b.items = append(b.items, it)
		return
	}
	if b.pos > 0 && less(&it, &b.items[b.pos]) {
		b.pos--
		b.items[b.pos] = it
		return
	}
	lo, hi := b.pos, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(&b.items[mid], &it) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if n-lo <= maxInsertShift+(n-b.pos)/2 {
		b.items = append(b.items, ref{})
		copy(b.items[lo+1:], b.items[lo:n])
		b.items[lo] = it
		return
	}
	b.sorted = false
	b.items = append(b.items, it)
}

// front returns the bucket whose head is the globally earliest event,
// sorting it lazily and advancing the cursor over empty buckets; nil when
// the calendar tiers are empty (the lane may still hold events). Pops and
// peeks both start here.
func (q *Queue[T]) front() *bucket {
	for {
		if q.nNear == 0 {
			if len(q.overflow) == 0 {
				return nil
			}
			q.migrate()
			continue
		}
		b := &q.buckets[q.curVB&q.mask]
		if b.live() == 0 {
			q.curVB++
			continue
		}
		if !b.sorted {
			sortItems(b.items[b.pos:])
			b.sorted = true
		}
		return b
	}
}

// migrate re-anchors the window at the earliest overflow event and drains
// every overflow event that now falls inside the window into the ring, in
// sorted order (heap pops), so the receiving buckets stay sorted for free.
// Called only when the near tier is empty; moves at least one event.
func (q *Queue[T]) migrate() {
	q.curVB = q.vbOf(q.overflow[0].t)
	q.limVB = q.curVB + int64(len(q.buckets))
	k := 0
	for len(q.overflow) > 0 && q.vbOf(q.overflow[0].t) < q.limVB {
		it := q.ovPop()
		q.placeNear(q.vbOf(it.t), it)
		k++
	}
	q.nNear += k
}

// ovPush inserts an event into the overflow min-heap. Pushing in ascending
// key order (as rebuild does) costs one comparison per event.
func (q *Queue[T]) ovPush(it ref) {
	q.overflow = append(q.overflow, it)
	h := q.overflow
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// ovPop removes and returns the minimum overflow event.
func (q *Queue[T]) ovPop() ref {
	h := q.overflow
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	q.overflow = h
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && less(&h[r], &h[l]) {
			m = r
		}
		if !less(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// rebuild re-derives the geometry — ring size from the population, bucket
// width from observed event density — and redistributes every live event
// (plus extra, when a pre-window insert triggered the rebuild). O(n log n)
// for the staging sort, amortized across the doubling/quartering that
// triggered it.
func (q *Queue[T]) rebuild(extra *ref) {
	sc := q.scratch[:0]
	for i := range q.buckets {
		b := &q.buckets[i]
		sc = append(sc, b.items[b.pos:]...)
	}
	sc = append(sc, q.overflow...)
	if extra != nil {
		sc = append(sc, *extra)
	}
	sortItems(sc)
	cnt := len(sc)

	// Ring size tracks the population; width tracks the local density at
	// the head of the schedule — see densityShift.
	size := minBuckets
	for size < cnt && size < maxBuckets {
		size <<= 1
	}
	if s, ok := densityShift(sc); ok {
		q.shift = s
	} else if q.shift == 0 {
		q.shift = defaultShift
	}
	if len(q.buckets) != size {
		q.buckets = newRing(size)
	} else {
		for i := range q.buckets {
			b := &q.buckets[i]
			b.items = b.items[:0]
			b.pos = 0
			b.sorted = true
		}
	}
	q.mask = int64(size - 1)
	q.overflow = q.overflow[:0]
	q.nNear = 0
	if cnt > 0 {
		q.curVB = q.vbOf(sc[0].t)
		q.limVB = q.curVB + int64(size)
		for i := range sc {
			vb := q.vbOf(sc[i].t)
			if vb < q.limVB {
				q.placeNear(vb, sc[i])
				q.nNear++
			} else {
				q.ovPush(sc[i]) // ascending: one comparison each
			}
		}
	} else {
		q.curVB = 0
		q.limVB = int64(size)
	}
	q.n = cnt
	q.lastN = cnt
	if q.lastN < minBuckets {
		q.lastN = minBuckets
	}
	q.scratch = sc[:0]
}

// densityShift derives the bucket width (as a shift) from the gaps between
// *distinct* timestamps among the earliest events of the sorted population:
// width ∈ (gap, 2·gap], i.e. one to two distinct instants per bucket.
// Sampling the head mirrors what the cursor is about to drain — LogGOPS
// schedules are densest at the present — and skipping duplicate timestamps
// matters because simulations fire whole ranks at the same instant: a
// same-time cluster shares a bucket at any width, so letting zero gaps drag
// the estimate down only thins the window for no occupancy gain. Events
// beyond the resulting window belong to the overflow heap, which is exactly
// what that tier is for. ok is false when the sample holds fewer than two
// distinct timestamps; the caller keeps the previous width.
func densityShift(sorted []ref) (uint, bool) {
	k := len(sorted)
	if k > 64 {
		k = 64
	}
	if k < 2 {
		return 0, false
	}
	distinct := 0
	last := sorted[0].t
	for i := 1; i < k; i++ {
		if sorted[i].t != last {
			distinct++
			last = sorted[i].t
		}
	}
	if distinct == 0 {
		return 0, false
	}
	span := int64(sorted[k-1].t) - int64(sorted[0].t)
	if span < 0 { // overflow of the sentinel range; treat as huge
		span = int64(simtime.Infinity)
	}
	gap := span / int64(distinct)
	shift := uint(bits.Len64(uint64(gap)))
	if shift > maxShift {
		shift = maxShift
	}
	return shift, true
}

// sortItems sorts by (t, prio, seq): insertion sort for the short runs a
// bucket typically holds, in-place heapsort beyond that. Both are
// allocation-free; stability is irrelevant because the key is total.
func sortItems(a []ref) {
	n := len(a)
	if n < 2 {
		return
	}
	if n <= 24 {
		for i := 1; i < n; i++ {
			it := a[i]
			j := i - 1
			for j >= 0 && less(&it, &a[j]) {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = it
		}
		return
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, 0, end)
	}
}

// siftDown restores the max-heap property rooted at root within a[:n].
func siftDown(a []ref, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && less(&a[c], &a[c+1]) {
			c++
		}
		if !less(&a[root], &a[c]) {
			return
		}
		a[root], a[c] = a[c], a[root]
		root = c
	}
}
