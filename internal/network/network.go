// Package network implements the LogGOPS point-to-point communication cost
// model used by the simulator.
//
// LogGOPS extends LogP/LogGP with per-byte CPU overhead (O) and an explicit
// eager/rendezvous protocol switch (S). The parameters are:
//
//	L — wire latency for the first byte of a message
//	o — per-message CPU overhead charged to sender and receiver
//	g — per-message gap: minimum interval between message injections (NIC)
//	G — per-byte gap: inverse bandwidth on the wire
//	O — per-byte CPU overhead: memory-copy cost on the hosts
//	S — rendezvous threshold: messages of at least S bytes use a
//	    request-to-send / clear-to-send handshake and cannot be delivered
//	    before the receiver has posted a matching receive
//
// The model is congestion-free between distinct node pairs, matching the
// authors' LogGOPSim simulator: only per-endpoint serialization (o on the
// CPU, g+G on the NIC) limits throughput. Per-byte parameters are float64
// nanoseconds-per-byte because realistic values are sub-nanosecond; all
// computed durations are rounded to integer nanoseconds once, at the edge.
package network

import (
	"fmt"
	"math"

	"checkpointsim/internal/simtime"
)

// Params holds a LogGOPS parameter set.
type Params struct {
	// Latency is L: the time for the first byte to cross the wire.
	Latency simtime.Duration
	// Overhead is o: CPU time charged per message at sender and receiver.
	Overhead simtime.Duration
	// Gap is g: minimum interval between consecutive message injections
	// at one NIC.
	Gap simtime.Duration
	// GapPerByte is G in ns/byte: inverse wire bandwidth.
	GapPerByte float64
	// OverheadPerByte is O in ns/byte: per-byte host CPU (copy) cost.
	OverheadPerByte float64
	// RendezvousThreshold is S in bytes: messages >= S use rendezvous.
	// Zero disables rendezvous (all messages eager).
	RendezvousThreshold int64
	// BisectionBytesPerSec, when positive, models a finite aggregate
	// fabric: all messages additionally serialize through a shared
	// resource at this bandwidth. Zero leaves the fabric unconstrained
	// (the classic congestion-free LogGOPS assumption).
	BisectionBytesPerSec float64
}

// Validate reports whether the parameter set is physically sensible.
func (p Params) Validate() error {
	if p.Latency < 0 || p.Overhead < 0 || p.Gap < 0 {
		return fmt.Errorf("network: negative time parameter: %+v", p)
	}
	if p.GapPerByte < 0 || p.OverheadPerByte < 0 {
		return fmt.Errorf("network: negative per-byte parameter: %+v", p)
	}
	if p.RendezvousThreshold < 0 {
		return fmt.Errorf("network: negative rendezvous threshold")
	}
	if math.IsNaN(p.GapPerByte) || math.IsNaN(p.OverheadPerByte) {
		return fmt.Errorf("network: NaN per-byte parameter")
	}
	if p.BisectionBytesPerSec < 0 || math.IsNaN(p.BisectionBytesPerSec) {
		return fmt.Errorf("network: bad bisection bandwidth %v", p.BisectionBytesPerSec)
	}
	return nil
}

// FabricOccupancy returns how long a message of the given size occupies the
// shared fabric, or 0 when the fabric is unconstrained.
func (p Params) FabricOccupancy(bytes int64) simtime.Duration {
	if p.BisectionBytesPerSec <= 0 || bytes <= 0 {
		return 0
	}
	return simtime.FromSeconds(float64(bytes) / p.BisectionBytesPerSec)
}

// perByte converts a float ns/byte rate applied to n bytes into a Duration.
// LogGP charges (s-1) per-byte units for an s-byte message: the first byte
// is covered by L / o / g.
func perByte(rate float64, bytes int64) simtime.Duration {
	if bytes <= 1 || rate == 0 {
		return 0
	}
	return simtime.Duration(math.Round(rate * float64(bytes-1)))
}

// SendCPU returns the sender CPU time for a message of the given size:
// o + (s-1)·O.
func (p Params) SendCPU(bytes int64) simtime.Duration {
	return p.Overhead + perByte(p.OverheadPerByte, bytes)
}

// RecvCPU returns the receiver CPU time for a message of the given size:
// o + (s-1)·O.
func (p Params) RecvCPU(bytes int64) simtime.Duration {
	return p.Overhead + perByte(p.OverheadPerByte, bytes)
}

// NIC returns the NIC occupancy for injecting a message of the given size:
// g + (s-1)·G. A rank cannot inject two messages closer together than this.
func (p Params) NIC(bytes int64) simtime.Duration {
	return p.Gap + perByte(p.GapPerByte, bytes)
}

// Wire returns the time from injection to arrival of the last byte:
// L + (s-1)·G.
func (p Params) Wire(bytes int64) simtime.Duration {
	return p.Latency + perByte(p.GapPerByte, bytes)
}

// Eager reports whether a message of the given size uses the eager protocol.
func (p Params) Eager(bytes int64) bool {
	return p.RendezvousThreshold == 0 || bytes < p.RendezvousThreshold
}

// PingPong returns the model's half-round-trip time for an eager message:
// the classic o + L + (s-1)·G + o. Used for validation against closed forms.
func (p Params) PingPong(bytes int64) simtime.Duration {
	return p.Overhead + p.Wire(bytes) + p.Overhead +
		2*perByte(p.OverheadPerByte, bytes)
}

// Bandwidth returns the asymptotic wire bandwidth in bytes/second implied by
// G, or +Inf when G is zero.
func (p Params) Bandwidth() float64 {
	if p.GapPerByte == 0 {
		return math.Inf(1)
	}
	return 1e9 / p.GapPerByte
}

// String renders the parameter set compactly.
func (p Params) String() string {
	return fmt.Sprintf("LogGOPS{L=%v o=%v g=%v G=%.3gns/B O=%.3gns/B S=%dB}",
		p.Latency, p.Overhead, p.Gap, p.GapPerByte, p.OverheadPerByte,
		p.RendezvousThreshold)
}

// DefaultParams returns the parameter set used throughout the experiments:
// an InfiniBand-class commodity cluster of the paper's era (≈2014).
// L = 5 µs, o = 2 µs, g = 3 µs, G = 0.3 ns/B (≈3.3 GB/s), O = 0.02 ns/B,
// S = 64 KiB.
func DefaultParams() Params {
	return Params{
		Latency:             5 * simtime.Microsecond,
		Overhead:            2 * simtime.Microsecond,
		Gap:                 3 * simtime.Microsecond,
		GapPerByte:          0.3,
		OverheadPerByte:     0.02,
		RendezvousThreshold: 64 * 1024,
	}
}

// CapabilityClassParams returns a parameter set for a capability-class MPP
// (Blue Gene / Cray class: lower latency and overhead, higher bandwidth).
// L = 2 µs, o = 0.5 µs, g = 1 µs, G = 0.15 ns/B (≈6.7 GB/s), S = 32 KiB.
func CapabilityClassParams() Params {
	return Params{
		Latency:             2 * simtime.Microsecond,
		Overhead:            500 * simtime.Nanosecond,
		Gap:                 1 * simtime.Microsecond,
		GapPerByte:          0.15,
		OverheadPerByte:     0.01,
		RendezvousThreshold: 32 * 1024,
	}
}

// EthernetClassParams returns a parameter set for a commodity 10 GbE
// cluster: higher latency and software overheads.
// L = 20 µs, o = 5 µs, g = 10 µs, G = 0.8 ns/B (≈1.25 GB/s), S = 16 KiB.
func EthernetClassParams() Params {
	return Params{
		Latency:             20 * simtime.Microsecond,
		Overhead:            5 * simtime.Microsecond,
		Gap:                 10 * simtime.Microsecond,
		GapPerByte:          0.8,
		OverheadPerByte:     0.05,
		RendezvousThreshold: 16 * 1024,
	}
}
