package network

import (
	"math"
	"testing"
	"testing/quick"

	"checkpointsim/internal/simtime"
)

func TestValidate(t *testing.T) {
	for _, p := range []Params{DefaultParams(), CapabilityClassParams(), EthernetClassParams(), {}} {
		if err := p.Validate(); err != nil {
			t.Errorf("%v should validate: %v", p, err)
		}
	}
	bad := []Params{
		{Latency: -1},
		{Overhead: -1},
		{Gap: -1},
		{GapPerByte: -0.5},
		{OverheadPerByte: -0.5},
		{RendezvousThreshold: -1},
		{GapPerByte: math.NaN()},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated", i)
		}
	}
}

func TestPerByteChargesSMinusOne(t *testing.T) {
	p := Params{GapPerByte: 2}
	// 1-byte message: no per-byte component.
	if got := p.Wire(1); got != 0 {
		t.Errorf("Wire(1) = %v, want 0 (L=0)", got)
	}
	// 11-byte message at 2 ns/B: 20 ns.
	if got := p.Wire(11); got != 20 {
		t.Errorf("Wire(11) = %v, want 20", got)
	}
	// Zero-size message behaves like one byte.
	if got := p.Wire(0); got != 0 {
		t.Errorf("Wire(0) = %v", got)
	}
}

func TestSendRecvCPU(t *testing.T) {
	p := Params{Overhead: 100, OverheadPerByte: 1}
	if got := p.SendCPU(1); got != 100 {
		t.Errorf("SendCPU(1) = %v", got)
	}
	if got := p.SendCPU(51); got != 150 {
		t.Errorf("SendCPU(51) = %v", got)
	}
	if p.RecvCPU(51) != p.SendCPU(51) {
		t.Error("symmetric o/O model should have equal send/recv CPU")
	}
}

func TestNIC(t *testing.T) {
	p := Params{Gap: 10, GapPerByte: 0.5}
	if got := p.NIC(1); got != 10 {
		t.Errorf("NIC(1) = %v", got)
	}
	if got := p.NIC(101); got != 60 {
		t.Errorf("NIC(101) = %v", got)
	}
}

func TestEagerThreshold(t *testing.T) {
	p := Params{RendezvousThreshold: 1024}
	if !p.Eager(1023) || p.Eager(1024) || p.Eager(4096) {
		t.Error("eager threshold boundary wrong")
	}
	p.RendezvousThreshold = 0
	if !p.Eager(1 << 40) {
		t.Error("threshold 0 should disable rendezvous")
	}
}

func TestPingPongClosedForm(t *testing.T) {
	p := DefaultParams()
	s := int64(8)
	want := 2*p.Overhead + p.Latency +
		simtime.Duration(math.Round(p.GapPerByte*float64(s-1))) +
		simtime.Duration(math.Round(p.OverheadPerByte*float64(s-1)))*2
	if got := p.PingPong(s); got != want {
		t.Errorf("PingPong(8) = %v, want %v", got, want)
	}
}

func TestBandwidth(t *testing.T) {
	p := Params{GapPerByte: 0.5}
	if got := p.Bandwidth(); got != 2e9 {
		t.Errorf("Bandwidth = %v, want 2e9", got)
	}
	p.GapPerByte = 0
	if !math.IsInf(p.Bandwidth(), 1) {
		t.Error("zero G should give infinite bandwidth")
	}
}

func TestString(t *testing.T) {
	if DefaultParams().String() == "" {
		t.Error("empty String")
	}
}

func TestPresetsAreOrdered(t *testing.T) {
	// Sanity: capability machines are faster than default, which is faster
	// than ethernet.
	cap, def, eth := CapabilityClassParams(), DefaultParams(), EthernetClassParams()
	if !(cap.Latency < def.Latency && def.Latency < eth.Latency) {
		t.Error("latency ordering wrong")
	}
	if !(cap.GapPerByte < def.GapPerByte && def.GapPerByte < eth.GapPerByte) {
		t.Error("bandwidth ordering wrong")
	}
}

// Property: all cost functions are monotone non-decreasing in message size.
func TestQuickMonotoneInSize(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return p.SendCPU(x) <= p.SendCPU(y) &&
			p.RecvCPU(x) <= p.RecvCPU(y) &&
			p.NIC(x) <= p.NIC(y) &&
			p.Wire(x) <= p.Wire(y) &&
			p.PingPong(x) <= p.PingPong(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: costs are non-negative for any size.
func TestQuickNonNegative(t *testing.T) {
	p := EthernetClassParams()
	f := func(a uint32) bool {
		s := int64(a)
		return p.SendCPU(s) >= 0 && p.NIC(s) >= 0 && p.Wire(s) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFabricOccupancy(t *testing.T) {
	p := Params{BisectionBytesPerSec: 1e9}
	if got := p.FabricOccupancy(1e9); got != simtime.Second {
		t.Errorf("occupancy = %v, want 1s", got)
	}
	if got := p.FabricOccupancy(0); got != 0 {
		t.Errorf("zero bytes occupancy = %v", got)
	}
	p.BisectionBytesPerSec = 0
	if got := p.FabricOccupancy(1 << 30); got != 0 {
		t.Errorf("unconstrained occupancy = %v", got)
	}
}

func TestBisectionValidation(t *testing.T) {
	p := DefaultParams()
	p.BisectionBytesPerSec = -1
	if err := p.Validate(); err == nil {
		t.Error("negative bisection accepted")
	}
	p.BisectionBytesPerSec = math.NaN()
	if err := p.Validate(); err == nil {
		t.Error("NaN bisection accepted")
	}
}
