package stats

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	c.Add(-5)
	if got := c.Value(); got != 8000 {
		t.Errorf("negative Add moved a counter: %d", got)
	}
	c.Add(2)
	if got := c.Value(); got != 8002 {
		t.Errorf("counter = %d, want 8002", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Add(1)
	if got := g.Value(); got != 8 {
		t.Errorf("gauge = %d, want 8", got)
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	l := NewLatencyHist(1e-6, 100, 120)
	// 90 fast observations around 1ms, 10 slow around 1s.
	for i := 0; i < 90; i++ {
		l.Observe(1e-3)
	}
	for i := 0; i < 10; i++ {
		l.Observe(1.0)
	}
	if got := l.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got, want := l.Sum(), 90*1e-3+10*1.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if got, want := l.Mean(), (90*1e-3+10*1.0)/100; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// p50 should land within a log bin of 1ms, p99 within a bin of 1s.
	if p50 := l.Quantile(0.5); p50 < 0.5e-3 || p50 > 2e-3 {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	if p99 := l.Quantile(0.99); p99 < 0.5 || p99 > 2 {
		t.Errorf("p99 = %v, want ~1s", p99)
	}
}

func TestLatencyHistEmptyAndBadObservations(t *testing.T) {
	l := NewLatencyHist(1e-6, 10, 30)
	if !math.IsNaN(l.Quantile(0.5)) || !math.IsNaN(l.Mean()) {
		t.Error("empty histogram should yield NaN quantile and mean")
	}
	l.Observe(0)
	l.Observe(-1)
	l.Observe(math.NaN())
	if got := l.Count(); got != 0 {
		t.Errorf("bad observations recorded: count = %d", got)
	}
}

// Out-of-range observations clamp to the edges instead of vanishing.
func TestLatencyHistClamping(t *testing.T) {
	l := NewLatencyHist(1e-3, 1, 10)
	l.Observe(1e-9) // below lo
	l.Observe(100)  // above hi
	if got := l.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if p0 := l.Quantile(0); math.Abs(p0-1e-3) > 1e-12 {
		t.Errorf("under-range quantile = %v, want lo = 1e-3", p0)
	}
	if p1 := l.Quantile(1); math.Abs(p1-1) > 1e-12 {
		t.Errorf("over-range quantile = %v, want hi = 1", p1)
	}
}

func TestLatencyHistBadBounds(t *testing.T) {
	for _, c := range []struct{ lo, hi float64 }{{0, 1}, {-1, 1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLatencyHist(%v, %v) did not panic", c.lo, c.hi)
				}
			}()
			NewLatencyHist(c.lo, c.hi, 10)
		}()
	}
}

func TestLatencyHistConcurrent(t *testing.T) {
	l := NewLatencyHist(1e-6, 10, 60)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Observe(1e-3)
				l.Quantile(0.5)
			}
		}()
	}
	wg.Wait()
	if got := l.Count(); got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
}
