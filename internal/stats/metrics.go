package stats

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
// The zero value is ready. cmd/sweepd exposes counters on /metrics in
// Prometheus text format.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depth, in-flight jobs).
// The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LatencyHist is a concurrency-safe latency histogram with quantile
// export. Observations are seconds; internally they are binned on a log10
// axis over [Lo, Hi] so the same instrument resolves sub-millisecond cache
// hits and minute-long full sweeps — a fixed-width axis at that dynamic
// range would pile every fast observation into one bin. Out-of-range
// observations clamp into the histogram's Under/Over buckets, which the
// quantile logic already maps to the range edges.
type LatencyHist struct {
	mu    sync.Mutex
	h     *Histogram
	sum   float64
	count int64
}

// NewLatencyHist creates a histogram spanning [lo, hi] seconds with nbins
// logarithmic bins. Bounds must be positive with lo < hi.
func NewLatencyHist(lo, hi float64, nbins int) *LatencyHist {
	if !(lo > 0) || !(hi > lo) {
		panic("stats: latency histogram bounds must satisfy 0 < lo < hi")
	}
	return &LatencyHist{h: NewHistogram(math.Log10(lo), math.Log10(hi), nbins)}
}

// Observe records one latency in seconds. Non-positive and NaN
// observations are dropped — a clock that ran backwards is not data.
func (l *LatencyHist) Observe(seconds float64) {
	if !(seconds > 0) { // rejects NaN too
		return
	}
	l.mu.Lock()
	l.h.Add(math.Log10(seconds))
	l.sum += seconds
	l.count++
	l.mu.Unlock()
}

// Count returns the number of recorded observations.
func (l *LatencyHist) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Sum returns the total of all recorded observations, in seconds.
func (l *LatencyHist) Sum() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sum
}

// Quantile returns the approximate q-th (0..1) latency quantile in
// seconds: the center of the log-scale bin holding that rank. NaN when
// empty.
func (l *LatencyHist) Quantile(q float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return math.NaN()
	}
	return math.Pow(10, l.h.Quantile(q))
}

// Mean returns the exact mean latency in seconds (NaN when empty) — exact
// because it comes from the running sum, not the bins.
func (l *LatencyHist) Mean() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return math.NaN()
	}
	return l.sum / float64(l.count)
}
