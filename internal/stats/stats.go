// Package stats provides the summary statistics used by the experiment
// harness: means, variances, percentiles, confidence intervals, histograms,
// and least-squares fits. It works on float64 slices and on streaming
// accumulators, all allocation-conscious and dependency-free.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts its input; use
// Percentiles for several cuts of the same data. NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// Percentiles returns the requested percentiles of xs with a single sort.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// tCrit95 holds the two-sided 95% Student-t critical values for 1..29
// degrees of freedom. Beyond that the normal approximation (1.96) is within
// 2% and CI95 falls back to it.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
}

// CI95 returns the half-width of the 95% confidence interval of the mean of
// xs. Small samples (n < 30) use the Student-t critical value for n-1
// degrees of freedom — quick-mode experiment sweeps run 2–10 replications,
// where the normal approximation understates the interval by 15–30% — and
// larger samples use the 1.96 asymptote. Returns 0 for n < 2.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	z := 1.96
	if df := n - 1; df <= len(tCrit95) {
		z = tCrit95[df-1]
	}
	return z * StdDev(xs) / math.Sqrt(float64(n))
}

// Summary holds the one-pass description of a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	P25, P50, P75  float64
	P95, P99, P999 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.Std, s.Min, s.Max = nan, nan, nan, nan
		s.P25, s.P50, s.P75, s.P95, s.P99, s.P999 = nan, nan, nan, nan, nan, nan
		return s
	}
	s.Mean = Mean(xs)
	s.Std = StdDev(xs)
	ps := Percentiles(xs, 0, 25, 50, 75, 95, 99, 99.9, 100)
	s.Min, s.P25, s.P50, s.P75, s.P95, s.P99, s.P999, s.Max =
		ps[0], ps[1], ps[2], ps[3], ps[4], ps[5], ps[6], ps[7]
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P99, s.Max)
}

// Accumulator is a streaming mean/variance accumulator (Welford's method),
// suitable for long simulations where retaining every sample is wasteful.
// The zero value is ready to use.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples added.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the running mean (NaN if empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the running unbiased variance (NaN if n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the running standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample seen (NaN if empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest sample seen (NaN if empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Merge combines another accumulator into a (parallel reduction).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// LinearFit returns the least-squares slope and intercept of y over x, plus
// the coefficient of determination R². It panics if len(x) != len(y) and
// returns NaNs for fewer than two points. Constant x (a degenerate one-point
// or flat sweep) has no defined slope; rather than dividing by zero and
// poisoning downstream report columns with NaNs, the fit degrades to the
// horizontal line through the data: slope 0, intercept mean(y), R² 0.
func LinearFit(x, y []float64) (slope, intercept, r2 float64) {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return slope, intercept, r2
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); samples outside
// the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi      float64
	Bins        []int64
	Under, Over int64
	n           int64
}

// NewHistogram creates a histogram with nbins equal bins spanning [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, nbins)}
}

// Add counts x into the histogram.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i >= len(h.Bins) { // guard float rounding at the top edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// N returns the total number of samples added (including out-of-range).
func (h *Histogram) N() int64 { return h.n }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Quantile returns an approximate quantile (0..1) from binned data: the
// center of the bin holding the ceil(q·n)-th smallest sample (at least the
// first, so q=0 names the minimum rather than an arbitrary empty bin).
// Quantiles that fall below Lo return Lo; above Hi return Hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	if target > h.n {
		target = h.n
	}
	cum := h.Under
	if cum >= target {
		return h.Lo
	}
	for i, c := range h.Bins {
		cum += c
		if cum >= target {
			return h.BinCenter(i)
		}
	}
	return h.Hi
}
