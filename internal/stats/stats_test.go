package stats

import (
	"math"
	"testing"
	"testing/quick"

	"checkpointsim/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); !approx(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); !approx(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) ||
		!math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) ||
		!math.IsNaN(Percentile(nil, 50)) || !math.IsNaN(Median(nil)) {
		t.Error("empty inputs should give NaN")
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
	if CI95(nil) != 0 || CI95([]float64{1}) != 0 {
		t.Error("CI95 of tiny input should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 || Sum(xs) != 12 {
		t.Errorf("min/max/sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); !approx(got, 5.5, 1e-12) {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); !approx(got, 3.25, 1e-12) {
		t.Errorf("p25 = %v", got)
	}
	// single element
	if got := Percentile([]float64{42}, 73); got != 42 {
		t.Errorf("single elem percentile = %v", got)
	}
}

func TestPercentilesMatchesPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7, 2, 8}
	got := Percentiles(xs, 10, 50, 90)
	for i, p := range []float64{10, 50, 90} {
		if want := Percentile(xs, p); !approx(got[i], want, 1e-12) {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 0, 101)
	for i := 0; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	s := Summarize(xs)
	if s.N != 101 || s.Mean != 50 || s.Min != 0 || s.Max != 100 || s.P50 != 50 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	es := Summarize(nil)
	if es.N != 0 || !math.IsNaN(es.Mean) {
		t.Errorf("empty Summarize = %+v", es)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	var a Accumulator
	for i := range xs {
		xs[i] = r.Normal(10, 3)
		a.Add(xs[i])
	}
	if !approx(a.Mean(), Mean(xs), 1e-9) {
		t.Errorf("acc mean %v vs %v", a.Mean(), Mean(xs))
	}
	if !approx(a.Variance(), Variance(xs), 1e-6) {
		t.Errorf("acc var %v vs %v", a.Variance(), Variance(xs))
	}
	if a.Min() != Min(xs) || a.Max() != Max(xs) {
		t.Error("acc min/max mismatch")
	}
	if a.N() != 1000 {
		t.Errorf("acc n = %d", a.N())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Variance()) ||
		!math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Error("empty accumulator should give NaN")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 500)
	var a, b, whole Accumulator
	for i := range xs {
		xs[i] = r.Exp(2)
		whole.Add(xs[i])
		if i < 200 {
			a.Add(xs[i])
		} else {
			b.Add(xs[i])
		}
	}
	a.Merge(&b)
	if !approx(a.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean %v vs %v", a.Mean(), whole.Mean())
	}
	if !approx(a.Variance(), whole.Variance(), 1e-6) {
		t.Errorf("merged var %v vs %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("merged min/max mismatch")
	}
	// Merging into empty copies.
	var e Accumulator
	e.Merge(&whole)
	if e.N() != whole.N() || e.Mean() != whole.Mean() {
		t.Error("merge into empty wrong")
	}
	// Merging empty is a no-op.
	n := whole.N()
	var e2 Accumulator
	whole.Merge(&e2)
	if whole.N() != n {
		t.Error("merge of empty changed state")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	slope, intercept, r2 := LinearFit(x, y)
	if !approx(slope, 2, 1e-12) || !approx(intercept, 1, 1e-12) || !approx(r2, 1, 1e-12) {
		t.Errorf("fit = %v %v %v", slope, intercept, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	s, _, _ := LinearFit([]float64{1}, []float64{2})
	if !math.IsNaN(s) {
		t.Error("fit of one point should be NaN")
	}
	// Constant x carries no slope information: the fit degrades to the
	// horizontal line through mean(y) instead of emitting NaNs.
	s, i, r2 := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !approx(s, 0, 1e-12) || !approx(i, 2, 1e-12) || !approx(r2, 0, 1e-12) {
		t.Errorf("constant-x fit = %v %v %v, want 0 mean(y)=2 0", s, i, r2)
	}
	// Constant x AND constant y: still finite, intercept = the y value.
	s, i, r2 = LinearFit([]float64{7, 7}, []float64{4, 4})
	if !approx(s, 0, 1e-12) || !approx(i, 4, 1e-12) || !approx(r2, 0, 1e-12) {
		t.Errorf("constant-xy fit = %v %v %v, want 0 4 0", s, i, r2)
	}
	// constant y has slope 0 and r2 1 (perfect fit)
	s2, i2, r2 := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if !approx(s2, 0, 1e-12) || !approx(i2, 5, 1e-12) || !approx(r2, 1, 1e-12) {
		t.Errorf("constant-y fit = %v %v %v", s2, i2, r2)
	}
}

func TestLinearFitPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)   // under
	h.Add(10)   // over (hi is exclusive)
	h.Add(12.5) // over
	for i, c := range h.Bins {
		if c != 1 {
			t.Errorf("bin %d = %d", i, c)
		}
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.N() != 13 {
		t.Errorf("N = %d", h.N())
	}
	if got := h.BinCenter(0); !approx(got, 0.5, 1e-12) {
		t.Errorf("BinCenter(0) = %v", got)
	}
	q := h.Quantile(0.5)
	if q < 3 || q > 7 {
		t.Errorf("median quantile = %v", q)
	}
}

func TestHistogramEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 0.3, 3)
	// 0.3 - tiny epsilon lands in last bin without indexing out of range.
	h.Add(math.Nextafter(0.3, 0))
	if h.Bins[2] != 1 {
		t.Errorf("edge sample not in last bin: %v", h.Bins)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on bad bounds")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("quantile of empty histogram should be NaN")
	}
}

func TestQuantileBoundaries(t *testing.T) {
	// One sample in bin 3 of [0,10)x10: every quantile — q=0 included —
	// must name that bin, not the empty first bin.
	h := NewHistogram(0, 10, 10)
	h.Add(3.5)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); !approx(got, 3.5, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want 3.5", q, got)
		}
	}
	// Samples in bins 1 and 8: q=0 is the minimum's bin, q=1 the maximum's.
	h = NewHistogram(0, 10, 10)
	h.Add(1.5)
	h.Add(8.5)
	if got := h.Quantile(0); !approx(got, 1.5, 1e-12) {
		t.Errorf("Quantile(0) = %v, want 1.5", got)
	}
	if got := h.Quantile(1); !approx(got, 8.5, 1e-12) {
		t.Errorf("Quantile(1) = %v, want 8.5", got)
	}
	// All samples below Lo: the quantile is off the histogram's left edge
	// and reports Lo rather than an arbitrary bin center.
	h = NewHistogram(0, 10, 10)
	h.Add(-1)
	h.Add(-2)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); !approx(got, 0, 1e-12) {
			t.Errorf("all-Under Quantile(%v) = %v, want Lo=0", q, got)
		}
	}
	// All samples above Hi: Over absorbs everything, quantiles report Hi.
	h = NewHistogram(0, 10, 10)
	h.Add(11)
	if got := h.Quantile(0.5); !approx(got, 10, 1e-12) {
		t.Errorf("all-Over Quantile(0.5) = %v, want Hi=10", got)
	}
}

func TestCI95SmallSampleUsesStudentT(t *testing.T) {
	// n=2, s=sqrt(2)/sqrt(2)... use {0, 2}: mean 1, sd sqrt(2).
	xs := []float64{0, 2}
	want := 12.706 * math.Sqrt2 / math.Sqrt(2) // t(df=1) * s / sqrt(n)
	if got := CI95(xs); !approx(got, want, 1e-9) {
		t.Errorf("CI95(n=2) = %v, want %v (t=12.706)", got, want)
	}
	// n=5 → t(4)=2.776.
	xs = []float64{1, 2, 3, 4, 5}
	want = 2.776 * StdDev(xs) / math.Sqrt(5)
	if got := CI95(xs); !approx(got, want, 1e-9) {
		t.Errorf("CI95(n=5) = %v, want %v (t=2.776)", got, want)
	}
	// Large n keeps the 1.96 asymptote.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 7)
	}
	want = 1.96 * StdDev(big) / math.Sqrt(100)
	if got := CI95(big); !approx(got, want, 1e-9) {
		t.Errorf("CI95(n=100) = %v, want %v (z=1.96)", got, want)
	}
}

// Property: mean is bounded by min and max.
func TestQuickMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	r := rng.New(5)
	f := func(n uint8) bool {
		m := int(n)%50 + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		ps := Percentiles(xs, 1, 25, 50, 75, 99)
		for i := 1; i < len(ps); i++ {
			if ps[i] < ps[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Welford accumulator variance is never negative.
func TestQuickAccumulatorNonNegativeVariance(t *testing.T) {
	r := rng.New(6)
	f := func(n uint8) bool {
		var a Accumulator
		for i := 0; i < int(n)+2; i++ {
			a.Add(r.Uniform(-1000, 1000))
		}
		return a.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
