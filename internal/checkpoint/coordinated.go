package checkpoint

import (
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// Coordinated is the classic globally-coordinated, blocking checkpointing
// protocol: every Interval, a coordinator quiesces all ranks over a
// binomial tree, all ranks write their checkpoints, and the round completes
// when every write has been acknowledged. The set of checkpoints from one
// round forms a consistent global recovery line, so no message logging is
// needed — but every round costs two tree sweeps of latency plus the
// synchronization idling it forces on early-arriving ranks.
type Coordinated struct {
	p     Params
	stats Stats
	coord *coordinator
	// lastLine is the completion time of the most recent full round — the
	// global recovery line.
	lastLine simtime.Time
	// lineStart is the start time of that round: on rollback, work since
	// lineStart is lost (the conservative bound used by recovery).
	lineStart simtime.Time
	rounds    []RoundRecord
}

// RoundRecord describes one completed coordinated round.
type RoundRecord struct {
	Start, End simtime.Time
}

// NewCoordinated builds the protocol. The first round starts one Interval
// into the run.
func NewCoordinated(p Params) (*Coordinated, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Coordinated{p: p}, nil
}

// Init implements sim.Agent.
func (c *Coordinated) Init(ctx *sim.Context) {
	c.setup(ctx)
	c.coord.schedule(simtime.Time(0).Add(c.p.Interval))
}

// setup wires the coordinator without scheduling its first round, so that
// DecodeState can rebuild it while the pending tick is restored from the
// snapshotted event queue.
func (c *Coordinated) setup(ctx *sim.Context) {
	members := make([]int, ctx.NumRanks())
	for i := range members {
		members[i] = i
	}
	c.coord = newCoordinator(ctx, c.p, members, &c.stats, nil,
		func(tick, end simtime.Time) {
			c.lastLine = end
			c.lineStart = tick
			c.rounds = append(c.rounds, RoundRecord{Start: tick, End: end})
		})
	c.coord.arm = func(t simtime.Time) { ctx.AtOwned(t, c, 0, 0) }
}

// OnTimer implements sim.TimerOwner: the only timer is the round tick.
func (c *Coordinated) OnTimer(uint8, int64) { c.coord.tick() }

// Quiesced implements sim.Resumable: snapshots wait for rounds to complete.
func (c *Coordinated) Quiesced() bool {
	return (c.coord == nil || !c.coord.active) && storeQuiesced(c.p.Store)
}

// EncodeState implements sim.Resumable.
func (c *Coordinated) EncodeState(enc *snapshot.Encoder) {
	encodeStats(enc, &c.stats)
	enc.Time(c.lastLine)
	enc.Time(c.lineStart)
	encodeRounds(enc, c.rounds)
	c.coord.encodeState(enc)
	encodeStore(enc, c.p.Store)
}

// DecodeState implements sim.Resumable.
func (c *Coordinated) DecodeState(ctx *sim.Context, dec *snapshot.Decoder) error {
	c.setup(ctx)
	decodeStats(dec, &c.stats)
	c.lastLine = dec.Time()
	c.lineStart = dec.Time()
	c.rounds = decodeRounds(dec)
	c.coord.decodeState(dec)
	decodeStore(ctx, dec, c.p.Store)
	return dec.Err()
}

// Name implements Protocol.
func (c *Coordinated) Name() string { return "coordinated" }

// Stats implements Protocol.
func (c *Coordinated) Stats() Stats { return c.stats }

// LastCheckpoint implements Protocol: every rank is covered by the last
// completed global line.
func (c *Coordinated) LastCheckpoint(int) simtime.Time { return c.lastLine }

// ProgressAtCheckpoint implements Protocol: the rank's application progress
// saved by the last completed global line.
func (c *Coordinated) ProgressAtCheckpoint(rank int) simtime.Duration {
	if c.coord == nil {
		return 0
	}
	return c.coord.committedBusy[rank]
}

// LastLineStart returns the start time of the last completed round; on a
// rollback, all work after this instant is lost.
func (c *Coordinated) LastLineStart() simtime.Time { return c.lineStart }

// Rounds returns the completed round records.
func (c *Coordinated) Rounds() []RoundRecord { return c.rounds }

var (
	_ Protocol      = (*Coordinated)(nil)
	_ sim.Resumable = (*Coordinated)(nil)
)
