package checkpoint

import (
	"strings"
	"testing"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/simtime"
)

func TestReplicationParamsValidate(t *testing.T) {
	if err := (ReplicationParams{}).Validate(); err != nil {
		t.Errorf("zero params rejected: %v", err)
	}
	bad := []ReplicationParams{
		{Degree: -1},
		{HeartbeatPeriod: -1},
		{HeartbeatBytes: -1},
		{TakeoverCost: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
		if _, err := NewReplication(p); err == nil {
			t.Errorf("constructor accepted bad params %d", i)
		}
	}
	rp, err := NewReplication(ReplicationParams{})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Degree() != 1 {
		t.Errorf("default degree = %d, want 1", rp.Degree())
	}
	if rp.Name() != "replication" {
		t.Errorf("name = %q", rp.Name())
	}
}

// widened embeds a half-machine stencil in a full machine so the upper
// ranks can serve as replicas.
func widened(t *testing.T, app, machine, iters int) *goal.Program {
	t.Helper()
	p := stencil(t, app, iters, simtime.Millisecond)
	w, err := goal.Widen(p, machine)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestReplicationMirrorsAndHeartbeats(t *testing.T) {
	rp, err := NewReplication(ReplicationParams{})
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, widened(t, 8, 16, 40), rp)
	st := rp.Stats()
	if rp.AppRanks() != 8 {
		t.Fatalf("app ranks = %d, want 8", rp.AppRanks())
	}
	// Every application send is primary→primary (replicas run no ops), so
	// the mirror counters must equal the application message counters
	// exactly — one duplicate per send at degree 1.
	if st.MirroredMessages != r.Metrics.AppMessages {
		t.Errorf("mirrored %d messages, app sent %d", st.MirroredMessages, r.Metrics.AppMessages)
	}
	if st.MirroredBytes != r.Metrics.AppBytes {
		t.Errorf("mirrored %d B, app sent %d B", st.MirroredBytes, r.Metrics.AppBytes)
	}
	if st.Heartbeats == 0 {
		t.Error("no heartbeats sent")
	}
	// Mirrors and heartbeats both ride the control path.
	if r.Metrics.CtlMessages != st.MirroredMessages+st.Heartbeats {
		t.Errorf("ctl messages %d != mirrored %d + heartbeats %d",
			r.Metrics.CtlMessages, st.MirroredMessages, st.Heartbeats)
	}
	if st.Writes != 0 {
		t.Errorf("replication wrote %d checkpoints, wants none", st.Writes)
	}
	if rp.LastCheckpoint(0) != 0 {
		t.Error("replication reports a checkpoint line")
	}
}

func TestReplicationRequiresDivisibleMachine(t *testing.T) {
	rp, err := NewReplication(ReplicationParams{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("indivisible machine accepted")
		}
		if !strings.Contains(r.(string), "divisible") {
			t.Errorf("panic %v does not explain divisibility", r)
		}
	}()
	runWith(t, stencil(t, 9, 5, simtime.Millisecond), rp)
}

func TestCICConstructorValidation(t *testing.T) {
	params := Params{Interval: 2 * simtime.Millisecond, Write: 100 * simtime.Microsecond}
	if _, err := NewCIC(Params{}, 1, Staggered); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewCIC(params, -1, Staggered); err == nil {
		t.Error("negative lag accepted")
	}
	if _, err := NewCIC(params, 1, Random+1); err == nil {
		t.Error("bad offset policy accepted")
	}
	cic, err := NewCIC(params, 0, Staggered)
	if err != nil {
		t.Fatal(err)
	}
	if cic.LagThreshold() != 1 {
		t.Errorf("default lag = %d, want 1", cic.LagThreshold())
	}
	if cic.Name() != "cic" {
		t.Errorf("name = %q", cic.Name())
	}
}

func TestCICForcesOnLaggedIndex(t *testing.T) {
	cic, err := NewCIC(Params{Interval: 2 * simtime.Millisecond, Write: 100 * simtime.Microsecond},
		1, Staggered)
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, stencil(t, 16, 60, simtime.Millisecond), cic)
	st := cic.Stats()
	if st.Writes == 0 {
		t.Fatal("no checkpoints written")
	}
	if st.Forced == 0 {
		t.Fatal("no forced checkpoints — induction untested")
	}
	if st.Forced > st.Writes {
		t.Errorf("forced %d > total writes %d", st.Forced, st.Writes)
	}
	for rank := 0; rank < 16; rank++ {
		if cic.LastCheckpoint(rank) == 0 {
			t.Errorf("rank %d has no recovery line", rank)
		}
	}
	if r.Makespan == 0 {
		t.Fatal("empty run")
	}
}

func TestCICLagThresholdDampsForcing(t *testing.T) {
	forced := func(lag int) int64 {
		cic, err := NewCIC(Params{Interval: 2 * simtime.Millisecond, Write: 100 * simtime.Microsecond},
			lag, Staggered)
		if err != nil {
			t.Fatal(err)
		}
		runWith(t, stencil(t, 16, 60, simtime.Millisecond), cic)
		return cic.Stats().Forced
	}
	f1, f4 := forced(1), forced(4)
	if f1 == 0 {
		t.Fatal("lag 1 forced nothing — comparison vacuous")
	}
	if f4 > f1 {
		t.Errorf("lag 4 forced %d checkpoints, more than lag 1's %d", f4, f1)
	}
}
