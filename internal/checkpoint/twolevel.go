package checkpoint

import (
	"fmt"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
	"checkpointsim/internal/storage"
)

// TwoLevelParams configure the multilevel (SCR/FTI-class) protocol.
type TwoLevelParams struct {
	// LocalInterval and LocalWrite configure the frequent, cheap level:
	// node-local (SSD/partner-memory) checkpoints. Timers are aligned
	// across ranks so the local checkpoints form an (approximately)
	// consistent set, as SCR's cached checkpoints do — and alignment is
	// also the cheapest offset policy for coupled codes (experiment E9).
	LocalInterval simtime.Duration
	LocalWrite    simtime.Duration
	// GlobalInterval and GlobalWrite configure the rare, expensive level:
	// coordinated parallel-filesystem checkpoints (full two-phase rounds).
	GlobalInterval simtime.Duration
	GlobalWrite    simtime.Duration
	// CtlBytes sizes the coordination control messages (default 64).
	CtlBytes int64
	// Store, when non-nil, routes both levels through the shared-storage
	// model: local writes drain through the node-local burst buffer
	// (TierNode), global rounds through the parallel filesystem
	// (TierGlobal). Nil — or an unconstrained tier — keeps the legacy fixed
	// durations for that level.
	Store *storage.Store
	// LocalBytes and GlobalBytes size the per-level images; zero derives
	// each from the level's write duration at the tier's lone-writer rate.
	LocalBytes  int64
	GlobalBytes int64
}

// Validate checks the parameter set.
func (p TwoLevelParams) Validate() error {
	if p.LocalInterval <= 0 || p.GlobalInterval <= 0 {
		return fmt.Errorf("checkpoint: two-level intervals must be positive")
	}
	if p.LocalWrite < 0 || p.GlobalWrite < 0 {
		return fmt.Errorf("checkpoint: negative write time")
	}
	if p.LocalInterval > p.GlobalInterval {
		return fmt.Errorf("checkpoint: local interval %v > global interval %v (levels inverted)",
			p.LocalInterval, p.GlobalInterval)
	}
	if p.CtlBytes < 0 {
		return fmt.Errorf("checkpoint: negative control size")
	}
	if p.LocalBytes < 0 || p.GlobalBytes < 0 {
		return fmt.Errorf("checkpoint: negative checkpoint size")
	}
	return nil
}

// TwoLevel is multilevel checkpointing in the SCR/FTI mold: each rank takes
// frequent, cheap local checkpoints on an aligned timer, while a
// coordinated round writes a rare, expensive global checkpoint to stable
// storage. Most failures (a process crash whose node survives, or whose
// partner copy is intact) recover from the local level; only severe
// failures fall through to the global line. The failure package's
// RecoverTwoLevel discipline draws the severity and asks this protocol for
// the matching recovery line.
type TwoLevel struct {
	p     TwoLevelParams
	stats Stats
	ctx   *sim.Context

	coord *coordinator // the global level

	// local level
	localLast   []simtime.Time
	localBusyAt []simtime.Duration
	// global level (committed lines)
	globalLast   simtime.Time
	globalBusyAt []simtime.Duration
	localWrites  int64
	globalWrites int64
}

// NewTwoLevel builds the protocol.
func NewTwoLevel(p TwoLevelParams) (*TwoLevel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &TwoLevel{p: p}, nil
}

// Timer kinds for the defunctionalized two-level timers.
const (
	tlTimerLocal  uint8 = 0 // arg = rank
	tlTimerGlobal uint8 = 1 // the coordinated round tick
)

// Init implements sim.Agent.
func (tl *TwoLevel) Init(ctx *sim.Context) {
	tl.setup(ctx)
	n := ctx.NumRanks()
	// Local level: aligned independent timers (consistent-set semantics).
	for r := 0; r < n; r++ {
		ctx.AtOwned(simtime.Time(0).Add(tl.p.LocalInterval), tl, tlTimerLocal, int64(r))
	}
	tl.coord.schedule(simtime.Time(0).Add(tl.p.GlobalInterval))
}

// setup allocates the per-rank state and wires the global coordinator
// without scheduling anything, for both Init and DecodeState.
func (tl *TwoLevel) setup(ctx *sim.Context) {
	tl.ctx = ctx
	n := ctx.NumRanks()
	tl.localLast = make([]simtime.Time, n)
	tl.localBusyAt = make([]simtime.Duration, n)
	tl.globalBusyAt = make([]simtime.Duration, n)

	// Global level: a full coordinated round.
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	gp := Params{Interval: tl.p.GlobalInterval, Write: tl.p.GlobalWrite, CtlBytes: tl.p.CtlBytes,
		Store: tl.p.Store, Tier: storage.TierGlobal, Bytes: tl.p.GlobalBytes}
	tl.coord = newCoordinator(ctx, gp, members, &tl.stats, nil,
		func(tick, end simtime.Time) {
			tl.globalLast = end
			copy(tl.globalBusyAt, tl.coord.committedBusy)
			tl.globalWrites += int64(n)
		})
	tl.coord.arm = func(t simtime.Time) { ctx.AtOwned(t, tl, tlTimerGlobal, 0) }
}

// OnTimer implements sim.TimerOwner.
func (tl *TwoLevel) OnTimer(kind uint8, arg int64) {
	if kind == tlTimerLocal {
		tl.fireLocal(int(arg))
		return
	}
	tl.coord.tick()
}

func (tl *TwoLevel) fireLocal(rank int) {
	fired := tl.ctx.Now()
	storeWrite(tl.ctx, tl.p.Store, storage.TierNode, rank, tl.p.LocalWrite, tl.p.LocalBytes,
		func(end simtime.Time) {
			tl.stats.Writes++
			tl.localWrites++
			tl.localLast[rank] = end
			tl.localBusyAt[rank] = tl.ctx.RankBusy(rank)
			next := simtime.Max(fired.Add(tl.p.LocalInterval), end)
			tl.ctx.AtOwned(next, tl, tlTimerLocal, int64(rank))
		})
}

// Quiesced implements sim.Resumable.
func (tl *TwoLevel) Quiesced() bool {
	return (tl.coord == nil || !tl.coord.active) && storeQuiesced(tl.p.Store)
}

// EncodeState implements sim.Resumable.
func (tl *TwoLevel) EncodeState(enc *snapshot.Encoder) {
	encodeStats(enc, &tl.stats)
	snapshot.EncodeI64Slice(enc, tl.localLast)
	snapshot.EncodeI64Slice(enc, tl.localBusyAt)
	enc.Time(tl.globalLast)
	snapshot.EncodeI64Slice(enc, tl.globalBusyAt)
	enc.I64(tl.localWrites)
	enc.I64(tl.globalWrites)
	tl.coord.encodeState(enc)
	encodeStore(enc, tl.p.Store)
}

// DecodeState implements sim.Resumable.
func (tl *TwoLevel) DecodeState(ctx *sim.Context, dec *snapshot.Decoder) error {
	tl.setup(ctx)
	n := ctx.NumRanks()
	decodeStats(dec, &tl.stats)
	tl.localLast = snapshot.DecodeI64Slice[simtime.Time](dec, n)
	tl.localBusyAt = snapshot.DecodeI64Slice[simtime.Duration](dec, n)
	tl.globalLast = dec.Time()
	tl.globalBusyAt = snapshot.DecodeI64Slice[simtime.Duration](dec, n)
	tl.localWrites = dec.I64()
	tl.globalWrites = dec.I64()
	tl.coord.decodeState(dec)
	decodeStore(ctx, dec, tl.p.Store)
	return dec.Err()
}

// Name implements Protocol.
func (tl *TwoLevel) Name() string { return "twolevel" }

// Stats implements Protocol. Writes counts both levels; Rounds counts
// global rounds.
func (tl *TwoLevel) Stats() Stats { return tl.stats }

// LastCheckpoint implements Protocol: the freshest line covering the rank
// (normally the local one).
func (tl *TwoLevel) LastCheckpoint(rank int) simtime.Time {
	return simtime.Max(tl.localLast[rank], tl.globalLast)
}

// ProgressAtCheckpoint implements Protocol, matching LastCheckpoint.
func (tl *TwoLevel) ProgressAtCheckpoint(rank int) simtime.Duration {
	if tl.localLast[rank] >= tl.globalLast {
		return tl.localBusyAt[rank]
	}
	return tl.globalBusyAt[rank]
}

// GlobalCheckpoint returns the last committed global line time.
func (tl *TwoLevel) GlobalCheckpoint() simtime.Time { return tl.globalLast }

// GlobalProgressAt returns the rank's progress saved by the global line.
func (tl *TwoLevel) GlobalProgressAt(rank int) simtime.Duration {
	return tl.globalBusyAt[rank]
}

// LevelWrites returns the per-level write counts (local, global).
func (tl *TwoLevel) LevelWrites() (local, global int64) {
	return tl.localWrites, tl.globalWrites
}

var (
	_ Protocol      = (*TwoLevel)(nil)
	_ sim.Resumable = (*TwoLevel)(nil)
)
