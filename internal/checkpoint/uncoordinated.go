package checkpoint

import (
	"fmt"
	"math"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// OffsetPolicy selects how uncoordinated per-rank checkpoint timers are
// offset relative to each other.
type OffsetPolicy uint8

const (
	// Aligned starts every rank's timer at the same phase — all ranks
	// checkpoint (nearly) simultaneously, like a coordinated protocol
	// without the coordination messages.
	Aligned OffsetPolicy = iota
	// Staggered spreads offsets evenly across the interval: rank r fires
	// at phase r/P·Interval. At most ~1/P of the machine checkpoints at a
	// time.
	Staggered
	// Random draws each rank's offset uniformly from [0, Interval).
	Random
)

// String returns the lowercase policy name.
func (o OffsetPolicy) String() string {
	switch o {
	case Aligned:
		return "aligned"
	case Staggered:
		return "staggered"
	case Random:
		return "random"
	}
	return fmt.Sprintf("offset(%d)", uint8(o))
}

// ParseOffsetPolicy parses a policy name.
func ParseOffsetPolicy(s string) (OffsetPolicy, error) {
	switch s {
	case "aligned":
		return Aligned, nil
	case "staggered":
		return Staggered, nil
	case "random":
		return Random, nil
	}
	return 0, fmt.Errorf("checkpoint: unknown offset policy %q", s)
}

// LogParams configures sender-based message logging.
type LogParams struct {
	// Alpha is the fixed CPU cost charged per logged message.
	Alpha simtime.Duration
	// BetaNsPerByte is the per-byte CPU cost (the memcpy into the payload
	// log), in nanoseconds per byte.
	BetaNsPerByte float64
}

// Validate checks the logging parameters.
func (l LogParams) Validate() error {
	if l.Alpha < 0 {
		return fmt.Errorf("checkpoint: negative logging alpha")
	}
	if l.BetaNsPerByte < 0 || math.IsNaN(l.BetaNsPerByte) {
		return fmt.Errorf("checkpoint: bad logging beta %v", l.BetaNsPerByte)
	}
	return nil
}

// penalty returns the CPU cost of logging one message.
func (l LogParams) penalty(bytes int64) simtime.Duration {
	return l.Alpha + simtime.Duration(math.Round(l.BetaNsPerByte*float64(bytes)))
}

// Uncoordinated is independent local checkpointing with sender-based
// message logging. Each rank seizes its own CPU for Write every Interval,
// phase-shifted according to the offset policy; no control messages are
// exchanged. Every application send is taxed with the logging penalty so
// that, on failure, the failed rank alone can roll back and be replayed
// from its partners' logs.
type Uncoordinated struct {
	p      Params
	policy OffsetPolicy
	log    LogParams
	// inc, when FullEvery > 1, switches to incremental writes (see
	// NewUncoordinatedIncremental).
	inc     IncrementalParams
	stats   Stats
	last    []simtime.Time
	busyAt  []simtime.Duration
	nwrites []int64
	ctx     *sim.Context
}

// NewUncoordinated builds the protocol.
func NewUncoordinated(p Params, policy OffsetPolicy, log LogParams) (*Uncoordinated, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := log.Validate(); err != nil {
		return nil, err
	}
	if policy > Random {
		return nil, fmt.Errorf("checkpoint: bad offset policy %d", policy)
	}
	return &Uncoordinated{p: p, policy: policy, log: log}, nil
}

// Init implements sim.Agent.
func (u *Uncoordinated) Init(ctx *sim.Context) {
	u.ctx = ctx
	n := ctx.NumRanks()
	u.last = make([]simtime.Time, n)
	u.busyAt = make([]simtime.Duration, n)
	u.nwrites = make([]int64, n)
	for r := 0; r < n; r++ {
		var off simtime.Duration
		switch u.policy {
		case Aligned:
			off = 0
		case Staggered:
			off = simtime.Duration(int64(u.p.Interval) * int64(r) / int64(n))
		case Random:
			off = simtime.Duration(ctx.Rand().Intn(int(u.p.Interval)))
		}
		ctx.AtOwned(simtime.Time(0).Add(u.p.Interval+off), u, 0, int64(r))
	}
}

// OnTimer implements sim.TimerOwner: arg is the rank whose local timer fired.
func (u *Uncoordinated) OnTimer(_ uint8, arg int64) { u.fire(int(arg)) }

func (u *Uncoordinated) fire(rank int) {
	fired := u.ctx.Now()
	u.nwrites[rank]++
	n := u.nwrites[rank]
	storeWrite(u.ctx, u.p.Store, u.p.Tier, rank, u.writeDuration(n), u.writeBytes(n), func(end simtime.Time) {
		u.stats.Writes++
		u.last[rank] = end
		u.busyAt[rank] = u.ctx.RankBusy(rank)
		next := simtime.Max(fired.Add(u.p.Interval), end)
		u.ctx.AtOwned(next, u, 0, int64(rank))
	})
}

// Quiesced implements sim.Resumable. In-flight direct writes block the
// boundary through the engine's job scans; store-queued writes block here.
func (u *Uncoordinated) Quiesced() bool { return storeQuiesced(u.p.Store) }

// EncodeState implements sim.Resumable.
func (u *Uncoordinated) EncodeState(enc *snapshot.Encoder) {
	encodeStats(enc, &u.stats)
	snapshot.EncodeI64Slice(enc, u.last)
	snapshot.EncodeI64Slice(enc, u.busyAt)
	snapshot.EncodeI64Slice(enc, u.nwrites)
	encodeStore(enc, u.p.Store)
}

// DecodeState implements sim.Resumable. The pending per-rank timers are
// restored with the event queue, so no rescheduling happens here.
func (u *Uncoordinated) DecodeState(ctx *sim.Context, dec *snapshot.Decoder) error {
	u.ctx = ctx
	n := ctx.NumRanks()
	decodeStats(dec, &u.stats)
	u.last = snapshot.DecodeI64Slice[simtime.Time](dec, n)
	u.busyAt = snapshot.DecodeI64Slice[simtime.Duration](dec, n)
	u.nwrites = snapshot.DecodeI64Slice[int64](dec, n)
	decodeStore(ctx, dec, u.p.Store)
	return dec.Err()
}

// SendPenalty implements sim.SendHook: the sender-based logging tax.
func (u *Uncoordinated) SendPenalty(src, dst int, bytes int64) simtime.Duration {
	d := u.log.penalty(bytes)
	u.stats.LoggedMessages++
	u.stats.LoggedBytes += bytes
	u.stats.LogPenalty += d
	return d
}

// LogConfig returns the logging parameter set (see validate.TaxedLogger).
func (u *Uncoordinated) LogConfig() LogParams { return u.log }

// Taxed reports whether a src→dst application send pays the logging tax:
// under uncoordinated checkpointing, every send does.
func (u *Uncoordinated) Taxed(src, dst int) bool { return true }

// Name implements Protocol.
func (u *Uncoordinated) Name() string {
	name := "uncoordinated-" + u.policy.String()
	if u.inc.FullEvery > 1 {
		name += "-incremental"
	}
	return name
}

// Stats implements Protocol.
func (u *Uncoordinated) Stats() Stats { return u.stats }

// LastCheckpoint implements Protocol: each rank recovers from its own most
// recent local checkpoint (message logs cover the rest).
func (u *Uncoordinated) LastCheckpoint(rank int) simtime.Time { return u.last[rank] }

// ProgressAtCheckpoint implements Protocol: the progress saved by the
// rank's last local checkpoint.
func (u *Uncoordinated) ProgressAtCheckpoint(rank int) simtime.Duration {
	return u.busyAt[rank]
}

var (
	_ Protocol      = (*Uncoordinated)(nil)
	_ sim.SendHook  = (*Uncoordinated)(nil)
	_ sim.Resumable = (*Uncoordinated)(nil)
)
