package checkpoint

import (
	"fmt"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// ReplicationParams configures replication-based resilience.
type ReplicationParams struct {
	// Degree is the number of replica ranks shadowing each application rank
	// (default 1). A machine of N ranks runs N/(Degree+1) application
	// ranks; the rest are replicas.
	Degree int
	// HeartbeatPeriod is the interval between primary→replica heartbeat
	// control messages (default 1ms). A replica declares its primary dead
	// when the heartbeat after the next scheduled one misses its slot, so
	// the period bounds failure-detection latency.
	HeartbeatPeriod simtime.Duration
	// HeartbeatBytes is the heartbeat message size (default 64).
	HeartbeatBytes int64
	// TakeoverCost is the promotion cost a replica pays after detection —
	// rewiring communicators and resuming from its live mirrored state
	// (default 500µs).
	TakeoverCost simtime.Duration
}

// Validate checks the parameter set.
func (p ReplicationParams) Validate() error {
	if p.Degree < 0 {
		return fmt.Errorf("checkpoint: negative replica degree %d", p.Degree)
	}
	if p.HeartbeatPeriod < 0 {
		return fmt.Errorf("checkpoint: negative heartbeat period %v", p.HeartbeatPeriod)
	}
	if p.HeartbeatBytes < 0 {
		return fmt.Errorf("checkpoint: negative heartbeat size %d", p.HeartbeatBytes)
	}
	if p.TakeoverCost < 0 {
		return fmt.Errorf("checkpoint: negative takeover cost %v", p.TakeoverCost)
	}
	return nil
}

func (p ReplicationParams) degree() int {
	if p.Degree == 0 {
		return 1
	}
	return p.Degree
}

func (p ReplicationParams) period() simtime.Duration {
	if p.HeartbeatPeriod == 0 {
		return simtime.Millisecond
	}
	return p.HeartbeatPeriod
}

func (p ReplicationParams) hbBytes() int64 {
	if p.HeartbeatBytes == 0 {
		return 64
	}
	return p.HeartbeatBytes
}

func (p ReplicationParams) takeover() simtime.Duration {
	if p.TakeoverCost == 0 {
		return 500 * simtime.Microsecond
	}
	return p.TakeoverCost
}

// Replication is replication-based resilience (the TeaMPI design point):
// application rank r < A is shadowed by Degree dedicated replica ranks at
// r + k·A, where A = NumRanks/(Degree+1). There are no checkpoints and no
// rollback. Every application send between primaries is duplicated to the
// destination's replicas as a real control message — the duplication
// overhead contends for the sender's CPU and NIC and the replicas' CPUs on
// the LogGOPS network. Primaries heartbeat their replicas; when a primary
// fails, a replica takes over after heartbeat detection plus a promotion
// cost, and the application loses no work. The price is the 1/(Degree+1)
// effective machine: callers embed the application in a machine
// (Degree+1)× its size (goal.Widen), so equal-work comparisons against
// checkpointing protocols are honest about the spare resources.
type Replication struct {
	p        ReplicationParams
	stats    Stats
	ctx      *sim.Context
	app      int            // application (primary) ranks; replicas are >= app
	nextBeat []simtime.Time // per-primary next scheduled heartbeat fire
}

// NewReplication builds the protocol.
func NewReplication(p ReplicationParams) (*Replication, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Replication{p: p}, nil
}

// Init implements sim.Agent: lay out the primary/replica pairing and start
// the staggered heartbeat timers.
func (rp *Replication) Init(ctx *sim.Context) {
	rp.ctx = ctx
	n := ctx.NumRanks()
	g := rp.p.degree() + 1
	if n%g != 0 {
		panic(fmt.Sprintf("checkpoint: replication degree %d needs a machine divisible by %d ranks, have %d (widen the program first)",
			rp.p.degree(), g, n))
	}
	rp.app = n / g
	rp.nextBeat = make([]simtime.Time, rp.app)
	period := rp.p.period()
	for r := 0; r < rp.app; r++ {
		off := simtime.Duration(int64(period) * int64(r) / int64(rp.app))
		first := simtime.Time(0).Add(period + off)
		rp.nextBeat[r] = first
		ctx.AtOwned(first, rp, 0, int64(r))
	}
}

// OnTimer implements sim.TimerOwner: arg is the primary whose heartbeat
// timer fired.
func (rp *Replication) OnTimer(_ uint8, arg int64) { rp.beat(int(arg)) }

// beat sends one heartbeat from a primary to each of its replicas and
// re-arms the timer.
func (rp *Replication) beat(rank int) {
	if rp.ctx.OpsRemaining() == 0 {
		return
	}
	for k := 1; k <= rp.p.degree(); k++ {
		rp.stats.Heartbeats++
		rp.ctx.SendControl(rank, rank+k*rp.app, rp.p.hbBytes(), nil)
	}
	next := rp.ctx.Now().Add(rp.p.period())
	rp.nextBeat[rank] = next
	rp.ctx.AtOwned(next, rp, 0, int64(rank))
}

// Quiesced implements sim.Resumable: heartbeats and mirrored sends carry no
// delivery callbacks, so the protocol never blocks a boundary.
func (rp *Replication) Quiesced() bool { return true }

// EncodeState implements sim.Resumable.
func (rp *Replication) EncodeState(enc *snapshot.Encoder) {
	encodeStats(enc, &rp.stats)
	snapshot.EncodeI64Slice(enc, rp.nextBeat)
}

// DecodeState implements sim.Resumable. The primary/replica layout is a
// pure function of the configuration, so it is recomputed, not decoded.
func (rp *Replication) DecodeState(ctx *sim.Context, dec *snapshot.Decoder) error {
	rp.ctx = ctx
	n := ctx.NumRanks()
	g := rp.p.degree() + 1
	if n%g != 0 {
		dec.Failf("replication degree %d with %d ranks", rp.p.degree(), n)
		return dec.Err()
	}
	rp.app = n / g
	decodeStats(dec, &rp.stats)
	rp.nextBeat = snapshot.DecodeI64Slice[simtime.Time](dec, rp.app)
	return dec.Err()
}

// SendPenalty implements sim.SendHook: every application send between
// primaries is duplicated to the destination's replicas as real control
// messages. The hook itself charges no extra CPU — the duplicates' costs
// (sender o per copy, NIC serialization, replica recv o) are paid by the
// control path they traverse.
func (rp *Replication) SendPenalty(src, dst int, bytes int64) simtime.Duration {
	if src >= rp.app || dst >= rp.app {
		return 0
	}
	for k := 1; k <= rp.p.degree(); k++ {
		rp.stats.MirroredMessages++
		rp.stats.MirroredBytes += bytes
		rp.ctx.SendControl(src, dst+k*rp.app, bytes, nil)
	}
	return 0
}

// Takeover implements failure.ReplicaProtocol: absorb the failure of victim
// at time now. A failed primary stalls its logical rank for the heartbeat
// detection delay plus the promotion cost, then continues from the
// replica's live state — no work is lost. A failed spare replica does not
// stall the application at all (the pair resynchronizes in the background),
// and the repaired pair remains eligible for later failures.
func (rp *Replication) Takeover(victim int, now simtime.Time) (rank int, cost simtime.Duration, stalls bool) {
	if victim >= rp.app {
		return victim, 0, false
	}
	// The replica declares the primary dead when the heartbeat after the
	// next scheduled one misses its slot.
	detect := rp.nextBeat[victim].Add(rp.p.period()).Sub(now)
	if detect < 0 {
		detect = rp.p.period()
	}
	rp.stats.Takeovers++
	rp.ctx.Mark(victim, "rep-takeover", int64(victim))
	return victim, detect + rp.p.takeover(), true
}

// Degree returns the configured replica degree (see validate.ReplicaMirror).
func (rp *Replication) Degree() int { return rp.p.degree() }

// AppRanks returns the number of application (primary) ranks; valid after
// Init.
func (rp *Replication) AppRanks() int { return rp.app }

// Name implements Protocol.
func (rp *Replication) Name() string { return "replication" }

// Stats implements Protocol.
func (rp *Replication) Stats() Stats { return rp.stats }

// LastCheckpoint implements Protocol: replication keeps no checkpoints —
// the replica's live state is always current.
func (rp *Replication) LastCheckpoint(int) simtime.Time { return 0 }

// ProgressAtCheckpoint implements Protocol: the replica mirrors all
// progress, so nothing is ever lost.
func (rp *Replication) ProgressAtCheckpoint(rank int) simtime.Duration {
	if rp.ctx == nil {
		return 0
	}
	return rp.ctx.RankBusy(rank)
}

var (
	_ Protocol      = (*Replication)(nil)
	_ sim.SendHook  = (*Replication)(nil)
	_ sim.Resumable = (*Replication)(nil)
)
