package checkpoint

import (
	"fmt"
	"sort"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// cicChan keys the per-channel queue of piggybacked checkpoint indices.
type cicChan struct {
	src, dst int32
}

// CIC is index-based communication-induced checkpointing (the
// Briatico–Ciuffoletti–Simoncini family in Garcia et al.'s survey). Each
// rank keeps a Lamport-style checkpoint index, incremented by basic
// checkpoints on an independent local timer and piggybacked on every
// application message. When a receiver's index lags a message's piggybacked
// index by at least LagThreshold, it takes a forced checkpoint — before the
// message is processed — and adopts the sender's index. Threshold 1 is the
// classic Z-path-free rule: no sequence of messages can thread checkpoints
// into a useless (Z-cycle) recovery line, so a consistent global state
// always exists without any coordination messages. Larger thresholds trade
// forced-checkpoint load for a weaker guarantee.
//
// Indices ride in message headers, so the piggyback itself is free; the
// protocol's cost is entirely the forced writes, which go through the same
// storage path as every other checkpoint. Index pairing uses per-channel
// FIFO queues: with single-threaded ranks and non-overtaking channels,
// match order equals send order per channel (tag-reordered wildcard
// matching could mispair two in-flight indices on one channel, which at
// worst shifts a forced checkpoint by one message).
type CIC struct {
	p      Params
	lag    int64
	policy OffsetPolicy
	stats  Stats
	ctx    *sim.Context
	idx    []int64
	last   []simtime.Time
	busyAt []simtime.Duration
	queues map[cicChan][]int64
}

// NewCIC builds the protocol. lag is the index-lag threshold (default 1);
// policy staggers the basic-checkpoint timers.
func NewCIC(p Params, lag int, policy OffsetPolicy) (*CIC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if lag < 0 {
		return nil, fmt.Errorf("checkpoint: negative CIC lag threshold %d", lag)
	}
	if lag == 0 {
		lag = 1
	}
	if policy > Random {
		return nil, fmt.Errorf("checkpoint: bad offset policy %d", policy)
	}
	return &CIC{p: p, lag: int64(lag), policy: policy, queues: make(map[cicChan][]int64)}, nil
}

// Init implements sim.Agent: start the basic-checkpoint timers.
func (c *CIC) Init(ctx *sim.Context) {
	c.ctx = ctx
	n := ctx.NumRanks()
	c.idx = make([]int64, n)
	c.last = make([]simtime.Time, n)
	c.busyAt = make([]simtime.Duration, n)
	for r := 0; r < n; r++ {
		var off simtime.Duration
		switch c.policy {
		case Aligned:
			off = 0
		case Staggered:
			off = simtime.Duration(int64(c.p.Interval) * int64(r) / int64(n))
		case Random:
			off = simtime.Duration(ctx.Rand().Intn(int(c.p.Interval)))
		}
		ctx.AtOwned(simtime.Time(0).Add(c.p.Interval+off), c, 0, int64(r))
	}
}

// OnTimer implements sim.TimerOwner: arg is the rank whose basic-checkpoint
// timer fired.
func (c *CIC) OnTimer(_ uint8, arg int64) { c.fire(int(arg)) }

// fire takes one basic checkpoint: increment the rank's index and write.
func (c *CIC) fire(rank int) {
	fired := c.ctx.Now()
	c.idx[rank]++
	v := c.idx[rank]
	c.p.write(c.ctx, rank, func(end simtime.Time) {
		c.stats.Writes++
		c.last[rank] = end
		c.busyAt[rank] = c.ctx.RankBusy(rank)
		c.ctx.Mark(rank, "cic-basic", v)
		next := simtime.Max(fired.Add(c.p.Interval), end)
		c.ctx.AtOwned(next, c, 0, int64(rank))
	})
}

// Quiesced implements sim.Resumable: in-flight writes block the boundary
// through the engine's job scans; store-queued writes block here.
func (c *CIC) Quiesced() bool { return storeQuiesced(c.p.Store) }

// EncodeState implements sim.Resumable. The per-channel piggyback queues can
// be non-empty at a boundary (indices of sent-but-unmatched messages); they
// are emitted in (src,dst) order for determinism.
func (c *CIC) EncodeState(enc *snapshot.Encoder) {
	encodeStats(enc, &c.stats)
	snapshot.EncodeI64Slice(enc, c.idx)
	snapshot.EncodeI64Slice(enc, c.last)
	snapshot.EncodeI64Slice(enc, c.busyAt)
	keys := make([]cicChan, 0, len(c.queues))
	for k := range c.queues {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	enc.Int(len(keys))
	for _, k := range keys {
		enc.Int(int(k.src))
		enc.Int(int(k.dst))
		snapshot.EncodeI64Slice(enc, c.queues[k])
	}
	encodeStore(enc, c.p.Store)
}

// DecodeState implements sim.Resumable.
func (c *CIC) DecodeState(ctx *sim.Context, dec *snapshot.Decoder) error {
	c.ctx = ctx
	n := ctx.NumRanks()
	decodeStats(dec, &c.stats)
	c.idx = snapshot.DecodeI64Slice[int64](dec, n)
	c.last = snapshot.DecodeI64Slice[simtime.Time](dec, n)
	c.busyAt = snapshot.DecodeI64Slice[simtime.Duration](dec, n)
	nq := dec.Int()
	if nq < 0 || nq > dec.Remaining() {
		dec.Failf("cic queue count %d", nq)
		return dec.Err()
	}
	c.queues = make(map[cicChan][]int64, nq)
	for i := 0; i < nq; i++ {
		src, dst := dec.Int(), dec.Int()
		q := snapshot.DecodeI64Slice[int64](dec, -1)
		if dec.Err() != nil {
			return dec.Err()
		}
		if src < 0 || src >= n || dst < 0 || dst >= n {
			dec.Failf("cic channel %d->%d out of range", src, dst)
			return dec.Err()
		}
		c.queues[cicChan{int32(src), int32(dst)}] = q
	}
	decodeStore(ctx, dec, c.p.Store)
	return dec.Err()
}

// SendPenalty implements sim.SendHook: record the sender's index for the
// in-flight message (the piggyback). No CPU is charged — indices ride in
// the header.
func (c *CIC) SendPenalty(src, dst int, bytes int64) simtime.Duration {
	key := cicChan{int32(src), int32(dst)}
	c.queues[key] = append(c.queues[key], c.idx[src])
	return 0
}

// MessageMatched implements sim.MatchHook: compare the message's
// piggybacked index against the receiver's. On lag ≥ threshold the receiver
// adopts the sender's index and takes a forced checkpoint, scheduled before
// the receive is processed (the engine grants seized work ahead of
// application jobs).
func (c *CIC) MessageMatched(src, dst int, bytes int64) {
	key := cicChan{int32(src), int32(dst)}
	q := c.queues[key]
	if len(q) == 0 {
		return
	}
	m := q[0]
	c.queues[key] = q[1:]
	if m-c.idx[dst] < c.lag {
		return
	}
	c.idx[dst] = m
	c.ctx.Mark(dst, "cic-force-due", m)
	c.p.write(c.ctx, dst, func(end simtime.Time) {
		c.stats.Writes++
		c.stats.Forced++
		c.last[dst] = end
		c.busyAt[dst] = c.ctx.RankBusy(dst)
		c.ctx.Mark(dst, "cic-forced", m)
	})
}

// LagThreshold returns the configured index-lag threshold (see
// validate.CICIntrospect).
func (c *CIC) LagThreshold() int { return int(c.lag) }

// Name implements Protocol.
func (c *CIC) Name() string { return "cic" }

// Stats implements Protocol.
func (c *CIC) Stats() Stats { return c.stats }

// LastCheckpoint implements Protocol: each rank recovers from its most
// recent local checkpoint, basic or forced.
func (c *CIC) LastCheckpoint(rank int) simtime.Time { return c.last[rank] }

// ProgressAtCheckpoint implements Protocol.
func (c *CIC) ProgressAtCheckpoint(rank int) simtime.Duration { return c.busyAt[rank] }

var (
	_ Protocol      = (*CIC)(nil)
	_ sim.SendHook  = (*CIC)(nil)
	_ sim.MatchHook = (*CIC)(nil)
	_ sim.Resumable = (*CIC)(nil)
)
