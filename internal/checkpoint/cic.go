package checkpoint

import (
	"fmt"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

// cicChan keys the per-channel queue of piggybacked checkpoint indices.
type cicChan struct {
	src, dst int32
}

// CIC is index-based communication-induced checkpointing (the
// Briatico–Ciuffoletti–Simoncini family in Garcia et al.'s survey). Each
// rank keeps a Lamport-style checkpoint index, incremented by basic
// checkpoints on an independent local timer and piggybacked on every
// application message. When a receiver's index lags a message's piggybacked
// index by at least LagThreshold, it takes a forced checkpoint — before the
// message is processed — and adopts the sender's index. Threshold 1 is the
// classic Z-path-free rule: no sequence of messages can thread checkpoints
// into a useless (Z-cycle) recovery line, so a consistent global state
// always exists without any coordination messages. Larger thresholds trade
// forced-checkpoint load for a weaker guarantee.
//
// Indices ride in message headers, so the piggyback itself is free; the
// protocol's cost is entirely the forced writes, which go through the same
// storage path as every other checkpoint. Index pairing uses per-channel
// FIFO queues: with single-threaded ranks and non-overtaking channels,
// match order equals send order per channel (tag-reordered wildcard
// matching could mispair two in-flight indices on one channel, which at
// worst shifts a forced checkpoint by one message).
type CIC struct {
	p      Params
	lag    int64
	policy OffsetPolicy
	stats  Stats
	ctx    *sim.Context
	idx    []int64
	last   []simtime.Time
	busyAt []simtime.Duration
	queues map[cicChan][]int64
}

// NewCIC builds the protocol. lag is the index-lag threshold (default 1);
// policy staggers the basic-checkpoint timers.
func NewCIC(p Params, lag int, policy OffsetPolicy) (*CIC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if lag < 0 {
		return nil, fmt.Errorf("checkpoint: negative CIC lag threshold %d", lag)
	}
	if lag == 0 {
		lag = 1
	}
	if policy > Random {
		return nil, fmt.Errorf("checkpoint: bad offset policy %d", policy)
	}
	return &CIC{p: p, lag: int64(lag), policy: policy, queues: make(map[cicChan][]int64)}, nil
}

// Init implements sim.Agent: start the basic-checkpoint timers.
func (c *CIC) Init(ctx *sim.Context) {
	c.ctx = ctx
	n := ctx.NumRanks()
	c.idx = make([]int64, n)
	c.last = make([]simtime.Time, n)
	c.busyAt = make([]simtime.Duration, n)
	for r := 0; r < n; r++ {
		var off simtime.Duration
		switch c.policy {
		case Aligned:
			off = 0
		case Staggered:
			off = simtime.Duration(int64(c.p.Interval) * int64(r) / int64(n))
		case Random:
			off = simtime.Duration(ctx.Rand().Intn(int(c.p.Interval)))
		}
		r := r
		ctx.At(simtime.Time(0).Add(c.p.Interval+off), func() { c.fire(r) })
	}
}

// fire takes one basic checkpoint: increment the rank's index and write.
func (c *CIC) fire(rank int) {
	fired := c.ctx.Now()
	c.idx[rank]++
	v := c.idx[rank]
	c.p.write(c.ctx, rank, func(end simtime.Time) {
		c.stats.Writes++
		c.last[rank] = end
		c.busyAt[rank] = c.ctx.RankBusy(rank)
		c.ctx.Mark(rank, "cic-basic", v)
		next := simtime.Max(fired.Add(c.p.Interval), end)
		c.ctx.At(next, func() { c.fire(rank) })
	})
}

// SendPenalty implements sim.SendHook: record the sender's index for the
// in-flight message (the piggyback). No CPU is charged — indices ride in
// the header.
func (c *CIC) SendPenalty(src, dst int, bytes int64) simtime.Duration {
	key := cicChan{int32(src), int32(dst)}
	c.queues[key] = append(c.queues[key], c.idx[src])
	return 0
}

// MessageMatched implements sim.MatchHook: compare the message's
// piggybacked index against the receiver's. On lag ≥ threshold the receiver
// adopts the sender's index and takes a forced checkpoint, scheduled before
// the receive is processed (the engine grants seized work ahead of
// application jobs).
func (c *CIC) MessageMatched(src, dst int, bytes int64) {
	key := cicChan{int32(src), int32(dst)}
	q := c.queues[key]
	if len(q) == 0 {
		return
	}
	m := q[0]
	c.queues[key] = q[1:]
	if m-c.idx[dst] < c.lag {
		return
	}
	c.idx[dst] = m
	c.ctx.Mark(dst, "cic-force-due", m)
	c.p.write(c.ctx, dst, func(end simtime.Time) {
		c.stats.Writes++
		c.stats.Forced++
		c.last[dst] = end
		c.busyAt[dst] = c.ctx.RankBusy(dst)
		c.ctx.Mark(dst, "cic-forced", m)
	})
}

// LagThreshold returns the configured index-lag threshold (see
// validate.CICIntrospect).
func (c *CIC) LagThreshold() int { return int(c.lag) }

// Name implements Protocol.
func (c *CIC) Name() string { return "cic" }

// Stats implements Protocol.
func (c *CIC) Stats() Stats { return c.stats }

// LastCheckpoint implements Protocol: each rank recovers from its most
// recent local checkpoint, basic or forced.
func (c *CIC) LastCheckpoint(rank int) simtime.Time { return c.last[rank] }

// ProgressAtCheckpoint implements Protocol.
func (c *CIC) ProgressAtCheckpoint(rank int) simtime.Duration { return c.busyAt[rank] }

var (
	_ Protocol      = (*CIC)(nil)
	_ sim.SendHook  = (*CIC)(nil)
	_ sim.MatchHook = (*CIC)(nil)
)
