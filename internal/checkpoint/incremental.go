package checkpoint

import (
	"fmt"
	"math"

	"checkpointsim/internal/simtime"
)

// IncrementalParams configure incremental checkpointing: only pages dirtied
// since the previous checkpoint are written, with a periodic full write to
// bound the recovery chain.
type IncrementalParams struct {
	// FullEvery makes every k-th write a full checkpoint (k >= 1);
	// the writes in between are incremental.
	FullEvery int
	// Fraction is the incremental write cost as a fraction of the full
	// write cost (the dirty-page ratio), in (0, 1].
	Fraction float64
}

// Validate checks the parameters.
func (ip IncrementalParams) Validate() error {
	if ip.FullEvery < 1 {
		return fmt.Errorf("checkpoint: FullEvery %d < 1", ip.FullEvery)
	}
	if !(ip.Fraction > 0 && ip.Fraction <= 1) {
		return fmt.Errorf("checkpoint: incremental fraction %v outside (0,1]", ip.Fraction)
	}
	return nil
}

// NewUncoordinatedIncremental builds the uncoordinated protocol with
// incremental writes: rank timers and logging behave exactly as in
// NewUncoordinated, but only every inc.FullEvery-th write pays the full
// Params.Write; the others pay Write·inc.Fraction.
//
// Recovery from an incremental chain must restore the last full checkpoint
// plus all increments since; we fold that into the unchanged restart cost
// (the chain is bounded by FullEvery), so the performance side — the
// dramatic reduction in write duty cycle — is what this variant isolates.
func NewUncoordinatedIncremental(p Params, policy OffsetPolicy, log LogParams,
	inc IncrementalParams) (*Uncoordinated, error) {
	u, err := NewUncoordinated(p, policy, log)
	if err != nil {
		return nil, err
	}
	if err := inc.Validate(); err != nil {
		return nil, err
	}
	u.inc = inc
	return u, nil
}

// writeDuration returns the duration of rank's n-th write (1-based).
func (u *Uncoordinated) writeDuration(n int64) simtime.Duration {
	if u.inc.FullEvery <= 1 || u.inc.Fraction == 0 {
		return u.p.Write
	}
	if n%int64(u.inc.FullEvery) == 0 {
		return u.p.Write
	}
	return u.p.Write.Scale(u.inc.Fraction)
}

// writeBytes returns the image size of rank's n-th write (1-based), scaled
// by the incremental fraction exactly as writeDuration scales the duration.
// Zero lets storeWrite derive bytes from the duration.
func (u *Uncoordinated) writeBytes(n int64) int64 {
	if u.p.Bytes <= 0 || u.inc.FullEvery <= 1 || u.inc.Fraction == 0 {
		return u.p.Bytes
	}
	if n%int64(u.inc.FullEvery) == 0 {
		return u.p.Bytes
	}
	return int64(math.Round(float64(u.p.Bytes) * u.inc.Fraction))
}
