// Package checkpoint implements the checkpointing protocols under study:
//
//   - Coordinated: a two-phase, binomial-tree coordination protocol. The
//     coordinator quiesces every rank (request/ack sweep down and up the
//     tree, gating application progress), then commits; every rank writes
//     its checkpoint and reports completion up the tree. All coordination
//     traffic consists of real control messages that traverse the simulated
//     network and contend with the application for CPUs — coordination cost
//     is measured, not assumed.
//
//   - Uncoordinated: every rank checkpoints on an independent local timer
//     (aligned, staggered, or randomly offset), with sender-based message
//     logging charged on every application send so that a failed rank can
//     be replayed without a global rollback.
//
//   - Hierarchical: ranks are partitioned into clusters; each cluster runs
//     the coordinated protocol internally while only inter-cluster messages
//     pay the logging tax — the standard hybrid design point between the
//     two extremes.
//
//   - Replication: every application rank is shadowed by dedicated replica
//     ranks; sends are duplicated to the destination's replicas, primaries
//     heartbeat their replicas, and a failed primary is absorbed by replica
//     takeover instead of rollback — no checkpoints at all, at the price of
//     a 1/(degree+1) effective machine.
//
//   - CIC: index-based communication-induced checkpointing; basic local
//     checkpoints advance a Lamport-style index piggybacked on every
//     message, and a receiver lagging a message's index takes a forced
//     checkpoint before processing it (the Z-path-free rule).
//
// All protocols implement Protocol: a sim.Agent plus introspection used by
// the failure/recovery machinery and the experiment harness.
package checkpoint

import (
	"fmt"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/storage"
)

// Reason keys used for engine-side accounting (Result.SeizedTime etc.).
const (
	// ReasonWrite accounts checkpoint-write CPU seizures.
	ReasonWrite = "checkpoint"
	// ReasonCoord accounts application-gate time during coordination.
	ReasonCoord = "coordination"
	// ReasonIOWait accounts the contention-induced excess of a shared-storage
	// checkpoint write over its lone-writer duration (see internal/storage).
	ReasonIOWait = "io-wait"
)

// Params holds the knobs shared by all protocols.
type Params struct {
	// Interval is the target time between checkpoints (τ). For coordinated
	// protocols it is the time between round starts; rounds never overlap.
	Interval simtime.Duration
	// Write is the time to write one rank's checkpoint (δ), modeled as an
	// exclusive CPU seizure. With a bandwidth-limited Store this is the
	// *contention-free* write time: the image size defaults to the bytes a
	// lone writer moves in Write, and contention stretches the actual
	// occupancy beyond it.
	Write simtime.Duration
	// CtlBytes is the size of coordination control messages (default 64).
	CtlBytes int64
	// Bytes is the checkpoint image size written through the Store. Zero
	// derives it from Write at the target tier's lone-writer rate, so
	// uncontended store writes keep the legacy duration. Ignored without a
	// bandwidth-limited Store.
	Bytes int64
	// Store, when non-nil and bandwidth-limited on Tier, arbitrates
	// checkpoint writes against every other concurrent writer (fair-share);
	// nil or unlimited reproduces the legacy fixed-duration path
	// byte-identically.
	Store *storage.Store
	// Tier selects the storage tier writes target (default TierGlobal).
	Tier storage.Tier
}

// Validate checks the parameter set.
func (p Params) Validate() error {
	if p.Interval <= 0 {
		return fmt.Errorf("checkpoint: non-positive interval %v", p.Interval)
	}
	if p.Write < 0 {
		return fmt.Errorf("checkpoint: negative write time %v", p.Write)
	}
	if p.CtlBytes < 0 {
		return fmt.Errorf("checkpoint: negative control size %d", p.CtlBytes)
	}
	if p.Bytes < 0 {
		return fmt.Errorf("checkpoint: negative checkpoint size %d", p.Bytes)
	}
	return nil
}

// storeWrite performs one rank's checkpoint write, routed through the shared
// storage model when one is configured. Without a store — or when the target
// tier is unconstrained — it issues the exact legacy fixed-duration seizure,
// so pre-storage results reproduce byte-identically. With a bandwidth-limited
// tier, the rank's CPU is seized open-endedly while the image drains under
// fair-share arbitration: the lone-writer portion of the occupancy is
// accounted as ReasonWrite, the contention-induced excess as ReasonIOWait.
func storeWrite(ctx *sim.Context, st *storage.Store, tier storage.Tier, rank int,
	fixed simtime.Duration, bytes int64, done func(end simtime.Time)) {
	if st == nil || !st.TierLimited(tier) {
		ctx.SeizeCPU(rank, fixed, ReasonWrite, done)
		return
	}
	st.Bind(ctx)
	b := bytes
	if b <= 0 {
		b = st.BytesFor(tier, fixed)
	}
	ctx.SeizeCPUDynamic(rank, st.LoneDuration(tier, b), ReasonWrite, ReasonIOWait,
		func(start simtime.Time, release func()) {
			st.Begin(rank, tier, b, func(simtime.Time) { release() })
		}, done)
}

// write routes one checkpoint write through p's store configuration.
func (p Params) write(ctx *sim.Context, rank int, done func(end simtime.Time)) {
	storeWrite(ctx, p.Store, p.Tier, rank, p.Write, p.Bytes, done)
}

func (p Params) ctlBytes() int64 {
	if p.CtlBytes == 0 {
		return 64
	}
	return p.CtlBytes
}

// Stats accumulates protocol-level counters during a run.
type Stats struct {
	// Rounds counts completed coordinated rounds (coordinated and
	// hierarchical protocols; zero for uncoordinated).
	Rounds int64
	// Writes counts individual checkpoint writes across all ranks.
	Writes int64
	// CoordDelay sums, over rounds, the time from round start to commit —
	// the pure coordination latency before any byte is written.
	CoordDelay simtime.Duration
	// RoundSpan sums, over rounds, the time from round start until the
	// last rank finished writing and reported done.
	RoundSpan simtime.Duration
	// LoggedMessages counts application sends taxed by message logging.
	LoggedMessages int64
	// LoggedBytes sums the payload bytes logged.
	LoggedBytes int64
	// LogPenalty sums the CPU time charged for logging.
	LogPenalty simtime.Duration
	// Forced counts forced (communication-induced) checkpoint writes, a
	// subset of Writes (CIC protocol).
	Forced int64
	// MirroredMessages counts application sends duplicated to replica
	// ranks (replication protocol); MirroredBytes sums their payloads.
	MirroredMessages int64
	MirroredBytes    int64
	// Heartbeats counts heartbeat control messages sent to replicas.
	Heartbeats int64
	// Takeovers counts primary failures absorbed by replica promotion
	// instead of rollback.
	Takeovers int64
}

// Protocol is the interface all checkpointing strategies implement.
type Protocol interface {
	sim.Agent
	// Name identifies the protocol for reports ("coordinated", ...).
	Name() string
	// Stats returns the accumulated protocol counters.
	Stats() Stats
	// LastCheckpoint returns the time of the most recent checkpoint that
	// covers the given rank's state (the recovery line a failure of that
	// rank would roll back to). Zero if no checkpoint completed yet.
	LastCheckpoint(rank int) simtime.Time
	// ProgressAtCheckpoint returns the rank's application progress
	// (cumulative busy time, see sim.Context.RankBusy) captured when its
	// last covering checkpoint completed. Recovery rework for a failure of
	// that rank is RankBusy(rank) − ProgressAtCheckpoint(rank): only real
	// application work is re-executed, never checkpoint or recovery time.
	ProgressAtCheckpoint(rank int) simtime.Duration
}

// None is the no-checkpointing baseline protocol.
type None struct{}

// Init implements sim.Agent.
func (None) Init(*sim.Context) {}

// Name implements Protocol.
func (None) Name() string { return "none" }

// Stats implements Protocol.
func (None) Stats() Stats { return Stats{} }

// LastCheckpoint implements Protocol; there is never a checkpoint.
func (None) LastCheckpoint(int) simtime.Time { return 0 }

// ProgressAtCheckpoint implements Protocol; with no checkpoints, all
// progress is lost on failure.
func (None) ProgressAtCheckpoint(int) simtime.Duration { return 0 }

var _ Protocol = None{}
