package checkpoint

import (
	"math/bits"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// coordinator runs the two-phase checkpoint rounds over one group of ranks
// (the whole machine for Coordinated, one cluster for Hierarchical). Rounds
// proceed through four sweeps of a binomial tree rooted at members[0]:
//
//	REQ  (down): close each member's application gate
//	ACK  (up):   subtree fully quiesced
//	COMMIT (down): write the checkpoint (CPU seizure), reopen the gate
//	DONE (up):   subtree fully written
//
// All sweeps are control messages through the simulated network. Rounds
// never overlap: the next round starts Interval after the previous round's
// start, or immediately after the previous round ends, whichever is later.
type coordinator struct {
	ctx     *sim.Context
	p       Params
	members []int // actual rank ids; members[0] is the root
	stats   *Stats
	// onWrite records a completed write for one member rank.
	onWrite func(rank int, end simtime.Time)
	// onRound runs when a round fully completes.
	onRound func(tick, end simtime.Time)
	// arm schedules the next tick. The owning protocol supplies a
	// defunctionalized timer (Context.AtOwned) so the pending tick
	// serializes into snapshots; nil falls back to a closure timer.
	arm func(t simtime.Time)

	// per-round state
	active       bool
	tickTime     simtime.Time
	pendingDelay simtime.Duration // coordination delay of the in-flight round
	acksLeft     []int
	donesLeft    []int
	release      []func()
	// pendingBusy snapshots each member's application progress at its write;
	// committedBusy is the snapshot of the last *completed* round — the
	// progress a rollback of this group restores.
	pendingBusy   []simtime.Duration
	committedBusy []simtime.Duration
}

func newCoordinator(ctx *sim.Context, p Params, members []int, stats *Stats,
	onWrite func(int, simtime.Time), onRound func(tick, end simtime.Time)) *coordinator {
	return &coordinator{
		ctx: ctx, p: p, members: members, stats: stats,
		onWrite: onWrite, onRound: onRound,
		acksLeft:      make([]int, len(members)),
		donesLeft:     make([]int, len(members)),
		release:       make([]func(), len(members)),
		pendingBusy:   make([]simtime.Duration, len(members)),
		committedBusy: make([]simtime.Duration, len(members)),
	}
}

// children returns the virtual indices of i's binomial-tree children.
func (c *coordinator) children(i int) []int {
	n := len(c.members)
	var out []int
	limit := i & -i // lsb; the root may add any power of two
	if i == 0 {
		limit = 1 << bits.Len(uint(n)) // effectively unbounded
	}
	for step := 1; step < limit && i+step < n; step <<= 1 {
		out = append(out, i+step)
	}
	return out
}

// parent returns the virtual index of i's binomial-tree parent.
func (c *coordinator) parent(i int) int { return i - (i & -i) }

// schedule arms the periodic rounds; call once from the protocol's Init.
func (c *coordinator) schedule(first simtime.Time) {
	c.armAt(first)
}

func (c *coordinator) armAt(t simtime.Time) {
	if c.arm != nil {
		c.arm(t)
		return
	}
	c.ctx.At(t, c.tick)
}

// encodeState serializes the coordinator's cross-round state. Per-round
// fields (acksLeft, donesLeft, release, pendingBusy, pendingDelay,
// tickTime) are live only while active, and snapshots require !active.
func (c *coordinator) encodeState(enc *snapshot.Encoder) {
	if c.active {
		panic("checkpoint: encoding coordinator mid-round")
	}
	snapshot.EncodeI64Slice(enc, c.committedBusy)
}

func (c *coordinator) decodeState(dec *snapshot.Decoder) {
	c.committedBusy = snapshot.DecodeI64Slice[simtime.Duration](dec, len(c.members))
}

func (c *coordinator) tick() {
	if c.active {
		// Should not happen — rounds reschedule themselves on completion —
		// but guard against misuse.
		return
	}
	c.active = true
	c.tickTime = c.ctx.Now()
	c.ctx.Mark(c.members[0], "round-start", int64(len(c.members)))
	c.handleReq(0)
}

func (c *coordinator) handleReq(i int) {
	rank := c.members[i]
	c.release[i] = c.ctx.HoldApp(rank, ReasonCoord)
	kids := c.children(i)
	c.acksLeft[i] = len(kids)
	for _, j := range kids {
		j := j
		c.ctx.SendControl(rank, c.members[j], c.p.ctlBytes(),
			func(simtime.Time) { c.handleReq(j) })
	}
	if len(kids) == 0 {
		c.ackReady(i)
	}
}

// ackReady runs when subtree i is fully quiesced.
func (c *coordinator) ackReady(i int) {
	if i == 0 {
		c.pendingDelay = c.ctx.Now().Sub(c.tickTime)
		c.ctx.Mark(c.members[0], "round-commit", int64(len(c.members)))
		c.handleCommit(0)
		return
	}
	p := c.parent(i)
	c.ctx.SendControl(c.members[i], c.members[p], c.p.ctlBytes(),
		func(simtime.Time) {
			c.acksLeft[p]--
			if c.acksLeft[p] == 0 {
				c.ackReady(p)
			}
		})
}

func (c *coordinator) handleCommit(i int) {
	rank := c.members[i]
	kids := c.children(i)
	c.donesLeft[i] = len(kids) + 1 // children subtrees + own write
	for _, j := range kids {
		j := j
		c.ctx.SendControl(rank, c.members[j], c.p.ctlBytes(),
			func(simtime.Time) { c.handleCommit(j) })
	}
	c.p.write(c.ctx, rank, func(end simtime.Time) {
		c.stats.Writes++
		c.pendingBusy[i] = c.ctx.RankBusy(rank)
		c.release[i]()
		c.release[i] = nil
		if c.onWrite != nil {
			c.onWrite(rank, end)
		}
		c.doneReady(i)
	})
}

// doneReady decrements subtree i's outstanding-done counter.
func (c *coordinator) doneReady(i int) {
	c.donesLeft[i]--
	if c.donesLeft[i] > 0 {
		return
	}
	if i == 0 {
		end := c.ctx.Now()
		c.ctx.Mark(c.members[0], "round-end", int64(len(c.members)))
		c.stats.Rounds++ // rounds and their delays count only when complete
		c.stats.CoordDelay += c.pendingDelay
		c.stats.RoundSpan += end.Sub(c.tickTime)
		copy(c.committedBusy, c.pendingBusy)
		c.active = false
		if c.onRound != nil {
			c.onRound(c.tickTime, end)
		}
		next := simtime.Max(c.tickTime.Add(c.p.Interval), end)
		c.armAt(next)
		return
	}
	p := c.parent(i)
	c.ctx.SendControl(c.members[i], c.members[p], c.p.ctlBytes(),
		func(simtime.Time) { c.doneReady(p) })
}
