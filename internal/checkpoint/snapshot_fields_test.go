package checkpoint

// Exhaustive-field audit of the protocol agents' snapshot state (the
// counterpart of internal/sim/snapshot_fields_test.go for the engine).
// Every field of every Resumable protocol — plus the coordinator and the
// shared storage arbiter their state embeds — must have an entry saying
// how EncodeState/DecodeState handles it. A field added without snapshot
// handling fails here until it is wired up (or its exclusion documented).

import (
	"reflect"
	"testing"

	"checkpointsim/internal/storage"
)

func requireFields(t *testing.T, typ reflect.Type, handled map[string]string) {
	t.Helper()
	inStruct := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		inStruct[name] = true
		if _, ok := handled[name]; !ok {
			t.Errorf("%s.%s has no snapshot-handling entry: wire it into "+
				"EncodeState/DecodeState (or document the exclusion) and record it here", typ, name)
		}
	}
	for name := range handled {
		if !inStruct[name] {
			t.Errorf("%s.%s is in the handling table but not in the struct — drop the stale entry", typ, name)
		}
	}
}

func TestSnapshotCoversCoordinatedFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(Coordinated{}), map[string]string{
		"p":         "immutable parameters (its Store's mutable state rides in the agent section)",
		"stats":     "serialized (encodeStats)",
		"coord":     "rebuilt by setup; cross-round state serialized via coordinator.encodeState",
		"lastLine":  "serialized",
		"lineStart": "serialized",
		"rounds":    "serialized (encodeRounds)",
	})
}

func TestSnapshotCoversUncoordinatedFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(Uncoordinated{}), map[string]string{
		"p":       "immutable parameters (Store state rides in the agent section)",
		"policy":  "immutable configuration",
		"log":     "immutable parameters",
		"inc":     "immutable parameters",
		"stats":   "serialized",
		"last":    "serialized",
		"busyAt":  "serialized",
		"nwrites": "serialized",
		"ctx":     "rebound in DecodeState",
	})
}

func TestSnapshotCoversHierarchicalFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(Hierarchical{}), map[string]string{
		"p":           "immutable parameters (Store state rides in the agent section)",
		"clusterSize": "immutable configuration",
		"log":         "immutable parameters",
		"stats":       "serialized",
		"numRanks":    "recomputed by setup from the restoring engine",
		"coords":      "rebuilt by setup; per-cluster cross-round state serialized in order",
		"lastLine":    "serialized",
		"lineStart":   "serialized",
	})
}

func TestSnapshotCoversNonBlockingFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(NonBlockingCoordinated{}), map[string]string{
		"p":             "immutable parameters (Store state rides in the agent section)",
		"stats":         "serialized",
		"ctx":           "rebound in DecodeState (setup)",
		"active":        "must be false at a safe boundary (Quiesced); EncodeState panics otherwise",
		"tickTime":      "per-round state, live only while active",
		"tree":          "rebuilt by setup (shape is a pure function of rank count)",
		"donesLeft":     "per-round state, reallocated by setup",
		"pendingBusy":   "per-round state, reallocated by setup",
		"committedBusy": "serialized",
		"lastLine":      "serialized",
	})
}

func TestSnapshotCoversCICFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(CIC{}), map[string]string{
		"p":      "immutable parameters (Store state rides in the agent section)",
		"lag":    "immutable configuration",
		"policy": "immutable configuration",
		"stats":  "serialized",
		"ctx":    "rebound in DecodeState",
		"idx":    "serialized",
		"last":   "serialized",
		"busyAt": "serialized",
		"queues": "serialized in sorted channel order (map iteration must not leak into bytes)",
	})
}

func TestSnapshotCoversPartnerFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(Partner{}), map[string]string{
		"p":         "immutable parameters (Store state rides in the agent section)",
		"stats":     "serialized",
		"ctx":       "rebound in DecodeState",
		"last":      "serialized",
		"busyAt":    "serialized",
		"shipped":   "serialized",
		"transfers": "serialized",
	})
}

func TestSnapshotCoversReplicationFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(Replication{}), map[string]string{
		"p":        "immutable parameters",
		"stats":    "serialized",
		"ctx":      "rebound in DecodeState",
		"app":      "recomputed in DecodeState (pure function of the configuration)",
		"nextBeat": "serialized",
	})
}

func TestSnapshotCoversTwoLevelFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(TwoLevel{}), map[string]string{
		"p":            "immutable parameters (Store state rides in the agent section)",
		"stats":        "serialized",
		"ctx":          "rebound in DecodeState (setup)",
		"coord":        "rebuilt by setup; cross-round state serialized via coordinator.encodeState",
		"localLast":    "serialized",
		"localBusyAt":  "serialized",
		"globalLast":   "serialized",
		"globalBusyAt": "serialized",
		"localWrites":  "serialized",
		"globalWrites": "serialized",
	})
}

// TestSnapshotCoversCoordinatorFields: the shared round engine. Per-round
// fields are live only while a round is active, and snapshots require
// !active (Quiesced), so only the committed line survives serialization.
func TestSnapshotCoversCoordinatorFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(coordinator{}), map[string]string{
		"ctx":           "rebound when the owning protocol's setup rebuilds the coordinator",
		"p":             "immutable parameters",
		"members":       "rebuilt by the owning protocol's setup",
		"stats":         "points into the owning protocol's serialized Stats",
		"onWrite":       "re-wired by setup",
		"onRound":       "re-wired by setup",
		"arm":           "re-wired by setup",
		"active":        "must be false at a safe boundary; encodeState panics otherwise",
		"tickTime":      "per-round state, live only while active",
		"pendingDelay":  "per-round state, live only while active",
		"acksLeft":      "per-round state, live only while active",
		"donesLeft":     "per-round state, live only while active",
		"release":       "per-round closures, live only while active",
		"pendingBusy":   "per-round state, live only while active",
		"committedBusy": "serialized (the committed recovery line)",
	})
}

func TestSnapshotCoversStatsFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(Stats{}), map[string]string{
		"Rounds":           "serialized (encodeStats)",
		"Writes":           "serialized (encodeStats)",
		"CoordDelay":       "serialized (encodeStats)",
		"RoundSpan":        "serialized (encodeStats)",
		"LoggedMessages":   "serialized (encodeStats)",
		"LoggedBytes":      "serialized (encodeStats)",
		"LogPenalty":       "serialized (encodeStats)",
		"Forced":           "serialized (encodeStats)",
		"MirroredMessages": "serialized (encodeStats)",
		"MirroredBytes":    "serialized (encodeStats)",
		"Heartbeats":       "serialized (encodeStats)",
		"Takeovers":        "serialized (encodeStats)",
	})
}

// TestSnapshotCoversStorageFields: the shared arbiter rides inside its
// owning protocol's agent section; in-flight writes carry closures and
// block the boundary (Store.Quiesced), so only durable counters travel.
func TestSnapshotCoversStorageFields(t *testing.T) {
	requireFields(t, reflect.TypeOf(storage.Store{}), map[string]string{
		"p":           "immutable parameters",
		"sched":       "rebound in RestoreState",
		"writes":      "must be empty at a safe boundary (Quiesced); EncodeState panics otherwise",
		"nodeCount":   "membership cache, empty at quiescence; rebuilt as writes join",
		"globalCount": "membership cache, zero at quiescence",
		"lastAt":      "reset to the restoring engine's now in RestoreState",
		"gen":         "serialized (invalidates superseded completion timers)",
		"stats":       "serialized field-by-field in EncodeState",
	})
	// The write struct itself never serializes — it always carries the
	// drained closure — but pin its shape so a new field prompts a fresh
	// look at the quiescence argument.
	wr, ok := reflect.TypeOf(storage.Store{}).FieldByName("writes")
	if !ok {
		t.Fatal("storage.Store lost its writes field")
	}
	requireFields(t, wr.Type.Elem().Elem(), map[string]string{
		"rank":      "never serialized: writes block the snapshot boundary",
		"node":      "never serialized: writes block the snapshot boundary",
		"tier":      "never serialized: writes block the snapshot boundary",
		"remaining": "never serialized: writes block the snapshot boundary",
		"bytes":     "never serialized: writes block the snapshot boundary",
		"start":     "never serialized: writes block the snapshot boundary",
		"drained":   "completion closure — the reason writes block the boundary",
	})
}
