package checkpoint

import (
	"testing"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/storage"
)

// Store-routed protocol tests: the legacy path must be byte-identical with a
// nil or Unlimited store, and bandwidth-limited stores must stretch
// simultaneous writers while leaving staggered ones at the lone-writer
// duration.

func runSeed(t *testing.T, prog *goal.Program, seed uint64, agents ...sim.Agent) *sim.Result {
	t.Helper()
	e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog, Agents: agents, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// mustStore builds a store or fails the test.
func mustStore(t *testing.T, p storage.Params) *storage.Store {
	t.Helper()
	s, err := storage.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUnlimitedStoreByteIdentical(t *testing.T) {
	// Every protocol must produce the exact same result with no store and
	// with the Unlimited store: same makespan, same seizure accounting, no
	// io-wait.
	base := Params{Interval: 10 * simtime.Millisecond, Write: simtime.Millisecond}
	builds := map[string]func(st *storage.Store) sim.Agent{
		"coordinated": func(st *storage.Store) sim.Agent {
			p := base
			p.Store = st
			c, err := NewCoordinated(p)
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
		"uncoordinated-staggered": func(st *storage.Store) sim.Agent {
			p := base
			p.Store = st
			u, err := NewUncoordinated(p, Staggered, LogParams{Alpha: 500})
			if err != nil {
				t.Fatal(err)
			}
			return u
		},
		"uncoordinated-random-incremental": func(st *storage.Store) sim.Agent {
			p := base
			p.Store = st
			u, err := NewUncoordinatedIncremental(p, Random, LogParams{},
				IncrementalParams{FullEvery: 3, Fraction: 0.25})
			if err != nil {
				t.Fatal(err)
			}
			return u
		},
		"nonblocking": func(st *storage.Store) sim.Agent {
			p := NonBlockingParams{Params: base, Window: 4 * simtime.Millisecond, Slowdown: 1.1}
			p.Store = st
			n, err := NewNonBlockingCoordinated(p)
			if err != nil {
				t.Fatal(err)
			}
			return n
		},
		"partner": func(st *storage.Store) sim.Agent {
			pt, err := NewPartner(PartnerParams{Interval: 10 * simtime.Millisecond,
				SerializeTime: simtime.Millisecond, CkptBytes: 1 << 16, Store: st})
			if err != nil {
				t.Fatal(err)
			}
			return pt
		},
		"twolevel": func(st *storage.Store) sim.Agent {
			tl, err := NewTwoLevel(TwoLevelParams{
				LocalInterval: 5 * simtime.Millisecond, LocalWrite: 200 * simtime.Microsecond,
				GlobalInterval: 20 * simtime.Millisecond, GlobalWrite: 2 * simtime.Millisecond,
				Store: st})
			if err != nil {
				t.Fatal(err)
			}
			return tl
		},
	}
	for name, build := range builds {
		build := build
		t.Run(name, func(t *testing.T) {
			prog := stencil(t, 8, 30, simtime.Millisecond)
			legacy := runSeed(t, prog, 7, build(nil))
			unlimited := runSeed(t, prog, 7, build(storage.Unlimited()))
			if legacy.Makespan != unlimited.Makespan {
				t.Errorf("makespan drifted: legacy %v, unlimited %v",
					legacy.Makespan, unlimited.Makespan)
			}
			if lw, uw := legacy.SeizedTime[ReasonWrite], unlimited.SeizedTime[ReasonWrite]; lw != uw {
				t.Errorf("write accounting drifted: %v vs %v", lw, uw)
			}
			if w, ok := unlimited.SeizedTime[ReasonIOWait]; ok {
				t.Errorf("unlimited store accumulated io-wait %v", w)
			}
		})
	}
}

func TestCoordinatedContentionStretchesWrites(t *testing.T) {
	// 8 ranks write 1e6 bytes each simultaneously through an 8 GB/s PFS with
	// a 1 GB/s per-writer cap. Alone each write takes 1ms; together they
	// share 8 GB/s -> 1 GB/s each... wait, 8 writers x 1 GB/s cap = 8 GB/s =
	// aggregate, so the cap binds and there is no slowdown. Drop the
	// aggregate to 2 GB/s: each write drains at 0.25 GB/s, taking 4ms — 3ms
	// of io-wait per write.
	st := mustStore(t, storage.Params{AggregateBytesPerSec: 2e9, PerWriterBytesPerSec: 1e9})
	p := Params{Interval: 20 * simtime.Millisecond, Write: simtime.Millisecond,
		Bytes: 1e6, Store: st}
	c, err := NewCoordinated(p)
	if err != nil {
		t.Fatal(err)
	}
	r := runSeed(t, ep(t, 8, 40, simtime.Millisecond), 7, c)
	if c.Stats().Rounds == 0 {
		t.Fatal("no coordinated rounds completed")
	}
	iow, ok := r.SeizedTime[ReasonIOWait]
	if !ok || iow == 0 {
		t.Fatalf("contended coordinated run shows no io-wait: %v", r.SeizedTime)
	}
	// The commit sweep staggers write starts behind earlier seizures, so the
	// overlap is partial rather than all-8-at-once; the nominal accounting
	// must stay exactly 1ms per write with all contention in io-wait.
	writes := r.SeizedCount[ReasonWrite]
	if avg := r.SeizedTime[ReasonWrite] / simtime.Duration(writes); avg != simtime.Millisecond {
		t.Errorf("nominal write accounting = %v per write, want 1ms", avg)
	}
	if avgWait := iow / simtime.Duration(writes); avgWait < 100*simtime.Microsecond {
		t.Errorf("avg io-wait per write = %v, want a clear contention signal", avgWait)
	}
	if st.Stats().PeakWriters < 2 {
		t.Errorf("peak writers = %d, want overlapping writes", st.Stats().PeakWriters)
	}
}

func TestStaggeredAvoidsContention(t *testing.T) {
	// Same storage, but staggered uncoordinated timers: writes (1ms each,
	// interval 16ms across 8 ranks -> 2ms apart) never overlap, so no
	// io-wait accumulates at all.
	st := mustStore(t, storage.Params{AggregateBytesPerSec: 2e9, PerWriterBytesPerSec: 1e9})
	p := Params{Interval: 16 * simtime.Millisecond, Write: simtime.Millisecond,
		Bytes: 1e6, Store: st}
	u, err := NewUncoordinated(p, Staggered, LogParams{})
	if err != nil {
		t.Fatal(err)
	}
	r := runSeed(t, ep(t, 8, 40, simtime.Millisecond), 7, u)
	if u.Stats().Writes == 0 {
		t.Fatal("no writes completed")
	}
	if iow := r.SeizedTime[ReasonIOWait]; iow != 0 {
		t.Errorf("staggered writers accumulated io-wait %v", iow)
	}
	if st.Stats().WaitTime != 0 {
		t.Errorf("store-level wait %v for non-overlapping writers", st.Stats().WaitTime)
	}
}

func TestBytesDerivedFromWriteDuration(t *testing.T) {
	// Params.Bytes == 0: the image size comes from Write at the lone-writer
	// rate, so a solo store write keeps the legacy duration exactly.
	st := mustStore(t, storage.Params{AggregateBytesPerSec: 4e9})
	p := Params{Interval: 10 * simtime.Millisecond, Write: 2 * simtime.Millisecond, Store: st}
	u, err := NewUncoordinated(p, Staggered, LogParams{})
	if err != nil {
		t.Fatal(err)
	}
	r := runSeed(t, ep(t, 2, 30, simtime.Millisecond), 7, u)
	writes := r.SeizedCount[ReasonWrite]
	if writes == 0 {
		t.Fatal("no writes")
	}
	if avg := r.SeizedTime[ReasonWrite] / simtime.Duration(writes); avg != 2*simtime.Millisecond {
		t.Errorf("solo store write = %v, want the legacy 2ms", avg)
	}
	if st.Stats().Bytes != writes*8e6 {
		t.Errorf("drained %d bytes over %d writes, want 8e6 each", st.Stats().Bytes, writes)
	}
}

func TestNonBlockingDrainExtendsWindow(t *testing.T) {
	// The background drain is slower than the window: 8 ranks x 4e6 bytes
	// through 1 GB/s aggregate takes 32ms, far beyond the 4ms window, so
	// rounds span at least the drain time. With an unlimited store the same
	// configuration finishes each round near the window length.
	prog := ep(t, 8, 100, simtime.Millisecond)
	build := func(st *storage.Store) *NonBlockingCoordinated {
		p := NonBlockingParams{
			Params: Params{Interval: 10 * simtime.Millisecond, Write: simtime.Millisecond,
				Bytes: 4e6, Store: st},
			Window: 4 * simtime.Millisecond, Slowdown: 1.05,
		}
		n, err := NewNonBlockingCoordinated(p)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	fast := build(storage.Unlimited())
	runSeed(t, prog, 7, fast)
	slow := build(mustStore(t, storage.Params{AggregateBytesPerSec: 1e9}))
	runSeed(t, prog, 7, slow)
	if fast.Stats().Rounds == 0 || slow.Stats().Rounds == 0 {
		t.Fatalf("rounds: fast %d, slow %d", fast.Stats().Rounds, slow.Stats().Rounds)
	}
	avgFast := fast.Stats().RoundSpan / simtime.Duration(fast.Stats().Rounds)
	avgSlow := slow.Stats().RoundSpan / simtime.Duration(slow.Stats().Rounds)
	if avgSlow < 4*avgFast {
		t.Errorf("drain-limited round span %v not clearly above window-limited %v",
			avgSlow, avgFast)
	}
}

func TestTwoLevelTiersIndependent(t *testing.T) {
	// Node tier limited, global tier unlimited: local writes are aligned
	// (they contend within a node), global writes keep the legacy duration.
	st := mustStore(t, storage.Params{NodeBytesPerSec: 1e9, RanksPerNode: 4})
	tl, err := NewTwoLevel(TwoLevelParams{
		LocalInterval: 5 * simtime.Millisecond, LocalWrite: 500 * simtime.Microsecond,
		GlobalInterval: 25 * simtime.Millisecond, GlobalWrite: 2 * simtime.Millisecond,
		Store: st})
	if err != nil {
		t.Fatal(err)
	}
	r := runSeed(t, ep(t, 8, 60, simtime.Millisecond), 7, tl)
	local, global := tl.LevelWrites()
	if local == 0 || global == 0 {
		t.Fatalf("writes: local %d, global %d", local, global)
	}
	// Aligned local timers: 4 ranks per node write together, each at 1/4 of
	// the node bandwidth -> io-wait appears.
	if iow := r.SeizedTime[ReasonIOWait]; iow == 0 {
		t.Error("aligned local writes through a shared node buffer show no io-wait")
	}
	// All drained bytes belong to the node tier (global is unconstrained and
	// takes the legacy path).
	want := local * 5e5 // 500us at 1 GB/s
	if st.Stats().Bytes != want {
		t.Errorf("store drained %d bytes, want %d (local level only)", st.Stats().Bytes, want)
	}
}

func TestParamsValidateStorageFields(t *testing.T) {
	p := Params{Interval: simtime.Second, Write: simtime.Millisecond, Bytes: -1}
	if err := p.Validate(); err == nil {
		t.Error("negative Bytes accepted")
	}
	tp := TwoLevelParams{LocalInterval: 1, GlobalInterval: 2, LocalBytes: -1}
	if err := tp.Validate(); err == nil {
		t.Error("negative LocalBytes accepted")
	}
}
