package checkpoint

// Shared snapshot-state helpers for the protocol implementations (see
// sim.Resumable and DESIGN.md S25). Every protocol serializes its full
// Stats, its recovery-line bookkeeping, and — when it owns one — the shared
// storage arbiter's state; pending periodic timers are not serialized here
// because they live, defunctionalized, in the engine's event queue.

import (
	"checkpointsim/internal/sim"
	"checkpointsim/internal/snapshot"
	"checkpointsim/internal/storage"
)

func encodeStats(enc *snapshot.Encoder, s *Stats) {
	enc.I64(s.Rounds)
	enc.I64(s.Writes)
	enc.Dur(s.CoordDelay)
	enc.Dur(s.RoundSpan)
	enc.I64(s.LoggedMessages)
	enc.I64(s.LoggedBytes)
	enc.Dur(s.LogPenalty)
	enc.I64(s.Forced)
	enc.I64(s.MirroredMessages)
	enc.I64(s.MirroredBytes)
	enc.I64(s.Heartbeats)
	enc.I64(s.Takeovers)
}

func decodeStats(dec *snapshot.Decoder, s *Stats) {
	s.Rounds = dec.I64()
	s.Writes = dec.I64()
	s.CoordDelay = dec.Dur()
	s.RoundSpan = dec.Dur()
	s.LoggedMessages = dec.I64()
	s.LoggedBytes = dec.I64()
	s.LogPenalty = dec.Dur()
	s.Forced = dec.I64()
	s.MirroredMessages = dec.I64()
	s.MirroredBytes = dec.I64()
	s.Heartbeats = dec.I64()
	s.Takeovers = dec.I64()
}

// storeQuiesced reports whether an optionally-configured store has no
// in-flight writes. Store-internal write queues are invisible to the
// engine's safe-boundary scans, so every protocol that owns a store must
// fold this into its own Quiesced.
func storeQuiesced(st *storage.Store) bool { return st == nil || st.Quiesced() }

// encodeStore serializes an optionally-configured shared store. Each store
// is owned by exactly one protocol per simulation, so its state rides in
// that protocol's agent section.
func encodeStore(enc *snapshot.Encoder, st *storage.Store) {
	enc.Bool(st != nil)
	if st != nil {
		st.EncodeState(enc)
	}
}

// decodeStore restores an optionally-configured shared store, rebinding it
// to the restoring engine's context.
func decodeStore(ctx *sim.Context, dec *snapshot.Decoder, st *storage.Store) {
	had := dec.Bool()
	if dec.Err() != nil {
		return
	}
	if had != (st != nil) {
		dec.Failf("store presence mismatch")
		return
	}
	if st != nil {
		if err := st.RestoreState(ctx, dec); err != nil {
			dec.Failf("store: %v", err)
		}
	}
}

// encodeRounds/decodeRounds serialize completed-round records.
func encodeRounds(enc *snapshot.Encoder, rounds []RoundRecord) {
	enc.Int(len(rounds))
	for _, r := range rounds {
		enc.Time(r.Start)
		enc.Time(r.End)
	}
}

func decodeRounds(dec *snapshot.Decoder) []RoundRecord {
	n := dec.Int()
	if n < 0 || n > dec.Remaining() {
		dec.Failf("round count %d", n)
		return nil
	}
	out := make([]RoundRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, RoundRecord{Start: dec.Time(), End: dec.Time()})
	}
	return out
}

// None has no mutable state at all.

// Quiesced implements sim.Resumable.
func (None) Quiesced() bool { return true }

// EncodeState implements sim.Resumable.
func (None) EncodeState(*snapshot.Encoder) {}

// DecodeState implements sim.Resumable.
func (None) DecodeState(*sim.Context, *snapshot.Decoder) error { return nil }

var _ sim.Resumable = None{}
