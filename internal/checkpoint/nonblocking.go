package checkpoint

import (
	"fmt"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// NonBlockingParams extend Params for the asynchronous variant.
type NonBlockingParams struct {
	Params
	// Window is the wall-clock span of the background write. The same
	// checkpoint bytes that a blocking write would move in Params.Write
	// are streamed out over this longer window while the application keeps
	// running. Must be >= Write.
	Window simtime.Duration
	// Slowdown is the CPU interference factor (>= 1) the application
	// suffers during the window: copy-on-write faults, cache pollution,
	// and I/O contention from the background writer. 1.0 = free writes.
	Slowdown float64
}

// Validate checks the parameter set.
func (p NonBlockingParams) Validate() error {
	if err := p.Params.Validate(); err != nil {
		return err
	}
	if p.Window < p.Write {
		return fmt.Errorf("checkpoint: non-blocking window %v < write time %v",
			p.Window, p.Write)
	}
	if !(p.Slowdown >= 1) {
		return fmt.Errorf("checkpoint: non-blocking slowdown %v < 1", p.Slowdown)
	}
	return nil
}

// NonBlockingCoordinated is the asynchronous variant of the coordinated
// protocol: a single trigger sweep down the binomial tree starts a
// background checkpoint write on every rank — no quiesce phase, no
// application gate. Each rank's application runs throughout, slowed by the
// configured interference factor for the duration of the write window, and
// reports completion up the tree. The round's recovery line commits when
// the root has every report.
//
// This models copy-on-write / diskless asynchronous checkpointing. Real
// implementations must also capture in-flight messages to make the line
// consistent (e.g. Chandy–Lamport markers or logging during the window);
// we charge no extra cost for that, so the measured overhead is a lower
// bound that isolates the coordination-and-interference component the
// study cares about.
type NonBlockingCoordinated struct {
	p     NonBlockingParams
	stats Stats
	ctx   *sim.Context

	active    bool
	tickTime  simtime.Time
	tree      coordinator // used only for its children/parent shape
	donesLeft []int
	// pendingBusy/committedBusy mirror coordinator's line bookkeeping.
	pendingBusy   []simtime.Duration
	committedBusy []simtime.Duration
	lastLine      simtime.Time
}

// NewNonBlockingCoordinated builds the protocol.
func NewNonBlockingCoordinated(p NonBlockingParams) (*NonBlockingCoordinated, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &NonBlockingCoordinated{p: p}, nil
}

// Init implements sim.Agent.
func (n *NonBlockingCoordinated) Init(ctx *sim.Context) {
	n.setup(ctx)
	ctx.AtOwned(simtime.Time(0).Add(n.p.Interval), n, 0, 0)
}

// setup allocates run state without scheduling, for Init and DecodeState.
func (n *NonBlockingCoordinated) setup(ctx *sim.Context) {
	n.ctx = ctx
	p := ctx.NumRanks()
	n.tree = coordinator{members: make([]int, p)}
	n.donesLeft = make([]int, p)
	n.pendingBusy = make([]simtime.Duration, p)
	n.committedBusy = make([]simtime.Duration, p)
}

// OnTimer implements sim.TimerOwner: the only timer is the round tick.
func (n *NonBlockingCoordinated) OnTimer(uint8, int64) { n.tick() }

// children/parent reuse the binomial shape over virtual ranks 0..P-1.
func (n *NonBlockingCoordinated) children(i int) []int { return n.tree.children(i) }

func (n *NonBlockingCoordinated) parent(i int) int { return i - (i & -i) }

func (n *NonBlockingCoordinated) tick() {
	if n.active {
		return
	}
	n.active = true
	n.tickTime = n.ctx.Now()
	n.trigger(0)
}

// trigger forwards the start marker down the tree and begins the local
// background write.
func (n *NonBlockingCoordinated) trigger(i int) {
	kids := n.children(i)
	n.donesLeft[i] = len(kids) + 1
	for _, j := range kids {
		j := j
		n.ctx.SendControl(i, j, n.p.ctlBytes(),
			func(simtime.Time) { n.trigger(j) })
	}
	restore := func() {}
	if n.p.Slowdown > 1 {
		restore = n.ctx.ScaleCPU(i, n.p.Slowdown)
	}
	finish := func() {
		restore()
		n.stats.Writes++
		n.pendingBusy[i] = n.ctx.RankBusy(i)
		n.done(i)
	}
	st := n.p.Store
	if st == nil || !st.TierLimited(n.p.Tier) {
		n.ctx.After(n.p.Window, finish)
		return
	}
	// Bandwidth-limited store: the background writer drains the same bytes a
	// blocking write would move in Params.Write, concurrently with every
	// other writer in the machine. The write (and its interference window)
	// ends when both the nominal window has elapsed and the drain completes —
	// contention stretches the window, it never shrinks it.
	st.Bind(n.ctx)
	b := n.p.Bytes
	if b <= 0 {
		b = st.BytesFor(n.p.Tier, n.p.Write)
	}
	pending := 2
	arrive := func() {
		pending--
		if pending == 0 {
			finish()
		}
	}
	st.Begin(i, n.p.Tier, b, func(simtime.Time) { arrive() })
	n.ctx.After(n.p.Window, arrive)
}

func (n *NonBlockingCoordinated) done(i int) {
	n.donesLeft[i]--
	if n.donesLeft[i] > 0 {
		return
	}
	if i == 0 {
		end := n.ctx.Now()
		n.stats.Rounds++
		n.stats.RoundSpan += end.Sub(n.tickTime)
		copy(n.committedBusy, n.pendingBusy)
		n.lastLine = end
		n.active = false
		n.ctx.AtOwned(simtime.Max(n.tickTime.Add(n.p.Interval), end), n, 0, 0)
		return
	}
	p := n.parent(i)
	n.ctx.SendControl(i, p, n.p.ctlBytes(),
		func(simtime.Time) { n.done(p) })
}

// Name implements Protocol.
func (n *NonBlockingCoordinated) Name() string { return "nonblocking-coordinated" }

// Stats implements Protocol.
func (n *NonBlockingCoordinated) Stats() Stats { return n.stats }

// LastCheckpoint implements Protocol.
func (n *NonBlockingCoordinated) LastCheckpoint(int) simtime.Time { return n.lastLine }

// ProgressAtCheckpoint implements Protocol.
//
// The background write captures the rank's state as of the *start* of the
// window (copy-on-write semantics), but committedBusy is sampled at window
// end; the difference only makes recovery estimates slightly optimistic
// about saved progress, bounded by one window of work.
func (n *NonBlockingCoordinated) ProgressAtCheckpoint(rank int) simtime.Duration {
	return n.committedBusy[rank]
}

// Quiesced implements sim.Resumable: snapshots wait for rounds (and their
// background writes) to complete.
func (n *NonBlockingCoordinated) Quiesced() bool {
	return !n.active && storeQuiesced(n.p.Store)
}

// EncodeState implements sim.Resumable. Per-round fields (donesLeft,
// pendingBusy, tickTime) are live only while active.
func (n *NonBlockingCoordinated) EncodeState(enc *snapshot.Encoder) {
	if n.active {
		panic("checkpoint: encoding non-blocking round mid-flight")
	}
	encodeStats(enc, &n.stats)
	snapshot.EncodeI64Slice(enc, n.committedBusy)
	enc.Time(n.lastLine)
	encodeStore(enc, n.p.Store)
}

// DecodeState implements sim.Resumable.
func (n *NonBlockingCoordinated) DecodeState(ctx *sim.Context, dec *snapshot.Decoder) error {
	n.setup(ctx)
	decodeStats(dec, &n.stats)
	n.committedBusy = snapshot.DecodeI64Slice[simtime.Duration](dec, ctx.NumRanks())
	n.lastLine = dec.Time()
	decodeStore(ctx, dec, n.p.Store)
	return dec.Err()
}

var (
	_ Protocol      = (*NonBlockingCoordinated)(nil)
	_ sim.Resumable = (*NonBlockingCoordinated)(nil)
)
