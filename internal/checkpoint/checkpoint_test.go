package checkpoint

import (
	"strings"
	"testing"
	"testing/quick"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/workload"
)

func stencil(t *testing.T, ranks, iters int, compute simtime.Duration) *goal.Program {
	t.Helper()
	p, err := workload.Stencil2D(workload.Stencil2DConfig{
		Base:      workload.Base{Ranks: ranks, Iterations: iters, Compute: compute, Seed: 1},
		HaloBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func ep(t *testing.T, ranks, iters int, compute simtime.Duration) *goal.Program {
	t.Helper()
	p, err := workload.EP(workload.EPConfig{
		Base: workload.Base{Ranks: ranks, Iterations: iters, Compute: compute, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runWith(t *testing.T, prog *goal.Program, agents ...sim.Agent) *sim.Result {
	t.Helper()
	e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog, Agents: agents, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParamsValidate(t *testing.T) {
	good := Params{Interval: simtime.Second, Write: simtime.Millisecond}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []Params{
		{Interval: 0, Write: 1},
		{Interval: -1, Write: 1},
		{Interval: 1, Write: -1},
		{Interval: 1, Write: 1, CtlBytes: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if good.ctlBytes() != 64 {
		t.Errorf("default ctl bytes = %d", good.ctlBytes())
	}
}

func TestCoordinatorTreeShape(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16, 33} {
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		c := &coordinator{members: members}
		seen := make([]int, n)
		depth := 0
		var walk func(i, d int)
		walk = func(i, d int) {
			seen[i]++
			if d > depth {
				depth = d
			}
			for _, j := range c.children(i) {
				if c.parent(j) != i {
					t.Errorf("n=%d: parent(%d)=%d, want %d", n, j, c.parent(j), i)
				}
				walk(j, d+1)
			}
		}
		walk(0, 0)
		for i, s := range seen {
			if s != 1 {
				t.Errorf("n=%d: node %d visited %d times", n, i, s)
			}
		}
		// Binomial depth is the max popcount of any virtual index.
		want := 0
		for v := 0; v < n; v++ {
			pc := 0
			for x := v; x > 0; x &= x - 1 {
				pc++
			}
			if pc > want {
				want = pc
			}
		}
		if depth != want {
			t.Errorf("n=%d: depth %d, want %d", n, depth, want)
		}
	}
}

func TestNoneProtocol(t *testing.T) {
	var p None
	if p.Name() != "none" || p.Stats() != (Stats{}) || p.LastCheckpoint(3) != 0 {
		t.Error("None misbehaves")
	}
	r := runWith(t, ep(t, 4, 3, simtime.Millisecond), p)
	if r.TotalSeized() != 0 {
		t.Error("None seized CPU")
	}
}

func TestCoordinatedBasics(t *testing.T) {
	// 8 ranks, 200ms of compute, checkpoint every 20ms writing 1ms.
	prog := ep(t, 8, 20, 10*simtime.Millisecond)
	params := Params{Interval: 20 * simtime.Millisecond, Write: simtime.Millisecond}
	cp, err := NewCoordinated(params)
	if err != nil {
		t.Fatal(err)
	}
	base := runWith(t, ep(t, 8, 20, 10*simtime.Millisecond))
	r := runWith(t, prog, cp)

	// Coordination sweeps wait at op boundaries (10ms calcs here), so round
	// spans exceed the interval and rounds back-pressure: expect at least a
	// few completed rounds, not makespan/interval.
	st := cp.Stats()
	if st.Rounds < 3 {
		t.Errorf("rounds = %d, want at least 3", st.Rounds)
	}
	if st.Writes < st.Rounds*8 || st.Writes > (st.Rounds+1)*8 {
		t.Errorf("writes = %d inconsistent with %d complete rounds", st.Writes, st.Rounds)
	}
	if st.CoordDelay <= 0 || st.RoundSpan < st.CoordDelay {
		t.Errorf("coord delay %v, round span %v", st.CoordDelay, st.RoundSpan)
	}
	if cp.LastCheckpoint(0) == 0 || cp.LastCheckpoint(0) != cp.LastCheckpoint(7) {
		t.Error("global recovery line wrong")
	}
	if cp.LastLineStart() >= cp.LastCheckpoint(0) {
		t.Error("line start not before line end")
	}
	if len(cp.Rounds()) != int(st.Rounds) {
		t.Errorf("round records = %d, rounds = %d", len(cp.Rounds()), st.Rounds)
	}
	// Engine-side accounting.
	if got := r.SeizedTime[ReasonWrite]; got != simtime.Duration(st.Writes)*params.Write {
		t.Errorf("seized[%s] = %v, writes = %d", ReasonWrite, got, st.Writes)
	}
	if r.HeldTime[ReasonCoord] <= 0 {
		t.Error("no coordination hold time recorded")
	}
	if r.Metrics.CtlMessages == 0 {
		t.Error("no control messages for coordination")
	}
	// Overhead at least the serialized write time on the critical path.
	minOverhead := simtime.Duration(st.Rounds) * params.Write
	if got := r.Makespan.Sub(base.Makespan); got < minOverhead {
		t.Errorf("overhead %v < minimum %v", got, minOverhead)
	}
}

func TestCoordinatedRoundsDoNotOverlap(t *testing.T) {
	prog := stencil(t, 9, 40, 5*simtime.Millisecond)
	params := Params{Interval: 10 * simtime.Millisecond, Write: 2 * simtime.Millisecond}
	cp, _ := NewCoordinated(params)
	runWith(t, prog, cp)
	rounds := cp.Rounds()
	if len(rounds) < 3 {
		t.Fatalf("only %d rounds", len(rounds))
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i].Start < rounds[i-1].End {
			t.Errorf("round %d starts at %v before round %d ends at %v",
				i, rounds[i].Start, i-1, rounds[i-1].End)
		}
		if rounds[i].Start < rounds[i-1].Start.Add(params.Interval) {
			t.Errorf("round %d starts %v after %v, before one interval elapsed",
				i, rounds[i].Start, rounds[i-1].Start)
		}
	}
}

func TestUncoordinatedOffsets(t *testing.T) {
	prog := ep(t, 8, 20, 10*simtime.Millisecond)
	params := Params{Interval: 20 * simtime.Millisecond, Write: simtime.Millisecond}
	for _, pol := range []OffsetPolicy{Aligned, Staggered, Random} {
		up, err := NewUncoordinated(params, pol, LogParams{})
		if err != nil {
			t.Fatal(err)
		}
		r := runWith(t, prog, up)
		st := up.Stats()
		if st.Rounds != 0 {
			t.Errorf("%v: uncoordinated has rounds", pol)
		}
		if st.Writes < 8 {
			t.Errorf("%v: writes = %d", pol, st.Writes)
		}
		if r.Metrics.CtlMessages != 0 {
			t.Errorf("%v: uncoordinated sent control messages", pol)
		}
		for rank := 0; rank < 8; rank++ {
			if up.LastCheckpoint(rank) == 0 {
				t.Errorf("%v: rank %d has no checkpoint", pol, rank)
			}
		}
		if !strings.HasPrefix(up.Name(), "uncoordinated-") {
			t.Errorf("name = %q", up.Name())
		}
	}
}

func TestStaggeredSpreadsCheckpoints(t *testing.T) {
	// With staggering, per-rank last-checkpoint times must differ; aligned,
	// on an EP workload, they coincide (no interference).
	prog := ep(t, 8, 400, 250*simtime.Microsecond)
	params := Params{Interval: 30 * simtime.Millisecond, Write: simtime.Microsecond}

	al, _ := NewUncoordinated(params, Aligned, LogParams{})
	runWith(t, prog, al)
	distinctAligned := map[simtime.Time]bool{}
	for r := 0; r < 8; r++ {
		distinctAligned[al.LastCheckpoint(r)] = true
	}

	stg, _ := NewUncoordinated(params, Staggered, LogParams{})
	runWith(t, ep(t, 8, 400, 250*simtime.Microsecond), stg)
	distinctStaggered := map[simtime.Time]bool{}
	for r := 0; r < 8; r++ {
		distinctStaggered[stg.LastCheckpoint(r)] = true
	}
	if len(distinctAligned) != 1 {
		t.Errorf("aligned EP checkpoints not aligned: %d distinct", len(distinctAligned))
	}
	if len(distinctStaggered) < 8 {
		t.Errorf("staggered checkpoints not spread: %d distinct", len(distinctStaggered))
	}
}

func TestRandomOffsetsDeterministicBySeed(t *testing.T) {
	params := Params{Interval: 20 * simtime.Millisecond, Write: simtime.Millisecond}
	get := func() []simtime.Time {
		up, _ := NewUncoordinated(params, Random, LogParams{})
		runWith(t, ep(t, 8, 10, 10*simtime.Millisecond), up)
		out := make([]simtime.Time, 8)
		for r := range out {
			out[r] = up.LastCheckpoint(r)
		}
		return out
	}
	a, b := get(), get()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random offsets differ across identical runs")
		}
	}
}

func TestLoggingPenaltyTaxesSends(t *testing.T) {
	prog1 := stencil(t, 9, 10, simtime.Millisecond)
	prog2 := stencil(t, 9, 10, simtime.Millisecond)
	params := Params{Interval: simtime.Hour, Write: 0} // isolate logging cost

	noLog, _ := NewUncoordinated(params, Aligned, LogParams{})
	rNo := runWith(t, prog1, noLog)

	logged, _ := NewUncoordinated(params, Aligned, LogParams{Alpha: 10 * simtime.Microsecond, BetaNsPerByte: 1})
	rLog := runWith(t, prog2, logged)

	st := logged.Stats()
	if st.LoggedMessages != rLog.Metrics.AppMessages {
		t.Errorf("logged %d of %d messages", st.LoggedMessages, rLog.Metrics.AppMessages)
	}
	if st.LoggedBytes != rLog.Metrics.AppBytes {
		t.Errorf("logged %d of %d bytes", st.LoggedBytes, rLog.Metrics.AppBytes)
	}
	wantPenalty := simtime.Duration(st.LoggedMessages)*(10*simtime.Microsecond) +
		simtime.Duration(st.LoggedBytes)
	if st.LogPenalty != wantPenalty {
		t.Errorf("penalty = %v, want %v", st.LogPenalty, wantPenalty)
	}
	if rLog.Makespan <= rNo.Makespan {
		t.Error("logging did not slow the application")
	}
}

func TestHierarchicalExtremes(t *testing.T) {
	params := Params{Interval: 20 * simtime.Millisecond, Write: simtime.Millisecond}
	logp := LogParams{Alpha: simtime.Microsecond, BetaNsPerByte: 0.5}

	// Cluster size >= P: one cluster, nothing is logged.
	all, err := NewHierarchical(params, 16, logp)
	if err != nil {
		t.Fatal(err)
	}
	runWith(t, stencil(t, 16, 60, simtime.Millisecond), all)
	if st := all.Stats(); st.LoggedMessages != 0 {
		t.Errorf("single cluster logged %d messages", st.LoggedMessages)
	}
	if all.Stats().Rounds == 0 {
		t.Error("single cluster ran no rounds")
	}

	// Cluster size 1: every message crosses clusters.
	each, _ := NewHierarchical(params, 1, logp)
	r := runWith(t, stencil(t, 16, 60, simtime.Millisecond), each)
	if st := each.Stats(); st.LoggedMessages != r.Metrics.AppMessages {
		t.Errorf("cluster=1 logged %d of %d", st.LoggedMessages, r.Metrics.AppMessages)
	}
	if r.Metrics.CtlMessages != 0 {
		t.Error("cluster=1 should coordinate without messages")
	}
}

func TestHierarchicalMiddle(t *testing.T) {
	params := Params{Interval: 20 * simtime.Millisecond, Write: simtime.Millisecond}
	logp := LogParams{Alpha: simtime.Microsecond}
	h, err := NewHierarchical(params, 4, logp)
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, stencil(t, 16, 60, simtime.Millisecond), h)
	st := h.Stats()
	if st.Rounds == 0 || st.Writes == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.LoggedMessages == 0 || st.LoggedMessages >= r.Metrics.AppMessages {
		t.Errorf("logged %d of %d: should be a strict subset", st.LoggedMessages, r.Metrics.AppMessages)
	}
	for rank := 0; rank < 16; rank++ {
		if h.LastCheckpoint(rank) == 0 {
			t.Errorf("rank %d has no cluster checkpoint", rank)
		}
		if h.LastLineStart(rank) >= h.LastCheckpoint(rank) {
			t.Errorf("rank %d line start after end", rank)
		}
	}
	if h.Name() != "hierarchical-4" || h.ClusterSize() != 4 {
		t.Errorf("identity wrong: %s %d", h.Name(), h.ClusterSize())
	}
	// Ranks in the same cluster share a line; a rank in another cluster
	// (staggered) generally does not.
	if h.LastCheckpoint(0) != h.LastCheckpoint(3) {
		t.Error("cluster members disagree on recovery line")
	}
}

func TestConstructorValidation(t *testing.T) {
	bad := Params{Interval: 0}
	if _, err := NewCoordinated(bad); err == nil {
		t.Error("bad coordinated accepted")
	}
	if _, err := NewUncoordinated(bad, Aligned, LogParams{}); err == nil {
		t.Error("bad uncoordinated accepted")
	}
	good := Params{Interval: 1, Write: 1}
	if _, err := NewUncoordinated(good, OffsetPolicy(9), LogParams{}); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := NewUncoordinated(good, Aligned, LogParams{Alpha: -1}); err == nil {
		t.Error("bad log alpha accepted")
	}
	if _, err := NewUncoordinated(good, Aligned, LogParams{BetaNsPerByte: -1}); err == nil {
		t.Error("bad log beta accepted")
	}
	if _, err := NewHierarchical(good, 0, LogParams{}); err == nil {
		t.Error("bad cluster size accepted")
	}
}

func TestParseOffsetPolicy(t *testing.T) {
	for _, p := range []OffsetPolicy{Aligned, Staggered, Random} {
		got, err := ParseOffsetPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v failed: %v %v", p, got, err)
		}
	}
	if _, err := ParseOffsetPolicy("bogus"); err == nil {
		t.Error("bogus policy parsed")
	}
	if OffsetPolicy(9).String() == "" {
		t.Error("unknown policy String empty")
	}
}

// Property: on a communicating workload, all three protocols complete
// without deadlock for arbitrary small scales, and checkpoint accounting is
// consistent (writes * Write == seized checkpoint time).
func TestQuickProtocolsComplete(t *testing.T) {
	f := func(seed uint8) bool {
		ranks := int(seed)%6 + 2
		prog, err := workload.Stencil2D(workload.Stencil2DConfig{
			Base:      workload.Base{Ranks: ranks, Iterations: 4, Compute: simtime.Millisecond, Seed: uint64(seed)},
			HaloBytes: 512,
		})
		if err != nil {
			return false
		}
		params := Params{Interval: 2 * simtime.Millisecond, Write: 100 * simtime.Microsecond}
		var protos []Protocol
		cp, _ := NewCoordinated(params)
		up, _ := NewUncoordinated(params, OffsetPolicy(seed%3), LogParams{Alpha: simtime.Microsecond})
		hp, _ := NewHierarchical(params, int(seed)%3+1, LogParams{Alpha: simtime.Microsecond})
		protos = append(protos, cp, up, hp)
		for _, p := range protos {
			prog, err := workload.Stencil2D(workload.Stencil2DConfig{
				Base:      workload.Base{Ranks: ranks, Iterations: 4, Compute: simtime.Millisecond, Seed: uint64(seed)},
				HaloBytes: 512,
			})
			if err != nil {
				return false
			}
			e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: prog, Agents: []sim.Agent{p}, Seed: uint64(seed)})
			if err != nil {
				return false
			}
			r, err := e.Run()
			if err != nil {
				return false
			}
			if r.SeizedTime[ReasonWrite] != simtime.Duration(p.Stats().Writes)*params.Write {
				return false
			}
		}
		_ = prog
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
