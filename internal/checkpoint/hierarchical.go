package checkpoint

import (
	"fmt"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// Hierarchical is the hybrid protocol: ranks are partitioned into
// fixed-size clusters; each cluster runs the two-phase coordinated protocol
// internally (on its own staggered schedule), and only messages that cross
// cluster boundaries pay the message-logging tax. Cluster size 1 degrades
// to uncoordinated-staggered with full logging; cluster size P degrades to
// the fully coordinated protocol with no logging.
type Hierarchical struct {
	p           Params
	clusterSize int
	log         LogParams
	stats       Stats
	numRanks    int
	coords      []*coordinator
	// lastLine[k] is the completion time of cluster k's last round;
	// lineStart[k] its start.
	lastLine  []simtime.Time
	lineStart []simtime.Time
}

// NewHierarchical builds the protocol with the given cluster size.
func NewHierarchical(p Params, clusterSize int, log LogParams) (*Hierarchical, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := log.Validate(); err != nil {
		return nil, err
	}
	if clusterSize <= 0 {
		return nil, fmt.Errorf("checkpoint: cluster size %d", clusterSize)
	}
	return &Hierarchical{p: p, clusterSize: clusterSize, log: log}, nil
}

// cluster returns the cluster index of a rank.
func (h *Hierarchical) cluster(rank int) int { return rank / h.clusterSize }

// Init implements sim.Agent.
func (h *Hierarchical) Init(ctx *sim.Context) {
	h.setup(ctx)
	numClusters := len(h.coords)
	for k := 0; k < numClusters; k++ {
		// Stagger cluster schedules across the interval.
		off := simtime.Duration(int64(h.p.Interval) * int64(k) / int64(numClusters))
		h.coords[k].schedule(simtime.Time(0).Add(h.p.Interval + off))
	}
}

// setup builds the per-cluster coordinators without scheduling their rounds,
// for both Init and DecodeState.
func (h *Hierarchical) setup(ctx *sim.Context) {
	h.numRanks = ctx.NumRanks()
	numClusters := (h.numRanks + h.clusterSize - 1) / h.clusterSize
	h.lastLine = make([]simtime.Time, numClusters)
	h.lineStart = make([]simtime.Time, numClusters)
	h.coords = make([]*coordinator, numClusters)
	for k := 0; k < numClusters; k++ {
		lo := k * h.clusterSize
		hi := lo + h.clusterSize
		if hi > h.numRanks {
			hi = h.numRanks
		}
		members := make([]int, hi-lo)
		for i := range members {
			members[i] = lo + i
		}
		k := k
		h.coords[k] = newCoordinator(ctx, h.p, members, &h.stats, nil,
			func(tick, end simtime.Time) {
				h.lastLine[k] = end
				h.lineStart[k] = tick
			})
		h.coords[k].arm = func(t simtime.Time) { ctx.AtOwned(t, h, 0, int64(k)) }
	}
}

// OnTimer implements sim.TimerOwner: arg is the cluster whose round ticks.
func (h *Hierarchical) OnTimer(_ uint8, arg int64) { h.coords[arg].tick() }

// Quiesced implements sim.Resumable: every cluster round must be complete.
func (h *Hierarchical) Quiesced() bool {
	for _, c := range h.coords {
		if c.active {
			return false
		}
	}
	return storeQuiesced(h.p.Store)
}

// EncodeState implements sim.Resumable.
func (h *Hierarchical) EncodeState(enc *snapshot.Encoder) {
	encodeStats(enc, &h.stats)
	snapshot.EncodeI64Slice(enc, h.lastLine)
	snapshot.EncodeI64Slice(enc, h.lineStart)
	for _, c := range h.coords {
		c.encodeState(enc)
	}
	encodeStore(enc, h.p.Store)
}

// DecodeState implements sim.Resumable.
func (h *Hierarchical) DecodeState(ctx *sim.Context, dec *snapshot.Decoder) error {
	h.setup(ctx)
	decodeStats(dec, &h.stats)
	h.lastLine = snapshot.DecodeI64Slice[simtime.Time](dec, len(h.coords))
	h.lineStart = snapshot.DecodeI64Slice[simtime.Time](dec, len(h.coords))
	for _, c := range h.coords {
		c.decodeState(dec)
	}
	decodeStore(ctx, dec, h.p.Store)
	return dec.Err()
}

// SendPenalty implements sim.SendHook: only inter-cluster messages are
// logged.
func (h *Hierarchical) SendPenalty(src, dst int, bytes int64) simtime.Duration {
	if h.cluster(src) == h.cluster(dst) {
		return 0
	}
	d := h.log.penalty(bytes)
	h.stats.LoggedMessages++
	h.stats.LoggedBytes += bytes
	h.stats.LogPenalty += d
	return d
}

// LogConfig returns the logging parameter set (see validate.TaxedLogger).
func (h *Hierarchical) LogConfig() LogParams { return h.log }

// Taxed reports whether a src→dst application send pays the logging tax:
// only inter-cluster sends do.
func (h *Hierarchical) Taxed(src, dst int) bool {
	return h.cluster(src) != h.cluster(dst)
}

// Name implements Protocol.
func (h *Hierarchical) Name() string {
	return fmt.Sprintf("hierarchical-%d", h.clusterSize)
}

// Stats implements Protocol.
func (h *Hierarchical) Stats() Stats { return h.stats }

// LastCheckpoint implements Protocol: a rank recovers from its cluster's
// last completed round.
func (h *Hierarchical) LastCheckpoint(rank int) simtime.Time {
	return h.lastLine[h.cluster(rank)]
}

// ProgressAtCheckpoint implements Protocol: the progress saved by the
// rank's cluster's last completed round.
func (h *Hierarchical) ProgressAtCheckpoint(rank int) simtime.Duration {
	k := h.cluster(rank)
	return h.coords[k].committedBusy[rank-k*h.clusterSize]
}

// LastLineStart returns the start of the last completed round of rank's
// cluster.
func (h *Hierarchical) LastLineStart(rank int) simtime.Time {
	return h.lineStart[h.cluster(rank)]
}

// ClusterSize returns the configured cluster size.
func (h *Hierarchical) ClusterSize() int { return h.clusterSize }

// ClusterMembers returns the ranks sharing rank's cluster (including rank
// itself) — the rollback unit for cluster-level recovery.
func (h *Hierarchical) ClusterMembers(rank int) []int {
	k := h.cluster(rank)
	lo := k * h.clusterSize
	hi := lo + h.clusterSize
	if hi > h.numRanks {
		hi = h.numRanks
	}
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

var (
	_ Protocol      = (*Hierarchical)(nil)
	_ sim.SendHook  = (*Hierarchical)(nil)
	_ sim.Resumable = (*Hierarchical)(nil)
)
