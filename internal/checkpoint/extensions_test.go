package checkpoint

import (
	"testing"

	"checkpointsim/internal/simtime"
)

func TestNonBlockingParamsValidate(t *testing.T) {
	good := NonBlockingParams{
		Params:   Params{Interval: 10 * simtime.Millisecond, Write: simtime.Millisecond},
		Window:   5 * simtime.Millisecond,
		Slowdown: 1.25,
	}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []NonBlockingParams{
		{Params: Params{Interval: 0}, Window: 1, Slowdown: 1},
		{Params: good.Params, Window: good.Write / 2, Slowdown: 1.25},
		{Params: good.Params, Window: good.Window, Slowdown: 0.9},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
		if _, err := NewNonBlockingCoordinated(p); err == nil {
			t.Errorf("constructor accepted bad params %d", i)
		}
	}
}

func TestNonBlockingRunsWithoutGating(t *testing.T) {
	params := NonBlockingParams{
		Params:   Params{Interval: 10 * simtime.Millisecond, Write: simtime.Millisecond},
		Window:   4 * simtime.Millisecond,
		Slowdown: 1.25,
	}
	nb, err := NewNonBlockingCoordinated(params)
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, stencil(t, 16, 60, simtime.Millisecond), nb)
	st := nb.Stats()
	if st.Rounds == 0 || st.Writes == 0 {
		t.Fatalf("no rounds: %+v", st)
	}
	// The defining property: no application gating at all.
	if len(r.HeldTime) != 0 {
		t.Errorf("non-blocking protocol gated the app: %v", r.HeldTime)
	}
	// And no exclusive write seizures either.
	if r.SeizedTime[ReasonWrite] != 0 {
		t.Errorf("non-blocking protocol seized CPU: %v", r.SeizedTime)
	}
	// Interference shows up as scaled time instead.
	var extra simtime.Duration
	for _, d := range r.RankScaledExtra {
		extra += d
	}
	if extra == 0 {
		t.Error("no interference recorded despite slowdown > 1")
	}
	if nb.LastCheckpoint(0) == 0 {
		t.Error("no recovery line committed")
	}
	for rank := 0; rank < 16; rank++ {
		if nb.ProgressAtCheckpoint(rank) == 0 {
			t.Errorf("rank %d has no progress snapshot", rank)
		}
	}
	if nb.Name() != "nonblocking-coordinated" {
		t.Errorf("name = %q", nb.Name())
	}
}

func TestNonBlockingCheaperThanBlocking(t *testing.T) {
	// With equal interval and write volume, the non-blocking variant should
	// beat the blocking one on a coupled workload: no quiesce, no gate.
	params := Params{Interval: 10 * simtime.Millisecond, Write: 2 * simtime.Millisecond}
	base := runWith(t, stencil(t, 16, 60, simtime.Millisecond))

	cp, _ := NewCoordinated(params)
	rBlocking := runWith(t, stencil(t, 16, 60, simtime.Millisecond), cp)

	nb, _ := NewNonBlockingCoordinated(NonBlockingParams{
		Params: params, Window: 8 * simtime.Millisecond, Slowdown: 1.25})
	rNB := runWith(t, stencil(t, 16, 60, simtime.Millisecond), nb)

	ovB := rBlocking.OverheadPercent(base)
	ovN := rNB.OverheadPercent(base)
	if ovN >= ovB {
		t.Errorf("non-blocking overhead %.1f%% >= blocking %.1f%%", ovN, ovB)
	}
	if ovN <= 0 {
		t.Errorf("non-blocking overhead %.1f%% should still be positive", ovN)
	}
}

func TestPartnerParamsValidate(t *testing.T) {
	good := PartnerParams{Interval: 10 * simtime.Millisecond,
		SerializeTime: 100 * simtime.Microsecond, CkptBytes: 1 << 20}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []PartnerParams{
		{Interval: 0, CkptBytes: 1},
		{Interval: 1, SerializeTime: -1, CkptBytes: 1},
		{Interval: 1, CkptBytes: 0},
		{Interval: 1, CkptBytes: 1, Stride: -2},
		{Interval: 1, CkptBytes: 1, Offsets: OffsetPolicy(9)},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
		if _, err := NewPartner(p); err == nil {
			t.Errorf("constructor accepted bad params %d", i)
		}
	}
}

func TestPartnerShipsCheckpoints(t *testing.T) {
	params := PartnerParams{
		Interval:      10 * simtime.Millisecond,
		SerializeTime: 100 * simtime.Microsecond,
		CkptBytes:     256 * 1024,
		Offsets:       Staggered,
	}
	pt, err := NewPartner(params)
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, stencil(t, 16, 60, simtime.Millisecond), pt)
	st := pt.Stats()
	if st.Writes == 0 {
		t.Fatal("no partner checkpoints")
	}
	bytes, transfers := pt.Shipped()
	if transfers != st.Writes {
		t.Errorf("transfers %d != writes %d", transfers, st.Writes)
	}
	if bytes != transfers*params.CkptBytes {
		t.Errorf("shipped %d bytes over %d transfers", bytes, transfers)
	}
	// Transfers are real control traffic.
	if r.Metrics.CtlBytes < bytes {
		t.Errorf("ctl bytes %d < shipped %d", r.Metrics.CtlBytes, bytes)
	}
	for rank := 0; rank < 16; rank++ {
		if pt.LastCheckpoint(rank) == 0 {
			t.Errorf("rank %d has no committed image", rank)
		}
		if pt.ProgressAtCheckpoint(rank) == 0 {
			t.Errorf("rank %d has no progress snapshot", rank)
		}
	}
	if pt.Name() != "partner" {
		t.Errorf("name = %q", pt.Name())
	}
}

func TestPartnerDefaultStrideIsHalfMachine(t *testing.T) {
	pt, _ := NewPartner(PartnerParams{Interval: simtime.Millisecond,
		SerializeTime: 1, CkptBytes: 8})
	runWith(t, ep(t, 8, 3, simtime.Millisecond), pt)
	if got := pt.partner(1); got != 5 {
		t.Errorf("partner(1) = %d, want 5", got)
	}
	if got := pt.partner(6); got != 2 {
		t.Errorf("partner(6) = %d, want 2", got)
	}
}

func TestPartnerSingleRank(t *testing.T) {
	pt, _ := NewPartner(PartnerParams{Interval: simtime.Millisecond,
		SerializeTime: 1, CkptBytes: 8})
	runWith(t, ep(t, 1, 5, simtime.Millisecond), pt)
	if pt.Stats().Writes == 0 {
		t.Error("single-rank partner never checkpointed")
	}
	if _, transfers := pt.Shipped(); transfers != 0 {
		t.Error("single rank shipped to itself")
	}
}

func TestIncrementalParamsValidate(t *testing.T) {
	good := IncrementalParams{FullEvery: 10, Fraction: 0.2}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []IncrementalParams{
		{FullEvery: 0, Fraction: 0.5},
		{FullEvery: 5, Fraction: 0},
		{FullEvery: 5, Fraction: 1.5},
	}
	p := Params{Interval: simtime.Millisecond, Write: 100 * simtime.Microsecond}
	for i, ip := range bad {
		if err := ip.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
		if _, err := NewUncoordinatedIncremental(p, Aligned, LogParams{}, ip); err == nil {
			t.Errorf("constructor accepted bad params %d", i)
		}
	}
}

func TestIncrementalWriteDurations(t *testing.T) {
	p := Params{Interval: simtime.Millisecond, Write: 1000}
	u, err := NewUncoordinatedIncremental(p, Aligned, LogParams{},
		IncrementalParams{FullEvery: 4, Fraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// Writes 1..3 incremental, 4 full, 5..7 incremental, 8 full.
	for n, want := range map[int64]simtime.Duration{
		1: 250, 2: 250, 3: 250, 4: 1000, 5: 250, 8: 1000,
	} {
		if got := u.writeDuration(n); got != want {
			t.Errorf("writeDuration(%d) = %v, want %v", n, got, want)
		}
	}
	// Plain protocol always writes full.
	plain, _ := NewUncoordinated(p, Aligned, LogParams{})
	if plain.writeDuration(3) != 1000 {
		t.Error("plain protocol write duration wrong")
	}
}

func TestIncrementalReducesOverhead(t *testing.T) {
	params := Params{Interval: 5 * simtime.Millisecond, Write: simtime.Millisecond}
	base := runWith(t, ep(t, 8, 60, simtime.Millisecond))

	full, _ := NewUncoordinated(params, Aligned, LogParams{})
	rFull := runWith(t, ep(t, 8, 60, simtime.Millisecond), full)

	inc, _ := NewUncoordinatedIncremental(params, Aligned, LogParams{},
		IncrementalParams{FullEvery: 5, Fraction: 0.2})
	rInc := runWith(t, ep(t, 8, 60, simtime.Millisecond), inc)

	if rInc.Makespan >= rFull.Makespan {
		t.Errorf("incremental %v >= full %v", rInc.Makespan, rFull.Makespan)
	}
	if rInc.Makespan <= base.Makespan {
		t.Error("incremental checkpointing should still cost something")
	}
	if inc.Name() != "uncoordinated-aligned-incremental" {
		t.Errorf("name = %q", inc.Name())
	}
}

func TestTwoLevelParamsValidate(t *testing.T) {
	good := TwoLevelParams{
		LocalInterval: 2 * simtime.Millisecond, LocalWrite: 100 * simtime.Microsecond,
		GlobalInterval: 20 * simtime.Millisecond, GlobalWrite: 2 * simtime.Millisecond,
	}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []TwoLevelParams{
		{LocalInterval: 0, GlobalInterval: 1},
		{LocalInterval: 1, GlobalInterval: 0},
		{LocalInterval: 1, GlobalInterval: 1, LocalWrite: -1},
		{LocalInterval: 1, GlobalInterval: 1, GlobalWrite: -1},
		{LocalInterval: 10, GlobalInterval: 1}, // inverted levels
		{LocalInterval: 1, GlobalInterval: 1, CtlBytes: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
		if _, err := NewTwoLevel(p); err == nil {
			t.Errorf("constructor accepted bad params %d", i)
		}
	}
}

func TestTwoLevelRuns(t *testing.T) {
	p := TwoLevelParams{
		LocalInterval: 2 * simtime.Millisecond, LocalWrite: 100 * simtime.Microsecond,
		GlobalInterval: 20 * simtime.Millisecond, GlobalWrite: 2 * simtime.Millisecond,
	}
	tl, err := NewTwoLevel(p)
	if err != nil {
		t.Fatal(err)
	}
	runWith(t, stencil(t, 16, 60, simtime.Millisecond), tl)
	local, global := tl.LevelWrites()
	if local == 0 {
		t.Error("no local writes")
	}
	if global == 0 {
		t.Error("no global writes")
	}
	if local <= global {
		t.Errorf("local writes %d should far exceed global %d", local, global)
	}
	if tl.Stats().Writes != local+global {
		t.Errorf("stats writes %d != %d + %d", tl.Stats().Writes, local, global)
	}
	if tl.Stats().Rounds == 0 {
		t.Error("no global rounds")
	}
	for r := 0; r < 16; r++ {
		if tl.LastCheckpoint(r) == 0 {
			t.Errorf("rank %d uncovered", r)
		}
		// The freshest line is at least as fresh as the global one.
		if tl.LastCheckpoint(r) < tl.GlobalCheckpoint() {
			t.Errorf("rank %d line older than global", r)
		}
		if tl.ProgressAtCheckpoint(r) < tl.GlobalProgressAt(r) {
			t.Errorf("rank %d local progress behind global", r)
		}
	}
	if tl.Name() != "twolevel" {
		t.Errorf("name = %q", tl.Name())
	}
}

func TestTwoLevelLocalLineIsFresher(t *testing.T) {
	// With a 10x interval ratio, the local line should normally be fresher
	// than the global one, making recovery cheap.
	p := TwoLevelParams{
		LocalInterval: simtime.Millisecond, LocalWrite: 50 * simtime.Microsecond,
		GlobalInterval: 10 * simtime.Millisecond, GlobalWrite: simtime.Millisecond,
	}
	tl, _ := NewTwoLevel(p)
	runWith(t, stencil(t, 9, 40, simtime.Millisecond), tl)
	fresher := 0
	for r := 0; r < 9; r++ {
		if tl.LastCheckpoint(r) > tl.GlobalCheckpoint() {
			fresher++
		}
	}
	if fresher < 5 {
		t.Errorf("only %d/9 ranks have a local line fresher than global", fresher)
	}
}
