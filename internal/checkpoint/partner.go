package checkpoint

import (
	"fmt"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
	"checkpointsim/internal/storage"
)

// PartnerParams configure diskless partner (buddy) checkpointing.
type PartnerParams struct {
	// Interval is the per-rank checkpoint interval.
	Interval simtime.Duration
	// SerializeTime is the local CPU seizure to snapshot the rank's state
	// into a send buffer (the "write" analogue; no filesystem involved).
	SerializeTime simtime.Duration
	// CkptBytes is the checkpoint image size shipped to the partner. The
	// transfer is a real message on the simulated network: it contends
	// with application traffic for the sender's NIC and the partner's CPU.
	CkptBytes int64
	// Stride selects the partner: rank ^pairs with (rank + Stride) mod P.
	// Zero defaults to P/2 (cross-machine pairing, the usual choice so
	// that a cabinet-level failure does not take out both copies).
	Stride int
	// Offsets selects the timer policy, as for Uncoordinated.
	Offsets OffsetPolicy
	// Store, when non-nil and limited on the node tier, arbitrates the
	// serialize step against co-located writers: the snapshot streams through
	// the node-local burst buffer at its fair share of the node bandwidth.
	// Nil (or an unconstrained node tier) keeps the legacy fixed
	// SerializeTime seizure.
	Store *storage.Store
}

// Validate checks the parameter set.
func (p PartnerParams) Validate() error {
	if p.Interval <= 0 {
		return fmt.Errorf("checkpoint: non-positive interval %v", p.Interval)
	}
	if p.SerializeTime < 0 {
		return fmt.Errorf("checkpoint: negative serialize time")
	}
	if p.CkptBytes <= 0 {
		return fmt.Errorf("checkpoint: partner checkpoint needs a positive size")
	}
	if p.Stride < 0 {
		return fmt.Errorf("checkpoint: negative partner stride")
	}
	if p.Offsets > Random {
		return fmt.Errorf("checkpoint: bad offset policy %d", p.Offsets)
	}
	return nil
}

// Partner is uncoordinated diskless checkpointing to a partner node's
// memory: each rank periodically serializes its state (a CPU seizure) and
// ships the image to its partner as a real network transfer. There is no
// parallel filesystem in the loop — the cost is CPU, NIC, and the partner's
// receive processing, all of which contend with the application. A rank's
// recovery line commits when its partner has fully received the image.
//
// Message logging is deliberately not bundled in (compose with the logging
// tax of Uncoordinated if the recovery protocol needs it); Partner isolates
// the checkpoint-commit path that experiment E12 compares against
// local-write protocols.
type Partner struct {
	p     PartnerParams
	stats Stats
	ctx   *sim.Context

	last      []simtime.Time
	busyAt    []simtime.Duration
	shipped   int64 // total checkpoint bytes shipped
	transfers int64
}

// NewPartner builds the protocol.
func NewPartner(p PartnerParams) (*Partner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Partner{p: p}, nil
}

// partner returns rank's buddy.
func (pt *Partner) partner(rank int) int {
	n := pt.ctx.NumRanks()
	stride := pt.p.Stride
	if stride == 0 {
		stride = n / 2
	}
	if stride == 0 { // n == 1
		return rank
	}
	return (rank + stride) % n
}

// Init implements sim.Agent.
func (pt *Partner) Init(ctx *sim.Context) {
	pt.ctx = ctx
	n := ctx.NumRanks()
	pt.last = make([]simtime.Time, n)
	pt.busyAt = make([]simtime.Duration, n)
	for r := 0; r < n; r++ {
		var off simtime.Duration
		switch pt.p.Offsets {
		case Aligned:
			off = 0
		case Staggered:
			off = simtime.Duration(int64(pt.p.Interval) * int64(r) / int64(n))
		case Random:
			off = simtime.Duration(ctx.Rand().Intn(int(pt.p.Interval)))
		}
		ctx.AtOwned(simtime.Time(0).Add(pt.p.Interval+off), pt, 0, int64(r))
	}
}

// OnTimer implements sim.TimerOwner: arg is the rank whose timer fired.
func (pt *Partner) OnTimer(_ uint8, arg int64) { pt.fire(int(arg)) }

func (pt *Partner) fire(rank int) {
	fired := pt.ctx.Now()
	buddy := pt.partner(rank)
	storeWrite(pt.ctx, pt.p.Store, storage.TierNode, rank, pt.p.SerializeTime, pt.p.CkptBytes,
		func(end simtime.Time) {
			progress := pt.ctx.RankBusy(rank)
			if buddy == rank {
				// Degenerate single-rank case: the local copy is the line.
				pt.commit(rank, end, progress, fired)
				return
			}
			pt.ctx.SendControl(rank, buddy, pt.p.CkptBytes, func(at simtime.Time) {
				pt.shipped += pt.p.CkptBytes
				pt.transfers++
				pt.commit(rank, at, progress, fired)
			})
		})
}

// commit finalizes one checkpoint and arms the next timer.
func (pt *Partner) commit(rank int, at simtime.Time, progress simtime.Duration, fired simtime.Time) {
	pt.stats.Writes++
	pt.last[rank] = at
	pt.busyAt[rank] = progress
	next := simtime.Max(fired.Add(pt.p.Interval), at)
	pt.ctx.AtOwned(next, pt, 0, int64(rank))
}

// Quiesced implements sim.Resumable: in-flight serializations and partner
// transfers block the boundary through the engine's job and message scans;
// store-queued writes block here.
func (pt *Partner) Quiesced() bool { return storeQuiesced(pt.p.Store) }

// EncodeState implements sim.Resumable.
func (pt *Partner) EncodeState(enc *snapshot.Encoder) {
	encodeStats(enc, &pt.stats)
	snapshot.EncodeI64Slice(enc, pt.last)
	snapshot.EncodeI64Slice(enc, pt.busyAt)
	enc.I64(pt.shipped)
	enc.I64(pt.transfers)
	encodeStore(enc, pt.p.Store)
}

// DecodeState implements sim.Resumable.
func (pt *Partner) DecodeState(ctx *sim.Context, dec *snapshot.Decoder) error {
	pt.ctx = ctx
	n := ctx.NumRanks()
	decodeStats(dec, &pt.stats)
	pt.last = snapshot.DecodeI64Slice[simtime.Time](dec, n)
	pt.busyAt = snapshot.DecodeI64Slice[simtime.Duration](dec, n)
	pt.shipped = dec.I64()
	pt.transfers = dec.I64()
	decodeStore(ctx, dec, pt.p.Store)
	return dec.Err()
}

// Name implements Protocol.
func (pt *Partner) Name() string { return "partner" }

// Stats implements Protocol.
func (pt *Partner) Stats() Stats { return pt.stats }

// LastCheckpoint implements Protocol: the time the partner finished
// receiving the rank's latest image.
func (pt *Partner) LastCheckpoint(rank int) simtime.Time { return pt.last[rank] }

// ProgressAtCheckpoint implements Protocol.
func (pt *Partner) ProgressAtCheckpoint(rank int) simtime.Duration {
	return pt.busyAt[rank]
}

// Shipped returns the total bytes transferred to partners and the number of
// completed transfers.
func (pt *Partner) Shipped() (bytes int64, transfers int64) {
	return pt.shipped, pt.transfers
}

var (
	_ Protocol      = (*Partner)(nil)
	_ sim.Resumable = (*Partner)(nil)
)
