// Package cache provides the content-addressed result cache behind
// cmd/sweepd: sweep outcomes keyed by a canonical hash of the
// fully-resolved configuration, held under an LRU byte budget, with
// singleflight deduplication so concurrent identical requests compute
// once.
//
// The key side is deliberately generic: a configuration is a flat set of
// (name, value) fields, canonicalized independently of the order the
// caller assembled them in and hashed together with a code-version tag.
// internal/exp owns the mapping from experiment Options to fields (it
// knows which knobs change results and which — worker count, telemetry
// hooks — provably do not); this package owns the guarantee that distinct
// field sets can never collide into one canonical form.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
)

// Field is one named configuration value contributing to a cache key.
// Values are pre-rendered strings: the caller formats each knob exactly
// once (floats via strconv 'g' with full precision, durations as integer
// nanoseconds, and so on), so two configs share a key exactly when every
// rendered field matches.
type Field struct {
	Name, Value string
}

// F is a shorthand Field constructor.
func F(name, value string) Field { return Field{Name: name, Value: value} }

// Canonical renders a field set into its canonical encoding: fields sorted
// by (name, value), each name and value length-prefixed. The
// length-prefixing makes the encoding injective — no choice of names and
// values can make two distinct field sets render identically, because
// every byte of every field is attributed unambiguously — and the sort
// makes it independent of assembly order. Duplicate fields are preserved
// (a multiset encoding), so accidentally emitting a field twice changes
// the key rather than silently aliasing.
func Canonical(fields []Field) string {
	sorted := append([]Field(nil), fields...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return sorted[i].Value < sorted[j].Value
	})
	var sb strings.Builder
	for _, f := range sorted {
		sb.WriteString(strconv.Itoa(len(f.Name)))
		sb.WriteByte(':')
		sb.WriteString(f.Name)
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(len(f.Value)))
		sb.WriteByte(':')
		sb.WriteString(f.Value)
		sb.WriteByte(';')
	}
	return sb.String()
}

// Key hashes a code-version tag and a field set into the content address
// used by the cache: hex SHA-256 over the length-prefixed version followed
// by the canonical field encoding. The version tag exists because results
// are a function of the simulator build, not just its knobs — bumping it
// (cmd/sweepd derives it from the module build info) invalidates every
// entry cached by older code without touching the field canonicalization.
func Key(version string, fields []Field) string {
	h := sha256.New()
	h.Write([]byte(strconv.Itoa(len(version))))
	h.Write([]byte(":"))
	h.Write([]byte(version))
	h.Write([]byte("|"))
	h.Write([]byte(Canonical(fields)))
	return hex.EncodeToString(h.Sum(nil))
}
