package cache

import "hash/fnv"

// PickNode rendezvous-hashes a cache key across a node set: every
// (key, node) pair gets an independent pseudo-random score and the highest
// score wins. The winner is a pure function of the key and the surviving
// membership — no ring state, no coordination — and removing one node
// remaps only the keys that node owned (each falls to its second-highest
// scorer), which is exactly the re-sharding behavior the coordinator wants
// when a worker dies: the rest of the cluster keeps its warm caches.
//
// Returns "" for an empty node set.
func PickNode(key string, nodes []string) string {
	best, bestScore := "", uint64(0)
	for _, n := range nodes {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(n))
		if score := h.Sum64(); best == "" || score > bestScore || (score == bestScore && n < best) {
			best, bestScore = n, score
		}
	}
	return best
}

// RankNodes orders the node set by descending rendezvous score for key:
// RankNodes(key, nodes)[0] == PickNode(key, nodes), and dropping the
// primary promotes the next-ranked node. The coordinator uses the ranking
// to fail a job over deterministically when its primary shard is dead.
func RankNodes(key string, nodes []string) []string {
	out := append([]string(nil), nodes...)
	// Selection by repeated PickNode keeps one scoring definition; node
	// sets are small (a handful of workers), so O(n²) is irrelevant.
	for i := 0; i < len(out); i++ {
		winner := PickNode(key, out[i:])
		for j := i; j < len(out); j++ {
			if out[j] == winner {
				out[i], out[j] = out[j], out[i]
				break
			}
		}
	}
	return out
}
