package cache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func compute(val string) func(context.Context) ([]byte, error) {
	return func(context.Context) ([]byte, error) { return []byte(val), nil }
}

func mustGet(t *testing.T, c *Cache, key string, fn func(context.Context) ([]byte, error)) ([]byte, Source) {
	t.Helper()
	val, src, err := c.GetOrCompute(context.Background(), key, fn)
	if err != nil {
		t.Fatalf("GetOrCompute(%q): %v", key, err)
	}
	return val, src
}

func TestHitAfterCompute(t *testing.T) {
	c := New(1 << 20)
	val, src := mustGet(t, c, "k", compute("v"))
	if src != Computed || string(val) != "v" {
		t.Fatalf("first call: %q via %v, want computed v", val, src)
	}
	val, src = mustGet(t, c, "k", func(context.Context) ([]byte, error) {
		t.Fatal("fn ran on a cached key")
		return nil, nil
	})
	if src != Hit || string(val) != "v" {
		t.Fatalf("second call: %q via %v, want hit v", val, src)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry / 1 byte", s)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	var calls atomic.Int32
	fail := func(context.Context) ([]byte, error) { calls.Add(1); return nil, boom }
	if _, _, err := c.GetOrCompute(context.Background(), "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.GetOrCompute(context.Background(), "k", fail); !errors.Is(err, boom) {
		t.Fatalf("retry err = %v, want boom (errors must not be cached)", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("fn ran %d times, want 2", got)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Errorf("failed compute left %d entries resident", s.Entries)
	}
}

// LRU order: filling past the budget evicts the coldest key, and a Get
// refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	c := New(3) // three 1-byte entries
	mustGet(t, c, "a", compute("1"))
	mustGet(t, c, "b", compute("2"))
	mustGet(t, c, "c", compute("3"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before overflow")
	}
	// Recency now a > c > b; inserting d must evict b.
	mustGet(t, c, "d", compute("4"))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; LRU order ignored the Get refresh")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want resident", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Bytes != 3 {
		t.Errorf("stats = %+v, want 1 eviction, 3 bytes", s)
	}
}

// Zero budget: every request computes, nothing is retained, and the cache
// still deduplicates concurrent identical computes.
func TestZeroBudget(t *testing.T) {
	c := New(0)
	var calls atomic.Int32
	fn := func(context.Context) ([]byte, error) { calls.Add(1); return []byte("v"), nil }
	for i := 0; i < 3; i++ {
		val, src := mustGet(t, c, "k", fn)
		if src != Computed || string(val) != "v" {
			t.Fatalf("call %d: %q via %v, want computed", i, val, src)
		}
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("fn ran %d times, want 3 (zero budget retains nothing)", got)
	}
	s := c.Stats()
	if s.Entries != 0 || s.Bytes != 0 || s.Rejected != 3 {
		t.Errorf("stats = %+v, want empty cache with 3 rejections", s)
	}
	if s.Evictions != 0 {
		t.Errorf("zero budget evicted %d entries; oversized values must be rejected, not churn the LRU", s.Evictions)
	}
}

// A single value larger than the whole budget is rejected without
// disturbing resident entries.
func TestOversizedEntryRejected(t *testing.T) {
	c := New(8)
	mustGet(t, c, "small", compute("1234"))
	val, src := mustGet(t, c, "big", compute(strings.Repeat("x", 9)))
	if src != Computed || len(val) != 9 {
		t.Fatalf("oversized compute: %d bytes via %v", len(val), src)
	}
	if _, ok := c.Get("big"); ok {
		t.Error("oversized value admitted past the budget")
	}
	if _, ok := c.Get("small"); !ok {
		t.Error("resident entry evicted by a rejected oversized value")
	}
	if s := c.Stats(); s.Rejected != 1 || s.Evictions != 0 {
		t.Errorf("stats = %+v, want 1 rejection, 0 evictions", s)
	}
}

// An entry exactly at the budget is admitted and alone.
func TestExactBudgetFit(t *testing.T) {
	c := New(4)
	mustGet(t, c, "a", compute("12"))
	mustGet(t, c, "b", compute("1234"))
	if _, ok := c.Get("b"); !ok {
		t.Error("exact-budget entry rejected")
	}
	if _, ok := c.Get("a"); ok {
		t.Error("smaller entry survived; budget requires it evicted")
	}
	if s := c.Stats(); s.Bytes != 4 || s.Entries != 1 {
		t.Errorf("stats = %+v, want exactly the 4-byte entry", s)
	}
}

// Concurrent identical requests compute once; everyone sees the same bytes.
func TestSingleflightDedup(t *testing.T) {
	c := New(1 << 20)
	const n = 32
	var calls atomic.Int32
	started := make(chan struct{})
	fn := func(context.Context) ([]byte, error) {
		calls.Add(1)
		<-started // hold the leader until all followers are queued
		return []byte("once"), nil
	}
	var wg sync.WaitGroup
	launched := make(chan struct{}, n)
	results := make([][]byte, n)
	sources := make([]Source, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			launched <- struct{}{}
			val, src, err := c.GetOrCompute(context.Background(), "k", fn)
			if err != nil {
				t.Error(err)
				return
			}
			results[i], sources[i] = val, src
		}(i)
	}
	for i := 0; i < n; i++ {
		<-launched
	}
	time.Sleep(10 * time.Millisecond) // let goroutines reach the singleflight gate
	close(started)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times under %d concurrent identical requests, want 1", got, n)
	}
	var computed, shared, hits int
	for i := 0; i < n; i++ {
		if !bytes.Equal(results[i], []byte("once")) {
			t.Fatalf("caller %d saw %q", i, results[i])
		}
		switch sources[i] {
		case Computed:
			computed++
		case Shared:
			shared++
		case Hit:
			hits++
		}
	}
	if computed != 1 {
		t.Errorf("%d leaders, want exactly 1 (shared=%d hits=%d)", computed, shared, hits)
	}
}

// A follower whose context dies while waiting unblocks with ctx.Err();
// the leader's computation is unaffected and still lands in the cache.
func TestFollowerContextCancellation(t *testing.T) {
	c := New(1 << 20)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
		close(leaderIn)
		<-release
		return []byte("v"), nil
	})
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	_, _, err := c.GetOrCompute(ctx, "k", compute("never"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := c.Get("k"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader result never landed after follower cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

// Hammer the cache from many goroutines across overlapping keys under a
// tight budget — the race detector's playground.
func TestConcurrentChurn(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				val, _, err := c.GetOrCompute(context.Background(), k, compute(strings.Repeat("x", (g+i)%16+1)))
				if err != nil {
					t.Error(err)
					return
				}
				_ = val
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes > 64 {
		t.Errorf("resident bytes %d exceed budget 64", s.Bytes)
	}
	if s.Bytes < 0 || s.Entries < 0 {
		t.Errorf("negative accounting: %+v", s)
	}
}

func TestSourceString(t *testing.T) {
	for src, want := range map[Source]string{Computed: "computed", Hit: "hit", Shared: "shared", Source(99): "unknown"} {
		if got := src.String(); got != want {
			t.Errorf("Source(%d).String() = %q, want %q", src, got, want)
		}
	}
}
