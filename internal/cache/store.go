package cache

import (
	"container/list"
	"sync"
)

// Store is a pluggable persistence backend behind Cache: a keyed byte
// store with its own admission and retention policy. The singleflight and
// hit/miss accounting live in Cache; a Store only answers "is this key
// resident" and "keep this value if you can". Implementations must be safe
// for concurrent use and must never return bytes that differ from what Put
// stored — a backend that cannot prove integrity (disk, network) must
// verify on read and report a miss rather than serve doubtful bytes.
type Store interface {
	// Get returns the stored value for key, if resident. Returned slices
	// are treated as immutable by callers.
	Get(key string) ([]byte, bool)
	// Put offers a value for retention. A store may decline (budget,
	// capacity) — Put is an admission request, not a durability contract.
	Put(key string, val []byte)
	// Stats returns a snapshot of the store's retention counters.
	Stats() StoreStats
	// Close releases resources (file handles). The store is unusable after.
	Close() error
}

// StoreStats is a point-in-time snapshot of a Store's retention counters.
// Memory stores leave the Disk* fields zero.
type StoreStats struct {
	Entries   int   // live entries
	Bytes     int64 // live payload bytes (disk stores: file bytes)
	Budget    int64 // configured byte budget
	Evictions int64 // entries dropped to fit the budget
	Rejected  int64 // values declined admission (oversized or budget full)
	DiskHits  int64 // Gets served by a digest-verified disk read
	Corrupt   int64 // disk records rejected by verification, never served
}

// MemStore is the in-memory LRU backend: values under a byte budget,
// coldest evicted first. This is the store cmd/sweepd runs by default — it
// is exactly the PR-5 cache retention policy behind the Store interface.
type MemStore struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	stats   StoreStats
}

// entry is one resident value; list elements carry it through the LRU.
type entry struct {
	key string
	val []byte
}

// NewMemStore creates an LRU store holding at most budget payload bytes (a
// non-positive budget admits nothing: every request computes, nothing is
// retained — useful for disabling caching without changing call sites).
func NewMemStore(budget int64) *MemStore {
	if budget < 0 {
		budget = 0
	}
	return &MemStore{
		budget:  budget,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the resident value for key and marks it recently used.
func (m *MemStore) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		return nil, false
	}
	m.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put admits a value, evicting from the cold end until the budget holds.
// Values larger than the entire budget are rejected rather than flushing
// everything else for a single unpinnable entry.
func (m *MemStore) Put(key string, val []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	size := int64(len(val))
	if size > m.budget {
		m.stats.Rejected++
		return
	}
	if el, ok := m.entries[key]; ok {
		// A racing leader for the same key already landed (possible when a
		// failed compute releases the singleflight slot before retry):
		// refresh in place.
		m.bytes += size - int64(len(el.Value.(*entry).val))
		el.Value.(*entry).val = val
		m.ll.MoveToFront(el)
	} else {
		m.entries[key] = m.ll.PushFront(&entry{key: key, val: val})
		m.bytes += size
	}
	for m.bytes > m.budget {
		back := m.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		m.ll.Remove(back)
		delete(m.entries, e.key)
		m.bytes -= int64(len(e.val))
		m.stats.Evictions++
	}
}

// Stats returns a snapshot of the retention counters.
func (m *MemStore) Stats() StoreStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Entries = len(m.entries)
	s.Bytes = m.bytes
	s.Budget = m.budget
	return s
}

// Close is a no-op for the memory store.
func (m *MemStore) Close() error { return nil }
