package cache

import (
	"fmt"
	"testing"
)

var clusterNodes = []string{
	"http://w0:8080", "http://w1:8080", "http://w2:8080", "http://w3:8080",
}

// Rendezvous picks every node for some keys (no starvation) and spreads a
// key population roughly evenly — the property that makes it a shard
// function rather than a hash ring curiosity.
func TestPickNodeDistribution(t *testing.T) {
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[PickNode(fmt.Sprintf("key-%d", i), clusterNodes)]++
	}
	for _, n := range clusterNodes {
		got := counts[n]
		// Fair share is 1000; loose band catches gross skew, not variance.
		if got < keys/len(clusterNodes)/2 || got > keys/len(clusterNodes)*2 {
			t.Errorf("node %s owns %d of %d keys, outside [500, 2000]", n, got, keys)
		}
	}
}

// Removing one node remaps only that node's keys: everyone else keeps
// their shard, which is what keeps worker caches warm across a death.
func TestPickNodeMinimalRemap(t *testing.T) {
	survivors := clusterNodes[:3]
	dead := clusterNodes[3]
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := PickNode(key, clusterNodes)
		after := PickNode(key, survivors)
		if before != dead && after != before {
			t.Fatalf("key %s moved %s -> %s though its owner survived", key, before, after)
		}
		if before == dead && after == dead {
			t.Fatalf("key %s still assigned to the removed node", key)
		}
	}
}

// Membership order never matters: the winner is a function of the set.
func TestPickNodeOrderIndependent(t *testing.T) {
	reversed := []string{clusterNodes[3], clusterNodes[2], clusterNodes[1], clusterNodes[0]}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if PickNode(key, clusterNodes) != PickNode(key, reversed) {
			t.Fatalf("key %s: winner depends on membership order", key)
		}
	}
}

func TestPickNodeEmpty(t *testing.T) {
	if got := PickNode("k", nil); got != "" {
		t.Errorf("PickNode over empty set = %q, want \"\"", got)
	}
}

// RankNodes heads with PickNode's winner and behaves as iterated removal:
// dropping the primary promotes exactly the second-ranked node.
func TestRankNodesFailoverOrder(t *testing.T) {
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		ranked := RankNodes(key, clusterNodes)
		if len(ranked) != len(clusterNodes) {
			t.Fatalf("ranking lost nodes: %v", ranked)
		}
		if ranked[0] != PickNode(key, clusterNodes) {
			t.Fatalf("key %s: ranked[0]=%s != PickNode=%s", key, ranked[0], PickNode(key, clusterNodes))
		}
		var without []string
		for _, n := range clusterNodes {
			if n != ranked[0] {
				without = append(without, n)
			}
		}
		if ranked[1] != PickNode(key, without) {
			t.Fatalf("key %s: ranked[1]=%s is not the failover winner %s", key, ranked[1], PickNode(key, without))
		}
	}
}
