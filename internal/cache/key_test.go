package cache

import (
	"strings"
	"testing"
)

func TestCanonicalOrderIndependent(t *testing.T) {
	a := Canonical([]Field{F("seed", "42"), F("exp", "E1"), F("quick", "true")})
	b := Canonical([]Field{F("quick", "true"), F("seed", "42"), F("exp", "E1")})
	if a != b {
		t.Fatalf("field order leaked into canonical form:\n%q\n%q", a, b)
	}
}

// The classic concatenation ambiguities must not collide: splitting a name
// across the name/value boundary, merging two fields into one, or moving a
// character between adjacent fields all change the canonical form.
func TestCanonicalInjectivityCorners(t *testing.T) {
	cases := [][2][]Field{
		{{F("ab", "c")}, {F("a", "bc")}},
		{{F("a", "b;2:cd")}, {F("a", "b"), F("cd", "")}},
		{{F("a", "1"), F("b", "2")}, {F("a", "12"), F("b", "")}},
		{{F("x", "")}, {F("", "x")}},
		{{F("k", "v")}, {F("k", "v"), F("k", "v")}}, // multiset: duplicates count
		{{F("k", "v")}, {}},
	}
	for i, c := range cases {
		if Canonical(c[0]) == Canonical(c[1]) {
			t.Errorf("case %d: distinct field sets share a canonical form %q", i, Canonical(c[0]))
		}
	}
}

func TestKeyVersionSeparation(t *testing.T) {
	fields := []Field{F("exp", "E1"), F("seed", "42")}
	if Key("v1", fields) == Key("v2", fields) {
		t.Error("code version does not partition the key space")
	}
	// Version/field boundary must be unambiguous too.
	if Key("v", []Field{F("a", "b")}) == Key("", []Field{F("va", "b")}) {
		t.Error("version bytes alias into field bytes")
	}
	k := Key("v1", fields)
	if len(k) != 64 || strings.ToLower(k) != k {
		t.Errorf("key %q is not lowercase hex sha256", k)
	}
}
