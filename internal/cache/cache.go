package cache

import (
	"container/list"
	"context"
	"sync"
)

// Source says how GetOrCompute satisfied a request.
type Source int

const (
	// Computed: this caller ran fn and (budget permitting) filled the cache.
	Computed Source = iota
	// Hit: the value was already cached.
	Hit
	// Shared: another caller was already computing the same key; this one
	// waited and received the same result without running fn.
	Shared
)

// String names the source for logs and metrics labels.
func (s Source) String() string {
	switch s {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	}
	return "unknown"
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64 // GetOrCompute served from the cache
	Misses    int64 // GetOrCompute ran fn (one per singleflight group)
	Shared    int64 // GetOrCompute waited on a concurrent identical compute
	Evictions int64 // entries dropped to fit the byte budget
	Rejected  int64 // values larger than the whole budget, never admitted
	Entries   int   // live entries
	Bytes     int64 // live payload bytes
	Budget    int64 // configured byte budget
}

// Cache is a content-addressed byte cache with LRU eviction under a byte
// budget and singleflight deduplication of concurrent computes. The zero
// value is not usable; construct with New. All methods are safe for
// concurrent use.
//
// Values are stored and returned by reference: callers must treat returned
// slices as immutable. The service layer only ever serializes them onto
// the wire, which keeps entries shareable across hits without copies.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	calls   map[string]*call
	stats   Stats
}

// entry is one resident value; list elements carry it through the LRU.
type entry struct {
	key string
	val []byte
}

// call is one in-flight computation that any number of followers wait on.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// New creates a cache holding at most budget payload bytes (a non-positive
// budget admits nothing: every request computes, nothing is retained —
// useful for disabling caching without changing call sites).
func New(budget int64) *Cache {
	if budget < 0 {
		budget = 0
	}
	return &Cache{
		budget:  budget,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		calls:   make(map[string]*call),
	}
}

// Get returns the cached value for key, if resident, and marks it
// recently used. It never joins an in-flight compute.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// GetOrCompute returns the value for key, running fn at most once across
// all concurrent callers of the same key. A resident value is returned
// immediately (Hit). Otherwise the first caller becomes the leader and
// runs fn; concurrent callers for the same key block and share the
// leader's result (Shared) — success or error — without running fn.
// Successful results are admitted to the cache under the byte budget;
// errors are never cached, so a failed key recomputes on the next request.
//
// ctx cancels waiting, not computing: a follower whose ctx dies returns
// ctx.Err() while the leader's fn runs on. fn receives the leader's ctx
// unchanged — cancellation of the computation itself is fn's business
// (internal/exp threads it into the sweep worker pool).
func (c *Cache) GetOrCompute(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) ([]byte, Source, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, Hit, nil
	}
	if cl, ok := c.calls[key]; ok {
		c.stats.Shared++
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.val, Shared, cl.err
		case <-ctx.Done():
			return nil, Shared, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	c.stats.Misses++
	c.mu.Unlock()

	cl.val, cl.err = fn(ctx)
	close(cl.done)

	c.mu.Lock()
	delete(c.calls, key)
	if cl.err == nil {
		c.admit(key, cl.val)
	}
	c.mu.Unlock()
	return cl.val, Computed, cl.err
}

// admit inserts a computed value, evicting from the cold end until the
// budget holds. Values larger than the entire budget are rejected rather
// than flushing everything else for a single unpinnable entry. Callers
// hold c.mu.
func (c *Cache) admit(key string, val []byte) {
	size := int64(len(val))
	if size > c.budget {
		c.stats.Rejected++
		return
	}
	if el, ok := c.entries[key]; ok {
		// A racing leader for the same key already landed (possible when a
		// failed compute releases the singleflight slot before retry):
		// refresh in place.
		c.bytes += size - int64(len(el.Value.(*entry).val))
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
		c.bytes += size
	}
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.val))
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	s.Budget = c.budget
	return s
}
