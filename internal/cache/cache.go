package cache

import (
	"context"
	"sync"
)

// Source says how GetOrCompute satisfied a request.
type Source int

const (
	// Computed: this caller ran fn and (budget permitting) filled the cache.
	Computed Source = iota
	// Hit: the value was already cached.
	Hit
	// Shared: another caller was already computing the same key; this one
	// waited and received the same result without running fn.
	Shared
)

// String names the source for logs and metrics labels.
func (s Source) String() string {
	switch s {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	}
	return "unknown"
}

// Stats is a point-in-time snapshot of cache effectiveness counters,
// merging the singleflight front (hits/misses/shared) with the backing
// store's retention counters.
type Stats struct {
	Hits      int64 // GetOrCompute served from the store
	Misses    int64 // GetOrCompute ran fn (one per singleflight group)
	Shared    int64 // GetOrCompute waited on a concurrent identical compute
	Evictions int64 // entries dropped to fit the byte budget
	Rejected  int64 // values the store declined to admit
	Entries   int   // live entries
	Bytes     int64 // live payload bytes
	Budget    int64 // configured byte budget
	DiskHits  int64 // store Gets served by a digest-verified disk read
	Corrupt   int64 // disk records rejected by verification, never served
}

// Cache is a content-addressed byte cache with singleflight deduplication
// of concurrent computes, fronting a pluggable Store (in-memory LRU by
// default; append-only disk via NewDiskStore). The zero value is not
// usable; construct with New or NewWithStore. All methods are safe for
// concurrent use.
//
// Values are stored and returned by reference: callers must treat returned
// slices as immutable. The service layer only ever serializes them onto
// the wire, which keeps entries shareable across hits without copies.
type Cache struct {
	store Store

	mu     sync.Mutex
	calls  map[string]*call
	hits   int64
	misses int64
	shared int64
}

// call is one in-flight computation that any number of followers wait on.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// New creates a cache over an in-memory LRU store holding at most budget
// payload bytes (a non-positive budget admits nothing: every request
// computes, nothing is retained).
func New(budget int64) *Cache { return NewWithStore(NewMemStore(budget)) }

// NewWithStore creates a cache fronting the given backend.
func NewWithStore(store Store) *Cache {
	return &Cache{store: store, calls: make(map[string]*call)}
}

// Get returns the cached value for key, if resident. It never joins an
// in-flight compute.
func (c *Cache) Get(key string) ([]byte, bool) { return c.store.Get(key) }

// GetOrCompute returns the value for key, running fn at most once across
// all concurrent callers of the same key. A resident value is returned
// immediately (Hit). Otherwise the first caller becomes the leader and
// runs fn; concurrent callers for the same key block and share the
// leader's result (Shared) — success or error — without running fn.
// Successful results are offered to the store; errors are never cached, so
// a failed key recomputes on the next request.
//
// ctx cancels waiting, not computing: a follower whose ctx dies returns
// ctx.Err() while the leader's fn runs on. fn receives the leader's ctx
// unchanged — cancellation of the computation itself is fn's business
// (internal/exp threads it into the sweep worker pool).
func (c *Cache) GetOrCompute(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) ([]byte, Source, error) {
	c.mu.Lock()
	// The store lookup happens under c.mu so a leader between "fn done" and
	// "value admitted" cannot race a follower into a duplicate compute: the
	// leader admits to the store before releasing its call slot.
	if val, ok := c.store.Get(key); ok {
		c.hits++
		c.mu.Unlock()
		return val, Hit, nil
	}
	if cl, ok := c.calls[key]; ok {
		c.shared++
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.val, Shared, cl.err
		case <-ctx.Done():
			return nil, Shared, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	c.misses++
	c.mu.Unlock()

	cl.val, cl.err = fn(ctx)
	close(cl.done)

	c.mu.Lock()
	if cl.err == nil {
		c.store.Put(key, cl.val)
	}
	delete(c.calls, key)
	c.mu.Unlock()
	return cl.val, Computed, cl.err
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	s := Stats{Hits: c.hits, Misses: c.misses, Shared: c.shared}
	c.mu.Unlock()
	ss := c.store.Stats()
	s.Evictions = ss.Evictions
	s.Rejected = ss.Rejected
	s.Entries = ss.Entries
	s.Bytes = ss.Bytes
	s.Budget = ss.Budget
	s.DiskHits = ss.DiskHits
	s.Corrupt = ss.Corrupt
	return s
}

// Close releases the backing store's resources.
func (c *Cache) Close() error { return c.store.Close() }
