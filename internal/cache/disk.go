package cache

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"checkpointsim/internal/snapshot"
)

// DiskRecordVersion is the on-disk record payload layout version. Bump it
// on any layout change; records sealed under another version are skipped
// at open and treated as misses at read, never misdecoded.
const DiskRecordVersion = 1

// diskLogName is the single append-only log file inside the store's dir.
const diskLogName = "cache.log"

// EncodeDiskRecord renders one cache entry as a sealed on-disk record:
// snapshot.Seal over a payload of length-prefixed key then value. The
// sealed framing (magic, version, SHA-256 trailer) is what lets a restarted
// process trust the log: a truncated or bit-flipped record fails Open or
// the decoder and degrades to a cold run, it is never served.
func EncodeDiskRecord(key string, val []byte) []byte {
	var e snapshot.Encoder
	e.Str(key)
	e.BytesLP(val)
	return snapshot.Seal(DiskRecordVersion, e.Bytes())
}

// DecodeDiskRecord verifies and decodes a sealed record back into its key
// and value. Every corruption path returns an error wrapping the snapshot
// package's taxonomy (ErrTruncated, ErrMagic, ErrDigest, ErrVersion,
// ErrCorrupt) — callers turn any of them into a cache miss.
func DecodeDiskRecord(rec []byte) (key string, val []byte, err error) {
	version, payload, err := snapshot.Open(rec)
	if err != nil {
		return "", nil, err
	}
	if version != DiskRecordVersion {
		return "", nil, fmt.Errorf("%w: disk record version %d, want %d",
			snapshot.ErrVersion, version, DiskRecordVersion)
	}
	d := snapshot.NewDecoder(payload)
	key = d.Str()
	val = d.BytesLP()
	if err := d.Finish(); err != nil {
		return "", nil, err
	}
	return key, val, nil
}

// DiskStore is the persistent cache backend: an append-only log of sealed
// records in a directory, so warm results survive process restarts and can
// be committed into CI as a pre-seeded cache. Each Put appends (and syncs)
// one record; the newest record for a key wins, both in the live index and
// on replay. There is no eviction — the log is bounded by rejecting
// admissions past the byte budget (compaction is a restart with a fresh
// dir). Reads go back to the file and re-verify the record's digest, so
// bit rot between startup and read is detected, not served.
//
// A DiskStore assumes a single writing process per directory; cluster
// workers each own their own dir.
type DiskStore struct {
	mu     sync.Mutex
	f      *os.File
	size   int64
	budget int64
	index  map[string]diskRef
	bytes  int64 // live payload bytes (newest record per key)
	stats  StoreStats
}

// diskRef locates one sealed record inside the log.
type diskRef struct {
	off int64
	n   int64
	len int64 // payload value length, for bytes accounting on overwrite
}

// NewDiskStore opens (creating if needed) the append-only store in dir,
// replaying the existing log into the index. Replay stops at the first
// damaged record — a torn tail write after a crash, or mid-file rot — and
// truncates the log there: everything before it is digest-verified and
// warm, everything at or after it is forgotten and will be recomputed
// cold. budget caps the log size; non-positive selects 256 MiB.
func NewDiskStore(dir string, budget int64) (*DiskStore, error) {
	if budget <= 0 {
		budget = 256 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, diskLogName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st := &DiskStore{f: f, budget: budget, index: make(map[string]diskRef)}
	if err := st.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

// replay scans the log, verifying every record and indexing the newest
// per key. Damage truncates the log at the last intact record boundary.
func (s *DiskStore) replay() error {
	data, err := os.ReadFile(s.f.Name())
	if err != nil {
		return err
	}
	off := int64(0)
	for off < int64(len(data)) {
		n, w := binary.Uvarint(data[off:])
		if w <= 0 || off+int64(w)+int64(n) > int64(len(data)) {
			break // torn length prefix or cut-short record
		}
		rec := data[off+int64(w) : off+int64(w)+int64(n)]
		key, val, err := DecodeDiskRecord(rec)
		if err != nil {
			s.stats.Corrupt++
			break
		}
		if old, ok := s.index[key]; ok {
			s.bytes -= old.len
		}
		s.index[key] = diskRef{off: off + int64(w), n: int64(n), len: int64(len(val))}
		s.bytes += int64(len(val))
		off += int64(w) + int64(n)
	}
	if off < int64(len(data)) {
		// Drop the damaged tail so future appends land on a clean boundary
		// (an append after a torn record would be unreachable on replay).
		if err := s.f.Truncate(off); err != nil {
			return err
		}
	}
	s.size = off
	return nil
}

// Get reads the newest record for key back from the log and re-verifies it.
// Any verification failure unindexes the key and reports a miss: the
// caller recomputes, and the eventual Put appends a fresh record.
func (s *DiskStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.index[key]
	if !ok || s.f == nil {
		return nil, false
	}
	rec := make([]byte, ref.n)
	if _, err := s.f.ReadAt(rec, ref.off); err != nil {
		s.dropLocked(key, ref)
		return nil, false
	}
	gotKey, val, err := DecodeDiskRecord(rec)
	if err != nil || gotKey != key {
		s.dropLocked(key, ref)
		s.stats.Corrupt++
		return nil, false
	}
	s.stats.DiskHits++
	return val, true
}

// dropLocked removes a key whose record failed verification. The record's
// bytes stay in the log (append-only), only the index forgets them.
func (s *DiskStore) dropLocked(key string, ref diskRef) {
	delete(s.index, key)
	s.bytes -= ref.len
}

// Put appends a sealed record and syncs it. Admission is declined — never
// erroring the caller's request — when the record would push the log past
// its budget, or when the append itself fails (disk full): the cache is an
// optimization, and a value that did not land is simply recomputed later.
func (s *DiskStore) Put(key string, val []byte) {
	rec := EncodeDiskRecord(key, val)
	framed := make([]byte, 0, binary.MaxVarintLen64+len(rec))
	framed = binary.AppendUvarint(framed, uint64(len(rec)))
	framed = append(framed, rec...)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil || s.size+int64(len(framed)) > s.budget {
		s.stats.Rejected++
		return
	}
	if _, err := s.f.WriteAt(framed, s.size); err != nil {
		s.stats.Rejected++
		s.f.Truncate(s.size) // keep the tail clean for the next append
		return
	}
	if err := s.f.Sync(); err != nil {
		s.stats.Rejected++
		s.f.Truncate(s.size)
		return
	}
	off := s.size + int64(len(framed)) - int64(len(rec))
	if old, ok := s.index[key]; ok {
		s.bytes -= old.len
	}
	s.index[key] = diskRef{off: off, n: int64(len(rec)), len: int64(len(val))}
	s.bytes += int64(len(val))
	s.size += int64(len(framed))
}

// Stats returns a snapshot of the retention counters. Bytes is the log
// size on disk (superseded records included — the honest cost), Entries the
// live keys.
func (s *DiskStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Bytes = s.size
	st.Budget = s.budget
	return st
}

// Close syncs and closes the log file.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
