package cache

import (
	"sort"
	"testing"
)

// sortedCopy returns the multiset-normal form used to decide whether two
// field sets are "the same configuration".
func sortedCopy(fs []Field) []Field {
	out := append([]Field(nil), fs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Value < out[j].Value
	})
	return out
}

func sameMultiset(a, b []Field) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := sortedCopy(a), sortedCopy(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// FuzzCacheKey drives the two guarantees the content-addressed cache rests
// on, with adversarial names and values (empty strings, separators, digits
// that mimic the length prefixes):
//
//  1. Stability under field reordering — a config assembled in any order
//     canonicalizes identically.
//  2. Injectivity — distinct configs (as multisets of fields) never share
//     a canonical form or a key.
func FuzzCacheKey(f *testing.F) {
	f.Add("exp", "E1", "seed", "42", "exp", "E1", "seed", "43")
	f.Add("ab", "c", "", "", "a", "bc", "", "")
	f.Add("a", "b;2:cd", "", "", "a", "b", "cd", "")
	f.Add("k", "1:v", "2:k", "v", "k", "1", ":v2:kv", "")
	f.Fuzz(func(t *testing.T, n1, v1, n2, v2, n3, v3, n4, v4 string) {
		setA := []Field{F(n1, v1), F(n2, v2)}
		setB := []Field{F(n3, v3), F(n4, v4)}

		// Reordering stability, canonical form and key alike.
		if Canonical(setA) != Canonical([]Field{F(n2, v2), F(n1, v1)}) {
			t.Fatalf("canonical form depends on field order for %q", setA)
		}
		if Key("v", setA) != Key("v", []Field{F(n2, v2), F(n1, v1)}) {
			t.Fatalf("key depends on field order for %q", setA)
		}

		// Injectivity across the two fuzzed sets.
		same := sameMultiset(setA, setB)
		canonEqual := Canonical(setA) == Canonical(setB)
		if same != canonEqual {
			t.Fatalf("canonical collision: sameMultiset=%v canonEqual=%v\nA=%q\nB=%q",
				same, canonEqual, setA, setB)
		}
		if keyEqual := Key("v", setA) == Key("v", setB); same != keyEqual {
			t.Fatalf("key collision: sameMultiset=%v keyEqual=%v\nA=%q\nB=%q",
				same, keyEqual, setA, setB)
		}

		// Growing a set strictly changes it (multiset semantics).
		if Canonical(setA) == Canonical(append(sortedCopy(setA), F(n1, v1))) {
			t.Fatalf("duplicate field aliased away for %q", setA)
		}
	})
}
