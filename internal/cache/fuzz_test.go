package cache

import (
	"bytes"
	"sort"
	"testing"
)

// sortedCopy returns the multiset-normal form used to decide whether two
// field sets are "the same configuration".
func sortedCopy(fs []Field) []Field {
	out := append([]Field(nil), fs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Value < out[j].Value
	})
	return out
}

func sameMultiset(a, b []Field) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := sortedCopy(a), sortedCopy(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// FuzzCacheKey drives the two guarantees the content-addressed cache rests
// on, with adversarial names and values (empty strings, separators, digits
// that mimic the length prefixes):
//
//  1. Stability under field reordering — a config assembled in any order
//     canonicalizes identically.
//  2. Injectivity — distinct configs (as multisets of fields) never share
//     a canonical form or a key.
func FuzzCacheKey(f *testing.F) {
	f.Add("exp", "E1", "seed", "42", "exp", "E1", "seed", "43")
	f.Add("ab", "c", "", "", "a", "bc", "", "")
	f.Add("a", "b;2:cd", "", "", "a", "b", "cd", "")
	f.Add("k", "1:v", "2:k", "v", "k", "1", ":v2:kv", "")
	f.Fuzz(func(t *testing.T, n1, v1, n2, v2, n3, v3, n4, v4 string) {
		setA := []Field{F(n1, v1), F(n2, v2)}
		setB := []Field{F(n3, v3), F(n4, v4)}

		// Reordering stability, canonical form and key alike.
		if Canonical(setA) != Canonical([]Field{F(n2, v2), F(n1, v1)}) {
			t.Fatalf("canonical form depends on field order for %q", setA)
		}
		if Key("v", setA) != Key("v", []Field{F(n2, v2), F(n1, v1)}) {
			t.Fatalf("key depends on field order for %q", setA)
		}

		// Injectivity across the two fuzzed sets.
		same := sameMultiset(setA, setB)
		canonEqual := Canonical(setA) == Canonical(setB)
		if same != canonEqual {
			t.Fatalf("canonical collision: sameMultiset=%v canonEqual=%v\nA=%q\nB=%q",
				same, canonEqual, setA, setB)
		}
		if keyEqual := Key("v", setA) == Key("v", setB); same != keyEqual {
			t.Fatalf("key collision: sameMultiset=%v keyEqual=%v\nA=%q\nB=%q",
				same, keyEqual, setA, setB)
		}

		// Growing a set strictly changes it (multiset semantics).
		if Canonical(setA) == Canonical(append(sortedCopy(setA), F(n1, v1))) {
			t.Fatalf("duplicate field aliased away for %q", setA)
		}
	})
}

// FuzzDiskCacheRecord drives the disk backend's record codec with
// arbitrary bytes through two doors:
//
//  1. Raw input as a record — decode must reject or return something a
//     re-encode reproduces exactly (no panic, no misattributed bytes).
//  2. Input as a (key, value) pair — encode/decode must round-trip
//     byte-identically, and any single-byte corruption of the encoded
//     record must be rejected (the Seal digest covers every byte).
func FuzzDiskCacheRecord(f *testing.F) {
	f.Add([]byte("CKSNAP1\n"), []byte("key"))
	f.Add(EncodeDiskRecord("k", []byte("v")), []byte(""))
	f.Add([]byte{}, []byte{0, 1, 2, 255})
	f.Fuzz(func(t *testing.T, raw, val []byte) {
		if key, gotVal, err := DecodeDiskRecord(raw); err == nil {
			// Accepting arbitrary bytes is only sound if they are exactly
			// a well-formed record for what was decoded.
			if !bytes.Equal(EncodeDiskRecord(key, gotVal), raw) {
				t.Fatalf("decoder accepted %d bytes that re-encode differently", len(raw))
			}
		}

		key := string(raw)
		if len(key) > 256 {
			key = key[:256]
		}
		rec := EncodeDiskRecord(key, val)
		gotKey, gotVal, err := DecodeDiskRecord(rec)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if gotKey != key || !bytes.Equal(gotVal, val) {
			t.Fatalf("round trip mutated record: key %q->%q, %d->%d value bytes",
				key, gotKey, len(val), len(gotVal))
		}
		if len(rec) > 0 {
			flipped := append([]byte(nil), rec...)
			flipped[val2byte(val)%uint(len(flipped))] ^= 0x01
			if _, _, err := DecodeDiskRecord(flipped); err == nil {
				t.Fatal("single-bit corruption accepted")
			}
		}
	})
}

// val2byte derives a deterministic flip position from the fuzzed value.
func val2byte(val []byte) uint {
	var h uint = 2166136261
	for _, b := range val {
		h = (h ^ uint(b)) * 16777619
	}
	return h
}
