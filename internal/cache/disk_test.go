package cache

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openDisk(t *testing.T, dir string, budget int64) *DiskStore {
	t.Helper()
	st, err := NewDiskStore(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func logPath(dir string) string { return filepath.Join(dir, diskLogName) }

// Round trip through the record codec, including empty and binary values.
func TestDiskRecordRoundTrip(t *testing.T) {
	cases := []struct {
		key string
		val []byte
	}{
		{"k", []byte("value")},
		{"", nil},
		{"deadbeef", bytes.Repeat([]byte{0, 255, 7}, 100)},
	}
	for _, c := range cases {
		key, val, err := DecodeDiskRecord(EncodeDiskRecord(c.key, c.val))
		if err != nil {
			t.Fatalf("%q: %v", c.key, err)
		}
		if key != c.key || !bytes.Equal(val, c.val) {
			t.Errorf("round trip of %q mutated record: key %q, %d bytes", c.key, key, len(val))
		}
	}
}

// Warm results survive a restart byte-identically: fill, close, reopen,
// read back. The newest record per key wins across the restart too.
func TestDiskStoreRestartByteIdentity(t *testing.T) {
	dir := t.TempDir()
	st := openDisk(t, dir, 1<<20)
	st.Put("a", []byte("first"))
	st.Put("b", []byte("other"))
	st.Put("a", []byte("second")) // supersedes "first" in the log
	if v, ok := st.Get("a"); !ok || string(v) != "second" {
		t.Fatalf("pre-restart Get(a) = %q, %v", v, ok)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDisk(t, dir, 1<<20)
	for key, want := range map[string]string{"a": "second", "b": "other"} {
		v, ok := re.Get(key)
		if !ok || string(v) != want {
			t.Errorf("post-restart Get(%s) = %q, %v; want %q", key, v, ok, want)
		}
	}
	ss := re.Stats()
	if ss.Entries != 2 {
		t.Errorf("post-restart entries = %d, want 2", ss.Entries)
	}
	if ss.DiskHits != 2 {
		t.Errorf("post-restart disk hits = %d, want 2", ss.DiskHits)
	}
	if ss.Corrupt != 0 {
		t.Errorf("clean restart counted %d corrupt records", ss.Corrupt)
	}
}

// The budget bounds the log: admissions past it are rejected, not erred,
// and a value alone larger than the budget never lands.
func TestDiskStoreBudget(t *testing.T) {
	dir := t.TempDir()
	st := openDisk(t, dir, 256)
	st.Put("big", bytes.Repeat([]byte("x"), 1024))
	if _, ok := st.Get("big"); ok {
		t.Error("oversized value admitted")
	}
	st.Put("fits", []byte("small"))
	if _, ok := st.Get("fits"); !ok {
		t.Error("small value rejected under budget")
	}
	for i := 0; ; i++ {
		before := st.Stats().Rejected
		st.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("y"), 64))
		if st.Stats().Rejected > before {
			break
		}
		if i > 100 {
			t.Fatal("budget never filled")
		}
	}
	if got := st.Stats().Bytes; got > 256 {
		t.Errorf("log grew to %d bytes past the 256 budget", got)
	}
}

// Corruption table: every truncation of the log and a sample of single-bit
// flips. A reopened store must never serve bytes that differ from what was
// stored — damaged suffixes degrade to misses (cold runs), intact prefixes
// stay warm and byte-identical.
func TestDiskStoreCorruptionTable(t *testing.T) {
	dir := t.TempDir()
	st := openDisk(t, dir, 1<<20)
	want := map[string][]byte{}
	for i := 0; i < 4; i++ {
		key, val := fmt.Sprintf("key-%d", i), bytes.Repeat([]byte{byte(i + 1)}, 50+i)
		st.Put(key, val)
		want[key] = val
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, doctored []byte) {
		sub := t.TempDir()
		if err := os.WriteFile(logPath(sub), doctored, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := NewDiskStore(sub, 1<<20)
		if err != nil {
			t.Fatalf("doctored log failed open entirely: %v", err)
		}
		defer re.Close()
		for key, wantVal := range want {
			got, ok := re.Get(key)
			if ok && !bytes.Equal(got, wantVal) {
				t.Fatalf("served corrupt bytes for %s: %d bytes, want %d", key, len(got), len(wantVal))
			}
		}
	}

	t.Run("every-truncation", func(t *testing.T) {
		for n := 0; n < len(clean); n++ {
			check(t, clean[:n])
		}
	})
	t.Run("sampled-bit-flips", func(t *testing.T) {
		for off := 0; off < len(clean); off += 7 {
			for bit := 0; bit < 8; bit += 3 {
				doctored := append([]byte(nil), clean...)
				doctored[off] ^= 1 << bit
				check(t, doctored)
			}
		}
	})
}

// Rot after open is caught at read time: a record damaged under a running
// store's feet reports a miss and unindexes, never serves the bad bytes.
func TestDiskStoreReadTimeVerification(t *testing.T) {
	dir := t.TempDir()
	st := openDisk(t, dir, 1<<20)
	st.Put("k", bytes.Repeat([]byte("v"), 64))
	ref := st.index["k"]
	// Flip one bit in the middle of the sealed record, bypassing the store.
	f, err := os.OpenFile(logPath(dir), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	pos := ref.off + ref.n/2
	if _, err := f.ReadAt(buf, pos); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x10
	if _, err := f.WriteAt(buf, pos); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if v, ok := st.Get("k"); ok {
		t.Fatalf("served rotted record: %d bytes", len(v))
	}
	if c := st.Stats().Corrupt; c != 1 {
		t.Errorf("corrupt counter = %d, want 1", c)
	}
	if _, ok := st.Get("k"); ok {
		t.Error("rotted key still resident after first rejection")
	}
}

// A torn tail (partial last append, the crash case) is truncated on replay
// so subsequent appends land on a clean boundary and survive the next
// restart.
func TestDiskStoreTornTailThenAppend(t *testing.T) {
	dir := t.TempDir()
	st := openDisk(t, dir, 1<<20)
	st.Put("a", []byte("alpha"))
	st.Put("b", []byte("beta"))
	st.Close()
	clean, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath(dir), clean[:len(clean)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	re := openDisk(t, dir, 1<<20)
	if _, ok := re.Get("b"); ok {
		t.Error("torn record served")
	}
	if _, ok := re.Get("a"); !ok {
		t.Error("intact prefix lost")
	}
	re.Put("c", []byte("gamma"))
	re.Close()

	again := openDisk(t, dir, 1<<20)
	for key, want := range map[string]string{"a": "alpha", "c": "gamma"} {
		if v, ok := again.Get(key); !ok || string(v) != want {
			t.Errorf("after torn-tail repair, Get(%s) = %q, %v; want %q", key, v, ok, want)
		}
	}
}

// The Cache front works identically over a DiskStore: compute once, hit
// after, and hit again from a fresh Cache over a reopened store — the
// restart path a warm sweepd worker takes.
func TestCacheOverDiskStore(t *testing.T) {
	dir := t.TempDir()
	c := NewWithStore(openDisk(t, dir, 1<<20))
	ctx := context.Background()
	computes := 0
	fn := func(context.Context) ([]byte, error) {
		computes++
		return []byte("payload"), nil
	}
	v, src, err := c.GetOrCompute(ctx, "k", fn)
	if err != nil || src != Computed || string(v) != "payload" {
		t.Fatalf("first call: %q, %v, %v", v, src, err)
	}
	v, src, err = c.GetOrCompute(ctx, "k", fn)
	if err != nil || src != Hit || string(v) != "payload" {
		t.Fatalf("second call: %q, %v, %v", v, src, err)
	}
	if computes != 1 {
		t.Fatalf("fn ran %d times, want 1", computes)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	warm := NewWithStore(openDisk(t, dir, 1<<20))
	v, src, err = warm.GetOrCompute(ctx, "k", fn)
	if err != nil || src != Hit || string(v) != "payload" {
		t.Fatalf("post-restart call: %q, %v, %v", v, src, err)
	}
	st := warm.Stats()
	if st.DiskHits != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Errorf("post-restart stats = %+v, want 1 disk hit, 1 hit, 0 misses", st)
	}
}
