package service

import (
	"os"
	"path/filepath"
)

// snapshotStore persists the latest mid-run simulator snapshot of each
// scenario job, in one file per job keyed by the job's cache key. Files
// are written atomically (temp + rename), so a server killed at any moment
// — including mid-write — leaves either the previous snapshot or the new
// one on disk, never a truncated blob. A restarted server finding a blob
// under a job's key resumes that simulation from the persisted boundary
// instead of from t=0; the engine's config digest guards against resuming
// into a different configuration, and any restore failure falls back to a
// cold run (snapshot persistence is an optimization, never a correctness
// dependency).
type snapshotStore struct {
	dir string
}

func newSnapshotStore(dir string) *snapshotStore {
	os.MkdirAll(dir, 0o755) // best-effort here; save retries and reports
	return &snapshotStore{dir: dir}
}

func (st *snapshotStore) path(key string) string {
	return filepath.Join(st.dir, key+".ckpt")
}

// load returns the persisted snapshot for key, or nil if there is none. A
// read error is treated as "none": the job simply runs cold.
func (st *snapshotStore) load(key string) []byte {
	b, err := os.ReadFile(st.path(key))
	if err != nil {
		return nil
	}
	return b
}

// save atomically replaces the persisted snapshot for key.
func (st *snapshotStore) save(key string, blob []byte) error {
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return err
	}
	name := st.path(key)
	tmp, err := os.CreateTemp(st.dir, ".tmp-"+key+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), name); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// drop removes the persisted snapshot for key: once the job completes, its
// result lives in the cache and the snapshot is dead weight.
func (st *snapshotStore) drop(key string) { os.Remove(st.path(key)) }
